// Package diurnal models time-varying workload intensity: per-user-class
// activity curves (piecewise daily/weekly profiles with seeded per-device
// phase jitter), a timeline of scheduled events (push storms, maintenance
// windows, NYE-style spikes) that modulate heartbeat cadence and cargo
// arrival rates, and a time-scale knob that compresses a simulated week
// into minutes of virtual time.
//
// Everything in the package is a pure function of (profile, device
// identity, sim time): curves are evaluated analytically, per-device phase
// comes from randx.Derive (consuming no stream state), and arrival
// thinning draws from an explicit caller-provided stream. A fleet that
// attaches a diurnal profile therefore keeps the repository's determinism
// contract — byte-identical reports at any worker count (DESIGN.md §14).
package diurnal

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Day is the period of a daily activity curve; the Week() preset's
// period is 7*Day.
const Day = 24 * time.Hour

// Knot is one step of a piecewise-constant activity curve: the Level
// holds from Offset until the next knot's offset (wrapping at the period).
type Knot struct {
	// Offset is the knot's position within the period, in [0, period).
	Offset time.Duration
	// Level is the dimensionless activity multiplier held from Offset.
	Level float64
}

// Curve is a periodic piecewise-constant activity multiplier. A level of
// 1 means baseline intensity; the presets keep the period mean near 1 so
// attaching a curve reshapes a workload without changing its volume much.
type Curve struct {
	period time.Duration
	knots  []Knot
	// prefix[i] is the integral (level·seconds) over [0, knots[i].Offset);
	// segEnd[i] is the integral through the end of segment i. total is the
	// integral over one full period.
	prefix []float64
	segEnd []float64
	total  float64
	max    float64
}

// NewCurve validates the knots and returns the curve. Knots must be
// sorted by strictly increasing offset, start at offset 0, stay inside
// the period, and carry finite non-negative levels with at least one
// positive level.
func NewCurve(period time.Duration, knots []Knot) (*Curve, error) {
	if period <= 0 {
		return nil, fmt.Errorf("diurnal: non-positive curve period %v", period)
	}
	if len(knots) == 0 {
		return nil, fmt.Errorf("diurnal: curve has no knots")
	}
	if knots[0].Offset != 0 {
		return nil, fmt.Errorf("diurnal: first knot at %v, want 0", knots[0].Offset)
	}
	c := &Curve{
		period: period,
		knots:  append([]Knot(nil), knots...),
		prefix: make([]float64, len(knots)),
		segEnd: make([]float64, len(knots)),
	}
	for i, k := range c.knots {
		if k.Offset < 0 || k.Offset >= period {
			return nil, fmt.Errorf("diurnal: knot %d offset %v outside [0, %v)", i, k.Offset, period)
		}
		if i > 0 && k.Offset <= c.knots[i-1].Offset {
			return nil, fmt.Errorf("diurnal: knot %d offset %v not after knot %d at %v",
				i, k.Offset, i-1, c.knots[i-1].Offset)
		}
		if k.Level < 0 || math.IsInf(k.Level, 0) || math.IsNaN(k.Level) {
			return nil, fmt.Errorf("diurnal: knot %d level %v must be finite and ≥ 0", i, k.Level)
		}
		if k.Level > c.max {
			c.max = k.Level
		}
	}
	if c.max == 0 {
		return nil, fmt.Errorf("diurnal: curve is zero everywhere")
	}
	acc := 0.0
	for i, k := range c.knots {
		c.prefix[i] = acc
		acc += k.Level * c.segmentWidth(i).Seconds()
		c.segEnd[i] = acc
	}
	c.total = acc
	return c, nil
}

// segmentWidth returns the span segment i's level holds for.
func (c *Curve) segmentWidth(i int) time.Duration {
	if i+1 < len(c.knots) {
		return c.knots[i+1].Offset - c.knots[i].Offset
	}
	return c.period - c.knots[i].Offset
}

// Period returns the curve's period.
func (c *Curve) Period() time.Duration { return c.period }

// Max returns the curve's peak level.
func (c *Curve) Max() float64 { return c.max }

// Mean returns the curve's period-average level.
func (c *Curve) Mean() float64 { return c.total / c.period.Seconds() }

// wrap maps any instant into [0, period).
func (c *Curve) wrap(at time.Duration) time.Duration {
	m := at % c.period
	if m < 0 {
		m += c.period
	}
	return m
}

// segment returns the index of the knot whose level holds at offset
// m ∈ [0, period).
func (c *Curve) segment(m time.Duration) int {
	i := sort.Search(len(c.knots), func(i int) bool { return c.knots[i].Offset > m })
	return i - 1
}

// Level returns the activity multiplier at the given instant (periodic).
func (c *Curve) Level(at time.Duration) float64 {
	return c.knots[c.segment(c.wrap(at))].Level
}

// cum returns the running integral (level·seconds) over [0, t); t may be
// negative or span many periods.
func (c *Curve) cum(t time.Duration) float64 {
	n := math.Floor(float64(t) / float64(c.period))
	rem := t - time.Duration(n*float64(c.period))
	if rem < 0 { // float guard at period boundaries
		rem = 0
	}
	if rem >= c.period {
		rem = c.period
		n -= 1
		rem = t - time.Duration(n*float64(c.period))
		if rem > c.period {
			rem = c.period
		}
	}
	i := c.segment(c.wrap(rem))
	partial := c.prefix[i] + c.knots[i].Level*(rem-c.knots[i].Offset).Seconds()
	return n*c.total + partial
}

// Integral returns the integral of the level (level·seconds) over
// [from, to); zero when to ≤ from.
func (c *Curve) Integral(from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	return c.cum(to) - c.cum(from)
}

// inverseCum returns the smallest t ≥ 0 with cum(t) ≥ area. Areas inside
// zero-level segments resolve to the segment start, so events never land
// where the curve is silent.
func (c *Curve) inverseCum(area float64) time.Duration {
	if area <= 0 {
		return 0
	}
	whole := math.Floor(area / c.total)
	rem := area - whole*c.total
	i := sort.SearchFloat64s(c.segEnd, rem)
	if i >= len(c.knots) {
		i = len(c.knots) - 1
	}
	var within time.Duration
	if lvl := c.knots[i].Level; lvl > 0 {
		within = time.Duration((rem - c.prefix[i]) / lvl * float64(time.Second))
		if within < 0 {
			within = 0
		}
		if w := c.segmentWidth(i); within > w {
			within = w
		}
	}
	return time.Duration(whole*float64(c.period)) + c.knots[i].Offset + within
}

// canonical renders the curve for hashing: period plus every knot.
func (c *Curve) canonical(b *strings.Builder) {
	fmt.Fprintf(b, "period=%s knots=", c.period)
	for i, k := range c.knots {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, "%s:%g", k.Offset, k.Level)
	}
}

// hourly builds a daily curve from 24 per-hour levels.
func hourly(levels [24]float64) *Curve {
	knots := make([]Knot, 24)
	for h, lvl := range levels {
		knots[h] = Knot{Offset: time.Duration(h) * time.Hour, Level: lvl}
	}
	c, err := NewCurve(Day, knots)
	if err != nil {
		panic(err) // unreachable: literal levels are valid
	}
	return c
}

// concat joins daily curves into one multi-day curve (e.g. a week).
func concat(days ...*Curve) *Curve {
	var knots []Knot
	offset := time.Duration(0)
	period := time.Duration(0)
	for _, d := range days {
		for _, k := range d.knots {
			knots = append(knots, Knot{Offset: offset + k.Offset, Level: k.Level})
		}
		offset += d.period
		period += d.period
	}
	c, err := NewCurve(period, knots)
	if err != nil {
		panic(err) // unreachable: inputs are valid curves
	}
	return c
}

// reshape applies f to every knot level, clamping at 0.
func reshape(c *Curve, f func(float64) float64) *Curve {
	knots := make([]Knot, len(c.knots))
	for i, k := range c.knots {
		lvl := f(k.Level)
		if lvl < 0 {
			lvl = 0
		}
		knots[i] = Knot{Offset: k.Offset, Level: lvl}
	}
	out, err := NewCurve(c.period, knots)
	if err != nil {
		panic(err) // unreachable: reshaping a valid curve stays valid
	}
	return out
}
