package powermon

import (
	"math"
	"strings"
	"testing"
	"time"

	"etrain/internal/radio"
)

func timelineWithOneTx(t *testing.T) *radio.Timeline {
	t.Helper()
	tl := &radio.Timeline{}
	err := tl.Append(radio.Transmission{
		Start: 5 * time.Second, TxTime: 2 * time.Second, Size: 1000, Kind: radio.TxData, App: "x",
	})
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

func TestCaptureCurrentConversion(t *testing.T) {
	tl := timelineWithOneTx(t)
	m := Monitor{}
	samples := m.Capture(tl, radio.GalaxyS43G(), 30*time.Second)
	if len(samples) != 300 {
		t.Fatalf("got %d samples, want 300 (0.1s over 30s)", len(samples))
	}
	// During transmission (t=6s): power 0.7 W -> current 0.7/3.7 A.
	idx := int(6 * time.Second / DefaultStep)
	s := samples[idx]
	if s.State != radio.StateTransmitting {
		t.Fatalf("state at 6s = %v, want transmitting", s.State)
	}
	wantI := 0.7 / 3.7
	if math.Abs(s.CurrentA-wantI) > 1e-9 {
		t.Fatalf("current = %v, want %v", s.CurrentA, wantI)
	}
	// Before transmission: idle, zero extra current.
	if samples[0].CurrentA != 0 {
		t.Fatalf("idle current = %v, want 0", samples[0].CurrentA)
	}
}

func TestEnergyMatchesRadioAccounting(t *testing.T) {
	tl := timelineWithOneTx(t)
	pm := radio.GalaxyS43G()
	m := Monitor{Step: 10 * time.Millisecond}
	horizon := time.Minute
	samples := m.Capture(tl, pm, horizon)
	got := m.Energy(samples)
	want := tl.AccountEnergy(pm, horizon).Total()
	if math.Abs(got-want) > 0.02*want {
		t.Fatalf("monitor energy %.3f J vs accountant %.3f J differ by more than 2%%", got, want)
	}
}

func TestCustomVoltageRoundTrips(t *testing.T) {
	tl := timelineWithOneTx(t)
	pm := radio.GalaxyS43G()
	a := Monitor{Voltage: 3.7}
	b := Monitor{Voltage: 4.2}
	ea := a.Energy(a.Capture(tl, pm, 30*time.Second))
	eb := b.Energy(b.Capture(tl, pm, 30*time.Second))
	// Energy is voltage-independent: current scales inversely.
	if math.Abs(ea-eb) > 1e-9 {
		t.Fatalf("energy differs with voltage: %v vs %v", ea, eb)
	}
}

func TestWriteCSV(t *testing.T) {
	tl := timelineWithOneTx(t)
	m := Monitor{Step: time.Second}
	samples := m.Capture(tl, radio.GalaxyS43G(), 10*time.Second)
	var sb strings.Builder
	if err := WriteCSV(&sb, samples); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 11 {
		t.Fatalf("CSV has %d lines, want header + 10", len(lines))
	}
	if lines[0] != "time_s,current_a,power_w,state" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(sb.String(), "DCH(tx)") {
		t.Fatal("CSV missing transmitting state rows")
	}
}

func TestEmptyTimelineCapture(t *testing.T) {
	tl := &radio.Timeline{}
	m := Monitor{}
	samples := m.Capture(tl, radio.GalaxyS43G(), 5*time.Second)
	if got := m.Energy(samples); got != 0 {
		t.Fatalf("idle energy = %v, want 0", got)
	}
}
