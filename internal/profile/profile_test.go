package profile

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

const dl = 30 * time.Second

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMailZeroBeforeDeadline(t *testing.T) {
	p := Mail(dl)
	for _, d := range []time.Duration{0, time.Second, 15 * time.Second, dl} {
		if got := p.Cost(d); got != 0 {
			t.Fatalf("mail cost(%v) = %v, want 0", d, got)
		}
	}
}

func TestMailLinearAfterDeadline(t *testing.T) {
	p := Mail(dl)
	if got := p.Cost(2 * dl); !almostEqual(got, 1) {
		t.Fatalf("mail cost(2·deadline) = %v, want 1", got)
	}
	if got := p.Cost(3 * dl); !almostEqual(got, 2) {
		t.Fatalf("mail cost(3·deadline) = %v, want 2", got)
	}
}

func TestWeiboRampAndPlateau(t *testing.T) {
	p := Weibo(dl)
	if got := p.Cost(dl / 2); !almostEqual(got, 0.5) {
		t.Fatalf("weibo cost(deadline/2) = %v, want 0.5", got)
	}
	if got := p.Cost(dl); !almostEqual(got, 1) {
		t.Fatalf("weibo cost(deadline) = %v, want 1", got)
	}
	for _, d := range []time.Duration{dl + time.Second, 5 * dl} {
		if got := p.Cost(d); !almostEqual(got, 2) {
			t.Fatalf("weibo cost(%v) = %v, want plateau 2", d, got)
		}
	}
}

func TestCloudSteepensAfterDeadline(t *testing.T) {
	p := Cloud(dl)
	if got := p.Cost(dl / 2); !almostEqual(got, 0.5) {
		t.Fatalf("cloud cost(deadline/2) = %v, want 0.5", got)
	}
	if got := p.Cost(2 * dl); !almostEqual(got, 4) {
		t.Fatalf("cloud cost(2·deadline) = %v, want 3·2−2 = 4", got)
	}
}

func TestNegativeDelayCostsZero(t *testing.T) {
	for _, p := range []Profile{Mail(dl), Weibo(dl), Cloud(dl)} {
		if got := p.Cost(-time.Second); got != 0 {
			t.Fatalf("%s cost(-1s) = %v, want 0", p.Name(), got)
		}
	}
}

func TestNewByKind(t *testing.T) {
	tests := []struct {
		kind Kind
		name string
	}{
		{KindMail, "mail/f1"},
		{KindWeibo, "weibo/f2"},
		{KindCloud, "cloud/f3"},
	}
	for _, tt := range tests {
		p, err := New(tt.kind, dl)
		if err != nil {
			t.Fatalf("New(%v): %v", tt.kind, err)
		}
		if p.Name() != tt.name {
			t.Fatalf("New(%v).Name() = %q, want %q", tt.kind, p.Name(), tt.name)
		}
		if p.Deadline() != dl {
			t.Fatalf("New(%v).Deadline() = %v, want %v", tt.kind, p.Deadline(), dl)
		}
	}
}

func TestNewUnknownKind(t *testing.T) {
	if _, err := New(Kind(99), dl); err == nil {
		t.Fatal("New(99) succeeded, want error")
	}
}

func TestKindString(t *testing.T) {
	tests := []struct {
		kind Kind
		want string
	}{
		{KindMail, "mail"},
		{KindWeibo, "weibo"},
		{KindCloud, "cloud"},
		{Kind(42), "profile.Kind(42)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Fatalf("Kind(%d).String() = %q, want %q", int(tt.kind), got, tt.want)
		}
	}
}

func TestCustomProfile(t *testing.T) {
	p := Custom("step", dl, func(x float64) float64 {
		if x < 1 {
			return 0
		}
		return 10
	})
	if got := p.Cost(dl - time.Second); got != 0 {
		t.Fatalf("custom cost before deadline = %v, want 0", got)
	}
	if got := p.Cost(dl + time.Second); got != 10 {
		t.Fatalf("custom cost after deadline = %v, want 10", got)
	}
}

// Property: all paper profiles are non-negative and non-decreasing in d.
func TestProfilesMonotoneNonNegative(t *testing.T) {
	profiles := []Profile{Mail(dl), Weibo(dl), Cloud(dl)}
	prop := func(aMillis, bMillis uint32) bool {
		a := time.Duration(aMillis) * time.Millisecond
		b := time.Duration(bMillis) * time.Millisecond
		if a > b {
			a, b = b, a
		}
		for _, p := range profiles {
			ca, cb := p.Cost(a), p.Cost(b)
			if ca < 0 || cb < 0 || ca > cb+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Mail and cloud are continuous at the deadline; weibo jumps from 1 to its
// plateau of 2 exactly as drawn in the paper's Fig. 6.
func TestProfileDeadlineBehaviour(t *testing.T) {
	eps := time.Millisecond
	for _, p := range []Profile{Mail(dl), Cloud(dl)} {
		before := p.Cost(dl - eps)
		after := p.Cost(dl + eps)
		if math.Abs(after-before) > 0.01 {
			t.Fatalf("%s jumps at deadline: %v -> %v", p.Name(), before, after)
		}
	}
	w := Weibo(dl)
	if before, after := w.Cost(dl-eps), w.Cost(dl+eps); after-before < 0.9 {
		t.Fatalf("weibo should jump ~1 at deadline, got %v -> %v", before, after)
	}
}

func TestZeroDeadlineIsSafe(t *testing.T) {
	p := Mail(0)
	if got := p.Cost(time.Second); got != 0 {
		t.Fatalf("cost with zero deadline = %v, want 0 (no division by zero)", got)
	}
}
