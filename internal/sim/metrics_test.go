package sim

import (
	"testing"

	"etrain/internal/baseline"
)

// TestMetricsMatchesResult pins Metrics to the Result methods it
// summarizes: same energy, delay, violation ratio and counts.
func TestMetricsMatchesResult(t *testing.T) {
	cfg := paperConfig(t, 3)
	res := runWith(t, cfg, baseline.NewImmediate())
	m := res.Metrics()
	if m.EnergyJ != res.Energy.Total() {
		t.Errorf("EnergyJ = %v, want %v", m.EnergyJ, res.Energy.Total())
	}
	if m.AvgDelayS != res.NormalizedDelay().Seconds() {
		t.Errorf("AvgDelayS = %v, want %v", m.AvgDelayS, res.NormalizedDelay().Seconds())
	}
	if m.ViolationRatio != res.DeadlineViolationRatio() {
		t.Errorf("ViolationRatio = %v, want %v", m.ViolationRatio, res.DeadlineViolationRatio())
	}
	if m.DataPackets != len(res.Packets) {
		t.Errorf("DataPackets = %d, want %d", m.DataPackets, len(res.Packets))
	}
	if m.Heartbeats != res.HeartbeatCount {
		t.Errorf("Heartbeats = %d, want %d", m.Heartbeats, res.HeartbeatCount)
	}
	if m.ForcedFlush != res.ForcedFlushCount {
		t.Errorf("ForcedFlush = %d, want %d", m.ForcedFlush, res.ForcedFlushCount)
	}
	if m.DataPackets == 0 || m.Heartbeats == 0 {
		t.Fatalf("degenerate run: %+v", m)
	}
}
