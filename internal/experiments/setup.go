package experiments

import (
	"time"

	"etrain/internal/bandwidth"
	"etrain/internal/heartbeat"
	"etrain/internal/profile"
	"etrain/internal/radio"
	"etrain/internal/randx"
	"etrain/internal/sim"
	"etrain/internal/workload"
)

// constantTrace returns a flat bandwidth trace (bytes/second).
func constantTrace(bytesPerSecond float64, duration time.Duration) (*bandwidth.Trace, error) {
	return bandwidth.Constant(bytesPerSecond, duration)
}

// perfectEstimator returns a zero-lag, zero-noise channel estimator over
// the config's trace — the oracle the paper's future work would need.
func perfectEstimator(cfg sim.Config) *bandwidth.Estimator {
	return bandwidth.NewEstimator(cfg.Bandwidth, randx.New(0), 0, 0)
}

// defaultProfileTriple returns the f1/f2/f3 profiles sharing one deadline,
// in mail/weibo/cloud order.
func defaultProfileTriple(deadline time.Duration) []profile.Profile {
	return []profile.Profile{
		profile.Mail(deadline),
		profile.Weibo(deadline),
		profile.Cloud(deadline),
	}
}

// Options configures an experiment run.
type Options struct {
	// Seed drives all randomness; equal seeds reproduce exactly.
	Seed int64
	// Horizon overrides the experiment's default simulated span.
	Horizon time.Duration
}

func (o Options) horizonOr(def time.Duration) time.Duration {
	if o.Horizon > 0 {
		return o.Horizon
	}
	return def
}

// paperHorizon is the 2-hour span of the paper's simulations (the length of
// its bandwidth trace).
const paperHorizon = 7200 * time.Second

// estimatorNoise is the relative error of the channel estimate fed to
// PerES/eTime; see DESIGN.md.
const estimatorNoise = 0.3

// buildSimConfig assembles the paper's default simulation (§VI-A): the
// QQ/WeChat/WhatsApp trio, cargo at the given λ, a synthetic 2-hour
// bandwidth trace and the Galaxy S4 radio. The strategy is left unset.
func buildSimConfig(opts Options, lambda float64) (sim.Config, error) {
	src := randx.New(opts.Seed)
	horizon := opts.horizonOr(paperHorizon)
	bw, err := bandwidth.Synthesize(src.Split(), horizon, nil)
	if err != nil {
		return sim.Config{}, err
	}
	specs, err := workload.SpecsForLambda(lambda)
	if err != nil {
		return sim.Config{}, err
	}
	packets, err := workload.Generate(src.Split(), specs, horizon)
	if err != nil {
		return sim.Config{}, err
	}
	cfg := sim.Config{
		Horizon:   horizon,
		Trains:    heartbeat.DefaultTrio(),
		Packets:   packets,
		Bandwidth: bw,
		Power:     radio.GalaxyS43G(),
	}
	cfg.Estimator = bandwidth.NewEstimator(bw, src.Split(), time.Second, estimatorNoise)
	return cfg, nil
}
