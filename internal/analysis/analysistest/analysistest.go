// Package analysistest replays an analyzer against fixture packages under a
// testdata/src tree, mirroring golang.org/x/tools/go/analysis/analysistest:
// every expected finding is declared in the fixture source as a trailing
//
//	// want "regexp" `another regexp`
//
// comment on the line the diagnostic must land on. Fixture directory paths
// double as import paths, which is how fixtures exercise path-based
// exemptions (a fixture under testdata/src/etrain/internal/simtime is, to
// the analyzers, the sanctioned simtime package).
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"etrain/internal/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	return abs
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads each fixture package under testdata/src, applies the analyzer,
// and checks the diagnostics against the fixtures' want comments. Fixture
// packages may import each other (and the standard library); imports
// resolve inside the same testdata/src tree.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	RunAll(t, testdata, []*analysis.Analyzer{a}, pkgPaths...)
}

// RunAll is Run over a set of analyzers at once: each fixture package is
// checked against the union of every analyzer's diagnostics, so one
// fixture can carry want comments for several patrols — the way real
// packages face the whole vet suite rather than one check at a time.
func RunAll(t *testing.T, testdata string, analyzers []*analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	srcRoot := filepath.Join(testdata, "src")
	loader := analysis.NewLoader(func(importPath string) (string, bool) {
		dir := filepath.Join(srcRoot, filepath.FromSlash(importPath))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
		return "", false
	})
	for _, pkgPath := range pkgPaths {
		pkg, err := loader.Load(pkgPath, filepath.Join(srcRoot, filepath.FromSlash(pkgPath)))
		if err != nil {
			t.Fatalf("load %s: %v", pkgPath, err)
		}
		diags := analysis.Run([]*analysis.Package{pkg}, analyzers)
		wants := collectWants(t, pkg)

	diagLoop:
		for _, d := range diags {
			for _, w := range wants {
				if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
					w.matched = true
					continue diagLoop
				}
			}
			t.Errorf("%s: unexpected diagnostic: %s", pkgPath, d)
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s: no diagnostic at %s:%d matching %q",
					pkgPath, filepath.Base(w.file), w.line, w.raw)
			}
		}
	}
}

// wantFragmentRE matches one quoted or backquoted expectation fragment.
var wantFragmentRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// collectWants parses the want comments of every file in pkg.
func collectWants(t *testing.T, pkg *analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				frags := wantFragmentRE.FindAllStringSubmatch(rest, -1)
				if len(frags) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, m := range frags {
					// Comment text is literal: the only escape to undo in
					// a quoted fragment is an embedded \" quote.
					raw := m[2]
					if m[1] != "" || m[2] == "" {
						raw = strings.ReplaceAll(m[1], `\"`, `"`)
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	return wants
}
