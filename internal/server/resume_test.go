package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"etrain/internal/fleet"
	"etrain/internal/wire"
)

// testSession synthesizes one device's wire replay.
func testSession(t *testing.T, index int) Session {
	t.Helper()
	pop := testPopulation(t)
	dev, err := fleet.SynthesizeDevice(7, pop, index, testHorizon)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := SessionFromDevice(dev, testTheta, testK)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

// admitAndCut opens a session on srv, streams the first n events, then
// cuts the connection mid-protocol. It returns the session frames fully
// received before the cut and asserts the server parks rather than
// errors.
func admitAndCut(t *testing.T, srv *Server, sess Session, n int) []wire.Message {
	t.Helper()
	c, sconn := net.Pipe()
	srvErr := make(chan error, 1)
	go func() { srvErr <- srv.ServeConn(sconn) }()
	w := wire.NewWriter(c)
	r := wire.NewReader(c)
	if err := w.Write(sess.Hello); err != nil {
		t.Fatal(err)
	}
	if m, err := r.Next(); err != nil {
		t.Fatal(err)
	} else if a, ok := m.(wire.Ack); !ok || a.Seq != 0 {
		t.Fatalf("admission frame %v, want ack{0}", m)
	}
	frames := make(chan []wire.Message, 1)
	go func() {
		var got []wire.Message
		for {
			m, err := r.Next()
			if err != nil {
				frames <- got
				return
			}
			got = append(got, m)
		}
	}()
	for _, ev := range sess.Events[:n] {
		if err := w.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	got := <-frames
	if err := <-srvErr; !errors.Is(err, ErrSessionParked) {
		t.Fatalf("cut session returned %v, want ErrSessionParked", err)
	}
	return got
}

// resumeAndFinish reconnects with a Resume confirming got frames, then
// completes the protocol, returning the frames received on the second
// connection.
func resumeAndFinish(t *testing.T, srv *Server, sess Session, got uint64) ([]wire.Message, error) {
	t.Helper()
	c, sconn := net.Pipe()
	srvErr := make(chan error, 1)
	go func() { srvErr <- srv.ServeConn(sconn) }()
	defer c.Close()
	w := wire.NewWriter(c)
	r := wire.NewReader(c)
	resume := wire.Resume{DeviceID: sess.Hello.DeviceID, Token: wire.SessionToken(sess.Hello), Got: got}
	if err := w.Write(resume); err != nil {
		return nil, fmt.Errorf("writing resume: %w", err)
	}
	m, err := r.Next()
	if err != nil {
		// The server refused the resume and closed; surface its error.
		if serr := <-srvErr; serr != nil {
			return nil, serr
		}
		return nil, err
	}
	ok, is := m.(wire.ResumeOK)
	if !is {
		return nil, fmt.Errorf("resume answer %v, want resume_ok", m)
	}
	if ok.Got > uint64(len(sess.Events))+1 {
		return nil, fmt.Errorf("resume_ok reports %d consumed frames, client only sent %d", ok.Got, len(sess.Events)+1)
	}
	type result struct {
		frames []wire.Message
		err    error
	}
	done := make(chan result, 1)
	go func() {
		var fs []wire.Message
		for {
			m, err := r.Next()
			if err != nil {
				done <- result{fs, err}
				return
			}
			fs = append(fs, m)
			if _, final := m.(wire.Ack); final {
				done <- result{fs, nil}
				return
			}
		}
	}()
	for _, ev := range sess.Events[ok.Got:] {
		if err := w.Write(ev); err != nil {
			return nil, fmt.Errorf("resending event: %w", err)
		}
	}
	if err := w.Write(wire.Ack{Seq: uint64(len(sess.Events)) + 1}); err != nil {
		return nil, fmt.Errorf("finish ack: %w", err)
	}
	res := <-done
	if res.err != nil {
		return nil, res.err
	}
	if err := <-srvErr; err != nil {
		return nil, err
	}
	return res.frames, nil
}

// decisionsOf filters a frame stream to its Decision frames.
func decisionsOf(frames []wire.Message) []wire.Decision {
	var ds []wire.Decision
	for _, m := range frames {
		if d, ok := m.(wire.Decision); ok {
			ds = append(ds, d)
		}
	}
	return ds
}

// statsOf extracts the StatsSnapshot from a frame stream.
func statsOf(t *testing.T, frames []wire.Message) wire.StatsSnapshot {
	t.Helper()
	for _, m := range frames {
		if s, ok := m.(wire.StatsSnapshot); ok {
			return s
		}
	}
	t.Fatal("no stats snapshot in frame stream")
	return wire.StatsSnapshot{}
}

// TestResumeZeroLoss cuts a session mid-protocol, resumes it, and
// verifies the stitched decision stream and metrics are identical to an
// uninterrupted run: the journal replays every unconfirmed frame and the
// engine position survives the disconnect.
func TestResumeZeroLoss(t *testing.T) {
	sess := testSession(t, 0)
	if len(sess.Events) < 4 {
		t.Fatalf("test device has only %d events", len(sess.Events))
	}
	baseline := driveLoopback(t, New(Config{}), sess)

	for _, cut := range []int{1, len(sess.Events) / 2, len(sess.Events) - 1} {
		t.Run(fmt.Sprintf("cut_at_%d", cut), func(t *testing.T) {
			srv := New(Config{})
			before := admitAndCut(t, srv, sess, cut)
			after, err := resumeAndFinish(t, srv, sess, uint64(len(before)))
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			got := append(decisionsOf(before), decisionsOf(after)...)
			if len(got) != len(baseline.Decisions) {
				t.Fatalf("stitched run has %d decisions, baseline %d", len(got), len(baseline.Decisions))
			}
			for i := range got {
				if fmt.Sprintf("%+v", got[i]) != fmt.Sprintf("%+v", baseline.Decisions[i]) {
					t.Fatalf("decision %d differs:\n got %+v\nwant %+v", i, got[i], baseline.Decisions[i])
				}
			}
			if stats := statsOf(t, after); stats != baseline.Stats {
				t.Errorf("stitched stats %+v, baseline %+v", stats, baseline.Stats)
			}
			s := srv.Stats()
			if s.Parked != 1 || s.Resumed != 1 || s.Completed != 1 || s.Errored != 0 || s.Detached != 0 {
				t.Errorf("counters after resume: %+v", s)
			}
		})
	}
}

// TestResumeTokenMismatch verifies a Resume with the wrong token cannot
// adopt a parked session — and does not destroy it either.
func TestResumeTokenMismatch(t *testing.T) {
	sess := testSession(t, 1)
	srv := New(Config{})
	before := admitAndCut(t, srv, sess, 1)

	c, sconn := net.Pipe()
	srvErr := make(chan error, 1)
	go func() { srvErr <- srv.ServeConn(sconn) }()
	w := wire.NewWriter(c)
	if err := w.Write(wire.Resume{DeviceID: sess.Hello.DeviceID, Token: 12345, Got: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.NewReader(c).Next(); err == nil {
		t.Fatal("forged resume got a frame, want refusal")
	}
	c.Close()
	if err := <-srvErr; err == nil || errors.Is(err, ErrSessionParked) {
		t.Fatalf("forged resume session error = %v, want terminal refusal", err)
	}
	if s := srv.Stats(); s.ResumeMisses != 1 || s.Detached != 1 {
		t.Errorf("counters after forged resume: %+v", s)
	}

	// The genuine client still resumes.
	if _, err := resumeAndFinish(t, srv, sess, uint64(len(before))); err != nil {
		t.Fatalf("genuine resume after forgery: %v", err)
	}
}

// TestResumeGraceExpiry verifies a parked session is discarded once its
// grace elapses on the injected clock.
func TestResumeGraceExpiry(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1_000_000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	srv := New(Config{ResumeGrace: time.Minute, Clock: clock})
	sess := testSession(t, 2)
	admitAndCut(t, srv, sess, 1)
	if s := srv.Stats(); s.Detached != 1 {
		t.Fatalf("detached = %d, want 1", s.Detached)
	}

	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	if _, err := resumeAndFinish(t, srv, sess, 0); err == nil {
		t.Fatal("resume after grace expiry succeeded, want miss")
	}
	if s := srv.Stats(); s.Discarded != 1 || s.Detached != 0 || s.ResumeMisses != 1 {
		t.Errorf("counters after expiry: %+v", s)
	}
}

// TestRetainSessionsEviction verifies the registry cap discards the
// oldest parked session first.
func TestRetainSessionsEviction(t *testing.T) {
	srv := New(Config{RetainSessions: 1})
	sess0 := testSession(t, 0)
	sess1 := testSession(t, 1)
	admitAndCut(t, srv, sess0, 1)
	admitAndCut(t, srv, sess1, 1)
	if s := srv.Stats(); s.Detached != 1 || s.Discarded != 1 {
		t.Fatalf("counters after over-cap parks: %+v", s)
	}
	if _, err := resumeAndFinish(t, srv, sess0, 0); err == nil {
		t.Error("evicted session resumed, want miss")
	}
	if _, err := resumeAndFinish(t, srv, sess1, 0); err != nil {
		t.Errorf("retained session resume: %v", err)
	}
}

// TestResumeDisabled verifies ResumeGrace < 0 restores the seed
// fail-on-disconnect behavior.
func TestResumeDisabled(t *testing.T) {
	srv := New(Config{ResumeGrace: -1})
	sess := testSession(t, 0)
	c, sconn := net.Pipe()
	srvErr := make(chan error, 1)
	go func() { srvErr <- srv.ServeConn(sconn) }()
	w := wire.NewWriter(c)
	r := wire.NewReader(c)
	if err := w.Write(sess.Hello); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := <-srvErr; err == nil || errors.Is(err, ErrSessionParked) {
		t.Fatalf("disconnect with parking disabled: %v, want terminal error", err)
	}
	if s := srv.Stats(); s.Errored != 1 || s.Parked != 0 {
		t.Errorf("counters: %+v", s)
	}
}

// TestShutdownDiscardsDetached verifies Shutdown empties the parked
// registry and refuses later resumes.
func TestShutdownDiscardsDetached(t *testing.T) {
	srv := New(Config{})
	sess := testSession(t, 1)
	admitAndCut(t, srv, sess, 1)
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s := srv.Stats(); s.Detached != 0 || s.Discarded != 1 {
		t.Errorf("counters after shutdown: %+v", s)
	}
	c, sconn := net.Pipe()
	defer c.Close()
	if err := srv.ServeConn(sconn); err != ErrServerClosed {
		t.Errorf("resume after shutdown: %v, want ErrServerClosed", err)
	}
}

// TestShutdownDrainTimeout is the regression for the unbounded drain: a
// peer that stops reading wedges its session on a blocked decision
// write, and Shutdown — with no context deadline at all — must still
// return once DrainTimeout forces the connection's I/O to fail.
func TestShutdownDrainTimeout(t *testing.T) {
	srv := New(Config{
		Clock:        time.Now,
		DrainTimeout: 50 * time.Millisecond,
		// Parking is irrelevant here: the server is draining, so the
		// wedged session cannot park and must error out.
	})
	sess := testSession(t, 0)
	c, sconn := net.Pipe()
	defer c.Close()
	srvErr := make(chan error, 1)
	go func() { srvErr <- srv.ServeConn(sconn) }()
	w := wire.NewWriter(c)
	r := wire.NewReader(c)
	if err := w.Write(sess.Hello); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	// Feed events until the session wedges: it will emit a decision that
	// this client never reads, blocking the processor on the pipe write.
	// Event writes themselves keep succeeding until the queue fills, so
	// write from a goroutine and stop caring once shutdown begins.
	go func() {
		for _, ev := range sess.Events {
			if err := w.Write(ev); err != nil {
				return
			}
		}
		w.Write(wire.Ack{Seq: uint64(len(sess.Events)) + 1})
	}()
	// Wait until the session is provably wedged mid-write (frames out
	// stalls while the queue is full) — or just give it a moment.
	time.Sleep(20 * time.Millisecond)

	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(context.Background()) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown never returned: drain is unbounded")
	}
	if err := <-srvErr; err == nil {
		t.Error("wedged session returned nil, want deadline error")
	}
}
