package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ShardSnapshot is one registered shard as the controller snapshot
// records it: identity, advertised session address, and the drain flag.
// Connection state is deliberately absent — a restarted controller has
// no live conns, and the member is restored as a phantom the real shard
// re-attaches to.
type ShardSnapshot struct {
	ID       uint64 `json:"id"`
	Addr     string `json:"addr"`
	Draining bool   `json:"draining,omitempty"`
}

// ControllerSnapshot is the controller's durable state: everything a
// restart needs to publish the same route table at the same epoch
// without a rebuild storm. It is the schema of the -snapshot JSON file.
type ControllerSnapshot struct {
	Epoch    uint64          `json:"epoch"`
	RingSeed int64           `json:"ring_seed"`
	Vnodes   int             `json:"vnodes"`
	Shards   []ShardSnapshot `json:"shards"`
	Deaths   uint64          `json:"deaths"`
	Drains   uint64          `json:"drains"`
}

// Snapshot captures the controller's durable state under one lock:
// epoch, ring parameters, removal counters, and the member list in
// ascending shard-ID order (so successive snapshot files diff cleanly).
func (c *Controller) Snapshot() ControllerSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := ControllerSnapshot{
		Epoch:    c.epoch,
		RingSeed: c.cfg.RingSeed,
		Vnodes:   c.cfg.Vnodes,
		Shards:   make([]ShardSnapshot, 0, len(c.shards)),
		Deaths:   c.deaths,
		Drains:   c.drains,
	}
	for _, sh := range c.shards {
		snap.Shards = append(snap.Shards, ShardSnapshot{ID: sh.id, Addr: sh.addr, Draining: sh.draining})
	}
	sortShardSnapshots(snap.Shards)
	return snap
}

func sortShardSnapshots(s []ShardSnapshot) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].ID < s[j-1].ID; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// WriteSnapshot atomically persists the controller's current snapshot
// to path: marshal, write to a temp file in the same directory, fsync,
// rename. A crash mid-write leaves either the old file or the new one,
// never a torn JSON.
func (c *Controller) WriteSnapshot(path string) error {
	snap := c.Snapshot()
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("cluster: snapshot marshal: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".etrain-snapshot-*")
	if err != nil {
		return fmt.Errorf("cluster: snapshot temp: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("cluster: snapshot write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("cluster: snapshot sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cluster: snapshot close: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("cluster: snapshot rename: %w", err)
	}
	return nil
}

// LoadSnapshot reads a snapshot file written by WriteSnapshot. A
// missing file is an error — the caller decides whether boot-without-
// state is acceptable (etraind treats it as a cold start).
func LoadSnapshot(path string) (*ControllerSnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: snapshot read: %w", err)
	}
	var snap ControllerSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("cluster: snapshot parse %s: %w", path, err)
	}
	if snap.Vnodes <= 0 {
		return nil, fmt.Errorf("cluster: snapshot %s: vnodes %d out of range", path, snap.Vnodes)
	}
	seen := make(map[uint64]bool, len(snap.Shards))
	for _, sh := range snap.Shards {
		if sh.ID == 0 {
			return nil, fmt.Errorf("cluster: snapshot %s: shard id 0 is reserved", path)
		}
		if seen[sh.ID] {
			return nil, fmt.Errorf("cluster: snapshot %s: duplicate shard id %d", path, sh.ID)
		}
		seen[sh.ID] = true
	}
	return &snap, nil
}
