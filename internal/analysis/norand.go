package analysis

import "strconv"

// randPackages are the randomness sources that must not be imported
// directly: both stdlib PRNG flavours and the OS entropy source. Every
// stream in the repository is identity-seeded through internal/randx so a
// run's output is a pure function of its seed.
var randPackages = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// randBoundary is the one package allowed to wrap the stdlib generators.
var randBoundary = []string{"etrain/internal/randx"}

// NoRand forbids importing math/rand, math/rand/v2, or crypto/rand outside
// internal/randx. Direct rand use either seeds from global state
// (math/rand's default source) or from the OS (crypto/rand), and both break
// the identity-seeded determinism contract of the sweep engine.
var NoRand = &Analyzer{
	Name: "norand",
	Doc: "forbid direct math/rand, math/rand/v2 and crypto/rand imports " +
		"outside internal/randx; all streams are identity-seeded via randx",
	Exempt: func(pkgPath string) bool {
		return pathIsAny(pkgPath, randBoundary...)
	},
	Run: runNoRand,
}

func runNoRand(pass *Pass) error {
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if randPackages[path] {
				pass.Reportf(imp.Pos(),
					"import of %s outside internal/randx; derive a deterministic stream with randx.New/randx.Derive instead",
					path)
			}
		}
	}
	return nil
}
