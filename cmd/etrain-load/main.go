// Command etrain-load replays a synthesized device fleet against an
// etraind server over N concurrent connections and reports throughput and
// session-latency percentiles.
//
// Usage:
//
//	go run ./cmd/etrain-load -devices 1000 -conns 16            # in-process loopback
//	go run ./cmd/etrain-load -addr 127.0.0.1:4810 -devices 1000 # against etraind
//
// With an empty -addr the generator hosts the server itself and drives it
// over in-process net.Pipe loopback — the same path the CI soak takes —
// so the service layer can be measured without a network.
//
// Devices are synthesized exactly like etrain-fleet's (identity-derived
// from -seed), so a load run replays the same population a fleet
// simulation reports on. This command is a wall-clock boundary of the
// service subsystem: session latency is measured here, never inside
// internal/server.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"etrain/internal/fleet"
	"etrain/internal/parallel"
	"etrain/internal/server"
	"etrain/internal/stats"
	"etrain/internal/workload"
)

func main() {
	addr := flag.String("addr", "", "etraind address (empty: in-process loopback server)")
	devices := flag.Int("devices", 1000, "devices to replay")
	conns := flag.Int("conns", 16, "concurrent connections (negative: one per CPU)")
	seed := flag.Int64("seed", 42, "fleet seed; device i derives from (seed, i)")
	theta := flag.Float64("theta", 4.0, "eTrain cost bound Θ")
	k := flag.Int("k", fleet.DefaultK, "per-heartbeat batch bound k")
	horizon := flag.Duration("horizon", 10*time.Minute, "per-device simulated span")
	alpha := flag.Float64("alpha", 0.01, "latency-sketch relative accuracy")
	quiet := flag.Bool("quiet", false, "suppress the per-run header")
	flag.Parse()

	if err := run(*addr, *devices, *conns, *seed, *theta, *k, *horizon, *alpha, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "etrain-load:", err)
		os.Exit(1)
	}
}

func run(addr string, devices, conns int, seed int64, theta float64, k int, horizon time.Duration, alpha float64, quiet bool) error {
	pop, err := workload.NewPopulation(workload.DefaultMix())
	if err != nil {
		return err
	}
	sketch, err := stats.NewSketch(alpha)
	if err != nil {
		return err
	}

	var srv *server.Server
	dial := func() (net.Conn, error) { return net.Dial("tcp", addr) }
	if addr == "" {
		srv = server.New(server.Config{})
		dial = func() (net.Conn, error) {
			client, serverSide := net.Pipe()
			go srv.ServeConn(serverSide)
			return client, nil
		}
	}
	if !quiet {
		target := addr
		if target == "" {
			target = "in-process loopback"
		}
		fmt.Fprintf(os.Stderr, "etrain-load: %d devices over %d connections against %s\n",
			devices, parallel.Workers(conns), target)
	}

	var (
		mu       sync.Mutex
		latency  stats.Moments
		failures int
		firstErr error
	)
	//lint:ignore notime load-harness boundary: throughput and latency are wall-clock measurements of the service; the sessions themselves are deterministic
	started := time.Now()
	err = parallel.ForEach(parallel.NewLimit(conns), devices, func(i int) error {
		dev, err := fleet.SynthesizeDevice(seed, pop, i, horizon)
		if err != nil {
			return err
		}
		sess, err := server.SessionFromDevice(dev, theta, k)
		if err != nil {
			return err
		}
		conn, err := dial()
		if err != nil {
			return err
		}
		//lint:ignore notime load-harness boundary: session latency is measured at the client
		t0 := time.Now()
		_, err = server.Drive(conn, sess)
		//lint:ignore notime load-harness boundary: session latency is measured at the client
		elapsed := time.Since(t0)
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			failures++
			if firstErr == nil {
				firstErr = fmt.Errorf("device %d: %w", i, err)
			}
			return nil // keep loading; failures are reported in the summary
		}
		ms := float64(elapsed) / float64(time.Millisecond)
		latency.Add(ms)
		sketch.Add(ms)
		return nil
	})
	//lint:ignore notime load-harness boundary: throughput and latency are wall-clock measurements of the service; the sessions themselves are deterministic
	wall := time.Since(started)
	if err != nil {
		return err
	}

	ok := devices - failures
	fmt.Printf("sessions     %d ok, %d failed\n", ok, failures)
	fmt.Printf("wall         %s\n", wall.Round(time.Millisecond))
	if wall > 0 {
		fmt.Printf("throughput   %.1f sessions/s\n", float64(ok)/wall.Seconds())
	}
	if latency.N() > 0 {
		p50, p90, p99 := quantile(sketch, 50), quantile(sketch, 90), quantile(sketch, 99)
		fmt.Printf("latency ms   mean %.2f  min %.2f  max %.2f\n", latency.Mean(), latency.Min(), latency.Max())
		fmt.Printf("percentiles  p50 %.2f  p90 %.2f  p99 %.2f\n", p50, p90, p99)
	}
	if srv != nil {
		s := srv.Stats()
		fmt.Printf("server       frames in/out %d/%d  decisions %d\n", s.FramesIn, s.FramesOut, s.Decisions)
	}
	if firstErr != nil {
		fmt.Fprintln(os.Stderr, "etrain-load: first failure:", firstErr)
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d sessions failed", failures, devices)
	}
	return nil
}

// quantile reads one sketch percentile (0–100), mapping the empty-sketch
// error to 0.
func quantile(s *stats.Sketch, p float64) float64 {
	v, err := s.Quantile(p)
	if err != nil {
		return 0
	}
	return v
}
