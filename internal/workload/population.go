package workload

import (
	"fmt"
	"math"
	"sort"
	"time"

	"etrain/internal/randx"
)

// ClassShare weights one activeness class within a synthesized device
// population, generalizing the three fixed groups of the paper's Fig. 11
// deployment to arbitrary mixes.
type ClassShare struct {
	// Class is the activeness class.
	Class ActivenessClass
	// Weight is the class's relative share; shares need not sum to 1.
	Weight float64
}

// ParseClass converts a mix-flag token to an ActivenessClass.
func ParseClass(s string) (ActivenessClass, error) {
	switch s {
	case "active":
		return ClassActive, nil
	case "moderate":
		return ClassModerate, nil
	case "inactive":
		return ClassInactive, nil
	default:
		return 0, fmt.Errorf("workload: unknown activeness class %q", s)
	}
}

// DefaultMix returns the population mix used for population-scale Fig. 11
// runs. The paper reports per-class savings over 100+ deployed users but
// not the group sizes; this mix assumes the familiar engagement pyramid —
// most users inactive, a thin highly-active head.
func DefaultMix() []ClassShare {
	return []ClassShare{
		{Class: ClassActive, Weight: 0.2},
		{Class: ClassModerate, Weight: 0.3},
		{Class: ClassInactive, Weight: 0.5},
	}
}

// Population deterministically assigns activeness classes by mix weight.
type Population struct {
	shares []ClassShare
	cum    []float64 // cumulative weights, cum[len-1] = total
}

// NewPopulation validates a class mix and returns its sampler.
func NewPopulation(mix []ClassShare) (*Population, error) {
	if len(mix) == 0 {
		return nil, fmt.Errorf("workload: empty class mix")
	}
	p := &Population{
		shares: append([]ClassShare(nil), mix...),
		cum:    make([]float64, len(mix)),
	}
	total := 0.0
	for i, s := range mix {
		switch s.Class {
		case ClassActive, ClassModerate, ClassInactive:
		default:
			return nil, fmt.Errorf("workload: mix entry %d has unknown class %v", i, s.Class)
		}
		if s.Weight <= 0 || math.IsInf(s.Weight, 0) || math.IsNaN(s.Weight) {
			return nil, fmt.Errorf("workload: mix entry %d (%s) has non-positive weight %v", i, s.Class, s.Weight)
		}
		total += s.Weight
		p.cum[i] = total
	}
	return p, nil
}

// Shares returns a copy of the mix entries in declaration order.
func (p *Population) Shares() []ClassShare {
	return append([]ClassShare(nil), p.shares...)
}

// Pick maps a uniform draw u ∈ [0, 1) to a mix entry: the index into
// Shares and its class. The assignment is a pure function of u, so a
// device whose u is derived from its identity gets the same class no
// matter which worker simulates it.
func (p *Population) Pick(u float64) (int, ActivenessClass) {
	if u < 0 {
		u = 0
	}
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	target := u * p.cum[len(p.cum)-1]
	i := sort.SearchFloat64s(p.cum, target)
	// SearchFloat64s returns the first index with cum[i] >= target; a draw
	// landing exactly on a boundary belongs to the next entry.
	if i < len(p.cum) && p.cum[i] == target {
		i++
	}
	if i >= len(p.shares) {
		i = len(p.shares) - 1
	}
	return i, p.shares[i].Class
}

// SynthesizeSession generates a user trace of the requested activeness
// class over a session of the given length: upload events uniformly
// spread through the session with weibo-like sizes, interleaved with
// browse-triggered downloads. Event counts scale linearly with the
// session length relative to the paper's 10-minute app-use window, so a
// class keeps its per-window upload density at any horizon.
// SynthesizeSession(src, id, class, SessionLength) consumes exactly the
// same draws as SynthesizeUser and returns the same trace.
func SynthesizeSession(src *randx.Source, userID string, class ActivenessClass, length time.Duration) []BehaviorRecord {
	uploads := scaleSessionCount(uploadsFor(src, class), length)
	downloads := uploads/2 + src.Intn(uploads+1)
	var records []BehaviorRecord
	for i := 0; i < uploads; i++ {
		records = append(records, BehaviorRecord{
			UserID:   userID,
			Behavior: BehaviorUpload,
			At:       time.Duration(src.Float64() * float64(length)),
			Size:     int64(src.TruncatedNormal(2*1024, 1024, 100)),
		})
	}
	for i := 0; i < downloads; i++ {
		records = append(records, BehaviorRecord{
			UserID:   userID,
			Behavior: BehaviorDownload,
			At:       time.Duration(src.Float64() * float64(length)),
			Size:     int64(src.TruncatedNormal(8*1024, 4*1024, 500)),
		})
	}
	sort.SliceStable(records, func(i, j int) bool { return records[i].At < records[j].At })
	return records
}

// scaleSessionCount scales a per-10-minute-window event count to the
// session length, keeping at least one event. Scaling by exactly 1.0 is
// the identity, which keeps SynthesizeUser bit-compatible.
func scaleSessionCount(base int, length time.Duration) int {
	scaled := int(math.Round(float64(base) * float64(length) / float64(SessionLength)))
	if scaled < 1 {
		return 1
	}
	return scaled
}
