// Package fleet simulates an entire device population — each device a
// full eTrain system with its own heartbeat trains, cargo mix and
// user-activeness class — and aggregates per-device outcomes into
// streaming, mergeable statistics, so memory scales with the number of
// shards, never with the number of devices.
//
// The engine generalizes the paper's Fig. 11 deployment (100+ real users
// grouped by activeness, single-number savings per group) to
// population-scale distributions: per-class energy-saving and delay
// quantiles over 100k+ simulated devices.
//
// Determinism contract (DESIGN.md §9): a device's entire behavior is a
// pure function of (fleet seed, device index); devices are partitioned
// into fixed-size shards independent of the worker count; each shard
// folds its devices in index order into mergeable aggregates
// (stats.Moments, stats.Sketch); and shard aggregates merge in
// shard-index order. Worker count and scheduling order are therefore
// invisible: the final report is byte-identical at 1 and N workers, and a
// run resumed from a shard-boundary checkpoint reproduces the byte-exact
// report of an uninterrupted run.
package fleet

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"etrain/internal/diurnal"
	"etrain/internal/parallel"
	"etrain/internal/radio"
	"etrain/internal/randx"
	"etrain/internal/stats"
	"etrain/internal/workload"
)

// DefaultShardSize is the default number of devices per shard. Shards are
// the unit of parallelism, aggregation and checkpointing; the default
// keeps shard counts (and hence resident aggregate memory) small while
// leaving plenty of shards to spread across workers.
const DefaultShardSize = 256

// DefaultK is the per-heartbeat batch bound handed to each device's
// eTrain scheduler when Config.K is unset, matching the paper's k=20.
const DefaultK = 20

// ErrHalted reports that Config.Halt stopped the run at a shard boundary.
// When a checkpoint path is configured, the completed shards were
// snapshotted before returning; resuming later reproduces the
// uninterrupted run's report byte for byte.
var ErrHalted = errors.New("fleet: run halted at shard boundary")

// Config describes one population run.
type Config struct {
	// Devices is the population size. Required.
	Devices int
	// ShardSize is the number of devices per shard (default
	// DefaultShardSize). The shard layout is part of the run's identity:
	// it is independent of Workers, and changing it changes the
	// config hash.
	ShardSize int
	// Workers bounds concurrent shard simulations: n > 0 verbatim, 0
	// sequential, negative one per CPU. The report is byte-identical at
	// every setting.
	Workers int
	// Seed drives all randomness; every device stream is derived from
	// (Seed, device index).
	Seed int64
	// Horizon is each device's simulated span (default the paper's
	// 10-minute app-use session).
	Horizon time.Duration
	// Theta is the eTrain cost bound Θ handed to every device.
	Theta float64
	// K is the per-heartbeat batch bound (default DefaultK).
	K int
	// Mix is the activeness-class composition of the population (default
	// workload.DefaultMix()).
	Mix []workload.ClassShare
	// SketchAlpha is the relative accuracy of the quantile sketches
	// (default stats.DefaultSketchAlpha).
	SketchAlpha float64
	// Diurnal, when non-nil, shapes every device's cargo and heartbeat
	// cadence by the profile's activity curves and scheduled events. It is
	// part of the run's identity (the profile hash enters the config hash),
	// and a nil profile reproduces the legacy fleet byte for byte.
	Diurnal *diurnal.Profile
	// Radio, when non-empty, names the radio generation every device's
	// energy is accounted under (radio.ModelByName: "3g", "lte-drx",
	// "nr-drx", ...). Empty keeps the legacy 3G RRC power model and the
	// legacy config hash.
	Radio string

	// radioModel is Radio resolved by normalize.
	radioModel radio.Model

	// CheckpointPath, when non-empty, is where shard-boundary snapshots
	// are written (atomically, via a temp file and rename). A final
	// snapshot is written on success and on halt.
	CheckpointPath string
	// CheckpointEvery writes a snapshot after every n-th completed shard;
	// 0 snapshots only on halt and at the end.
	CheckpointEvery int
	// Resume loads CheckpointPath before running and skips the shards it
	// holds. The checkpoint's config hash must match this config.
	Resume bool

	// Progress, when non-nil, is invoked after every completed shard with
	// (completed, total). Calls are serialized; completion order is
	// scheduler-dependent even though the results are not. The fleet
	// engine itself never reads the wall clock — rate/ETA math belongs to
	// the caller (see cmd/etrain-fleet).
	Progress func(done, total int)
	// Halt, when non-nil, is polled before each shard starts; returning
	// true stops the run at the next shard boundary with ErrHalted.
	Halt func() bool
}

// normalize applies defaults and validates, returning the effective
// config and the population sampler.
func (c Config) normalize() (Config, *workload.Population, error) {
	if c.Devices <= 0 {
		return c, nil, fmt.Errorf("fleet: non-positive device count %d", c.Devices)
	}
	if c.ShardSize < 0 {
		return c, nil, fmt.Errorf("fleet: negative shard size %d", c.ShardSize)
	}
	if c.ShardSize == 0 {
		c.ShardSize = DefaultShardSize
	}
	switch {
	case c.Workers == 0:
		c.Workers = 1
	case c.Workers < 0:
		c.Workers = parallel.Workers(0)
	}
	if c.Horizon < 0 {
		return c, nil, fmt.Errorf("fleet: negative horizon %v", c.Horizon)
	}
	if c.Horizon == 0 {
		c.Horizon = workload.SessionLength
	}
	if c.Theta < 0 {
		return c, nil, fmt.Errorf("fleet: negative theta %v", c.Theta)
	}
	if c.K < 0 {
		return c, nil, fmt.Errorf("fleet: negative k %d", c.K)
	}
	if c.K == 0 {
		c.K = DefaultK
	}
	if c.SketchAlpha == 0 {
		c.SketchAlpha = stats.DefaultSketchAlpha
	}
	if !(c.SketchAlpha > 0 && c.SketchAlpha < 1) {
		return c, nil, fmt.Errorf("fleet: sketch alpha %v outside (0, 1)", c.SketchAlpha)
	}
	if c.Mix == nil {
		c.Mix = workload.DefaultMix()
	}
	if c.CheckpointEvery < 0 {
		return c, nil, fmt.Errorf("fleet: negative checkpoint interval %d", c.CheckpointEvery)
	}
	if c.Resume && c.CheckpointPath == "" {
		return c, nil, fmt.Errorf("fleet: Resume set without a checkpoint path")
	}
	if c.Diurnal != nil {
		if err := c.Diurnal.Validate(); err != nil {
			return c, nil, fmt.Errorf("fleet: %w", err)
		}
	}
	if c.Radio != "" {
		m, err := radio.ModelByName(c.Radio)
		if err != nil {
			return c, nil, fmt.Errorf("fleet: %w", err)
		}
		c.radioModel = m
	}
	pop, err := workload.NewPopulation(c.Mix)
	if err != nil {
		return c, nil, err
	}
	return c, pop, nil
}

// shardCount returns how many shards the (normalized) config produces.
func (c Config) shardCount() int {
	return (c.Devices + c.ShardSize - 1) / c.ShardSize
}

// shardRange returns the device index range [lo, hi) of shard s.
func (c Config) shardRange(s int) (lo, hi int) {
	lo = s * c.ShardSize
	hi = lo + c.ShardSize
	if hi > c.Devices {
		hi = c.Devices
	}
	return lo, hi
}

// hash names the run's simulation identity: everything that shapes the
// per-device results and the aggregate layout, and nothing that does not
// (worker count, checkpoint cadence and callbacks are excluded — a
// checkpoint taken at one worker count resumes at any other).
func (c Config) hash() string {
	var mix strings.Builder
	for i, s := range c.Mix {
		if i > 0 {
			mix.WriteByte(',')
		}
		fmt.Fprintf(&mix, "%s:%g", s.Class, s.Weight)
	}
	canonical := fmt.Sprintf(
		"fleet/v%d devices=%d shard_size=%d seed=%d horizon=%s theta=%g k=%d alpha=%g mix=%s",
		checkpointVersion, c.Devices, c.ShardSize, c.Seed, c.Horizon, c.Theta, c.K, c.SketchAlpha, mix.String())
	// Diurnal and radio tokens appear only when set, so legacy configs keep
	// their hashes and old checkpoints stay resumable.
	if c.Radio != "" {
		canonical += fmt.Sprintf(" radio=%s", c.Radio)
	}
	if c.Diurnal != nil {
		canonical += fmt.Sprintf(" diurnal=%s", c.Diurnal.Hash())
	}
	return fmt.Sprintf("%016x", randx.DeriveString(canonical))
}

// Run simulates the population and returns its report. With Resume set it
// first loads the checkpoint and simulates only the missing shards; the
// report is byte-identical to an uninterrupted run's.
func Run(cfg Config) (*Report, error) {
	norm, pop, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	hash := norm.hash()
	shards := norm.shardCount()
	aggs := make([]*ShardAggregate, shards)
	completed := make([]bool, shards)
	done := 0
	if norm.Resume {
		done, err = loadCheckpoint(norm.CheckpointPath, hash, aggs, completed, &norm)
		if err != nil {
			return nil, err
		}
	}
	if norm.Progress != nil {
		norm.Progress(done, shards)
	}

	var ckptErr error
	runErr := parallel.ForEachStatus(parallel.NewLimit(norm.Workers), shards, func(s int) error {
		if completed[s] {
			return nil
		}
		if norm.Halt != nil && norm.Halt() {
			return ErrHalted
		}
		agg, err := runShard(&norm, pop, s)
		if err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
		aggs[s] = agg
		return nil
	}, func(s int, err error) {
		// Serialized by ForEachStatus: safe to count progress and to
		// snapshot every shard this hook has been told about.
		if err != nil || completed[s] {
			return
		}
		completed[s] = true
		done++
		if norm.Progress != nil {
			norm.Progress(done, shards)
		}
		if norm.CheckpointPath != "" && norm.CheckpointEvery > 0 && done%norm.CheckpointEvery == 0 {
			if werr := writeCheckpoint(norm.CheckpointPath, hash, aggs, completed); werr != nil && ckptErr == nil {
				ckptErr = werr
			}
		}
	})
	if runErr != nil {
		if !haltOnly(runErr) {
			return nil, runErr
		}
		if norm.CheckpointPath != "" {
			if err := writeCheckpoint(norm.CheckpointPath, hash, aggs, completed); err != nil {
				return nil, err
			}
		}
		return nil, ErrHalted
	}
	if ckptErr != nil {
		return nil, ckptErr
	}
	if norm.CheckpointPath != "" {
		if err := writeCheckpoint(norm.CheckpointPath, hash, aggs, completed); err != nil {
			return nil, err
		}
	}
	return buildReport(&norm, hash, aggs)
}

// haltOnly reports whether every failure in a fan-out error is ErrHalted.
func haltOnly(err error) bool {
	var errs parallel.Errors
	if !errors.As(err, &errs) {
		return errors.Is(err, ErrHalted)
	}
	for _, e := range errs {
		if !errors.Is(e.Err, ErrHalted) {
			return false
		}
	}
	return len(errs) > 0
}

// runShard simulates the devices of shard s and folds their outcomes, in
// device-index order, into one aggregate.
//
//etrain:hotpath
func runShard(cfg *Config, pop *workload.Population, s int) (*ShardAggregate, error) {
	agg, err := newShardAggregate(s, len(cfg.Mix), cfg.SketchAlpha)
	if err != nil {
		return nil, err
	}
	lo, hi := cfg.shardRange(s)
	for i := lo; i < hi; i++ {
		out, err := runDevice(cfg, pop, i)
		if err != nil {
			return nil, fmt.Errorf("device %d: %w", i, err)
		}
		agg.add(out)
	}
	return agg, nil
}
