// Command etrain-load replays a synthesized device fleet against an
// etraind server over N concurrent connections and reports throughput and
// session-latency percentiles.
//
// Usage:
//
//	go run ./cmd/etrain-load -devices 1000 -conns 16            # in-process loopback
//	go run ./cmd/etrain-load -addr 127.0.0.1:4810 -devices 1000 # against etraind
//	go run ./cmd/etrain-load -devices 500 -faults 0.1           # chaos soak
//
// With an empty -addr the generator hosts the server itself and drives it
// over in-process net.Pipe loopback — the same path the CI soak takes —
// so the service layer can be measured without a network.
//
// Sessions run through the self-healing internal/client, so a dropped
// connection reconnects and resumes rather than failing the device.
// -faults injects deterministic transport chaos (drops, resets, mid-frame
// truncation, refused dials) via internal/faultnet, seeded by -fault-seed:
// the summary then also reports how much healing — reconnects, resumes,
// full replays, degraded local scheduling — the fleet needed. -json
// writes the whole report to a file for etrain-benchjson -load to fold
// into BENCH_server.json.
//
// With -cluster ADDR the generator runs against a sharded etraind
// cluster instead of one server (DESIGN.md §13): it subscribes to the
// controller's route table at ADDR, routes every device to its owning
// shard through the consistent-hash ring, and follows pushed table
// updates — a shard killed mid-run strands its clients for exactly as
// long as rerouting takes, and the report's failover-recovery
// percentiles measure that window (first failed dial to the next
// successful one). The summary then also prints the fleet-wide merged
// stats block ("fleet ..." lines, folded in device-index order), which
// is byte-comparable against a single-process run of the same fleet —
// the cluster CI job diffs exactly that.
//
// Devices are synthesized exactly like etrain-fleet's (identity-derived
// from -seed), so a load run replays the same population a fleet
// simulation reports on. This command is a wall-clock boundary of the
// service subsystem: session latency is measured here, never inside
// internal/server.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"etrain/internal/client"
	"etrain/internal/cluster"
	"etrain/internal/diurnal"
	"etrain/internal/faultnet"
	"etrain/internal/fleet"
	"etrain/internal/parallel"
	"etrain/internal/server"
	"etrain/internal/stats"
	"etrain/internal/wire"
	"etrain/internal/workload"
)

func main() {
	addr := flag.String("addr", "", "etraind address (empty: in-process loopback server)")
	clusterAddr := flag.String("cluster", "", "cluster controller control address: route devices by the live route table")
	devices := flag.Int("devices", 1000, "devices to replay")
	conns := flag.Int("conns", 16, "concurrent connections (negative: one per CPU)")
	seed := flag.Int64("seed", 42, "fleet seed; device i derives from (seed, i)")
	theta := flag.Float64("theta", 4.0, "eTrain cost bound Θ")
	k := flag.Int("k", fleet.DefaultK, "per-heartbeat batch bound k")
	horizon := flag.Duration("horizon", 10*time.Minute, "per-device simulated span")
	alpha := flag.Float64("alpha", 0.01, "latency-sketch relative accuracy")
	faults := flag.Float64("faults", 0, "transport fault intensity in [0, 1): per-op drop f/2, reset f/4, truncate f/4, dial refusal f/4")
	faultSeed := flag.Int64("fault-seed", 1, "seed rooting the deterministic fault schedule")
	jsonPath := flag.String("json", "", "also write the report as JSON to this file")
	quiet := flag.Bool("quiet", false, "suppress the per-run header")
	diurnalFlag := flag.String("diurnal", "", "diurnal activity profile shaping device replays (flat, week, weekday, weekend; empty: none)")
	timeScale := flag.Float64("time-scale", 0, "diurnal clock compression (0: profile default; requires -diurnal)")
	admissionRate := flag.Float64("admission-rate", 0, "loopback server hello admission rate per second (0: admission off; loopback mode only)")
	admissionBurst := flag.Float64("admission-burst", 0, "loopback server admission burst (with -admission-rate)")
	retryBudget := flag.Int("retry-budget", 0, "per-session busy-retry budget (0: client default)")
	flag.Parse()

	prof, err := parseDiurnal(*diurnalFlag, *timeScale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "etrain-load:", err)
		os.Exit(2)
	}
	if err := run(config{
		addr:      *addr,
		cluster:   *clusterAddr,
		devices:   *devices,
		conns:     *conns,
		seed:      *seed,
		theta:     *theta,
		k:         *k,
		horizon:   *horizon,
		alpha:     *alpha,
		faults:    *faults,
		faultSeed: *faultSeed,
		jsonPath:  *jsonPath,
		quiet:     *quiet,
		diurnal:   prof,

		admissionRate:  *admissionRate,
		admissionBurst: *admissionBurst,
		retryBudget:    *retryBudget,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "etrain-load:", err)
		os.Exit(1)
	}
}

// config carries the parsed flags.
type config struct {
	addr      string
	cluster   string
	devices   int
	conns     int
	seed      int64
	theta     float64
	k         int
	horizon   time.Duration
	alpha     float64
	faults    float64
	faultSeed int64
	jsonPath  string
	quiet     bool
	diurnal   *diurnal.Profile

	admissionRate  float64
	admissionBurst float64
	retryBudget    int
}

// parseDiurnal resolves the -diurnal preset with the -time-scale
// override applied.
func parseDiurnal(name string, timeScale float64) (*diurnal.Profile, error) {
	if name == "" {
		if timeScale != 0 {
			return nil, fmt.Errorf("-time-scale requires -diurnal")
		}
		return nil, nil
	}
	prof, err := diurnal.ByName(name)
	if err != nil {
		return nil, err
	}
	if timeScale != 0 {
		prof.TimeScale = timeScale
	}
	return prof, prof.Validate()
}

// report is the machine-readable run summary -json emits; field names are
// the BENCH_server.json vocabulary.
type report struct {
	Devices    int     `json:"devices"`
	Conns      int     `json:"conns"`
	Faults     float64 `json:"faults"`
	FaultSeed  int64   `json:"fault_seed,omitempty"`
	SessionsOK int     `json:"sessions_ok"`
	Failed     int     `json:"sessions_failed"`
	WallMs     float64 `json:"wall_ms"`
	SessionsPS float64 `json:"sessions_per_sec"`

	LatencyMeanMs float64 `json:"latency_mean_ms"`
	LatencyP50Ms  float64 `json:"latency_p50_ms"`
	LatencyP90Ms  float64 `json:"latency_p90_ms"`
	LatencyP99Ms  float64 `json:"latency_p99_ms"`

	Reconnects       int `json:"reconnects"`
	Resumes          int `json:"resumes"`
	Replays          int `json:"replays"`
	DegradedSessions int `json:"degraded_sessions"`
	// DegradedUnreconciled counts degraded sessions whose final frames
	// were produced locally and never confirmed by a server. Counting
	// only DegradedSessions understates chaos damage: a session that
	// degraded for one stint and then reconciled is a different outcome
	// from one the server never saw finish.
	DegradedUnreconciled int     `json:"degraded_unreconciled"`
	DegradedEvents       int     `json:"degraded_events"`
	DegradedMs           float64 `json:"degraded_ms"`

	// The overload ledger: how often servers pushed back with Busy, how
	// many sessions ran their retry budget dry, and the summed
	// seed-jittered busy wait — the fleet's herd-recovery latency
	// contribution.
	BusyResponses        int     `json:"busy_responses,omitempty"`
	RetryBudgetExhausted int     `json:"retry_budget_exhausted,omitempty"`
	BusyWaitMs           float64 `json:"busy_wait_ms,omitempty"`

	InjectedDrops       uint64 `json:"injected_drops,omitempty"`
	InjectedResets      uint64 `json:"injected_resets,omitempty"`
	InjectedTruncations uint64 `json:"injected_truncations,omitempty"`
	InjectedDialFails   uint64 `json:"injected_dial_fails,omitempty"`

	ServerParked    uint64 `json:"server_parked,omitempty"`
	ServerResumed   uint64 `json:"server_resumed,omitempty"`
	ServerFramesIn  uint64 `json:"server_frames_in,omitempty"`
	ServerFramesOut uint64 `json:"server_frames_out,omitempty"`
	ServerDecisions uint64 `json:"server_decisions,omitempty"`
	ServerRefused   uint64 `json:"server_refused,omitempty"`
	ServerShed      uint64 `json:"server_shed,omitempty"`
	ServerBusySent  uint64 `json:"server_busy_sent,omitempty"`

	// Cluster mode only: how often devices were rerouted to a new owner,
	// how many dial outages they rode out, and how long rerouting took —
	// the failover-recovery window from a device's first failed dial to
	// its next successful one.
	Cluster        string  `json:"cluster,omitempty"`
	Reroutes       int     `json:"reroutes,omitempty"`
	Recoveries     int     `json:"recoveries,omitempty"`
	RecoveryP50Ms  float64 `json:"recovery_p50_ms,omitempty"`
	RecoveryP99Ms  float64 `json:"recovery_p99_ms,omitempty"`
	RecoveryMaxMs  float64 `json:"recovery_max_ms,omitempty"`
	RecoveryMeanMs float64 `json:"recovery_mean_ms,omitempty"`

	// Fleet is the merged per-device stats fold (device-index order, so
	// it is a pure function of the device set regardless of shard layout).
	Fleet *cluster.FleetReport `json:"fleet,omitempty"`
}

func run(cfg config) error {
	if cfg.faults < 0 || cfg.faults >= 1 {
		return fmt.Errorf("faults %v outside [0, 1)", cfg.faults)
	}
	if cfg.cluster != "" && cfg.addr != "" {
		return fmt.Errorf("-cluster and -addr are mutually exclusive: the route table picks the address per device")
	}
	if cfg.cluster != "" && cfg.faults > 0 {
		return fmt.Errorf("-cluster does not compose with -faults: cluster chaos is injected by killing shards (see the cluster CI job), not by the transport injector")
	}
	if cfg.admissionRate > 0 && (cfg.addr != "" || cfg.cluster != "") {
		return fmt.Errorf("-admission-rate shapes the in-process loopback server only; configure remote admission on etraind itself")
	}
	pop, err := workload.NewPopulation(workload.DefaultMix())
	if err != nil {
		return err
	}
	sketch, err := stats.NewSketch(cfg.alpha)
	if err != nil {
		return err
	}
	inj, err := faultnet.New(faultnet.Config{
		Seed:        cfg.faultSeed,
		Drop:        cfg.faults / 2,
		Reset:       cfg.faults / 4,
		Truncate:    cfg.faults / 4,
		ConnectFail: cfg.faults / 4,
		MaxChunk:    chunkFor(cfg.faults),
	})
	if err != nil {
		return err
	}

	var srv *server.Server
	var rt *cluster.Router
	rawDial := func() (net.Conn, error) { return net.Dial("tcp", cfg.addr) }
	switch {
	case cfg.cluster != "":
		rt, err = cluster.NewRouter(cluster.RouterConfig{
			DialControl: func() (net.Conn, error) { return net.Dial("tcp", cfg.cluster) },
			DialShard:   func(a string) (net.Conn, error) { return net.Dial("tcp", a) },
		})
		if err != nil {
			return fmt.Errorf("cluster %s: %w", cfg.cluster, err)
		}
		defer rt.Close()
	case cfg.addr == "":
		var admission server.Admission
		if cfg.admissionRate > 0 {
			admission = server.NewTokenBucketAdmission(server.TokenBucketConfig{
				Rate:  cfg.admissionRate,
				Burst: cfg.admissionBurst,
				//lint:ignore notime load-harness boundary: the overload soak refills the admission bucket in real time, like etraind would
				Clock: time.Now,
			})
		}
		srv = server.New(server.Config{Admission: admission})
		rawDial = func() (net.Conn, error) {
			clientSide, serverSide := net.Pipe()
			go srv.ServeConn(serverSide)
			return clientSide, nil
		}
	}
	if !cfg.quiet {
		target := cfg.addr
		if cfg.cluster != "" {
			tbl := rt.Table()
			target = fmt.Sprintf("%d-shard cluster at %s (route epoch %d)", len(tbl.Shards), cfg.cluster, tbl.Epoch)
		} else if target == "" {
			target = "in-process loopback"
		}
		chaos := ""
		if cfg.faults > 0 {
			chaos = fmt.Sprintf(" with fault intensity %.2g (seed %d)", cfg.faults, cfg.faultSeed)
		}
		fmt.Fprintf(os.Stderr, "etrain-load: %d devices over %d connections against %s%s\n",
			cfg.devices, parallel.Workers(cfg.conns), target, chaos)
	}

	var (
		mu       sync.Mutex
		latency  stats.Moments
		recovery stats.Moments
		rep      report
		firstErr error
	)
	recSketch, err := stats.NewSketch(cfg.alpha)
	if err != nil {
		return err
	}
	snaps := make([]wire.StatsSnapshot, cfg.devices)
	rep.Devices, rep.Conns, rep.Faults = cfg.devices, cfg.conns, cfg.faults
	if cfg.faults > 0 {
		rep.FaultSeed = cfg.faultSeed
	}
	//lint:ignore notime load-harness boundary: throughput and latency are wall-clock measurements of the service; the sessions themselves are deterministic
	started := time.Now()
	err = parallel.ForEach(parallel.NewLimit(cfg.conns), cfg.devices, func(i int) error {
		dev, err := fleet.SynthesizeDeviceOpts(cfg.seed, pop, i, cfg.horizon, fleet.DeviceOptions{Diurnal: cfg.diurnal})
		if err != nil {
			return err
		}
		sess, err := server.SessionFromDevice(dev, cfg.theta, cfg.k)
		if err != nil {
			return err
		}
		ccfg := client.Config{
			Seed:        cfg.seed + int64(i),
			RetryBudget: cfg.retryBudget,
			//lint:ignore notime load-harness boundary: real reconnect backoff against a real transport
			Sleep: time.Sleep,
			//lint:ignore notime load-harness boundary: degraded-mode wall time is a harness measurement
			Clock:       time.Now,
			BaseBackoff: 5 * time.Millisecond,
			MaxBackoff:  250 * time.Millisecond,
		}
		if rt != nil {
			ccfg.Route = timedRoute(rt.Dialer(uint64(i)), func(moved bool, outage time.Duration) {
				mu.Lock()
				defer mu.Unlock()
				if moved {
					rep.Reroutes++
				}
				if outage > 0 {
					rep.Recoveries++
					ms := float64(outage) / float64(time.Millisecond)
					recovery.Add(ms)
					recSketch.Add(ms)
				}
			})
		} else {
			ccfg.Dial = inj.Dialer(rawDial, uint64(i))
		}
		//lint:ignore notime load-harness boundary: session latency is measured at the client
		t0 := time.Now()
		out, err := client.Run(ccfg, sess)
		//lint:ignore notime load-harness boundary: session latency is measured at the client
		elapsed := time.Since(t0)
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			rep.Failed++
			if firstErr == nil {
				firstErr = fmt.Errorf("device %d: %w", i, err)
			}
			return nil // keep loading; failures are reported in the summary
		}
		ms := float64(elapsed) / float64(time.Millisecond)
		latency.Add(ms)
		sketch.Add(ms)
		rep.absorb(out)
		snaps[i] = out.Stats
		return nil
	})
	//lint:ignore notime load-harness boundary: throughput and latency are wall-clock measurements of the service; the sessions themselves are deterministic
	wall := time.Since(started)
	if err != nil {
		return err
	}

	rep.SessionsOK = cfg.devices - rep.Failed
	rep.WallMs = float64(wall) / float64(time.Millisecond)
	if wall > 0 {
		rep.SessionsPS = float64(rep.SessionsOK) / wall.Seconds()
	}
	if latency.N() > 0 {
		rep.LatencyMeanMs = latency.Mean()
		rep.LatencyP50Ms = quantile(sketch, 50)
		rep.LatencyP90Ms = quantile(sketch, 90)
		rep.LatencyP99Ms = quantile(sketch, 99)
	}
	fs := inj.Stats()
	rep.InjectedDrops, rep.InjectedResets = fs.Drops, fs.Resets
	rep.InjectedTruncations, rep.InjectedDialFails = fs.Truncations, fs.DialFails
	if srv != nil {
		s := srv.Stats()
		rep.ServerParked, rep.ServerResumed = s.Parked, s.Resumed
		rep.ServerFramesIn, rep.ServerFramesOut = s.FramesIn, s.FramesOut
		rep.ServerDecisions = s.Decisions
		rep.ServerRefused, rep.ServerShed, rep.ServerBusySent = s.Refused, s.Shed, s.BusySent
	}
	if rt != nil {
		rep.Cluster = cfg.cluster
		if recovery.N() > 0 {
			rep.RecoveryMeanMs = recovery.Mean()
			rep.RecoveryMaxMs = recovery.Max()
			rep.RecoveryP50Ms = quantile(recSketch, 50)
			rep.RecoveryP99Ms = quantile(recSketch, 99)
		}
	}
	// The fleet block folds per-device snapshots in device-index order, so
	// its bits depend only on the device set — a cluster run and a
	// single-process run of the same fleet render the same block. A failed
	// session has no snapshot, so the fold is only meaningful when every
	// session completed.
	if rep.Failed == 0 {
		flt, err := cluster.NewFleetStats(0)
		if err != nil {
			return err
		}
		for i := range snaps {
			flt.Add(snaps[i])
		}
		fr := flt.Report()
		rep.Fleet = &fr
	}

	fmt.Printf("sessions     %d ok, %d failed\n", rep.SessionsOK, rep.Failed)
	fmt.Printf("wall         %s\n", wall.Round(time.Millisecond))
	if wall > 0 {
		fmt.Printf("throughput   %.1f sessions/s\n", rep.SessionsPS)
	}
	if latency.N() > 0 {
		fmt.Printf("latency ms   mean %.2f  min %.2f  max %.2f\n", latency.Mean(), latency.Min(), latency.Max())
		fmt.Printf("percentiles  p50 %.2f  p90 %.2f  p99 %.2f\n", rep.LatencyP50Ms, rep.LatencyP90Ms, rep.LatencyP99Ms)
	}
	if cfg.faults > 0 {
		fmt.Printf("chaos        drops %d  resets %d  truncations %d  refused dials %d\n",
			fs.Drops, fs.Resets, fs.Truncations, fs.DialFails)
		fmt.Printf("healing      reconnects %d  resumes %d  replays %d  degraded %d sessions (%d unreconciled) / %d events / %.0f ms\n",
			rep.Reconnects, rep.Resumes, rep.Replays, rep.DegradedSessions, rep.DegradedUnreconciled, rep.DegradedEvents, rep.DegradedMs)
	}
	if srv != nil {
		s := srv.Stats()
		fmt.Printf("server       frames in/out %d/%d  decisions %d  parked %d  resumed %d\n",
			s.FramesIn, s.FramesOut, s.Decisions, s.Parked, s.Resumed)
	}
	if rep.BusyResponses+rep.RetryBudgetExhausted > 0 || rep.ServerRefused+rep.ServerShed+rep.ServerBusySent > 0 {
		fmt.Printf("overload     busy %d  budget exhaustions %d  busy wait %.0f ms  server refused %d  shed %d  busy-sent %d\n",
			rep.BusyResponses, rep.RetryBudgetExhausted, rep.BusyWaitMs,
			rep.ServerRefused, rep.ServerShed, rep.ServerBusySent)
	}
	if rt != nil {
		fmt.Printf("cluster      reroutes %d  recoveries %d\n", rep.Reroutes, rep.Recoveries)
		if rep.Recoveries > 0 {
			fmt.Printf("recovery ms  mean %.2f  max %.2f  p50 %.2f  p99 %.2f\n",
				rep.RecoveryMeanMs, rep.RecoveryMaxMs, rep.RecoveryP50Ms, rep.RecoveryP99Ms)
		}
	}
	if rep.Fleet != nil {
		if err := rep.Fleet.WriteText(os.Stdout); err != nil {
			return err
		}
	}
	if cfg.jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if firstErr != nil {
		fmt.Fprintln(os.Stderr, "etrain-load: first failure:", firstErr)
	}
	if rep.Failed > 0 {
		return fmt.Errorf("%d of %d sessions failed", rep.Failed, cfg.devices)
	}
	return nil
}

// absorb folds one successful session's healing counters into the
// report. Callers hold the report lock.
func (r *report) absorb(out *client.Outcome) {
	r.Reconnects += out.Reconnects
	r.Resumes += out.Resumes
	r.Replays += out.Replays
	r.DegradedEvents += out.DegradedEvents
	r.DegradedMs += float64(out.DegradedTime) / float64(time.Millisecond)
	if out.Degraded {
		r.DegradedSessions++
	}
	if out.CompletedLocally {
		r.DegradedUnreconciled++
	}
	r.BusyResponses += out.BusyResponses
	r.RetryBudgetExhausted += out.BudgetExhausted
	r.BusyWaitMs += float64(out.BusyWait) / float64(time.Millisecond)
}

// timedRoute wraps one device's route dialer with outage timing: the
// failover-recovery window runs from the device's first failed dial to
// its next successful one. note fires on every successful dial with the
// move flag and the closed outage window (zero when the dial chain never
// broke). Each device's dialer is driven by that device's client
// goroutine alone, so the closure state needs no lock; note does its own
// locking.
func timedRoute(route func() (net.Conn, bool, error), note func(moved bool, outage time.Duration)) func() (net.Conn, bool, error) {
	var outageStart time.Time
	return func() (net.Conn, bool, error) {
		conn, moved, err := route()
		if err != nil {
			if outageStart.IsZero() {
				//lint:ignore notime load-harness boundary: failover recovery is a wall-clock measurement
				outageStart = time.Now()
			}
			return nil, false, err
		}
		var outage time.Duration
		if !outageStart.IsZero() {
			//lint:ignore notime load-harness boundary: failover recovery is a wall-clock measurement
			outage = time.Since(outageStart)
			outageStart = time.Time{}
		}
		note(moved, outage)
		return conn, moved, nil
	}
}

// chunkFor fragments traffic only when chaos is on: short writes are part
// of the fault model, not the clean measurement path.
func chunkFor(faults float64) int {
	if faults > 0 {
		return 16
	}
	return 0
}

// quantile reads one sketch percentile (0–100), mapping the empty-sketch
// error to 0.
func quantile(s *stats.Sketch, p float64) float64 {
	v, err := s.Quantile(p)
	if err != nil {
		return 0
	}
	return v
}
