// useractivity replays synthesized 10-minute Weibo sessions of active,
// moderate and inactive users (the paper's Fig. 11 classification) through
// a live eTrain system and reports the per-class energy saving.
package main

import (
	"fmt"
	"log"
	"time"

	"etrain"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	classes := []etrain.ActivenessClass{
		etrain.ClassActive, etrain.ClassModerate, etrain.ClassInactive,
	}
	fmt.Printf("%-10s %8s %12s %12s %10s\n", "class", "uploads", "without", "with eTrain", "saved")
	for i, class := range classes {
		trace := etrain.SynthesizeUserTrace(int64(100+i), "demo-user", class)
		uploads := 0
		for _, r := range trace {
			if r.Behavior == etrain.BehaviorUpload {
				uploads++
			}
		}
		if got := etrain.ClassifyUser(trace); got != class {
			return fmt.Errorf("trace classified as %v, want %v", got, class)
		}

		without, err := replay(trace, false)
		if err != nil {
			return err
		}
		with, err := replay(trace, true)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %8d %10.1f J %10.1f J %8.1f J\n",
			class, uploads, without, with, without-with)
	}
	fmt.Println("\nActive users generate more cargo, so eTrain saves the most joules for them")
	fmt.Println("(the green bars of the paper's Fig. 11: 227.9 > 134.5 > 63.2 J).")
	return nil
}

// replay runs one 10-minute session with the three IM trains. With eTrain
// disabled the scheduler bound is zero-wait via a tiny bypass window,
// emulating transmit-on-arrival.
func replay(trace []etrain.BehaviorRecord, withETrain bool) (float64, error) {
	cfg := etrain.SystemConfig{Seed: 7, Theta: 4.0}
	if !withETrain {
		// Transmit on arrival: gate nothing.
		cfg.Theta = 0
		cfg.BypassAfter = time.Second
	}
	sys, err := etrain.NewSystem(cfg)
	if err != nil {
		return 0, err
	}
	for _, train := range etrain.DefaultTrains() {
		if err := sys.AddTrain(train); err != nil {
			return 0, err
		}
	}
	weibo, err := sys.RegisterCargo("weibo", etrain.WeiboProfile(30*time.Second))
	if err != nil {
		return 0, err
	}
	for _, r := range trace {
		if r.Size > 0 {
			weibo.ScheduleSubmit(r.At, r.Size)
		}
	}
	if err := sys.Run(etrain.SessionLength); err != nil {
		return 0, err
	}
	return sys.EnergyBreakdown(etrain.SessionLength).Total(), nil
}
