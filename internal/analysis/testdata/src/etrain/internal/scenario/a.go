// Package scenario stands in for the real etrain/internal/scenario:
// a scenario report is a pure function of the document, so the engine
// faces the full determinism patrol — no wall clock, no direct rand,
// and goroutine hygiene for the loopback rig's per-dial ServeConn
// goroutines.
package scenario

import (
	"math/rand" // want `import of math/rand outside internal/randx; derive a deterministic stream with randx.New/randx.Derive instead`
	"time"
)

// stampReport timestamps the report from the wall clock: two runs of
// the same scenario would render different bytes.
func stampReport() time.Time {
	return time.Now() // want `time.Now reads the wall clock outside the real-time boundary`
}

// jitterTimeline draws an event offset from the global PRNG instead of
// a seed-derived randx stream.
func jitterTimeline(horizon time.Duration) time.Duration {
	return time.Duration(rand.Int63n(int64(horizon)))
}

// throttleDevices paces device runs with a real sleep, coupling the
// engine's wall time to the fleet size.
func throttleDevices(gap time.Duration) {
	time.Sleep(gap) // want `time.Sleep reads the wall clock outside the real-time boundary`
}

// serveAsync is the forbidden rig shape: one ServeConn goroutine per
// device with nothing joining it — a leaked server goroutine can hold
// its pipe past rig close and race the next device's dial.
func serveAsync(serves []func()) {
	for i := range serves {
		go func() { // want `goroutine has no join or cancellation path`
			serves[i]() // want `goroutine closure captures loop variable i`
		}()
	}
}

// serveJoined is the sanctioned shape the real rig uses: the serve fn
// is passed as an argument and a done channel ties it back to the
// device's join.
func serveJoined(serves []func()) {
	done := make(chan struct{}, len(serves))
	for _, serve := range serves {
		go func(serve func()) {
			serve()
			done <- struct{}{}
		}(serve)
	}
	for range serves {
		<-done
	}
}
