package experiments

import (
	"fmt"

	"etrain/internal/baseline"
	"etrain/internal/core"
	"etrain/internal/sched"
	"etrain/internal/sim"
	"etrain/internal/stats"
)

// SeedRobustness re-runs the headline comparison across several seeds and
// reports mean ± stddev of each strategy's energy at fixed control
// parameters, plus how often the paper's ordering (eTrain < eTime < PerES <
// baseline) held. It is the reproduction's answer to "is this one lucky
// seed?".
func SeedRobustness(opts Options) (*Table, error) {
	const seeds = 5
	tbl := &Table{
		ID:      "abl-seed-robustness",
		Title:   fmt.Sprintf("Headline comparison across %d seeds (λ=0.08)", seeds),
		Columns: []string{"strategy", "control", "mean_J", "stddev_J", "min_J", "max_J"},
	}
	type config struct {
		name    string
		control string
		build   func() (sched.Strategy, error)
	}
	configs := []config{
		{"etrain", "Θ=10", func() (sched.Strategy, error) {
			return core.New(core.Options{Theta: 10, K: core.KInfinite})
		}},
		{"etime", "V=10", func() (sched.Strategy, error) {
			return baseline.NewETime(baseline.ETimeOptions{V: 10})
		}},
		{"peres", "Ω=1", func() (sched.Strategy, error) {
			return baseline.NewPerES(baseline.DefaultPerESOptions(1))
		}},
		{"baseline", "-", func() (sched.Strategy, error) {
			return baseline.NewImmediate(), nil
		}},
	}

	energies := make(map[string][]float64, len(configs))
	for s := 0; s < seeds; s++ {
		for _, c := range configs {
			cfg, err := buildSimConfig(Options{Seed: opts.Seed + int64(s)}, 0.08)
			if err != nil {
				return nil, err
			}
			strategy, err := c.build()
			if err != nil {
				return nil, err
			}
			cfg.Strategy = strategy
			res, err := sim.Run(cfg)
			if err != nil {
				return nil, err
			}
			energies[c.name] = append(energies[c.name], res.Energy.Total())
		}
	}

	for _, c := range configs {
		summary, err := stats.Summarize(energies[c.name])
		if err != nil {
			return nil, err
		}
		tbl.AddRow(c.name, c.control, summary.Mean, summary.StdDev, summary.Min, summary.Max)
	}

	ordered := 0
	for s := 0; s < seeds; s++ {
		if energies["etrain"][s] < energies["etime"][s] &&
			energies["etime"][s] < energies["peres"][s] &&
			energies["peres"][s] < energies["baseline"][s] {
			ordered++
		}
	}
	tbl.AddNote("paper ordering eTrain < eTime < PerES < baseline held in %d of %d seeds", ordered, seeds)
	return tbl, nil
}
