package core

import (
	"testing"
	"time"

	"etrain/internal/profile"
	"etrain/internal/sched"
	"etrain/internal/workload"
)

// BenchmarkGreedySelectHeartbeatFlush measures one full Eq. 9 greedy flush
// of a 100-packet, 3-app queue — the scheduler's hottest path.
func BenchmarkGreedySelectHeartbeatFlush(b *testing.B) {
	profiles := map[string]profile.Profile{
		"mail":  profile.Mail(3 * time.Minute),
		"weibo": profile.Weibo(90 * time.Second),
		"cloud": profile.Cloud(5 * time.Minute),
	}
	apps := []string{"mail", "weibo", "cloud"}
	e, err := New(Options{Theta: 0, K: KInfinite})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		q := sched.NewQueues()
		for j := 0; j < 100; j++ {
			app := apps[j%len(apps)]
			q.Add(workload.Packet{
				ID: j, App: app, ArrivedAt: time.Duration(j) * time.Second,
				Size: 2048, Profile: profiles[app],
			})
		}
		ctx := &sched.SlotContext{
			Now: 200 * time.Second, SlotLength: time.Second,
			HeartbeatNow: true, Queues: q,
		}
		b.StartTimer()
		if got := e.Schedule(ctx); len(got) != 100 {
			b.Fatalf("flushed %d", len(got))
		}
	}
}

// BenchmarkGreedySelectDrip measures the per-slot K(t)=1 selection on a
// 50-packet queue.
func BenchmarkGreedySelectDrip(b *testing.B) {
	prof := profile.Weibo(90 * time.Second)
	e, err := New(Options{Theta: 0.0001, K: KInfinite})
	if err != nil {
		b.Fatal(err)
	}
	q := sched.NewQueues()
	for j := 0; j < 50; j++ {
		q.Add(workload.Packet{
			ID: j, App: "weibo", ArrivedAt: time.Duration(j) * time.Second,
			Size: 2048, Profile: prof,
		})
	}
	ctx := &sched.SlotContext{
		Now: 200 * time.Second, SlotLength: time.Second, Queues: q,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		selected := e.Schedule(ctx)
		b.StopTimer()
		for _, p := range selected {
			q.Add(p) // restore for the next iteration
		}
		b.StartTimer()
	}
}
