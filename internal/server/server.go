// Package server is the network-facing eTrain scheduling service: each
// accepted connection hosts one device session that feeds decoded wire
// frames into an incremental sim.Engine running the core strategy, and
// streams the resulting Decision frames back (DESIGN.md §10).
//
// The package is transport-agnostic — sessions run over any net.Conn, and
// the test suite drives them over in-process net.Pipe loopback — and it
// never reads the wall clock itself: deadlines exist only when the caller
// injects a Clock, so the decision/metrics stream stays a pure function
// of the inbound frame stream.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"etrain/internal/radio"
)

// Defaults for the zero Config.
const (
	// DefaultMaxConns bounds concurrently served connections.
	DefaultMaxConns = 4096
	// DefaultQueueDepth is the per-session event queue bound: when a
	// session's engine falls behind, its reader stops pulling frames after
	// this many are queued and the transport exerts backpressure.
	DefaultQueueDepth = 64
	// DefaultResumeGrace is how long a session disconnected mid-protocol
	// stays parked awaiting resume (expiry needs a Clock).
	DefaultResumeGrace = 2 * time.Minute
	// DefaultRetainSessions caps the detached-session registry; beyond it
	// the oldest parked session is discarded.
	DefaultRetainSessions = 1024
)

// ErrServerClosed reports that Serve stopped because Shutdown began.
var ErrServerClosed = errors.New("server: closed")

// ErrSessionParked reports that a session lost its transport mid-protocol
// and parked its engine state for resume instead of failing. It is how
// ServeConn distinguishes a recoverable disconnect from a protocol error.
var ErrSessionParked = errors.New("server: session parked awaiting resume")

// Config parameterizes a Server. The zero value serves with defaults, no
// deadlines and the Galaxy S4 power model.
type Config struct {
	// MaxConns caps concurrently served connections (DefaultMaxConns if
	// zero); connections beyond the cap are closed immediately.
	MaxConns int
	// QueueDepth bounds each session's inbound event queue
	// (DefaultQueueDepth if zero).
	QueueDepth int
	// IdleTimeout bounds the wait for the next inbound frame; it needs a
	// Clock to take effect.
	IdleTimeout time.Duration
	// WriteTimeout bounds each outbound frame write; it needs a Clock.
	WriteTimeout time.Duration
	// ResumeGrace is how long a session that lost its transport stays
	// parked awaiting a Resume (DefaultResumeGrace if zero; negative
	// disables parking entirely, restoring fail-on-disconnect). Grace
	// expiry needs a Clock; without one parked sessions are bounded only
	// by RetainSessions.
	ResumeGrace time.Duration
	// RetainSessions caps the detached-session registry
	// (DefaultRetainSessions if zero); the oldest parked session is
	// discarded when the cap is exceeded.
	RetainSessions int
	// DrainTimeout, with a Clock, bounds how long Shutdown waits for live
	// sessions: the drain arms this deadline on every open connection, so
	// sessions whose peers never read or write are forced to unwind even
	// when Shutdown's context has no deadline of its own.
	DrainTimeout time.Duration
	// Power is the radio energy model sessions account under
	// (radio.GalaxyS43G() if unset).
	Power radio.PowerModel
	// Clock supplies the wall clock for connection deadlines. Leaving it
	// nil disables deadlines and keeps the server fully deterministic;
	// cmd/etraind injects time.Now at the process boundary.
	Clock func() time.Time
	// Logf, when non-nil, receives per-connection error reports.
	Logf func(format string, args ...any)
}

// Counters is a snapshot of the server's monotonic event counts (Active
// excepted, which is the instantaneous session count).
type Counters struct {
	Accepted     uint64 // connections admitted into sessions
	Rejected     uint64 // connections refused (limit reached or draining)
	Active       uint64 // sessions currently running
	Completed    uint64 // sessions that ran the full protocol
	Errored      uint64 // sessions ended by a protocol or transport error
	Panics       uint64 // sessions ended by a recovered panic
	Parked       uint64 // sessions parked after losing their transport
	Resumed      uint64 // parked sessions adopted by a Resume handshake
	ResumeMisses uint64 // Resume frames naming no parked session
	Discarded    uint64 // parked sessions dropped without resume
	Detached     uint64 // parked sessions currently awaiting resume
	FramesIn     uint64 // frames decoded from clients
	FramesOut    uint64 // frames written to clients
	Decisions    uint64 // Decision frames among FramesOut
}

// Server hosts device sessions over accepted connections.
type Server struct {
	cfg Config

	accepted     atomic.Uint64
	rejected     atomic.Uint64
	active       atomic.Int64
	completed    atomic.Uint64
	errored      atomic.Uint64
	panics       atomic.Uint64
	parked       atomic.Uint64
	resumed      atomic.Uint64
	resumeMisses atomic.Uint64
	discarded    atomic.Uint64
	framesIn     atomic.Uint64
	framesOut    atomic.Uint64
	decisions    atomic.Uint64

	mu        sync.Mutex
	closed    bool
	conns     map[net.Conn]struct{}
	listeners map[net.Listener]struct{}
	detached  map[sessionKey]*parkedEntry
	parkOrder []*parkedEntry
	wg        sync.WaitGroup
}

// New returns a server with normalized configuration.
func New(cfg Config) *Server {
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = DefaultMaxConns
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.ResumeGrace == 0 {
		cfg.ResumeGrace = DefaultResumeGrace
	}
	if cfg.RetainSessions <= 0 {
		cfg.RetainSessions = DefaultRetainSessions
	}
	if cfg.Power.Validate() != nil {
		cfg.Power = radio.GalaxyS43G()
	}
	return &Server{
		cfg:       cfg,
		conns:     make(map[net.Conn]struct{}),
		listeners: make(map[net.Listener]struct{}),
		detached:  make(map[sessionKey]*parkedEntry),
	}
}

// Serve accepts connections from l and serves a session on each until
// Shutdown closes the listener, then returns ErrServerClosed. Accept
// errors other than the shutdown close are returned as-is.
func (s *Server) Serve(l net.Listener) error {
	if !s.addListener(l) {
		l.Close()
		return ErrServerClosed
	}
	defer s.removeListener(l)
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.draining() {
				return ErrServerClosed
			}
			return err
		}
		if !s.register(conn) {
			s.rejected.Add(1)
			conn.Close()
			continue
		}
		s.wg.Add(1)
		go func(conn net.Conn) {
			defer s.wg.Done()
			s.serveSession(conn)
		}(conn)
	}
}

// ServeConn serves one session on conn synchronously, returning the
// session's error (nil for a cleanly completed protocol). It respects the
// connection limit and the drain state exactly like Serve.
func (s *Server) ServeConn(conn net.Conn) error {
	if !s.register(conn) {
		s.rejected.Add(1)
		conn.Close()
		return ErrServerClosed
	}
	s.wg.Add(1)
	defer s.wg.Done()
	return s.serveSession(conn)
}

// serveSession runs one registered session with panic isolation: a panic
// in the session (or the strategy it hosts) is recovered, counted, and
// confined to its connection. Outcomes count three ways: completed,
// parked (recoverable disconnect, engine retained), or errored.
func (s *Server) serveSession(conn net.Conn) (err error) {
	s.accepted.Add(1)
	s.active.Add(1)
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			err = fmt.Errorf("server: session panic: %v", r)
		}
		s.active.Add(-1)
		s.unregister(conn)
		conn.Close()
		switch {
		case err == nil:
			s.completed.Add(1)
		case errors.Is(err, ErrSessionParked):
			// Counted by park itself; not a failure, so not logged as one.
		default:
			s.errored.Add(1)
			s.logf("session %v: %v", conn.RemoteAddr(), err)
		}
	}()
	return s.runSession(conn)
}

// Shutdown drains the server: it stops accepting, rejects new sessions,
// discards parked sessions, and waits for running sessions to finish.
// With a Clock and a DrainTimeout, that wait is bounded without help
// from ctx: the drain deadline is armed on every open connection, so a
// session stuck on a peer that never reads or writes is forced off its
// blocked I/O and unwinds. If ctx expires first, the remaining
// connections are force-closed and Shutdown waits for their sessions to
// unwind before returning ctx's error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	for l := range s.listeners {
		l.Close()
	}
	s.discardDetachedLocked()
	if s.cfg.Clock != nil && s.cfg.DrainTimeout > 0 {
		deadline := s.cfg.Clock().Add(s.cfg.DrainTimeout)
		for conn := range s.conns {
			conn.SetDeadline(deadline)
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		defer close(done)
		s.wg.Wait()
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// Stats snapshots the server's counters.
func (s *Server) Stats() Counters {
	active := s.active.Load()
	if active < 0 {
		active = 0
	}
	s.mu.Lock()
	detached := uint64(len(s.detached))
	s.mu.Unlock()
	return Counters{
		Accepted:     s.accepted.Load(),
		Rejected:     s.rejected.Load(),
		Active:       uint64(active),
		Completed:    s.completed.Load(),
		Errored:      s.errored.Load(),
		Panics:       s.panics.Load(),
		Parked:       s.parked.Load(),
		Resumed:      s.resumed.Load(),
		ResumeMisses: s.resumeMisses.Load(),
		Discarded:    s.discarded.Load(),
		Detached:     detached,
		FramesIn:     s.framesIn.Load(),
		FramesOut:    s.framesOut.Load(),
		Decisions:    s.decisions.Load(),
	}
}

func (s *Server) addListener(l net.Listener) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.listeners[l] = struct{}{}
	return true
}

func (s *Server) removeListener(l net.Listener) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.listeners, l)
}

// register admits conn into the session set unless the server is draining
// or at its connection limit.
func (s *Server) register(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || len(s.conns) >= s.cfg.MaxConns {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) unregister(conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, conn)
}

func (s *Server) draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}
