package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"etrain/internal/sim"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// goldenOptions pins the rendering inputs: any drift in seed, horizon or
// worker count would change the tables, not just the code under test. The
// 8-worker pool doubles as a standing check that parallel rendering stays
// byte-stable against goldens recorded once.
func goldenOptions() Options {
	return Options{
		Seed:    5,
		Horizon: 5400 * time.Second,
		Workers: 8,
		Runner:  sim.NewRunner(8),
	}
}

// TestGoldenTables locks the exact rendered text of three representative
// tables: a measurement experiment (fig1a), a single-strategy sweep
// (fig7a) and the comparative E-D panel (fig8a). Regenerate with
//
//	go test ./internal/experiments -run TestGoldenTables -update
func TestGoldenTables(t *testing.T) {
	opts := goldenOptions()
	for _, id := range []string{"fig1a", "fig7a", "fig8a"} {
		t.Run(id, func(t *testing.T) {
			entry, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			tbl, err := entry.Run(opts)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := tbl.Fprint(&buf); err != nil {
				t.Fatal(err)
			}

			path := filepath.Join("testdata", id+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to record the golden file)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("rendered table drifted from %s (re-record with -update if intended):\n--- want ---\n%s--- got ---\n%s",
					path, want, buf.Bytes())
			}
		})
	}
}
