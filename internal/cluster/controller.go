// Package cluster scales the etraind service layer past one process: a
// control plane (Controller) registers N shard servers, tracks their
// health through periodic ShardBeat control frames — the cluster
// borrowing the paper's heartbeat-piggybacking premise for its own
// liveness channel — and publishes a RouteTable whose consistent-hash
// ring (Ring) routes every device to a shard as a pure function of the
// member set. Shard death or drain bumps the route epoch; in-flight
// sessions recover through the token-authenticated Resume path (or a
// full Hello replay on the new owner), so decisions are never lost: the
// session stream is deterministic, and the replacement shard regenerates
// exactly the frames the dead one would have sent (DESIGN.md §13).
//
// The package follows the service layer's clock discipline: nothing here
// reads wall time. Health timeouts and beat cadence take effect only
// when the daemon injects a Clock/Sleep at the process boundary, so the
// whole control plane is drivable from deterministic tests.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"etrain/internal/wire"
)

// Defaults for the zero ControllerConfig.
const (
	// DefaultBeatTimeout is how stale a shard's last beat may be before
	// Sweep declares it dead (needs a Clock).
	DefaultBeatTimeout = 5 * time.Second
	// DefaultRejoinGrace is how long a restored controller shields
	// phantom members from Sweep while their shards re-register.
	DefaultRejoinGrace = 2 * DefaultBeatTimeout
)

// ErrControllerClosed reports that Serve stopped because Shutdown began.
var ErrControllerClosed = errors.New("cluster: controller closed")

// ControllerConfig parameterizes a Controller. The zero value serves
// with defaults and no wall clock (health expiry disabled; conn loss
// still detects death immediately).
type ControllerConfig struct {
	// RingSeed roots the routing ring's hashes; every client sees it in
	// the RouteTable and builds the identical ring.
	RingSeed int64
	// Vnodes is the ring's virtual-node count per shard (DefaultVnodes if
	// zero).
	Vnodes int
	// BeatTimeout is how stale a shard's beat may grow before Sweep
	// removes it (DefaultBeatTimeout if zero; needs a Clock).
	BeatTimeout time.Duration
	// Clock supplies wall time for beat staleness; nil disables
	// Sweep-based expiry and keeps the controller deterministic.
	Clock func() time.Time
	// Restore, when non-nil, rebuilds the controller from a crash
	// snapshot: members come back as phantoms (no conn) at the
	// snapshot's exact epoch and ring parameters, and Sweep holds off
	// for RejoinGrace so shards can re-register without an epoch storm.
	// RingSeed and Vnodes from the snapshot override the config's.
	Restore *ControllerSnapshot
	// RejoinGrace bounds the post-restore re-registration window
	// (DefaultRejoinGrace if zero; only meaningful with Restore and a
	// Clock — without a Clock, Sweep is a no-op anyway).
	RejoinGrace time.Duration
	// Logf, when non-nil, receives membership and error reports.
	Logf func(format string, args ...any)
}

// shardState is one registered shard.
type shardState struct {
	id       uint64
	addr     string
	draining bool

	conn net.Conn
	pu   pushUnit

	beatSeq  uint64
	beats    uint64
	lastBeat time.Time
	hasBeat  bool
	stats    wire.ShardStats
	hasStats bool

	overload    wire.ShardOverload
	hasOverload bool
}

// watcher is one route-table subscriber (a load generator or admin
// tool).
type watcher struct {
	conn net.Conn
	pu   pushUnit
}

// pushUnit serializes route-table pushes onto one peer connection and
// drops stale tables: two concurrent epoch bumps may race to the peer,
// and the epoch guard keeps an older table from overwriting a newer one.
type pushUnit struct {
	mu     sync.Mutex
	w      *wire.Writer
	pushed uint64 // highest epoch written
}

// push writes t unless a newer table already went out. Write errors are
// returned for logging but not acted on: a dead peer is detected by its
// own read loop.
func (p *pushUnit) push(t wire.RouteTable) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if t.Epoch <= p.pushed {
		return nil
	}
	p.pushed = t.Epoch
	return p.w.Write(t)
}

// Controller is the cluster's control plane: shard registry, health
// tracking, route-table publication and fleet-wide counter aggregation.
type Controller struct {
	cfg ControllerConfig

	mu        sync.Mutex
	closed    bool
	listeners map[net.Listener]struct{}
	shards    map[uint64]*shardState
	watchers  map[*watcher]struct{}
	epoch     uint64
	table     wire.RouteTable
	deaths    uint64 // shards removed by conn loss or beat expiry
	drains    uint64 // shards removed by an explicit Drain

	// graceUntil suspends Sweep after a snapshot restore: phantom
	// members must outlive the re-registration window even though they
	// cannot beat.
	graceUntil time.Time

	wg sync.WaitGroup
}

// NewController returns a controller with normalized configuration. The
// route table starts at epoch 1 with no members, or — given a Restore
// snapshot — at the snapshot's exact epoch with its member set restored
// as phantoms awaiting re-registration.
func NewController(cfg ControllerConfig) *Controller {
	if cfg.Vnodes <= 0 {
		cfg.Vnodes = DefaultVnodes
	}
	if cfg.BeatTimeout <= 0 {
		cfg.BeatTimeout = DefaultBeatTimeout
	}
	if cfg.RejoinGrace <= 0 {
		cfg.RejoinGrace = DefaultRejoinGrace
	}
	c := &Controller{
		cfg:       cfg,
		listeners: make(map[net.Listener]struct{}),
		shards:    make(map[uint64]*shardState),
		watchers:  make(map[*watcher]struct{}),
	}
	c.mu.Lock()
	if snap := cfg.Restore; snap != nil {
		c.restoreLocked(*snap)
	}
	c.rebuildLocked()
	c.mu.Unlock()
	return c
}

// restoreLocked installs a crash snapshot: ring parameters and removal
// counters come back exactly, members come back as phantoms (conn nil,
// liveness stamped at restore time so post-grace Sweep expires the ones
// that never return), and the epoch is positioned one below the
// snapshot's so the constructor's rebuild republishes the identical
// table at exactly the snapshot epoch — no storm, no regression.
func (c *Controller) restoreLocked(snap ControllerSnapshot) {
	c.cfg.RingSeed = snap.RingSeed
	c.cfg.Vnodes = snap.Vnodes
	c.deaths = snap.Deaths
	c.drains = snap.Drains
	if snap.Epoch > 0 {
		c.epoch = snap.Epoch - 1
	}
	for _, s := range snap.Shards {
		sh := &shardState{id: s.ID, addr: s.Addr, draining: s.Draining}
		if c.cfg.Clock != nil {
			sh.lastBeat = c.cfg.Clock() // restore counts as provisional liveness
			sh.hasBeat = true
		}
		c.shards[s.ID] = sh
	}
	if c.cfg.Clock != nil {
		c.graceUntil = c.cfg.Clock().Add(c.cfg.RejoinGrace)
	}
}

// Serve accepts control connections from l until Shutdown, then returns
// ErrControllerClosed. Each connection declares its role with its first
// frame: ShardHello registers a shard, Ack subscribes a watcher.
func (c *Controller) Serve(l net.Listener) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		l.Close()
		return ErrControllerClosed
	}
	c.listeners[l] = struct{}{}
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.listeners, l)
		c.mu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed {
				return ErrControllerClosed
			}
			return err
		}
		c.wg.Add(1)
		go func(conn net.Conn) {
			defer c.wg.Done()
			if err := c.handleConn(conn); err != nil {
				c.logf("control conn %v: %v", conn.RemoteAddr(), err)
			}
		}(conn)
	}
}

// Shutdown closes the listeners and every control connection, then waits
// for the connection handlers to unwind.
func (c *Controller) Shutdown(ctx context.Context) error {
	c.mu.Lock()
	c.closed = true
	for l := range c.listeners {
		l.Close()
	}
	for _, sh := range c.shards {
		if sh.conn != nil {
			sh.conn.Close()
		}
	}
	for w := range c.watchers {
		w.conn.Close()
	}
	c.mu.Unlock()

	done := make(chan struct{})
	go func() {
		defer close(done)
		c.wg.Wait()
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// handleConn speaks one control connection: role dispatch on the first
// frame, then the role's read loop. It closes conn before returning.
func (c *Controller) handleConn(conn net.Conn) error {
	defer conn.Close()
	r := wire.NewReader(conn)
	first, err := r.Next()
	if err != nil {
		return fmt.Errorf("cluster: reading control hello: %w", err)
	}
	switch m := first.(type) {
	case wire.ShardHello:
		return c.shardLoop(conn, r, m)
	case wire.Ack:
		return c.watchLoop(conn, r, m.Seq)
	default:
		return fmt.Errorf("cluster: first control frame is %s, want shard_hello or ack", first.MsgType())
	}
}

// shardLoop registers the shard and consumes its beat/stats stream until
// the connection dies; conn loss removes the shard from the ring
// immediately (a SIGKILLed shard is detected here, not by beat expiry).
func (c *Controller) shardLoop(conn net.Conn, r *wire.Reader, h wire.ShardHello) error {
	sh := c.register(conn, h)
	if sh == nil {
		return fmt.Errorf("cluster: shard %d rejected: controller closed", h.ShardID)
	}
	c.logf("shard %d registered at %s", h.ShardID, h.Addr)
	if err := sh.pu.push(c.Table()); err != nil {
		c.logf("shard %d: route push: %v", h.ShardID, err)
	}
	for {
		m, err := r.Next()
		if err != nil {
			c.dropShard(sh, "connection lost")
			return nil // conn loss is a membership event, not a handler error
		}
		switch v := m.(type) {
		case wire.ShardBeat:
			c.noteBeat(sh, v)
		case wire.ShardStats:
			c.noteStats(sh, v)
		case wire.ShardOverload:
			c.noteOverload(sh, v)
		case wire.Ack:
			// A shard may ack pushed tables; nothing to do.
		default:
			c.dropShard(sh, "protocol error")
			return fmt.Errorf("cluster: shard %d sent %s on control conn", sh.id, m.MsgType())
		}
	}
}

// watchLoop subscribes a client to route-table pushes. sinceEpoch is the
// newest epoch the client already holds; the current table is pushed
// immediately when newer. Subsequent Ack frames re-request a push (a
// poll), anything else is a protocol error.
func (c *Controller) watchLoop(conn net.Conn, r *wire.Reader, sinceEpoch uint64) error {
	w := &watcher{conn: conn}
	w.pu.w = wire.NewWriter(conn)
	w.pu.pushed = sinceEpoch
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.watchers[w] = struct{}{}
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.watchers, w)
		c.mu.Unlock()
	}()
	if err := w.pu.push(c.Table()); err != nil {
		return nil // dead watcher; its read below confirms
	}
	for {
		m, err := r.Next()
		if err != nil {
			return nil // watcher went away
		}
		if _, ok := m.(wire.Ack); !ok {
			return fmt.Errorf("cluster: watcher sent %s on control conn", m.MsgType())
		}
		// An explicit poll: push unconditionally relative to what this
		// connection last got.
		if err := w.pu.push(c.Table()); err != nil {
			return nil
		}
	}
}

// register adds (or re-registers) a shard. A new connection for an
// already-known shard ID supersedes the old one — a restarted shard
// re-registers before its old conn's loss is processed — and the stale
// conn is closed so its loop unwinds without dropping the member.
func (c *Controller) register(conn net.Conn, h wire.ShardHello) *shardState {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	var staleConn net.Conn
	sh := &shardState{id: h.ShardID, addr: h.Addr, conn: conn}
	if old, ok := c.shards[h.ShardID]; ok {
		if old.conn != nil && old.conn != conn {
			staleConn = old.conn
		}
		// An operator's drain decision survives the shard's reconnect
		// (and a controller restart, via the snapshot): only an explicit
		// un-drain — which doesn't exist yet — may clear it.
		sh.draining = old.draining
	}
	sh.pu.w = wire.NewWriter(conn)
	if c.cfg.Clock != nil {
		sh.lastBeat = c.cfg.Clock() // registration counts as liveness
		sh.hasBeat = true
	}
	c.shards[h.ShardID] = sh
	c.rebuildLocked()
	if staleConn != nil {
		staleConn.Close()
	}
	return sh
}

// dropShard removes sh from the registry unless a re-registration
// already superseded it, rebuilding the ring on a real removal.
func (c *Controller) dropShard(sh *shardState, why string) {
	c.mu.Lock()
	cur, ok := c.shards[sh.id]
	if !ok || cur != sh {
		c.mu.Unlock()
		return // superseded: the newer registration owns the ID now
	}
	delete(c.shards, sh.id)
	c.deaths++
	c.rebuildLocked()
	c.mu.Unlock()
	c.logf("shard %d removed: %s", sh.id, why)
}

// noteBeat records one liveness beat.
func (c *Controller) noteBeat(sh *shardState, b wire.ShardBeat) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sh.beatSeq = b.Seq
	sh.beats++
	if c.cfg.Clock != nil {
		sh.lastBeat = c.cfg.Clock()
		sh.hasBeat = true
	}
}

// noteStats records one counter snapshot.
func (c *Controller) noteStats(sh *shardState, s wire.ShardStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sh.stats = s
	sh.hasStats = true
}

// noteOverload records one overload-counter snapshot.
func (c *Controller) noteOverload(sh *shardState, o wire.ShardOverload) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sh.overload = o
	sh.hasOverload = true
}

// Sweep removes shards whose last beat is older than BeatTimeout. It
// needs a Clock; without one it is a no-op. The daemon calls it on a
// timer — the controller itself never schedules.
func (c *Controller) Sweep() {
	if c.cfg.Clock == nil {
		return
	}
	now := c.cfg.Clock()
	c.mu.Lock()
	if now.Before(c.graceUntil) {
		// Post-restore grace: phantoms can't beat yet, and expiring them
		// now would shred the recovered table before shards re-attach.
		c.mu.Unlock()
		return
	}
	var expired []*shardState
	for _, sh := range c.shards {
		if sh.hasBeat && now.Sub(sh.lastBeat) > c.cfg.BeatTimeout {
			expired = append(expired, sh)
		}
	}
	for _, sh := range expired {
		delete(c.shards, sh.id)
		c.deaths++
		if sh.conn != nil {
			sh.conn.Close()
		}
	}
	if len(expired) > 0 {
		c.rebuildLocked()
	}
	c.mu.Unlock()
	for _, sh := range expired {
		c.logf("shard %d removed: beat timeout", sh.id)
	}
}

// Drain removes shardID from the routing ring without touching its
// process: new devices route elsewhere while the shard finishes its
// in-flight sessions. The shard stays registered (health and stats keep
// flowing) but is excluded from every future table.
func (c *Controller) Drain(shardID uint64) error {
	c.mu.Lock()
	sh, ok := c.shards[shardID]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("cluster: drain: no shard %d", shardID)
	}
	if sh.draining {
		c.mu.Unlock()
		return nil
	}
	sh.draining = true
	c.drains++
	c.rebuildLocked()
	c.mu.Unlock()
	c.logf("shard %d draining", shardID)
	return nil
}

// Table returns the current route table.
func (c *Controller) Table() wire.RouteTable {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.table
}

// rebuildLocked recomputes the route table from the live, non-draining
// member set, bumps the epoch, and schedules a push to every peer. The
// pushes run on their own goroutines (joined by the controller's
// WaitGroup) so a slow peer cannot stall the registry lock.
//
// A rebuild whose entries, seed and vnodes match the published table is
// skipped outright: a shard re-attaching to a restored phantom (or
// superseding its own flapped conn) must not storm the fleet with
// content-identical epochs. The epoch>0 guard keeps the constructor's
// first build — against the zero table — from being skipped.
func (c *Controller) rebuildLocked() {
	ids := make([]uint64, 0, len(c.shards))
	for id, sh := range c.shards {
		if !sh.draining {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	entries := make([]wire.RouteEntry, 0, len(ids))
	for _, id := range ids {
		entries = append(entries, wire.RouteEntry{ShardID: id, Addr: c.shards[id].addr})
	}
	if c.epoch > 0 && c.sameTableLocked(entries) {
		return
	}
	c.epoch++
	c.table = wire.RouteTable{
		Epoch:  c.epoch,
		Seed:   c.cfg.RingSeed,
		Vnodes: uint32(c.cfg.Vnodes),
		Shards: entries,
	}
	t := c.table
	units := make([]*pushUnit, 0, len(c.shards)+len(c.watchers))
	for _, sh := range c.shards {
		if sh.conn != nil {
			units = append(units, &sh.pu)
		}
	}
	for w := range c.watchers {
		units = append(units, &w.pu)
	}
	for _, pu := range units {
		c.wg.Add(1)
		go func(pu *pushUnit) {
			defer c.wg.Done()
			if err := pu.push(t); err != nil {
				c.logf("route push: %v", err)
			}
		}(pu)
	}
}

// sameTableLocked reports whether the published table already carries
// exactly these entries under the current ring parameters.
func (c *Controller) sameTableLocked(entries []wire.RouteEntry) bool {
	t := c.table
	if t.Seed != c.cfg.RingSeed || int(t.Vnodes) != c.cfg.Vnodes || len(t.Shards) != len(entries) {
		return false
	}
	for i := range entries {
		if t.Shards[i] != entries[i] {
			return false
		}
	}
	return true
}

func (c *Controller) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}
