package server

import (
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"etrain/internal/core"
	"etrain/internal/fleet"
	"etrain/internal/sim"
	"etrain/internal/wire"
	"etrain/internal/workload"
)

const (
	testTheta   = 4.0
	testK       = 20
	testHorizon = 2 * time.Minute
)

func testPopulation(t *testing.T) *workload.Population {
	t.Helper()
	pop, err := workload.NewPopulation(workload.DefaultMix())
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

// directRun runs the device straight through internal/sim with the same
// strategy parameters a session would build from the Hello.
func directRun(t *testing.T, dev fleet.Device) *sim.Result {
	t.Helper()
	cfg, err := dev.SimConfig()
	if err != nil {
		t.Fatal(err)
	}
	strategy, err := core.New(core.Options{Theta: testTheta, K: testK})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Strategy = strategy
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// driveLoopback runs one session against srv over net.Pipe and returns
// the outcome, failing the test on either side's error.
func driveLoopback(t *testing.T, srv *Server, sess Session) *DeviceOutcome {
	t.Helper()
	client, serverSide := net.Pipe()
	srvErr := make(chan error, 1)
	go func() { srvErr <- srv.ServeConn(serverSide) }()
	out, err := Drive(client, sess)
	if err != nil {
		t.Fatalf("Drive: %v", err)
	}
	if err := <-srvErr; err != nil {
		t.Fatalf("ServeConn: %v", err)
	}
	return out
}

// TestLoopbackEquivalence is the keystone: a device driven through the
// full codec–server–session path must produce decisions and metrics
// byte-identical to the same device run directly through internal/sim.
func TestLoopbackEquivalence(t *testing.T) {
	pop := testPopulation(t)
	srv := New(Config{})
	for i := 0; i < 5; i++ {
		dev, err := fleet.SynthesizeDevice(7, pop, i, testHorizon)
		if err != nil {
			t.Fatal(err)
		}
		res := directRun(t, dev)
		sess, err := SessionFromDevice(dev, testTheta, testK)
		if err != nil {
			t.Fatal(err)
		}
		out := driveLoopback(t, srv, sess)

		// Every transmitted packet, in transmission order, with its exact
		// start instant.
		var got []wire.DecisionEntry
		for _, d := range out.Decisions {
			got = append(got, d.Entries...)
		}
		if len(got) != len(res.Packets) {
			t.Fatalf("device %d: %d wire decisions, %d direct packets", i, len(got), len(res.Packets))
		}
		for j, e := range got {
			p := res.Packets[j]
			if e.ID != uint64(p.ID) || e.Start != p.StartedAt {
				t.Fatalf("device %d packet %d: wire (id %d, start %v), direct (id %d, start %v)",
					i, j, e.ID, e.Start, p.ID, p.StartedAt)
			}
		}
		// Flush marking must match the direct run's forced-flush tail.
		var flushed int
		for _, d := range out.Decisions {
			if d.Flush {
				flushed += len(d.Entries)
			}
		}
		if flushed != res.ForcedFlushCount {
			t.Errorf("device %d: %d flush entries, direct %d", i, flushed, res.ForcedFlushCount)
		}

		// Metrics must match bit for bit — no tolerance.
		m := res.Metrics()
		want := wire.StatsSnapshot{
			DeviceID:       uint64(dev.Index),
			EnergyJ:        m.EnergyJ,
			AvgDelayS:      m.AvgDelayS,
			ViolationRatio: m.ViolationRatio,
			DataPackets:    uint64(m.DataPackets),
			Heartbeats:     uint64(m.Heartbeats),
			ForcedFlush:    uint64(m.ForcedFlush),
		}
		if out.Stats != want {
			t.Errorf("device %d stats:\n got %+v\nwant %+v", i, out.Stats, want)
		}
	}
	if s := srv.Stats(); s.Completed != 5 || s.Errored != 0 || s.Active != 0 {
		t.Errorf("counters after 5 sessions: %+v", s)
	}
}

// TestBackpressureQueueDepth drives a session through a 1-deep event
// queue: correctness must not depend on queue capacity, only throughput.
func TestBackpressureQueueDepth(t *testing.T) {
	pop := testPopulation(t)
	dev, err := fleet.SynthesizeDevice(7, pop, 0, testHorizon)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := SessionFromDevice(dev, testTheta, testK)
	if err != nil {
		t.Fatal(err)
	}
	res := directRun(t, dev)
	out := driveLoopback(t, New(Config{QueueDepth: 1}), sess)
	if got, want := out.Stats.DataPackets, uint64(len(res.Packets)); got != want {
		t.Errorf("queue depth 1: %d data packets, want %d", got, want)
	}
}

// TestConnLimit verifies connections beyond MaxConns are rejected while
// admitted sessions proceed.
func TestConnLimit(t *testing.T) {
	srv := New(Config{MaxConns: 1})
	c1, s1 := net.Pipe()
	defer c1.Close()
	held := make(chan error, 1)
	go func() { held <- srv.ServeConn(s1) }()

	// Wait until the first connection is registered.
	for srv.Stats().Active == 0 {
		time.Sleep(time.Millisecond)
	}
	c2, s2 := net.Pipe()
	defer c2.Close()
	if err := srv.ServeConn(s2); err != ErrServerClosed {
		t.Fatalf("over-limit ServeConn: %v, want ErrServerClosed", err)
	}
	if got := srv.Stats().Rejected; got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
	c1.Close()
	<-held
}

// TestGracefulDrain starts sessions, begins Shutdown mid-protocol, and
// verifies the running sessions complete while new ones are rejected.
func TestGracefulDrain(t *testing.T) {
	pop := testPopulation(t)
	srv := New(Config{})
	dev, err := fleet.SynthesizeDevice(7, pop, 1, testHorizon)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := SessionFromDevice(dev, testTheta, testK)
	if err != nil {
		t.Fatal(err)
	}

	client, serverSide := net.Pipe()
	srvErr := make(chan error, 1)
	go func() { srvErr <- srv.ServeConn(serverSide) }()

	// Handshake first, so the session is mid-protocol when the drain starts.
	w := wire.NewWriter(client)
	r := wire.NewReader(client)
	if err := w.Write(sess.Hello); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(context.Background()) }()
	for !srv.draining() {
		time.Sleep(time.Millisecond)
	}

	// New sessions are refused during the drain.
	c2, s2 := net.Pipe()
	defer c2.Close()
	if err := srv.ServeConn(s2); err != ErrServerClosed {
		t.Fatalf("ServeConn during drain: %v, want ErrServerClosed", err)
	}

	// The in-flight session still runs the full protocol. The admission
	// ack was already consumed above, so read to the closing ack here.
	statc := make(chan wire.StatsSnapshot, 1)
	errc := make(chan error, 1)
	go func() {
		var snap wire.StatsSnapshot
		for {
			m, err := r.Next()
			if err != nil {
				errc <- err
				return
			}
			switch v := m.(type) {
			case wire.StatsSnapshot:
				snap = v
			case wire.Ack:
				statc <- snap
				errc <- nil
				return
			}
		}
	}()
	for _, ev := range sess.Events {
		if err := w.Write(ev); err != nil {
			t.Fatalf("event write during drain: %v", err)
		}
	}
	if err := w.Write(wire.Ack{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("reading drained session output: %v", err)
	}
	if snap := <-statc; snap.DeviceID != sess.Hello.DeviceID {
		t.Errorf("drained session stats for device %d, want %d", snap.DeviceID, sess.Hello.DeviceID)
	}
	if err := <-srvErr; err != nil {
		t.Errorf("drained session error: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
}

// TestShutdownForceClose verifies an expired Shutdown context force-closes
// stuck sessions instead of waiting forever.
func TestShutdownForceClose(t *testing.T) {
	srv := New(Config{})
	client, serverSide := net.Pipe()
	defer client.Close()
	srvErr := make(chan error, 1)
	go func() { srvErr <- srv.ServeConn(serverSide) }()
	for srv.Stats().Active == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := srv.Shutdown(ctx); err != context.Canceled {
		t.Fatalf("Shutdown: %v, want context.Canceled", err)
	}
	if err := <-srvErr; err == nil {
		t.Error("force-closed session returned nil, want error")
	}
}

// TestServeAcceptLoop exercises the listener path end to end over TCP on
// localhost, including the Serve return on Shutdown.
func TestServeAcceptLoop(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	srv := New(Config{})
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	pop := testPopulation(t)
	dev, err := fleet.SynthesizeDevice(7, pop, 2, testHorizon)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := SessionFromDevice(dev, testTheta, testK)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	out, err := Drive(conn, sess)
	if err != nil {
		t.Fatalf("Drive over TCP: %v", err)
	}
	if out.Stats.DeviceID != sess.Hello.DeviceID {
		t.Errorf("TCP session stats for device %d, want %d", out.Stats.DeviceID, sess.Hello.DeviceID)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != ErrServerClosed {
		t.Errorf("Serve returned %v, want ErrServerClosed", err)
	}
}

// TestProtocolErrors sends malformed sessions and verifies the server
// rejects each with a counted error, without wedging.
func TestProtocolErrors(t *testing.T) {
	// admit performs the handshake, consuming the server's Ack{0} so the
	// following exchange (and any close) is deterministically ordered.
	admit := func(w *wire.Writer, r *wire.Reader, h wire.Hello) error {
		if err := w.Write(h); err != nil {
			return err
		}
		_, err := r.Next()
		return err
	}
	okHello := wire.Hello{Theta: 1, K: 2, Horizon: time.Minute}
	cases := []struct {
		name string
		cfg  Config
		send func(w *wire.Writer, r *wire.Reader) error
		want string
		// closeEarly hangs up right after sending, for the case whose
		// error is the hangup itself.
		closeEarly bool
	}{
		{
			name: "first frame not hello",
			send: func(w *wire.Writer, r *wire.Reader) error { return w.Write(wire.Ack{Seq: 1}) },
			want: "want hello",
		},
		{
			name: "bad hello horizon",
			send: func(w *wire.Writer, r *wire.Reader) error {
				return w.Write(wire.Hello{Theta: 1, K: 2, Horizon: -time.Second})
			},
			want: "horizon",
		},
		{
			name: "bad strategy parameters",
			send: func(w *wire.Writer, r *wire.Reader) error {
				return w.Write(wire.Hello{Theta: -1, K: 2, Horizon: time.Minute})
			},
			want: "hello",
		},
		{
			name: "stale event",
			send: func(w *wire.Writer, r *wire.Reader) error {
				if err := admit(w, r, okHello); err != nil {
					return err
				}
				if err := w.Write(wire.HeartbeatObserved{At: 30 * time.Second, App: "a", Size: 1}); err != nil {
					return err
				}
				return w.Write(wire.HeartbeatObserved{At: time.Second, App: "a", Size: 1})
			},
			want: "arrives after",
		},
		{
			name: "unknown cargo profile",
			send: func(w *wire.Writer, r *wire.Reader) error {
				if err := admit(w, r, okHello); err != nil {
					return err
				}
				return w.Write(wire.CargoArrival{ID: 1, At: time.Second, App: "a", Size: 1, Profile: 99})
			},
			want: "unknown kind",
		},
		{
			name: "decision frame from client",
			send: func(w *wire.Writer, r *wire.Reader) error {
				if err := admit(w, r, okHello); err != nil {
					return err
				}
				return w.Write(wire.Decision{Slot: time.Second})
			},
			want: "unexpected decision",
		},
		{
			// With parking disabled a mid-session hangup is terminal; the
			// default configuration parks instead (see resume_test.go).
			name: "close before finish",
			cfg:  Config{ResumeGrace: -1},
			send: func(w *wire.Writer, r *wire.Reader) error {
				return admit(w, r, okHello)
			},
			want:       "before finish",
			closeEarly: true,
		},
		{
			name: "resume unknown session",
			send: func(w *wire.Writer, r *wire.Reader) error {
				return w.Write(wire.Resume{DeviceID: 9, Token: 9, Got: 0})
			},
			want: "no detached session",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := New(tc.cfg)
			client, serverSide := net.Pipe()
			srvErr := make(chan error, 1)
			go func() { srvErr <- srv.ServeConn(serverSide) }()
			if err := tc.send(wire.NewWriter(client), wire.NewReader(client)); err != nil {
				t.Fatalf("send: %v", err)
			}
			if tc.closeEarly {
				client.Close()
			}
			err := <-srvErr
			client.Close()
			if err == nil {
				t.Fatal("session error is nil, want protocol error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("session error %q does not mention %q", err, tc.want)
			}
			if s := srv.Stats(); s.Errored != 1 {
				t.Errorf("errored = %d, want 1 (%+v)", s.Errored, s)
			}
		})
	}
}

// TestCountersAccumulate sanity-checks the frame counters over one
// completed session.
func TestCountersAccumulate(t *testing.T) {
	pop := testPopulation(t)
	srv := New(Config{})
	dev, err := fleet.SynthesizeDevice(7, pop, 3, testHorizon)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := SessionFromDevice(dev, testTheta, testK)
	if err != nil {
		t.Fatal(err)
	}
	out := driveLoopback(t, srv, sess)
	s := srv.Stats()
	wantIn := uint64(len(sess.Events)) + 2 // hello + events + finish ack
	if s.FramesIn != wantIn {
		t.Errorf("FramesIn = %d, want %d", s.FramesIn, wantIn)
	}
	wantOut := uint64(len(out.Decisions)) + 3 // admit ack + decisions + stats + final ack
	if s.FramesOut != wantOut {
		t.Errorf("FramesOut = %d, want %d", s.FramesOut, wantOut)
	}
	if s.Decisions != uint64(len(out.Decisions)) {
		t.Errorf("Decisions = %d, want %d", s.Decisions, len(out.Decisions))
	}
}

// TestSessionFromDeviceOrdersEvents verifies the replay stream is
// time-ordered — the property the engine's staleness guard relies on.
func TestSessionFromDeviceOrdersEvents(t *testing.T) {
	pop := testPopulation(t)
	for i := 0; i < 3; i++ {
		dev, err := fleet.SynthesizeDevice(11, pop, i, testHorizon)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := SessionFromDevice(dev, testTheta, testK)
		if err != nil {
			t.Fatal(err)
		}
		for j := 1; j < len(sess.Events); j++ {
			if eventAt(sess.Events[j]) < eventAt(sess.Events[j-1]) {
				t.Fatalf("device %d: event %d at %d precedes event %d at %d",
					i, j, eventAt(sess.Events[j]), j-1, eventAt(sess.Events[j-1]))
			}
		}
	}
}

// TestLogfReceivesErrors verifies the injected logger observes session
// failures.
func TestLogfReceivesErrors(t *testing.T) {
	logged := make(chan string, 1)
	srv := New(Config{Logf: func(format string, args ...any) {
		select {
		case logged <- fmt.Sprintf(format, args...):
		default:
		}
	}})
	client, serverSide := net.Pipe()
	srvErr := make(chan error, 1)
	go func() { srvErr <- srv.ServeConn(serverSide) }()
	w := wire.NewWriter(client)
	if err := w.Write(wire.Ack{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	client.Close()
	if err := <-srvErr; err == nil {
		t.Fatal("want session error")
	}
	select {
	case msg := <-logged:
		if !strings.Contains(msg, "hello") {
			t.Errorf("logged %q, want mention of hello", msg)
		}
	case <-time.After(time.Second):
		t.Fatal("logger never called")
	}
}
