// Command etrain-ctl is the cluster admin CLI: it drives a controller's
// ops HTTP surface (etraind -control ... -ops ...) from scripts and
// terminals (DESIGN.md §13).
//
// Usage:
//
//	etrain-ctl -ops http://127.0.0.1:4801 status
//	etrain-ctl -ops http://127.0.0.1:4801 shards
//	etrain-ctl -ops http://127.0.0.1:4801 sessions
//	etrain-ctl -ops http://127.0.0.1:4801 drain 2
//	etrain-ctl -ops http://127.0.0.1:4801 wait shards=3
//	etrain-ctl -ops http://127.0.0.1:4801 wait deaths=1 -timeout 30s
//
// status prints the controller's view — epoch, ring parameters, every
// registered shard with its beat age and draining flag. shards is the
// same table without the header, one line per shard, for awk-style
// scripting. sessions prints the fleet-wide merged counter totals.
// drain N removes shard N from the route table while its registration
// (and in-flight sessions) stay alive. wait COND polls the controller
// until COND holds or -timeout expires, for CI scripts that must not
// race cluster formation: COND is field=N (meaning >= N) over shards,
// deaths, drains, epoch, watchers, or accepted (the fleet-wide
// sessions-accepted total, fed by shard stats beats — the cluster smoke
// uses it to time a mid-run kill). Flags precede the command:
//
//	etrain-ctl -ops http://127.0.0.1:4801 -timeout 10s wait deaths=1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"
)

// status mirrors cluster.Status; decoded loosely so the CLI does not
// need the internal package (and keeps working across field additions).
type status struct {
	Epoch    uint64        `json:"Epoch"`
	RingSeed int64         `json:"RingSeed"`
	Vnodes   int           `json:"Vnodes"`
	Watchers int           `json:"Watchers"`
	Deaths   uint64        `json:"Deaths"`
	Drains   uint64        `json:"Drains"`
	Shards   []shardStatus `json:"Shards"`
}

type shardStatus struct {
	ID        uint64 `json:"ID"`
	Addr      string `json:"Addr"`
	Draining  bool   `json:"Draining"`
	BeatSeq   uint64 `json:"BeatSeq"`
	Beats     uint64 `json:"Beats"`
	BeatAgeMS int64  `json:"BeatAgeMS"`
}

func main() {
	ops := flag.String("ops", "http://127.0.0.1:4801", "controller ops HTTP base URL")
	timeout := flag.Duration("timeout", 30*time.Second, "wait deadline (wait command)")
	flag.Parse()
	if err := run(*ops, *timeout, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "etrain-ctl:", err)
		os.Exit(1)
	}
}

func run(ops string, timeout time.Duration, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: etrain-ctl [-ops URL] status|shards|sessions|drain N|wait COND")
	}
	base := strings.TrimRight(ops, "/")
	switch args[0] {
	case "status":
		st, err := getStatus(base)
		if err != nil {
			return err
		}
		fmt.Printf("epoch    %d\n", st.Epoch)
		fmt.Printf("ring     seed %d, %d vnodes/shard\n", st.RingSeed, st.Vnodes)
		fmt.Printf("shards   %d registered, %d watchers, %d deaths, %d drains\n",
			len(st.Shards), st.Watchers, st.Deaths, st.Drains)
		printShards(st.Shards)
		return nil
	case "shards":
		st, err := getStatus(base)
		if err != nil {
			return err
		}
		printShards(st.Shards)
		return nil
	case "sessions":
		body, err := get(base + "/sessions")
		if err != nil {
			return err
		}
		// Pretty-print the JSON as-is: the totals vocabulary is the wire
		// ShardStats frame and changes with it.
		var v any
		if err := json.Unmarshal(body, &v); err != nil {
			return err
		}
		out, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	case "drain":
		if len(args) != 2 {
			return fmt.Errorf("usage: etrain-ctl drain SHARD-ID")
		}
		id, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			return fmt.Errorf("shard id %q: %w", args[1], err)
		}
		resp, err := http.Post(base+"/drain?shard="+url.QueryEscape(args[1]), "", nil)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(resp.Body)
			return fmt.Errorf("drain %d: %s: %s", id, resp.Status, strings.TrimSpace(string(msg)))
		}
		fmt.Printf("shard %d draining\n", id)
		return nil
	case "wait":
		if len(args) != 2 {
			return fmt.Errorf("usage: etrain-ctl wait FIELD=N (shards, deaths, drains, epoch, watchers)")
		}
		return wait(base, args[1], timeout)
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

// wait polls the controller until cond (field=N, meaning field >= N)
// holds, or the deadline passes.
func wait(base, cond string, timeout time.Duration) error {
	field, val, ok := strings.Cut(cond, "=")
	if !ok {
		return fmt.Errorf("condition %q is not FIELD=N", cond)
	}
	want, err := strconv.ParseUint(strings.TrimPrefix(val, ">"), 10, 64)
	if err != nil {
		return fmt.Errorf("condition %q: %w", cond, err)
	}
	field = strings.TrimSuffix(field, ">") // tolerate field>=N spelling
	//lint:ignore notime admin-CLI boundary: the wait deadline is real time by definition
	deadline := time.Now().Add(timeout)
	for {
		got, err := waitField(base, field)
		if err != nil && strings.HasPrefix(err.Error(), "unknown wait field") {
			return err
		}
		if err == nil {
			if got >= want {
				fmt.Printf("%s=%d\n", field, got)
				return nil
			}
		}
		//lint:ignore notime admin-CLI boundary: the wait deadline is real time by definition
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("wait %s: deadline after %s; last error: %w", cond, timeout, err)
			}
			return fmt.Errorf("wait %s: deadline after %s", cond, timeout)
		}
		//lint:ignore notime admin-CLI boundary: a poll pause against a live HTTP endpoint
		time.Sleep(50 * time.Millisecond)
	}
}

// waitField reads one waitable counter from the controller.
func waitField(base, field string) (uint64, error) {
	if field == "accepted" {
		body, err := get(base + "/sessions")
		if err != nil {
			return 0, err
		}
		var sr struct {
			Totals struct{ Accepted uint64 }
		}
		if err := json.Unmarshal(body, &sr); err != nil {
			return 0, err
		}
		return sr.Totals.Accepted, nil
	}
	st, err := getStatus(base)
	if err != nil {
		return 0, err
	}
	switch field {
	case "shards":
		return uint64(len(st.Shards)), nil
	case "deaths":
		return st.Deaths, nil
	case "drains":
		return st.Drains, nil
	case "epoch":
		return st.Epoch, nil
	case "watchers":
		return uint64(st.Watchers), nil
	}
	return 0, fmt.Errorf("unknown wait field %q", field)
}

func printShards(shards []shardStatus) {
	for _, s := range shards {
		state := "up"
		if s.Draining {
			state = "draining"
		}
		age := "-"
		if s.BeatAgeMS >= 0 {
			age = strconv.FormatInt(s.BeatAgeMS, 10) + "ms"
		}
		fmt.Printf("shard %d  %s  %s  beat seq %d (%d beats, age %s)\n",
			s.ID, s.Addr, state, s.BeatSeq, s.Beats, age)
	}
}

func getStatus(base string) (*status, error) {
	body, err := get(base + "/status")
	if err != nil {
		return nil, err
	}
	var st status
	if err := json.Unmarshal(body, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

func get(u string) ([]byte, error) {
	resp, err := http.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", u, resp.Status)
	}
	return io.ReadAll(resp.Body)
}
