package server

import (
	"fmt"

	"etrain/internal/bandwidth"
	"etrain/internal/core"
	"etrain/internal/heartbeat"
	"etrain/internal/profile"
	"etrain/internal/radio"
	"etrain/internal/sched"
	"etrain/internal/sim"
	"etrain/internal/wire"
	"etrain/internal/workload"
)

// newStrategy builds a session's scheduling strategy from its Hello. A
// package variable so the panic-isolation test can substitute a hostile
// strategy; production sessions always host the core eTrain scheduler.
var newStrategy = func(h wire.Hello) (sched.Strategy, error) {
	return core.New(core.Options{Theta: h.Theta, K: int(h.K), Slot: h.Slot})
}

// Replayer turns a session's inbound wire frames into its outbound wire
// frames: one incremental sim.Engine driven event by event, emitting the
// Decision stream, the final StatsSnapshot and the echoed finish Ack.
//
// It is the single code path behind the protocol — the server's live
// sessions and the client's degraded-mode local fallback both drive a
// Replayer — which is what makes a device's frame stream a pure function
// of its Hello and events, identical no matter which side of a dead
// connection produced it (DESIGN.md §11).
type Replayer struct {
	hello   wire.Hello
	engine  *sim.Engine
	pending []wire.Decision
	emit    func(wire.Message) error
	done    bool
}

// NewReplayer validates the Hello and builds the replayer: the channel
// trace is rebuilt from the Hello's seed, and emit receives every
// outbound session frame in protocol order. An emit error aborts the
// current Apply and is returned as-is (unwrapped), so callers can
// distinguish transport failures from protocol violations.
func NewReplayer(h wire.Hello, power radio.PowerModel, emit func(wire.Message) error) (*Replayer, error) {
	strategy, err := newStrategy(h)
	if err != nil {
		return nil, fmt.Errorf("server: hello: %w", err)
	}
	bw, err := bandwidth.FromSeed(h.Seed, h.Horizon, nil)
	if err != nil {
		return nil, fmt.Errorf("server: hello: channel from seed: %w", err)
	}
	if power.Validate() != nil {
		power = radio.GalaxyS43G()
	}
	engine, err := sim.NewEngine(sim.Config{
		Horizon:   h.Horizon,
		Beats:     []heartbeat.Beat{},
		Bandwidth: bw,
		Power:     power,
		Strategy:  strategy,
		Seed:      h.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("server: hello: %w", err)
	}
	rp := &Replayer{hello: h, engine: engine, emit: emit}
	engine.OnSlot = func(r sim.SlotResult) {
		if len(r.Data) == 0 {
			return
		}
		d := wire.Decision{Slot: r.Slot, Flush: r.Flush, Entries: make([]wire.DecisionEntry, len(r.Data))}
		for i, p := range r.Data {
			d.Entries[i] = wire.DecisionEntry{ID: uint64(p.ID), Start: p.StartedAt}
		}
		rp.pending = append(rp.pending, d)
	}
	return rp, nil
}

// Hello returns the session parameters the replayer was built from.
func (rp *Replayer) Hello() wire.Hello { return rp.hello }

// Done reports whether the finish exchange has run.
func (rp *Replayer) Done() bool { return rp.done }

// Apply feeds one client session frame — HeartbeatObserved, CargoArrival,
// or the finish Ack — executing every simulation slot it completes and
// emitting the resulting frames. A protocol or engine error is returned
// wrapped with context; an emit error is returned exactly as emit
// produced it.
//
//etrain:hotpath
func (rp *Replayer) Apply(m wire.Message) error {
	if rp.done {
		return fmt.Errorf("server: %s frame after finish", m.MsgType())
	}
	switch v := m.(type) {
	case wire.HeartbeatObserved:
		b := heartbeat.Beat{At: v.At, App: v.App, Size: v.Size}
		if err := rp.engine.AddBeat(b); err != nil {
			return fmt.Errorf("server: %w", err)
		}
		if err := rp.engine.Advance(v.At); err != nil {
			return fmt.Errorf("server: %w", err)
		}
		return rp.flush()
	case wire.CargoArrival:
		prof, err := profile.New(v.Profile, v.Deadline)
		if err != nil {
			return fmt.Errorf("server: cargo %d: %w", v.ID, err)
		}
		p := workload.Packet{
			ID:        int(v.ID),
			App:       v.App,
			ArrivedAt: v.At,
			Size:      v.Size,
			Profile:   prof,
		}
		if err := rp.engine.AddPacket(p); err != nil {
			return fmt.Errorf("server: %w", err)
		}
		if err := rp.engine.Advance(v.At); err != nil {
			return fmt.Errorf("server: %w", err)
		}
		return rp.flush()
	case wire.Ack:
		return rp.finish(v)
	default:
		return fmt.Errorf("server: unexpected %s frame mid-session", m.MsgType())
	}
}

// finish runs the engine to the horizon and emits the closing frames: the
// flush decisions, the StatsSnapshot, and the echoed Ack.
func (rp *Replayer) finish(ack wire.Ack) error {
	res, err := rp.engine.Finish()
	if err != nil {
		return fmt.Errorf("server: finish: %w", err)
	}
	if err := rp.flush(); err != nil {
		return err
	}
	m := res.Metrics()
	snap := wire.StatsSnapshot{
		DeviceID:       rp.hello.DeviceID,
		EnergyJ:        m.EnergyJ,
		AvgDelayS:      m.AvgDelayS,
		ViolationRatio: m.ViolationRatio,
		DataPackets:    uint64(m.DataPackets),
		Heartbeats:     uint64(m.Heartbeats),
		ForcedFlush:    uint64(m.ForcedFlush),
	}
	if err := rp.emit(snap); err != nil {
		return err
	}
	if err := rp.emit(wire.Ack{Seq: ack.Seq}); err != nil {
		return err
	}
	rp.done = true
	return nil
}

// flush emits and clears the buffered Decision frames. The pending slice's
// backing array is retained across flushes so steady-state slots buffer
// without allocating; the Entries slices themselves are freshly built per
// decision because emit may journal the frame for resume replay.
//
//etrain:hotpath
func (rp *Replayer) flush() error {
	for i, d := range rp.pending {
		if err := rp.emit(d); err != nil {
			// The failed frame is dropped, matching the historical
			// pop-then-emit order; later frames stay pending.
			rp.pending = rp.pending[i+1:]
			return err
		}
	}
	for i := range rp.pending {
		rp.pending[i] = wire.Decision{}
	}
	rp.pending = rp.pending[:0]
	return nil
}
