package cluster

import (
	"context"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"etrain/internal/client"
	"etrain/internal/fleet"
	"etrain/internal/server"
	"etrain/internal/wire"
	"etrain/internal/workload"
)

// TestSnapshotRoundTrip: Snapshot → WriteSnapshot → LoadSnapshot is
// lossless, shards come back in ascending ID order, and the drain flag
// survives.
func TestSnapshotRoundTrip(t *testing.T) {
	c, addr := startController(t, ControllerConfig{RingSeed: 42, Vnodes: 16})
	s2 := joinShard(t, addr, 2, "b:2")
	defer s2.conn.Close()
	s2.tableWith(2)
	s1 := joinShard(t, addr, 1, "a:1")
	defer s1.conn.Close()
	s1.tableWith(1, 2)
	if err := c.Drain(2); err != nil {
		t.Fatal(err)
	}
	s1.tableWith(1)

	path := filepath.Join(t.TempDir(), "ctrl.json")
	if err := c.WriteSnapshot(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	want := c.Snapshot()
	if got.Epoch != want.Epoch || got.RingSeed != 42 || got.Vnodes != 16 ||
		got.Deaths != want.Deaths || got.Drains != 1 {
		t.Fatalf("loaded %+v, want %+v", got, want)
	}
	if len(got.Shards) != 2 || got.Shards[0] != (ShardSnapshot{ID: 1, Addr: "a:1"}) ||
		got.Shards[1] != (ShardSnapshot{ID: 2, Addr: "b:2", Draining: true}) {
		t.Fatalf("loaded shards %+v", got.Shards)
	}

	// A rewrite lands atomically on the same path.
	if err := c.WriteSnapshot(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
}

// TestLoadSnapshotValidation: missing files, torn JSON, and impossible
// member sets are all refused.
func TestLoadSnapshotValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadSnapshot(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("loading a missing snapshot succeeded")
	}
	cases := map[string]string{
		"torn":    `{"epoch": 3, "ring_se`,
		"vnodes":  `{"epoch": 3, "ring_seed": 1, "vnodes": 0, "shards": []}`,
		"zero-id": `{"epoch": 3, "ring_seed": 1, "vnodes": 8, "shards": [{"id": 0, "addr": "a:1"}]}`,
		"dup-id":  `{"epoch": 3, "ring_seed": 1, "vnodes": 8, "shards": [{"id": 2, "addr": "a:1"}, {"id": 2, "addr": "b:2"}]}`,
	}
	for name, body := range cases {
		p := filepath.Join(dir, name+".json")
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadSnapshot(p); err == nil {
			t.Errorf("%s snapshot loaded without error", name)
		}
	}
}

// TestRestorePhantomLifecycle: a restored controller republishes the
// snapshot's exact table (same epoch, draining members excluded), the
// grace window shields the phantoms from Sweep, and phantoms that never
// re-register expire through normal beat staleness once grace ends.
func TestRestorePhantomLifecycle(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(5000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	snap := &ControllerSnapshot{
		Epoch:    7,
		RingSeed: 9,
		Vnodes:   32,
		Shards: []ShardSnapshot{
			{ID: 1, Addr: "a:1"},
			{ID: 2, Addr: "b:2", Draining: true},
		},
		Deaths: 3,
		Drains: 1,
	}
	c := NewController(ControllerConfig{
		RingSeed:    -1, // overridden by the snapshot
		Clock:       clock,
		BeatTimeout: 5 * time.Second,
		RejoinGrace: 10 * time.Second,
		Restore:     snap,
	})

	tbl := c.Table()
	if tbl.Epoch != 7 || tbl.Seed != 9 || tbl.Vnodes != 32 {
		t.Fatalf("restored table %+v, want epoch 7 seed 9 vnodes 32", tbl)
	}
	if len(tbl.Shards) != 1 || tbl.Shards[0] != (wire.RouteEntry{ShardID: 1, Addr: "a:1"}) {
		t.Fatalf("restored entries %+v, want the non-draining member only", tbl.Shards)
	}
	st := c.Status()
	if len(st.Shards) != 2 || st.Deaths != 3 || st.Drains != 1 {
		t.Fatalf("restored status %+v", st)
	}

	// Inside the grace window Sweep must not touch the phantoms even
	// though their (restore-stamped) beats have gone stale.
	mu.Lock()
	now = now.Add(8 * time.Second)
	mu.Unlock()
	c.Sweep()
	if got := len(c.Status().Shards); got != 2 {
		t.Fatalf("sweep inside grace left %d shards, want 2", got)
	}

	// Past the grace window the never-rejoined phantoms expire normally.
	mu.Lock()
	now = now.Add(3 * time.Second)
	mu.Unlock()
	c.Sweep()
	if st := c.Status(); len(st.Shards) != 0 || st.Deaths != 5 {
		t.Fatalf("post-grace sweep: %+v", st)
	}
	if got := c.Table(); len(got.Shards) != 0 || got.Epoch != 8 {
		t.Fatalf("post-expiry table %+v, want empty at epoch 8", got)
	}
}

// TestShardRejoinEpochBumpsOnce is the satellite regression: a shard
// Sweep declared dead rejoins under the same ID — the epoch bumps
// exactly once for the rejoin, a content-identical re-registration does
// not bump it again, and a stale table can never reach a subscriber
// thanks to the push epoch guard.
func TestShardRejoinEpochBumpsOnce(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	c, addr := startController(t, ControllerConfig{RingSeed: 3, BeatTimeout: 10 * time.Second, Clock: clock})
	s1 := joinShard(t, addr, 1, "a:1")
	s2 := joinShard(t, addr, 2, "b:2")
	defer s2.conn.Close()
	s2.tableWith(1, 2)

	// Advance past the timeout, keep shard 2 alive with a fresh beat,
	// and let shard 1 fall silent (without closing its conn — conn loss
	// would remove it before Sweep gets the chance).
	mu.Lock()
	now = now.Add(11 * time.Second)
	mu.Unlock()
	s2.write(wire.ShardBeat{ShardID: 2, Seq: 1})
	waitUntil(t, "beat 1 landed", func() bool {
		st := c.Status()
		return len(st.Shards) == 2 && st.Shards[1].BeatSeq == 1
	})
	c.Sweep()
	if st := c.Status(); len(st.Shards) != 1 || st.Deaths != 1 {
		t.Fatalf("after sweep: %+v", st)
	}
	s1.conn.Close() // the abandoned conn's loop unwinds as superseded-or-gone
	s2.tableWith(2)
	epochAfterSweep := c.Table().Epoch

	// The rejoin: exactly one bump.
	s1b := joinShard(t, addr, 1, "a:1")
	defer s1b.conn.Close()
	rejoined := s1b.tableWith(1, 2)
	if rejoined.Epoch != epochAfterSweep+1 {
		t.Fatalf("rejoin moved epoch %d -> %d, want exactly one bump to %d",
			epochAfterSweep, rejoined.Epoch, epochAfterSweep+1)
	}

	// A content-identical re-registration (the shard's conn flapped and
	// it dialed again before the old conn died) must not bump at all.
	s1c := joinShard(t, addr, 1, "a:1")
	defer s1c.conn.Close()
	s1c.write(wire.ShardBeat{ShardID: 1, Seq: 42})
	waitUntil(t, "supersede processed", func() bool {
		st := c.Status()
		return len(st.Shards) == 2 && st.Shards[0].BeatSeq == 42
	})
	if got := c.Table().Epoch; got != rejoined.Epoch {
		t.Fatalf("identical re-registration bumped epoch %d -> %d", rejoined.Epoch, got)
	}

	// Epoch guard: a watcher already holding the current epoch gets no
	// stale (re)push; the first table it ever sees is the next epoch.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	watch := &testShard{t: t, conn: conn, r: wire.NewReader(conn), w: wire.NewWriter(conn)}
	watch.write(wire.Ack{Seq: rejoined.Epoch})
	s3 := joinShard(t, addr, 3, "c:3")
	defer s3.conn.Close()
	next := watch.tableWith(1, 2, 3)
	if next.Epoch != rejoined.Epoch+1 {
		t.Fatalf("watcher's first table is epoch %d, want %d and nothing staler",
			next.Epoch, rejoined.Epoch+1)
	}
}

// waitUntil polls cond with the package's usual 5s ceiling.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting: %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestControllerRestartRecovery is the crash-restart acceptance test:
// the controller is killed mid-run and restarted from its snapshot on
// the same address while a 3-shard cluster serves a device fleet. The
// shards re-register inside the grace window, the recovered route table
// matches the pre-crash one at an equal-or-higher epoch, and the fleet
// fold stays byte-identical to an uninterrupted single-process baseline.
func TestControllerRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-shard restart run")
	}
	const (
		devices = 12
		theta   = 4.0
		k       = 20
		horizon = 2 * time.Minute
	)
	pop, err := workload.NewPopulation(workload.DefaultMix())
	if err != nil {
		t.Fatal(err)
	}
	sessions := make([]server.Session, devices)
	baseline := make([]*server.DeviceOutcome, devices)
	single := server.New(server.Config{})
	for i := 0; i < devices; i++ {
		dev, err := fleet.SynthesizeDevice(7, pop, i, horizon)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := server.SessionFromDevice(dev, theta, k)
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = sess
		cl, sv := net.Pipe()
		srvErr := make(chan error, 1)
		go func() { srvErr <- single.ServeConn(sv) }()
		out, err := server.Drive(cl, sess)
		if err != nil {
			t.Fatal(err)
		}
		if err := <-srvErr; err != nil {
			t.Fatal(err)
		}
		baseline[i] = out
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctrlAddr := l.Addr().String()
	ctrl1 := NewController(ControllerConfig{RingSeed: 42})
	go ctrl1.Serve(l)

	shards := make(map[uint64]*shardProc)
	for _, id := range []uint64{1, 2, 3} {
		sp := startShardProc(t, ctrlAddr, id)
		shards[id] = sp
		t.Cleanup(func() { sp.kill() })
	}
	rt, err := NewRouter(RouterConfig{
		DialControl: tcpDialer(ctrlAddr),
		DialShard:   func(a string) (net.Conn, error) { return net.Dial("tcp", a) },
		Sleep:       func(time.Duration) { time.Sleep(time.Millisecond) },
		RedialWait:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	waitUntil(t, "cluster formation", func() bool { return len(rt.Table().Shards) == 3 })
	pre := ctrl1.Table()

	snapPath := filepath.Join(t.TempDir(), "ctrl.json")
	if err := ctrl1.WriteSnapshot(snapPath); err != nil {
		t.Fatal(err)
	}

	// The assassin waits for real in-flight work, kills the controller
	// abruptly (every control conn and the listener die, the SIGKILL
	// analog), and restarts it from the snapshot on the same address.
	restarted := make(chan *Controller, 1)
	go func() {
		defer close(restarted)
		for {
			active := 0
			for _, sp := range shards {
				active += int(sp.srv.Stats().Active + sp.srv.Stats().Completed)
			}
			if active > 0 {
				break
			}
			time.Sleep(50 * time.Microsecond)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_ = ctrl1.Shutdown(ctx)
		snap, err := LoadSnapshot(snapPath)
		if err != nil {
			t.Errorf("reloading snapshot: %v", err)
			return
		}
		var l2 net.Listener
		deadline := time.Now().Add(10 * time.Second)
		for {
			l2, err = net.Listen("tcp", ctrlAddr)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Errorf("rebinding %s: %v", ctrlAddr, err)
				return
			}
			time.Sleep(time.Millisecond)
		}
		ctrl2 := NewController(ControllerConfig{
			Restore:     snap,
			RejoinGrace: time.Minute,
			Clock:       time.Now,
		})
		// Phantoms must survive an immediate sweep: the whole point of
		// the grace window.
		ctrl2.Sweep()
		if got := len(ctrl2.Status().Shards); got != 3 {
			t.Errorf("sweep during grace kept %d phantoms, want 3", got)
		}
		go ctrl2.Serve(l2)
		restarted <- ctrl2
	}()

	outcomes := make([]*client.Outcome, devices)
	var wg sync.WaitGroup
	for i := 0; i < devices; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := client.Run(client.Config{
				Route: rt.Dialer(uint64(i)),
				Seed:  1,
				Sleep: func(time.Duration) { time.Sleep(time.Millisecond) },
			}, sessions[i])
			if err != nil {
				t.Errorf("device %d: %v", i, err)
				return
			}
			outcomes[i] = out
		}(i)
	}
	wg.Wait()
	ctrl2, ok := <-restarted
	if !ok || ctrl2 == nil {
		t.Fatal("controller never restarted")
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := ctrl2.Shutdown(ctx); err != nil {
			t.Errorf("restarted controller shutdown: %v", err)
		}
	})

	// Zero decision loss across the control-plane outage.
	for i, out := range outcomes {
		if out == nil {
			continue // already reported
		}
		want := baseline[i]
		if len(out.Decisions) != len(want.Decisions) {
			t.Errorf("device %d: %d decisions, baseline %d", i, len(out.Decisions), len(want.Decisions))
			continue
		}
		for j := range out.Decisions {
			g, w := out.Decisions[j], want.Decisions[j]
			if g.Flush != w.Flush || len(g.Entries) != len(w.Entries) {
				t.Errorf("device %d decision %d diverged", i, j)
				break
			}
			for e := range g.Entries {
				if g.Entries[e] != w.Entries[e] {
					t.Errorf("device %d decision %d entry %d diverged", i, j, e)
					break
				}
			}
		}
		if out.Stats != want.Stats {
			t.Errorf("device %d stats:\n got %+v\nwant %+v", i, out.Stats, want.Stats)
		}
	}

	// Fleet fold: byte-identical to the uninterrupted baseline.
	foldFrom := func(stats func(i int) wire.StatsSnapshot) FleetReport {
		fs, err := NewFleetStats(0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < devices; i++ {
			fs.Add(stats(i))
		}
		return fs.Report()
	}
	clusterReport := foldFrom(func(i int) wire.StatsSnapshot {
		if outcomes[i] == nil {
			return wire.StatsSnapshot{}
		}
		return outcomes[i].Stats
	})
	singleReport := foldFrom(func(i int) wire.StatsSnapshot { return baseline[i].Stats })
	if clusterReport != singleReport {
		t.Errorf("fleet reports diverge across the restart:\ncluster %+v\nsingle  %+v", clusterReport, singleReport)
	}

	// Every shard re-registers within the grace window and the recovered
	// table converges to the pre-crash one: identical members, seed and
	// vnodes at an equal-or-higher epoch (equal, thanks to the
	// content-compare rebuild skip).
	waitUntil(t, "shards re-registered after restart", func() bool {
		st := ctrl2.Status()
		if len(st.Shards) != 3 {
			return false
		}
		for _, sh := range st.Shards {
			if sh.Beats == 0 {
				return false // still a phantom, no live agent behind it
			}
		}
		return true
	})
	got := ctrl2.Table()
	if got.Seed != pre.Seed || got.Vnodes != pre.Vnodes || len(got.Shards) != len(pre.Shards) {
		t.Fatalf("recovered table %+v, pre-crash %+v", got, pre)
	}
	for i := range got.Shards {
		if got.Shards[i] != pre.Shards[i] {
			t.Fatalf("recovered entry %d: %+v, pre-crash %+v", i, got.Shards[i], pre.Shards[i])
		}
	}
	if got.Epoch < pre.Epoch {
		t.Fatalf("recovered epoch %d regressed below pre-crash %d", got.Epoch, pre.Epoch)
	}
	if got.Epoch != pre.Epoch {
		t.Errorf("recovered epoch %d, want exactly %d (re-registration must not storm)", got.Epoch, pre.Epoch)
	}
}
