package radio

import "time"

// DefaultTraceStep is the sampling period used when PowerTrace is given a
// non-positive step: 100 ms, the paper's power-monitor sampling period.
const DefaultTraceStep = 100 * time.Millisecond

// PowerSample is one instantaneous power reading.
type PowerSample struct {
	// At is the virtual instant of the sample.
	At time.Duration
	// Watts is the extra power above the IDLE baseline.
	Watts float64
	// State is the radio state at the sample instant.
	State State
}

// PowerTrace samples the timeline's instantaneous power every step from 0 to
// horizon (exclusive). It renders the kind of trace the paper shows in
// Fig. 2 and Fig. 4 and feeds the simulated power monitor.
func (tl *Timeline) PowerTrace(m PowerModel, horizon, step time.Duration) []PowerSample {
	if step <= 0 {
		step = DefaultTraceStep
	}
	n := int(horizon / step)
	out := make([]PowerSample, 0, n)
	for i := 0; i < n; i++ {
		at := time.Duration(i) * step
		s := tl.StateAt(m, at)
		out = append(out, PowerSample{At: at, Watts: m.Power(s), State: s})
	}
	return out
}

// IntegratePower integrates a power trace with the trapezoid-free rectangle
// rule (each sample holds until the next), returning joules. It cross-checks
// AccountEnergy: for fine steps the two agree closely.
func IntegratePower(samples []PowerSample, step time.Duration) float64 {
	total := 0.0
	for _, s := range samples {
		total += s.Watts * step.Seconds()
	}
	return total
}
