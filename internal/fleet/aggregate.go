package fleet

import (
	"fmt"

	"etrain/internal/stats"
)

// ClassAggregate is the streaming summary of every simulated device of one
// activeness class: constant-size mergeable moments plus quantile sketches,
// never the per-device samples. Two aggregates built from the same device
// multiset are bit-identical regardless of how the devices were grouped,
// which is what lets shard aggregates merge into a worker-count-independent
// report.
type ClassAggregate struct {
	// Devices counts the devices folded in.
	Devices int `json:"devices"`
	// WithoutJ and WithJ summarize per-device total energy in joules
	// without and with eTrain; SavedJ their difference.
	WithoutJ stats.Moments `json:"without_j"`
	WithJ    stats.Moments `json:"with_j"`
	SavedJ   stats.Moments `json:"saved_j"`
	// Saving summarizes the per-device fractional saving 1 - with/without.
	Saving stats.Moments `json:"saving"`
	// DelayS and Violation summarize the with-eTrain mean delay (seconds)
	// and deadline-violation ratio.
	DelayS    stats.Moments `json:"delay_s"`
	Violation stats.Moments `json:"violation"`

	// Quantile sketches over the same per-device values.
	SavedSketch  *stats.Sketch `json:"saved_sketch"`
	SavingSketch *stats.Sketch `json:"saving_sketch"`
	DelaySketch  *stats.Sketch `json:"delay_sketch"`
}

// newClassAggregate returns an empty aggregate with sketches at the given
// relative accuracy.
func newClassAggregate(alpha float64) (ClassAggregate, error) {
	var a ClassAggregate
	var err error
	if a.SavedSketch, err = stats.NewSketch(alpha); err != nil {
		return a, err
	}
	if a.SavingSketch, err = stats.NewSketch(alpha); err != nil {
		return a, err
	}
	if a.DelaySketch, err = stats.NewSketch(alpha); err != nil {
		return a, err
	}
	return a, nil
}

// add folds one device outcome in.
func (a *ClassAggregate) add(o deviceOutcome) {
	saved := o.withoutJ - o.withJ
	saving := 0.0
	if o.withoutJ > 0 {
		saving = saved / o.withoutJ
	}
	a.Devices++
	a.WithoutJ.Add(o.withoutJ)
	a.WithJ.Add(o.withJ)
	a.SavedJ.Add(saved)
	a.Saving.Add(saving)
	a.DelayS.Add(o.delayS)
	a.Violation.Add(o.violation)
	a.SavedSketch.Add(saved)
	a.SavingSketch.Add(saving)
	a.DelaySketch.Add(o.delayS)
}

// merge folds another aggregate of the same class in.
func (a *ClassAggregate) merge(o *ClassAggregate) error {
	a.Devices += o.Devices
	a.WithoutJ.Merge(o.WithoutJ)
	a.WithJ.Merge(o.WithJ)
	a.SavedJ.Merge(o.SavedJ)
	a.Saving.Merge(o.Saving)
	a.DelayS.Merge(o.DelayS)
	a.Violation.Merge(o.Violation)
	if err := a.SavedSketch.Merge(o.SavedSketch); err != nil {
		return err
	}
	if err := a.SavingSketch.Merge(o.SavingSketch); err != nil {
		return err
	}
	return a.DelaySketch.Merge(o.DelaySketch)
}

// ShardAggregate is one shard's complete summary: a ClassAggregate per mix
// entry, in mix order. It is the unit of checkpointing — a completed
// shard's aggregate fully replaces re-simulating its devices.
type ShardAggregate struct {
	// Shard is the shard index.
	Shard int `json:"shard"`
	// Devices counts the shard's devices.
	Devices int `json:"devices"`
	// Classes holds one aggregate per mix entry, in mix order.
	Classes []ClassAggregate `json:"classes"`
}

// newShardAggregate returns an empty aggregate for shard s over a mix of
// the given size.
func newShardAggregate(s, classes int, alpha float64) (*ShardAggregate, error) {
	agg := &ShardAggregate{Shard: s, Classes: make([]ClassAggregate, classes)}
	for c := range agg.Classes {
		var err error
		if agg.Classes[c], err = newClassAggregate(alpha); err != nil {
			return nil, err
		}
	}
	return agg, nil
}

// add folds one device outcome into its class.
func (s *ShardAggregate) add(o deviceOutcome) {
	s.Devices++
	s.Classes[o.classIndex].add(o)
}

// validateShape checks a deserialized aggregate against the run's layout.
func (s *ShardAggregate) validateShape(cfg *Config) error {
	if s.Shard < 0 || s.Shard >= cfg.shardCount() {
		return fmt.Errorf("fleet: shard index %d outside [0, %d)", s.Shard, cfg.shardCount())
	}
	if len(s.Classes) != len(cfg.Mix) {
		return fmt.Errorf("fleet: shard %d has %d classes, config has %d", s.Shard, len(s.Classes), len(cfg.Mix))
	}
	lo, hi := cfg.shardRange(s.Shard)
	if s.Devices != hi-lo {
		return fmt.Errorf("fleet: shard %d has %d devices, config expects %d", s.Shard, s.Devices, hi-lo)
	}
	for c := range s.Classes {
		if s.Classes[c].SavedSketch == nil || s.Classes[c].SavingSketch == nil || s.Classes[c].DelaySketch == nil {
			return fmt.Errorf("fleet: shard %d class %d is missing sketches", s.Shard, c)
		}
	}
	return nil
}
