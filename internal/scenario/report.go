package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"text/tabwriter"

	"etrain/internal/stats"
)

// Report is a scenario run's machine-readable outcome. Every field is
// a pure function of the scenario document, so both the JSON encoding
// and the Fprint text rendering are byte-identical across runs and
// worker counts — which is what lets the golden corpus pin them.
type Report struct {
	// Scenario, Engine, Devices, Seed, Horizon, Theta and K echo the
	// effective configuration.
	Scenario string   `json:"scenario"`
	Engine   string   `json:"engine"`
	Devices  int      `json:"devices"`
	Seed     int64    `json:"seed"`
	Horizon  Duration `json:"horizon"`
	Theta    float64  `json:"theta"`
	K        int      `json:"k"`
	// Events is the timeline length.
	Events int `json:"timeline_events"`
	// ConfigHash names the scenario's simulation identity.
	ConfigHash string `json:"config_hash"`
	// Classes holds one row per mix entry, in mix order; Total spans
	// the fleet.
	Classes []ClassSummary `json:"classes"`
	Total   ClassSummary   `json:"total"`
	// Transport summarizes the loopback healing outcomes; nil under the
	// direct engine.
	Transport *TransportSummary `json:"transport,omitempty"`
	// Assertions holds one result per assert entry, in declaration
	// order; Pass is their conjunction (vacuously true with none).
	Assertions []AssertionResult `json:"assertions"`
	Pass       bool              `json:"pass"`
}

// ClassSummary is one class's (or the fleet's) aggregate row. Floats
// are quantized to six decimals so renderings stay readable and
// byte-stable.
type ClassSummary struct {
	Label        string  `json:"label"`
	Devices      int     `json:"devices"`
	WithoutJMean float64 `json:"without_j_mean"`
	WithJMean    float64 `json:"with_j_mean"`
	SavedJMean   float64 `json:"saved_j_mean"`
	SavingMean   float64 `json:"saving_mean"`
	SavingP10    float64 `json:"saving_p10"`
	SavingP50    float64 `json:"saving_p50"`
	SavingP90    float64 `json:"saving_p90"`
	DelayMeanS   float64 `json:"delay_mean_s"`
	DelayP50S    float64 `json:"delay_p50_s"`
	DelayP99S    float64 `json:"delay_p99_s"`
	Violation    float64 `json:"violation_mean"`
}

// TransportSummary is the loopback engine's fleet-wide healing tally.
type TransportSummary struct {
	SessionsOK   int `json:"sessions_ok"`
	Failed       int `json:"sessions_failed"`
	Degraded     int `json:"degraded"`
	Unreconciled int `json:"unreconciled"`
	DecisionLoss int `json:"decision_loss"`
	Reconnects   int `json:"reconnects"`
	Resumes      int `json:"resumes"`
	Replays      int `json:"replays"`
	Restarts     int `json:"restarts"`
	// BusyResponses and BudgetExhausted appear only under an
	// overload_burst timeline (omitempty keeps older reports, and the
	// goldens pinning them, byte-identical).
	BusyResponses   int `json:"busy_responses,omitempty"`
	BudgetExhausted int `json:"retry_budget_exhausted,omitempty"`
}

// AssertionResult is one evaluated predicate.
type AssertionResult struct {
	Metric   string   `json:"metric"`
	Class    string   `json:"class"`
	Min      *float64 `json:"min,omitempty"`
	Max      *float64 `json:"max,omitempty"`
	Observed float64  `json:"observed"`
	Pass     bool     `json:"pass"`
	// Error reports an unevaluable metric (empty class, for instance);
	// it fails the assertion.
	Error string `json:"error,omitempty"`
}

// buildReport assembles the report from the folded outcome set.
func buildReport(c *compiled, hash string, set *outcomeSet) *Report {
	engine := EngineDirect
	if c.loopback {
		engine = EngineLoopback
	}
	r := &Report{
		Scenario:   c.sc.Name,
		Engine:     engine,
		Devices:    c.sc.Fleet.Devices,
		Seed:       c.sc.Seed,
		Horizon:    c.sc.Horizon,
		Theta:      c.theta,
		K:          c.k,
		Events:     len(c.sc.Timeline),
		ConfigHash: hash,
		Total:      summarize("all", set.total),
	}
	for i, label := range set.labels {
		r.Classes = append(r.Classes, summarize(label, set.byClass[i]))
	}
	if c.loopback {
		t := set.tally
		r.Transport = &TransportSummary{
			SessionsOK:   set.devices - t.failed,
			Failed:       t.failed,
			Degraded:     t.degraded,
			Unreconciled: t.unreconciled,
			DecisionLoss: t.decisionLoss,
			Reconnects:      t.reconnects,
			Resumes:         t.resumes,
			Replays:         t.replays,
			Restarts:        t.restarts,
			BusyResponses:   t.busy,
			BudgetExhausted: t.exhausted,
		}
	}
	r.Assertions = set.evaluate(c.sc.Assert)
	r.Pass = true
	for _, a := range r.Assertions {
		r.Pass = r.Pass && a.Pass
	}
	return r
}

// summarize renders one aggregate as a summary row.
func summarize(label string, a *classAgg) ClassSummary {
	return ClassSummary{
		Label:        label,
		Devices:      a.devices,
		WithoutJMean: round6(meanOr0(a.withoutJ)),
		WithJMean:    round6(meanOr0(a.withJ)),
		SavedJMean:   round6(meanOr0(a.savedJ)),
		SavingMean:   round6(meanOr0(a.saving)),
		SavingP10:    round6(quantileOr0(a.savingSketch, 10)),
		SavingP50:    round6(quantileOr0(a.savingSketch, 50)),
		SavingP90:    round6(quantileOr0(a.savingSketch, 90)),
		DelayMeanS:   round6(meanOr0(a.delay)),
		DelayP50S:    round6(quantileOr0(a.delaySketch, 50)),
		DelayP99S:    round6(quantileOr0(a.delaySketch, 99)),
		Violation:    round6(meanOr0(a.violate)),
	}
}

func meanOr0(m stats.Moments) float64 {
	if m.N() == 0 {
		return 0
	}
	return m.Mean()
}

func quantileOr0(s *stats.Sketch, p float64) float64 {
	v, err := s.Quantile(p)
	if err != nil {
		return 0
	}
	return v
}

// round6 quantizes to six decimals: enough resolution for every
// reported metric, few enough digits for stable, readable renderings.
func round6(v float64) float64 {
	scaled := v * 1e6
	if scaled >= 0 {
		scaled += 0.5
	} else {
		scaled -= 0.5
	}
	return float64(int64(scaled)) / 1e6
}

// EncodeJSON renders the report canonically.
func (r *Report) EncodeJSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encode report: %w", err)
	}
	return append(b, '\n'), nil
}

// Fprint renders the report as a deterministic aligned-text document —
// the form the golden corpus pins byte for byte.
func (r *Report) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"eTrain scenario report: %s\nengine=%s devices=%d seed=%d horizon=%s theta=%g k=%d events=%d\nconfig_hash=%s\n\n",
		r.Scenario, r.Engine, r.Devices, r.Seed, r.Horizon, r.Theta, r.K, r.Events, r.ConfigHash,
	); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "class\tdevices\twithout_J\twith_J\tsaved_J\tsaving\tsaving_p10\tsaving_p50\tsaving_p90\tdelay_s\tdelay_s_p99\tviolation")
	for i := range r.Classes {
		printSummaryRow(tw, &r.Classes[i])
	}
	printSummaryRow(tw, &r.Total)
	if err := tw.Flush(); err != nil {
		return err
	}
	if t := r.Transport; t != nil {
		line := fmt.Sprintf(
			"\ntransport ok=%d failed=%d degraded=%d unreconciled=%d decision_loss=%d reconnects=%d resumes=%d replays=%d restarts=%d",
			t.SessionsOK, t.Failed, t.Degraded, t.Unreconciled, t.DecisionLoss, t.Reconnects, t.Resumes, t.Replays, t.Restarts,
		)
		// Overload counters render only when present, so reports (and
		// goldens) from scenarios without an overload_burst keep their
		// exact historical bytes.
		if t.BusyResponses > 0 || t.BudgetExhausted > 0 {
			line += fmt.Sprintf(" busy=%d budget_exhausted=%d", t.BusyResponses, t.BudgetExhausted)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	if len(r.Assertions) > 0 {
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		for _, a := range r.Assertions {
			if err := printAssertion(w, a); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintf(w, "\nresult %s\n", passLabel(r.Pass))
	return err
}

func printSummaryRow(w io.Writer, s *ClassSummary) {
	fmt.Fprintf(w, "%s\t%d\t%.2f\t%.2f\t%.2f\t%.4f\t%.4f\t%.4f\t%.4f\t%.3f\t%.3f\t%.4f\n",
		s.Label, s.Devices,
		s.WithoutJMean, s.WithJMean, s.SavedJMean,
		s.SavingMean, s.SavingP10, s.SavingP50, s.SavingP90,
		s.DelayMeanS, s.DelayP99S, s.Violation,
	)
}

func printAssertion(w io.Writer, a AssertionResult) error {
	bounds := ""
	if a.Min != nil {
		bounds += fmt.Sprintf(" min=%g", *a.Min)
	}
	if a.Max != nil {
		bounds += fmt.Sprintf(" max=%g", *a.Max)
	}
	if a.Error != "" {
		_, err := fmt.Fprintf(w, "assert %s %s (class %s): error: %s%s\n",
			passLabel(false), a.Metric, a.Class, a.Error, bounds)
		return err
	}
	_, err := fmt.Fprintf(w, "assert %s %s (class %s) = %.6g%s\n",
		passLabel(a.Pass), a.Metric, a.Class, a.Observed, bounds)
	return err
}

func passLabel(pass bool) string {
	if pass {
		return "PASS"
	}
	return "FAIL"
}
