// Package sim drives the slotted simulation of the paper's §VI: heartbeat
// departures, Poisson cargo arrivals, a scheduling strategy, and a
// serialized radio link feeding the tail-energy accountant.
//
// Each run is deterministic: heartbeat schedules and packet arrivals are
// precomputed, the only randomness (channel-estimator noise) flows from an
// explicit seed.
//
// The engine comes in two forms sharing one code path: Run executes a
// fully precomputed Config to the horizon in one call, and Engine exposes
// the same slot loop incrementally — events are fed one at a time
// (AddBeat/AddPacket) and slots execute as virtual time advances — which
// is what lets a network session (internal/server) drive a device from
// wire events and still produce output byte-identical to Run.
package sim

import (
	"fmt"
	"slices"
	"time"

	"etrain/internal/bandwidth"
	"etrain/internal/heartbeat"
	"etrain/internal/radio"
	"etrain/internal/sched"
	"etrain/internal/stats"
	"etrain/internal/workload"
)

// Config describes one simulation run.
type Config struct {
	// Horizon is the simulated span; the paper uses 7200 s.
	Horizon time.Duration
	// Trains are the heartbeat-sending apps.
	Trains []heartbeat.TrainApp
	// Beats, when non-nil, overrides the trains' generated schedule with an
	// explicit departure table (jittered schedules, offline instances).
	Beats []heartbeat.Beat
	// Packets are the cargo arrivals, sorted by arrival time.
	Packets []workload.Packet
	// Bandwidth drives transmission durations. Required.
	Bandwidth *bandwidth.Trace
	// Power is the radio energy model. Required (use radio.GalaxyS43G())
	// unless Radio is set.
	Power radio.PowerModel
	// Radio, when non-nil, selects the radio generation for energy
	// accounting instead of Power — e.g. radio.LTEDRX() to run the same
	// timeline under the LTE connected-mode DRX machine. Power is ignored
	// while Radio is set.
	Radio radio.Model
	// Strategy decides data transmissions. Required.
	Strategy sched.Strategy
	// Estimator, if set, exposes a noisy channel estimate to the strategy
	// (PerES/eTime). eTrain ignores it. Run uses it as given; a Runner
	// hands every sweep point its own Reseeded copy (see Seed) so
	// concurrent runs never share its stream.
	Estimator *bandwidth.Estimator
	// Seed is the base seed a Runner derives per-run randomness from: the
	// run at control c of the strategy family key f draws estimator noise
	// from randx.Derive(Seed, hash(f), bits(c)). Runs are thereby pure
	// functions of their identity, which is what makes parallel sweeps
	// bit-identical to sequential ones.
	Seed int64
	// CacheKey, when non-empty, names the non-strategy content of this
	// config (trace, workload, power model, horizon, seed) for the
	// Runner's result cache. Two configs sharing a CacheKey are asserted
	// identical by the caller; leave it empty to opt out of caching.
	CacheKey string
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Horizon <= 0 {
		return fmt.Errorf("sim: non-positive horizon %v", c.Horizon)
	}
	if c.Bandwidth == nil {
		return fmt.Errorf("sim: no bandwidth trace")
	}
	if c.Strategy == nil {
		return fmt.Errorf("sim: no strategy")
	}
	if c.Radio != nil {
		if err := c.Radio.Validate(); err != nil {
			return err
		}
	} else if err := c.Power.Validate(); err != nil {
		return err
	}
	for _, tr := range c.Trains {
		if err := tr.Validate(); err != nil {
			return err
		}
	}
	for i := 1; i < len(c.Beats); i++ {
		if c.Beats[i].At < c.Beats[i-1].At {
			return fmt.Errorf("sim: beat override not sorted at index %d", i)
		}
	}
	for i := 1; i < len(c.Packets); i++ {
		if c.Packets[i].ArrivedAt < c.Packets[i-1].ArrivedAt {
			return fmt.Errorf("sim: packets not sorted at index %d", i)
		}
	}
	return nil
}

// PacketStat records the fate of one data packet.
type PacketStat struct {
	// ID, App and Size identify the packet.
	ID   int
	App  string
	Size int64
	// ArrivedAt and StartedAt are t_a(u) and t_s(u).
	ArrivedAt time.Duration
	StartedAt time.Duration
	// Delay is StartedAt − ArrivedAt.
	Delay time.Duration
	// Violated reports whether Delay exceeded the packet's deadline.
	Violated bool
	// ForcedFlush marks packets drained unscheduled at the horizon.
	ForcedFlush bool
}

// Result aggregates one run.
type Result struct {
	// Strategy names the strategy that produced the result.
	Strategy string
	// Energy is the radio energy breakdown.
	Energy radio.Energy
	// Timeline is the full transmission record.
	Timeline *radio.Timeline
	// Packets holds one entry per data packet, in transmission order.
	Packets []PacketStat
	// HeartbeatCount is the number of heartbeat transmissions.
	HeartbeatCount int
	// ForcedFlushCount is how many packets were still queued at the
	// horizon and force-drained.
	ForcedFlushCount int
}

// NormalizedDelay returns the paper's normalized delay metric: the average
// delay per data packet.
func (r Result) NormalizedDelay() time.Duration {
	if len(r.Packets) == 0 {
		return 0
	}
	var total time.Duration
	for _, p := range r.Packets {
		total += p.Delay
	}
	return total / time.Duration(len(r.Packets))
}

// AppStat summarizes one cargo app's outcomes within a run.
type AppStat struct {
	// Count is the number of packets the app transmitted.
	Count int
	// AvgDelay is the mean delay of the app's packets.
	AvgDelay time.Duration
	// ViolationRatio is the app's own deadline violation ratio.
	ViolationRatio float64
	// Bytes is the total payload transmitted.
	Bytes int64
}

// AppStats breaks the run's packet outcomes down by cargo app.
func (r Result) AppStats() map[string]AppStat {
	type acc struct {
		count    int
		delays   time.Duration
		violated int
		bytes    int64
	}
	accs := make(map[string]*acc)
	for _, p := range r.Packets {
		a, ok := accs[p.App]
		if !ok {
			a = &acc{}
			accs[p.App] = a
		}
		a.count++
		a.delays += p.Delay
		a.bytes += p.Size
		if p.Violated {
			a.violated++
		}
	}
	out := make(map[string]AppStat, len(accs))
	for app, a := range accs {
		stat := AppStat{Count: a.count, Bytes: a.bytes}
		if a.count > 0 {
			stat.AvgDelay = a.delays / time.Duration(a.count)
			stat.ViolationRatio = float64(a.violated) / float64(a.count)
		}
		out[app] = stat
	}
	return out
}

// DelayPercentile returns the p-th percentile (0–100) of per-packet delay.
func (r Result) DelayPercentile(p float64) time.Duration {
	if len(r.Packets) == 0 {
		return 0
	}
	delays := make([]float64, len(r.Packets))
	for i, pkt := range r.Packets {
		delays[i] = pkt.Delay.Seconds()
	}
	v, err := stats.Percentile(delays, p)
	if err != nil {
		return 0
	}
	return time.Duration(v * float64(time.Second))
}

// DeadlineViolationRatio returns the fraction of packets transmitted after
// their deadline.
func (r Result) DeadlineViolationRatio() float64 {
	if len(r.Packets) == 0 {
		return 0
	}
	violated := 0
	for _, p := range r.Packets {
		if p.Violated {
			violated++
		}
	}
	return float64(violated) / float64(len(r.Packets))
}

// SlotResult reports what one executed slot transmitted. Data is a view
// into the growing Result.Packets, valid until the next slot executes.
type SlotResult struct {
	// Slot is the slot's start instant (the horizon for the final flush).
	Slot time.Duration
	// Flush marks the horizon drain of still-queued packets.
	Flush bool
	// Data lists the data packets transmitted by this slot, in
	// transmission order.
	Data []PacketStat
	// Heartbeats counts the slot's heartbeat transmissions.
	Heartbeats int
}

// Engine is the incremental form of the simulation: the exact slot loop of
// Run, exposed as an event-fed state machine. Events enter through AddBeat
// and AddPacket in non-decreasing time order; Advance executes every slot
// whose inputs are complete; Finish runs the remaining slots to the
// horizon, drains the queues and accounts energy.
//
// Run is implemented on top of Engine, so a device driven incrementally —
// e.g. from decoded wire frames by internal/server — produces decisions
// and metrics byte-identical to the same device run in one Run call.
type Engine struct {
	cfg        Config
	slot       time.Duration
	queues     *sched.Queues
	txQueue    *sched.TxQueue // the paper's Q_TX
	timeline   *radio.Timeline
	res        *Result
	beats      []heartbeat.Beat
	packets    []workload.Packet
	nextBeat   int
	nextPacket int
	slotStart  time.Duration
	busyUntil  time.Duration
	finished   bool

	// ctx is the slot context handed to the strategy, reused across slots
	// so the hot loop performs no per-slot allocation. Strategies must not
	// retain it past Schedule (the sched.Strategy contract).
	ctx sched.SlotContext
	// estimateAt is the instant the shared estimator closure in ctx reads;
	// step updates it instead of allocating a fresh closure per slot.
	estimateAt time.Duration
	// events is the slot's transmission interleaving buffer, reused across
	// slots.
	events []txEvent

	// OnSlot, when non-nil, observes every executed slot (and the final
	// flush) as it happens. Run leaves it nil; a server session uses it to
	// turn slot outcomes into Decision frames.
	OnSlot func(SlotResult)
}

// NewEngine validates the config and returns an engine positioned at slot
// zero. Config.Packets and Config.Beats (or the Trains' merged schedule)
// preload the event buffers; more events may be appended with AddPacket
// and AddBeat as long as time order is preserved.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	beats := cfg.Beats
	if beats == nil {
		beats = heartbeat.Merge(cfg.Trains, cfg.Horizon)
	}
	slot := cfg.Strategy.SlotLength()
	if slot <= 0 {
		slot = time.Second
	}
	timeline := &radio.Timeline{}
	// Preallocate the engine's steady state from the config: every beat and
	// packet becomes at most one transmission, so sizing the timeline and
	// the result's packet record up front keeps the slot loop free of
	// growth reallocations.
	timeline.Reserve(len(beats) + len(cfg.Packets))
	res := &Result{Strategy: cfg.Strategy.Name(), Timeline: timeline}
	res.Packets = make([]PacketStat, 0, len(cfg.Packets))
	e := &Engine{
		cfg:      cfg,
		slot:     slot,
		queues:   sched.NewQueues(),
		txQueue:  &sched.TxQueue{},
		timeline: timeline,
		res:      res,
		beats:    beats,
		packets:  cfg.Packets,
	}
	e.ctx = sched.SlotContext{
		SlotLength:    slot,
		Queues:        e.queues,
		MeanBandwidth: cfg.Bandwidth.Mean(),
	}
	if cfg.Estimator != nil {
		// One closure for the engine's lifetime; step repoints estimateAt.
		e.ctx.EstimateBandwidth = func() float64 { return e.cfg.Estimator.Estimate(e.estimateAt) }
	}
	return e, nil
}

// Now returns the start instant of the next unexecuted slot.
func (e *Engine) Now() time.Duration { return e.slotStart }

// SlotLength returns the engine's decision period.
func (e *Engine) SlotLength() time.Duration { return e.slot }

// Finished reports whether Finish has run.
func (e *Engine) Finished() bool { return e.finished }

// AddBeat appends one heartbeat departure. Beats must arrive in
// non-decreasing time order and must not predate the next unexecuted slot
// — a beat the batch run would already have consumed cannot be replayed.
//
//etrain:hotpath
func (e *Engine) AddBeat(b heartbeat.Beat) error {
	if e.finished {
		return fmt.Errorf("sim: beat after Finish")
	}
	if n := len(e.beats); n > e.nextBeat && b.At < e.beats[n-1].At {
		return fmt.Errorf("sim: beat at %v arrives after beat at %v", b.At, e.beats[n-1].At)
	}
	if b.At < e.slotStart {
		return fmt.Errorf("sim: stale beat at %v; slot %v already executed", b.At, e.slotStart)
	}
	e.beats = append(e.beats, b)
	return nil
}

// AddPacket appends one cargo arrival. Packets must arrive in
// non-decreasing time order and must not predate the next unexecuted slot.
//
//etrain:hotpath
func (e *Engine) AddPacket(p workload.Packet) error {
	if e.finished {
		return fmt.Errorf("sim: packet after Finish")
	}
	if n := len(e.packets); n > e.nextPacket && p.ArrivedAt < e.packets[n-1].ArrivedAt {
		return fmt.Errorf("sim: packet at %v arrives after packet at %v", p.ArrivedAt, e.packets[n-1].ArrivedAt)
	}
	if p.ArrivedAt < e.slotStart {
		return fmt.Errorf("sim: stale packet at %v; slot %v already executed", p.ArrivedAt, e.slotStart)
	}
	e.packets = append(e.packets, p)
	return nil
}

// Advance executes every slot that ends at or before upTo (never past the
// horizon). The caller guarantees all events up to upTo have been added;
// an event stream fed in time order satisfies this by advancing to each
// event's instant after adding it.
//
//etrain:hotpath
func (e *Engine) Advance(upTo time.Duration) error {
	if e.finished {
		return fmt.Errorf("sim: advance after Finish")
	}
	for e.slotStart < e.cfg.Horizon && e.slotStart+e.slot <= upTo {
		if err := e.step(); err != nil {
			return err
		}
	}
	return nil
}

// Finish executes the remaining slots to the horizon, force-drains
// whatever is still queued, accounts energy, and returns the completed
// result. The result is byte-identical to Run on the same total event set.
func (e *Engine) Finish() (*Result, error) {
	if e.finished {
		return nil, fmt.Errorf("sim: Finish called twice")
	}
	for e.slotStart < e.cfg.Horizon {
		if err := e.step(); err != nil {
			return nil, err
		}
	}

	// Horizon flush: whatever is still queued is drained so every packet is
	// accounted for. (End effects only; counted separately.)
	for e.nextPacket < len(e.packets) {
		e.queues.Add(e.packets[e.nextPacket])
		e.nextPacket++
	}
	flushFrom := len(e.res.Packets)
	for {
		oldest, ok := e.queues.Oldest()
		if !ok {
			break
		}
		p, ok := e.queues.PopByID(oldest.App, oldest.ID)
		if !ok {
			break
		}
		start, err := e.transmit(e.cfg.Horizon, p.Size, radio.TxData, p.App)
		if err != nil {
			return nil, err
		}
		e.recordData(p, start, true)
		e.res.ForcedFlushCount++
	}
	if e.OnSlot != nil && len(e.res.Packets) > flushFrom {
		e.OnSlot(SlotResult{Slot: e.cfg.Horizon, Flush: true, Data: e.res.Packets[flushFrom:]})
	}

	if e.cfg.Radio != nil {
		e.res.Energy = e.timeline.AccountEnergyModel(e.cfg.Radio, e.cfg.Horizon+e.cfg.Radio.TailTime())
	} else {
		e.res.Energy = e.timeline.AccountEnergy(e.cfg.Power, e.cfg.Horizon+e.cfg.Power.TailTime())
	}
	e.finished = true
	return e.res, nil
}

// transmit serializes one transmission on the radio link, queueing behind
// the current one if the link is busy.
//
//etrain:hotpath
func (e *Engine) transmit(at time.Duration, size int64, kind radio.TxKind, app string) (time.Duration, error) {
	start := at
	if e.busyUntil > start {
		start = e.busyUntil
	}
	txTime := e.cfg.Bandwidth.TransmitTime(start, size)
	err := e.timeline.Append(radio.Transmission{
		Start: start, TxTime: txTime, Size: size, Kind: kind, App: app,
	})
	if err != nil {
		return 0, err
	}
	e.busyUntil = start + txTime
	return start, nil
}

// recordData appends one data packet's fate to the result.
//
//etrain:hotpath
func (e *Engine) recordData(p workload.Packet, start time.Duration, forced bool) {
	e.res.Packets = append(e.res.Packets, PacketStat{
		ID: p.ID, App: p.App, Size: p.Size,
		ArrivedAt: p.ArrivedAt, StartedAt: start,
		Delay:       start - p.ArrivedAt,
		Violated:    p.DeadlineViolated(start),
		ForcedFlush: forced,
	})
}

// txEvent is one transmission candidate of a slot: a heartbeat at its
// departure instant or a Q_TX drain from its injection instant.
type txEvent struct {
	at   time.Duration
	size int64
	kind radio.TxKind
	app  string
	pkt  workload.Packet
}

// cmpTxEvent orders a slot's transmissions by instant, heartbeats first at
// equal instants so data rides the heartbeat's tail.
func cmpTxEvent(a, b txEvent) int {
	switch {
	case a.at < b.at:
		return -1
	case a.at > b.at:
		return 1
	}
	ah, bh := a.kind == radio.TxHeartbeat, b.kind == radio.TxHeartbeat
	switch {
	case ah && !bh:
		return -1
	case bh && !ah:
		return 1
	}
	return 0
}

// step executes the slot starting at e.slotStart. This is the body of
// Run's original loop, verbatim: ingest arrivals, collect departures, ask
// the strategy, inject into Q_TX, interleave on the serialized link.
//
//etrain:hotpath
func (e *Engine) step() error {
	slotStart := e.slotStart
	slotEnd := slotStart + e.slot

	// Packets generated in earlier slots are visible now (the paper's
	// A_i(t) arrives by the end of slot t).
	for e.nextPacket < len(e.packets) && e.packets[e.nextPacket].ArrivedAt < slotStart {
		e.queues.Add(e.packets[e.nextPacket])
		e.nextPacket++
	}

	// Train departures within this slot.
	beatEnd := e.nextBeat
	for beatEnd < len(e.beats) && e.beats[beatEnd].At < slotEnd {
		beatEnd++
	}
	slotBeats := e.beats[e.nextBeat:beatEnd]
	e.nextBeat = beatEnd

	// The slot context is reused across slots; only the slot-varying
	// fields are rewritten here (see NewEngine for the fixed ones).
	e.ctx.Now = slotStart
	e.ctx.HeartbeatNow = len(slotBeats) > 0
	e.ctx.Beats = slotBeats
	e.estimateAt = slotStart

	selected := e.cfg.Strategy.Schedule(&e.ctx)
	// Q*(t) is injected into the FIFO transmission queue Q_TX, whose
	// head-of-line packet transmits whenever the radio is free (§IV).
	e.txQueue.Inject(slotStart, selected)

	// Interleave heartbeats (at their departure instants) and Q_TX
	// drains (from their injection instants) on the serialized link. A
	// heartbeat departing exactly at the slot start goes first so data
	// rides its tail. The buffer is reused across slots and the stable
	// sort is reflection-free, so a quiet slot allocates nothing.
	e.events = e.events[:0]
	for _, b := range slotBeats {
		e.events = append(e.events, txEvent{at: b.At, size: b.Size, kind: radio.TxHeartbeat, app: b.App})
	}
	for {
		p, injectedAt, ok := e.txQueue.Pop()
		if !ok {
			break
		}
		e.events = append(e.events, txEvent{at: injectedAt, size: p.Size, kind: radio.TxData, app: p.App, pkt: p})
	}
	slices.SortStableFunc(e.events, cmpTxEvent)
	dataFrom := len(e.res.Packets)
	for _, ev := range e.events {
		start, err := e.transmit(ev.at, ev.size, ev.kind, ev.app)
		if err != nil {
			return err
		}
		if ev.kind == radio.TxHeartbeat {
			e.res.HeartbeatCount++
		} else {
			e.recordData(ev.pkt, start, false)
		}
	}
	if e.OnSlot != nil {
		e.OnSlot(SlotResult{Slot: slotStart, Data: e.res.Packets[dataFrom:], Heartbeats: len(slotBeats)})
	}
	e.slotStart = slotEnd
	return nil
}

// Run executes the simulation in one call: the whole Config is precomputed,
// so the engine is constructed and finished immediately.
func Run(cfg Config) (*Result, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	return e.Finish()
}
