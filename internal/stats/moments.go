package stats

import (
	"encoding/json"
	"fmt"
	"math"
)

// Moments is a streaming, mergeable accumulator for count, mean, variance
// and extrema. Adding one sample applies Welford's update; merging two
// accumulators applies Chan et al.'s pairwise update, of which Welford's
// is the single-sample special case — Add is literally implemented as a
// merge with a one-sample accumulator, so folding a sequence with Add and
// folding the same sequence as singleton merges in index order are
// bit-identical by construction.
//
// Determinism contract (shared with the fleet engine, DESIGN.md §9):
// floating-point merge is not associative at the bit level, so mergeable
// aggregates are always combined in a fixed order — shard-index order —
// regardless of which worker produced which shard. Given that fixed order,
// the merged result is a pure function of the inputs.
//
// The zero Moments is an empty, ready-to-use accumulator.
type Moments struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Single returns the one-sample accumulator of v.
func Single(v float64) Moments {
	return Moments{n: 1, mean: v, min: v, max: v}
}

// Add folds one sample into the accumulator (Welford's update, expressed
// as a singleton merge so Add and Merge share one code path bit-for-bit).
func (m *Moments) Add(v float64) {
	m.Merge(Single(v))
}

// Merge folds other into m with the pairwise mean/M2 update of Chan,
// Golub & LeVeque. Merging an empty side is the identity; with
// other.N() == 1 the update reduces, operation for operation, to
// Welford's single-sample rule.
func (m *Moments) Merge(other Moments) {
	if other.n == 0 {
		return
	}
	if m.n == 0 {
		*m = other
		return
	}
	n := m.n + other.n
	d := other.mean - m.mean
	// Operation order matters for the Add ≡ Merge(Single) bit-identity:
	// d*float64(other.n) is exact when other.n == 1, so the mean update
	// becomes Welford's mean += d/n, and other.m2 == 0 keeps the M2
	// update at m2 += d*d*nA/n.
	m.mean += d * float64(other.n) / float64(n)
	m.m2 += other.m2 + d*d*float64(m.n)*float64(other.n)/float64(n)
	if other.min < m.min {
		m.min = other.min
	}
	if other.max > m.max {
		m.max = other.max
	}
	m.n = n
}

// N returns the sample count.
func (m Moments) N() int64 { return m.n }

// Mean returns the running mean (0 when empty).
func (m Moments) Mean() float64 { return m.mean }

// Min returns the smallest sample (0 when empty).
func (m Moments) Min() float64 { return m.min }

// Max returns the largest sample (0 when empty).
func (m Moments) Max() float64 { return m.max }

// Variance returns the sample (n−1) variance; 0 for fewer than 2 samples.
func (m Moments) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// StdDev returns the sample standard deviation.
func (m Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// momentsJSON is the checkpoint wire form. Float64 fields round-trip
// bit-exactly through encoding/json (shortest-representation encoding),
// which is what lets a resumed fleet run reproduce a byte-identical
// report.
type momentsJSON struct {
	N    int64   `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// MarshalJSON implements json.Marshaler.
func (m Moments) MarshalJSON() ([]byte, error) {
	return json.Marshal(momentsJSON{N: m.n, Mean: m.mean, M2: m.m2, Min: m.min, Max: m.max})
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *Moments) UnmarshalJSON(data []byte) error {
	var w momentsJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("stats: moments: %w", err)
	}
	if w.N < 0 {
		return fmt.Errorf("stats: moments: negative count %d", w.N)
	}
	*m = Moments{n: w.N, mean: w.Mean, m2: w.M2, min: w.Min, max: w.Max}
	return nil
}
