package randx

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws out of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child must be deterministic given the parent seed.
	parent2 := New(7)
	child2 := parent2.Split()
	for i := 0; i < 50; i++ {
		if child.Float64() != child2.Float64() {
			t.Fatalf("split streams diverged at draw %d", i)
		}
	}
}

func TestExpMean(t *testing.T) {
	s := New(3)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exp(5.0)
	}
	mean := sum / n
	if math.Abs(mean-5.0) > 0.1 {
		t.Fatalf("Exp mean = %.3f, want ~5.0", mean)
	}
}

func TestExpNonPositiveMean(t *testing.T) {
	s := New(3)
	if got := s.Exp(0); got != 0 {
		t.Fatalf("Exp(0) = %v, want 0", got)
	}
	if got := s.Exp(-1); got != 0 {
		t.Fatalf("Exp(-1) = %v, want 0", got)
	}
}

func TestTruncatedNormalRespectsMin(t *testing.T) {
	s := New(11)
	prop := func(seedDelta uint8) bool {
		src := New(int64(seedDelta))
		for i := 0; i < 200; i++ {
			if src.TruncatedNormal(5000, 2500, 1000) < 1000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
	_ = s
}

func TestTruncatedNormalSaturatesWhenMinFarAboveMean(t *testing.T) {
	s := New(5)
	v := s.TruncatedNormal(0, 0.001, 100)
	if v != 100 {
		t.Fatalf("TruncatedNormal saturation = %v, want 100", v)
	}
}

func TestTruncatedNormalMean(t *testing.T) {
	s := New(17)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.TruncatedNormal(5000, 1000, 1000)
	}
	mean := sum / n
	// Truncation at 4 sigma below the mean barely shifts it.
	if math.Abs(mean-5000) > 50 {
		t.Fatalf("truncated normal mean = %.1f, want ~5000", mean)
	}
}

func TestPoissonSmallMean(t *testing.T) {
	s := New(23)
	const n = 100000
	sum := 0
	for i := 0; i < n; i++ {
		sum += s.Poisson(2.5)
	}
	mean := float64(sum) / n
	if math.Abs(mean-2.5) > 0.05 {
		t.Fatalf("Poisson mean = %.3f, want ~2.5", mean)
	}
}

func TestPoissonLargeMean(t *testing.T) {
	s := New(29)
	const n = 20000
	sum := 0
	for i := 0; i < n; i++ {
		sum += s.Poisson(100)
	}
	mean := float64(sum) / n
	if math.Abs(mean-100) > 1 {
		t.Fatalf("Poisson(100) mean = %.2f, want ~100", mean)
	}
}

func TestPoissonZeroMean(t *testing.T) {
	s := New(31)
	if got := s.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
}

func TestPoissonProcessMonotone(t *testing.T) {
	p := NewPoissonProcess(New(37), 10*time.Second)
	prev := time.Duration(-1)
	for i := 0; i < 1000; i++ {
		next := p.Next()
		if next < prev {
			t.Fatalf("arrival %d at %v is before previous %v", i, next, prev)
		}
		prev = next
	}
}

func TestPoissonProcessRate(t *testing.T) {
	p := NewPoissonProcess(New(41), 10*time.Second)
	horizon := 100000 * time.Second
	arrivals := p.ArrivalsUntil(horizon)
	want := int(horizon / (10 * time.Second))
	got := len(arrivals)
	if math.Abs(float64(got-want)) > 0.05*float64(want) {
		t.Fatalf("got %d arrivals, want ~%d", got, want)
	}
	for _, a := range arrivals {
		if a >= horizon {
			t.Fatalf("arrival %v beyond horizon %v", a, horizon)
		}
	}
}

func TestPoissonProcessPeekDoesNotConsume(t *testing.T) {
	p := NewPoissonProcess(New(43), time.Second)
	a := p.Peek()
	b := p.Peek()
	if a != b {
		t.Fatalf("Peek consumed the arrival: %v then %v", a, b)
	}
	if got := p.Next(); got != a {
		t.Fatalf("Next = %v, want peeked %v", got, a)
	}
}

func TestPoissonProcessExhaustedHorizon(t *testing.T) {
	p := NewPoissonProcess(New(47), time.Hour)
	if got := p.ArrivalsUntil(0); got != nil {
		t.Fatalf("ArrivalsUntil(0) = %v, want nil", got)
	}
}
