package sim

// Metrics is the compact, fixed-size summary of one run that
// population-scale aggregation folds into streaming accumulators. Unlike
// Result it holds no per-packet state, so a fleet of a million devices
// carries O(1) memory per device instead of O(packets).
type Metrics struct {
	// EnergyJ is the run's total radio energy in joules.
	EnergyJ float64
	// AvgDelayS is the normalized (mean per-packet) delay in seconds.
	AvgDelayS float64
	// ViolationRatio is the fraction of data packets past their deadline.
	ViolationRatio float64
	// DataPackets counts transmitted cargo packets.
	DataPackets int
	// Heartbeats counts heartbeat transmissions.
	Heartbeats int
	// ForcedFlush counts packets drained unscheduled at the horizon.
	ForcedFlush int
}

// Metrics summarizes the run.
func (r *Result) Metrics() Metrics {
	return Metrics{
		EnergyJ:        r.Energy.Total(),
		AvgDelayS:      r.NormalizedDelay().Seconds(),
		ViolationRatio: r.DeadlineViolationRatio(),
		DataPackets:    len(r.Packets),
		Heartbeats:     r.HeartbeatCount,
		ForcedFlush:    r.ForcedFlushCount,
	}
}
