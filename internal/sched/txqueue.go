package sched

import (
	"time"

	"etrain/internal/workload"
)

// TxQueue is the paper's Q_TX: a FIFO transmission queue buffering packets
// that should be transmitted as soon as possible. Whenever the queue is
// non-empty and there is radio resource available, the head-of-line packet
// is transmitted (§IV).
type TxQueue struct {
	packets []workload.Packet
	// enqueuedAt records when each packet entered Q_TX (for queueing
	// statistics), parallel to packets.
	enqueuedAt []time.Duration
	// head indexes the current head-of-line entry. Pop advances it instead
	// of re-slicing so the backing arrays are reused once the queue drains
	// — the simulation engine drains Q_TX every slot, and sliding slices
	// would otherwise force a fresh growth allocation per slot.
	head int
}

// Inject appends the scheduler's selection Q*(t) to the transmission queue
// in order.
//
//etrain:hotpath
func (q *TxQueue) Inject(at time.Duration, selected []workload.Packet) {
	q.packets = append(q.packets, selected...)
	for range selected {
		q.enqueuedAt = append(q.enqueuedAt, at)
	}
}

// Len reports the queued packet count.
func (q *TxQueue) Len() int { return len(q.packets) - q.head }

// Pop removes and returns the head-of-line packet and its injection time.
//
//etrain:hotpath
func (q *TxQueue) Pop() (workload.Packet, time.Duration, bool) {
	if q.head == len(q.packets) {
		if q.head > 0 {
			// Drained: rewind onto the retained backing arrays.
			q.packets = q.packets[:0]
			q.enqueuedAt = q.enqueuedAt[:0]
			q.head = 0
		}
		return workload.Packet{}, 0, false
	}
	p := q.packets[q.head]
	at := q.enqueuedAt[q.head]
	// Release the reference so the drained entry does not pin its packet.
	q.packets[q.head] = workload.Packet{}
	q.head++
	return p, at, true
}

// Peek returns the head-of-line packet without removing it.
func (q *TxQueue) Peek() (workload.Packet, bool) {
	if q.head == len(q.packets) {
		return workload.Packet{}, false
	}
	return q.packets[q.head], true
}
