package scenario

import (
	"fmt"
	"sort"
	"time"

	"etrain/internal/bandwidth"
	"etrain/internal/diurnal"
	"etrain/internal/fleet"
	"etrain/internal/heartbeat"
	"etrain/internal/randx"
	"etrain/internal/workload"
)

// bwEventNamespace salts the seed of resynthesized bandwidth tails so
// they never alias the device's base channel stream.
var bwEventNamespace = randx.DeriveString("etrain/scenario/bandwidth")

// trainByName resolves a heartbeat app factory for app_install /
// app_uninstall events.
func trainByName(name string) (heartbeat.TrainApp, error) {
	switch name {
	case "qq":
		return heartbeat.QQ(), nil
	case "wechat":
		return heartbeat.WeChat(), nil
	case "whatsapp":
		return heartbeat.WhatsApp(), nil
	case "renren":
		return heartbeat.RenRen(), nil
	case "netease":
		return heartbeat.NetEase(), nil
	case "apns":
		return heartbeat.APNS(), nil
	default:
		return heartbeat.TrainApp{}, fmt.Errorf("unknown heartbeat app %q (want qq, wechat, whatsapp, renren, netease or apns)", name)
	}
}

// regimeByName resolves a named mobility regime for bandwidth_regime
// events.
func regimeByName(name string) (bandwidth.Regime, error) {
	for _, r := range bandwidth.DefaultRegimes() {
		if r.Name == name {
			return r, nil
		}
	}
	return bandwidth.Regime{}, fmt.Errorf("unknown bandwidth regime %q (want bus, walk or indoor)", name)
}

// trainSpec is one heartbeat app on a device's plan, with its scenario
// lifecycle.
type trainSpec struct {
	app heartbeat.TrainApp
	// uninstalledAt silences the app from that instant; < 0 means never.
	uninstalledAt time.Duration
}

// cycleChange scales every heartbeat interval that starts at or after
// its instant. Changes compose multiplicatively.
type cycleChange struct {
	at     time.Duration
	factor float64
}

// window is a half-open outage interval [from, to).
type window struct{ from, to time.Duration }

// bwChange is one channel transform, applied to the remaining samples
// in timeline order.
type bwChange struct {
	at     time.Duration
	factor float64          // scale, when regime is zero
	regime bandwidth.Regime // resynthesized tail, when Name != ""
	index  int              // timeline position, salts the tail seed
}

// devicePlan accumulates a device's timeline transforms; build turns
// it into the concrete beats, cargo and channel trace the run uses.
type devicePlan struct {
	dev     fleet.Device
	horizon time.Duration

	trains  []trainSpec
	cycles  []cycleChange
	reboots []window
	bw      []bwChange
	// sampler is the device's diurnal sampler; nil without a profile.
	sampler *diurnal.Sampler
}

// planDevice synthesizes device i and applies the matching timeline
// events to its plan. A matching diurnal_profile (last declared wins)
// shapes the synthesis itself, with matching scheduled_event entries
// layered onto it.
func planDevice(c *compiled, i int) (*devicePlan, error) {
	var prof *diurnal.Profile
	var schedEvents []diurnal.Event
	for _, ev := range c.events {
		if !ev.match(i) {
			continue
		}
		switch ev.Action {
		case ActionDiurnalProfile:
			prof = ev.prof
		case ActionScheduledEvent:
			schedEvents = append(schedEvents, ev.dEvent)
		}
	}
	if prof == nil && len(schedEvents) > 0 {
		return nil, fmt.Errorf("scheduled_event matches device %d, which has no diurnal_profile", i)
	}
	if prof != nil && len(schedEvents) > 0 {
		prof = prof.WithEvents(schedEvents...)
	}
	dev, err := fleet.SynthesizeDeviceOpts(c.sc.Seed, c.pop, i, c.sc.Horizon.D(), fleet.DeviceOptions{Diurnal: prof})
	if err != nil {
		return nil, err
	}
	p := &devicePlan{dev: dev, horizon: dev.Horizon}
	if prof != nil {
		p.sampler = prof.ForDevice(dev.Class.String(), dev.Seed)
	}
	for _, t := range dev.Trains {
		p.trains = append(p.trains, trainSpec{app: t, uninstalledAt: -1})
	}
	for _, ev := range c.events {
		if !ev.match(i) {
			continue
		}
		p.apply(ev)
	}
	return p, nil
}

// apply records one event on the plan. Transport-level actions
// (fault_burst, server_restart, overload_burst) are handled by the
// loopback rig, not here.
func (p *devicePlan) apply(ev compiledEvent) {
	at := ev.At.D()
	switch ev.Action {
	case ActionHeartbeatSchedule:
		p.cycles = append(p.cycles, cycleChange{at: at, factor: ev.Factor})
	case ActionAppInstall:
		app, err := trainByName(ev.App)
		if err != nil {
			return // unreachable: compile validated the name
		}
		app.FirstAt = at
		p.trains = append(p.trains, trainSpec{app: app, uninstalledAt: -1})
	case ActionAppUninstall:
		for i := range p.trains {
			if p.trains[i].app.Name == ev.App && p.trains[i].uninstalledAt < 0 {
				p.trains[i].uninstalledAt = at
			}
		}
	case ActionReboot:
		p.reboots = append(p.reboots, window{from: at, to: at + ev.Duration.D()})
	case ActionBandwidthRegime:
		ch := bwChange{at: at, factor: ev.Factor, index: ev.index}
		if ev.Regime != "" {
			ch.regime, _ = regimeByName(ev.Regime)
		}
		p.bw = append(p.bw, ch)
	}
}

// plannedDevice is the concrete, post-timeline device: what the
// baseline and eTrain runs both consume.
type plannedDevice struct {
	dev     fleet.Device
	beats   []heartbeat.Beat
	packets []workload.Packet
	trace   *bandwidth.Trace
}

// build materializes the plan.
func (p *devicePlan) build() (*plannedDevice, error) {
	out := &plannedDevice{dev: p.dev}
	for _, spec := range p.trains {
		out.beats = append(out.beats, p.schedule(spec)...)
	}
	if len(p.reboots) > 0 {
		out.beats = dropInWindows(out.beats, p.reboots)
	}
	sort.SliceStable(out.beats, func(i, j int) bool { return out.beats[i].At < out.beats[j].At })

	out.packets = append([]workload.Packet(nil), p.dev.Packets...)
	for _, w := range p.reboots {
		for i := range out.packets {
			if out.packets[i].ArrivedAt >= w.from && out.packets[i].ArrivedAt < w.to {
				out.packets[i].ArrivedAt = w.to
			}
		}
	}
	if len(p.reboots) > 0 {
		sort.SliceStable(out.packets, func(i, j int) bool { return out.packets[i].ArrivedAt < out.packets[j].ArrivedAt })
		for i := range out.packets {
			out.packets[i].ID = i
		}
		// A reboot at the horizon's edge can push arrivals past it; the
		// engine would reject them, so they are lost with the outage.
		for len(out.packets) > 0 && out.packets[len(out.packets)-1].ArrivedAt >= p.horizon {
			out.packets = out.packets[:len(out.packets)-1]
		}
	}

	trace, err := bandwidth.FromSeed(p.dev.BandwidthSeed, p.horizon, nil)
	if err != nil {
		return nil, err
	}
	if len(p.bw) > 0 {
		if trace, err = p.transformTrace(trace); err != nil {
			return nil, err
		}
	}
	out.trace = trace
	return out, nil
}

// schedule walks one train's policy, applying the diurnal beat factor
// and then the composed cycle factors to every interval that starts at
// or after each change, and honoring the app's uninstall instant.
func (p *devicePlan) schedule(spec trainSpec) []heartbeat.Beat {
	var beats []heartbeat.Beat
	at := spec.app.FirstAt
	for i := 0; at < p.horizon; i++ {
		if spec.uninstalledAt >= 0 && at >= spec.uninstalledAt {
			break
		}
		beats = append(beats, heartbeat.Beat{At: at, App: spec.app.Name, Size: spec.app.PacketSize})
		step := spec.app.Policy.IntervalAfter(i)
		if step <= 0 {
			break
		}
		if p.sampler != nil {
			step = p.sampler.ScaleBeat(at, step)
		}
		for _, ch := range p.cycles {
			if at >= ch.at {
				step = time.Duration(float64(step) * ch.factor)
			}
		}
		if step <= 0 {
			break
		}
		at += step
	}
	return beats
}

// dropInWindows removes beats inside any outage window.
func dropInWindows(beats []heartbeat.Beat, windows []window) []heartbeat.Beat {
	kept := beats[:0]
	for _, b := range beats {
		lost := false
		for _, w := range windows {
			if b.At >= w.from && b.At < w.to {
				lost = true
				break
			}
		}
		if !lost {
			kept = append(kept, b)
		}
	}
	return kept
}

// transformTrace applies the bandwidth changes in timeline order: each
// change rewrites the samples from its instant on, either scaled by
// factor or resynthesized under the named regime from a seed derived
// from (device seed, event index).
func (p *devicePlan) transformTrace(trace *bandwidth.Trace) (*bandwidth.Trace, error) {
	samples := trace.Samples()
	for _, ch := range p.bw {
		from := int(ch.at / time.Second)
		if from >= len(samples) {
			continue
		}
		if ch.regime.Name == "" {
			for i := from; i < len(samples); i++ {
				samples[i] *= ch.factor
				if samples[i] < 1e3 {
					samples[i] = 1e3 // match the synthesizer's deep-fade floor
				}
			}
			continue
		}
		tailLen := time.Duration(len(samples)-from) * time.Second
		seed := randx.Derive(p.dev.Seed, bwEventNamespace, uint64(ch.index))
		// The synthesizer needs ≥ 2 regimes to draw a switch target;
		// duplicating the single regime pins the process to it.
		tail, err := bandwidth.Synthesize(randx.New(seed), tailLen, []bandwidth.Regime{ch.regime, ch.regime})
		if err != nil {
			return nil, err
		}
		copy(samples[from:], tail.Samples())
	}
	return bandwidth.NewTrace(samples)
}
