package analysis

import (
	"go/ast"
	"go/types"
)

// wallClockFuncs are the package-time functions that read or advance the
// real clock. Pure constructors and arithmetic on time.Duration /
// time.Time values are fine: the simulator's entire contract is that sim
// code expresses instants as time.Duration offsets from the run start.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTicker": true,
	"NewTimer":  true,
}

// realTimeBoundary lists the packages allowed to touch the wall clock: the
// virtual-time foundation itself and the capture/powermon layer that meets
// real hardware and real packet timestamps.
var realTimeBoundary = []string{
	"etrain/internal/simtime",
	"etrain/internal/powermon",
	"etrain/internal/capture",
}

// NoTime forbids wall-clock reads (time.Now, time.Since, time.Sleep, ...)
// outside the sanctioned real-time boundary. The paper's results are
// replayed deterministic traces; one time.Now in a sim path silently breaks
// bit-identical reruns.
var NoTime = &Analyzer{
	Name: "notime",
	Doc: "forbid time.Now/Since/Sleep and friends outside internal/simtime " +
		"and the capture/powermon real-time boundary; sim code takes " +
		"time.Duration clocks",
	Exempt: func(pkgPath string) bool {
		return pathIsAny(pkgPath, realTimeBoundary...)
	},
	Run: runNoTime,
}

func runNoTime(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != "time" {
				return true
			}
			if wallClockFuncs[sel.Sel.Name] {
				pass.Reportf(sel.Pos(),
					"time.%s reads the wall clock outside the real-time boundary; sim code must take instants as time.Duration offsets (or an injected clock)",
					sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
