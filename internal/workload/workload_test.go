package workload

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"etrain/internal/profile"
	"etrain/internal/randx"
)

func TestDefaultSpecsRatioAndRate(t *testing.T) {
	specs := DefaultSpecs()
	if len(specs) != 3 {
		t.Fatalf("got %d specs, want 3", len(specs))
	}
	total := 0.0
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", s.Name, err)
		}
		total += s.Rate()
	}
	if math.Abs(total-0.08) > 1e-9 {
		t.Fatalf("total rate = %v, want 0.08", total)
	}
	// Paper ratio 5:2:10 for mail:weibo:cloud.
	if specs[0].MeanInterArrival != 50*time.Second ||
		specs[1].MeanInterArrival != 20*time.Second ||
		specs[2].MeanInterArrival != 100*time.Second {
		t.Fatalf("inter-arrival times %v/%v/%v violate 5:2:10",
			specs[0].MeanInterArrival, specs[1].MeanInterArrival, specs[2].MeanInterArrival)
	}
}

func TestSpecsForLambda(t *testing.T) {
	for _, lambda := range []float64{0.04, 0.06, 0.08, 0.10, 0.12} {
		specs, err := SpecsForLambda(lambda)
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for _, s := range specs {
			total += s.Rate()
		}
		if math.Abs(total-lambda) > 1e-9 {
			t.Fatalf("lambda %v: total rate %v", lambda, total)
		}
		// Ratio preserved.
		if math.Abs(specs[2].Rate()/specs[0].Rate()-0.5) > 1e-9 {
			t.Fatalf("lambda %v: cloud/mail rate ratio broken", lambda)
		}
	}
}

func TestSpecsForLambdaRejectsNonPositive(t *testing.T) {
	if _, err := SpecsForLambda(0); err == nil {
		t.Fatal("lambda 0 accepted")
	}
}

func TestGenerateSortedWithIDs(t *testing.T) {
	packets, err := Generate(randx.New(1), DefaultSpecs(), 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(packets) == 0 {
		t.Fatal("no packets generated")
	}
	for i, p := range packets {
		if p.ID != i {
			t.Fatalf("packet %d has ID %d", i, p.ID)
		}
		if i > 0 && p.ArrivedAt < packets[i-1].ArrivedAt {
			t.Fatalf("packets out of order at %d", i)
		}
		if p.ArrivedAt >= 2*time.Hour {
			t.Fatalf("packet beyond horizon: %v", p.ArrivedAt)
		}
		if p.Profile == nil {
			t.Fatalf("packet %d has no profile", i)
		}
	}
}

func TestGenerateRateMatchesLambda(t *testing.T) {
	horizon := 20 * time.Hour
	packets, err := Generate(randx.New(2), DefaultSpecs(), horizon)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.08 * horizon.Seconds()
	got := float64(len(packets))
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("generated %v packets, want ~%v", got, want)
	}
}

func TestGenerateSizesRespectMinimum(t *testing.T) {
	packets, err := Generate(randx.New(3), DefaultSpecs(), 5*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	mins := map[string]int64{"mail": 1024, "weibo": 100, "cloud": 10 * 1024}
	for _, p := range packets {
		if p.Size < mins[p.App] {
			t.Fatalf("%s packet of %d bytes below minimum %d", p.App, p.Size, mins[p.App])
		}
	}
}

func TestGenerateMeanSizes(t *testing.T) {
	packets, err := Generate(randx.New(4), []CargoSpec{MailSpec()}, 100*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range packets {
		sum += float64(p.Size)
	}
	mean := sum / float64(len(packets))
	// Truncation at 1.65σ below the mean shifts the expectation up by
	// σ·φ(α)/(1−Φ(α)) ≈ 280 bytes; accept [5120, 5700].
	if mean < 5*1024 || mean > 5700 {
		t.Fatalf("mail mean size = %.0f, want within [5120, 5700]", mean)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(randx.New(7), DefaultSpecs(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(randx.New(7), DefaultSpecs(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ArrivedAt != b[i].ArrivedAt || a[i].Size != b[i].Size || a[i].App != b[i].App {
			t.Fatalf("packet %d differs between identical seeds", i)
		}
	}
}

func TestGenerateRejectsInvalidSpec(t *testing.T) {
	bad := CargoSpec{Name: "bad"}
	if _, err := Generate(randx.New(1), []CargoSpec{bad}, time.Hour); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestPacketCostAndDeadline(t *testing.T) {
	p := Packet{ArrivedAt: 10 * time.Second, Profile: profile.Weibo(30 * time.Second)}
	if got := p.Cost(25 * time.Second); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("Cost = %v, want 0.5 at half deadline", got)
	}
	if p.DeadlineViolated(40 * time.Second) {
		t.Fatal("deadline flagged at exactly deadline")
	}
	if !p.DeadlineViolated(41 * time.Second) {
		t.Fatal("deadline not flagged past deadline")
	}
}

func TestWithDeadline(t *testing.T) {
	for _, base := range DefaultSpecs() {
		mod := base.WithDeadline(77 * time.Second)
		if mod.Profile.Deadline() != 77*time.Second {
			t.Fatalf("%s WithDeadline = %v", base.Name, mod.Profile.Deadline())
		}
		if mod.Name != base.Name || mod.MeanInterArrival != base.MeanInterArrival {
			t.Fatalf("%s WithDeadline changed unrelated fields", base.Name)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []CargoSpec{
		{},
		{Name: "x"},
		{Name: "x", Profile: profile.Mail(time.Minute)},
		{Name: "x", Profile: profile.Mail(time.Minute), MeanInterArrival: time.Second, SizeMean: 10, SizeMin: 100},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d validated", i)
		}
	}
}

func TestRateZeroForNoInterArrival(t *testing.T) {
	if got := (CargoSpec{}).Rate(); got != 0 {
		t.Fatalf("Rate = %v, want 0", got)
	}
}

// Property: generated packet arrival times are always within horizon and
// sizes at least the minimum, across seeds.
func TestGenerateProperty(t *testing.T) {
	prop := func(seed int64) bool {
		packets, err := Generate(randx.New(seed), []CargoSpec{WeiboSpec()}, 30*time.Minute)
		if err != nil {
			return false
		}
		for _, p := range packets {
			if p.ArrivedAt < 0 || p.ArrivedAt >= 30*time.Minute || p.Size < 100 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
