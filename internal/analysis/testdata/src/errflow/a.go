// Package errflow exercises the dropped-transport-error analyzer: errors
// from Write-family methods on wire.Writer, net.Conn and io.Writer values
// must be checked, returned, or latched.
package errflow

import (
	"net"

	"etrain/internal/wire"
)

// sink implements io.Writer structurally.
type sink struct{}

// Write implements io.Writer.
func (sink) Write(p []byte) (int, error) { return len(p), nil }

func dropsFrameWrite(w *wire.Writer, m wire.Message) {
	w.Write(m) // want `error from .*Writer\.Write is dropped`
}

func blanksFrameWrite(w *wire.Writer, m wire.Message) {
	_ = w.Write(m) // want `error from .*Writer\.Write is dropped`
}

func dropsConnWrite(c net.Conn, b []byte) {
	c.Write(b) // want `error from net\.Conn\.Write is dropped`
}

func blanksConnWrite(c net.Conn, b []byte) {
	_, _ = c.Write(b) // want `error from net\.Conn\.Write is dropped`
}

func spawnsWrite(c net.Conn, b []byte) {
	go c.Write(b) // want `error from net\.Conn\.Write is dropped`
}

func defersWrite(c net.Conn, b []byte) {
	defer c.Write(b) // want `error from net\.Conn\.Write is dropped`
}

func dropsIOWrite(s sink, b []byte) {
	s.Write(b) // want `error from sink\.Write is dropped`
}

// returned errors are consumed.
func returnsErr(w *wire.Writer, m wire.Message) error {
	return w.Write(m)
}

// checked errors are consumed.
func checksErr(c net.Conn, b []byte) bool {
	_, err := c.Write(b)
	return err == nil
}

// latching into session state is the sanctioned journaling pattern.
func latches(w *wire.Writer, m wire.Message) error {
	var broken error
	if err := w.Write(m); err != nil {
		broken = err
	}
	return broken
}

// a justified drop survives with its reason on record.
func justified(w *wire.Writer, m wire.Message) {
	//lint:ignore errflow best-effort trailer on an already-broken conn
	w.Write(m)
}

// Close and deadline errors are out of the analyzer's scope.
func closes(c net.Conn) {
	defer c.Close()
}
