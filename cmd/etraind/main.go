// Command etraind is the network-facing eTrain scheduling daemon: it
// listens for device connections and hosts one wire-protocol session per
// connection (DESIGN.md §10).
//
// Usage:
//
//	go run ./cmd/etraind -addr :4810
//	go run ./cmd/etrain-load -addr 127.0.0.1:4810 -devices 1000
//
// A session that loses its connection mid-protocol parks for
// -resume-grace and a reconnecting client adopts it with a Resume
// handshake, replaying only the unacknowledged tail (DESIGN.md §11).
//
// Ctrl-C / SIGTERM starts a graceful drain: new connections are refused,
// parked sessions are discarded, running sessions finish — the
// -drain-timeout deadline is armed on every open connection, so wedged
// peers cannot stall the drain — and after -drain-timeout whatever
// remains is force-closed. The final counters go to stderr.
//
// This command is a wall-clock boundary of the service subsystem: the
// clock injected here arms connection deadlines, while internal/server
// itself never reads time — a session's decisions remain a pure function
// of its inbound frames.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"etrain/internal/server"
)

func main() {
	addr := flag.String("addr", ":4810", "listen address")
	maxConns := flag.Int("max-conns", 0, "concurrent connection cap (0: default 4096)")
	queueDepth := flag.Int("queue-depth", 0, "per-session event queue bound (0: default 64)")
	idle := flag.Duration("idle-timeout", 2*time.Minute, "max wait for a client's next frame (0: none)")
	writeTimeout := flag.Duration("write-timeout", 30*time.Second, "max duration of one frame write (0: none)")
	drain := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget before force-closing sessions")
	resumeGrace := flag.Duration("resume-grace", server.DefaultResumeGrace, "how long a disconnected session stays resumable (negative: disable resume)")
	retainLimit := flag.Int("retain-limit", 0, "max parked sessions awaiting resume (0: default 1024)")
	flag.Parse()

	logger := log.New(os.Stderr, "etraind: ", log.LstdFlags)
	srv := server.New(server.Config{
		MaxConns:       *maxConns,
		QueueDepth:     *queueDepth,
		IdleTimeout:    *idle,
		WriteTimeout:   *writeTimeout,
		ResumeGrace:    *resumeGrace,
		RetainSessions: *retainLimit,
		DrainTimeout:   *drain,
		//lint:ignore notime daemon boundary: the injected clock arms connection deadlines; internal/server never reads time itself
		Clock: time.Now,
		Logf:  logger.Printf,
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	logger.Printf("listening on %s", l.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	select {
	case err := <-serveErr:
		logger.Fatal(err)
	case sig := <-sigc:
		logger.Printf("%s: draining (budget %s)", sig, *drain)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Printf("drain incomplete: %v", err)
	}
	if err := <-serveErr; err != nil && err != server.ErrServerClosed {
		logger.Printf("serve: %v", err)
	}
	s := srv.Stats()
	fmt.Fprintf(os.Stderr,
		"etraind: accepted %d rejected %d completed %d errored %d panics %d parked %d resumed %d misses %d discarded %d frames in/out %d/%d decisions %d\n",
		s.Accepted, s.Rejected, s.Completed, s.Errored, s.Panics,
		s.Parked, s.Resumed, s.ResumeMisses, s.Discarded,
		s.FramesIn, s.FramesOut, s.Decisions)
}
