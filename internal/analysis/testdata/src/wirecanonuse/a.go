// Package wirecanonuse builds wire frames from outside the wire package:
// the keyed-literal rule follows the message types module-wide.
package wirecanonuse

import "etrain/internal/wire"

// NewHello names every field.
func NewHello(id uint64) wire.Hello {
	return wire.Hello{DeviceID: id, Seq: 1}
}

// NewHelloPositional forgets the field names.
func NewHelloPositional(id uint64) wire.Hello {
	return wire.Hello{id, 1} // want `unkeyed Hello literal`
}

// justifiedPositional documents why the layout is mirrored on purpose.
func justifiedPositional(id uint64) wire.Hello {
	//lint:ignore wirecanon golden-frame test vector mirrors the layout
	return wire.Hello{id, 1}
}
