package experiments

import (
	"fmt"
	"time"

	"etrain/internal/battery"
	"etrain/internal/capture"
	"etrain/internal/heartbeat"
	"etrain/internal/radio"
	"etrain/internal/randx"
)

// standbyBasePower is the non-radio standby drain of the test phone
// (screen off, background tasks killed): the paper's Fig. 1a implies
// ≈300 J over 4 h beside the 2000 J of heartbeat radio energy, i.e.
// ≈20 mW; see DESIGN.md.
const standbyBasePower = 0.020

// Fig1a reproduces the standby-energy measurement: total energy of a
// 4-hour screen-off period with 0–3 IM apps running on 3G, and the share
// spent on heartbeats. The paper reports ≈2000 J (≈87%) with all three
// apps.
func Fig1a(opts Options) (*Table, error) {
	horizon := opts.horizonOr(4 * time.Hour)
	model := radio.GalaxyS43G()
	trio := heartbeat.DefaultTrio()
	cell := battery.GalaxyS4()
	tbl := &Table{
		ID:    "fig1a",
		Title: "Standby energy over 4h vs number of active IM apps (3G)",
		Columns: []string{"apps", "heartbeats", "radio_J", "base_J", "total_J",
			"heartbeat_share", "battery_per_10h"},
	}
	for n := 0; n <= len(trio); n++ {
		apps := trio[:n]
		var tl radio.Timeline
		for _, b := range heartbeat.Merge(apps, horizon) {
			// Heartbeats are tiny; their serialization never overlaps at
			// these cycles, so a nominal 100 ms transmission is used.
			if err := tl.Append(radio.Transmission{
				Start: b.At, TxTime: 100 * time.Millisecond, Size: b.Size,
				Kind: radio.TxHeartbeat, App: b.App,
			}); err != nil {
				return nil, err
			}
		}
		radioJ := tl.AccountEnergy(model, horizon).Total()
		baseJ := standbyBasePower * horizon.Seconds()
		totalJ := radioJ + baseJ
		share := 0.0
		if totalJ > 0 {
			share = radioJ / totalJ
		}
		label := "none"
		if n > 0 {
			label = fmt.Sprintf("%d", n)
		}
		drain := cell.StandbyLoss(radioJ, horizon, 10*time.Hour)
		tbl.AddRow(label, tl.Len(), radioJ, baseJ, totalJ,
			fmt.Sprintf("%.0f%%", share*100), fmt.Sprintf("%.1f%%", drain*100))
	}
	tbl.AddNote("paper: ~2000 J and ~87%% heartbeat share with 3 apps over 4 h in 3G; §II-D: one app's heartbeats burn ~6%% of a 1700 mAh battery per 10 h standby")
	return tbl, nil
}

// Fig1b reproduces the heartbeat size/timing plot: the merged heartbeat
// stream of the three IM apps over one hour, showing roughly one beat per
// minute.
func Fig1b(opts Options) (*Table, error) {
	horizon := opts.horizonOr(time.Hour)
	beats := heartbeat.Merge(heartbeat.DefaultTrio(), horizon)
	tbl := &Table{
		ID:      "fig1b",
		Title:   "Heartbeat timing and size of 3 IM apps running simultaneously",
		Columns: []string{"time_s", "app", "size_B"},
	}
	for _, b := range beats {
		tbl.AddRow(fmt.Sprintf("%.0f", b.At.Seconds()), b.App, b.Size)
	}
	if len(beats) > 1 {
		mean := (beats[len(beats)-1].At - beats[0].At) / time.Duration(len(beats)-1)
		tbl.AddNote("mean inter-heartbeat gap %.0f s (paper: about once a minute)", mean.Seconds())
	}
	return tbl, nil
}

// Table1 reproduces the heartbeat-cycle table: run the cycle detector over
// each app's generated traffic, per platform.
func Table1(opts Options) (*Table, error) {
	horizon := opts.horizonOr(4 * time.Hour)
	tbl := &Table{
		ID:      "table1",
		Title:   "Heartbeat cycles of mobile applications",
		Columns: []string{"platform", "app", "detected_cycle", "stable"},
	}
	androidApps := []heartbeat.TrainApp{
		heartbeat.WeChat(), heartbeat.WhatsApp(), heartbeat.QQ(),
		heartbeat.RenRen(), heartbeat.NetEase(),
	}
	for _, app := range androidApps {
		det := heartbeat.NewDetector(2 * time.Second)
		for _, b := range app.Schedule(horizon) {
			det.Observe(b.App, b.At)
		}
		if det.Stable(app.Name) {
			cycle, _ := det.Cycle(app.Name)
			tbl.AddRow("android", app.Name, fmt.Sprintf("%.0fs", cycle.Seconds()), true)
			continue
		}
		min, max, ok := det.CycleRange(app.Name)
		if !ok {
			return nil, fmt.Errorf("experiments: no cycle range for %s", app.Name)
		}
		tbl.AddRow("android", app.Name,
			fmt.Sprintf("%.0f-%.0fs", min.Seconds(), max.Seconds()), false)
	}
	// iOS: every app funnels through APNS with one shared 1800 s cycle.
	apns := heartbeat.APNS()
	det := heartbeat.NewDetector(2 * time.Second)
	for _, b := range apns.Schedule(horizon) {
		det.Observe("all apps (APNS)", b.At)
	}
	cycle, ok := det.Cycle("all apps (APNS)")
	if !ok {
		return nil, fmt.Errorf("experiments: APNS cycle not detected")
	}
	tbl.AddRow("ios", "all apps (APNS)", fmt.Sprintf("%.0fs", cycle.Seconds()), true)

	// Blind cross-check, the way the paper actually worked: strip all app
	// labels (a raw Wireshark capture of timestamps and sizes, with data
	// traffic interleaved) and recover the same cycles by classification.
	blind := blindCapture(opts.Seed, androidApps, horizon)
	recovered := capture.Heartbeats(capture.Classify(blind, capture.Options{}))
	for _, f := range recovered {
		switch f.Kind {
		case capture.FlowHeartbeat:
			tbl.AddRow("android(blind)", fmt.Sprintf("%dB flow", f.Size),
				fmt.Sprintf("%.0fs", f.Cycle.Seconds()), true)
		case capture.FlowAdaptiveHeartbeat:
			tbl.AddRow("android(blind)", fmt.Sprintf("%dB flow", f.Size),
				fmt.Sprintf("%.0f-%.0fs", f.CycleMin.Seconds(), f.CycleMax.Seconds()), false)
		}
	}
	tbl.AddNote("blind rows: cycles recovered from an unlabeled capture (sizes + timestamps only) with random data traffic interleaved, as in §II-B's Wireshark analysis")
	tbl.AddNote("paper Table 1: WeChat 270s, WhatsApp 240s, QQ 300s, RenRen 300s, NetEase 60-480s, iOS 1800s")
	return tbl, nil
}

// blindCapture mixes the apps' heartbeats with random data transmissions
// and strips the labels.
func blindCapture(seed int64, apps []heartbeat.TrainApp, horizon time.Duration) []capture.Packet {
	var packets []capture.Packet
	for _, b := range heartbeat.Merge(apps, horizon) {
		packets = append(packets, capture.Packet{At: b.At, Size: b.Size})
	}
	src := randx.New(seed + 41)
	for at := time.Duration(0); at < horizon; at += time.Duration(30+src.Intn(90)) * time.Second {
		packets = append(packets, capture.Packet{
			At: at, Size: int64(1000 + src.Intn(100000)),
		})
	}
	return packets
}

// Fig3 reproduces the per-app heartbeat-cycle plots, focusing on the two
// non-trivial ones: NetEase's doubling schedule and RenRen's constant
// cycle.
func Fig3(opts Options) (*Table, error) {
	horizon := opts.horizonOr(2 * time.Hour)
	tbl := &Table{
		ID:      "fig3",
		Title:   "Heartbeat cycles: NetEase doubling schedule vs RenRen constant",
		Columns: []string{"app", "beat", "time_s", "gap_s"},
	}
	for _, app := range []heartbeat.TrainApp{heartbeat.NetEase(), heartbeat.RenRen()} {
		beats := app.Schedule(horizon)
		for i, b := range beats {
			gap := "-"
			if i > 0 {
				gap = fmt.Sprintf("%.0f", (b.At - beats[i-1].At).Seconds())
			}
			tbl.AddRow(app.Name, i, fmt.Sprintf("%.0f", b.At.Seconds()), gap)
		}
	}
	tbl.AddNote("paper Fig. 3d: NetEase starts at 60s and doubles after every 6 beats up to 480s; RenRen constant 300s")
	return tbl, nil
}

// Fig4 reproduces the power-state plot of a single transmission: the
// instantaneous power level through IDLE → DCH(tx) → DCH tail → FACH →
// IDLE.
func Fig4(opts Options) (*Table, error) {
	model := radio.GalaxyS43G()
	var tl radio.Timeline
	if err := tl.Append(radio.Transmission{
		Start: 5 * time.Second, TxTime: 2 * time.Second, Size: 10 * 1024,
		Kind: radio.TxData, App: "probe",
	}); err != nil {
		return nil, err
	}
	tbl := &Table{
		ID:      "fig4",
		Title:   "Instantaneous power level at different power states (one transmission)",
		Columns: []string{"time_s", "state", "power_mW"},
	}
	horizon := opts.horizonOr(30 * time.Second)
	prevState := radio.State(0)
	for _, s := range tl.PowerTrace(model, horizon, 500*time.Millisecond) {
		if s.State != prevState {
			tbl.AddRow(fmt.Sprintf("%.1f", s.At.Seconds()), s.State.String(),
				fmt.Sprintf("%.0f", radio.ToMilliwatts(s.Watts)))
			prevState = s.State
		}
	}
	tbl.AddNote("paper Fig. 4: DCH %.0f mW for δD=%.1fs, FACH %.0f mW for δF=%.1fs, then IDLE",
		radio.ToMilliwatts(model.PD), model.DeltaD.Seconds(),
		radio.ToMilliwatts(model.PF), model.DeltaF.Seconds())
	return tbl, nil
}
