package sched

import (
	"testing"
	"time"

	"etrain/internal/workload"
)

func TestTxQueueFIFO(t *testing.T) {
	var q TxQueue
	if q.Len() != 0 {
		t.Fatal("fresh queue not empty")
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("popped from empty queue")
	}
	if _, ok := q.Peek(); ok {
		t.Fatal("peeked empty queue")
	}

	q.Inject(10*time.Second, []workload.Packet{pkt(1, "a", 0), pkt(2, "b", 0)})
	q.Inject(20*time.Second, []workload.Packet{pkt(3, "a", 0)})
	if q.Len() != 3 {
		t.Fatalf("Len = %d, want 3", q.Len())
	}

	head, ok := q.Peek()
	if !ok || head.ID != 1 {
		t.Fatalf("Peek = %v", head.ID)
	}

	wantOrder := []struct {
		id int
		at time.Duration
	}{
		{1, 10 * time.Second}, {2, 10 * time.Second}, {3, 20 * time.Second},
	}
	for i, want := range wantOrder {
		p, at, ok := q.Pop()
		if !ok {
			t.Fatalf("pop %d failed", i)
		}
		if p.ID != want.id || at != want.at {
			t.Fatalf("pop %d = (%d, %v), want (%d, %v)", i, p.ID, at, want.id, want.at)
		}
	}
	if q.Len() != 0 {
		t.Fatal("queue not drained")
	}
}

func TestTxQueueInjectEmptySelection(t *testing.T) {
	var q TxQueue
	q.Inject(time.Second, nil)
	if q.Len() != 0 {
		t.Fatal("empty injection changed the queue")
	}
}
