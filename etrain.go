// Package etrain is a reproduction of "eTrain: Making Wasted Energy Useful
// by Utilizing Heartbeats for Mobile Data Transmissions" (Zhang et al.,
// ICDCS 2015).
//
// IM apps keep an always-on connection alive with periodic heartbeats; on
// 3G every heartbeat drags the radio through a ~17.5-second high-power tail
// that dominates standby energy. eTrain treats heartbeats as trains and
// delay-tolerant app data (mail, SNS posts, cloud sync) as cargo: it defers
// and aggregates cargo so it rides the tails heartbeats pay for anyway,
// scheduled online by a Lyapunov drift-minimizing greedy algorithm
// parameterized by a cost bound Θ and a batch limit k.
//
// The package offers two entry points:
//
//   - Simulate runs the paper's trace-driven simulation (§VI-A..C): a
//     heartbeat schedule, Poisson cargo arrivals, a bandwidth trace and a
//     scheduling strategy, returning energy/delay metrics.
//   - NewSystem builds the live system of §V on a simulated Android stack:
//     train apps send real (virtual-time) heartbeats through an
//     AlarmManager, a hook notifies eTrain's monitor, cargo apps submit
//     requests over the broadcast bus and transmit when instructed.
//
// Every run is deterministic given its seed.
package etrain

import (
	"fmt"
	"time"

	"etrain/internal/android"
	"etrain/internal/bandwidth"
	"etrain/internal/baseline"
	"etrain/internal/core"
	"etrain/internal/heartbeat"
	"etrain/internal/profile"
	"etrain/internal/radio"
	"etrain/internal/randx"
	"etrain/internal/sched"
	"etrain/internal/sim"
	"etrain/internal/workload"
)

// Re-exported domain types. The aliases keep the public API small while the
// implementation lives in focused internal packages.
type (
	// Profile maps a packet's delay to its cost (paper Fig. 6).
	Profile = profile.Profile
	// TrainApp models one heartbeat-sending application.
	TrainApp = heartbeat.TrainApp
	// Beat is one heartbeat instance of a merged train schedule.
	Beat = heartbeat.Beat
	// PowerModel holds the radio's power-state parameters.
	PowerModel = radio.PowerModel
	// Energy is a radio energy breakdown in joules.
	Energy = radio.Energy
	// Packet is one application-layer data unit.
	Packet = workload.Packet
	// CargoSpec describes a cargo app's packet population.
	CargoSpec = workload.CargoSpec
	// BandwidthTrace is a 1 Hz uplink bandwidth trace.
	BandwidthTrace = bandwidth.Trace
	// DeliveredPacket records one cargo transmission as seen by its app.
	DeliveredPacket = android.DeliveredPacket
)

// KInfinite requests an unbounded heartbeat batch (the paper's k ← ∞).
const KInfinite = core.KInfinite

// Profile constructors (paper Fig. 6).
var (
	// MailProfile is f1: free until the deadline, then linear.
	MailProfile = profile.Mail
	// WeiboProfile is f2: linear until the deadline, then a plateau of 2.
	WeiboProfile = profile.Weibo
	// CloudProfile is f3: linear until the deadline, then 3x steeper.
	CloudProfile = profile.Cloud
)

// Train app models measured in the paper (Table 1).
var (
	// QQ sends 378 B heartbeats every 300 s.
	QQ = heartbeat.QQ
	// WeChat sends 74 B heartbeats every 270 s.
	WeChat = heartbeat.WeChat
	// WhatsApp sends 66 B heartbeats every 240 s.
	WhatsApp = heartbeat.WhatsApp
	// RenRen sends heartbeats every 300 s.
	RenRen = heartbeat.RenRen
	// NetEase starts at 60 s and doubles after every 6 beats up to 480 s.
	NetEase = heartbeat.NetEase
	// APNS is iOS's shared 1800 s push-notification heartbeat.
	APNS = heartbeat.APNS
	// DefaultTrains is the QQ/WeChat/WhatsApp trio of the paper's
	// simulations.
	DefaultTrains = heartbeat.DefaultTrio
)

// GalaxyS43G returns the paper's measured Samsung Galaxy S4 radio
// parameters in a TD-SCDMA network.
var GalaxyS43G = radio.GalaxyS43G

// DefaultCargo returns the paper's three cargo apps (mail/weibo/cloud) at
// total arrival rate λ = 0.08 packets/second.
var DefaultCargo = workload.DefaultSpecs

// CargoForLambda scales the default cargo specs to a total arrival rate of
// lambda, preserving the paper's 5:2:10 inter-arrival ratio.
var CargoForLambda = workload.SpecsForLambda

// StrategyKind selects a scheduling strategy.
type StrategyKind int

// Available strategies.
const (
	// StrategyETrain is the paper's contribution (Algorithm 1).
	StrategyETrain StrategyKind = iota + 1
	// StrategyBaseline transmits every packet on arrival.
	StrategyBaseline
	// StrategyPerES is the deadline-aware channel-dependent comparator.
	StrategyPerES
	// StrategyETime is the 60 s-slotted channel-dependent comparator.
	StrategyETime
	// StrategyETrainPredictive is eTrain driven by cycle prediction
	// instead of live hook notifications after a warmup (the §V-2
	// ablation).
	StrategyETrainPredictive
)

// String returns the strategy name.
func (k StrategyKind) String() string {
	switch k {
	case StrategyETrain:
		return "etrain"
	case StrategyBaseline:
		return "baseline"
	case StrategyPerES:
		return "peres"
	case StrategyETime:
		return "etime"
	case StrategyETrainPredictive:
		return "etrain-predictive"
	default:
		return fmt.Sprintf("etrain.StrategyKind(%d)", int(k))
	}
}

// StrategyConfig parameterizes a strategy.
type StrategyConfig struct {
	// Kind selects the strategy; StrategyETrain if zero.
	Kind StrategyKind
	// Theta is eTrain's cost bound Θ.
	Theta float64
	// K is eTrain's heartbeat batch limit (KInfinite allowed); defaults
	// to KInfinite.
	K int
	// Omega is PerES' performance cost bound.
	Omega float64
	// V is eTime's energy/delay tradeoff parameter.
	V float64
	// WarmupBeats is how many live heartbeat observations per app the
	// predictive variant consumes before extrapolating; defaults to 5.
	WarmupBeats int
}

func (c StrategyConfig) build() (sched.Strategy, error) {
	kind := c.Kind
	if kind == 0 {
		kind = StrategyETrain
	}
	switch kind {
	case StrategyETrain:
		k := c.K
		if k == 0 {
			k = KInfinite
		}
		return core.New(core.Options{Theta: c.Theta, K: k})
	case StrategyBaseline:
		return baseline.NewImmediate(), nil
	case StrategyPerES:
		return baseline.NewPerES(baseline.DefaultPerESOptions(c.Omega))
	case StrategyETime:
		return baseline.NewETime(baseline.ETimeOptions{V: c.V})
	case StrategyETrainPredictive:
		k := c.K
		if k == 0 {
			k = KInfinite
		}
		warmup := c.WarmupBeats
		if warmup == 0 {
			warmup = 5
		}
		return core.NewPredictive(core.Options{Theta: c.Theta, K: k}, warmup)
	default:
		return nil, fmt.Errorf("etrain: unknown strategy kind %d", int(kind))
	}
}

// SimConfig describes one trace-driven simulation.
type SimConfig struct {
	// Seed drives all randomness; equal seeds reproduce exactly.
	Seed int64
	// Horizon is the simulated span; the paper's 7200 s if zero.
	Horizon time.Duration
	// Trains are the heartbeat apps; DefaultTrains() if nil.
	Trains []TrainApp
	// Cargo describes the packet workload; DefaultCargo() if nil.
	Cargo []CargoSpec
	// Strategy selects and parameterizes the scheduler.
	Strategy StrategyConfig
	// Power is the radio model; GalaxyS43G() if zero.
	Power PowerModel
	// Bandwidth overrides the synthetic trace when non-nil.
	Bandwidth *BandwidthTrace
}

// AppStat summarizes one cargo app's outcomes within a run.
type AppStat = sim.AppStat

// SimResult aggregates a simulation run.
type SimResult struct {
	// Strategy names the scheduler that produced the result.
	Strategy string
	// Energy is the radio energy breakdown (joules above IDLE).
	Energy Energy
	// NormalizedDelay is the average delay per data packet.
	NormalizedDelay time.Duration
	// DelayP50, DelayP90 and DelayP99 are per-packet delay percentiles.
	DelayP50, DelayP90, DelayP99 time.Duration
	// DeadlineViolationRatio is the fraction of packets past deadline.
	DeadlineViolationRatio float64
	// Packets is the number of data packets transmitted.
	Packets int
	// Heartbeats is the number of heartbeat transmissions.
	Heartbeats int
	// PerApp breaks the outcomes down by cargo app.
	PerApp map[string]AppStat
}

// Simulate runs the paper's trace-driven simulation.
func Simulate(cfg SimConfig) (*SimResult, error) {
	simCfg, err := buildSimInputs(cfg)
	if err != nil {
		return nil, err
	}
	strategy, err := cfg.Strategy.build()
	if err != nil {
		return nil, err
	}
	simCfg.Strategy = strategy
	res, err := sim.Run(simCfg)
	if err != nil {
		return nil, err
	}
	return &SimResult{
		Strategy:               res.Strategy,
		Energy:                 res.Energy,
		NormalizedDelay:        res.NormalizedDelay(),
		DelayP50:               res.DelayPercentile(50),
		DelayP90:               res.DelayPercentile(90),
		DelayP99:               res.DelayPercentile(99),
		DeadlineViolationRatio: res.DeadlineViolationRatio(),
		Packets:                len(res.Packets),
		Heartbeats:             res.HeartbeatCount,
		PerApp:                 res.AppStats(),
	}, nil
}

// SynthesizeBandwidth generates the synthetic 3G uplink trace used when
// SimConfig.Bandwidth is nil: a regime-switching Gauss–Markov process
// emulating the paper's bus-and-campus collection run.
func SynthesizeBandwidth(seed int64, duration time.Duration) (*BandwidthTrace, error) {
	return bandwidth.Synthesize(randx.New(seed), duration, nil)
}

// EDPoint is one point on an energy–delay panel: the control value that
// produced it plus the run's energy, normalized delay and deadline
// violation ratio.
type EDPoint = sim.EDPoint

// buildSimInputs assembles the internal simulation config from a SimConfig
// minus the strategy, which sweeps supply per control value.
func buildSimInputs(cfg SimConfig) (sim.Config, error) {
	src := randx.New(cfg.Seed)
	horizon := cfg.Horizon
	if horizon == 0 {
		horizon = 7200 * time.Second
	}
	trains := cfg.Trains
	if trains == nil {
		trains = DefaultTrains()
	}
	cargo := cfg.Cargo
	if cargo == nil {
		cargo = DefaultCargo()
	}
	power := cfg.Power
	if power == (PowerModel{}) {
		power = GalaxyS43G()
	}
	bw := cfg.Bandwidth
	synthetic := bw == nil
	if synthetic {
		var err error
		bw, err = bandwidth.Synthesize(src.Split(), horizon, nil)
		if err != nil {
			return sim.Config{}, err
		}
	}
	packets, err := workload.Generate(src.Split(), cargo, horizon)
	if err != nil {
		return sim.Config{}, err
	}
	simCfg := sim.Config{
		Horizon:   horizon,
		Trains:    trains,
		Packets:   packets,
		Bandwidth: bw,
		Power:     power,
		Estimator: bandwidth.NewEstimator(bw, src.Split(), time.Second, 0.3),
		Seed:      cfg.Seed,
	}
	if synthetic && cfg.Trains == nil && cfg.Cargo == nil && cfg.Power == (PowerModel{}) {
		// Fully derived from (seed, horizon): safe to name for the
		// runner's cross-sweep result cache.
		simCfg.CacheKey = fmt.Sprintf("etrain-api/seed=%d/horizon=%s", cfg.Seed, horizon)
	}
	return simCfg, nil
}

// sweepFactory names the control parameter of cfg.Strategy's kind and
// returns the keyed factory sweeping it: Θ for eTrain (K preserved), Ω for
// PerES, V for eTime. The baseline has no control and cannot be swept.
func sweepFactory(cfg StrategyConfig) (sim.KeyedFactory, error) {
	kind := cfg.Kind
	if kind == 0 {
		kind = StrategyETrain
	}
	switch kind {
	case StrategyETrain, StrategyETrainPredictive:
		return sim.Keyed(fmt.Sprintf("%s/k=%d", kind, cfg.K), func(theta float64) (sched.Strategy, error) {
			c := cfg
			c.Kind = kind
			c.Theta = theta
			return c.build()
		}), nil
	case StrategyPerES:
		return sim.Keyed("peres", func(omega float64) (sched.Strategy, error) {
			c := cfg
			c.Omega = omega
			return c.build()
		}), nil
	case StrategyETime:
		return sim.Keyed("etime", func(v float64) (sched.Strategy, error) {
			c := cfg
			c.V = v
			return c.build()
		}), nil
	default:
		return sim.KeyedFactory{}, fmt.Errorf("etrain: strategy %s has no control parameter to sweep", kind)
	}
}

// Sweep runs the simulation once per control value of the configured
// strategy's tuning parameter (Θ, Ω or V) and returns the E–D points in
// input order. Workers bounds how many runs execute concurrently (<= 1
// sequential, 0 or negative meaning one per CPU); results are
// bit-identical at every setting because each run's randomness is derived
// from (seed, strategy, control), never from execution order. Failed
// points are reported through a *sim.SweepError alongside the surviving
// points.
func Sweep(cfg SimConfig, controls []float64, workers int) ([]EDPoint, error) {
	simCfg, err := buildSimInputs(cfg)
	if err != nil {
		return nil, err
	}
	factory, err := sweepFactory(cfg.Strategy)
	if err != nil {
		return nil, err
	}
	if workers == 0 {
		workers = -1 // the exported default is one worker per CPU
	}
	return sim.NewRunner(workers).Sweep(simCfg, factory, controls)
}
