// Package ctxloopscope contains the same goroutine shapes that ctxloop
// flags in the fan-out layers — but this package is outside ctxloop's
// scope, so none of them may be reported.
package ctxloopscope

func fireAndForget(jobs []int) {
	for _, j := range jobs {
		go func() {
			process(j)
		}()
	}
}

func process(int) {}
