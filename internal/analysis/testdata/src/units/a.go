// Package units exercises the units analyzer: additive unit mixing, large
// bare literals crossing watt boundaries, and magic scale factors.
package units

import "time"

// Watts is a named power type.
type Watts float64

// PowerMW is the DCH draw in milliwatts.
var PowerMW = 700.0

// PowerW is the DCH draw in watts.
var PowerW = 0.7

// milliwattsPerWatt is the sanctioned named conversion.
const milliwattsPerWatt = 1000.0

func mixedAdd() float64 {
	return PowerMW + PowerW // want `\+ mixes mW and W operands`
}

func mixedCompare(tailJ, drawW float64) bool {
	return tailJ > drawW // want `> mixes J and W operands`
}

func magicScale() float64 {
	return PowerW * 1000 // want `magic scale factor 1000 applied to a W operand`
}

func magicDivide(energyJoules float64) float64 {
	return energyJoules / 3600 // want `magic scale factor 3600 applied to a J operand`
}

func namedScale() float64 {
	return PowerW * milliwattsPerWatt
}

func bigConversion() Watts {
	return Watts(700) // want `bare literal 700 converted to a W-carrying type`
}

func smallConversion() Watts {
	return Watts(0.7)
}

// Radio carries doc-comment units: PD's unit comes from its doc line, not
// its name.
type Radio struct {
	// PD is the DCH draw, in watts.
	PD float64
	// TailMW is the tail draw in milliwatts.
	TailMW float64
}

func docMixed(r Radio) float64 {
	return r.PD + r.TailMW // want `\+ mixes W and mW operands`
}

func keyedLiteral() Radio {
	return Radio{PD: 700, TailMW: 700} // want `bare literal 700 assigned to W-carrying field PD`
}

func durationsAreFine(d time.Duration) float64 {
	window := 60 * time.Second
	_ = 1000 * time.Millisecond
	if d > window {
		d = window
	}
	return d.Seconds()
}

func sameUnits(aW, bW float64) float64 {
	return aW + bW
}
