package sim

import (
	"fmt"
	"math"
	"sync"

	"etrain/internal/parallel"
	"etrain/internal/randx"
)

// KeyedFactory names a StrategyFactory for the runner. The key identifies
// the strategy family together with its fixed parameters (e.g.
// "etrain-k20", "peres") and serves two roles: it is mixed into every
// run's derived seed, and it addresses the result cache. Factories that
// build different strategies must carry different keys; an empty key opts
// the factory out of caching.
type KeyedFactory struct {
	// Key names the strategy family; see the type comment.
	Key string
	// New builds a fresh strategy for one control value.
	New StrategyFactory
}

// Keyed pairs a strategy factory with its cache/seed key.
func Keyed(key string, f StrategyFactory) KeyedFactory {
	return KeyedFactory{Key: key, New: f}
}

// runKey addresses one evaluated point: a config identity, a strategy
// family and a control value.
type runKey struct {
	cfg      string
	strategy string
	control  uint64
}

// Runner executes independent simulation runs — sweep points, calibration
// probes — across a bounded worker pool, with an in-memory result cache.
//
// Determinism contract: a run's result is a pure function of
// (Config, strategy key, control). The runner derives each run's estimator
// noise stream from randx.Derive(cfg.Seed, hash(key), bits(control)), so
// results never depend on worker count, scheduling order, or how many runs
// executed before — parallel output is bit-identical to sequential output,
// and a cached result is bit-identical to a recomputed one.
//
// A Runner is safe for concurrent use; all methods may be called from
// multiple goroutines and the worker budget bounds the total number of
// simulations in flight across all of them.
type Runner struct {
	limit parallel.Limit

	mu    sync.Mutex
	cache map[runKey]EDPoint
}

// NewRunner returns a runner with the given worker budget: n > 0 bounds
// the pool at n concurrent simulations, anything else means one per CPU
// (GOMAXPROCS). NewRunner(1) is the sequential runner.
func NewRunner(workers int) *Runner {
	return &Runner{
		limit: parallel.NewLimit(workers),
		cache: make(map[runKey]EDPoint),
	}
}

// Workers returns the runner's worker budget.
func (r *Runner) Workers() int { return r.limit.Cap() }

// CacheSize returns how many evaluated points the runner currently holds.
func (r *Runner) CacheSize() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cache)
}

// cacheable reports whether a point's identity is fully named.
func cacheable(cfg Config, factory KeyedFactory) bool {
	return cfg.CacheKey != "" && factory.Key != ""
}

// Point evaluates one (config, strategy, control) triple: a cache hit when
// the point was evaluated before, one simulation run on the pool
// otherwise. The strategy field of cfg is ignored; the factory provides
// it.
func (r *Runner) Point(cfg Config, factory KeyedFactory, control float64) (EDPoint, error) {
	key := runKey{cfg: cfg.CacheKey, strategy: factory.Key, control: math.Float64bits(control)}
	if cacheable(cfg, factory) {
		r.mu.Lock()
		pt, ok := r.cache[key]
		r.mu.Unlock()
		if ok {
			return pt, nil
		}
	}

	strategy, err := factory.New(control)
	if err != nil {
		return EDPoint{}, fmt.Errorf("control %v: %w", control, err)
	}
	cfg.Strategy = strategy
	if cfg.Estimator != nil {
		// Reseed the channel-noise stream from the run's identity. This is
		// the determinism keystone: the estimator handed to Run no longer
		// shares state with any other run.
		runSeed := randx.Derive(cfg.Seed, randx.DeriveString(factory.Key), math.Float64bits(control))
		cfg.Estimator = cfg.Estimator.Reseeded(randx.New(runSeed))
	}

	// The limit is the leaf-level semaphore bounding simulations in
	// flight; Point never blocks on anything else while holding a slot,
	// so nested fan-outs cannot deadlock it.
	r.limit.Acquire()
	res, err := Run(cfg)
	r.limit.Release()
	if err != nil {
		return EDPoint{}, fmt.Errorf("control %v: %w", control, err)
	}
	pt := EDPoint{
		Control:        control,
		EnergyJoules:   res.Energy.Total(),
		Delay:          res.NormalizedDelay(),
		ViolationRatio: res.DeadlineViolationRatio(),
	}
	if cacheable(cfg, factory) {
		// Concurrent evaluations of one key compute identical values, so
		// last-write-wins is benign; we accept the rare duplicated run
		// rather than single-flight machinery.
		r.mu.Lock()
		r.cache[key] = pt
		r.mu.Unlock()
	}
	return pt, nil
}
