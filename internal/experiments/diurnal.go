package experiments

import (
	"fmt"
	"time"

	"etrain/internal/diurnal"
	"etrain/internal/fleet"
)

// FigDiurnal sweeps one fleet across radio generations and day phases:
// the same 10-minute device session is replayed with the week activity
// profile anchored at night, working-day and Friday-evening starts, under
// the 3G RRC tail and the LTE connected-mode DRX machine. Per cell it
// reports the per-class saving deciles, showing how eTrain's headroom
// moves with both the workload's time of day and the radio's tail shape
// (DRX tails are shorter, so piggybacking saves less in absolute terms
// but the evening cargo peak still dominates the night trough).
func FigDiurnal(opts Options) (*Table, error) {
	const devices = 48
	const shardSize = 16
	const theta = 4.0
	// TimeScale 36 spreads the 10-minute session over 6 diurnal hours, so
	// each phase window stays inside its curve region.
	const timeScale = 36
	phases := []struct {
		name  string
		start time.Duration
	}{
		{"night", 3 * time.Hour},     // Monday 03:00, deep trough
		{"day", 34 * time.Hour},      // Tuesday 10:00, working plateau
		{"evening", 114 * time.Hour}, // Friday 18:00, weekly peak
	}
	radios := []string{"3g", "lte-drx"}

	tbl := &Table{
		ID:      "fig-diurnal",
		Title:   "Diurnal phase x radio generation: per-class saving deciles (week profile, time scale 36)",
		Columns: []string{"radio", "phase", "class", "devices", "without_J", "with_J", "saving_p10", "saving_p50", "saving_p90"},
	}
	for _, radioName := range radios {
		for _, phase := range phases {
			prof, err := diurnal.ByName("week")
			if err != nil {
				return nil, fmt.Errorf("fig-diurnal: %w", err)
			}
			prof.TimeScale = timeScale
			prof.Start = phase.start
			rep, err := fleet.Run(fleet.Config{
				Devices:   devices,
				ShardSize: shardSize,
				Workers:   opts.workersOr1(),
				Seed:      opts.Seed + 14,
				Theta:     theta,
				K:         20,
				Diurnal:   prof,
				Radio:     radioName,
			})
			if err != nil {
				return nil, fmt.Errorf("fig-diurnal %s/%s: %w", radioName, phase.name, err)
			}
			tbl.AddNote("%s/%s config_hash=%s", radioName, phase.name, rep.ConfigHash)
			rows := append(append([]fleet.ClassRow(nil), rep.Classes...), fleet.ClassRow{Label: "all", Agg: rep.Total})
			for _, row := range rows {
				if row.Agg.Devices == 0 {
					continue
				}
				var deciles [3]float64
				for i, p := range [3]float64{10, 50, 90} {
					v, err := row.Agg.SavingSketch.Quantile(p)
					if err != nil {
						return nil, fmt.Errorf("fig-diurnal %s/%s class %s: %w", radioName, phase.name, row.Label, err)
					}
					deciles[i] = v
				}
				tbl.AddRow(radioName, phase.name, row.Label, row.Agg.Devices,
					row.Agg.WithoutJ.Mean(), row.Agg.WithJ.Mean(),
					fmt.Sprintf("%.1f%%", deciles[0]*100),
					fmt.Sprintf("%.1f%%", deciles[1]*100),
					fmt.Sprintf("%.1f%%", deciles[2]*100))
			}
		}
	}
	tbl.AddNote("same fleet seed per cell: only the diurnal anchor and the radio model change between rows.")
	tbl.AddNote("lte-drx tails are ~half the 3g rrc tail energy, so absolute savings shrink while the evening/night ordering persists.")
	return tbl, nil
}
