package radio

import (
	"fmt"
	"sort"
	"time"
)

// TxKind classifies what a transmission carried.
type TxKind int

// Transmission kinds.
const (
	TxHeartbeat TxKind = iota + 1
	TxData
)

// String returns the kind name.
func (k TxKind) String() string {
	switch k {
	case TxHeartbeat:
		return "heartbeat"
	case TxData:
		return "data"
	default:
		return fmt.Sprintf("radio.TxKind(%d)", int(k))
	}
}

// Transmission is one completed radio transmission on the timeline.
type Transmission struct {
	// Start is the virtual instant the transmission began.
	Start time.Duration
	// TxTime is how long the transmission occupied the radio.
	TxTime time.Duration
	// Size is the payload in bytes.
	Size int64
	// Kind distinguishes heartbeats from data.
	Kind TxKind
	// App names the originating application.
	App string
}

// End returns the instant the transmission finished.
func (t Transmission) End() time.Duration { return t.Start + t.TxTime }

// Timeline is the chronologically ordered record of every transmission of a
// run. The simulator serializes transmissions (paper constraint (3)), so
// intervals never overlap.
type Timeline struct {
	txs []Transmission
}

// Reserve grows the timeline's capacity so at least n more transmissions
// can be appended without reallocating — the simulation engine sizes the
// timeline from its config before entering the slot loop.
func (tl *Timeline) Reserve(n int) {
	if n <= 0 {
		return
	}
	if free := cap(tl.txs) - len(tl.txs); free < n {
		grown := make([]Transmission, len(tl.txs), len(tl.txs)+n)
		copy(grown, tl.txs)
		tl.txs = grown
	}
}

// Append adds a transmission. Transmissions must be appended in start order
// and must not overlap the previous one; violations return an error because
// they indicate a scheduler bug.
//
//etrain:hotpath
func (tl *Timeline) Append(tx Transmission) error {
	if tx.TxTime < 0 {
		return fmt.Errorf("radio: negative transmission time %v", tx.TxTime)
	}
	if n := len(tl.txs); n > 0 {
		prev := tl.txs[n-1]
		if tx.Start < prev.End() {
			return fmt.Errorf("radio: transmission at %v overlaps previous ending %v",
				tx.Start, prev.End())
		}
	}
	tl.txs = append(tl.txs, tx)
	return nil
}

// Len returns the number of recorded transmissions.
func (tl *Timeline) Len() int { return len(tl.txs) }

// Transmissions returns a copy of the recorded transmissions.
func (tl *Timeline) Transmissions() []Transmission {
	out := make([]Transmission, len(tl.txs))
	copy(out, tl.txs)
	return out
}

// BusyUntil returns the end of the last transmission, i.e. the earliest
// instant the radio link is free again.
func (tl *Timeline) BusyUntil() time.Duration {
	if len(tl.txs) == 0 {
		return 0
	}
	return tl.txs[len(tl.txs)-1].End()
}

// Energy is the energy breakdown of a timeline in joules (above the IDLE
// baseline).
type Energy struct {
	// Transmit is the energy spent actively transmitting.
	Transmit float64
	// Tail is the energy wasted in post-transmission tails.
	Tail float64
	// HeartbeatShare is the portion (transmit + tail) attributed to
	// heartbeat transmissions.
	HeartbeatShare float64
	// DataShare is the portion attributed to data transmissions.
	DataShare float64
}

// Total returns transmit + tail energy.
func (e Energy) Total() float64 { return e.Transmit + e.Tail }

// AccountEnergy folds the timeline with the power model: each transmission
// pays its transmit energy plus the tail energy of the gap to the next
// transmission; the final transmission pays a full tail (horizon permitting).
//
// horizon bounds the final tail: a transmission ending at horizon−5s with a
// 17.5s tail only accrues 5s of it.
func (tl *Timeline) AccountEnergy(m PowerModel, horizon time.Duration) Energy {
	return accountEnergy(tl.txs, m, horizon)
}

// AccountEnergyModel is AccountEnergy over any radio generation: the same
// fold through the Model interface, used when a fleet sweeps 3G RRC
// against LTE/5G DRX.
func (tl *Timeline) AccountEnergyModel(m Model, horizon time.Duration) Energy {
	return accountEnergy(tl.txs, m, horizon)
}

// accountEnergy is the shared fold. The type parameter keeps the
// PowerModel path stenciled to direct calls — BenchmarkAccountEnergy
// must stay allocation-free — while the Model instantiation serves the
// DRX models through the interface.
func accountEnergy[M Model](txs []Transmission, m M, horizon time.Duration) Energy {
	var e Energy
	for i, tx := range txs {
		txE := m.TransmitEnergy(tx.TxTime)

		var gap time.Duration
		if i+1 < len(txs) {
			gap = txs[i+1].Start - tx.End()
		} else {
			gap = horizon - tx.End()
			if gap > m.TailTime() {
				gap = m.TailTime()
			}
		}
		tailE := m.TailEnergy(gap)

		e.Transmit += txE
		e.Tail += tailE
		switch tx.Kind {
		case TxHeartbeat:
			e.HeartbeatShare += txE + tailE
		case TxData:
			e.DataShare += txE + tailE
		}
	}
	return e
}

// AccountFastDormancy computes the energy of the same timeline under a
// fast-dormancy policy (related work, §VII): the tail is cut immediately
// after each transmission, but every transmission that starts from IDLE
// pays the promotion delay at DCH power. This is the ablation the paper
// argues against.
func (tl *Timeline) AccountFastDormancy(m PowerModel) Energy {
	var e Energy
	for _, tx := range tl.txs {
		txE := m.TransmitEnergy(tx.TxTime)
		promoE := m.PD * m.PromotionDelay.Seconds()
		e.Transmit += txE + promoE
		switch tx.Kind {
		case TxHeartbeat:
			e.HeartbeatShare += txE + promoE
		case TxData:
			e.DataShare += txE + promoE
		}
	}
	return e
}

// StateAt returns the radio state at virtual time at, derived from the
// timeline: transmitting while inside an interval, then walking the tail of
// the closest preceding transmission.
func (tl *Timeline) StateAt(m PowerModel, at time.Duration) State {
	idx := sort.Search(len(tl.txs), func(i int) bool {
		return tl.txs[i].Start > at
	})
	// idx is the first transmission starting after `at`; the candidate
	// containing or preceding `at` is idx−1.
	if idx == 0 {
		return StateIdle
	}
	prev := tl.txs[idx-1]
	if at < prev.End() {
		return StateTransmitting
	}
	return m.TailStateAt(at - prev.End())
}

// PowerAt returns the instantaneous extra power at virtual time at.
func (tl *Timeline) PowerAt(m PowerModel, at time.Duration) float64 {
	return m.Power(tl.StateAt(m, at))
}
