package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// WireCanon checks that the wire protocol stays canonical: one byte
// stream per message, independent of platform and process. Inside the
// wire package it forbids the constructs that break that —
// reflection-driven binary.Write/binary.Read, native or little-endian
// byte orders, map iteration (nondeterministic field order), and
// platform-sized int/uint struct fields whose width changes across
// architectures. Module-wide it requires composite literals of wire
// message types to be keyed, so a field reorder in the protocol structs
// can never silently shuffle an encoder's arguments.
var WireCanon = &Analyzer{
	Name: "wirecanon",
	Doc: "enforce explicit big-endian fixed-width encoding in internal/wire " +
		"and keyed wire struct literals module-wide",
	Run: runWireCanon,
}

func runWireCanon(pass *Pass) error {
	inWire := pathHasSuffix(pass.Pkg.Path(), "internal/wire")
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.SelectorExpr:
				if inWire {
					checkBinaryOrder(pass, v)
				}
			case *ast.RangeStmt:
				if inWire {
					checkMapRange(pass, v)
				}
			case *ast.TypeSpec:
				if inWire {
					checkFieldWidths(pass, v)
				}
			case *ast.CompositeLit:
				checkKeyedWireLit(pass, v)
			}
			return true
		})
	}
	return nil
}

// checkBinaryOrder flags encoding/binary references that are not explicit
// big-endian: binary.Write and binary.Read encode through reflection with
// a caller-chosen order, and binary.LittleEndian / binary.NativeEndian
// make the byte stream platform- or author-dependent.
func checkBinaryOrder(pass *Pass, sel *ast.SelectorExpr) {
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "encoding/binary" {
		return
	}
	switch obj.Name() {
	case "Write", "Read":
		pass.Reportf(sel.Pos(),
			"binary.%s encodes through reflection; frames must use explicit big-endian fixed-width primitives",
			obj.Name())
	case "LittleEndian", "NativeEndian":
		pass.Reportf(sel.Pos(),
			"binary.%s is not canonical; the wire format is big-endian only", obj.Name())
	}
}

// checkMapRange flags ranging over a map in the wire package: iteration
// order would leak into the byte stream.
func checkMapRange(pass *Pass, stmt *ast.RangeStmt) {
	t := pass.TypesInfo.Types[stmt.X].Type
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); ok {
		pass.Reportf(stmt.Pos(),
			"map iteration order is nondeterministic; encode from an ordered slice instead")
	}
}

// checkFieldWidths flags struct fields typed int or uint inside the wire
// package: their width is platform-sized, so a frame layout built from
// them is not fixed-width. Only exported types are frame structs;
// unexported helpers (cursors, buffers) index with int as usual.
func checkFieldWidths(pass *Pass, spec *ast.TypeSpec) {
	if !spec.Name.IsExported() {
		return
	}
	st, ok := spec.Type.(*ast.StructType)
	if !ok {
		return
	}
	for _, field := range st.Fields.List {
		t := pass.TypesInfo.Types[field.Type].Type
		if t == nil {
			continue
		}
		b, ok := t.Underlying().(*types.Basic)
		if !ok {
			continue
		}
		if b.Kind() == types.Int || b.Kind() == types.Uint || b.Kind() == types.Uintptr {
			pass.Reportf(field.Pos(),
				"wire struct field has platform-sized type %s; use a fixed-width integer", b.Name())
		}
	}
}

// checkKeyedWireLit requires composite literals of wire message structs to
// be keyed, module-wide: the frame layout is defined by field names, and
// positional literals silently re-bind values when the protocol structs
// evolve.
func checkKeyedWireLit(pass *Pass, lit *ast.CompositeLit) {
	if len(lit.Elts) == 0 {
		return
	}
	t := pass.TypesInfo.Types[lit].Type
	if t == nil {
		return
	}
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !pathHasSuffix(obj.Pkg().Path(), "internal/wire") {
		return
	}
	for _, elt := range lit.Elts {
		if _, keyed := elt.(*ast.KeyValueExpr); !keyed {
			pass.Reportf(lit.Pos(),
				"unkeyed %s literal; wire struct literals must name their fields", obj.Name())
			return
		}
	}
}

// pathHasSuffix reports whether pkgPath is suffix or ends with
// "/"+suffix, so fixture twins of real packages match their exemptions.
func pathHasSuffix(pkgPath, suffix string) bool {
	return pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix)
}
