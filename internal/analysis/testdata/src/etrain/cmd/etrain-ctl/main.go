// Command etrain-ctl's stand-in: the cluster admin CLI is patrolled
// like the layers it drives. Its wait loop is a sanctioned wall-clock
// boundary only through explicit lint:ignore pragmas at each read — the
// bare shapes below must all be flagged — and a drain request whose
// transport write error is dropped reports success for a drain the
// controller never heard.
package main

import (
	"net"
	"time"
)

// waitUntil polls with bare wall-clock reads instead of pragma-annotated
// boundary reads threaded from -timeout.
func waitUntil(probe func() bool) bool {
	deadline := time.Now().Add(30 * time.Second) // want `time.Now reads the wall clock outside the real-time boundary`
	for !probe() {
		if time.Now().After(deadline) { // want `time.Now reads the wall clock outside the real-time boundary`
			return false
		}
		time.Sleep(50 * time.Millisecond) // want `time.Sleep reads the wall clock outside the real-time boundary`
	}
	return true
}

// drain fires the drain request and drops the transport error.
func drain(conn net.Conn, req []byte) {
	conn.Write(req) // want `error from net.Conn.Write is dropped`
}

// drainChecked is the sanctioned shape.
func drainChecked(conn net.Conn, req []byte) error {
	_, err := conn.Write(req)
	return err
}
