// Command etrain-sim runs a single trace-driven simulation and prints its
// energy/delay metrics, or sweeps the strategy's control parameter across
// a worker pool.
//
// Usage:
//
//	etrain-sim -strategy etrain -theta 2
//	etrain-sim -strategy etime -v 8 -lambda 0.12
//	etrain-sim -strategy etrain -sweep 0,0.5,1,2,4 -parallel 4
//
// Scenario subcommands (see DESIGN.md §12):
//
//	etrain-sim run scenarios/fault-burst.yaml
//	etrain-sim validate scenarios/*.yaml
//	etrain-sim gen -seed 7 -engine loopback
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"etrain"
	"etrain/internal/sim"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "run", "validate", "gen":
			if err := scenarioMain(os.Args[1], os.Args[2:], os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "etrain-sim:", err)
				os.Exit(1)
			}
			return
		}
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "etrain-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		strategy = flag.String("strategy", "etrain", "etrain | baseline | peres | etime")
		theta    = flag.Float64("theta", 2.0, "eTrain cost bound Θ")
		k        = flag.Int("k", 0, "eTrain batch limit k (0 = infinite)")
		omega    = flag.Float64("omega", 0.5, "PerES performance cost bound Ω")
		v        = flag.Float64("v", 8, "eTime tradeoff parameter V")
		lambda   = flag.Float64("lambda", 0.08, "total cargo arrival rate (packets/s)")
		horizon  = flag.Duration("horizon", 2*time.Hour, "simulated span")
		seed     = flag.Int64("seed", 5, "random seed")
		sweep    = flag.String("sweep", "", "comma-separated control values (Θ/Ω/V) to sweep instead of a single run")
		workers  = flag.Int("parallel", 0, "sweep worker count (0 = one per CPU, 1 = sequential)")
	)
	flag.Parse()

	var kind etrain.StrategyKind
	switch *strategy {
	case "etrain":
		kind = etrain.StrategyETrain
	case "baseline":
		kind = etrain.StrategyBaseline
	case "peres":
		kind = etrain.StrategyPerES
	case "etime":
		kind = etrain.StrategyETime
	default:
		return fmt.Errorf("unknown strategy %q", *strategy)
	}
	cargo, err := etrain.CargoForLambda(*lambda)
	if err != nil {
		return err
	}
	cfg := etrain.SimConfig{
		Seed:    *seed,
		Horizon: *horizon,
		Cargo:   cargo,
		Strategy: etrain.StrategyConfig{
			Kind: kind, Theta: *theta, K: *k, Omega: *omega, V: *v,
		},
	}
	if *sweep != "" {
		controls, err := parseControls(*sweep)
		if err != nil {
			return err
		}
		return runSweep(cfg, controls, *workers)
	}
	res, err := etrain.Simulate(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("strategy             %s\n", res.Strategy)
	fmt.Printf("horizon              %v\n", *horizon)
	fmt.Printf("data packets         %d\n", res.Packets)
	fmt.Printf("heartbeats           %d\n", res.Heartbeats)
	fmt.Printf("total energy         %.1f J\n", res.Energy.Total())
	fmt.Printf("  transmit           %.1f J\n", res.Energy.Transmit)
	fmt.Printf("  tail               %.1f J\n", res.Energy.Tail)
	fmt.Printf("normalized delay     %.1f s\n", res.NormalizedDelay.Seconds())
	fmt.Printf("deadline violations  %.1f%%\n", res.DeadlineViolationRatio*100)
	return nil
}

// parseControls splits a comma-separated control list.
func parseControls(s string) ([]float64, error) {
	var controls []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad control value %q: %w", part, err)
		}
		controls = append(controls, v)
	}
	if len(controls) == 0 {
		return nil, errors.New("-sweep given but no control values parsed")
	}
	return controls, nil
}

// runSweep fans the sweep across the worker pool and prints the E–D panel.
// Failed points are reported per control value; the surviving panel still
// prints.
func runSweep(cfg etrain.SimConfig, controls []float64, workers int) error {
	points, err := etrain.Sweep(cfg, controls, workers)
	fmt.Printf("%-10s  %-10s  %-10s  %-10s\n", "control", "energy_J", "delay_s", "violation")
	for _, p := range points {
		fmt.Printf("%-10.3g  %-10.1f  %-10.1f  %-10.3f\n",
			p.Control, p.EnergyJoules, p.Delay.Seconds(), p.ViolationRatio)
	}
	var se *sim.SweepError
	if errors.As(err, &se) && len(points) > 0 {
		for _, f := range se.Failures {
			fmt.Fprintf(os.Stderr, "etrain-sim: point control=%g failed: %v\n", f.Control, f.Err)
		}
		return nil
	}
	return err
}
