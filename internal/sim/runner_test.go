package sim

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"etrain/internal/bandwidth"
	"etrain/internal/baseline"
	"etrain/internal/core"
	"etrain/internal/heartbeat"
	"etrain/internal/radio"
	"etrain/internal/randx"
	"etrain/internal/sched"
	"etrain/internal/workload"
)

// runnerConfig builds a shortened paper setup with a noisy channel
// estimator, so sweeps exercise the per-run reseeding path. The horizon is
// cut to keep the determinism grid fast; CacheKey names everything the
// config derives from.
func runnerConfig(t testing.TB, seed int64, horizon time.Duration) Config {
	t.Helper()
	src := randx.New(seed)
	bw, err := bandwidth.Synthesize(src.Split(), horizon, nil)
	if err != nil {
		t.Fatal(err)
	}
	packets, err := workload.Generate(src.Split(), workload.DefaultSpecs(), horizon)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Horizon:   horizon,
		Trains:    heartbeat.DefaultTrio(),
		Packets:   packets,
		Bandwidth: bw,
		Power:     radio.GalaxyS43G(),
		Estimator: bandwidth.NewEstimator(bw, src.Split(), time.Second, 0.3),
		Seed:      seed,
		CacheKey:  fmt.Sprintf("runner-test/seed=%d/horizon=%s", seed, horizon),
	}
}

func etrainKeyed(k int) KeyedFactory {
	return Keyed(fmt.Sprintf("etrain/k=%d", k), func(theta float64) (sched.Strategy, error) {
		return core.New(core.Options{Theta: theta, K: k})
	})
}

func etimeKeyed() KeyedFactory {
	return Keyed("etime", func(v float64) (sched.Strategy, error) {
		return baseline.NewETime(baseline.ETimeOptions{V: v})
	})
}

// TestSweepParallelMatchesSequential is the central determinism check at
// the sim layer: a Θ×k grid swept on one worker and on eight must produce
// byte-identical EDPoints, including the estimator-noise-sensitive eTime
// strategy.
func TestSweepParallelMatchesSequential(t *testing.T) {
	cfg := runnerConfig(t, 5, 30*time.Minute)
	thetas := []float64{0, 0.5, 1, 2, 4}
	cases := []struct {
		name    string
		factory KeyedFactory
	}{
		{"etrain-kinf", etrainKeyed(core.KInfinite)},
		{"etrain-k20", etrainKeyed(20)},
		{"etime", etimeKeyed()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq, err := NewRunner(1).Sweep(cfg, tc.factory, thetas)
			if err != nil {
				t.Fatal(err)
			}
			par, err := NewRunner(8).Sweep(cfg, tc.factory, thetas)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("parallel sweep diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
			}
		})
	}
}

// TestSweepOrderIndependent checks the stronger property behind the
// parallel==sequential guarantee: a point's value does not depend on which
// runs came before it, so sweeping a permuted grid yields the same value
// per control.
func TestSweepOrderIndependent(t *testing.T) {
	cfg := runnerConfig(t, 7, 30*time.Minute)
	factory := etrainKeyed(20)
	forward, err := NewRunner(1).Sweep(cfg, factory, []float64{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	backward, err := NewRunner(1).Sweep(cfg, factory, []float64{2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range forward {
		mirror := backward[len(backward)-1-i]
		if !reflect.DeepEqual(pt, mirror) {
			t.Fatalf("control %v changed with evaluation order:\nforward:  %+v\nbackward: %+v",
				pt.Control, pt, mirror)
		}
	}
}

// TestSweepPreservesInputOrder pins the output-ordering contract under
// parallelism: points come back in input order even when the grid is not
// sorted and workers finish out of order.
func TestSweepPreservesInputOrder(t *testing.T) {
	cfg := runnerConfig(t, 9, 15*time.Minute)
	controls := []float64{3, 0, 2, 4, 1}
	points, err := NewRunner(8).Sweep(cfg, etrainKeyed(core.KInfinite), controls)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(controls) {
		t.Fatalf("got %d points for %d controls", len(points), len(controls))
	}
	for i, pt := range points {
		if pt.Control != controls[i] {
			t.Fatalf("point %d has control %v, want input-order %v", i, pt.Control, controls[i])
		}
	}
}

func TestRunnerCachesPoints(t *testing.T) {
	cfg := runnerConfig(t, 11, 15*time.Minute)
	r := NewRunner(2)
	factory := etrainKeyed(20)

	first, err := r.Point(cfg, factory, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if r.CacheSize() != 1 {
		t.Fatalf("cache size %d after first point, want 1", r.CacheSize())
	}
	second, err := r.Point(cfg, factory, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if r.CacheSize() != 1 {
		t.Fatalf("cache size %d after repeat point, want 1", r.CacheSize())
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cache hit differs from original: %+v vs %+v", first, second)
	}

	// Overlapping sweep grids reuse the shared points.
	if _, err := r.Sweep(cfg, factory, []float64{0.5, 1.0, 2.0}); err != nil {
		t.Fatal(err)
	}
	size := r.CacheSize()
	if size != 3 {
		t.Fatalf("cache size %d after overlapping sweep, want 3", size)
	}
	if _, err := r.Sweep(cfg, factory, []float64{1.0, 2.0, 3.0}); err != nil {
		t.Fatal(err)
	}
	if got := r.CacheSize(); got != 4 {
		t.Fatalf("cache size %d after second sweep, want 4 (two overlapping points reused)", got)
	}

	// Different strategy families must not collide even at equal controls.
	if _, err := r.Point(cfg, etrainKeyed(core.KInfinite), 1.0); err != nil {
		t.Fatal(err)
	}
	if got := r.CacheSize(); got != 5 {
		t.Fatalf("cache size %d after distinct-family point, want 5", got)
	}
}

func TestRunnerCacheRequiresBothKeys(t *testing.T) {
	cfg := runnerConfig(t, 13, 15*time.Minute)
	factory := etrainKeyed(20)

	r := NewRunner(1)
	anon := cfg
	anon.CacheKey = ""
	if _, err := r.Point(anon, factory, 1.0); err != nil {
		t.Fatal(err)
	}
	if r.CacheSize() != 0 {
		t.Fatal("point with empty config key was cached")
	}
	if _, err := r.Point(cfg, Keyed("", factory.New), 1.0); err != nil {
		t.Fatal(err)
	}
	if r.CacheSize() != 0 {
		t.Fatal("point with empty factory key was cached")
	}
}

// TestCachedPointMatchesFreshRunner verifies cache hits are bit-identical
// to recomputation: the derived seed depends on the run's identity, never
// on how many runs the runner executed before.
func TestCachedPointMatchesFreshRunner(t *testing.T) {
	cfg := runnerConfig(t, 17, 15*time.Minute)
	factory := etimeKeyed()

	warm := NewRunner(2)
	if _, err := warm.Sweep(cfg, factory, []float64{2, 4, 8}); err != nil {
		t.Fatal(err)
	}
	viaCacheableRunner, err := warm.Point(cfg, factory, 4)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewRunner(1).Point(cfg, factory, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaCacheableRunner, fresh) {
		t.Fatalf("cached point differs from fresh recompute:\ncached: %+v\nfresh:  %+v", viaCacheableRunner, fresh)
	}
}

func TestSweepPartialFailure(t *testing.T) {
	cfg := runnerConfig(t, 19, 15*time.Minute)
	factory := Keyed("flaky", func(theta float64) (sched.Strategy, error) {
		if theta == 1 || theta == 3 {
			return nil, fmt.Errorf("injected failure at %v", theta)
		}
		return core.New(core.Options{Theta: theta, K: 20})
	})
	points, err := NewRunner(4).Sweep(cfg, factory, []float64{0, 1, 2, 3, 4})

	var se *SweepError
	if !errors.As(err, &se) {
		t.Fatalf("error type %T, want *SweepError", err)
	}
	if got := se.Controls(); !reflect.DeepEqual(got, []float64{1, 3}) {
		t.Fatalf("failed controls %v, want [1 3]", got)
	}
	survivors := []float64{}
	for _, pt := range points {
		survivors = append(survivors, pt.Control)
	}
	if !reflect.DeepEqual(survivors, []float64{0, 2, 4}) {
		t.Fatalf("surviving controls %v, want [0 2 4] in input order", survivors)
	}
}

func TestFreeSweepAbortsOnFirstFailure(t *testing.T) {
	cfg := runnerConfig(t, 21, 15*time.Minute)
	points, err := Sweep(cfg, func(theta float64) (sched.Strategy, error) {
		if theta > 0.5 {
			return nil, errors.New("injected")
		}
		return core.New(core.Options{Theta: theta, K: 20})
	}, []float64{0, 1, 2})
	if err == nil {
		t.Fatal("free Sweep must fail when a point fails")
	}
	if points != nil {
		t.Fatalf("free Sweep returned partial points %v with an error", points)
	}
}

// syntheticCurve is a deterministic evaluate function for calibrate: delay
// rises linearly with the control, energy falls. It records every control
// it was asked about.
type syntheticCurve struct {
	base     time.Duration
	slope    time.Duration // delay gained per unit of control
	evals    []float64
	points   []EDPoint
	flattens float64 // controls beyond this add no delay (0 = never)
}

func (c *syntheticCurve) evaluate(ctrl float64) (EDPoint, error) {
	eff := ctrl
	if c.flattens > 0 && eff > c.flattens {
		eff = c.flattens
	}
	pt := EDPoint{
		Control:      ctrl,
		Delay:        c.base + time.Duration(eff*float64(c.slope)),
		EnergyJoules: 1000 / (1 + ctrl),
	}
	c.evals = append(c.evals, ctrl)
	c.points = append(c.points, pt)
	return pt, nil
}

func (c *syntheticCurve) probed(pt EDPoint) bool {
	for _, p := range c.points {
		if reflect.DeepEqual(p, pt) {
			return true
		}
	}
	return false
}

// TestCalibratePropertyMonotoneCurves: for any monotone linear delay curve
// with bounded slope and any achievable target, calibrate must land within
// calibrationTolerance of the target and must return a point it actually
// evaluated.
func TestCalibratePropertyMonotoneCurves(t *testing.T) {
	prop := func(baseSec, slopeSec, frac uint8) bool {
		base := time.Duration(baseSec) * time.Second                // [0, 255]s offset
		slope := time.Duration(1+int(slopeSec)%100) * time.Second   // 1..100 s per control unit
		lo, hi := 0.0, 10.0
		curve := &syntheticCurve{base: base, slope: slope}
		// Target strictly inside the bracket's delay range.
		f := 0.05 + 0.9*float64(frac)/255
		target := base + time.Duration(f*(hi-lo)*float64(slope))

		pt, err := calibrate(curve.evaluate, target, lo, hi, 12)
		if err != nil {
			return false
		}
		if !curve.probed(pt) {
			t.Logf("returned point %+v was never evaluated", pt)
			return false
		}
		if absDuration(pt.Delay-target) > calibrationTolerance {
			t.Logf("base=%v slope=%v target=%v got delay %v (off by %v)",
				base, slope, target, pt.Delay, absDuration(pt.Delay-target))
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestCalibrateReturnsProbedPointEvenOffTarget: when the target is
// unreachable (below the curve's floor or above its ceiling), calibrate
// still returns one of the evaluated points — never an interpolated or
// fabricated one.
func TestCalibrateReturnsProbedPointEvenOffTarget(t *testing.T) {
	for _, target := range []time.Duration{0, time.Hour} {
		curve := &syntheticCurve{base: 60 * time.Second, slope: 10 * time.Second}
		pt, err := calibrate(curve.evaluate, target, 0, 10, 12)
		if err != nil {
			t.Fatal(err)
		}
		if !curve.probed(pt) {
			t.Fatalf("target %v: returned point %+v was never evaluated", target, pt)
		}
	}
}

// TestCalibratePrefersCheaperPointWhenDelayFlattens pins the tolerance
// rule: once the delay curve flattens inside the tolerance band, the
// cheapest evaluated in-band point wins, not the first bracketing one.
func TestCalibratePrefersCheaperPointWhenDelayFlattens(t *testing.T) {
	// Delay saturates at base + 2*slope for controls past 2; energy keeps
	// falling with the control.
	curve := &syntheticCurve{base: 30 * time.Second, slope: 20 * time.Second, flattens: 2}
	target := 30*time.Second + 40*time.Second // the saturation delay
	pt, err := calibrate(curve.evaluate, target, 0, 10, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !curve.probed(pt) {
		t.Fatalf("returned point %+v was never evaluated", pt)
	}
	if absDuration(pt.Delay-target) > calibrationTolerance {
		t.Fatalf("delay %v outside tolerance of target %v", pt.Delay, target)
	}
	// Every in-band evaluated point must cost at least as much as the pick.
	for _, p := range curve.points {
		if absDuration(p.Delay-target) <= calibrationTolerance && p.EnergyJoules < pt.EnergyJoules {
			t.Fatalf("calibrate picked %.1f J but evaluated cheaper in-band point %.1f J (control %v)",
				pt.EnergyJoules, p.EnergyJoules, p.Control)
		}
	}
}

// TestCalibrateDelayHitsCache: calibration probes on a cacheable config
// land in the runner cache, so re-calibrating the same target is free and
// bit-identical.
func TestCalibrateDelayHitsCache(t *testing.T) {
	cfg := runnerConfig(t, 23, 15*time.Minute)
	r := NewRunner(2)
	factory := etrainKeyed(20)
	first, err := r.CalibrateDelay(cfg, factory, 40*time.Second, 0, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	size := r.CacheSize()
	if size == 0 {
		t.Fatal("calibration probes were not cached")
	}
	second, err := r.CalibrateDelay(cfg, factory, 40*time.Second, 0, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if r.CacheSize() != size {
		t.Fatalf("re-calibration recomputed points: cache grew %d -> %d", size, r.CacheSize())
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("re-calibration diverged: %+v vs %+v", first, second)
	}
}

func TestDeriveSeedDistinguishesControlBitPatterns(t *testing.T) {
	// The cache keys controls by their float bit pattern; make sure the
	// derived seeds do too (0.1+0.2 != 0.3 must be distinct identities).
	x, y := 0.1, 0.2 // runtime addition: 0.30000000000000004, not the constant 0.3
	a := randx.Derive(5, randx.DeriveString("etrain"), math.Float64bits(x+y))
	b := randx.Derive(5, randx.DeriveString("etrain"), math.Float64bits(0.3))
	if a == b {
		t.Fatal("distinct bit patterns derived the same seed")
	}
}

// benchmarkControls is a 16-point grid, the acceptance floor for the
// sequential-vs-parallel comparison.
var benchmarkControls = []float64{
	0, 0.25, 0.5, 0.75, 1, 1.5, 2, 2.5, 3, 3.5, 4, 5, 6, 7, 8, 10,
}

func benchmarkSweep(b *testing.B, workers int) {
	cfg := runnerConfig(b, 5, 30*time.Minute)
	factory := etrainKeyed(core.KInfinite)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fresh runner each iteration: the cache would otherwise turn every
		// iteration after the first into 16 map lookups.
		if _, err := NewRunner(workers).Sweep(cfg, factory, benchmarkControls); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepSequential(b *testing.B) { benchmarkSweep(b, 1) }
func BenchmarkSweepParallel(b *testing.B)  { benchmarkSweep(b, 4) }
