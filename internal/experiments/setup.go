package experiments

import (
	"fmt"
	"time"

	"etrain/internal/bandwidth"
	"etrain/internal/heartbeat"
	"etrain/internal/parallel"
	"etrain/internal/profile"
	"etrain/internal/radio"
	"etrain/internal/randx"
	"etrain/internal/sim"
	"etrain/internal/workload"
)

// constantTrace returns a flat bandwidth trace (bytes/second).
func constantTrace(bytesPerSecond float64, duration time.Duration) (*bandwidth.Trace, error) {
	return bandwidth.Constant(bytesPerSecond, duration)
}

// perfectEstimator returns a zero-lag, zero-noise channel estimator over
// the config's trace — the oracle the paper's future work would need.
func perfectEstimator(cfg sim.Config) *bandwidth.Estimator {
	return bandwidth.NewEstimator(cfg.Bandwidth, randx.New(0), 0, 0)
}

// defaultProfileTriple returns the f1/f2/f3 profiles sharing one deadline,
// in mail/weibo/cloud order.
func defaultProfileTriple(deadline time.Duration) []profile.Profile {
	return []profile.Profile{
		profile.Mail(deadline),
		profile.Weibo(deadline),
		profile.Cloud(deadline),
	}
}

// Options configures an experiment run.
type Options struct {
	// Seed drives all randomness; equal seeds reproduce exactly,
	// regardless of Workers.
	Seed int64
	// Horizon overrides the experiment's default simulated span.
	Horizon time.Duration
	// Workers bounds how many simulation runs execute concurrently:
	// 1 (or 0) runs sequentially, n > 1 fans runs across n workers, and
	// negative values mean one worker per CPU. Results are bit-identical
	// at every setting.
	Workers int
	// Runner, when non-nil, executes this experiment's sweeps and
	// calibrations; sharing one Runner across experiments shares its
	// worker budget and its result cache (overlapping grids are computed
	// once). When nil, each experiment builds a private runner from
	// Workers.
	Runner *sim.Runner
}

func (o Options) horizonOr(def time.Duration) time.Duration {
	if o.Horizon > 0 {
		return o.Horizon
	}
	return def
}

// workersOr1 resolves Options.Workers with sequential (not GOMAXPROCS) as
// the zero default, so plain Options{} keeps the historical behavior.
func (o Options) workersOr1() int {
	switch {
	case o.Workers == 0:
		return 1
	case o.Workers < 0:
		return parallel.Workers(0)
	default:
		return o.Workers
	}
}

// runner returns the experiment's executor: the shared one when set, a
// private one sized by Workers otherwise.
func (o Options) runner() *sim.Runner {
	if o.Runner != nil {
		return o.Runner
	}
	return sim.NewRunner(o.workersOr1())
}

// limit returns a fan-out pool for experiment-level parallelism (λ rows,
// per-user replays). It is distinct from the runner's leaf semaphore:
// parallel.Limit is not reentrant, so each layer gets its own pool.
func (o Options) limit() parallel.Limit {
	return parallel.NewLimit(o.workersOr1())
}

// paperHorizon is the 2-hour span of the paper's simulations (the length of
// its bandwidth trace).
const paperHorizon = 7200 * time.Second

// estimatorNoise is the relative error of the channel estimate fed to
// PerES/eTime; see DESIGN.md.
const estimatorNoise = 0.3

// buildSimConfig assembles the paper's default simulation (§VI-A): the
// QQ/WeChat/WhatsApp trio, cargo at the given λ, a synthetic 2-hour
// bandwidth trace and the Galaxy S4 radio. The strategy is left unset.
func buildSimConfig(opts Options, lambda float64) (sim.Config, error) {
	src := randx.New(opts.Seed)
	horizon := opts.horizonOr(paperHorizon)
	bw, err := bandwidth.Synthesize(src.Split(), horizon, nil)
	if err != nil {
		return sim.Config{}, err
	}
	specs, err := workload.SpecsForLambda(lambda)
	if err != nil {
		return sim.Config{}, err
	}
	packets, err := workload.Generate(src.Split(), specs, horizon)
	if err != nil {
		return sim.Config{}, err
	}
	cfg := sim.Config{
		Horizon:   horizon,
		Trains:    heartbeat.DefaultTrio(),
		Packets:   packets,
		Bandwidth: bw,
		Power:     radio.GalaxyS43G(),
		Seed:      opts.Seed,
		// The key names everything above: trace, workload, power and span
		// are all pure functions of (seed, horizon, lambda).
		CacheKey: fmt.Sprintf("default-sim/seed=%d/horizon=%s/lambda=%g", opts.Seed, horizon, lambda),
	}
	cfg.Estimator = bandwidth.NewEstimator(bw, src.Split(), time.Second, estimatorNoise)
	return cfg, nil
}
