package scenario

import (
	"context"
	"net"

	"etrain/internal/faultnet"
	"etrain/internal/randx"
	"etrain/internal/server"
)

// burstNamespace salts fault-burst injector seeds so a burst's fault
// schedule never aliases any other stream of the scenario seed.
var burstNamespace = randx.DeriveString("etrain/scenario/fault_burst")

// rig is the loopback engine's transport: in-process etraind servers
// reached over net.Pipe, with the scenario's fault bursts and server
// restart wired into each device's dialer.
//
// Determinism: faults wrap only the client side of each pipe (the
// server side stays clean, exactly like the chaos soak), injected
// latency is disabled, and each device's server sessions are
// serialized — a dial waits for the device's previous ServeConn
// goroutine to return before opening a fresh pipe. That wait closes
// the client-Resume-versus-server-park race. Crucially, faults are
// also confined to the client's READ direction (faultnet
// ReadFaultsOnly) and the restart cut counts response bytes: the
// server reads ahead of its decision writes through a bounded queue,
// so a write-side kill would salvage a scheduler-dependent number of
// response frames, while the read direction has a single consumer
// goroutine whose operation sequence is a pure function of the
// deterministic response stream. That is what makes even the healing
// counters (reconnects, resumes, replays, stints) pure functions of
// the scenario seed, fit for a byte-pinned report.
type rig struct {
	srvA *server.Server
	// srvB exists when the timeline holds a server_restart: dials after
	// the cut land here, and its empty resume registry is what makes
	// the restart observable (Resume misses, full Hello replay).
	srvB    *server.Server
	bursts  []burst
	restart *compiledEvent
}

// burst is one compiled fault_burst: an injector and its device scope.
type burst struct {
	inj   *faultnet.Injector
	match deviceMatcher
}

// newRig builds the transport for a compiled loopback scenario.
func newRig(c *compiled) (*rig, error) {
	// A timeline with overload_burst events installs the deterministic
	// admission policy on every rig server; without one Admission stays
	// nil and the byte stream is the legacy protocol exactly.
	scfg := server.Config{}
	if pol := newOverloadPolicy(c); pol != nil {
		scfg.Admission = pol
	}
	r := &rig{srvA: server.New(scfg)}
	for i := range c.events {
		ev := &c.events[i]
		switch ev.Action {
		case ActionFaultBurst:
			inj, err := faultnet.New(faultnet.Config{
				Seed:           randx.Derive(c.sc.Seed, burstNamespace, uint64(ev.index), uint64(ev.At.D())),
				Drop:           ev.Drop,
				Reset:          ev.Reset,
				Truncate:       ev.Truncate,
				ConnectFail:    ev.ConnectFail,
				ReadFaultsOnly: true,
			})
			if err != nil {
				return nil, err
			}
			r.bursts = append(r.bursts, burst{inj: inj, match: ev.match})
		case ActionServerRestart:
			r.restart = ev
		}
	}
	if r.restart != nil {
		// The replacement server shares the admission policy instance, so
		// a cargo shed before the restart is not re-shed after it.
		r.srvB = server.New(scfg)
	}
	return r, nil
}

// close drains the servers. All sessions have returned by the time the
// run calls it, so the drains are immediate.
func (r *rig) close() {
	ctx := context.Background()
	r.srvA.Shutdown(ctx)
	if r.srvB != nil {
		r.srvB.Shutdown(ctx)
	}
}

// burstFor returns the fault burst governing device i: the last
// matching burst in timeline order wins, so a later burst overrides an
// earlier fleet-wide one for its devices.
func (r *rig) burstFor(i int) *burst {
	for b := len(r.bursts) - 1; b >= 0; b-- {
		if r.bursts[b].match(i) {
			return &r.bursts[b]
		}
	}
	return nil
}

// dialState is one device's transport bookkeeping. It is only touched
// from the device's client goroutine: client.Run dials and writes from
// a single goroutine, so no locking is needed.
type dialState struct {
	rig    *rig
	device int
	// prev is closed when the device's previous ServeConn returns; the
	// next dial waits on it, serializing the device's server sessions.
	prev chan struct{}
	// cutLeft counts response bytes until the restart cut; -1 disarms.
	cutLeft int
	// restarted latches the cut: later dials go to srvB.
	restarted bool
}

// dialerFor builds device i's dial function, composing the restart cut
// (innermost), the serialized pipe dial, and the device's fault burst
// (outermost, wrapping only the client side). responseBytes is the
// encoded size of the fault-free response stream; the restart cut
// severs the connection a fraction At/Horizon of the way through it,
// which is deterministic because the client's reader goroutine is the
// only consumer of those bytes.
func (r *rig) dialerFor(c *compiled, i, responseBytes int) (func() (net.Conn, error), *dialState) {
	st := &dialState{rig: r, device: i, cutLeft: -1}
	if r.restart != nil {
		frac := float64(r.restart.At.D()) / float64(c.sc.Horizon.D())
		st.cutLeft = 1 + int(frac*float64(responseBytes))
	}
	dial := st.dial
	if b := r.burstFor(i); b != nil {
		dial = b.inj.Dialer(dial, uint64(i))
	}
	return dial, st
}

// dial opens one serialized loopback connection.
func (st *dialState) dial() (net.Conn, error) {
	if st.prev != nil {
		<-st.prev
	}
	srv := st.rig.srvA
	if st.restarted {
		srv = st.rig.srvB
	}
	cs, ss := net.Pipe()
	done := make(chan struct{})
	go func(conn net.Conn) {
		defer close(done)
		srv.ServeConn(conn)
	}(ss)
	st.prev = done
	if st.cutLeft >= 0 && !st.restarted {
		return &cutConn{Conn: cs, st: st}, nil
	}
	return cs, nil
}

// join waits for the device's last server session to unwind.
func (st *dialState) join() {
	if st.prev != nil {
		<-st.prev
	}
}

// cutConn is the server_restart trigger: it meters the response bytes
// the client reads and, when the quota is spent, kills the connection
// once — modeling the instant the old server process died. Subsequent
// dials see restarted and reach the replacement server. Reads clamp to
// the remaining quota so the cut lands at an exact byte offset of the
// deterministic response stream.
type cutConn struct {
	net.Conn
	st *dialState
}

func (c *cutConn) Read(p []byte) (int, error) {
	st := c.st
	if st.restarted {
		return 0, net.ErrClosed
	}
	if len(p) > st.cutLeft {
		p = p[:st.cutLeft]
	}
	n, err := c.Conn.Read(p)
	st.cutLeft -= n
	if st.cutLeft <= 0 {
		st.restarted = true
		c.Conn.Close()
	}
	return n, err
}
