package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"etrain/internal/stats"
	"etrain/internal/workload"
)

// testConfig is a small population that still exercises multiple shards,
// a ragged final shard and every activeness class.
func testConfig() Config {
	return Config{
		Devices:   40,
		ShardSize: 8,
		Seed:      7,
		Horizon:   2 * time.Minute,
		Theta:     4.0,
		K:         20,
	}
}

func mustRun(t *testing.T, cfg Config) *Report {
	t.Helper()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rep
}

func renderReport(t *testing.T, rep *Report) string {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.Fprint(&buf); err != nil {
		t.Fatalf("Fprint: %v", err)
	}
	return buf.String()
}

// TestRunDeterministicAcrossWorkers pins the headline contract: the
// rendered report is byte-identical at 1, 4 and 8 workers.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	base := testConfig()
	base.Workers = 1
	want := renderReport(t, mustRun(t, base))
	for _, workers := range []int{4, 8} {
		cfg := testConfig()
		cfg.Workers = workers
		if got := renderReport(t, mustRun(t, cfg)); got != want {
			t.Errorf("report at %d workers differs from 1 worker:\n%s\nvs\n%s", workers, got, want)
		}
	}
}

// TestRunAccounting checks the population bookkeeping: every device lands
// in exactly one class and the total row sums them.
func TestRunAccounting(t *testing.T) {
	rep := mustRun(t, testConfig())
	if rep.Total.Devices != 40 {
		t.Errorf("total devices %d, want 40", rep.Total.Devices)
	}
	sum := 0
	for _, row := range rep.Classes {
		sum += row.Agg.Devices
	}
	if sum != 40 {
		t.Errorf("class device counts sum to %d, want 40", sum)
	}
	if rep.Shards != 5 {
		t.Errorf("shards = %d, want 5", rep.Shards)
	}
	if rep.Total.WithoutJ.Mean() <= 0 {
		t.Error("degenerate run: zero baseline energy")
	}
	if rep.ConfigHash == "" {
		t.Error("empty config hash")
	}
}

// TestHaltResumeByteIdenticalAtEveryBoundary kills the run at every shard
// boundary, resumes from the snapshot, and requires the resumed report to
// match the uninterrupted one byte for byte.
func TestHaltResumeByteIdenticalAtEveryBoundary(t *testing.T) {
	cfg := testConfig()
	want := renderReport(t, mustRun(t, cfg))
	const shards = 5
	for k := 0; k < shards; k++ {
		k := k
		t.Run(fmt.Sprintf("halt_after_%d", k), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "fleet.ckpt")
			interrupted := cfg
			interrupted.CheckpointPath = path
			interrupted.CheckpointEvery = 1
			var completed atomic.Int64
			interrupted.Progress = func(done, total int) { completed.Store(int64(done)) }
			interrupted.Halt = func() bool { return completed.Load() >= int64(k) }
			if _, err := Run(interrupted); !errors.Is(err, ErrHalted) {
				t.Fatalf("interrupted run returned %v, want ErrHalted", err)
			}
			resumed := cfg
			resumed.CheckpointPath = path
			resumed.Resume = true
			start := -1
			resumed.Progress = func(done, total int) {
				if start == -1 {
					start = done
				}
			}
			rep := mustRun(t, resumed)
			if start < k {
				t.Errorf("resume restored %d shards, want at least %d", start, k)
			}
			if got := renderReport(t, rep); got != want {
				t.Errorf("resumed report differs from uninterrupted run:\n%s\nvs\n%s", got, want)
			}
		})
	}
}

// TestHaltResumeAcrossWorkerCounts interrupts a parallel run and resumes at
// a different worker count: the snapshot is worker-agnostic.
func TestHaltResumeAcrossWorkerCounts(t *testing.T) {
	cfg := testConfig()
	want := renderReport(t, mustRun(t, cfg))
	path := filepath.Join(t.TempDir(), "fleet.ckpt")
	interrupted := cfg
	interrupted.Workers = 4
	interrupted.CheckpointPath = path
	interrupted.CheckpointEvery = 1
	// Halt by poll count, not completion count: with 4 workers the last
	// shard's pre-start poll can race ahead of the first completions, so a
	// completion-based predicate may never fire. Letting exactly two
	// shards through guarantees ErrHalted whenever there are > 2 shards.
	var polls atomic.Int64
	interrupted.Halt = func() bool { return polls.Add(1) > 2 }
	if _, err := Run(interrupted); !errors.Is(err, ErrHalted) {
		t.Fatalf("interrupted run returned %v, want ErrHalted", err)
	}
	resumed := cfg
	resumed.Workers = 3
	resumed.CheckpointPath = path
	resumed.Resume = true
	if got := renderReport(t, mustRun(t, resumed)); got != want {
		t.Errorf("cross-worker resume differs:\n%s\nvs\n%s", got, want)
	}
}

// TestResumeFromCompleteCheckpoint resumes a finished run: nothing is
// simulated again and the report is unchanged.
func TestResumeFromCompleteCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.ckpt")
	full := testConfig()
	full.CheckpointPath = path
	want := renderReport(t, mustRun(t, full))
	resumed := testConfig()
	resumed.CheckpointPath = path
	resumed.Resume = true
	start := -1
	resumed.Progress = func(done, total int) {
		if start == -1 {
			start = done
		}
	}
	if got := renderReport(t, mustRun(t, resumed)); got != want {
		t.Errorf("resume-from-complete differs:\n%s\nvs\n%s", got, want)
	}
	if start != 5 {
		t.Errorf("resume restored %d shards, want all 5", start)
	}
}

// TestResumeRejectsMismatchedConfig: a snapshot from one simulation
// identity must not seed another.
func TestResumeRejectsMismatchedConfig(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.ckpt")
	full := testConfig()
	full.CheckpointPath = path
	mustRun(t, full)
	for name, mutate := range map[string]func(*Config){
		"seed":       func(c *Config) { c.Seed++ },
		"theta":      func(c *Config) { c.Theta = 1.0 },
		"shard_size": func(c *Config) { c.ShardSize = 10 },
		"horizon":    func(c *Config) { c.Horizon = 3 * time.Minute },
	} {
		cfg := testConfig()
		cfg.CheckpointPath = path
		cfg.Resume = true
		mutate(&cfg)
		if _, err := Run(cfg); !errors.Is(err, ErrCheckpointMismatch) {
			t.Errorf("%s mutation: Run returned %v, want ErrCheckpointMismatch", name, err)
		}
	}
}

// TestResumeRejectsCorruptCheckpoint covers the non-hash validation paths.
func TestResumeRejectsCorruptCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.ckpt")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.CheckpointPath = path
	cfg.Resume = true
	if _, err := Run(cfg); err == nil {
		t.Error("corrupt checkpoint accepted")
	}
	cfg.CheckpointPath = filepath.Join(t.TempDir(), "missing.ckpt")
	if _, err := Run(cfg); err == nil {
		t.Error("missing checkpoint accepted")
	}
}

// TestConfigValidation exercises normalize's error paths.
func TestConfigValidation(t *testing.T) {
	cases := map[string]func(*Config){
		"no_devices":     func(c *Config) { c.Devices = 0 },
		"neg_shard":      func(c *Config) { c.ShardSize = -1 },
		"neg_horizon":    func(c *Config) { c.Horizon = -time.Second },
		"neg_theta":      func(c *Config) { c.Theta = -1 },
		"neg_k":          func(c *Config) { c.K = -2 },
		"bad_alpha":      func(c *Config) { c.SketchAlpha = 1.5 },
		"neg_ckpt_every": func(c *Config) { c.CheckpointEvery = -1 },
		"resume_no_path": func(c *Config) { c.Resume = true },
		"bad_mix_weight": func(c *Config) { c.Mix = []workload.ClassShare{{Class: workload.ClassActive, Weight: -1}} },
	}
	for name, mutate := range cases {
		mutate := mutate
		t.Run(name, func(t *testing.T) {
			cfg := testConfig()
			mutate(&cfg)
			if _, _, err := cfg.normalize(); err == nil {
				t.Errorf("%s accepted", name)
			}
		})
	}
}

// TestNormalizeDefaults pins the documented zero-value behavior.
func TestNormalizeDefaults(t *testing.T) {
	norm, pop, err := (Config{Devices: 10}).normalize()
	if err != nil {
		t.Fatal(err)
	}
	if pop == nil {
		t.Fatal("nil population")
	}
	if norm.ShardSize != DefaultShardSize || norm.K != DefaultK || norm.Workers != 1 {
		t.Errorf("defaults: shard=%d k=%d workers=%d", norm.ShardSize, norm.K, norm.Workers)
	}
	if norm.Horizon != workload.SessionLength {
		t.Errorf("default horizon %v", norm.Horizon)
	}
	if norm.SketchAlpha != stats.DefaultSketchAlpha {
		t.Errorf("default alpha %v", norm.SketchAlpha)
	}
}

// TestHashIgnoresExecutionKnobs: worker count and checkpoint cadence are
// not part of the simulation identity; seed and layout are.
func TestHashIgnoresExecutionKnobs(t *testing.T) {
	base, _, err := testConfig().normalize()
	if err != nil {
		t.Fatal(err)
	}
	other := testConfig()
	other.Workers = 8
	other.CheckpointEvery = 3
	other.CheckpointPath = "x"
	normOther, _, err := other.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if base.hash() != normOther.hash() {
		t.Error("hash depends on execution knobs")
	}
	seeded := testConfig()
	seeded.Seed++
	normSeeded, _, err := seeded.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if base.hash() == normSeeded.hash() {
		t.Error("hash ignores seed")
	}
}
