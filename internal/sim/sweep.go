package sim

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"etrain/internal/parallel"
	"etrain/internal/sched"
)

// EDPoint is one point on an energy–delay panel (the paper's E-D panel,
// Fig. 7b / Fig. 8a).
type EDPoint struct {
	// Control is the tuning-parameter value that produced the point
	// (Θ for eTrain, Ω for PerES, V for eTime).
	Control float64
	// EnergyJoules is the run's total radio energy.
	EnergyJoules float64
	// Delay is the normalized delay.
	Delay time.Duration
	// ViolationRatio is the deadline violation ratio.
	ViolationRatio float64
}

// StrategyFactory builds a fresh strategy for a given control-parameter
// value. Strategies are stateful, so sweeps construct a new one per run.
type StrategyFactory func(control float64) (sched.Strategy, error)

// PointError records one failed sweep point.
type PointError struct {
	// Control is the control value whose run failed.
	Control float64
	// Err is the failure.
	Err error
}

func (e PointError) Error() string {
	return fmt.Sprintf("control %v: %v", e.Control, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e PointError) Unwrap() error { return e.Err }

// SweepError aggregates the failed points of a sweep. One failed point
// reports its control value without killing the whole panel: the sweep
// still returns every point that succeeded, and callers decide whether a
// partial panel is usable.
type SweepError struct {
	// Failures holds one entry per failed control, in input order.
	Failures []PointError
}

func (e *SweepError) Error() string {
	parts := make([]string, len(e.Failures))
	for i, f := range e.Failures {
		parts[i] = f.Error()
	}
	return fmt.Sprintf("sweep: %d point(s) failed: %s", len(e.Failures), strings.Join(parts, "; "))
}

// Unwrap exposes the per-point errors to errors.Is/As.
func (e *SweepError) Unwrap() []error {
	out := make([]error, len(e.Failures))
	for i, f := range e.Failures {
		out[i] = f.Err
	}
	return out
}

// Controls returns the failed control values in input order.
func (e *SweepError) Controls() []float64 {
	out := make([]float64, len(e.Failures))
	for i, f := range e.Failures {
		out[i] = f.Control
	}
	return out
}

// Sweep evaluates the configuration once per control value on the
// runner's pool and returns the E–D points of the successful runs in
// input order. When some points fail, the returned error is a *SweepError
// listing them, alongside the surviving points; the panel only comes back
// empty if every point failed.
func (r *Runner) Sweep(cfg Config, factory KeyedFactory, controls []float64) ([]EDPoint, error) {
	type slot struct {
		pt  EDPoint
		err error
	}
	results := make([]slot, len(controls))
	// Spawn bound: no point waking more goroutines than there are jobs or
	// worker slots; the leaf semaphore inside Point enforces the real
	// budget across concurrent sweeps.
	spawn := len(controls)
	if w := r.Workers(); w < spawn {
		spawn = w
	}
	_ = parallel.ForEach(parallel.NewLimit(spawn), len(controls), func(i int) error {
		pt, err := r.Point(cfg, factory, controls[i])
		results[i] = slot{pt: pt, err: err}
		return nil
	})

	points := make([]EDPoint, 0, len(controls))
	var sweepErr *SweepError
	for i, res := range results {
		if res.err != nil {
			if sweepErr == nil {
				sweepErr = &SweepError{}
			}
			sweepErr.Failures = append(sweepErr.Failures, PointError{Control: controls[i], Err: res.err})
			continue
		}
		points = append(points, res.pt)
	}
	if sweepErr != nil {
		return points, sweepErr
	}
	return points, nil
}

// Sweep runs the configuration once per control value sequentially and
// returns the E–D points in input order. It is the zero-setup entry
// point; use a Runner for parallelism, caching and partial-failure
// tolerance. The first failed point aborts the sweep, matching the
// historical contract.
func Sweep(cfg Config, factory StrategyFactory, controls []float64) ([]EDPoint, error) {
	points, err := NewRunner(1).Sweep(cfg, Keyed("", factory), controls)
	if err != nil {
		var se *SweepError
		if errors.As(err, &se) && len(se.Failures) > 0 {
			return nil, fmt.Errorf("sweep %w", se.Failures[0])
		}
		return nil, err
	}
	return points, nil
}

// calibrationTolerance is the delay slack within which calibration picks
// the cheapest point rather than the closest-delay one. Strategies whose
// delay curve flattens near the target (eTrain past its train-gap floor)
// would otherwise be charged for an arbitrary point on a steep energy
// gradient.
const calibrationTolerance = 4 * time.Second

// calibrate drives the bisection given an evaluator: it probes [lo, hi]
// assuming delay is non-decreasing in the control, then probes a few
// points past the bracket in case the delay curve flattens while energy
// keeps falling. Among evaluated points within calibrationTolerance of
// the target it returns the lowest-energy one; otherwise the
// closest-delay one. The returned point is always one the evaluator
// produced.
func calibrate(evaluate func(float64) (EDPoint, error), target time.Duration, lo, hi float64, iterations int) (EDPoint, error) {
	if iterations <= 0 {
		iterations = 12
	}

	var evaluated []EDPoint
	loPt, err := evaluate(lo)
	if err != nil {
		return EDPoint{}, err
	}
	evaluated = append(evaluated, loPt)

	hiPt, err := evaluate(hi)
	if err != nil {
		return EDPoint{}, err
	}
	evaluated = append(evaluated, hiPt)

	for i := 0; i < iterations; i++ {
		mid := (lo + hi) / 2
		pt, err := evaluate(mid)
		if err != nil {
			return EDPoint{}, err
		}
		evaluated = append(evaluated, pt)
		if pt.Delay < target {
			lo = mid
		} else {
			hi = mid
		}
	}

	// Bisection stops as soon as it brackets the target, but when the
	// delay curve flattens past it (energy still falling), cheaper
	// settings remain within tolerance at higher controls. Probe a few.
	pivot := (lo + hi) / 2
	for _, mult := range []float64{1.3, 1.7, 2.4} {
		ctrl := pivot * mult
		if ctrl <= pivot {
			break
		}
		pt, err := evaluate(ctrl)
		if err != nil {
			return EDPoint{}, err
		}
		evaluated = append(evaluated, pt)
		if absDuration(pt.Delay-target) > calibrationTolerance {
			break // delay left the tolerance band; further probes only worsen it
		}
	}

	best := evaluated[0]
	bestWithin := false
	for _, pt := range evaluated {
		within := absDuration(pt.Delay-target) <= calibrationTolerance
		switch {
		case within && !bestWithin:
			best, bestWithin = pt, true
		case within && bestWithin && pt.EnergyJoules < best.EnergyJoules:
			best = pt
		case !within && !bestWithin &&
			absDuration(pt.Delay-target) < absDuration(best.Delay-target):
			best = pt
		}
	}
	return best, nil
}

// CalibrateDelay finds, by bisection over [lo, hi], the control value
// whose run meets the target normalized delay, assuming delay is
// non-decreasing in the control (true for Θ, Ω and V); see calibrate for
// the selection rule. This mirrors the paper's Fig. 8b methodology:
// "picking the right value of Ω, V and Θ" so every strategy is compared
// at the same delay. Probes are inherently sequential (each depends on
// the last), but they hit the runner's cache, so repeated calibrations
// over one config and overlapping sweep grids never recompute a point.
func (r *Runner) CalibrateDelay(cfg Config, factory KeyedFactory, target time.Duration, lo, hi float64, iterations int) (EDPoint, error) {
	return calibrate(func(ctrl float64) (EDPoint, error) {
		return r.Point(cfg, factory, ctrl)
	}, target, lo, hi, iterations)
}

// CalibrateDelay is the zero-setup sequential form of
// Runner.CalibrateDelay.
func CalibrateDelay(cfg Config, factory StrategyFactory, target time.Duration, lo, hi float64, iterations int) (EDPoint, error) {
	return NewRunner(1).CalibrateDelay(cfg, Keyed("", factory), target, lo, hi, iterations)
}

func absDuration(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}
