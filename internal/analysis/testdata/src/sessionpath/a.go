// Package sessionpath stands in for the server's session processor loop:
// the combined hotalloc/errflow/wirecanon patrol faces it at once, the
// way the real replay path faces the whole vet suite.
package sessionpath

import "etrain/internal/wire"

// pump replays one batch of frames onto the transport.
//
//etrain:hotpath
func pump(w *wire.Writer, ids []uint64) {
	var pending []wire.Hello
	for _, id := range ids {
		pending = append(pending, wire.Hello{id, 0}) // want `append grows unpreallocated slice pending` `unkeyed Hello literal`
		w.Write(pending[len(pending)-1])             // want `error from .*Writer\.Write is dropped`
	}
}
