module etrain

go 1.22
