// Package sched defines the scheduling substrate shared by eTrain and the
// baseline strategies: per-app waiting queues (the Q_i of the paper), the
// slot context a strategy observes, and the Strategy interface the
// simulation engine drives.
package sched

import (
	"fmt"
	"time"

	"etrain/internal/heartbeat"
	"etrain/internal/workload"
)

// Queues is the set of per-cargo-app waiting queues Q_i. Iteration order is
// the registration order of apps, keeping every run deterministic.
type Queues struct {
	order []string
	byApp map[string][]workload.Packet
}

// NewQueues returns an empty queue set.
func NewQueues() *Queues {
	return &Queues{byApp: make(map[string][]workload.Packet)}
}

// Add enqueues a packet into its app's queue, registering the app on first
// use. Packets must be added in arrival order per app.
//
//etrain:hotpath
func (q *Queues) Add(p workload.Packet) {
	if _, ok := q.byApp[p.App]; !ok {
		q.order = append(q.order, p.App)
	}
	q.byApp[p.App] = append(q.byApp[p.App], p)
}

// Apps returns the registered app names in registration order.
func (q *Queues) Apps() []string {
	out := make([]string, len(q.order))
	copy(out, q.order)
	return out
}

// AppsView returns the registered app names in registration order without
// copying. Read-only, valid until the next Add that registers a new app —
// the allocation-free variant of Apps for per-slot scheduling loops.
func (q *Queues) AppsView() []string { return q.order }

// Len returns the total number of queued packets.
func (q *Queues) Len() int {
	n := 0
	for _, pkts := range q.byApp {
		n += len(pkts)
	}
	return n
}

// AppLen returns the number of packets queued for app.
func (q *Queues) AppLen(app string) int { return len(q.byApp[app]) }

// Packets returns a copy of app's queue in arrival order.
func (q *Queues) Packets(app string) []workload.Packet {
	src := q.byApp[app]
	out := make([]workload.Packet, len(src))
	copy(out, src)
	return out
}

// View returns app's queue in arrival order without copying. The returned
// slice is read-only and valid only until the next mutation of the queue
// set — it is the allocation-free variant of Packets for per-slot
// scheduling loops.
func (q *Queues) View(app string) []workload.Packet { return q.byApp[app] }

// Each calls fn for every queued packet in deterministic order (apps in
// registration order, packets in arrival order).
func (q *Queues) Each(fn func(p workload.Packet)) {
	for _, app := range q.order {
		for _, p := range q.byApp[app] {
			fn(p)
		}
	}
}

// PopByID removes and returns the packet with the given ID from app's
// queue. ok is false if no such packet is queued. Removal compacts the
// queue in place, reusing its backing array — Packets hands out copies,
// so no caller observes the shift.
//
//etrain:hotpath
func (q *Queues) PopByID(app string, id int) (workload.Packet, bool) {
	pkts := q.byApp[app]
	for i, p := range pkts {
		if p.ID == id {
			copy(pkts[i:], pkts[i+1:])
			pkts[len(pkts)-1] = workload.Packet{}
			q.byApp[app] = pkts[:len(pkts)-1]
			return p, true
		}
	}
	return workload.Packet{}, false
}

// PopHead removes and returns the head-of-line packet of app, compacting
// in place like PopByID so the queue's capacity is reused.
//
//etrain:hotpath
func (q *Queues) PopHead(app string) (workload.Packet, bool) {
	pkts := q.byApp[app]
	if len(pkts) == 0 {
		return workload.Packet{}, false
	}
	head := pkts[0]
	copy(pkts, pkts[1:])
	pkts[len(pkts)-1] = workload.Packet{}
	q.byApp[app] = pkts[:len(pkts)-1]
	return head, true
}

// CostAt returns P(t): the summed delay cost of every queued packet at
// instant now (paper Eq. 6).
func (q *Queues) CostAt(now time.Duration) float64 {
	total := 0.0
	q.Each(func(p workload.Packet) { total += p.Cost(now) })
	return total
}

// AppCostAt returns P_i(t) for one app.
func (q *Queues) AppCostAt(app string, now time.Duration) float64 {
	total := 0.0
	for _, p := range q.byApp[app] {
		total += p.Cost(now)
	}
	return total
}

// SpeculativeAppCostAt returns P̄_i(t): the cost app's queue would carry at
// the start of the next slot if nothing were transmitted — the speculative
// cost Σ φ_u(t) of the paper's drift objective.
func (q *Queues) SpeculativeAppCostAt(app string, nextSlot time.Duration) float64 {
	total := 0.0
	for _, p := range q.byApp[app] {
		total += p.Cost(nextSlot)
	}
	return total
}

// Oldest returns the earliest-arrived packet across all queues.
func (q *Queues) Oldest() (workload.Packet, bool) {
	var oldest workload.Packet
	found := false
	q.Each(func(p workload.Packet) {
		if !found || p.ArrivedAt < oldest.ArrivedAt {
			oldest = p
			found = true
		}
	})
	return oldest, found
}

// SlotContext is everything a strategy may observe when deciding slot t.
type SlotContext struct {
	// Now is the slot's start instant.
	Now time.Duration
	// SlotLength is the strategy's decision period.
	SlotLength time.Duration
	// HeartbeatNow reports whether at least one train departs this slot
	// (t = t_s(h) for some h ∈ H).
	HeartbeatNow bool
	// Beats lists the train departures of this slot (the observations the
	// heartbeat monitor would deliver); empty when HeartbeatNow is false.
	Beats []heartbeat.Beat
	// Queues is the live waiting-queue set; strategies remove the packets
	// they select.
	Queues *Queues
	// EstimateBandwidth returns the strategy-visible channel estimate in
	// bytes/second. It is nil for channel-oblivious operation; eTrain
	// never calls it, PerES and eTime depend on it.
	EstimateBandwidth func() float64
	// MeanBandwidth is the long-run average bandwidth in bytes/second,
	// which channel-aware strategies use as their quality reference.
	MeanBandwidth float64
}

// Strategy decides, slot by slot, which queued packets to hand to the radio.
type Strategy interface {
	// Name identifies the strategy in results and traces.
	Name() string
	// SlotLength returns the decision period (1 s for eTrain and PerES,
	// 60 s for eTime).
	SlotLength() time.Duration
	// Schedule removes from ctx.Queues the packets to transmit this slot
	// and returns them in transmission order (the Q*(t) of the paper).
	Schedule(ctx *SlotContext) []workload.Packet
}

// ValidateSelection verifies a strategy's bookkeeping in tests: every
// returned packet must be distinct.
func ValidateSelection(selected []workload.Packet) error {
	seen := make(map[int]bool, len(selected))
	for _, p := range selected {
		if seen[p.ID] {
			return fmt.Errorf("sched: packet %d selected twice", p.ID)
		}
		seen[p.ID] = true
	}
	return nil
}
