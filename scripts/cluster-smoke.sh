#!/usr/bin/env bash
# Cluster failover smoke, the CI cluster job's script (mirrored by
# `make cluster`): boot a controller plus three real etraind shard
# processes (race-instrumented builds), drive a device fleet through
# etrain-load -cluster, SIGKILL one shard mid-run, and require
#
#   1. every session still completes (zero decision loss: etrain-load
#      exits non-zero if any device fails),
#   2. the controller registered the death,
#   3. the fleet-wide merged stats block is byte-identical to a
#      single-process run of the same fleet.
#
# Determinism makes (3) the strong check: the per-device decision
# streams are pure functions of the device set, so the device-order
# fleet fold only matches if no decision was lost or altered by the
# failover.
set -euo pipefail
cd "$(dirname "$0")/.."

GO=${GO:-go}
DEVICES=${DEVICES:-200}
HORIZON=${HORIZON:-2m}
CONTROL=127.0.0.1:14800
OPS=127.0.0.1:14801
# The cluster run's etrain-load -json report (throughput, reroutes,
# failover-recovery percentiles); `make bench-cluster` points this at a
# path etrain-benchjson folds into BENCH_cluster.json.
CLUSTER_JSON=${CLUSTER_JSON:-}

WORK=$(mktemp -d)
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT

$GO build -race -o "$WORK/etraind" ./cmd/etraind
$GO build -race -o "$WORK/etrain-load" ./cmd/etrain-load
$GO build -o "$WORK/etrain-ctl" ./cmd/etrain-ctl
CTL="$WORK/etrain-ctl -ops http://$OPS"

# disown keeps bash from reporting the cleanup trap's kill -9 on exit.
"$WORK/etraind" -control "$CONTROL" -ops "$OPS" -beat-timeout 2s 2>"$WORK/ctrl.log" &
PIDS+=($!)
disown
for id in 1 2 3; do
    "$WORK/etraind" -addr "127.0.0.1:1481$id" -join "$CONTROL" -shard-id "$id" \
        -beat 100ms 2>"$WORK/shard$id.log" &
    eval "SHARD$id=$!"
    PIDS+=($!)
    disown
done
$CTL wait shards=3

# Single-process baseline of the same fleet over in-process loopback.
"$WORK/etrain-load" -devices "$DEVICES" -conns 8 -horizon "$HORIZON" -quiet \
    >"$WORK/single.txt"
grep '^fleet' "$WORK/single.txt" >"$WORK/single-fleet.txt"

# The cluster run, with shard 2 SIGKILLed once it is serving real
# sessions (the accepted total is fed by each shard's stats beat).
"$WORK/etrain-load" -cluster "$CONTROL" -devices "$DEVICES" -conns 8 \
    -horizon "$HORIZON" -quiet ${CLUSTER_JSON:+-json "$CLUSTER_JSON"} \
    >"$WORK/cluster.txt" &
LOAD=$!
PIDS+=($LOAD)
$CTL -timeout 60s wait "accepted=$((DEVICES / 10))"
kill -9 "$SHARD2"
echo "cluster-smoke: shard 2 killed mid-run"
wait "$LOAD"

$CTL -timeout 15s wait deaths=1
grep '^fleet' "$WORK/cluster.txt" >"$WORK/cluster-fleet.txt"
diff -u "$WORK/single-fleet.txt" "$WORK/cluster-fleet.txt"

echo "cluster-smoke: PASS"
grep -E '^(cluster|recovery)' "$WORK/cluster.txt" || true
cat "$WORK/cluster-fleet.txt"
