// Package ignores exercises the //lint:ignore directive machinery: a
// justified directive suppresses, an unjustified one is itself reported.
package ignores

import "time"

func justified() time.Time {
	//lint:ignore notime fixture: directive with a justification suppresses
	return time.Now()
}

func unjustified() time.Time {
	//lint:ignore notime
	return time.Now()
}

func wrongName() time.Time {
	//lint:ignore norand fixture: directive for a different analyzer does not suppress
	return time.Now()
}
