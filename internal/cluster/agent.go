package cluster

import (
	"context"
	"fmt"
	"net"
	"time"

	"etrain/internal/wire"
)

// DefaultBeatEvery is the default shard beat cadence (needs a Sleep).
const DefaultBeatEvery = time.Second

// AgentConfig parameterizes a shard's control-plane agent.
type AgentConfig struct {
	// ShardID identifies this shard on the ring. Required (nonzero).
	ShardID uint64
	// Advertise is the session address published in the route table —
	// what clients dial to reach this shard. Required.
	Advertise string
	// Dial opens a control connection to the controller. Required.
	Dial func() (net.Conn, error)
	// Stats, when non-nil, supplies the counter snapshot sent alongside
	// every beat.
	Stats func() wire.ShardStats
	// Overload, when non-nil, supplies the overload-counter snapshot
	// (refused, shed, busy-sent) sent after each stats frame. Nil keeps
	// the beat stream byte-identical to pre-overload agents.
	Overload func() wire.ShardOverload
	// BeatEvery is the beat cadence handed to Sleep (DefaultBeatEvery if
	// zero).
	BeatEvery time.Duration
	// Sleep imposes the beat cadence and redial backoff; it must be
	// ctx-aware or short for RunAgent to stop promptly. Required — an
	// agent that never sleeps would flood the controller.
	Sleep func(time.Duration)
	// OnRouteTable, when non-nil, receives every route table the
	// controller pushes (monotone epochs per connection).
	OnRouteTable func(wire.RouteTable)
	// Logf, when non-nil, receives connection and push reports.
	Logf func(format string, args ...any)
}

// RunAgent registers the shard with the controller and keeps it
// registered until ctx is done: ShardHello on connect, then a
// ShardBeat (plus ShardStats when configured) every BeatEvery. A lost
// control connection is redialed with the same cadence — the controller
// treats the gap as a death and the re-registration as a join, which is
// exactly right: routing moved away and comes back.
//
// The route-table reader goroutine spawned per connection is joined
// before the next redial and before RunAgent returns.
func RunAgent(ctx context.Context, cfg AgentConfig) error {
	if cfg.ShardID == 0 {
		return fmt.Errorf("cluster: agent: ShardID is required")
	}
	if cfg.Advertise == "" {
		return fmt.Errorf("cluster: agent: Advertise is required")
	}
	if cfg.Dial == nil {
		return fmt.Errorf("cluster: agent: Dial is required")
	}
	if cfg.Sleep == nil {
		return fmt.Errorf("cluster: agent: Sleep is required")
	}
	if cfg.BeatEvery <= 0 {
		cfg.BeatEvery = DefaultBeatEvery
	}

	var seq uint64
	for ctx.Err() == nil {
		conn, err := cfg.Dial()
		if err != nil {
			if cfg.Logf != nil {
				cfg.Logf("agent %d: control dial: %v", cfg.ShardID, err)
			}
			cfg.Sleep(cfg.BeatEvery)
			continue
		}
		agentConn(ctx, cfg, conn, &seq)
		if ctx.Err() == nil {
			cfg.Sleep(cfg.BeatEvery)
		}
	}
	return ctx.Err()
}

// agentConn runs one control connection to completion: register, then
// beat until the connection or the context dies. It closes conn and
// joins the reader before returning.
func agentConn(ctx context.Context, cfg AgentConfig, conn net.Conn, seq *uint64) {
	defer conn.Close()
	w := wire.NewWriter(conn)
	if err := w.Write(wire.ShardHello{ShardID: cfg.ShardID, Addr: cfg.Advertise}); err != nil {
		if cfg.Logf != nil {
			cfg.Logf("agent %d: hello: %v", cfg.ShardID, err)
		}
		return
	}

	// The reader consumes route-table pushes; it exits on the first read
	// error, and closing conn (our defer, or the write loop breaking out)
	// guarantees that error arrives.
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		r := wire.NewReader(conn)
		for {
			m, err := r.Next()
			if err != nil {
				return
			}
			if t, ok := m.(wire.RouteTable); ok && cfg.OnRouteTable != nil {
				cfg.OnRouteTable(t)
			}
		}
	}()
	// Close before joining (defers run LIFO): the reader is blocked in
	// Next and only the close releases it.
	defer func() {
		conn.Close()
		<-readerDone
	}()

	for ctx.Err() == nil {
		*seq++
		if err := w.Write(wire.ShardBeat{ShardID: cfg.ShardID, Seq: *seq}); err != nil {
			if cfg.Logf != nil {
				cfg.Logf("agent %d: beat: %v", cfg.ShardID, err)
			}
			return
		}
		if cfg.Stats != nil {
			s := cfg.Stats()
			s.ShardID = cfg.ShardID
			if err := w.Write(s); err != nil {
				if cfg.Logf != nil {
					cfg.Logf("agent %d: stats: %v", cfg.ShardID, err)
				}
				return
			}
		}
		if cfg.Overload != nil {
			o := cfg.Overload()
			o.ShardID = cfg.ShardID
			if err := w.Write(o); err != nil {
				if cfg.Logf != nil {
					cfg.Logf("agent %d: overload: %v", cfg.ShardID, err)
				}
				return
			}
		}
		cfg.Sleep(cfg.BeatEvery)
	}
}
