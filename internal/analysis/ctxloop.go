package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// fanOutPackages are the layers ctxloop patrols: the worker pool, the
// simulation runner that fans runs across it, the fleet engine that
// shards populations over the pool, the service layer whose accept
// loop and session reader/processor pairs spawn goroutines per
// connection, the resilience layer — the fault injector and the
// self-healing client, whose per-connection reader goroutines must join
// before an exchange returns — the scenario engine, whose loopback
// rig spawns a ServeConn goroutine per dial that the per-device join
// must collect, and the cluster control plane (plus its admin CLI),
// whose route-table pushes fan out a goroutine per member that the
// controller's WaitGroup must collect before shutdown. Stray goroutines
// here are exactly the ones that can outlive a sweep (or a drained
// server) and race its result slots. The diurnal workload engine and the
// radio models are patrolled too: both sit on the synthesis path whose
// results must fold in device-index order, so any future fan-out inside
// them is held to the same join discipline from day one.
var fanOutPackages = []string{
	"etrain/internal/parallel",
	"etrain/internal/sim",
	"etrain/internal/fleet",
	"etrain/internal/wire",
	"etrain/internal/server",
	"etrain/internal/faultnet",
	"etrain/internal/client",
	"etrain/internal/scenario",
	"etrain/internal/cluster",
	"etrain/internal/diurnal",
	"etrain/internal/radio",
	"etrain/cmd/etrain-ctl",
}

// CtxLoop checks goroutine hygiene in the fan-out layers:
//
//   - a `go func(){...}()` inside a loop must not capture the loop variable
//     through its closure — pass it as an argument (Go 1.22 gives loops
//     per-iteration variables, but the explicit-argument form is the
//     project style and keeps the dependency visible);
//   - every goroutine must have a join or cancellation path: a
//     WaitGroup.Done / Limit.Release call, a channel operation or select,
//     or a context reference. A fire-and-forget goroutine can outlive the
//     sweep that spawned it and race the next one's result slots.
var CtxLoop = &Analyzer{
	Name: "ctxloop",
	Doc: "flag goroutines in internal/parallel and internal/sim that " +
		"capture loop variables or have no join/cancellation path",
	Exempt: func(pkgPath string) bool {
		return !pathIsAny(pkgPath, fanOutPackages...)
	},
	Run: runCtxLoop,
}

// joinMethods are method names that tie a goroutine back to its pool.
var joinMethods = map[string]bool{
	"Done": true, "Release": true, "Signal": true, "Broadcast": true,
}

func runCtxLoop(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkGoStmts(pass, fn.Body, nil)
			return true
		})
	}
	return nil
}

// checkGoStmts walks a statement tree tracking the set of loop variables in
// scope, and checks every `go` statement it finds.
func checkGoStmts(pass *Pass, n ast.Node, loopVars []types.Object) {
	switch stmt := n.(type) {
	case *ast.ForStmt:
		vars := loopVars
		if init, ok := stmt.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
			for _, lhs := range init.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						vars = append(vars, obj)
					}
				}
			}
		}
		checkGoStmts(pass, stmt.Body, vars)
		return
	case *ast.RangeStmt:
		vars := loopVars
		for _, e := range []ast.Expr{stmt.Key, stmt.Value} {
			if id, ok := e.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					vars = append(vars, obj)
				}
			}
		}
		checkGoStmts(pass, stmt.Body, vars)
		return
	case *ast.GoStmt:
		checkGoStmt(pass, stmt, loopVars)
		// Still descend: the spawned function may itself contain loops
		// and nested go statements.
		if lit, ok := stmt.Call.Fun.(*ast.FuncLit); ok {
			checkGoStmts(pass, lit.Body, nil)
		}
		return
	}
	// Generic descent over any other node's children.
	children(n, func(c ast.Node) {
		checkGoStmts(pass, c, loopVars)
	})
}

// children invokes visit on the immediate children of n.
func children(n ast.Node, visit func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			visit(c)
		}
		return false
	})
}

func checkGoStmt(pass *Pass, stmt *ast.GoStmt, loopVars []types.Object) {
	lit, ok := stmt.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	// Loop-variable capture: an identifier inside the closure body that
	// resolves to an enclosing loop's variable. Variables passed as call
	// arguments re-enter the literal as parameters, which define fresh
	// objects and therefore do not trigger.
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || seen[obj] {
			return true
		}
		for _, lv := range loopVars {
			if obj == lv {
				seen[obj] = true
				pass.Reportf(id.Pos(),
					"goroutine closure captures loop variable %s; pass it as an argument (go func(%s ...){...}(%s))",
					id.Name, id.Name, id.Name)
			}
		}
		return true
	})
	if !hasJoinOrCancel(pass, lit) {
		pass.Reportf(stmt.Pos(),
			"goroutine has no join or cancellation path; tie it to the pool (WaitGroup.Done / Limit.Release), a channel, or a context")
	}
}

// hasJoinOrCancel reports whether the goroutine body references any join or
// cancellation mechanism.
func hasJoinOrCancel(pass *Pass, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.SelectStmt, *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok && joinMethods[sel.Sel.Name] {
				found = true
			}
			// Closing a channel signals waiters: a join path.
			if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "close" {
				found = true
			}
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[v]; obj != nil && isContextType(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
