package parallel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Fatalf("Workers(4) = %d", got)
	}
	if got := Workers(0); got < 1 {
		t.Fatalf("Workers(0) = %d, want >= 1", got)
	}
	if got := Workers(-3); got != Workers(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS default %d", got, Workers(0))
	}
}

func TestForEachRunsEveryJobAndSlotsByIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		n := 50
		out := make([]int, n)
		err := ForEach(NewLimit(workers), n, func(i int) error {
			out[i] = i * i
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var active, peak int64
	var mu sync.Mutex
	err := ForEach(NewLimit(workers), 40, func(int) error {
		cur := atomic.AddInt64(&active, 1)
		mu.Lock()
		if cur > peak {
			peak = cur
		}
		mu.Unlock()
		time.Sleep(time.Millisecond) // hold the slot so jobs overlap
		atomic.AddInt64(&active, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > workers {
		t.Fatalf("observed %d concurrent jobs, budget %d", peak, workers)
	}
}

func TestForEachAggregatesErrorsSortedByIndex(t *testing.T) {
	wantBad := map[int]bool{3: true, 7: true, 11: true}
	err := ForEach(NewLimit(4), 12, func(i int) error {
		if wantBad[i] {
			return fmt.Errorf("boom %d", i)
		}
		return nil
	})
	var errs Errors
	if !errors.As(err, &errs) {
		t.Fatalf("error type %T, want Errors", err)
	}
	if len(errs) != len(wantBad) {
		t.Fatalf("got %d errors, want %d: %v", len(errs), len(wantBad), errs)
	}
	prev := -1
	for _, ie := range errs {
		if !wantBad[ie.Index] {
			t.Fatalf("unexpected failed index %d", ie.Index)
		}
		if ie.Index <= prev {
			t.Fatalf("errors not sorted by index: %v", errs)
		}
		prev = ie.Index
	}
}

func TestForEachSequentialInline(t *testing.T) {
	// A 1-slot pool must preserve submission order exactly.
	var order []int
	err := ForEach(NewLimit(1), 10, func(i int) error {
		order = append(order, i) // no mutex: inline execution is the contract
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential pool ran out of order: %v", order)
		}
	}
}

func TestMapPartialFailureKeepsSurvivors(t *testing.T) {
	out, err := Map(NewLimit(4), 6, func(i int) (int, error) {
		if i == 2 {
			return 0, errors.New("nope")
		}
		return i + 1, nil
	})
	if err == nil {
		t.Fatal("want aggregated error")
	}
	for i, v := range out {
		want := i + 1
		if i == 2 {
			want = 0 // failed slot holds the zero value
		}
		if v != want {
			t.Fatalf("slot %d = %d, want %d", i, v, want)
		}
	}
}

func TestForEachZeroJobs(t *testing.T) {
	if err := ForEach(nil, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}
