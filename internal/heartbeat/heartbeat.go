// Package heartbeat models the "train" side of eTrain: the periodic
// keep-alive transmissions of IM and SNS apps, measured by the paper in
// §II (Table 1, Fig. 1b, Fig. 3).
//
// Android apps run their own heartbeat services with app-specific cycles
// (WeChat 270 s, WhatsApp 240 s, QQ 300 s, RenRen 300 s); NetEase News uses
// an adaptive cycle that starts at 60 s and doubles after every 6 beats up
// to 480 s; iOS funnels all apps through APNS with a shared 1800 s cycle.
// The package provides generative models of these apps, merged train
// schedules, and an online cycle detector that recovers the cycles from an
// observed packet stream the way the paper's Wireshark analysis did.
package heartbeat

import (
	"fmt"
	"sort"
	"time"
)

// CyclePolicy yields the interval that follows each heartbeat.
type CyclePolicy interface {
	// IntervalAfter returns the gap between heartbeat beatIndex and
	// beatIndex+1 (0-based: IntervalAfter(0) separates the first and
	// second beats).
	IntervalAfter(beatIndex int) time.Duration
}

// FixedCycle is a constant heartbeat cycle.
type FixedCycle time.Duration

var _ CyclePolicy = FixedCycle(0)

// IntervalAfter implements CyclePolicy.
func (c FixedCycle) IntervalAfter(int) time.Duration { return time.Duration(c) }

// AdaptiveCycle is NetEase News' backoff policy: start at Initial, multiply
// by Factor after every BeatsPerStep beats, never exceeding Max.
type AdaptiveCycle struct {
	Initial      time.Duration
	Factor       int
	BeatsPerStep int
	Max          time.Duration
}

var _ CyclePolicy = AdaptiveCycle{}

// IntervalAfter implements CyclePolicy.
func (c AdaptiveCycle) IntervalAfter(beatIndex int) time.Duration {
	if beatIndex < 0 {
		beatIndex = 0
	}
	interval := c.Initial
	steps := beatIndex / max(1, c.BeatsPerStep)
	for i := 0; i < steps; i++ {
		interval *= time.Duration(max(1, c.Factor))
		if c.Max > 0 && interval >= c.Max {
			return c.Max
		}
	}
	if c.Max > 0 && interval > c.Max {
		return c.Max
	}
	return interval
}

// TrainApp is one heartbeat-sending application.
type TrainApp struct {
	// Name identifies the app.
	Name string
	// PacketSize is the heartbeat payload in bytes.
	PacketSize int64
	// Policy yields the cycle sequence.
	Policy CyclePolicy
	// FirstAt is the phase: the virtual instant of the first heartbeat.
	FirstAt time.Duration
}

// Beat is one heartbeat instance on a merged schedule.
type Beat struct {
	// At is the transmission instant.
	At time.Duration
	// App names the sending application.
	App string
	// Size is the payload in bytes.
	Size int64
}

// Schedule returns every heartbeat instant of the app strictly before
// horizon.
func (a TrainApp) Schedule(horizon time.Duration) []Beat {
	var beats []Beat
	at := a.FirstAt
	for i := 0; at < horizon; i++ {
		beats = append(beats, Beat{At: at, App: a.Name, Size: a.PacketSize})
		step := a.Policy.IntervalAfter(i)
		if step <= 0 {
			break // a broken policy must not loop forever
		}
		at += step
	}
	return beats
}

// Merge combines the schedules of several train apps into one chronologically
// sorted train departure table (the set H of the paper).
func Merge(apps []TrainApp, horizon time.Duration) []Beat {
	var all []Beat
	for _, a := range apps {
		all = append(all, a.Schedule(horizon)...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].At < all[j].At })
	return all
}

// Paper §VI-A synthesizes heartbeats for QQ, WeChat and WhatsApp with cycles
// 300/270/240 s and sizes 378/74/66 B. RenRen and NetEase sizes are not
// reported; 200 B and 150 B are representative keep-alive payloads.
const (
	qqCycle       = 300 * time.Second
	weChatCycle   = 270 * time.Second
	whatsAppCycle = 240 * time.Second
	renRenCycle   = 300 * time.Second
	apnsCycle     = 1800 * time.Second
)

// QQ returns Mobile QQ's heartbeat model (300 s, 378 B).
func QQ() TrainApp {
	return TrainApp{Name: "qq", PacketSize: 378, Policy: FixedCycle(qqCycle)}
}

// WeChat returns WeChat's heartbeat model (270 s, 74 B).
func WeChat() TrainApp {
	return TrainApp{Name: "wechat", PacketSize: 74, Policy: FixedCycle(weChatCycle)}
}

// WhatsApp returns WhatsApp's heartbeat model (240 s, 66 B).
func WhatsApp() TrainApp {
	return TrainApp{Name: "whatsapp", PacketSize: 66, Policy: FixedCycle(whatsAppCycle)}
}

// RenRen returns RenRen SNS's heartbeat model (constant 300 s).
func RenRen() TrainApp {
	return TrainApp{Name: "renren", PacketSize: 200, Policy: FixedCycle(renRenCycle)}
}

// NetEase returns NetEase News' adaptive heartbeat model: 60 s initial
// cycle, doubling after every 6 beats, capped at 480 s (Fig. 3d).
func NetEase() TrainApp {
	return TrainApp{
		Name:       "netease",
		PacketSize: 150,
		Policy: AdaptiveCycle{
			Initial:      60 * time.Second,
			Factor:       2,
			BeatsPerStep: 6,
			Max:          480 * time.Second,
		},
	}
}

// APNS returns the iOS Apple Push Notification Service model: a single
// shared 1800 s heartbeat for all apps (Table 1, iPhone rows).
func APNS() TrainApp {
	return TrainApp{Name: "apns", PacketSize: 120, Policy: FixedCycle(apnsCycle)}
}

// DefaultTrio returns the three train apps of the paper's simulations
// (QQ, WeChat, WhatsApp) with staggered phases so their beats interleave.
// The phases deliberately avoid small residues modulo 60 s: the QQ and
// WhatsApp cycles are multiples of 60 s, so a phase near a 60 s boundary
// would systematically let 60 s-slotted strategies (eTime) merge heartbeat
// tails with their own bursts — a simulation artifact, not physics.
func DefaultTrio() []TrainApp {
	qq := QQ()
	wc := WeChat()
	wa := WhatsApp()
	qq.FirstAt = 33 * time.Second
	wc.FirstAt = 27 * time.Second
	wa.FirstAt = 89 * time.Second
	return []TrainApp{qq, wc, wa}
}

// Validate reports whether the app's configuration is usable.
func (a TrainApp) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("heartbeat: app has no name")
	}
	if a.PacketSize <= 0 {
		return fmt.Errorf("heartbeat: app %q has non-positive packet size %d", a.Name, a.PacketSize)
	}
	if a.Policy == nil {
		return fmt.Errorf("heartbeat: app %q has no cycle policy", a.Name)
	}
	if a.Policy.IntervalAfter(0) <= 0 {
		return fmt.Errorf("heartbeat: app %q has non-positive first interval", a.Name)
	}
	return nil
}
