// Package capture implements the paper's traffic-analysis methodology
// (§II-B): raw packet captures — timestamps and sizes, no app labels, as
// Wireshark would record them — are classified offline into flows, and
// heartbeat flows are identified by their telltale signature: small,
// constant-size packets recurring at a regular (or doubling) cycle, no
// matter how much data traffic is interleaved.
package capture

import (
	"fmt"
	"sort"
	"time"

	"etrain/internal/radio"
)

// Packet is one captured transmission: when it was sent and how large it
// was. No application label — that is what classification recovers.
type Packet struct {
	// At is the capture timestamp.
	At time.Duration
	// Size is the payload in bytes.
	Size int64
}

// FromTimeline strips a radio timeline down to an unlabeled capture.
func FromTimeline(tl *radio.Timeline) []Packet {
	txs := tl.Transmissions()
	out := make([]Packet, len(txs))
	for i, tx := range txs {
		out[i] = Packet{At: tx.Start, Size: tx.Size}
	}
	return out
}

// FlowKind classifies a size-group of captured packets.
type FlowKind int

// Flow kinds.
const (
	// FlowHeartbeat is a fixed-cycle keep-alive flow.
	FlowHeartbeat FlowKind = iota + 1
	// FlowAdaptiveHeartbeat is a backoff keep-alive flow (NetEase-style:
	// the cycle grows by doubling).
	FlowAdaptiveHeartbeat
	// FlowData is everything else.
	FlowData
)

// String returns the kind name.
func (k FlowKind) String() string {
	switch k {
	case FlowHeartbeat:
		return "heartbeat"
	case FlowAdaptiveHeartbeat:
		return "adaptive-heartbeat"
	case FlowData:
		return "data"
	default:
		return fmt.Sprintf("capture.FlowKind(%d)", int(k))
	}
}

// Flow is one classified size-group.
type Flow struct {
	// Size is the group's packet size (heartbeats are constant-size).
	Size int64
	// Count is the number of captured packets in the group.
	Count int
	// Kind is the classification.
	Kind FlowKind
	// Cycle is the detected heartbeat cycle (median gap) for
	// FlowHeartbeat.
	Cycle time.Duration
	// CycleMin and CycleMax bound the gaps for FlowAdaptiveHeartbeat
	// (the paper's "60-480s" style entries).
	CycleMin, CycleMax time.Duration
}

// Options tunes the classifier.
type Options struct {
	// Tolerance is the jitter allowed around the median gap; default 3 s.
	Tolerance time.Duration
	// MinBeats is the minimum group size considered; default 4.
	MinBeats int
	// RegularFraction is the fraction of gaps that must sit within
	// Tolerance of the median for a fixed cycle; default 0.7.
	RegularFraction float64
}

func (o *Options) defaults() {
	if o.Tolerance <= 0 {
		o.Tolerance = 3 * time.Second
	}
	if o.MinBeats <= 0 {
		o.MinBeats = 4
	}
	if o.RegularFraction <= 0 {
		o.RegularFraction = 0.7
	}
}

// Classify groups the capture by packet size and labels each group. Flows
// are returned sorted by size.
func Classify(packets []Packet, opts Options) []Flow {
	opts.defaults()
	groups := make(map[int64][]time.Duration)
	for _, p := range packets {
		groups[p.Size] = append(groups[p.Size], p.At)
	}
	sizes := make([]int64, 0, len(groups))
	for size := range groups {
		sizes = append(sizes, size)
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })

	flows := make([]Flow, 0, len(sizes))
	for _, size := range sizes {
		times := groups[size]
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		flows = append(flows, classifyGroup(size, times, opts))
	}
	return flows
}

// Heartbeats filters a classification down to its (fixed or adaptive)
// heartbeat flows.
func Heartbeats(flows []Flow) []Flow {
	var out []Flow
	for _, f := range flows {
		if f.Kind == FlowHeartbeat || f.Kind == FlowAdaptiveHeartbeat {
			out = append(out, f)
		}
	}
	return out
}

func classifyGroup(size int64, times []time.Duration, opts Options) Flow {
	flow := Flow{Size: size, Count: len(times), Kind: FlowData}
	if len(times) < opts.MinBeats {
		return flow
	}
	gaps := make([]time.Duration, 0, len(times)-1)
	for i := 1; i < len(times); i++ {
		gaps = append(gaps, times[i]-times[i-1])
	}
	sorted := make([]time.Duration, len(gaps))
	copy(sorted, gaps)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	median := sorted[len(sorted)/2]
	if median <= 0 {
		return flow
	}

	within := 0
	for _, g := range gaps {
		diff := g - median
		if diff < 0 {
			diff = -diff
		}
		if diff <= opts.Tolerance {
			within++
		}
	}
	if float64(within) >= opts.RegularFraction*float64(len(gaps)) {
		flow.Kind = FlowHeartbeat
		flow.Cycle = median
		flow.CycleMin = sorted[0]
		flow.CycleMax = sorted[len(sorted)-1]
		return flow
	}

	// Doubling backoff: every gap is (within tolerance) the minimum gap
	// times a power of two.
	min := sorted[0]
	if min > 0 && isDoubling(gaps, min, opts.Tolerance) {
		flow.Kind = FlowAdaptiveHeartbeat
		flow.CycleMin = min
		flow.CycleMax = sorted[len(sorted)-1]
		return flow
	}
	return flow
}

func isDoubling(gaps []time.Duration, base, tolerance time.Duration) bool {
	for _, g := range gaps {
		m := base
		matched := false
		for i := 0; i < 8; i++ {
			diff := g - m
			if diff < 0 {
				diff = -diff
			}
			if diff <= tolerance {
				matched = true
				break
			}
			m *= 2
		}
		if !matched {
			return false
		}
	}
	return true
}
