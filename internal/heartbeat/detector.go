package heartbeat

import (
	"sort"
	"time"
)

// Detector recovers per-app heartbeat cycles from an observed stream of
// heartbeat timestamps — the offline analysis the paper performed on
// Wireshark captures (§II-B), and the basis of eTrain's prediction that
// t_s(h_{i,j}) = t_s(h_{i,0}) + cycle_i·j.
type Detector struct {
	// Tolerance is the jitter allowed when declaring a cycle stable.
	Tolerance time.Duration

	observed map[string][]time.Duration
}

// NewDetector returns a detector with the given jitter tolerance.
func NewDetector(tolerance time.Duration) *Detector {
	return &Detector{
		Tolerance: tolerance,
		observed:  make(map[string][]time.Duration),
	}
}

// Observe records one heartbeat of the named app at virtual instant at.
// Observations must arrive in non-decreasing time order per app.
func (d *Detector) Observe(app string, at time.Duration) {
	d.observed[app] = append(d.observed[app], at)
}

// Count returns how many heartbeats of app were observed.
func (d *Detector) Count(app string) int { return len(d.observed[app]) }

// Apps returns the names of all observed apps, sorted.
func (d *Detector) Apps() []string {
	names := make([]string, 0, len(d.observed))
	for name := range d.observed {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Cycle estimates app's heartbeat cycle as the median inter-beat gap.
// It returns false until at least three beats were observed.
func (d *Detector) Cycle(app string) (time.Duration, bool) {
	beats := d.observed[app]
	if len(beats) < 3 {
		return 0, false
	}
	gaps := make([]time.Duration, 0, len(beats)-1)
	for i := 1; i < len(beats); i++ {
		gaps = append(gaps, beats[i]-beats[i-1])
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
	return gaps[len(gaps)/2], true
}

// Stable reports whether app's observed gaps all fall within Tolerance of
// the estimated cycle — true for the fixed-cycle IM apps, false for
// NetEase's doubling schedule.
func (d *Detector) Stable(app string) bool {
	cycle, ok := d.Cycle(app)
	if !ok {
		return false
	}
	beats := d.observed[app]
	for i := 1; i < len(beats); i++ {
		gap := beats[i] - beats[i-1]
		diff := gap - cycle
		if diff < 0 {
			diff = -diff
		}
		if diff > d.Tolerance {
			return false
		}
	}
	return true
}

// CycleRange returns the smallest and largest observed gap for app, which
// is how the paper reports NetEase's "60–480 s" entry in Table 1.
func (d *Detector) CycleRange(app string) (min, max time.Duration, ok bool) {
	beats := d.observed[app]
	if len(beats) < 2 {
		return 0, 0, false
	}
	min = beats[1] - beats[0]
	max = min
	for i := 2; i < len(beats); i++ {
		gap := beats[i] - beats[i-1]
		if gap < min {
			min = gap
		}
		if gap > max {
			max = gap
		}
	}
	return min, max, true
}

// PredictNext returns the predicted instant of app's next heartbeat after
// the last observation, using the estimated cycle. ok is false if no stable
// prediction is possible yet.
func (d *Detector) PredictNext(app string) (time.Duration, bool) {
	cycle, ok := d.Cycle(app)
	if !ok {
		return 0, false
	}
	beats := d.observed[app]
	return beats[len(beats)-1] + cycle, true
}

// PredictSeries returns the next n predicted heartbeat instants of app,
// following the paper's linear extrapolation t_0 + cycle·j.
func (d *Detector) PredictSeries(app string, n int) ([]time.Duration, bool) {
	cycle, ok := d.Cycle(app)
	if !ok || n <= 0 {
		return nil, false
	}
	beats := d.observed[app]
	last := beats[len(beats)-1]
	out := make([]time.Duration, n)
	for j := 1; j <= n; j++ {
		out[j-1] = last + cycle*time.Duration(j)
	}
	return out, true
}
