package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"etrain/internal/wire"
)

// startController serves a controller on a loopback TCP listener and
// tears it down with the test.
func startController(t *testing.T, cfg ControllerConfig) (*Controller, string) {
	t.Helper()
	c := NewController(cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go c.Serve(l)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := c.Shutdown(ctx); err != nil {
			t.Errorf("controller shutdown: %v", err)
		}
	})
	return c, l.Addr().String()
}

// testShard is a hand-driven shard control connection.
type testShard struct {
	t    *testing.T
	conn net.Conn
	r    *wire.Reader
	w    *wire.Writer
	wmu  sync.Mutex
}

// joinShard registers a shard over a fresh control connection.
func joinShard(t *testing.T, addr string, id uint64, advertise string) *testShard {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	s := &testShard{t: t, conn: conn, r: wire.NewReader(conn), w: wire.NewWriter(conn)}
	s.write(wire.ShardHello{ShardID: id, Addr: advertise})
	return s
}

func (s *testShard) write(m wire.Message) {
	s.t.Helper()
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if err := s.w.Write(m); err != nil {
		s.t.Fatalf("shard write %s: %v", m.MsgType(), err)
	}
}

// tableWith reads pushed frames until a route table whose member set is
// exactly want arrives, bounded by a read deadline.
func (s *testShard) tableWith(want ...uint64) wire.RouteTable {
	s.t.Helper()
	if err := s.conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		s.t.Fatal(err)
	}
	for {
		m, err := s.r.Next()
		if err != nil {
			s.t.Fatalf("waiting for route table %v: %v", want, err)
		}
		tbl, ok := m.(wire.RouteTable)
		if !ok {
			continue
		}
		if len(tbl.Shards) != len(want) {
			continue
		}
		match := true
		for i, id := range want {
			if tbl.Shards[i].ShardID != id {
				match = false
				break
			}
		}
		if match {
			return tbl
		}
	}
}

// TestControllerMembership: joins push epoch-increasing tables to every
// member, conn loss removes the member, and entries list ascending IDs.
func TestControllerMembership(t *testing.T) {
	_, addr := startController(t, ControllerConfig{RingSeed: 42})

	s2 := joinShard(t, addr, 2, "b:2")
	t1 := s2.tableWith(2)
	if t1.Seed != 42 || t1.Vnodes != DefaultVnodes {
		t.Fatalf("table carries seed %d vnodes %d, want 42 %d", t1.Seed, t1.Vnodes, DefaultVnodes)
	}

	s1 := joinShard(t, addr, 1, "a:1")
	t2 := s2.tableWith(1, 2)
	if t2.Epoch <= t1.Epoch {
		t.Fatalf("epoch %d after join, was %d", t2.Epoch, t1.Epoch)
	}
	if t2.Shards[0].Addr != "a:1" || t2.Shards[1].Addr != "b:2" {
		t.Fatalf("entries %+v", t2.Shards)
	}
	s1.tableWith(1, 2) // the joiner sees itself too

	// Conn loss is a death: the survivor gets a table without shard 1.
	s1.conn.Close()
	t3 := s2.tableWith(2)
	if t3.Epoch <= t2.Epoch {
		t.Fatalf("epoch %d after death, was %d", t3.Epoch, t2.Epoch)
	}
	s2.conn.Close()
}

// TestControllerDrain: draining removes the shard from the table while
// its registration (and stats flow) stays alive.
func TestControllerDrain(t *testing.T) {
	c, addr := startController(t, ControllerConfig{RingSeed: 42})
	s1 := joinShard(t, addr, 1, "a:1")
	s2 := joinShard(t, addr, 2, "b:2")
	defer s1.conn.Close()
	defer s2.conn.Close()
	s2.tableWith(1, 2)

	if err := c.Drain(1); err != nil {
		t.Fatal(err)
	}
	s2.tableWith(2)

	st := c.Status()
	if len(st.Shards) != 2 {
		t.Fatalf("drain dropped the registration: %+v", st.Shards)
	}
	if !st.Shards[0].Draining || st.Shards[1].Draining {
		t.Fatalf("draining flags: %+v", st.Shards)
	}
	if st.Drains != 1 {
		t.Fatalf("drains %d, want 1", st.Drains)
	}
	if err := c.Drain(99); err == nil {
		t.Fatal("draining an unknown shard succeeded")
	}
	if err := c.Drain(1); err != nil {
		t.Fatalf("re-draining errored: %v", err)
	}
}

// TestControllerBeatsAndStats: beats and counter snapshots land in
// Status and Totals, and sweep expiry under a fake clock removes a
// silent shard.
func TestControllerBeatsAndStats(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	c, addr := startController(t, ControllerConfig{RingSeed: 1, BeatTimeout: 10 * time.Second, Clock: clock})
	s1 := joinShard(t, addr, 7, "a:1")
	defer s1.conn.Close()
	s1.tableWith(7)
	s1.write(wire.ShardBeat{ShardID: 7, Seq: 3})
	s1.write(wire.ShardStats{ShardID: 7, Accepted: 5, Completed: 4, Active: 1, Decisions: 99, FramesOut: 120})

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := c.Status()
		if len(st.Shards) == 1 && st.Shards[0].BeatSeq == 3 && st.Shards[0].Stats != nil {
			if st.Shards[0].Stats.Decisions != 99 {
				t.Fatalf("stats %+v", st.Shards[0].Stats)
			}
			if st.Shards[0].BeatAgeMS != 0 {
				t.Fatalf("beat age %d with a frozen clock", st.Shards[0].BeatAgeMS)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("beat/stats never landed: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	tot := c.Totals()
	if tot.Accepted != 5 || tot.Decisions != 99 {
		t.Fatalf("totals %+v", tot)
	}

	// Sweep before the timeout: no-op. After: the silent shard dies.
	c.Sweep()
	if len(c.Status().Shards) != 1 {
		t.Fatal("sweep removed a fresh shard")
	}
	mu.Lock()
	now = now.Add(11 * time.Second)
	mu.Unlock()
	c.Sweep()
	if st := c.Status(); len(st.Shards) != 0 || st.Deaths != 1 {
		t.Fatalf("after expiry sweep: %+v", st)
	}
}

// TestControllerWatcher: a watcher subscribing with Ack{0} receives the
// current table immediately and pushes on every epoch change.
func TestControllerWatcher(t *testing.T) {
	_, addr := startController(t, ControllerConfig{RingSeed: 42})
	s1 := joinShard(t, addr, 1, "a:1")
	defer s1.conn.Close()
	s1.tableWith(1)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	watch := &testShard{t: t, conn: conn, r: wire.NewReader(conn), w: wire.NewWriter(conn)}
	watch.write(wire.Ack{Seq: 0})
	watch.tableWith(1)

	s2 := joinShard(t, addr, 2, "b:2")
	defer s2.conn.Close()
	watch.tableWith(1, 2)
}

// TestControllerRejectsBadFirstFrame: a session frame on the control
// port is refused outright.
func TestControllerRejectsBadFirstFrame(t *testing.T) {
	_, addr := startController(t, ControllerConfig{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.NewWriter(conn).Write(wire.Hello{DeviceID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.NewReader(conn).Next(); err == nil {
		t.Fatal("controller answered a session Hello on the control port")
	}
}

// TestOpsHandler drives the HTTP surface end to end.
func TestOpsHandler(t *testing.T) {
	c, addr := startController(t, ControllerConfig{RingSeed: 42})
	s1 := joinShard(t, addr, 3, "a:1")
	defer s1.conn.Close()
	s1.tableWith(3)
	s1.write(wire.ShardStats{ShardID: 3, Accepted: 8, Completed: 8, Parked: 2, Resumed: 2})
	deadline := time.Now().Add(5 * time.Second)
	for c.Totals().Accepted != 8 {
		if time.Now().After(deadline) {
			t.Fatal("stats never landed")
		}
		time.Sleep(time.Millisecond)
	}

	ops := httptest.NewServer(c.OpsHandler())
	defer ops.Close()

	resp, err := http.Get(ops.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	for _, want := range []string{
		"etrain_cluster_route_epoch ",
		"etrain_cluster_shards 1\n",
		"etrain_shard_up{shard=\"3\"} 1\n",
		"etrain_shard_sessions_parked{shard=\"3\"} 2\n",
		"etrain_shard_sessions_resumed{shard=\"3\"} 2\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	resp, err = http.Get(ops.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.Unmarshal([]byte(readAll(t, resp)), &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != 1 || st.Shards[0].ID != 3 {
		t.Fatalf("/status %+v", st)
	}

	resp, err = http.Get(ops.URL + "/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var sr sessionsReport
	if err := json.Unmarshal([]byte(readAll(t, resp)), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Shards != 1 || sr.Totals.Accepted != 8 {
		t.Fatalf("/sessions %+v", sr)
	}

	resp, err = http.Post(ops.URL+"/drain?shard=3", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/drain status %d", resp.StatusCode)
	}
	resp.Body.Close()
	if st := c.Status(); !st.Shards[0].Draining {
		t.Fatalf("drain did not take: %+v", st.Shards)
	}
	resp, err = http.Get(ops.URL + "/drain?shard=3")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /drain status %d, want 405", resp.StatusCode)
	}
	resp.Body.Close()
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
