package core

import (
	"time"

	"etrain/internal/sched"
	"etrain/internal/workload"
)

// Predictive is the hook-less ablation of eTrain's Heartbeat Monitor: it
// observes only the first warmupBeats heartbeats of each train app (the
// paper's assumption that t_s(h_{i,0}) and cycle_i suffice, since
// t_s(h_{i,j}) = t_s(h_{i,0}) + cycle_i·j), then drives the scheduler
// purely from the extrapolated timetable instead of live hook
// notifications.
//
// With perfectly periodic heartbeats this is indistinguishable from the
// hooked eTrain. With jittered or adaptive heartbeats the predictions
// drift away from the real departures, data stops riding the actual tails,
// and energy degrades — quantifying why the paper implements the Xposed
// hook rather than pure prediction (§V-2).
type Predictive struct {
	inner       *ETrain
	warmupBeats int

	observed map[string][]time.Duration
	cycle    map[string]time.Duration
	anchor   map[string]time.Duration
}

var _ sched.Strategy = (*Predictive)(nil)

// NewPredictive wraps an eTrain configuration with the prediction-driven
// monitor. warmupBeats is how many live observations per app are used to
// establish the cycle (minimum 2).
func NewPredictive(opts Options, warmupBeats int) (*Predictive, error) {
	inner, err := New(opts)
	if err != nil {
		return nil, err
	}
	if warmupBeats < 2 {
		warmupBeats = 2
	}
	return &Predictive{
		inner:       inner,
		warmupBeats: warmupBeats,
		observed:    make(map[string][]time.Duration),
		cycle:       make(map[string]time.Duration),
		anchor:      make(map[string]time.Duration),
	}, nil
}

// Name implements sched.Strategy.
func (p *Predictive) Name() string { return "etrain-predictive" }

// SlotLength implements sched.Strategy.
func (p *Predictive) SlotLength() time.Duration { return p.inner.SlotLength() }

// LearnedCycles reports the cycles established so far (for tests).
func (p *Predictive) LearnedCycles() map[string]time.Duration {
	out := make(map[string]time.Duration, len(p.cycle))
	for app, c := range p.cycle {
		out[app] = c
	}
	return out
}

// Schedule implements sched.Strategy.
func (p *Predictive) Schedule(ctx *sched.SlotContext) []workload.Packet {
	trainNow := false

	// Live observations are consumed only during each app's warmup.
	for _, b := range ctx.Beats {
		if _, learned := p.cycle[b.App]; learned {
			continue
		}
		obs := append(p.observed[b.App], b.At)
		p.observed[b.App] = obs
		trainNow = true // warmup beats are real observations; use them
		if len(obs) >= p.warmupBeats {
			gap := (obs[len(obs)-1] - obs[0]) / time.Duration(len(obs)-1)
			if gap > 0 {
				p.cycle[b.App] = gap
				p.anchor[b.App] = obs[len(obs)-1]
			}
		}
	}

	// Extrapolated timetable: does any learned app have a predicted beat
	// in this slot?
	if !trainNow {
		for app, cycle := range p.cycle {
			sinceAnchor := ctx.Now - p.anchor[app]
			if sinceAnchor < 0 {
				continue
			}
			// A predicted beat anchor + n·cycle (n ≥ 1) falls inside
			// [Now, Now+SlotLength) iff the distance to the next multiple
			// of the cycle is shorter than the slot.
			untilNext := (cycle - sinceAnchor%cycle) % cycle
			if untilNext < ctx.SlotLength && sinceAnchor+untilNext >= cycle {
				trainNow = true
				break
			}
		}
	}

	shadow := *ctx
	shadow.HeartbeatNow = trainNow
	return p.inner.Schedule(&shadow)
}
