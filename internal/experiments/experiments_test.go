package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestFig1aShape(t *testing.T) {
	tbl, err := Fig1a(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("got %d rows, want 4 (none..3 apps)", len(tbl.Rows))
	}
	// Radio energy strictly grows with the number of IM apps.
	prev := -1.0
	for _, row := range tbl.Rows {
		radioJ := parseF(t, row[2])
		if radioJ <= prev {
			t.Fatalf("radio energy not increasing: %v", tbl.Rows)
		}
		prev = radioJ
	}
	// With 3 apps the heartbeat share of standby energy is dominant.
	share := parseF(t, strings.TrimSuffix(tbl.Rows[3][5], "%"))
	if share < 70 {
		t.Fatalf("heartbeat share = %.0f%%, paper reports ~87%%", share)
	}
	// And the 4-hour total is in the paper's ~2000 J ballpark.
	total := parseF(t, tbl.Rows[3][4])
	if total < 800 || total > 3000 {
		t.Fatalf("3-app standby total = %.0f J, want O(2000 J)", total)
	}
	// §II-D: one app's heartbeats burn ~6% of the battery per 10 h.
	oneApp := parseF(t, strings.TrimSuffix(tbl.Rows[1][6], "%"))
	if oneApp < 4 || oneApp > 8 {
		t.Fatalf("one-app battery drain %.1f%%/10h, paper says ~6%%", oneApp)
	}
}

func TestFig1bOncePerMinute(t *testing.T) {
	tbl, err := Fig1b(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// ~12+13.3+15 beats per hour = ~40.
	if len(tbl.Rows) < 35 || len(tbl.Rows) > 45 {
		t.Fatalf("got %d beats in an hour, want ~40", len(tbl.Rows))
	}
}

func TestTable1Cycles(t *testing.T) {
	tbl, err := Table1(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"wechat":          "270s",
		"whatsapp":        "240s",
		"qq":              "300s",
		"renren":          "300s",
		"netease":         "60-480s",
		"all apps (APNS)": "1800s",
	}
	found := 0
	for _, row := range tbl.Rows {
		if cycle, ok := want[row[1]]; ok {
			found++
			if row[2] != cycle {
				t.Fatalf("%s detected cycle %s, want %s", row[1], row[2], cycle)
			}
		}
	}
	if found != len(want) {
		t.Fatalf("found %d of %d apps", found, len(want))
	}

	// The blind (unlabeled capture) rows must recover the same cycles by
	// packet size.
	blindWant := map[string]string{
		"66B flow":  "240s",
		"74B flow":  "270s",
		"150B flow": "60-480s",
		"200B flow": "300s",
		"378B flow": "300s",
	}
	blindFound := 0
	for _, row := range tbl.Rows {
		if row[0] != "android(blind)" {
			continue
		}
		cycle, ok := blindWant[row[1]]
		if !ok {
			t.Fatalf("unexpected blind flow %q", row[1])
		}
		if row[2] != cycle {
			t.Fatalf("blind %s cycle %s, want %s", row[1], row[2], cycle)
		}
		blindFound++
	}
	if blindFound != len(blindWant) {
		t.Fatalf("blind classification recovered %d of %d flows", blindFound, len(blindWant))
	}
}

func TestFig2SavingNearPaper(t *testing.T) {
	tbl, err := Fig2(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tbl.Rows))
	}
	without := parseF(t, tbl.Rows[0][4])
	with := parseF(t, tbl.Rows[1][4])
	saving := 1 - with/without
	// The idealized tail model yields a larger saving than the paper's
	// measured ~40% because the real power trace carries non-tail
	// overheads (promotion ramps, measurement noise) that dilute it.
	if saving < 0.30 || saving > 0.85 {
		t.Fatalf("toy saving = %.0f%%, want a substantial cut bracketing the paper's ~40%%", saving*100)
	}
}

func TestFig3NetEaseDoubling(t *testing.T) {
	tbl, err := Fig3(Options{})
	if err != nil {
		t.Fatal(err)
	}
	sawGap := map[string]bool{}
	for _, row := range tbl.Rows {
		if row[0] == "netease" && row[3] != "-" {
			sawGap[row[3]] = true
		}
	}
	for _, gap := range []string{"60", "120", "240", "480"} {
		if !sawGap[gap] {
			t.Fatalf("NetEase gap %ss missing; saw %v", gap, sawGap)
		}
	}
}

func TestFig4StateSequence(t *testing.T) {
	tbl, err := Fig4(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var states []string
	for _, row := range tbl.Rows {
		states = append(states, row[1])
	}
	want := []string{"IDLE", "DCH(tx)", "DCH", "FACH", "IDLE"}
	if len(states) != len(want) {
		t.Fatalf("state sequence %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("state sequence %v, want %v", states, want)
		}
	}
}

func TestFig6ProfileValues(t *testing.T) {
	tbl, err := Fig6(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// At d/deadline = 2: f1 = 1, f2 = 2, f3 = 4.
	for _, row := range tbl.Rows {
		if row[0] == "2.00" {
			if parseF(t, row[1]) != 1 || parseF(t, row[2]) != 2 || parseF(t, row[3]) != 4 {
				t.Fatalf("profile values at 2x deadline: %v", row)
			}
			return
		}
	}
	t.Fatal("row at d/deadline = 2 missing")
}

func TestFig7aTradeoff(t *testing.T) {
	tbl, err := Fig7a(Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 16 {
		t.Fatalf("rows = %d, want 16 (Θ 0..3 step 0.2)", len(tbl.Rows))
	}
	firstE := parseF(t, tbl.Rows[0][1])
	lastE := parseF(t, tbl.Rows[len(tbl.Rows)-1][1])
	firstD := parseF(t, tbl.Rows[0][2])
	lastD := parseF(t, tbl.Rows[len(tbl.Rows)-1][2])
	if reduction := 1 - lastE/firstE; reduction < 0.25 {
		t.Fatalf("Θ sweep saved only %.0f%%, paper ~40%%", reduction*100)
	}
	if lastD <= firstD {
		t.Fatalf("delay did not grow with Θ: %v -> %v", firstD, lastD)
	}
	if firstD < 5 || firstD > 35 {
		t.Fatalf("Θ=0 delay = %.1f s, paper ~18 s", firstD)
	}
}

func TestFig7bLargerKDominates(t *testing.T) {
	tbl, err := Fig7b(Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Notes carry the interpolated energy at 40 s delay per k.
	energies := map[string]float64{}
	for _, n := range tbl.Notes {
		var k int
		var e float64
		if _, err := fmt.Sscanf(n, "k=%d: ~%f J at 40 s delay", &k, &e); err == nil {
			energies[strconv.Itoa(k)] = e
		}
	}
	if len(energies) != 4 {
		t.Fatalf("parsed %d k-energies from notes %v", len(energies), tbl.Notes)
	}
	if !(energies["16"] <= energies["8"] && energies["8"] <= energies["2"]) {
		t.Fatalf("k ordering violated: %v", energies)
	}
	// The k 8->16 improvement is much smaller than 2->8.
	gain28 := energies["2"] - energies["8"]
	gain816 := energies["8"] - energies["16"]
	if gain28 < gain816 {
		t.Fatalf("k 2->8 gain %.0f J should exceed 8->16 gain %.0f J", gain28, gain816)
	}
}

func TestFig8aPanel(t *testing.T) {
	tbl, err := Fig8a(Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var baselineE float64
	maxE := 0.0
	for _, row := range tbl.Rows {
		e := parseF(t, row[2])
		if row[0] == "baseline" {
			baselineE = e
		}
		if e > maxE {
			maxE = e
		}
	}
	if baselineE != maxE {
		t.Fatalf("baseline %.0f J is not the panel maximum %.0f J", baselineE, maxE)
	}
}

func TestFig8bOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("fig8b calibrates 15 strategy/λ pairs")
	}
	tbl, err := Fig8b(Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 λ values", len(tbl.Rows))
	}
	prevBase := 0.0
	for _, row := range tbl.Rows {
		base := parseF(t, row[1])
		et := parseF(t, row[2])
		em := parseF(t, row[3])
		pr := parseF(t, row[4])
		if !(et < base && em < base && pr < base) {
			t.Fatalf("some strategy beat baseline at λ=%s: %v", row[0], row)
		}
		if et > em || et > pr {
			t.Fatalf("eTrain not best at λ=%s: etrain=%.0f etime=%.0f peres=%.0f", row[0], et, em, pr)
		}
		if base < prevBase*0.95 {
			t.Fatalf("baseline energy not non-decreasing in λ: %v", tbl.Rows)
		}
		prevBase = base
	}
}

func TestFig10aShape(t *testing.T) {
	tbl, err := Fig10a(Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	// Heartbeat energy grows with trains; NULL has none.
	if parseF(t, tbl.Rows[0][1]) != 0 {
		t.Fatalf("NULL heartbeat energy nonzero: %v", tbl.Rows[0])
	}
	if !(parseF(t, tbl.Rows[1][1]) < parseF(t, tbl.Rows[3][1])) {
		t.Fatal("heartbeat energy does not grow with trains")
	}
	// NULL delivers on arrival: delay ~0.
	if parseF(t, tbl.Rows[0][4]) > 3 {
		t.Fatalf("NULL delay = %s s, want ~0", tbl.Rows[0][4])
	}
	// Delay shrinks as trains are added (more piggyback opportunities).
	d1 := parseF(t, tbl.Rows[1][4])
	d3 := parseF(t, tbl.Rows[3][4])
	if d3 >= d1 {
		t.Fatalf("delay with 3 trains (%.1f) not below 1 train (%.1f)", d3, d1)
	}
}

func TestFig10bShape(t *testing.T) {
	tbl, err := Fig10b(Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	first := tbl.Rows[0]
	last := tbl.Rows[len(tbl.Rows)-1]
	if !(parseF(t, last[1]) < parseF(t, first[1])) {
		t.Fatalf("energy did not fall across Θ sweep: %v -> %v", first, last)
	}
	if !(parseF(t, last[2]) > parseF(t, first[2])) {
		t.Fatalf("delay did not grow across Θ sweep: %v -> %v", first, last)
	}
}

func TestFig10cShape(t *testing.T) {
	tbl, err := Fig10c(Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	first := tbl.Rows[0]
	last := tbl.Rows[len(tbl.Rows)-1]
	if !(parseF(t, last[1]) < parseF(t, first[1])) {
		t.Fatalf("larger deadline did not save energy: %v -> %v", first, last)
	}
	if !(parseF(t, last[2]) > parseF(t, first[2])) {
		t.Fatalf("larger deadline did not increase delay: %v -> %v", first, last)
	}
}

func TestFig11ActivenessOrdering(t *testing.T) {
	tbl, err := Fig11(Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 classes", len(tbl.Rows))
	}
	savedActive := parseF(t, tbl.Rows[0][4])
	savedModerate := parseF(t, tbl.Rows[1][4])
	savedInactive := parseF(t, tbl.Rows[2][4])
	if !(savedActive > savedModerate && savedModerate > savedInactive) {
		t.Fatalf("absolute savings not ordered by activeness: %v / %v / %v",
			savedActive, savedModerate, savedInactive)
	}
	if savedInactive < 0 {
		t.Fatal("eTrain lost energy for inactive users")
	}
}

func TestRegistryCoversAllExperiments(t *testing.T) {
	all := All()
	if len(all) != 17 {
		t.Fatalf("registry has %d entries, want 17", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Claim == "" {
			t.Fatalf("entry %s incomplete", e.ID)
		}
	}
	if _, err := ByID("fig7a"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id resolved")
	}
}

func TestTablePrinting(t *testing.T) {
	tbl := &Table{ID: "x", Title: "t", Columns: []string{"a", "bb"}}
	tbl.AddRow("1", 2.5)
	tbl.AddNote("n=%d", 7)
	var sb strings.Builder
	if err := tbl.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== x: t ==", "a", "bb", "2.50", "note: n=7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := &Table{ID: "x", Title: "t", Columns: []string{"a", "bb"}}
	tbl.AddRow("1", 2.5)
	tbl.AddNote("hello")
	var sb strings.Builder
	if err := tbl.Markdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"### x — t", "| a | bb |", "| --- | --- |", "| 1 | 2.50 |", "> hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}
