package core

import (
	"testing"
	"time"

	"etrain/internal/profile"
	"etrain/internal/sched"
	"etrain/internal/workload"
)

// TestAlgorithmOneWalkthrough drives the scheduler through a known scenario
// slot by slot and asserts every decision — a behavioural anchor for
// Algorithm 1 against regressions.
//
// Scenario (weibo deadline 60 s, Θ = 0.5, k = ∞):
//
//	t=10s  packet A arrives
//	t=20s  packet B arrives
//	t=41s  P(t) = (31+21)/60 ≈ 0.87 crosses Θ → K=1 releases the costlier A
//	t=42s  P(t) = 22/60 ≈ 0.37 < Θ → hold
//	t=70s  heartbeat → flush releases B
func TestAlgorithmOneWalkthrough(t *testing.T) {
	e, err := New(Options{Theta: 0.5, K: KInfinite})
	if err != nil {
		t.Fatal(err)
	}
	prof := profile.Weibo(60 * time.Second)
	q := sched.NewQueues()
	add := func(id int, at time.Duration) {
		q.Add(workload.Packet{ID: id, App: "weibo", ArrivedAt: at, Size: 2048, Profile: prof})
	}

	step := func(now time.Duration, hb bool) []workload.Packet {
		return e.Schedule(&sched.SlotContext{
			Now: now, SlotLength: time.Second, HeartbeatNow: hb, Queues: q,
		})
	}

	// t=11s: A just visible, cost 1/60 ≈ 0.017 < Θ → hold.
	add(1, 10*time.Second)
	if got := step(11*time.Second, false); len(got) != 0 {
		t.Fatalf("t=11s released %d packets, want 0 (P<Θ)", len(got))
	}

	// t=21s: B visible too; P = (11+1)/60 = 0.2 < Θ → hold.
	add(2, 20*time.Second)
	if got := step(21*time.Second, false); len(got) != 0 {
		t.Fatalf("t=21s released %d, want 0", len(got))
	}

	// t=40s: P = (30+20)/60 ≈ 0.83 ≥ Θ → K=1, the costlier (older) A goes.
	got := step(40*time.Second, false)
	if len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("t=40s released %v, want exactly packet 1", ids(got))
	}

	// t=41s: P = 21/60 = 0.35 < Θ → hold again.
	if got := step(41*time.Second, false); len(got) != 0 {
		t.Fatalf("t=41s released %d, want 0 (cost dropped below Θ)", len(got))
	}

	// t=70s: heartbeat flushes the rest regardless of Θ.
	got = step(70*time.Second, true)
	if len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("t=70s flushed %v, want packet 2", ids(got))
	}
	if q.Len() != 0 {
		t.Fatalf("queue not empty at the end: %d", q.Len())
	}
}

func ids(packets []workload.Packet) []int {
	out := make([]int, len(packets))
	for i, p := range packets {
		out[i] = p.ID
	}
	return out
}
