package experiments

import (
	"fmt"
	"time"

	"etrain/internal/baseline"
	"etrain/internal/core"
	"etrain/internal/heartbeat"
	"etrain/internal/offline"
	"etrain/internal/radio"
	"etrain/internal/randx"
	"etrain/internal/sim"
	"etrain/internal/workload"
)

// Ablations lists the design-choice studies that go beyond the paper's own
// figures: each isolates one decision DESIGN.md calls out.
func Ablations() []Entry {
	return []Entry{
		{"abl-offline-gap", "online Algorithm 1 vs the exact offline optimum (§III) on small instances", AblOfflineGap},
		{"abl-fast-dormancy", "tail piggybacking vs the fast-dormancy alternative of §VII", AblFastDormancy},
		{"abl-greedy-policy", "Eq. 9's costliest-first selection vs FIFO and cheapest-first", AblGreedyPolicy},
		{"abl-channel-oracle", "channel-obliviousness (§IV): does gating drips on channel estimates help?", AblChannelOracle},
		{"abl-predictive-monitor", "Xposed hook vs pure cycle prediction under heartbeat jitter (§V-2)", AblPredictiveMonitor},
		{"abl-radio-tech", "how eTrain's savings depend on the radio's tail: 3G vs LTE vs WiFi", AblRadioTech},
		{"abl-seed-robustness", "does the headline ordering survive across random seeds?", SeedRobustness},
	}
}

// AblRadioTech replays the default workload on three radio technologies.
// eTrain's benefit is proportional to the tail it amortizes: largest on
// LTE's hot ~11.6 s tail, near zero on WiFi's ~0.3 s PSM linger.
func AblRadioTech(opts Options) (*Table, error) {
	tbl := &Table{
		ID:      "abl-radio-tech",
		Title:   "eTrain savings by radio technology (Θ=6, k=∞, λ=0.08)",
		Columns: []string{"radio", "tail_s", "baseline_J", "etrain_J", "saved_J", "saving"},
	}
	radios := []struct {
		name  string
		model radio.PowerModel
	}{
		{"3G (Galaxy S4)", radio.GalaxyS43G()},
		{"LTE", radio.LTE()},
		{"WiFi", radio.WiFi()},
	}
	for _, r := range radios {
		cfg, err := buildSimConfig(opts, 0.08)
		if err != nil {
			return nil, err
		}
		cfg.Power = r.model
		cfg.Strategy = baseline.NewImmediate()
		base, err := sim.Run(cfg)
		if err != nil {
			return nil, err
		}
		strategy, err := core.New(core.Options{Theta: 6, K: core.KInfinite})
		if err != nil {
			return nil, err
		}
		cfg.Strategy = strategy
		et, err := sim.Run(cfg)
		if err != nil {
			return nil, err
		}
		saving := 0.0
		if base.Energy.Total() > 0 {
			saving = 1 - et.Energy.Total()/base.Energy.Total()
		}
		tbl.AddRow(r.name, r.model.TailTime().Seconds(),
			base.Energy.Total(), et.Energy.Total(),
			base.Energy.Total()-et.Energy.Total(), fmt.Sprintf("%.0f%%", saving*100))
	}
	tbl.AddNote("the relative saving is roughly scale-invariant (tails dominate all variants), but the absolute joules recovered track the tail: LTE's hot tail yields the biggest win, WiFi's sub-second linger leaves only tens of joules on the table")
	return tbl, nil
}

// AblOfflineGap measures the optimality gap of the online strategy on
// random small instances with a binding total delay-cost budget
// (constraint (4)): the exact branch-and-bound optimum is compared against
// the best eTrain run (over a Θ grid) whose accumulated cost stays within
// the same budget.
func AblOfflineGap(opts Options) (*Table, error) {
	const (
		instances  = 8
		instHorizn = 900 * time.Second
		bandwidth  = 200e3
	)
	tbl := &Table{
		ID:      "abl-offline-gap",
		Title:   "Online Algorithm 1 vs exact offline optimum under a cost budget",
		Columns: []string{"instance", "packets", "budget", "lower_J", "offline_J", "online_J", "gap"},
	}
	src := randx.New(opts.Seed + 11)
	bw, err := constantTrace(bandwidth, instHorizn)
	if err != nil {
		return nil, err
	}
	// A single sparse train (QQ, 300 s cycle) makes waiting expensive, so
	// the budget genuinely binds.
	qq := heartbeat.QQ()
	qq.FirstAt = 33 * time.Second
	beats := qq.Schedule(instHorizn)

	totalGap := 0.0
	counted := 0
	for i := 0; i < instances; i++ {
		n := 4 + src.Intn(4)
		var packets []workload.Packet
		for j := 0; j < n; j++ {
			packets = append(packets, workload.Packet{
				App:       "weibo",
				ArrivedAt: time.Duration(src.Intn(int(instHorizn.Seconds())-200)) * time.Second,
				Size:      int64(500 + src.Intn(4000)),
				Profile:   workload.WeiboSpec().Profile,
			})
		}
		sortPacketsByArrival(packets)
		for j := range packets {
			packets[j].ID = j
		}
		budget := 0.5 * float64(n)

		inst := offline.Instance{
			Beats:      beats,
			Packets:    packets,
			Power:      radio.GalaxyS43G(),
			Horizon:    instHorizn,
			Bandwidth:  bandwidth,
			CostBudget: budget,
		}
		lower, err := offline.LowerBound(inst)
		if err != nil {
			return nil, err
		}
		optimal, err := offline.Solve(inst)
		if err != nil {
			return nil, err
		}

		// Best online run within the same budget, over a Θ grid.
		bestOnline := -1.0
		for _, theta := range []float64{0.1, 0.25, 0.5, 0.75, 1, 1.5, 2, 3, 4, 6} {
			strategy, err := core.New(core.Options{Theta: theta, K: core.KInfinite})
			if err != nil {
				return nil, err
			}
			res, err := sim.Run(sim.Config{
				Horizon:   instHorizn,
				Beats:     beats,
				Packets:   packets,
				Bandwidth: bw,
				Power:     radio.GalaxyS43G(),
				Strategy:  strategy,
			})
			if err != nil {
				return nil, err
			}
			cost := 0.0
			for _, p := range res.Packets {
				cost += packets[p.ID].Profile.Cost(p.Delay)
			}
			if cost <= budget+1e-9 {
				if bestOnline < 0 || res.Energy.Total() < bestOnline {
					bestOnline = res.Energy.Total()
				}
			}
		}
		onlineCell := "infeasible"
		gapCell := "-"
		if bestOnline >= 0 && optimal.EnergyJoules > 0 {
			gap := bestOnline/optimal.EnergyJoules - 1
			totalGap += gap
			counted++
			onlineCell = fmt.Sprintf("%.2f", bestOnline)
			gapCell = fmt.Sprintf("%.1f%%", gap*100)
		}
		tbl.AddRow(i, n, budget, lower, optimal.EnergyJoules, onlineCell, gapCell)
	}
	if counted > 0 {
		tbl.AddNote("mean optimality gap %.1f%% across %d budget-feasible instances: with a binding cost budget the online heuristic pays a real but bounded premium over the NP-hard optimum (§III); without a budget both simply ride the next train and the gap vanishes",
			totalGap/float64(counted)*100, counted)
	}
	return tbl, nil
}

func sortPacketsByArrival(packets []workload.Packet) {
	for i := 1; i < len(packets); i++ {
		for j := i; j > 0 && packets[j].ArrivedAt < packets[j-1].ArrivedAt; j-- {
			packets[j], packets[j-1] = packets[j-1], packets[j]
		}
	}
}

// AblFastDormancy contrasts eTrain with the fast-dormancy technique the
// related work (§VII) proposes: cutting the tail right after each
// transmission at the price of a promotion delay (and signaling) on every
// radio wake-up.
func AblFastDormancy(opts Options) (*Table, error) {
	cfg, err := buildSimConfig(opts, 0.08)
	if err != nil {
		return nil, err
	}
	promo := cfg.Power
	promo.PromotionDelay = 2 * time.Second

	tbl := &Table{
		ID:    "abl-fast-dormancy",
		Title: "Standard tail + eTrain vs fast dormancy (promotion delay 2 s)",
		Columns: []string{"policy", "energy_J", "avg_delay_s",
			"promotions", "promotion_latency_s"},
	}

	cfg.Strategy = baseline.NewImmediate()
	base, err := sim.Run(cfg)
	if err != nil {
		return nil, err
	}
	et, err := core.New(core.Options{Theta: 6, K: core.KInfinite})
	if err != nil {
		return nil, err
	}
	cfg.Strategy = et
	etres, err := sim.Run(cfg)
	if err != nil {
		return nil, err
	}

	baseFD := base.Timeline.AccountFastDormancy(promo)
	txs := base.Timeline.Len()
	tbl.AddRow("baseline + standard tail", base.Energy.Total(),
		base.NormalizedDelay().Seconds(), 0, 0.0)
	tbl.AddRow("baseline + fast dormancy", baseFD.Total(),
		base.NormalizedDelay().Seconds()+promo.PromotionDelay.Seconds(),
		txs, float64(txs)*promo.PromotionDelay.Seconds())
	tbl.AddRow("eTrain + standard tail", etres.Energy.Total(),
		etres.NormalizedDelay().Seconds(), 0, 0.0)
	tbl.AddNote("fast dormancy trades tail energy for %d radio promotions (state-transition churn and +2 s latency on every transmission, including each IM heartbeat); eTrain keeps the standard mechanism (§VII)", txs)
	return tbl, nil
}

// AblGreedyPolicy compares Eq. 9's costliest-first selection against FIFO
// and cheapest-first under identical Θ/k.
func AblGreedyPolicy(opts Options) (*Table, error) {
	cfg, err := buildSimConfig(opts, 0.08)
	if err != nil {
		return nil, err
	}
	tbl := &Table{
		ID:      "abl-greedy-policy",
		Title:   "Packet selection rule ablation (Θ=2, k=∞)",
		Columns: []string{"policy", "energy_J", "delay_s", "violation", "total_cost"},
	}
	policies := []struct {
		name string
		sel  core.SelectionPolicy
	}{
		{"eq9 (paper)", core.SelectEq9},
		{"fifo", core.SelectFIFO},
		{"cheapest-first", core.SelectCheapest},
	}
	for _, pol := range policies {
		strategy, err := core.New(core.Options{Theta: 2, K: core.KInfinite, Selection: pol.sel})
		if err != nil {
			return nil, err
		}
		cfg.Strategy = strategy
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, err
		}
		totalCost := 0.0
		for _, p := range res.Packets {
			for _, orig := range cfg.Packets {
				if orig.ID == p.ID {
					totalCost += orig.Profile.Cost(p.Delay)
					break
				}
			}
		}
		tbl.AddRow(pol.name, res.Energy.Total(), res.NormalizedDelay().Seconds(),
			fmt.Sprintf("%.3f", res.DeadlineViolationRatio()), totalCost)
	}
	tbl.AddNote("measured finding: cheapest-first keeps P(t) above Θ longer, turning isolated Θ-drips into consecutive (tail-sharing) ones and saving energy at this Θ; Eq. 9 optimizes the per-slot drift bound, not long-run tail adjacency. Its advantage is robustness: it never starves the packet whose cost is exploding")
	return tbl, nil
}

// AblChannelOracle tests the paper's channel-obliviousness argument (§IV):
// gate eTrain's Θ-drips on a channel estimate — noisy (realistic) and
// perfect (oracle) — and compare with plain eTrain.
func AblChannelOracle(opts Options) (*Table, error) {
	tbl := &Table{
		ID:      "abl-channel-oracle",
		Title:   "Channel-gated drips vs channel-oblivious eTrain (Θ=4, k=∞)",
		Columns: []string{"variant", "energy_J", "delay_s", "violation"},
	}
	type variant struct {
		name    string
		theta   float64
		gated   bool
		perfect bool
	}
	for _, v := range []variant{
		{"oblivious, Θ=4 (paper)", 4, false, false},
		{"gated, noisy estimate, Θ=4", 4, true, false},
		{"gated, oracle estimate, Θ=4", 4, true, true},
		{"oblivious, Θ=6 (paper)", 6, false, false},
	} {
		cfg, err := buildSimConfig(opts, 0.08)
		if err != nil {
			return nil, err
		}
		if v.perfect {
			cfg.Estimator = perfectEstimator(cfg)
		}
		strategy, err := core.New(core.Options{Theta: v.theta, K: core.KInfinite, ChannelGated: v.gated})
		if err != nil {
			return nil, err
		}
		cfg.Strategy = strategy
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(v.name, res.Energy.Total(), res.NormalizedDelay().Seconds(),
			fmt.Sprintf("%.3f", res.DeadlineViolationRatio()))
	}
	tbl.AddNote("measured finding: gating saves some energy, but a noisy estimate performs as well as a perfect oracle — the gain comes from deferring drips (which then ride later trains), not from channel knowledge, and plain eTrain at a slightly higher Θ dominates the gated variant without any channel machinery. This is the paper's channel-obliviousness argument, quantified")
	return tbl, nil
}

// AblPredictiveMonitor compares the hook-driven monitor with pure cycle
// prediction under growing heartbeat jitter.
func AblPredictiveMonitor(opts Options) (*Table, error) {
	tbl := &Table{
		ID:      "abl-predictive-monitor",
		Title:   "Hooked monitor vs cycle prediction under heartbeat jitter",
		Columns: []string{"jitter_s", "hooked_J", "predicted_J", "hooked_delay_s", "predicted_delay_s"},
	}
	for _, jitter := range []time.Duration{0, time.Second, 5 * time.Second, 15 * time.Second} {
		cfg, err := buildSimConfig(opts, 0.08)
		if err != nil {
			return nil, err
		}
		jitterSrc := randx.New(opts.Seed + 31)
		cfg.Beats = heartbeat.MergeJittered(jitterSrc, heartbeat.DefaultTrio(), cfg.Horizon, jitter)

		hookStrategy, err := core.New(core.Options{Theta: 4, K: core.KInfinite})
		if err != nil {
			return nil, err
		}
		cfg.Strategy = hookStrategy
		hooked, err := sim.Run(cfg)
		if err != nil {
			return nil, err
		}

		predStrategy, err := core.NewPredictive(core.Options{Theta: 4, K: core.KInfinite}, 5)
		if err != nil {
			return nil, err
		}
		cfg.Strategy = predStrategy
		predicted, err := sim.Run(cfg)
		if err != nil {
			return nil, err
		}

		tbl.AddRow(fmt.Sprintf("%.0f", jitter.Seconds()),
			hooked.Energy.Total(), predicted.Energy.Total(),
			hooked.NormalizedDelay().Seconds(), predicted.NormalizedDelay().Seconds())
	}
	tbl.AddNote("with periodic heartbeats prediction matches the hook; jitter makes extrapolated departures miss the real tails, which is why eTrain instruments the send path (§V-2)")
	return tbl, nil
}
