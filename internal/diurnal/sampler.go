package diurnal

import (
	"sort"
	"time"

	"etrain/internal/heartbeat"
	"etrain/internal/randx"
)

// phaseNamespace salts per-device phase derivation so the phase never
// aliases any other seed-derived stream.
var phaseNamespace = randx.DeriveString("etrain/diurnal/phase")

// Sampler is a profile bound to one device: its class curve, its
// seed-derived phase offset and the clock mapping from sim time to
// diurnal time. Every method is a pure function of (profile, class,
// device seed, sim time) plus any explicit randx stream the caller
// passes in, so samplers preserve the fleet determinism contract.
type Sampler struct {
	prof  *Profile
	curve *Curve
	phase time.Duration
	scale float64
}

// ForDevice binds the profile to one device. class is the string form of
// the device's workload.ActivenessClass; deviceSeed is the device's
// identity-derived seed. The phase is computed with randx.Derive and
// consumes no stream state, so attaching a profile never shifts the
// device's other draws.
func (p *Profile) ForDevice(class string, deviceSeed int64) *Sampler {
	var phase time.Duration
	if p.PhaseJitter > 0 {
		u := float64(randx.Derive(deviceSeed, phaseNamespace)) / float64(1<<63)
		phase = time.Duration(u * float64(p.PhaseJitter))
	}
	return &Sampler{
		prof:  p,
		curve: p.CurveFor(class),
		phase: phase,
		scale: p.normalizedScale(),
	}
}

// Profile returns the profile the sampler was built from.
func (s *Sampler) Profile() *Profile { return s.prof }

// Phase returns the device's seed-derived phase offset.
func (s *Sampler) Phase() time.Duration { return s.phase }

// clock maps a sim instant onto the device's diurnal clock (phased).
func (s *Sampler) clock(simAt time.Duration) time.Duration {
	return s.prof.Start + s.phase + time.Duration(float64(simAt)*s.scale)
}

// eventClock maps a sim instant onto the fleet's diurnal clock —
// scheduled events deliberately ignore per-device phase so a push storm
// hits every device at the same sim instant.
func (s *Sampler) eventClock(simAt time.Duration) time.Duration {
	return s.prof.Start + time.Duration(float64(simAt)*s.scale)
}

// eventFactors returns the composed cargo and beat multipliers of every
// event active at fleet diurnal instant d. Inactive dimensions stay 1.
func (s *Sampler) eventFactors(d time.Duration) (cargo, beat float64) {
	cargo, beat = 1, 1
	for _, e := range s.prof.Events {
		if !e.active(d) {
			continue
		}
		if e.CargoFactor > 0 {
			cargo *= e.CargoFactor
		}
		if e.BeatFactor > 0 {
			beat *= e.BeatFactor
		}
	}
	return cargo, beat
}

// CargoFactor returns the cargo-rate multiplier at a sim instant: the
// device's phased activity level times any active scheduled events.
func (s *Sampler) CargoFactor(simAt time.Duration) float64 {
	cargo, _ := s.eventFactors(s.eventClock(simAt))
	return s.curve.Level(s.clock(simAt)) * cargo
}

// BeatFactor returns the heartbeat-cadence multiplier at a sim instant.
// Only scheduled events modulate cadence — apps keep their configured
// cycles through the daily curve (phones beat at night too), but a storm
// event can tighten or relax them fleet-wide.
func (s *Sampler) BeatFactor(simAt time.Duration) float64 {
	_, beat := s.eventFactors(s.eventClock(simAt))
	return beat
}

// MaxCargoFactor returns an upper bound on CargoFactor over all time,
// used as the thinning envelope for arrival generation.
func (s *Sampler) MaxCargoFactor() float64 {
	bound := s.curve.Max()
	for _, e := range s.prof.Events {
		if e.CargoFactor > 1 {
			bound *= e.CargoFactor
		}
	}
	return bound
}

// Arrivals generates the arrival instants of a non-homogeneous Poisson
// process over [0, horizon) whose instantaneous rate is
// CargoFactor(t)/meanGap, by thinning a homogeneous envelope process at
// the MaxCargoFactor bound. With a flat level-1 curve and no events this
// consumes more draws than randx.PoissonProcess but realizes the same
// law; expected count over any window integrates the activity curve
// (property-tested).
func (s *Sampler) Arrivals(src *randx.Source, meanGap, horizon time.Duration) []time.Duration {
	if meanGap <= 0 || horizon <= 0 {
		return nil
	}
	bound := s.MaxCargoFactor()
	if bound <= 0 {
		return nil
	}
	envelopeGap := meanGap.Seconds() / bound
	var out []time.Duration
	at := time.Duration(0)
	for {
		gap := src.Exp(envelopeGap)
		at += time.Duration(gap * float64(time.Second))
		if at >= horizon {
			return out
		}
		if src.Float64()*bound <= s.CargoFactor(at) {
			out = append(out, at)
		}
	}
}

// WindowWeight returns the integral of the device's activity level over
// the sim window [0, window), in sim-seconds. A flat level-1 curve gives
// exactly window.Seconds(); session synthesis scales its upload counts
// by WindowWeight/window so volume follows the curve's area.
func (s *Sampler) WindowWeight(window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return s.curve.Integral(s.clock(0), s.clock(window)) / s.scale
}

// PlaceInWindow maps a uniform draw u ∈ [0, 1) onto a sim instant in
// [0, window) distributed proportionally to the device's activity level
// (inverse-CDF over the phased curve). It is monotone in u, so sorted
// draws give sorted instants.
func (s *Sampler) PlaceInWindow(u float64, window time.Duration) time.Duration {
	if window <= 0 {
		return 0
	}
	if u < 0 {
		u = 0
	} else if u >= 1 {
		u = 1
	}
	a, b := s.clock(0), s.clock(window)
	area := s.curve.Integral(a, b)
	if area <= 0 {
		// Curve silent across the whole window: fall back to uniform.
		return time.Duration(u * float64(window))
	}
	target := s.curve.cum(a) + u*area
	d := s.curve.inverseCum(target)
	at := time.Duration(float64(d-a) / s.scale)
	if at < 0 {
		at = 0
	}
	if at >= window {
		at = window - 1 // float guard: stay inside the half-open window
	}
	return at
}

// ScaleBeat divides a heartbeat interval by the beat factor active when
// the interval starts: a factor-2 storm makes beats arrive twice as
// fast. The result is clamped below at 1 ms so a pathological factor can
// never stall a schedule walk.
func (s *Sampler) ScaleBeat(at, step time.Duration) time.Duration {
	f := s.BeatFactor(at)
	if f <= 0 || f == 1 {
		return step
	}
	scaled := time.Duration(float64(step) / f)
	if scaled < time.Millisecond {
		scaled = time.Millisecond
	}
	return scaled
}

// Schedule returns one app's heartbeat instants strictly before horizon,
// mirroring heartbeat.TrainApp.Schedule with ScaleBeat applied to every
// interval. Under a profile with no beat-modulating events it returns
// exactly the unmodulated schedule.
func (s *Sampler) Schedule(a heartbeat.TrainApp, horizon time.Duration) []heartbeat.Beat {
	var beats []heartbeat.Beat
	at := a.FirstAt
	for i := 0; at < horizon; i++ {
		beats = append(beats, heartbeat.Beat{At: at, App: a.Name, Size: a.PacketSize})
		step := a.Policy.IntervalAfter(i)
		if step <= 0 {
			break // a broken policy must not loop forever
		}
		at += s.ScaleBeat(at, step)
	}
	return beats
}

// Merge combines the modulated schedules of several train apps into one
// chronologically sorted departure table, the diurnal counterpart of
// heartbeat.Merge.
func (s *Sampler) Merge(apps []heartbeat.TrainApp, horizon time.Duration) []heartbeat.Beat {
	var all []heartbeat.Beat
	for _, a := range apps {
		all = append(all, s.Schedule(a, horizon)...)
	}
	// Mirror heartbeat.Merge's stable sort so equal instants keep app order.
	sort.SliceStable(all, func(i, j int) bool { return all[i].At < all[j].At })
	return all
}
