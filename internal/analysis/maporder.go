package analysis

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `range` over a map inside output-writing functions: golden
// files, rendered tables and power traces must be byte-identical across
// runs, and Go's map iteration order is deliberately randomized. Two shapes
// are reported:
//
//   - a map range whose body writes directly (fmt.Fprintf, Writer.Write,
//     strings.Builder.WriteString, ...): always a bug — the write order is
//     the map order;
//   - a map range anywhere in a function that writes output, unless a
//     sort.*/slices.* call follows the loop (the collect-keys-then-sort
//     idiom), because values collected in map order otherwise reach the
//     writer unsorted (and even float accumulation is order-sensitive).
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag map iteration inside output-writing functions unless the " +
		"keys are sorted before rendering",
	Run: runMapOrder,
}

// writerMethods are method names treated as output sinks. Receiver types are
// not filtered: the check only fires when a map range is also present, and
// a Write-named method on any receiver in that situation deserves a look.
var writerMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"WriteTo":     true,
}

// fmtOutputFuncs are the fmt functions that emit to a writer or stdout.
// Sprint* is deliberately absent: building strings inside a map loop and
// sorting them afterwards is the sanctioned idiom.
var fmtOutputFuncs = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func runMapOrder(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkMapOrderFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkMapOrderFunc(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// checkMapOrderFunc evaluates one function body. Nested function literals
// are skipped here (the Inspect in runMapOrder visits them as their own
// units).
func checkMapOrderFunc(pass *Pass, body *ast.BlockStmt) {
	var (
		mapRanges   []*ast.RangeStmt
		outputCalls []*ast.CallExpr
		sortCalls   []*ast.CallExpr
	)
	walkFuncBody(body, func(n ast.Node) {
		switch v := n.(type) {
		case *ast.RangeStmt:
			if isMapType(pass, v.X) {
				mapRanges = append(mapRanges, v)
			}
		case *ast.CallExpr:
			if isOutputCall(pass, v) {
				outputCalls = append(outputCalls, v)
			}
			if isSortCall(pass, v) {
				sortCalls = append(sortCalls, v)
			}
		}
	})
	if len(mapRanges) == 0 || len(outputCalls) == 0 {
		return
	}
	for _, rng := range mapRanges {
		writesInBody := false
		for _, call := range outputCalls {
			if call.Pos() >= rng.Body.Pos() && call.End() <= rng.Body.End() {
				writesInBody = true
				break
			}
		}
		if writesInBody {
			pass.Reportf(rng.Pos(),
				"map iterated in randomized order while writing output; collect the keys, sort them, then render")
			continue
		}
		sortedAfter := false
		for _, call := range sortCalls {
			if call.Pos() >= rng.End() {
				sortedAfter = true
				break
			}
		}
		if !sortedAfter {
			pass.Reportf(rng.Pos(),
				"map iteration feeds an output-writing function with no sort between loop and render; map order leaks into the output")
		}
	}
}

// walkFuncBody visits every node of body except nested function literals.
func walkFuncBody(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// isMapType reports whether expr has a map type.
func isMapType(pass *Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// isOutputCall reports whether call writes to a writer or stdout.
func isOutputCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if ident, ok := sel.X.(*ast.Ident); ok {
		if pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName); ok {
			return pkgName.Imported().Path() == "fmt" && fmtOutputFuncs[sel.Sel.Name]
		}
	}
	// Method call: treat Write-family names as sinks.
	return writerMethods[sel.Sel.Name]
}

// isSortCall reports whether call invokes the sort or slices package.
func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
	if !ok {
		return false
	}
	path := pkgName.Imported().Path()
	return path == "sort" || path == "slices"
}
