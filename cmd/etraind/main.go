// Command etraind is the network-facing eTrain scheduling daemon: it
// listens for device connections and hosts one wire-protocol session per
// connection (DESIGN.md §10).
//
// Usage:
//
//	go run ./cmd/etraind -addr :4810
//	go run ./cmd/etrain-load -addr 127.0.0.1:4810 -devices 1000
//
// A session that loses its connection mid-protocol parks for
// -resume-grace and a reconnecting client adopts it with a Resume
// handshake, replaying only the unacknowledged tail (DESIGN.md §11).
//
// Ctrl-C / SIGTERM starts a graceful drain: new connections are refused,
// parked sessions are discarded, running sessions finish — the
// -drain-timeout deadline is armed on every open connection, so wedged
// peers cannot stall the drain — and after -drain-timeout whatever
// remains is force-closed. The final counters go to stderr.
//
// # Cluster modes (DESIGN.md §13)
//
// One binary plays both cluster roles. As the control plane:
//
//	go run ./cmd/etraind -control :4800 -ops :4801
//
// runs the controller alone (no session listener): shards register over
// -control, the route table rebuilds on every membership change, and the
// ops HTTP surface on -ops serves /metrics, /status, /shards, /sessions,
// /table and POST /drain for cmd/etrain-ctl. A shard silent past
// -beat-timeout is swept dead.
//
// As a shard:
//
//	go run ./cmd/etraind -addr :4810 -join 127.0.0.1:4800 -shard-id 1
//
// serves sessions as usual while a control-plane agent keeps the shard
// registered: ShardHello on connect, a beat plus a counter snapshot
// every -beat. When a pushed route table no longer lists this shard
// (drained or swept), the server turns lame-duck — new connections are
// refused while in-flight sessions finish — and recovers if a later
// table lists it again.
//
// This command is a wall-clock boundary of the service subsystem: the
// clock injected here arms connection deadlines and drives beats and
// sweeps, while internal/server and internal/cluster never read time —
// a session's decisions remain a pure function of its inbound frames.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"etrain/internal/cluster"
	"etrain/internal/server"
	"etrain/internal/wire"
)

func main() {
	addr := flag.String("addr", ":4810", "session listen address")
	maxConns := flag.Int("max-conns", 0, "concurrent connection cap (0: default 4096)")
	queueDepth := flag.Int("queue-depth", 0, "per-session event queue bound (0: default 64)")
	idle := flag.Duration("idle-timeout", 2*time.Minute, "max wait for a client's next frame (0: none)")
	writeTimeout := flag.Duration("write-timeout", 30*time.Second, "max duration of one frame write (0: none)")
	drain := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget before force-closing sessions")
	resumeGrace := flag.Duration("resume-grace", server.DefaultResumeGrace, "how long a disconnected session stays resumable (negative: disable resume)")
	retainLimit := flag.Int("retain-limit", 0, "max parked sessions awaiting resume (0: default 1024)")

	admissionRate := flag.Float64("admission-rate", 0, "token-bucket hello admission rate per second (0: admission control off, legacy silent-close behaviour)")
	admissionBurst := flag.Float64("admission-burst", 0, "token-bucket hello burst (with -admission-rate; 0: default)")
	admissionHighWater := flag.Int("admission-highwater", 0, "per-session queue depth past which cargo is shed with Busy (with -admission-rate; 0: never shed)")
	admissionRetryAfter := flag.Duration("admission-retry-after", 0, "retry-after hint carried in Busy frames (with -admission-rate; 0: default)")

	control := flag.String("control", "", "run as the cluster controller on this control address (no session listener)")
	ops := flag.String("ops", "", "controller ops HTTP listen address (with -control)")
	ringSeed := flag.Int64("ring-seed", 42, "consistent-hash ring seed published in the route table (with -control)")
	vnodes := flag.Int("vnodes", 0, "ring virtual nodes per shard (with -control; 0: default)")
	beatTimeout := flag.Duration("beat-timeout", cluster.DefaultBeatTimeout, "sweep a shard silent this long (with -control)")
	snapshot := flag.String("snapshot", "", "controller state snapshot path: loaded at boot when present, rewritten on every sweep tick and at shutdown (with -control)")
	rejoinGrace := flag.Duration("rejoin-grace", cluster.DefaultRejoinGrace, "post-restore window during which restored members are shielded from sweeps (with -control -snapshot)")

	join := flag.String("join", "", "controller control address to register with (shard mode)")
	shardID := flag.Uint64("shard-id", 0, "this shard's ring ID (with -join)")
	advertise := flag.String("advertise", "", "session address published in the route table (with -join; default: the -addr listener's address)")
	beat := flag.Duration("beat", cluster.DefaultBeatEvery, "shard beat cadence (with -join)")
	flag.Parse()

	logger := log.New(os.Stderr, "etraind: ", log.LstdFlags)
	if *control != "" && *join != "" {
		logger.Fatal("-control and -join are mutually exclusive: a process is the controller or a shard")
	}
	if *control != "" {
		runController(logger, controllerFlags{
			control: *control, ops: *ops, ringSeed: *ringSeed,
			vnodes: *vnodes, beatTimeout: *beatTimeout, drain: *drain,
			snapshot: *snapshot, rejoinGrace: *rejoinGrace,
		})
		return
	}

	var admission server.Admission
	if *admissionRate > 0 {
		admission = server.NewTokenBucketAdmission(server.TokenBucketConfig{
			Rate:       *admissionRate,
			Burst:      *admissionBurst,
			RetryAfter: *admissionRetryAfter,
			HighWater:  *admissionHighWater,
			//lint:ignore notime daemon boundary: the injected clock refills the admission bucket; the policy never reads time itself
			Clock: time.Now,
		})
		logger.Printf("admission control on: %.1f hellos/s, burst %.0f, highwater %d",
			*admissionRate, *admissionBurst, *admissionHighWater)
	}

	srv := server.New(server.Config{
		Admission:      admission,
		MaxConns:       *maxConns,
		QueueDepth:     *queueDepth,
		IdleTimeout:    *idle,
		WriteTimeout:   *writeTimeout,
		ResumeGrace:    *resumeGrace,
		RetainSessions: *retainLimit,
		DrainTimeout:   *drain,
		//lint:ignore notime daemon boundary: the injected clock arms connection deadlines; internal/server never reads time itself
		Clock: time.Now,
		Logf:  logger.Printf,
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	logger.Printf("listening on %s", l.Addr())

	var agentStop context.CancelFunc
	agentDone := make(chan struct{})
	if *join != "" {
		if *shardID == 0 {
			logger.Fatal("-join requires a nonzero -shard-id")
		}
		pub := *advertise
		if pub == "" {
			pub = l.Addr().String()
		}
		var ctx context.Context
		ctx, agentStop = context.WithCancel(context.Background())
		go func() {
			defer close(agentDone)
			err := cluster.RunAgent(ctx, cluster.AgentConfig{
				ShardID:   *shardID,
				Advertise: pub,
				Dial:      func() (net.Conn, error) { return net.Dial("tcp", *join) },
				Stats:     func() wire.ShardStats { return cluster.CountersToShardStats(*shardID, srv.Stats()) },
				Overload:  func() wire.ShardOverload { return cluster.CountersToShardOverload(*shardID, srv.Stats()) },
				BeatEvery: *beat,
				//lint:ignore notime daemon boundary: the beat cadence is real time by definition
				Sleep:        time.Sleep,
				OnRouteTable: lameDuckWatch(srv, *shardID, logger),
				Logf:         logger.Printf,
			})
			if err != nil && err != context.Canceled {
				logger.Printf("agent: %v", err)
			}
		}()
		logger.Printf("shard %d joined controller %s advertising %s", *shardID, *join, pub)
	} else {
		close(agentDone)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	select {
	case err := <-serveErr:
		logger.Fatal(err)
	case sig := <-sigc:
		logger.Printf("%s: draining (budget %s)", sig, *drain)
	}
	if agentStop != nil {
		// Drop the control conn first so the controller reroutes while we
		// drain, then wait the agent out.
		agentStop()
		<-agentDone
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Printf("drain incomplete: %v", err)
	}
	if err := <-serveErr; err != nil && err != server.ErrServerClosed {
		logger.Printf("serve: %v", err)
	}
	s := srv.Stats()
	fmt.Fprintf(os.Stderr,
		"etraind: accepted %d rejected %d completed %d errored %d panics %d parked %d resumed %d misses %d discarded %d frames in/out %d/%d decisions %d\n",
		s.Accepted, s.Rejected, s.Completed, s.Errored, s.Panics,
		s.Parked, s.Resumed, s.ResumeMisses, s.Discarded,
		s.FramesIn, s.FramesOut, s.Decisions)
	if s.Refused+s.Shed+s.BusySent > 0 {
		fmt.Fprintf(os.Stderr, "etraind: overload refused %d shed %d busy-sent %d\n",
			s.Refused, s.Shed, s.BusySent)
	}
}

// lameDuckWatch returns the route-table hook that flips the server
// lame-duck whenever a pushed table stops (or resumes) listing this
// shard: absent means drained or swept, so new sessions must go to the
// new owners while in-flight ones finish here.
func lameDuckWatch(srv *server.Server, id uint64, logger *log.Logger) func(wire.RouteTable) {
	return func(t wire.RouteTable) {
		listed := false
		for _, e := range t.Shards {
			if e.ShardID == id {
				listed = true
				break
			}
		}
		if srv.LameDucking() == listed { // state change only
			srv.SetLameDuck(!listed)
			if listed {
				logger.Printf("route table epoch %d lists us again: accepting sessions", t.Epoch)
			} else {
				logger.Printf("route table epoch %d dropped us: lame-duck, finishing in-flight sessions", t.Epoch)
			}
		}
	}
}

// controllerFlags carries the parsed -control mode flags.
type controllerFlags struct {
	control, ops string
	ringSeed     int64
	vnodes       int
	beatTimeout  time.Duration
	drain        time.Duration
	snapshot     string
	rejoinGrace  time.Duration
}

// runController serves the cluster control plane: the control listener
// for shard agents and route watchers, a sweep ticker retiring silent
// shards, and the ops HTTP surface.
func runController(logger *log.Logger, cf controllerFlags) {
	var restore *cluster.ControllerSnapshot
	if cf.snapshot != "" {
		snap, err := cluster.LoadSnapshot(cf.snapshot)
		switch {
		case err == nil:
			restore = snap
			logger.Printf("restoring from %s: epoch %d, %d members, rejoin grace %s",
				cf.snapshot, snap.Epoch, len(snap.Shards), cf.rejoinGrace)
		case errors.Is(err, os.ErrNotExist):
			logger.Printf("no snapshot at %s: cold start", cf.snapshot)
		default:
			// A torn or corrupt snapshot is a config error, not something
			// to silently cold-start over — the operator decides.
			logger.Fatal(err)
		}
	}
	c := cluster.NewController(cluster.ControllerConfig{
		RingSeed:    cf.ringSeed,
		Vnodes:      cf.vnodes,
		BeatTimeout: cf.beatTimeout,
		Restore:     restore,
		RejoinGrace: cf.rejoinGrace,
		//lint:ignore notime daemon boundary: the injected clock ages beats; internal/cluster never reads time itself
		Clock: time.Now,
		Logf:  logger.Printf,
	})
	persist := func() {
		if cf.snapshot == "" {
			return
		}
		if err := c.WriteSnapshot(cf.snapshot); err != nil {
			logger.Printf("snapshot: %v", err)
		}
	}
	l, err := net.Listen("tcp", cf.control)
	if err != nil {
		logger.Fatal(err)
	}
	logger.Printf("controller on %s (ring seed %d, beat timeout %s)", l.Addr(), cf.ringSeed, cf.beatTimeout)

	serveErr := make(chan error, 1)
	go func() { serveErr <- c.Serve(l) }()

	var opsSrv *http.Server
	if cf.ops != "" {
		opsl, err := net.Listen("tcp", cf.ops)
		if err != nil {
			logger.Fatal(err)
		}
		logger.Printf("ops on http://%s", opsl.Addr())
		opsSrv = &http.Server{Handler: c.OpsHandler()}
		go func() {
			if err := opsSrv.Serve(opsl); err != nil && err != http.ErrServerClosed {
				logger.Printf("ops: %v", err)
			}
		}()
	}

	// The sweep cadence halves the timeout so a dead shard is declared at
	// most 1.5 timeouts after its last beat.
	//lint:ignore notime daemon boundary: the sweep ticker drives beat expiry; Controller.Sweep itself only compares injected clock readings
	sweep := time.NewTicker(cf.beatTimeout / 2)
	defer sweep.Stop()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	for {
		select {
		case <-sweep.C:
			c.Sweep()
			persist()
		case err := <-serveErr:
			logger.Fatal(err)
		case sig := <-sigc:
			logger.Printf("%s: shutting down", sig)
			ctx, cancel := context.WithTimeout(context.Background(), cf.drain)
			defer cancel()
			if opsSrv != nil {
				if err := opsSrv.Shutdown(ctx); err != nil {
					logger.Printf("ops shutdown: %v", err)
				}
			}
			persist() // the final state outlives the process
			if err := c.Shutdown(ctx); err != nil {
				logger.Printf("controller shutdown: %v", err)
			}
			st := c.Status()
			fmt.Fprintf(os.Stderr, "etraind: controller epoch %d, %d shards, %d deaths, %d drains\n",
				st.Epoch, len(st.Shards), st.Deaths, st.Drains)
			return
		}
	}
}
