package workload

import (
	"testing"
	"time"

	"etrain/internal/profile"
	"etrain/internal/randx"
)

func TestBehaviorStrings(t *testing.T) {
	tests := []struct {
		b    Behavior
		want string
	}{
		{BehaviorUpload, "upload"},
		{BehaviorDownload, "download"},
		{BehaviorBrowse, "browse"},
		{Behavior(9), "workload.Behavior(9)"},
	}
	for _, tt := range tests {
		if got := tt.b.String(); got != tt.want {
			t.Fatalf("Behavior(%d) = %q, want %q", int(tt.b), got, tt.want)
		}
	}
}

func TestParseBehaviorRoundTrip(t *testing.T) {
	for _, b := range []Behavior{BehaviorUpload, BehaviorDownload, BehaviorBrowse} {
		got, err := ParseBehavior(b.String())
		if err != nil {
			t.Fatal(err)
		}
		if got != b {
			t.Fatalf("round trip %v -> %v", b, got)
		}
	}
	if _, err := ParseBehavior("nonsense"); err == nil {
		t.Fatal("parsed nonsense behavior")
	}
}

func TestClassifyBoundaries(t *testing.T) {
	mk := func(uploads int) []BehaviorRecord {
		var rs []BehaviorRecord
		for i := 0; i < uploads; i++ {
			rs = append(rs, BehaviorRecord{Behavior: BehaviorUpload})
		}
		rs = append(rs, BehaviorRecord{Behavior: BehaviorBrowse})
		return rs
	}
	tests := []struct {
		uploads int
		want    ActivenessClass
	}{
		{0, ClassInactive},
		{9, ClassInactive},
		{10, ClassModerate},
		{20, ClassModerate},
		{21, ClassActive},
		{40, ClassActive},
	}
	for _, tt := range tests {
		if got := Classify(mk(tt.uploads)); got != tt.want {
			t.Fatalf("Classify(%d uploads) = %v, want %v", tt.uploads, got, tt.want)
		}
	}
}

func TestSynthesizeUserMatchesClass(t *testing.T) {
	src := randx.New(9)
	for _, class := range []ActivenessClass{ClassActive, ClassModerate, ClassInactive} {
		for i := 0; i < 20; i++ {
			trace := SynthesizeUser(src, "u", class)
			if got := Classify(trace); got != class {
				t.Fatalf("synthesized %v classified as %v", class, got)
			}
		}
	}
}

func TestSynthesizeUserWithinSession(t *testing.T) {
	trace := SynthesizeUser(randx.New(10), "u", ClassActive)
	for i, r := range trace {
		if r.At < 0 || r.At >= SessionLength {
			t.Fatalf("record %d at %v outside session", i, r.At)
		}
		if i > 0 && r.At < trace[i-1].At {
			t.Fatalf("trace out of order at %d", i)
		}
		if r.UserID != "u" {
			t.Fatalf("record %d has user %q", i, r.UserID)
		}
	}
}

func TestPacketsFromTraceSkipsEmpty(t *testing.T) {
	records := []BehaviorRecord{
		{Behavior: BehaviorUpload, At: time.Second, Size: 2048},
		{Behavior: BehaviorBrowse, At: 2 * time.Second, Size: 0},
		{Behavior: BehaviorDownload, At: 3 * time.Second, Size: 4096},
	}
	prof := profile.Weibo(30 * time.Second)
	packets := PacketsFromTrace(records, prof)
	if len(packets) != 2 {
		t.Fatalf("got %d packets, want 2 (browse skipped)", len(packets))
	}
	if packets[0].Size != 2048 || packets[1].Size != 4096 {
		t.Fatalf("packet sizes wrong: %+v", packets)
	}
	for i, p := range packets {
		if p.ID != i {
			t.Fatalf("packet ID %d at index %d", p.ID, i)
		}
		if p.Profile != prof {
			t.Fatal("profile not propagated")
		}
	}
}

func TestTruncateToSession(t *testing.T) {
	records := []BehaviorRecord{
		{At: time.Minute},
		{At: 9 * time.Minute},
		{At: 11 * time.Minute},
	}
	got := TruncateToSession(records)
	if len(got) != 2 {
		t.Fatalf("got %d records, want 2", len(got))
	}
}

func TestActivenessClassString(t *testing.T) {
	tests := []struct {
		c    ActivenessClass
		want string
	}{
		{ClassActive, "active"},
		{ClassModerate, "moderate"},
		{ClassInactive, "inactive"},
		{ActivenessClass(9), "workload.ActivenessClass(9)"},
	}
	for _, tt := range tests {
		if got := tt.c.String(); got != tt.want {
			t.Fatalf("class string = %q, want %q", got, tt.want)
		}
	}
}
