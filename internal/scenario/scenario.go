// Package scenario is the declarative front end to the eTrain
// simulation stack: a JSON/YAML-subset file format that names a fleet
// (weighted device-class templates over workload.Population /
// fleet.SynthesizeDevice), a seeded timeline of events — fault bursts,
// bandwidth-regime switches, heartbeat-schedule changes, app
// install/uninstall, device reboots, a server restart — and an assert
// block of end-state predicates over the run's merged stats aggregates.
//
// A scenario executes either in-process against sim.Engine ("direct")
// or over loopback etraind sessions through the self-healing
// internal/client ("loopback"), and produces a machine-readable
// pass/fail Report whose text rendering is byte-identical across runs
// and worker counts: every device's behavior is a pure function of
// (scenario seed, device index), outcomes fold in index order, and the
// loopback transport serializes each device's server sessions so even
// the healing counters are deterministic (DESIGN.md §12).
package scenario

import (
	"encoding/json"
	"fmt"
	"time"

	"etrain/internal/diurnal"
	"etrain/internal/fleet"
	"etrain/internal/radio"
	"etrain/internal/randx"
	"etrain/internal/workload"
)

// Format limits, applied by Validate. They bound what a hostile or
// fuzzed scenario can make the engine allocate before any device runs.
const (
	// MaxDevices caps the declared fleet size.
	MaxDevices = 1 << 20
	// MaxHorizon caps the simulated span.
	MaxHorizon = 30 * 24 * time.Hour
	// MaxEvents caps the timeline length.
	MaxEvents = 4096
	// MaxAssertions caps the assert block.
	MaxAssertions = 256
)

// DefaultTheta is the cost bound Θ used when a scenario omits theta,
// matching the single-run CLI default.
const DefaultTheta = 2.0

// Engine names for Scenario.Engine.
const (
	// EngineDirect runs every device in-process through sim.Engine.
	EngineDirect = "direct"
	// EngineLoopback replays every device over an in-process etraind
	// session via the self-healing client.
	EngineLoopback = "loopback"
)

// Event actions.
const (
	// ActionFaultBurst arms a faultnet injector on the transport of the
	// matching devices (loopback engine only). Transport faults are
	// keyed by operation index, not virtual time, so the burst shapes
	// the whole session; At only salts the burst's fault-stream seed.
	ActionFaultBurst = "fault_burst"
	// ActionServerRestart kills each session's connection once — after a
	// write quota derived from At/Horizon — and points later dials at a
	// fresh server instance with an empty resume registry (loopback
	// engine only).
	ActionServerRestart = "server_restart"
	// ActionBandwidthRegime reshapes the channel from At: Factor scales
	// the remaining trace samples, or Regime resynthesizes the tail
	// under a named mobility regime (direct engine only — a loopback
	// Hello carries just the channel seed, so a transformed trace
	// cannot cross the wire).
	ActionBandwidthRegime = "bandwidth_regime"
	// ActionHeartbeatSchedule multiplies heartbeat cycle intervals by
	// Factor for beats at or after At.
	ActionHeartbeatSchedule = "heartbeat_schedule"
	// ActionAppInstall adds a named heartbeat app with its first beat
	// at At.
	ActionAppInstall = "app_install"
	// ActionAppUninstall stops a named heartbeat app's beats from At.
	ActionAppUninstall = "app_uninstall"
	// ActionReboot silences the device for [At, At+Duration): beats in
	// the window are lost, cargo arrivals in the window queue up and
	// arrive together when the device returns.
	ActionReboot = "reboot"
	// ActionOverloadBurst installs a deterministic admission policy on
	// the loopback servers for the matching devices (loopback engine
	// only): each device's first RefuseHellos fresh Hellos are refused
	// with Busy, and each cargo whose seed-derived coin lands under Shed
	// is shed exactly once — deferred to the resume redelivery, never
	// dropped. Decisions are pure functions of (seed, device, cargo ID);
	// live queue depth is ignored, so the report stays byte-pinnable.
	// At only salts the coin stream, exactly like fault_burst.
	ActionOverloadBurst = "overload_burst"
	// ActionDiurnalProfile attaches a diurnal activity profile to the
	// matching devices from synthesis: cargo follows the profile's
	// per-class curves and heartbeat cadence its scheduled events. It
	// must be declared at 0; when several match a device, the last
	// declared wins.
	ActionDiurnalProfile = "diurnal_profile"
	// ActionScheduledEvent layers one scheduled event — a push storm, a
	// maintenance window — onto the matching devices' diurnal profiles.
	// At and Duration are on the diurnal clock (so "hour 122 of the
	// week" is valid however compressed the run is) and bypass the
	// horizon bound; a matching device without a diurnal_profile is a
	// plan-time error.
	ActionScheduledEvent = "scheduled_event"
)

// Duration is a time.Duration that travels through JSON as a
// time.ParseDuration string ("90s", "10m"), so scenario files read
// naturally and parse→encode→parse round-trips exactly.
type Duration time.Duration

// D returns the native duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// String renders the duration in time.Duration syntax.
func (d Duration) String() string { return time.Duration(d).String() }

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf(`scenario: duration must be a string like "90s": %w`, err)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("scenario: bad duration %q: %w", s, err)
	}
	*d = Duration(v)
	return nil
}

// Scenario is one declared experiment: fleet, timeline, assertions.
type Scenario struct {
	// Name identifies the scenario; required, and echoed in the report.
	Name string `json:"name"`
	// Description is free-form documentation.
	Description string `json:"description,omitempty"`
	// Seed roots every random stream of the run.
	Seed int64 `json:"seed"`
	// Horizon is each device's simulated span; required.
	Horizon Duration `json:"horizon"`
	// Theta is the eTrain cost bound Θ (DefaultTheta when omitted;
	// an explicit 0 is honored — it collapses savings, which is what
	// the broken-Θ negative test exploits).
	Theta *float64 `json:"theta,omitempty"`
	// K is the per-heartbeat batch bound (fleet.DefaultK when 0).
	K int `json:"k,omitempty"`
	// Engine selects the execution path (EngineDirect when empty).
	Engine string `json:"engine,omitempty"`
	// Radio names the radio generation energy is accounted under
	// (radio.ModelByName: "3g", "lte-drx", "nr-drx", ...). Empty keeps
	// the 3G RRC power model. Direct engine only — the loopback replayer
	// accounts energy server-side under the fixed 3G model.
	Radio string `json:"radio,omitempty"`
	// Fleet declares the device population.
	Fleet Fleet `json:"fleet"`
	// Timeline holds the seeded events, applied in (At, index) order.
	Timeline []Event `json:"timeline,omitempty"`
	// Assert holds the end-state predicates.
	Assert []Assertion `json:"assert,omitempty"`
}

// Fleet declares the device population of a scenario.
type Fleet struct {
	// Devices is the population size; required.
	Devices int `json:"devices"`
	// Classes is the weighted activeness mix (workload.DefaultMix()
	// when empty).
	Classes []ClassWeight `json:"classes,omitempty"`
}

// ClassWeight weights one activeness class in the fleet mix.
type ClassWeight struct {
	// Class is "active", "moderate" or "inactive".
	Class string `json:"class"`
	// Weight is the class's relative share; need not sum to 1.
	Weight float64 `json:"weight"`
}

// Event is one timeline entry. Which fields apply depends on Action;
// Validate rejects combinations the action does not define.
type Event struct {
	// At is the event's virtual instant in [0, horizon].
	At Duration `json:"at"`
	// Action is one of the Action constants.
	Action string `json:"action"`
	// Devices selects the affected devices: "all" (default), a single
	// index "7", an inclusive range "0-15", or a stride "every:3".
	Devices string `json:"devices,omitempty"`
	// Duration is the reboot outage length.
	Duration Duration `json:"duration,omitempty"`
	// App names the heartbeat app for install/uninstall
	// (qq, wechat, whatsapp, renren, netease, apns).
	App string `json:"app,omitempty"`
	// Factor scales bandwidth samples or heartbeat cycles.
	Factor float64 `json:"factor,omitempty"`
	// Regime names a mobility regime for bandwidth_regime
	// (bus, walk, indoor).
	Regime string `json:"regime,omitempty"`
	// Drop, Reset, Truncate and ConnectFail are the fault_burst rates,
	// each in [0, 1] (faultnet.Config).
	Drop        float64 `json:"drop,omitempty"`
	Reset       float64 `json:"reset,omitempty"`
	Truncate    float64 `json:"truncate,omitempty"`
	ConnectFail float64 `json:"connect_fail,omitempty"`
	// Shed is the overload_burst per-cargo shed probability in [0, 1]:
	// a cargo is shed (once, on first delivery) when its coin — derived
	// from (seed, device, cargo ID) — lands under Shed.
	Shed float64 `json:"shed,omitempty"`
	// RefuseHellos makes overload_burst refuse each matching device's
	// first N fresh Hellos with Busy before admitting.
	RefuseHellos int `json:"refuse_hellos,omitempty"`
	// RetryAfter is the backoff hinted in overload_burst Busy frames
	// (1ms when omitted).
	RetryAfter Duration `json:"retry_after,omitempty"`
	// Profile names a diurnal preset for diurnal_profile
	// (diurnal.ByName: flat, week, weekday, weekend).
	Profile string `json:"profile,omitempty"`
	// TimeScale, PhaseJitter and Start override the named profile's
	// clock mapping when non-zero (diurnal_profile only).
	TimeScale   float64  `json:"time_scale,omitempty"`
	PhaseJitter Duration `json:"phase_jitter,omitempty"`
	Start       Duration `json:"start,omitempty"`
	// CargoFactor and BeatFactor are the scheduled_event modulations
	// while active; zero leaves that dimension alone.
	CargoFactor float64 `json:"cargo_factor,omitempty"`
	BeatFactor  float64 `json:"beat_factor,omitempty"`
	// Every repeats a scheduled_event with this diurnal-clock period.
	Every Duration `json:"every,omitempty"`
}

// Assertion is one end-state predicate: metric within [Min, Max]
// (inclusive; either bound may be omitted).
type Assertion struct {
	// Metric names the observed quantity (see the metric list in
	// DESIGN.md §12): saving_mean, saving_p50, delay_p99, decision_loss,
	// degraded_rate, ...
	Metric string `json:"metric"`
	// Class scopes the metric to one activeness class; "all" (default)
	// spans the fleet. Transport metrics are fleet-wide only.
	Class string `json:"class,omitempty"`
	// Min and Max bound the observation, inclusively.
	Min *float64 `json:"min,omitempty"`
	Max *float64 `json:"max,omitempty"`
}

// EncodeJSON renders the scenario in its canonical JSON form — the
// fixed field order and indentation the fuzz round-trip pins.
func (s *Scenario) EncodeJSON() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encode: %w", err)
	}
	return append(b, '\n'), nil
}

// ConfigHash names the scenario's simulation identity: a hash of the
// canonical encoding, so any change to fleet, timeline, parameters or
// assertions renames the run.
func (s *Scenario) ConfigHash() (string, error) {
	b, err := s.EncodeJSON()
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%016x", randx.DeriveString(string(b))), nil
}

// EffectiveTheta returns the cost bound the run uses.
func (s *Scenario) EffectiveTheta() float64 {
	if s.Theta == nil {
		return DefaultTheta
	}
	return *s.Theta
}

// EffectiveK returns the batch bound the run uses.
func (s *Scenario) EffectiveK() int {
	if s.K == 0 {
		return fleet.DefaultK
	}
	return s.K
}

// Validate checks the scenario against the format's rules without
// running it. It never panics, whatever Parse produced.
func (s *Scenario) Validate() error {
	_, err := s.compile()
	return err
}

// compiled is a validated scenario with its derived artifacts: the
// population sampler, parsed device selectors, and the timeline in
// application order.
type compiled struct {
	sc       *Scenario
	theta    float64
	k        int
	loopback bool
	mix      []workload.ClassShare
	pop      *workload.Population
	// radio is Scenario.Radio resolved; nil keeps the 3G power model.
	radio radio.Model
	// events is the timeline sorted stably by (At, declaration order),
	// each with its parsed device matcher and original index.
	events []compiledEvent
}

type compiledEvent struct {
	Event
	index int
	match deviceMatcher
	// prof is the resolved profile of a diurnal_profile entry.
	prof *diurnal.Profile
	// dEvent is the resolved event of a scheduled_event entry.
	dEvent diurnal.Event
}

// compile validates and resolves the scenario.
func (s *Scenario) compile() (*compiled, error) {
	if s.Name == "" {
		return nil, fmt.Errorf("scenario: name is required")
	}
	horizon := s.Horizon.D()
	if horizon <= 0 {
		return nil, fmt.Errorf("scenario %s: horizon %v must be positive", s.Name, horizon)
	}
	if horizon > MaxHorizon {
		return nil, fmt.Errorf("scenario %s: horizon %v exceeds %v", s.Name, horizon, MaxHorizon)
	}
	if s.Theta != nil && (*s.Theta < 0 || *s.Theta != *s.Theta) {
		return nil, fmt.Errorf("scenario %s: theta %v must be ≥ 0", s.Name, *s.Theta)
	}
	if s.K < 0 {
		return nil, fmt.Errorf("scenario %s: k %d must be ≥ 0", s.Name, s.K)
	}
	c := &compiled{sc: s, theta: s.EffectiveTheta(), k: s.EffectiveK()}
	switch s.Engine {
	case "", EngineDirect:
	case EngineLoopback:
		c.loopback = true
	default:
		return nil, fmt.Errorf("scenario %s: unknown engine %q", s.Name, s.Engine)
	}
	if s.Radio != "" {
		if c.loopback {
			return nil, fmt.Errorf("scenario %s: radio requires engine: direct — the loopback replayer accounts energy under the fixed 3G model", s.Name)
		}
		m, err := radio.ModelByName(s.Radio)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		c.radio = m
	}
	if s.Fleet.Devices <= 0 {
		return nil, fmt.Errorf("scenario %s: fleet.devices %d must be positive", s.Name, s.Fleet.Devices)
	}
	if s.Fleet.Devices > MaxDevices {
		return nil, fmt.Errorf("scenario %s: fleet.devices %d exceeds %d", s.Name, s.Fleet.Devices, MaxDevices)
	}
	mix, err := s.Fleet.mix()
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	c.mix = mix
	if c.pop, err = workload.NewPopulation(mix); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if len(s.Timeline) > MaxEvents {
		return nil, fmt.Errorf("scenario %s: %d timeline events exceed %d", s.Name, len(s.Timeline), MaxEvents)
	}
	restarts, profiles, scheduled := 0, 0, 0
	for i, ev := range s.Timeline {
		ce, err := compileEvent(ev, i, horizon, c.loopback)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: timeline[%d]: %w", s.Name, i, err)
		}
		switch ev.Action {
		case ActionServerRestart:
			if restarts++; restarts > 1 {
				return nil, fmt.Errorf("scenario %s: timeline[%d]: at most one server_restart per scenario", s.Name, i)
			}
		case ActionDiurnalProfile:
			profiles++
		case ActionScheduledEvent:
			scheduled++
		}
		c.events = append(c.events, ce)
	}
	if scheduled > 0 && profiles == 0 {
		return nil, fmt.Errorf("scenario %s: scheduled_event without a diurnal_profile", s.Name)
	}
	sortEvents(c.events)
	if len(s.Assert) > MaxAssertions {
		return nil, fmt.Errorf("scenario %s: %d assertions exceed %d", s.Name, len(s.Assert), MaxAssertions)
	}
	for i, a := range s.Assert {
		if err := validateAssertion(a, mix); err != nil {
			return nil, fmt.Errorf("scenario %s: assert[%d]: %w", s.Name, i, err)
		}
	}
	return c, nil
}

// mix resolves the fleet's class mix, defaulting to the standard
// engagement pyramid.
func (f Fleet) mix() ([]workload.ClassShare, error) {
	if len(f.Classes) == 0 {
		return workload.DefaultMix(), nil
	}
	mix := make([]workload.ClassShare, len(f.Classes))
	for i, cw := range f.Classes {
		class, err := workload.ParseClass(cw.Class)
		if err != nil {
			return nil, fmt.Errorf("fleet.classes[%d]: %w", i, err)
		}
		mix[i] = workload.ClassShare{Class: class, Weight: cw.Weight}
	}
	return mix, nil
}

// compileEvent validates one timeline entry against its action's rules.
func compileEvent(ev Event, index int, horizon time.Duration, loopback bool) (compiledEvent, error) {
	ce := compiledEvent{Event: ev, index: index}
	at := ev.At.D()
	// scheduled_event instants live on the diurnal clock, which a
	// time-scaled run compresses far past the sim horizon.
	if ev.Action == ActionScheduledEvent {
		if at < 0 || at > diurnal.MaxEventHorizon {
			return ce, fmt.Errorf("at %v outside [0, %v]", at, diurnal.MaxEventHorizon)
		}
	} else if at < 0 || at > horizon {
		return ce, fmt.Errorf("at %v outside [0, %v]", at, horizon)
	}
	match, err := parseDevices(ev.Devices)
	if err != nil {
		return ce, err
	}
	ce.match = match
	needsLoopback := false
	directOnly := false
	switch ev.Action {
	case ActionFaultBurst:
		needsLoopback = true
		for _, r := range []struct {
			name string
			v    float64
		}{{"drop", ev.Drop}, {"reset", ev.Reset}, {"truncate", ev.Truncate}, {"connect_fail", ev.ConnectFail}} {
			if r.v < 0 || r.v > 1 || r.v != r.v {
				return ce, fmt.Errorf("%s rate %v outside [0, 1]", r.name, r.v)
			}
		}
		if ev.Drop+ev.Reset+ev.Truncate > 1 {
			return ce, fmt.Errorf("drop+reset+truncate %v exceeds 1", ev.Drop+ev.Reset+ev.Truncate)
		}
		if ev.Drop+ev.Reset+ev.Truncate+ev.ConnectFail == 0 {
			return ce, fmt.Errorf("fault_burst with all rates zero")
		}
	case ActionServerRestart:
		needsLoopback = true
		if ev.Devices != "" && ev.Devices != "all" {
			return ce, fmt.Errorf("server_restart is fleet-wide; devices %q not allowed", ev.Devices)
		}
	case ActionBandwidthRegime:
		directOnly = true
		switch {
		case ev.Regime != "":
			if ev.Factor != 0 {
				return ce, fmt.Errorf("bandwidth_regime takes regime or factor, not both")
			}
			if _, err := regimeByName(ev.Regime); err != nil {
				return ce, err
			}
		case ev.Factor > 0 && ev.Factor <= 100 && ev.Factor == ev.Factor:
		default:
			return ce, fmt.Errorf("bandwidth_regime needs a regime name or a factor in (0, 100], got factor %v", ev.Factor)
		}
	case ActionHeartbeatSchedule:
		if !(ev.Factor > 0 && ev.Factor <= 100) {
			return ce, fmt.Errorf("heartbeat_schedule factor %v outside (0, 100]", ev.Factor)
		}
	case ActionAppInstall, ActionAppUninstall:
		if _, err := trainByName(ev.App); err != nil {
			return ce, err
		}
	case ActionReboot:
		d := ev.Duration.D()
		if d <= 0 {
			return ce, fmt.Errorf("reboot duration %v must be positive", d)
		}
	case ActionOverloadBurst:
		needsLoopback = true
		if ev.Shed < 0 || ev.Shed > 1 || ev.Shed != ev.Shed {
			return ce, fmt.Errorf("shed probability %v outside [0, 1]", ev.Shed)
		}
		if ev.RefuseHellos < 0 || ev.RefuseHellos > 16 {
			return ce, fmt.Errorf("refuse_hellos %d outside [0, 16]", ev.RefuseHellos)
		}
		if ev.Shed == 0 && ev.RefuseHellos == 0 {
			return ce, fmt.Errorf("overload_burst with nothing to shed or refuse")
		}
		if ra := ev.RetryAfter.D(); ra < 0 || ra > time.Second {
			return ce, fmt.Errorf("retry_after %v outside [0, 1s]", ra)
		}
	case ActionDiurnalProfile:
		if at != 0 {
			return ce, fmt.Errorf("diurnal_profile shapes synthesis from the start; at must be 0, got %v", at)
		}
		prof, err := diurnal.ByName(ev.Profile)
		if err != nil {
			return ce, err
		}
		if ev.TimeScale != 0 {
			prof.TimeScale = ev.TimeScale
		}
		if ev.PhaseJitter != 0 {
			prof.PhaseJitter = ev.PhaseJitter.D()
		}
		if ev.Start != 0 {
			prof.Start = ev.Start.D()
		}
		if err := prof.Validate(); err != nil {
			return ce, err
		}
		ce.prof = prof
	case ActionScheduledEvent:
		ce.dEvent = diurnal.Event{
			Name:        fmt.Sprintf("timeline[%d]", index),
			At:          at,
			Duration:    ev.Duration.D(),
			CargoFactor: ev.CargoFactor,
			BeatFactor:  ev.BeatFactor,
			Every:       ev.Every.D(),
		}
		// The event validator is profile-scoped; attaching the lone event
		// to the identity profile runs exactly its checks.
		if err := diurnal.Flat().WithEvents(ce.dEvent).Validate(); err != nil {
			return ce, err
		}
	case "":
		return ce, fmt.Errorf("action is required")
	default:
		return ce, fmt.Errorf("unknown action %q", ev.Action)
	}
	if needsLoopback && !loopback {
		return ce, fmt.Errorf("%s requires engine: loopback", ev.Action)
	}
	if directOnly && loopback {
		return ce, fmt.Errorf("%s requires engine: direct — a loopback Hello carries only the channel seed, so a transformed trace cannot cross the wire", ev.Action)
	}
	return ce, nil
}

// sortEvents orders the timeline stably by (At, declaration order).
func sortEvents(events []compiledEvent) {
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && less(events[j], events[j-1]); j-- {
			events[j], events[j-1] = events[j-1], events[j]
		}
	}
}

func less(a, b compiledEvent) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	return a.index < b.index
}

// deviceMatcher reports whether a device index is selected.
type deviceMatcher func(i int) bool

// parseDevices parses a device selector: "", "all", "7", "0-15",
// "every:3".
func parseDevices(s string) (deviceMatcher, error) {
	switch {
	case s == "" || s == "all":
		return func(int) bool { return true }, nil
	case len(s) > 6 && s[:6] == "every:":
		var k int
		if _, err := fmt.Sscanf(s[6:], "%d", &k); err != nil || k <= 0 || fmt.Sprintf("%d", k) != s[6:] {
			return nil, fmt.Errorf("bad device stride %q", s)
		}
		return func(i int) bool { return i%k == 0 }, nil
	default:
		var lo, hi int
		if n, err := fmt.Sscanf(s, "%d-%d", &lo, &hi); err == nil && n == 2 && fmt.Sprintf("%d-%d", lo, hi) == s {
			if lo < 0 || hi < lo {
				return nil, fmt.Errorf("bad device range %q", s)
			}
			return func(i int) bool { return i >= lo && i <= hi }, nil
		}
		var one int
		if n, err := fmt.Sscanf(s, "%d", &one); err == nil && n == 1 && fmt.Sprintf("%d", one) == s && one >= 0 {
			return func(i int) bool { return i == one }, nil
		}
		return nil, fmt.Errorf("bad device selector %q (want all, N, lo-hi, or every:K)", s)
	}
}
