package fleet

import (
	"fmt"
	"sort"
	"time"

	"etrain/internal/bandwidth"
	"etrain/internal/baseline"
	"etrain/internal/core"
	"etrain/internal/diurnal"
	"etrain/internal/heartbeat"
	"etrain/internal/profile"
	"etrain/internal/radio"
	"etrain/internal/randx"
	"etrain/internal/sim"
	"etrain/internal/workload"
)

// sessionDeadline is the deadline of session upload/download packets,
// matching the paper's controlled Weibo replay (§VI-D: 30 s).
const sessionDeadline = 30 * time.Second

// deviceNamespace salts device seeds so a fleet device at index i never
// shares a stream with any other consumer of the same base seed.
var deviceNamespace = randx.DeriveString("etrain/fleet/device")

// deviceOutcome is one device's measured with/without-eTrain run pair.
type deviceOutcome struct {
	classIndex int
	withoutJ   float64 // total energy without eTrain (transmit on arrival)
	withJ      float64 // total energy with eTrain
	delayS     float64 // with-eTrain mean packet delay
	violation  float64 // with-eTrain deadline-violation ratio
}

// Device is one synthesized fleet member: everything needed to run (or
// replay over the wire) the device's simulation, derived purely from
// (fleet seed, index). The heavyweight bandwidth trace is carried as
// BandwidthSeed rather than samples: bandwidth.FromSeed(BandwidthSeed,
// Horizon, nil) reproduces the exact trace, so a Device is cheap to hand
// to a remote session via a Hello frame.
type Device struct {
	// Index is the device's position in the fleet.
	Index int
	// Seed is the device's identity-derived stream seed.
	Seed int64
	// ClassIndex and Class are the activeness class drawn for the device.
	ClassIndex int
	Class      workload.ActivenessClass
	// Trains are the device's heartbeat apps.
	Trains []heartbeat.TrainApp
	// Packets is the merged session + background cargo in arrival order.
	Packets []workload.Packet
	// BandwidthSeed derives the device's channel via bandwidth.FromSeed.
	BandwidthSeed int64
	// Horizon is the device's simulated span.
	Horizon time.Duration
	// Beats, when non-nil, overrides the trains' generated schedule (set
	// when a diurnal profile's scheduled events modulate the cadence).
	Beats []heartbeat.Beat
}

// DeviceOptions parameterizes synthesis beyond the device's identity.
type DeviceOptions struct {
	// Diurnal, when non-nil, shapes the device's session and background
	// cargo by its class activity curve and applies the profile's
	// scheduled events to cargo rates and heartbeat cadence.
	Diurnal *diurnal.Profile
}

// SynthesizeDevice derives device index of the fleet seeded by fleetSeed.
// The draw order is fixed — class, trains, session, background, bandwidth
// seed — so the result is a pure function of (fleetSeed, pop, index,
// horizon) and is byte-compatible with what Run simulates.
func SynthesizeDevice(fleetSeed int64, pop *workload.Population, index int, horizon time.Duration) (Device, error) {
	return SynthesizeDeviceOpts(fleetSeed, pop, index, horizon, DeviceOptions{})
}

// SynthesizeDeviceOpts is SynthesizeDevice with options. Without a
// diurnal profile it is draw-for-draw identical to the legacy path; with
// one, the same streams feed the diurnal samplers (the per-device phase
// comes from randx.Derive and consumes no stream state), so attaching a
// profile never perturbs any other device.
func SynthesizeDeviceOpts(fleetSeed int64, pop *workload.Population, index int, horizon time.Duration, opts DeviceOptions) (Device, error) {
	seed := randx.Derive(fleetSeed, deviceNamespace, uint64(index))
	// Synthesis streams are short-lived and fully consumed here, so they
	// come from the source pool: same bits as New/Split, no per-device
	// generator-table allocations in the shard loop.
	src := randx.Acquire(seed)
	defer src.Release()
	classIndex, class := pop.Pick(src.Float64())
	var sampler *diurnal.Sampler
	if opts.Diurnal != nil {
		sampler = opts.Diurnal.ForDevice(class.String(), seed)
	}
	trains := deviceTrains(src)
	sessSrc := src.SplitPooled()
	trace := workload.SynthesizeSessionDiurnal(sessSrc, fmt.Sprintf("device-%d", index), class, horizon, sampler)
	sessSrc.Release()
	session := workload.PacketsFromTrace(trace, profile.Weibo(sessionDeadline))
	genSrc := src.SplitPooled()
	background, err := workload.GenerateDiurnal(genSrc, backgroundSpecs(class), horizon, sampler)
	genSrc.Release()
	if err != nil {
		return Device{}, err
	}
	var beats []heartbeat.Beat
	if sampler != nil {
		beats = sampler.Merge(trains, horizon)
	}
	return Device{
		Index:         index,
		Seed:          seed,
		ClassIndex:    classIndex,
		Class:         class,
		Trains:        trains,
		Packets:       mergePackets(session, background),
		BandwidthSeed: src.Int63(), // what Split would seed the bandwidth stream with
		Horizon:       horizon,
		Beats:         beats,
	}, nil
}

// SimConfig returns the device's base simulation config (no strategy set),
// rebuilding the channel trace from BandwidthSeed.
func (d Device) SimConfig() (sim.Config, error) {
	bw, err := bandwidth.FromSeed(d.BandwidthSeed, d.Horizon, nil)
	if err != nil {
		return sim.Config{}, err
	}
	return sim.Config{
		Horizon:   d.Horizon,
		Trains:    d.Trains,
		Beats:     d.Beats,
		Packets:   d.Packets,
		Bandwidth: bw,
		Power:     radio.GalaxyS43G(),
		Seed:      d.Seed,
	}, nil
}

// runDevice simulates device i twice — transmit-on-arrival versus eTrain —
// over identical heartbeat trains, cargo and bandwidth. Everything is
// derived from (cfg.Seed, i) in a fixed draw order, so the outcome is a
// pure function of the device's identity.
//
//etrain:hotpath
func runDevice(cfg *Config, pop *workload.Population, i int) (deviceOutcome, error) {
	dev, err := SynthesizeDeviceOpts(cfg.Seed, pop, i, cfg.Horizon, DeviceOptions{Diurnal: cfg.Diurnal})
	if err != nil {
		return deviceOutcome{}, err
	}
	base, err := dev.SimConfig()
	if err != nil {
		return deviceOutcome{}, err
	}
	base.Radio = cfg.radioModel
	without := base
	without.Strategy = baseline.NewImmediate()
	resWithout, err := sim.Run(without)
	if err != nil {
		return deviceOutcome{}, fmt.Errorf("without eTrain: %w", err)
	}
	strategy, err := core.New(core.Options{Theta: cfg.Theta, K: cfg.K})
	if err != nil {
		return deviceOutcome{}, err
	}
	with := base
	with.Strategy = strategy
	resWith, err := sim.Run(with)
	if err != nil {
		return deviceOutcome{}, fmt.Errorf("with eTrain: %w", err)
	}

	mWithout, mWith := resWithout.Metrics(), resWith.Metrics()
	return deviceOutcome{
		classIndex: dev.ClassIndex,
		withoutJ:   mWithout.EnergyJ,
		withJ:      mWith.EnergyJ,
		delayS:     mWith.AvgDelayS,
		violation:  mWith.ViolationRatio,
	}, nil
}

// deviceTrains draws the device's heartbeat apps: a contiguous cyclic
// subset of the paper's trio, 1–3 apps, so fleets exercise every train
// count of Fig. 10a.
func deviceTrains(src *randx.Source) []heartbeat.TrainApp {
	trio := heartbeat.DefaultTrio()
	n := 1 + src.Intn(len(trio))
	start := src.Intn(len(trio))
	trains := make([]heartbeat.TrainApp, 0, n)
	for i := 0; i < n; i++ {
		trains = append(trains, trio[(start+i)%len(trio)])
	}
	return trains
}

// backgroundSpecs returns the device's delay-tolerant background cargo
// (mail + cloud sync), with arrival rates scaled by the activeness class:
// active users generate more background traffic, inactive users less.
func backgroundSpecs(class workload.ActivenessClass) []workload.CargoSpec {
	factor := activityFactor(class)
	specs := []workload.CargoSpec{workload.MailSpec(), workload.CloudSpec()}
	for i := range specs {
		specs[i].MeanInterArrival = time.Duration(float64(specs[i].MeanInterArrival) / factor)
	}
	return specs
}

// activityFactor is the background-rate multiplier per activeness class.
func activityFactor(class workload.ActivenessClass) float64 {
	switch class {
	case workload.ClassActive:
		return 1.5
	case workload.ClassModerate:
		return 1.0
	default:
		return 0.5
	}
}

// mergePackets interleaves the session replay with the background cargo by
// arrival time and reassigns globally unique IDs in arrival order, as the
// sim queues require.
func mergePackets(session, background []workload.Packet) []workload.Packet {
	all := make([]workload.Packet, 0, len(session)+len(background))
	all = append(all, session...)
	all = append(all, background...)
	sort.SliceStable(all, func(i, j int) bool { return all[i].ArrivedAt < all[j].ArrivedAt })
	for i := range all {
		all[i].ID = i
	}
	return all
}
