package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"etrain/internal/wire"
)

// ErrRouterClosed reports a lookup or refresh on a closed Router.
var ErrRouterClosed = errors.New("cluster: router closed")

// RouterConfig parameterizes a client-side route-table subscriber.
type RouterConfig struct {
	// DialControl opens a control connection to the controller. Required.
	DialControl func() (net.Conn, error)
	// DialShard opens a session connection to a shard's advertised
	// address. Required for Dialer; lookups work without it.
	DialShard func(addr string) (net.Conn, error)
	// Sleep paces control-connection redials; nil retries immediately
	// (tests). Real deployments should pass a sleeper.
	Sleep func(time.Duration)
	// RedialWait is the pause between control redials (DefaultBeatEvery
	// if zero; only used with Sleep).
	RedialWait time.Duration
	// Logf, when non-nil, receives connection reports.
	Logf func(format string, args ...any)
}

// Router subscribes to the controller's route table and turns it into
// per-device dialers for client.Run. One background reader holds the
// watcher connection, applies pushed tables (newest epoch wins), and
// redials when the controller bounces; Close joins it.
//
// Failover shape: when a shard dies, in-flight dials to its address fail
// and the client backs off; the controller drops the member on control-
// conn loss and pushes a fresh table; the next dial routes the device to
// its new owner, reported as moved=true so the client skips the Resume
// handshake (the new shard never parked this session) and goes straight
// to a full Hello replay. The Poke path accelerates the table refresh —
// epoch-gated, so a thousand clients hitting one dead shard cause one
// poll, not a thundering herd.
type Router struct {
	cfg RouterConfig

	mu     sync.Mutex
	cond   *sync.Cond
	table  wire.RouteTable
	ring   *Ring
	addrs  map[uint64]string
	conn   net.Conn // current watcher conn (reader-owned)
	w      *wire.Writer
	closed bool
	polled uint64 // highest epoch a Poke already polled at

	// wmu serializes frame writes on the watcher conn: the subscribe
	// handshake and any number of concurrent Pokes share a wire.Writer.
	wmu sync.Mutex

	readerDone chan struct{}
}

// NewRouter connects to the controller, waits for the first route table,
// and starts the background reader.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.DialControl == nil {
		return nil, fmt.Errorf("cluster: router: DialControl is required")
	}
	if cfg.RedialWait <= 0 {
		cfg.RedialWait = DefaultBeatEvery
	}
	rt := &Router{cfg: cfg, readerDone: make(chan struct{})}
	rt.cond = sync.NewCond(&rt.mu)
	conn, err := rt.subscribe(0)
	if err != nil {
		return nil, err
	}
	go rt.readLoop(conn)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for rt.table.Epoch == 0 && !rt.closed {
		rt.cond.Wait()
	}
	if rt.closed {
		return nil, ErrRouterClosed
	}
	return rt, nil
}

// subscribe dials the controller and sends the watcher handshake: an Ack
// carrying the newest epoch already held, so the controller's first push
// is never a downgrade.
func (rt *Router) subscribe(sinceEpoch uint64) (net.Conn, error) {
	conn, err := rt.cfg.DialControl()
	if err != nil {
		return nil, fmt.Errorf("cluster: router: control dial: %w", err)
	}
	w := wire.NewWriter(conn)
	rt.wmu.Lock()
	err = w.Write(wire.Ack{Seq: sinceEpoch})
	rt.wmu.Unlock()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: router: subscribe: %w", err)
	}
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		conn.Close()
		return nil, ErrRouterClosed
	}
	rt.conn = conn
	rt.w = w
	rt.mu.Unlock()
	return conn, nil
}

// readLoop owns the watcher connection: it applies route-table pushes
// and redials on loss, until Close.
func (rt *Router) readLoop(conn net.Conn) {
	defer close(rt.readerDone)
	for {
		r := wire.NewReader(conn)
		for {
			m, err := r.Next()
			if err != nil {
				break
			}
			if t, ok := m.(wire.RouteTable); ok {
				rt.apply(t)
			}
		}
		conn.Close()
		for {
			rt.mu.Lock()
			closed := rt.closed
			since := rt.table.Epoch
			rt.mu.Unlock()
			if closed {
				return
			}
			c, err := rt.subscribe(since)
			if err == nil {
				conn = c
				break
			}
			if errors.Is(err, ErrRouterClosed) {
				return
			}
			if rt.cfg.Logf != nil {
				rt.cfg.Logf("router: resubscribe: %v", err)
			}
			if rt.cfg.Sleep != nil {
				rt.cfg.Sleep(rt.cfg.RedialWait)
			}
		}
	}
}

// apply installs t if it is newer than the current table.
func (rt *Router) apply(t wire.RouteTable) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if t.Epoch <= rt.table.Epoch {
		return
	}
	rt.table = t
	rt.ring, rt.addrs = RingFromTable(t)
	rt.cond.Broadcast()
}

// Close tears down the watcher connection and joins the reader.
func (rt *Router) Close() error {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return nil
	}
	rt.closed = true
	conn := rt.conn
	rt.cond.Broadcast()
	rt.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	<-rt.readerDone
	return nil
}

// Table returns the newest route table received.
func (rt *Router) Table() wire.RouteTable {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.table
}

// Lookup routes deviceID under the current table, returning the owning
// shard, its session address, and the table epoch the answer came from.
func (rt *Router) Lookup(deviceID uint64) (shard uint64, addr string, epoch uint64, err error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return 0, "", 0, ErrRouterClosed
	}
	if rt.ring == nil {
		return 0, "", rt.table.Epoch, fmt.Errorf("cluster: router: no route table yet")
	}
	shard, ok := rt.ring.Owner(deviceID)
	if !ok {
		return 0, "", rt.table.Epoch, fmt.Errorf("cluster: router: route table has no members (epoch %d)", rt.table.Epoch)
	}
	return shard, rt.addrs[shard], rt.table.Epoch, nil
}

// Poke nudges the controller for a fresh table after a dial observed at
// epoch failed. It is epoch-gated twice over: a no-op if a newer table
// already arrived, and at most one poll per epoch across all devices —
// every other caller piggybacks on the outstanding one.
func (rt *Router) Poke(epoch uint64) {
	rt.mu.Lock()
	if rt.closed || rt.table.Epoch > epoch || rt.polled >= epoch || rt.w == nil {
		rt.mu.Unlock()
		return
	}
	rt.polled = epoch
	w := rt.w
	rt.mu.Unlock()
	// A write error just means the reader is about to notice the dead
	// conn and redial — the resubscribe handshake doubles as the poll.
	rt.wmu.Lock()
	err := w.Write(wire.Ack{Seq: epoch})
	rt.wmu.Unlock()
	if err != nil && rt.cfg.Logf != nil {
		rt.cfg.Logf("router: poke: %v", err)
	}
}

// Dialer returns a route-following dial function for one device, in the
// shape client.Config.Route expects: each call routes the device under
// the newest table and reports moved=true when the owner differs from
// the previous successful dial — the signal that the parked session (if
// any) is on a different shard and Resume must be skipped.
func (rt *Router) Dialer(deviceID uint64) func() (conn net.Conn, moved bool, err error) {
	if rt.cfg.DialShard == nil {
		return func() (net.Conn, bool, error) {
			return nil, false, fmt.Errorf("cluster: router: DialShard is required for Dialer")
		}
	}
	var last uint64
	hasLast := false
	return func() (net.Conn, bool, error) {
		shard, addr, epoch, err := rt.Lookup(deviceID)
		if err != nil {
			return nil, false, err
		}
		conn, err := rt.cfg.DialShard(addr)
		if err != nil {
			rt.Poke(epoch)
			return nil, false, err
		}
		moved := hasLast && shard != last
		last, hasLast = shard, true
		return conn, moved, nil
	}
}
