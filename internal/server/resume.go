package server

import "time"

// sessionKey identifies a parked session: the device plus the session
// token both ends derive from the Hello (wire.SessionToken), so a resume
// cannot adopt a session opened under different parameters.
type sessionKey struct {
	device uint64
	token  uint64
}

// parkedEntry is one detached session awaiting resume. Entries live in
// both the detached map (lookup) and parkOrder (FIFO age order); an
// entry superseded in the map stays in parkOrder as a stale marker and
// is skipped when it reaches the front.
type parkedEntry struct {
	key       sessionKey
	sess      *session
	expiry    time.Time
	hasExpiry bool
}

// park moves sess into the detached registry for later resume. It
// refuses — returning false so the caller falls back to a terminal
// error — when parking is disabled (ResumeGrace < 0) or the server is
// draining. Expiry is armed only under an injected Clock; without one
// the registry is bounded by RetainSessions alone.
func (s *Server) park(sess *session) bool {
	if s.cfg.ResumeGrace < 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.sweepDetachedLocked()
	e := &parkedEntry{
		key:  sessionKey{device: sess.hello.DeviceID, token: sess.token},
		sess: sess,
	}
	if s.cfg.Clock != nil {
		e.expiry = s.cfg.Clock().Add(s.cfg.ResumeGrace)
		e.hasExpiry = true
	}
	_, superseded := s.detached[e.key]
	s.detached[e.key] = e
	s.parkOrder = append(s.parkOrder, e)
	// One transition: the registry gained an entry, minus the same-key
	// session it displaced (whose parkOrder entry goes stale and is
	// dropped during pops). Parked itself is counted by serveSession's
	// outcome transition, paired with the Active release.
	s.count(func(c *Counters) {
		c.Detached++
		if superseded {
			c.Discarded++
			c.Detached--
		}
	})
	for len(s.detached) > s.cfg.RetainSessions {
		s.evictOldestLocked()
	}
	return true
}

// takeDetached removes and returns the parked session for key, or nil.
// Removal under the lock makes resume adoption an ownership transfer:
// two racing Resume frames for one key cannot both win.
func (s *Server) takeDetached(key sessionKey) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepDetachedLocked()
	e, ok := s.detached[key]
	if !ok {
		return nil
	}
	delete(s.detached, key)
	return e.sess
}

// dropDetached discards any parked session for key. A cleanly completed
// session calls it so a stale parked twin (parked, then healed via a
// full Hello replay instead of resume) does not linger to expiry.
func (s *Server) dropDetached(key sessionKey) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.detached[key]; ok {
		delete(s.detached, key)
		s.count(func(c *Counters) {
			c.Discarded++
			c.Detached--
		})
	}
}

// sweepDetachedLocked expires parked sessions whose grace has elapsed.
// Entries are appended in park order under a constant grace, so expiry
// is monotone along parkOrder: walk from the front, dropping stale
// markers, until the first live unexpired entry.
func (s *Server) sweepDetachedLocked() {
	if s.cfg.Clock == nil {
		return
	}
	now := s.cfg.Clock()
	for len(s.parkOrder) > 0 {
		e := s.parkOrder[0]
		if s.detached[e.key] != e {
			s.parkOrder = s.parkOrder[1:] // stale: superseded or taken
			continue
		}
		if !e.hasExpiry || now.Before(e.expiry) {
			return
		}
		s.parkOrder = s.parkOrder[1:]
		delete(s.detached, e.key)
		s.count(func(c *Counters) {
			c.Discarded++
			c.Detached--
		})
	}
}

// evictOldestLocked discards the oldest live parked session, keeping
// the registry within RetainSessions.
func (s *Server) evictOldestLocked() {
	for len(s.parkOrder) > 0 {
		e := s.parkOrder[0]
		s.parkOrder = s.parkOrder[1:]
		if s.detached[e.key] != e {
			continue // stale marker
		}
		delete(s.detached, e.key)
		s.count(func(c *Counters) {
			c.Discarded++
			c.Detached--
		})
		return
	}
}

// discardDetachedLocked empties the registry (Shutdown), counting every
// dropped session.
func (s *Server) discardDetachedLocked() {
	n := len(s.detached)
	if n == 0 && len(s.parkOrder) == 0 {
		return
	}
	s.detached = make(map[sessionKey]*parkedEntry)
	s.parkOrder = nil
	s.count(func(c *Counters) {
		c.Discarded += uint64(n)
		c.Detached -= uint64(n)
	})
}
