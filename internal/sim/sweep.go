package sim

import (
	"fmt"
	"time"

	"etrain/internal/sched"
)

// EDPoint is one point on an energy–delay panel (the paper's E-D panel,
// Fig. 7b / Fig. 8a).
type EDPoint struct {
	// Control is the tuning-parameter value that produced the point
	// (Θ for eTrain, Ω for PerES, V for eTime).
	Control float64
	// EnergyJoules is the run's total radio energy.
	EnergyJoules float64
	// Delay is the normalized delay.
	Delay time.Duration
	// ViolationRatio is the deadline violation ratio.
	ViolationRatio float64
}

// StrategyFactory builds a fresh strategy for a given control-parameter
// value. Strategies are stateful, so sweeps construct a new one per run.
type StrategyFactory func(control float64) (sched.Strategy, error)

// Sweep runs the configuration once per control value and returns the E–D
// points in input order.
func Sweep(cfg Config, factory StrategyFactory, controls []float64) ([]EDPoint, error) {
	points := make([]EDPoint, 0, len(controls))
	for _, ctrl := range controls {
		strategy, err := factory(ctrl)
		if err != nil {
			return nil, fmt.Errorf("sweep control %v: %w", ctrl, err)
		}
		cfg.Strategy = strategy
		res, err := Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("sweep control %v: %w", ctrl, err)
		}
		points = append(points, EDPoint{
			Control:        ctrl,
			EnergyJoules:   res.Energy.Total(),
			Delay:          res.NormalizedDelay(),
			ViolationRatio: res.DeadlineViolationRatio(),
		})
	}
	return points, nil
}

// calibrationTolerance is the delay slack within which calibration picks
// the cheapest point rather than the closest-delay one. Strategies whose
// delay curve flattens near the target (eTrain past its train-gap floor)
// would otherwise be charged for an arbitrary point on a steep energy
// gradient.
const calibrationTolerance = 4 * time.Second

// CalibrateDelay finds, by bisection over [lo, hi], the control value whose
// run meets the target normalized delay, assuming delay is non-decreasing
// in the control (true for Θ, Ω and V). Among evaluated points within
// calibrationTolerance of the target it returns the lowest-energy one;
// otherwise the closest-delay one. This mirrors the paper's Fig. 8b
// methodology: "picking the right value of Ω, V and Θ" so every strategy is
// compared at the same delay.
func CalibrateDelay(cfg Config, factory StrategyFactory, target time.Duration, lo, hi float64, iterations int) (EDPoint, error) {
	if iterations <= 0 {
		iterations = 12
	}
	evaluate := func(ctrl float64) (EDPoint, error) {
		pts, err := Sweep(cfg, factory, []float64{ctrl})
		if err != nil {
			return EDPoint{}, err
		}
		return pts[0], nil
	}

	var evaluated []EDPoint
	loPt, err := evaluate(lo)
	if err != nil {
		return EDPoint{}, err
	}
	evaluated = append(evaluated, loPt)

	hiPt, err := evaluate(hi)
	if err != nil {
		return EDPoint{}, err
	}
	evaluated = append(evaluated, hiPt)

	for i := 0; i < iterations; i++ {
		mid := (lo + hi) / 2
		pt, err := evaluate(mid)
		if err != nil {
			return EDPoint{}, err
		}
		evaluated = append(evaluated, pt)
		if pt.Delay < target {
			lo = mid
		} else {
			hi = mid
		}
	}

	// Bisection stops as soon as it brackets the target, but when the
	// delay curve flattens past it (energy still falling), cheaper
	// settings remain within tolerance at higher controls. Probe a few.
	pivot := (lo + hi) / 2
	for _, mult := range []float64{1.3, 1.7, 2.4} {
		ctrl := pivot * mult
		if ctrl <= pivot {
			break
		}
		pt, err := evaluate(ctrl)
		if err != nil {
			return EDPoint{}, err
		}
		evaluated = append(evaluated, pt)
		if absDuration(pt.Delay-target) > calibrationTolerance {
			break // delay left the tolerance band; further probes only worsen it
		}
	}

	best := evaluated[0]
	bestWithin := false
	for _, pt := range evaluated {
		within := absDuration(pt.Delay-target) <= calibrationTolerance
		switch {
		case within && !bestWithin:
			best, bestWithin = pt, true
		case within && bestWithin && pt.EnergyJoules < best.EnergyJoules:
			best = pt
		case !within && !bestWithin &&
			absDuration(pt.Delay-target) < absDuration(best.Delay-target):
			best = pt
		}
	}
	return best, nil
}

func absDuration(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}
