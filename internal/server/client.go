package server

import (
	"fmt"
	"io"
	"net"
	"sort"

	"etrain/internal/fleet"
	"etrain/internal/heartbeat"
	"etrain/internal/profile"
	"etrain/internal/wire"
)

// Session is one device's wire-ready replay: the Hello and the
// time-ordered event frames a client sends. Events interleave heartbeats
// and cargo by instant so the server's engine can execute each slot as
// soon as its inputs are complete.
type Session struct {
	Hello  wire.Hello
	Events []wire.Message
}

// SessionFromDevice converts a synthesized fleet device into its wire
// replay under the given eTrain parameters. It fails on packets whose
// profile has no wire kind (profile.KindOf). A device carrying an explicit
// beat schedule (diurnal synthesis) replays those beats verbatim.
func SessionFromDevice(dev fleet.Device, theta float64, k int) (Session, error) {
	beats := dev.Beats
	if beats == nil {
		beats = heartbeat.Merge(dev.Trains, dev.Horizon)
	}
	events := make([]wire.Message, 0, len(beats)+len(dev.Packets))
	for _, b := range beats {
		events = append(events, wire.HeartbeatObserved{At: b.At, App: b.App, Size: b.Size})
	}
	for _, p := range dev.Packets {
		kind, ok := profile.KindOf(p.Profile)
		if !ok {
			return Session{}, fmt.Errorf("server: device %d packet %d: profile %q has no wire kind", dev.Index, p.ID, p.Profile.Name())
		}
		events = append(events, wire.CargoArrival{
			ID:       uint64(p.ID),
			At:       p.ArrivedAt,
			App:      p.App,
			Size:     p.Size,
			Profile:  kind,
			Deadline: p.Profile.Deadline(),
		})
	}
	sort.SliceStable(events, func(i, j int) bool { return eventAt(events[i]) < eventAt(events[j]) })
	return Session{
		Hello: wire.Hello{
			DeviceID: uint64(dev.Index),
			Seed:     dev.BandwidthSeed,
			Theta:    theta,
			K:        uint32(k),
			Horizon:  dev.Horizon,
		},
		Events: events,
	}, nil
}

// eventAt returns an event frame's instant for time-ordering.
func eventAt(m wire.Message) int64 {
	switch v := m.(type) {
	case wire.HeartbeatObserved:
		return int64(v.At)
	case wire.CargoArrival:
		return int64(v.At)
	default:
		return 0
	}
}

// DeviceOutcome is what one driven session produced: the server's
// Decision stream and its final metrics snapshot.
type DeviceOutcome struct {
	Decisions []wire.Decision
	Stats     wire.StatsSnapshot
}

// Drive replays one session over conn and collects the server's output.
// It is the protocol's reference client, shared by the equivalence tests
// and cmd/etrain-load. Drive writes from the calling goroutine while a
// spawned goroutine consumes server frames, so it works over synchronous
// transports like net.Pipe; it closes conn before returning.
func Drive(conn net.Conn, s Session) (*DeviceOutcome, error) {
	defer conn.Close()

	type result struct {
		out *DeviceOutcome
		err error
	}
	done := make(chan result, 1)
	go func() {
		out, err := collect(conn, s.Hello.DeviceID)
		done <- result{out: out, err: err}
	}()

	w := wire.NewWriter(conn)
	writeErr := func() error {
		if err := w.Write(s.Hello); err != nil {
			return fmt.Errorf("server: client hello: %w", err)
		}
		for _, ev := range s.Events {
			if err := w.Write(ev); err != nil {
				return fmt.Errorf("server: client event: %w", err)
			}
		}
		if err := w.Write(wire.Ack{Seq: uint64(len(s.Events)) + 1}); err != nil {
			return fmt.Errorf("server: client finish ack: %w", err)
		}
		return nil
	}()

	res := <-done
	if res.err != nil {
		return nil, res.err
	}
	if writeErr != nil {
		// The server closed mid-write yet still produced a full protocol
		// exchange; trust the collected outcome only if writes all landed.
		return nil, writeErr
	}
	return res.out, nil
}

// collect reads the server's frames until the closing Ack: the admission
// Ack{0}, then decisions, then StatsSnapshot, then the echoed Ack.
func collect(conn net.Conn, deviceID uint64) (*DeviceOutcome, error) {
	r := wire.NewReader(conn)
	first, err := r.Next()
	if err != nil {
		return nil, fmt.Errorf("server: client reading admission: %w", err)
	}
	if ack, ok := first.(wire.Ack); !ok || ack.Seq != 0 {
		return nil, fmt.Errorf("server: admission frame %v, want ack{0}", first)
	}
	out := &DeviceOutcome{}
	sawStats := false
	for {
		m, err := r.Next()
		if err != nil {
			if err == io.EOF && sawStats {
				return nil, fmt.Errorf("server: connection closed before final ack")
			}
			return nil, fmt.Errorf("server: client reading frame: %w", err)
		}
		switch v := m.(type) {
		case wire.Decision:
			if sawStats {
				return nil, fmt.Errorf("server: decision after stats snapshot")
			}
			out.Decisions = append(out.Decisions, v)
		case wire.StatsSnapshot:
			if v.DeviceID != deviceID {
				return nil, fmt.Errorf("server: stats for device %d, want %d", v.DeviceID, deviceID)
			}
			out.Stats = v
			sawStats = true
		case wire.Ack:
			if !sawStats {
				return nil, fmt.Errorf("server: final ack before stats snapshot")
			}
			return out, nil
		default:
			return nil, fmt.Errorf("server: unexpected %s frame from server", m.MsgType())
		}
	}
}
