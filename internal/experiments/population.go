package experiments

import (
	"fmt"

	"etrain/internal/fleet"
	"etrain/internal/workload"
)

// Fig11Pop scales the Fig. 11 user-activeness experiment from the paper's
// ~100-user deployment to a synthesized device population run through the
// fleet engine: per class it reports the mean energy without and with
// eTrain plus the p10/p50/p90 of the per-device fractional saving —
// distributional shape the paper's per-group averages cannot show.
//
// Each fleet device is a full eTrain system (1–3 heartbeat trains,
// session uploads plus activeness-scaled background cargo), so the
// per-class savings are not numerically comparable to Fig11's pure
// session replays; the note records how the ordering compares.
func Fig11Pop(opts Options) (*Table, error) {
	// ~120 devices per class on average: big enough for stable deciles,
	// small enough to keep the default experiment sweep fast.
	const popDevices = 360
	const popShardSize = 60
	const fig11Theta = 4.0
	rep, err := fleet.Run(fleet.Config{
		Devices:   popDevices,
		ShardSize: popShardSize,
		Workers:   opts.workersOr1(),
		Seed:      opts.Seed + 11,
		// Horizon is the per-device session, not the experiment span;
		// opts.Horizon (meant for the 2-hour sweeps) is deliberately
		// ignored so fig11pop always replays the paper's 10-minute window.
		Theta: fig11Theta,
		K:     20,
		Mix: []workload.ClassShare{
			{Class: workload.ClassActive, Weight: 1},
			{Class: workload.ClassModerate, Weight: 1},
			{Class: workload.ClassInactive, Weight: 1},
		},
	})
	if err != nil {
		return nil, fmt.Errorf("fig11pop: %w", err)
	}

	tbl := &Table{
		ID:      "fig11pop",
		Title:   "Population-scale user-activeness savings (fleet engine, equal-share classes)",
		Columns: []string{"class", "devices", "without_J", "with_J", "saving_p10", "saving_p50", "saving_p90"},
	}
	rows := append(append([]fleet.ClassRow(nil), rep.Classes...), fleet.ClassRow{Label: "all", Agg: rep.Total})
	for _, row := range rows {
		p10, err := row.Agg.SavingSketch.Quantile(10)
		if err != nil {
			return nil, fmt.Errorf("fig11pop class %s: %w", row.Label, err)
		}
		p50, err := row.Agg.SavingSketch.Quantile(50)
		if err != nil {
			return nil, fmt.Errorf("fig11pop class %s: %w", row.Label, err)
		}
		p90, err := row.Agg.SavingSketch.Quantile(90)
		if err != nil {
			return nil, fmt.Errorf("fig11pop class %s: %w", row.Label, err)
		}
		tbl.AddRow(row.Label, row.Agg.Devices,
			row.Agg.WithoutJ.Mean(), row.Agg.WithJ.Mean(),
			fmt.Sprintf("%.1f%%", p10*100),
			fmt.Sprintf("%.1f%%", p50*100),
			fmt.Sprintf("%.1f%%", p90*100))
	}
	tbl.AddNote("paper fig11: per-class averages over ~100 deployed users (active 23.1%%, inactive 13.3%%).")
	tbl.AddNote("fleet devices add 1-3 trains and activeness-scaled background cargo, so absolute savings differ from the session-only fig11 replay; the population adds decile spread per class.")
	tbl.AddNote("config_hash=%s devices=%d shards=%d", rep.ConfigHash, rep.Devices, rep.Shards)
	return tbl, nil
}
