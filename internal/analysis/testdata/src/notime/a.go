// Package notime exercises the notime analyzer: wall-clock reads are
// flagged, time.Duration arithmetic and constructors are not.
package notime

import "time"

func bad() time.Time {
	time.Sleep(time.Second)          // want `time\.Sleep reads the wall clock`
	if time.Since(time.Time{}) > 0 { // want `time\.Since reads the wall clock`
		_ = time.Now() // want `time\.Now reads the wall clock`
	}
	t := time.NewTimer(time.Second) // want `time\.NewTimer reads the wall clock`
	defer t.Stop()
	return time.Now() // want `time\.Now reads the wall clock`
}

func good(now time.Duration) time.Duration {
	deadline := now + 5*time.Second
	step := time.Duration(3) * time.Millisecond
	when := time.Unix(0, int64(deadline))
	_ = when
	return deadline + step
}

func justified() time.Time {
	return time.Now() //lint:ignore notime test fixture for the sanctioned trailing-ignore form
}
