package sched

import (
	"time"

	"etrain/internal/workload"
)

// TxQueue is the paper's Q_TX: a FIFO transmission queue buffering packets
// that should be transmitted as soon as possible. Whenever the queue is
// non-empty and there is radio resource available, the head-of-line packet
// is transmitted (§IV).
type TxQueue struct {
	packets []workload.Packet
	// enqueuedAt records when each packet entered Q_TX (for queueing
	// statistics), parallel to packets.
	enqueuedAt []time.Duration
}

// Inject appends the scheduler's selection Q*(t) to the transmission queue
// in order.
func (q *TxQueue) Inject(at time.Duration, selected []workload.Packet) {
	q.packets = append(q.packets, selected...)
	for range selected {
		q.enqueuedAt = append(q.enqueuedAt, at)
	}
}

// Len reports the queued packet count.
func (q *TxQueue) Len() int { return len(q.packets) }

// Pop removes and returns the head-of-line packet and its injection time.
func (q *TxQueue) Pop() (workload.Packet, time.Duration, bool) {
	if len(q.packets) == 0 {
		return workload.Packet{}, 0, false
	}
	p := q.packets[0]
	at := q.enqueuedAt[0]
	q.packets = q.packets[1:]
	q.enqueuedAt = q.enqueuedAt[1:]
	return p, at, true
}

// Peek returns the head-of-line packet without removing it.
func (q *TxQueue) Peek() (workload.Packet, bool) {
	if len(q.packets) == 0 {
		return workload.Packet{}, false
	}
	return q.packets[0], true
}
