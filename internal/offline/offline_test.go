package offline

import (
	"testing"
	"time"

	"etrain/internal/heartbeat"
	"etrain/internal/profile"
	"etrain/internal/radio"
	"etrain/internal/randx"
	"etrain/internal/workload"
)

func beatAt(at time.Duration) heartbeat.Beat {
	return heartbeat.Beat{At: at, App: "train", Size: 100}
}

func pkt(id int, arrived time.Duration, deadline time.Duration) workload.Packet {
	return workload.Packet{
		ID: id, App: "weibo", ArrivedAt: arrived, Size: 2048,
		Profile: profile.Weibo(deadline),
	}
}

func smallInstance() Instance {
	return Instance{
		Beats:   []heartbeat.Beat{beatAt(100 * time.Second), beatAt(300 * time.Second)},
		Packets: []workload.Packet{pkt(0, 10*time.Second, 600*time.Second), pkt(1, 50*time.Second, 600*time.Second)},
		Power:   radio.GalaxyS43G(),
		Horizon: 600 * time.Second,
	}
}

func TestValidate(t *testing.T) {
	inst := smallInstance()
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := inst
	bad.Horizon = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero horizon accepted")
	}
	bad = inst
	bad.Packets = []workload.Packet{{ID: 1, ArrivedAt: time.Second}}
	if err := bad.Validate(); err == nil {
		t.Fatal("profile-less packet accepted")
	}
	bad = inst
	bad.Beats = []heartbeat.Beat{beatAt(300 * time.Second), beatAt(100 * time.Second)}
	if err := bad.Validate(); err == nil {
		t.Fatal("unsorted beats accepted")
	}
}

func TestSolveRidesTrains(t *testing.T) {
	inst := smallInstance()
	sched, err := Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	// With no cost budget the optimum co-schedules both packets with the
	// first train after their arrivals.
	for id, at := range sched.Times {
		if at != 100*time.Second {
			t.Fatalf("packet %d scheduled at %v, want the 100s train", id, at)
		}
	}
	lower, err := LowerBound(inst)
	if err != nil {
		t.Fatal(err)
	}
	if sched.EnergyJoules > lower*1.02 {
		t.Fatalf("optimal %.2f J far above lower bound %.2f J", sched.EnergyJoules, lower)
	}
}

func TestSolveRespectsCostBudget(t *testing.T) {
	inst := smallInstance()
	// Budget so tight the packets cannot wait for the train.
	inst.CostBudget = 0.05
	sched, err := Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	if sched.TotalCost > 0.05+1e-9 {
		t.Fatalf("budget violated: %v", sched.TotalCost)
	}
	// The tight budget forces near-arrival transmission.
	unbounded, err := Solve(smallInstance())
	if err != nil {
		t.Fatal(err)
	}
	if sched.EnergyJoules <= unbounded.EnergyJoules {
		t.Fatalf("tight budget (%.1f J) should cost more energy than unbounded (%.1f J)",
			sched.EnergyJoules, unbounded.EnergyJoules)
	}
}

func TestSolveInfeasibleBudget(t *testing.T) {
	inst := smallInstance()
	// Weibo's cost is 0 only exactly at arrival; even at-arrival serialized
	// cost may exceed a negative-ish budget. Use a budget no candidate can
	// satisfy by making all candidates late.
	inst.Packets = []workload.Packet{pkt(0, 10*time.Second, time.Second)}
	inst.Beats = nil
	inst.CostBudget = -1 // sentinel below any achievable non-negative cost
	// CostBudget <= 0 means unbounded per API, so craft infeasibility via
	// an impossible combination instead: budget tiny but positive with a
	// packet whose every candidate incurs cost > budget.
	inst.CostBudget = 1e-12
	if _, err := Solve(inst); err != nil {
		// Acceptable: no candidate with zero cost (arrival candidate has
		// cost 0, so this may actually be feasible).
		return
	}
}

func TestSolveCapsInstanceSize(t *testing.T) {
	inst := smallInstance()
	for i := 0; i < 20; i++ {
		inst.Packets = append(inst.Packets, pkt(100+i, time.Duration(i)*time.Second, 600*time.Second))
	}
	if _, err := Solve(inst); err == nil {
		t.Fatal("oversized instance accepted")
	}
}

func TestEvaluateSerializes(t *testing.T) {
	inst := smallInstance()
	inst.defaults()
	// Both packets requested at the same instant must serialize without
	// error and cost the later one its queueing delay.
	energy, cost, err := inst.Evaluate([]time.Duration{100 * time.Second, 100 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if energy <= 0 {
		t.Fatal("no energy accounted")
	}
	if cost <= 0 {
		t.Fatal("waiting packets must have accrued cost")
	}
}

func TestEvaluateWrongLength(t *testing.T) {
	inst := smallInstance()
	if _, _, err := inst.Evaluate([]time.Duration{0}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestLowerBoundBelowEveryFeasibleSchedule(t *testing.T) {
	src := randx.New(3)
	for trial := 0; trial < 10; trial++ {
		inst := Instance{
			Beats: []heartbeat.Beat{
				beatAt(time.Duration(60+src.Intn(60)) * time.Second),
				beatAt(time.Duration(200+src.Intn(100)) * time.Second),
			},
			Power:   radio.GalaxyS43G(),
			Horizon: 600 * time.Second,
		}
		n := 2 + src.Intn(3)
		for i := 0; i < n; i++ {
			inst.Packets = append(inst.Packets,
				pkt(i, time.Duration(src.Intn(150))*time.Second, 600*time.Second))
		}
		lower, err := LowerBound(inst)
		if err != nil {
			t.Fatal(err)
		}
		sched, err := Solve(inst)
		if err != nil {
			t.Fatal(err)
		}
		if sched.EnergyJoules < lower-1e-9 {
			t.Fatalf("trial %d: optimal %.3f below lower bound %.3f", trial, sched.EnergyJoules, lower)
		}
		// A deliberately bad schedule (everything at arrival) can't beat
		// the optimum.
		starts := make([]time.Duration, len(inst.Packets))
		for i, p := range inst.Packets {
			starts[i] = p.ArrivedAt
		}
		energy, _, err := inst.Evaluate(starts)
		if err != nil {
			t.Fatal(err)
		}
		if energy < sched.EnergyJoules-1e-9 {
			t.Fatalf("trial %d: arrival schedule %.3f beats 'optimal' %.3f", trial, energy, sched.EnergyJoules)
		}
	}
}

func TestSolveDeterministic(t *testing.T) {
	a, err := Solve(smallInstance())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(smallInstance())
	if err != nil {
		t.Fatal(err)
	}
	if a.EnergyJoules != b.EnergyJoules || a.TotalCost != b.TotalCost {
		t.Fatal("solver not deterministic")
	}
}

func TestCandidatesWindow(t *testing.T) {
	inst := smallInstance()
	inst.MaxWait = 50 * time.Second
	inst.defaults()
	cands := inst.candidates(inst.Packets[0]) // arrives at 10s, window ends 60s
	for _, at := range cands {
		if at > 60*time.Second {
			t.Fatalf("candidate %v outside the 50s window", at)
		}
	}
	if cands[0] != 10*time.Second {
		t.Fatalf("first candidate %v, want arrival", cands[0])
	}
}

func TestLowerBoundNoBeats(t *testing.T) {
	inst := Instance{
		Packets: []workload.Packet{pkt(0, time.Second, time.Minute)},
		Power:   radio.GalaxyS43G(),
		Horizon: time.Minute,
	}
	lower, err := LowerBound(inst)
	if err != nil {
		t.Fatal(err)
	}
	// With no beats there is nothing unavoidable: the bound is zero (the
	// packet's transmit energy may displace tail time, so it is not
	// additive; see the LowerBound doc comment).
	if lower != 0 {
		t.Fatalf("beat-less lower bound = %v, want 0", lower)
	}
}

func TestLowerBoundPointwiseArgument(t *testing.T) {
	// The bound must survive the scenario that broke the naive
	// "beats + transmit energy" bound: data squeezed between two close
	// beats displaces FACH-tail time, making total energy less than
	// beats-plus-tx would claim.
	inst := Instance{
		Beats:   []heartbeat.Beat{beatAt(0), beatAt(16 * time.Second)},
		Packets: []workload.Packet{pkt(0, 0, 10*time.Minute)},
		Power:   radio.GalaxyS43G(),
		Horizon: 2 * time.Minute,
	}
	lower, err := LowerBound(inst)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	if sched.EnergyJoules < lower-1e-9 {
		t.Fatalf("optimum %.4f J below lower bound %.4f J", sched.EnergyJoules, lower)
	}
}
