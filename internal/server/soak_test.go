package server

import (
	"context"
	"net"
	"testing"
	"time"

	"etrain/internal/fleet"
	"etrain/internal/parallel"
)

// TestLoopbackSoak replays a synthesized fleet through one server over
// concurrent loopback connections — the CI `serve` job runs it under
// -race — then drains the server and audits the counters: every session
// completed, none errored, nothing left active.
func TestLoopbackSoak(t *testing.T) {
	devices := 1000
	if testing.Short() {
		devices = 64
	}
	const conns = 16
	horizon := 2 * time.Minute

	pop := testPopulation(t)
	srv := New(Config{})
	err := parallel.ForEach(parallel.NewLimit(conns), devices, func(i int) error {
		dev, err := fleet.SynthesizeDevice(7, pop, i, horizon)
		if err != nil {
			return err
		}
		sess, err := SessionFromDevice(dev, testTheta, testK)
		if err != nil {
			return err
		}
		client, serverSide := net.Pipe()
		srvErr := make(chan error, 1)
		go func() { srvErr <- srv.ServeConn(serverSide) }()
		out, err := Drive(client, sess)
		if err != nil {
			return err
		}
		if err := <-srvErr; err != nil {
			return err
		}
		if out.Stats.DeviceID != uint64(i) {
			t.Errorf("device %d: stats echo device %d", i, out.Stats.DeviceID)
		}
		// Every device sends heartbeats, so a session with zero heartbeat
		// transmissions means the engine never ran.
		if out.Stats.Heartbeats == 0 {
			t.Errorf("device %d: no heartbeats transmitted", i)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("soak: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful drain: %v", err)
	}
	s := srv.Stats()
	if s.Completed != uint64(devices) || s.Errored != 0 || s.Panics != 0 || s.Active != 0 {
		t.Errorf("counters after soak: %+v, want %d completed and nothing else", s, devices)
	}
	if s.Decisions == 0 || s.FramesIn == 0 || s.FramesOut == 0 {
		t.Errorf("counters after soak show no traffic: %+v", s)
	}
}
