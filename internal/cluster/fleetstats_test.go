package cluster

import (
	"bytes"
	"strings"
	"testing"

	"etrain/internal/wire"
)

// synthSnapshot builds a deterministic per-device snapshot from the
// device index alone — no randomness, so every test run folds identical
// inputs.
func synthSnapshot(i int) wire.StatsSnapshot {
	f := float64(i + 1)
	return wire.StatsSnapshot{
		DeviceID:       uint64(i),
		EnergyJ:        100.0/f + 3.25*f,
		AvgDelayS:      1.0 / (f + 0.5),
		ViolationRatio: float64(i%7) / 13.0,
		DataPackets:    uint64(3*i + 1),
		Heartbeats:     uint64(17 + i%5),
		ForcedFlush:    uint64(i % 3),
	}
}

func foldDeviceOrder(t *testing.T, n int) *FleetStats {
	t.Helper()
	fs, err := NewFleetStats(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		fs.Add(synthSnapshot(i))
	}
	return fs
}

// TestFleetStatsFoldReproducible: the device-order fold is bit-exactly
// reproducible — two independent folds of the same device set render
// byte-identical text reports.
func TestFleetStatsFoldReproducible(t *testing.T) {
	a, b := foldDeviceOrder(t, 300), foldDeviceOrder(t, 300)
	if a.Report() != b.Report() {
		t.Fatalf("reports differ:\n%+v\n%+v", a.Report(), b.Report())
	}
	var ta, tb bytes.Buffer
	if err := a.Report().WriteText(&ta); err != nil {
		t.Fatal(err)
	}
	if err := b.Report().WriteText(&tb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ta.Bytes(), tb.Bytes()) {
		t.Fatalf("text reports differ:\n%s\n%s", ta.String(), tb.String())
	}
}

// TestFleetStatsShardingInvariance is the cluster's merged-stats
// contract: per-device snapshots collected from ANY shard layout, then
// folded in device-index order, give the same bits as a single-process
// run. The shard layout only decides who produced each snapshot — the
// snapshots themselves are deterministic per device, and the fold order
// is fixed — so the aggregate is a pure function of the device set.
func TestFleetStatsShardingInvariance(t *testing.T) {
	const devices = 300
	baseline := foldDeviceOrder(t, devices)

	for _, members := range [][]uint64{{1}, {1, 2, 3}, {4, 9, 23, 99}} {
		ring := BuildRing(42, DefaultVnodes, members)
		// "Serve" each device on its shard: collect snapshots into a
		// device-indexed slice, as etrain-load does, regardless of which
		// shard produced them or in what completion order they landed.
		collected := make([]wire.StatsSnapshot, devices)
		for _, m := range members {
			for i := devices - 1; i >= 0; i-- { // per-shard completion order scrambled
				if owner, _ := ring.Owner(uint64(i)); owner == m {
					collected[i] = synthSnapshot(i)
				}
			}
		}
		fs, err := NewFleetStats(0)
		if err != nil {
			t.Fatal(err)
		}
		for i := range collected {
			fs.Add(collected[i])
		}
		if fs.Report() != baseline.Report() {
			t.Fatalf("%d-shard layout %v changed the fleet report:\n got %+v\nwant %+v",
				len(members), members, fs.Report(), baseline.Report())
		}
	}
}

// TestFleetStatsMerge: a fixed partition merged in a fixed order is
// reproducible, and the counting fields are exact sums.
func TestFleetStatsMerge(t *testing.T) {
	build := func() *FleetStats {
		lo, err := NewFleetStats(0)
		if err != nil {
			t.Fatal(err)
		}
		hi, err := NewFleetStats(0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			lo.Add(synthSnapshot(i))
		}
		for i := 100; i < 250; i++ {
			hi.Add(synthSnapshot(i))
		}
		if err := lo.Merge(hi); err != nil {
			t.Fatal(err)
		}
		return lo
	}
	a, b := build(), build()
	if a.Report() != b.Report() {
		t.Fatalf("same partition, same merge order, different bits:\n%+v\n%+v", a.Report(), b.Report())
	}
	if a.Devices() != 250 {
		t.Fatalf("merged devices %d, want 250", a.Devices())
	}
	seq := foldDeviceOrder(t, 250)
	ra, rs := a.Report(), seq.Report()
	// The sketch merge is exactly associative, and the counting fields are
	// integer sums — those must match the sequential fold bit for bit.
	// (Moments regrouping is reproducible but not required to match the
	// sequential grouping exactly; CI's cross-run equality rides the
	// device-order Add path.)
	if ra.DelayP50S != rs.DelayP50S || ra.DelayP90S != rs.DelayP90S || ra.DelayP99S != rs.DelayP99S {
		t.Errorf("sketch quantiles differ from sequential fold: %+v vs %+v", ra, rs)
	}
	if ra.Devices != rs.Devices || ra.DataPackets != rs.DataPackets ||
		ra.Heartbeats != rs.Heartbeats || ra.ForcedFlush != rs.ForcedFlush {
		t.Errorf("counting fields differ from sequential fold: %+v vs %+v", ra, rs)
	}
}

// TestFleetReportWriteText pins the text block's shape: every line
// starts with "fleet" (CI extracts the block with a prefix grep) and the
// field order is fixed.
func TestFleetReportWriteText(t *testing.T) {
	var buf bytes.Buffer
	if err := (foldDeviceOrder(t, 10).Report()).WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	wantPrefixes := []string{
		"fleet devices",
		"fleet energy_j",
		"fleet delay_s",
		"fleet violation",
		"fleet packets",
	}
	if len(lines) != len(wantPrefixes) {
		t.Fatalf("%d lines, want %d:\n%s", len(lines), len(wantPrefixes), buf.String())
	}
	for i, want := range wantPrefixes {
		if !strings.HasPrefix(lines[i], want) {
			t.Errorf("line %d = %q, want prefix %q", i, lines[i], want)
		}
	}
	if !strings.Contains(lines[0], " 10") {
		t.Errorf("devices line %q does not count 10", lines[0])
	}
}

// TestFleetStatsEmpty: an empty accumulator reports zeros and renders
// without error.
func TestFleetStatsEmpty(t *testing.T) {
	fs, err := NewFleetStats(0)
	if err != nil {
		t.Fatal(err)
	}
	r := fs.Report()
	if r != (FleetReport{}) {
		t.Fatalf("empty report %+v", r)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFleetStatsAdd(b *testing.B) {
	fs, err := NewFleetStats(0)
	if err != nil {
		b.Fatal(err)
	}
	snaps := make([]wire.StatsSnapshot, 256)
	for i := range snaps {
		snaps[i] = synthSnapshot(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs.Add(snaps[i%len(snaps)])
	}
}
