package analysis_test

import (
	"testing"

	"etrain/internal/analysis"
	"etrain/internal/analysis/analysistest"
)

// Each analyzer runs against a violating fixture package and against the
// fixture standing in for its sanctioned (exempt) package: the exempt run
// must produce zero diagnostics even though the code would otherwise trip
// the check.

func TestNoTime(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), analysis.NoTime,
		"notime", "etrain/internal/simtime")
}

func TestNoRand(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), analysis.NoRand,
		"norand", "etrain/internal/randx")
}

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), analysis.MapOrder,
		"maporder")
}

func TestUnits(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), analysis.Units,
		"units")
}

func TestCtxLoop(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), analysis.CtxLoop,
		"etrain/internal/parallel", "ctxloopscope")
}

// TestResiliencePatrol runs the determinism patrols together over the
// resilience-layer fixtures: faultnet and the self-healing client are in
// ctxloop's fan-out set and subject to notime/norand like any sim-path
// package, and their fixtures carry want comments for all three at once.
func TestResiliencePatrol(t *testing.T) {
	analysistest.RunAll(t, analysistest.TestData(t),
		[]*analysis.Analyzer{analysis.CtxLoop, analysis.NoTime, analysis.NoRand},
		"etrain/internal/faultnet", "etrain/internal/client")
}

// TestScenarioPatrol holds the scenario engine to the same bar: its
// report must be a pure function of the document, so the fixture
// carries wall-clock, PRNG and goroutine-hygiene violations for the
// combined patrol to flag.
func TestScenarioPatrol(t *testing.T) {
	analysistest.RunAll(t, analysistest.TestData(t),
		[]*analysis.Analyzer{analysis.CtxLoop, analysis.NoTime, analysis.NoRand},
		"etrain/internal/scenario")
}

// TestClusterPatrol extends the union patrol to the control plane:
// route-table pushes and shard beats are control-frame write paths, so
// the fixture carries dropped-write, wall-clock, PRNG and
// goroutine-hygiene violations for the four patrols at once.
func TestClusterPatrol(t *testing.T) {
	analysistest.RunAll(t, analysistest.TestData(t),
		[]*analysis.Analyzer{analysis.CtxLoop, analysis.NoTime, analysis.NoRand, analysis.ErrFlow},
		"etrain/internal/cluster")
}

// TestCtlPatrol holds the cluster admin CLI to the same bar: its wait
// loop is a wall-clock boundary only via explicit pragmas, and a drain
// request's transport write error must be consumed.
func TestCtlPatrol(t *testing.T) {
	analysistest.RunAll(t, analysistest.TestData(t),
		[]*analysis.Analyzer{analysis.CtxLoop, analysis.NoTime, analysis.ErrFlow},
		"etrain/cmd/etrain-ctl")
}

// TestDiurnalPatrol holds the diurnal workload engine to the purity
// contract: every draw is a function of (config, device index, sim
// time), so the fixture carries wall-clock anchors, global-PRNG phase
// jitter and unjoined sampling fan-out for the combined patrol.
func TestDiurnalPatrol(t *testing.T) {
	analysistest.RunAll(t, analysistest.TestData(t),
		[]*analysis.Analyzer{analysis.CtxLoop, analysis.NoTime, analysis.NoRand, analysis.ErrFlow},
		"etrain/internal/diurnal")
}

// TestRadioPatrol extends the same patrol to the radio models: DRX
// energy accounting must replay byte-identically from the timeline, and
// a rendered power trace is a write path whose errors must be consumed.
func TestRadioPatrol(t *testing.T) {
	analysistest.RunAll(t, analysistest.TestData(t),
		[]*analysis.Analyzer{analysis.CtxLoop, analysis.NoTime, analysis.NoRand, analysis.ErrFlow},
		"etrain/internal/radio")
}

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), analysis.HotAlloc,
		"hotalloc", "hotallocpkg")
}

func TestErrFlow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), analysis.ErrFlow,
		"errflow")
}

func TestWireCanon(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), analysis.WireCanon,
		"etrain/internal/wire", "wirecanonuse")
}

// TestSessionPathPatrol extends the union-fixture pattern to the new
// checks: the session-processor stand-in carries hotalloc, errflow and
// wirecanon violations on the same lines, the way the real replay path
// faces every analyzer at once.
func TestSessionPathPatrol(t *testing.T) {
	analysistest.RunAll(t, analysistest.TestData(t),
		[]*analysis.Analyzer{analysis.HotAlloc, analysis.ErrFlow, analysis.WireCanon},
		"sessionpath")
}
