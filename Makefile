# Local targets mirror .github/workflows/ci.yml one to one, so what passes
# here passes there. staticcheck/govulncheck are optional locally (skipped
# with a notice when not installed); CI always runs them.

GO ?= go

.PHONY: all build test race fuzz lint vet determinism bench-json bench-server bench-cluster gate fleet-smoke serve load chaos scenario diurnal cluster overload clean

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz:
	$(GO) test ./internal/tracefile -run Fuzz
	$(GO) test ./internal/wire -run Fuzz
	$(GO) test ./internal/scenario -run Fuzz

vet:
	$(GO) vet ./...

# lint = go vet + the project analyzer suite (notime, norand, maporder,
# units, ctxloop, hotalloc, errflow, wirecanon), plus
# staticcheck/govulncheck when available.
lint: vet
	$(GO) run ./cmd/etrain-vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (CI runs it)"; \
	fi

# Machine-readable benchmark snapshot: every benchmark (including
# BenchmarkFleet10k) once through cmd/etrain-benchjson into
# BENCH_fleet.json (name -> ns/op, B/op, allocs/op). Raise BENCHTIME for
# steadier numbers.
BENCHTIME ?= 1x
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) ./... \
		| $(GO) run ./cmd/etrain-benchjson > BENCH_fleet.json
	@echo "wrote BENCH_fleet.json"

# Fleet engine end-to-end check, same as the CI fleet job: a 2k-device
# population at 1 and 8 workers must render byte-identical reports, and
# the checkpoint/resume tests must hold under the race detector.
fleet-smoke:
	$(GO) build -o /tmp/etrain-fleet ./cmd/etrain-fleet
	/tmp/etrain-fleet -devices 2000 -workers 1 -quiet > /tmp/etrain-fleet-w1.txt
	/tmp/etrain-fleet -devices 2000 -workers 8 -quiet > /tmp/etrain-fleet-w8.txt
	diff -u /tmp/etrain-fleet-w1.txt /tmp/etrain-fleet-w8.txt
	$(GO) test -race ./internal/fleet -run 'Halt|Resume|Checkpoint' -count=1

# Service-layer checks, same as the CI serve job: the wire/in-process
# equivalence suite, the 1k-device loopback soak and the graceful-drain
# tests under the race detector.
serve:
	$(GO) test -race ./internal/wire -count=1
	$(GO) test -race ./internal/server -run 'Equivalence|Soak|Drain|Shutdown' -count=1

# Load-generation smoke over in-process loopback: replay 1k synthesized
# devices through the full codec-server-session path and report
# throughput and latency percentiles.
load:
	$(GO) run ./cmd/etrain-load -devices 1000 -conns 16 -horizon 2m

# Resilience suite, same as the CI chaos job: the fault injector and the
# self-healing client under the race detector (including the chaos soak —
# fault-injected fleets must produce decision streams identical to clean
# loopback), the server's resume/park/drain tests, and a fault-injected
# load-generation run that must complete every session.
chaos:
	$(GO) test -race ./internal/faultnet ./internal/client -count=1
	$(GO) test -race ./internal/server -run 'Resume|Retain|Shutdown|Drain|Protocol' -count=1
	$(GO) run ./cmd/etrain-load -devices 200 -conns 16 -horizon 2m -faults 0.1

# Scenario engine checks, same as the CI scenario job: the declarative
# scenario suite under the race detector (the golden corpus is pinned
# byte-for-byte at two worker counts), the corpus validated through the
# CLI, the chaos-soak scenario byte-compared across worker counts, and
# the broken-Θ negative — overriding Θ to 0 must trip the saving-floor
# assertion and flip the exit code.
scenario:
	$(GO) test -race ./internal/scenario -count=1
	$(GO) build -o /tmp/etrain-sim ./cmd/etrain-sim
	/tmp/etrain-sim validate scenarios/*.yaml
	/tmp/etrain-sim run -workers 1 scenarios/fault-burst.yaml > /tmp/etrain-scenario-w1.txt
	/tmp/etrain-sim run -workers 8 scenarios/fault-burst.yaml > /tmp/etrain-scenario-w8.txt
	diff -u /tmp/etrain-scenario-w1.txt /tmp/etrain-scenario-w8.txt
	! /tmp/etrain-sim run -theta 0 scenarios/clean-baseline.yaml >/dev/null

# Diurnal + radio suite, same as the CI diurnal job: the workload-curve
# and DRX packages under the race detector plus the fleet/scenario
# diurnal determinism tests, then the byte-compare smokes — a
# week-compressed 2k-device diurnal fleet under LTE DRX and the
# diurnal-week scenario must render identically at 1 and 8 workers.
diurnal:
	$(GO) test -race ./internal/diurnal ./internal/radio -count=1
	$(GO) test -race ./internal/fleet ./internal/scenario -run Diurnal -count=1
	$(GO) build -o /tmp/etrain-fleet ./cmd/etrain-fleet
	/tmp/etrain-fleet -devices 2000 -workers 1 -quiet -diurnal week -time-scale 1008 -radio lte-drx > /tmp/etrain-diurnal-w1.txt
	/tmp/etrain-fleet -devices 2000 -workers 8 -quiet -diurnal week -time-scale 1008 -radio lte-drx > /tmp/etrain-diurnal-w8.txt
	diff -u /tmp/etrain-diurnal-w1.txt /tmp/etrain-diurnal-w8.txt
	$(GO) build -o /tmp/etrain-sim ./cmd/etrain-sim
	/tmp/etrain-sim run -workers 1 scenarios/diurnal-week.yaml > /tmp/etrain-diurnal-scen-w1.txt
	/tmp/etrain-sim run -workers 8 scenarios/diurnal-week.yaml > /tmp/etrain-diurnal-scen-w8.txt
	diff -u /tmp/etrain-diurnal-scen-w1.txt /tmp/etrain-diurnal-scen-w8.txt

# Cluster suite, same as the CI cluster job: the control-plane package
# under the race detector — ring determinism and ~1/N movement,
# controller membership/drain/sweep, the in-process failover
# zero-decision-loss test — then the 3-process smoke: a real controller
# and three race-instrumented etraind shards serve an etrain-load
# -cluster fleet while one shard is SIGKILLed mid-run; every session
# must still complete and the fleet-wide merged stats block must be
# byte-identical to a single-process run of the same fleet.
cluster:
	$(GO) test -race ./internal/cluster -count=1
	bash scripts/cluster-smoke.sh

# Overload-survivability suite, same as the CI overload job: admission
# control and deadline-aware shedding in the server, the client's retry
# budget and Busy handling, controller snapshot/restore (including the
# crash-restart recovery test and the thundering-herd shard-kill chaos
# test), all under the race detector — then an overload soak: a fleet at
# ~2x the loopback server's admission capacity must complete every
# session, with refusals, sheds and budget exhaustions in the ledger.
overload:
	$(GO) test -race ./internal/server -run 'Admission|TokenBucket|Busy|Shed' -count=1
	$(GO) test -race ./internal/client -run 'Busy|Budget|PermanentRefusal' -count=1
	$(GO) test -race ./internal/cluster -run 'Snapshot|Restore|Rejoin|RestartRecovery|Overload|ThunderingHerd' -count=1
	$(GO) test ./internal/scenario -run 'TestGoldenScenarios/overload-burst' -count=1
	$(GO) run ./cmd/etrain-load -devices 300 -conns 16 -horizon 2m \
		-admission-rate 50 -admission-burst 8 -retry-budget 6 -quiet

# Cluster benchmark snapshot: the ring and fleet-fold microbenchmarks
# plus a live 3-shard failover smoke folded in under the "load" key, so
# BENCH_cluster.json records cluster throughput, reroutes and
# failover-recovery latency percentiles alongside allocation counts.
bench-cluster:
	CLUSTER_JSON=/tmp/etrain-cluster-report.json bash scripts/cluster-smoke.sh >/dev/null
	$(GO) test -run '^$$' -bench 'BenchmarkRingOwner|BenchmarkBuildRing|BenchmarkFleetStatsAdd' -benchmem \
		-benchtime $(BENCHTIME) ./internal/cluster \
		| $(GO) run ./cmd/etrain-benchjson -load /tmp/etrain-cluster-report.json > BENCH_cluster.json
	@echo "wrote BENCH_cluster.json"

# Service-layer benchmark snapshot (BenchmarkServerThroughput +
# BenchmarkWireCodec) through cmd/etrain-benchjson into BENCH_server.json,
# with a fault-injected load soak folded in under the "load" key so the
# snapshot records healing behavior alongside the microbenchmarks.
bench-server:
	$(GO) run ./cmd/etrain-load -devices 300 -conns 16 -horizon 2m \
		-faults 0.1 -quiet -json /tmp/etrain-load-report.json >/dev/null
	$(GO) test -run '^$$' -bench 'BenchmarkServerThroughput|BenchmarkWireCodec' -benchmem \
		-benchtime $(BENCHTIME) ./internal/server ./internal/wire \
		| $(GO) run ./cmd/etrain-benchjson -load /tmp/etrain-load-report.json > BENCH_server.json
	@echo "wrote BENCH_server.json"

# Benchmark regression gate: fresh runs of the fleet and server benchmark
# suites are diffed against the checked-in BENCH_*.json baselines through
# cmd/etrain-benchjson -gate. allocs/op and B/op more than GATETOL above
# baseline fail the build; ns/op is reported but never gated (too
# machine-dependent). Regenerate the baselines with `make bench-json
# bench-server` after an intentional allocation change.
GATETOL ?= 0.10
gate:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) ./... \
		| $(GO) run ./cmd/etrain-benchjson -gate BENCH_fleet.json -tolerance $(GATETOL)
	$(GO) test -run '^$$' -bench 'BenchmarkServerThroughput|BenchmarkWireCodec' -benchmem \
		-benchtime $(BENCHTIME) ./internal/server ./internal/wire \
		| $(GO) run ./cmd/etrain-benchjson -gate BENCH_server.json -tolerance $(GATETOL)
	$(GO) test -run '^$$' -bench 'BenchmarkRingOwner|BenchmarkBuildRing|BenchmarkFleetStatsAdd' -benchmem \
		-benchtime $(BENCHTIME) ./internal/cluster \
		| $(GO) run ./cmd/etrain-benchjson -gate BENCH_cluster.json -tolerance $(GATETOL)

# End-to-end determinism check: full registry, sequential vs 8 workers,
# byte-compared — same as the CI determinism job.
determinism:
	$(GO) build -o /tmp/etrain-experiments ./cmd/etrain-experiments
	/tmp/etrain-experiments -parallel 1 -ablations > /tmp/etrain-seq.txt
	/tmp/etrain-experiments -parallel 8 -ablations > /tmp/etrain-par.txt
	diff -u /tmp/etrain-seq.txt /tmp/etrain-par.txt

clean:
	$(GO) clean ./...
	rm -f /tmp/etrain-experiments /tmp/etrain-seq.txt /tmp/etrain-par.txt
	rm -f /tmp/etrain-fleet /tmp/etrain-fleet-w1.txt /tmp/etrain-fleet-w8.txt
	rm -f /tmp/etrain-load-report.json /tmp/etrain-cluster-report.json
	rm -f /tmp/etrain-sim /tmp/etrain-scenario-w1.txt /tmp/etrain-scenario-w8.txt
	rm -f /tmp/etrain-diurnal-w1.txt /tmp/etrain-diurnal-w8.txt
	rm -f /tmp/etrain-diurnal-scen-w1.txt /tmp/etrain-diurnal-scen-w8.txt
