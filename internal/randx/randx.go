// Package randx provides deterministic random-number utilities used across
// the eTrain simulator: seeded streams, Poisson arrival processes and
// truncated normal size distributions.
//
// All randomness in the repository flows through this package so that every
// simulation run is exactly reproducible from its seed.
package randx

import (
	"math"
	"math/rand"
	"sync"
)

// Source is a deterministic random stream. It wraps math/rand with the
// distributions the workload and bandwidth models need.
type Source struct {
	rng *rand.Rand
}

// New returns a Source seeded with seed. Equal seeds yield equal streams.
func New(seed int64) *Source {
	return &Source{rng: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child stream from this source. The child is a
// pure function of the parent's seed sequence, so splitting preserves
// determinism while decoupling consumers from each other's draw counts.
func (s *Source) Split() *Source {
	return New(s.rng.Int63())
}

// sourcePool recycles Sources: math/rand's generator carries a ~5 KB state
// table whose allocation dominates fleet-scale synthesis (every device draws
// a handful of short-lived streams). Reseeding fully resets the generator,
// so a pooled Source's stream is bit-identical to a freshly built one.
var sourcePool = sync.Pool{New: func() any { return New(0) }}

// Acquire returns a pooled Source reset to the exact stream New(seed)
// produces. Release it when the stream is fully consumed.
func Acquire(seed int64) *Source {
	s := sourcePool.Get().(*Source)
	s.rng.Seed(seed)
	return s
}

// Release returns s to the source pool. The caller must not use s (or any
// value that retains it, like a PoissonProcess) afterwards.
func (s *Source) Release() {
	sourcePool.Put(s)
}

// SplitPooled is Split drawing the child from the source pool: the child
// stream is bit-identical to Split's, but its state is recycled via
// Release instead of garbage-collected.
func (s *Source) SplitPooled() *Source {
	return Acquire(s.rng.Int63())
}

// Derive mixes the given parts into seed with a splitmix64-style finalizer
// and returns a non-negative stream seed that is a pure function of its
// inputs. Unlike Split, Derive consumes no stream state: any consumer that
// can name its identity — a sweep shard's (strategy, control) pair, a
// fleet's device index — gets the same independent stream no matter when,
// where or in which order it asks. This is what makes parallel simulation
// runs bit-identical to sequential ones.
func Derive(seed int64, parts ...uint64) int64 {
	h := uint64(seed) ^ 0x9e3779b97f4a7c15
	h = mix64(h)
	for _, p := range parts {
		h = mix64(h ^ p)
	}
	return int64(h >> 1)
}

// DeriveString hashes s into a part usable with Derive (FNV-1a).
func DeriveString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// mix64 is the splitmix64 finalizer: a bijective avalanche over 64 bits.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Intn returns a uniform value in [0, n). n must be > 0.
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (s *Source) Int63() int64 { return s.rng.Int63() }

// NormFloat64 returns a standard normal value.
func (s *Source) NormFloat64() float64 { return s.rng.NormFloat64() }

// Exp returns an exponential value with the given mean. A non-positive mean
// returns 0.
func (s *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return s.rng.ExpFloat64() * mean
}

// Normal returns a normal value with the given mean and standard deviation.
func (s *Source) Normal(mean, stddev float64) float64 {
	return s.rng.NormFloat64()*stddev + mean
}

// TruncatedNormal returns a normal value with the given mean and standard
// deviation, truncated from below at min. Values below min are resampled; if
// resampling fails repeatedly (a pathological configuration where min is far
// above the mean) the value saturates at min.
func (s *Source) TruncatedNormal(mean, stddev, min float64) float64 {
	const maxAttempts = 64
	for i := 0; i < maxAttempts; i++ {
		v := s.Normal(mean, stddev)
		if v >= min {
			return v
		}
	}
	return min
}

// Poisson returns a Poisson-distributed count with the given mean, using
// inversion for small means and the normal approximation for large ones.
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 60 {
		// Normal approximation keeps inversion numerically stable.
		v := math.Round(s.Normal(mean, math.Sqrt(mean)))
		if v < 0 {
			return 0
		}
		return int(v)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
