package workload

import (
	"math"
	"reflect"
	"testing"
	"time"

	"etrain/internal/diurnal"
	"etrain/internal/randx"
)

func TestSynthesizeSessionDiurnalNilSamplerIsLegacy(t *testing.T) {
	for _, class := range []ActivenessClass{ClassActive, ClassModerate, ClassInactive} {
		a := SynthesizeSession(randx.New(31), "u", class, time.Hour)
		b := SynthesizeSessionDiurnal(randx.New(31), "u", class, time.Hour, nil)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%v: nil-sampler diurnal session diverged from legacy", class)
		}
	}
}

func TestGenerateDiurnalNilSamplerIsLegacy(t *testing.T) {
	a, err := Generate(randx.New(13), DefaultSpecs(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateDiurnal(randx.New(13), DefaultSpecs(), time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("nil-sampler diurnal cargo diverged: %d vs %d packets", len(a), len(b))
	}
	for i := range a {
		// Profile holds function values, so compare the value fields.
		if a[i].ID != b[i].ID || a[i].App != b[i].App || a[i].ArrivedAt != b[i].ArrivedAt || a[i].Size != b[i].Size {
			t.Fatalf("packet %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSynthesizeSessionDiurnalFollowsCurve(t *testing.T) {
	// Under the week profile at scale 1, a session window over the deep
	// night trough must carry fewer events than one over the evening
	// peak, and all instants must stay inside the window.
	p, err := diurnal.ByName("week")
	if err != nil {
		t.Fatal(err)
	}
	window := 2 * time.Hour
	count := func(start time.Duration, seed int64) int {
		prof := *p
		prof.Start = start
		sam := prof.ForDevice("moderate", 1)
		recs := SynthesizeSessionDiurnal(randx.New(seed), "u", ClassActive, window, sam)
		for _, r := range recs {
			if r.At < 0 || r.At >= window {
				t.Fatalf("record at %v outside [0, %v)", r.At, window)
			}
		}
		return len(recs)
	}
	night, evening := 0, 0
	for seed := int64(0); seed < 30; seed++ {
		night += count(3*time.Hour, seed)    // Monday 03:00-05:00, level ≈ 0.17
		evening += count(19*time.Hour, seed) // Monday 19:00-21:00, level ≈ 1.75
	}
	if night*3 >= evening {
		t.Errorf("night sessions not sparse: %d night vs %d evening events", night, evening)
	}
}

func TestGenerateDiurnalRateTracksCurveArea(t *testing.T) {
	p, err := diurnal.ByName("week")
	if err != nil {
		t.Fatal(err)
	}
	sam := p.ForDevice("moderate", 3)
	horizon := 24 * time.Hour
	specs := []CargoSpec{MailSpec()}
	total := 0
	const trials = 40
	for seed := int64(0); seed < trials; seed++ {
		pkts, err := GenerateDiurnal(randx.New(100+seed), specs, horizon, sam)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(pkts); i++ {
			if pkts[i].ArrivedAt < pkts[i-1].ArrivedAt {
				t.Fatalf("packets not sorted at %d", i)
			}
			if pkts[i].ID != i {
				t.Fatalf("packet %d has ID %d", i, pkts[i].ID)
			}
		}
		total += len(pkts)
	}
	expect := sam.WindowWeight(horizon) / specs[0].MeanInterArrival.Seconds()
	got := float64(total) / trials
	tol := 4 * math.Sqrt(expect/trials)
	if math.Abs(got-expect) > tol {
		t.Errorf("mean count %.1f, want %.1f ± %.1f", got, expect, tol)
	}
}

func TestGenerateDiurnalValidatesSpecs(t *testing.T) {
	p, _ := diurnal.ByName("flat")
	sam := p.ForDevice("moderate", 1)
	bad := MailSpec()
	bad.MeanInterArrival = 0
	if _, err := GenerateDiurnal(randx.New(1), []CargoSpec{bad}, time.Hour, sam); err == nil {
		t.Fatal("invalid spec accepted")
	}
}
