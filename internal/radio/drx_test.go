package radio

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestDRXPresetsValidate(t *testing.T) {
	for name, m := range map[string]DRXModel{"lte-drx": LTEDRX(), "nr-drx": NR5GDRX()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s invalid: %v", name, err)
		}
	}
	// The cross-generation story: each generation's full tail is cheaper
	// than the last (3G ≈ 10.4 J, LTE DRX ≈ 5.3 J, NR DRX ≈ 2 J).
	g3 := GalaxyS43G().FullTailEnergy()
	lte := LTEDRX().FullTailEnergy()
	nr := NR5GDRX().FullTailEnergy()
	if !(nr < lte && lte < g3) {
		t.Errorf("tail energies not ordered: 3g=%v lte-drx=%v nr-drx=%v", g3, lte, nr)
	}
	if lte < 4.5 || lte > 6 {
		t.Errorf("LTE DRX full tail %v J outside [4.5, 6]", lte)
	}
	if nr < 1.5 || nr > 2.5 {
		t.Errorf("NR DRX full tail %v J outside [1.5, 2.5]", nr)
	}
}

// TestDRXTailEnergyMatchesRiemann pins the closed-form tail integral to
// a fine numeric integration of Power(TailStateAt(t)).
func TestDRXTailEnergyMatchesRiemann(t *testing.T) {
	for _, m := range []DRXModel{LTEDRX(), NR5GDRX()} {
		gaps := []time.Duration{
			0,
			m.InactivityTimer / 2,
			m.InactivityTimer,
			m.InactivityTimer + m.ShortCycle/2,
			m.InactivityTimer + m.shortSpan() + 50*time.Millisecond,
			m.ReleaseAfter / 2,
			m.ReleaseAfter,
			m.ReleaseAfter + time.Minute, // clamps at release
		}
		const step = 100 * time.Microsecond
		for _, gap := range gaps {
			end := gap
			if end > m.ReleaseAfter {
				end = m.ReleaseAfter
			}
			want := 0.0
			for at := time.Duration(0); at < end; at += step {
				want += m.Power(m.TailStateAt(at)) * step.Seconds()
			}
			got := m.TailEnergy(gap)
			if math.Abs(got-want) > 1e-3*math.Max(1, want) {
				t.Errorf("TailEnergy(%v) = %v, want ≈ %v", gap, got, want)
			}
		}
	}
}

func TestDRXTailEnergyMonotoneInGap(t *testing.T) {
	m := LTEDRX()
	prev := -1.0
	for gap := time.Duration(0); gap <= m.ReleaseAfter+time.Second; gap += 7 * time.Millisecond {
		e := m.TailEnergy(gap)
		if e < prev {
			t.Fatalf("TailEnergy not monotone at gap %v: %v < %v", gap, e, prev)
		}
		prev = e
	}
}

// TestDRXEnergyMonotoneInInactivityTimer is the issue's property test:
// with the release timer fixed, lengthening the inactivity timer can
// only increase tail energy (continuous reception replaces duty-cycled
// sleep), for every gap length.
func TestDRXEnergyMonotoneInInactivityTimer(t *testing.T) {
	base := LTEDRX()
	maxTi := base.ReleaseAfter - base.shortSpan()
	gaps := []time.Duration{
		50 * time.Millisecond, 300 * time.Millisecond, time.Second,
		3 * time.Second, base.ReleaseAfter, 30 * time.Second,
	}
	prev := make([]float64, len(gaps))
	for i := range prev {
		prev[i] = -1
	}
	for ti := time.Duration(0); ti <= maxTi; ti += 100 * time.Millisecond {
		m := base
		m.InactivityTimer = ti
		if err := m.Validate(); err != nil {
			t.Fatalf("Ti=%v: %v", ti, err)
		}
		for gi, gap := range gaps {
			e := m.TailEnergy(gap)
			if e < prev[gi]-1e-12 {
				t.Fatalf("gap %v: energy not monotone in Ti at %v: %v < %v", gap, ti, e, prev[gi])
			}
			prev[gi] = e
		}
	}
	// And through the timeline fold: a heartbeat train's total energy is
	// monotone in the inactivity timer too.
	var tl Timeline
	for i := 0; i < 20; i++ {
		if err := tl.Append(Transmission{
			Start: time.Duration(i) * 137 * time.Second, TxTime: 200 * time.Millisecond, Kind: TxHeartbeat,
		}); err != nil {
			t.Fatal(err)
		}
	}
	horizon := 50 * time.Minute
	prevTotal := -1.0
	for ti := time.Duration(0); ti <= maxTi; ti += 500 * time.Millisecond {
		m := base
		m.InactivityTimer = ti
		total := tl.AccountEnergyModel(m, horizon).Total()
		if total < prevTotal-1e-12 {
			t.Fatalf("timeline energy not monotone in Ti at %v: %v < %v", ti, total, prevTotal)
		}
		prevTotal = total
	}
}

func TestDRXTailStateAtBoundaries(t *testing.T) {
	m := LTEDRX()
	shortEnd := m.InactivityTimer + m.shortSpan()
	cases := []struct {
		at   time.Duration
		want State
	}{
		{-time.Millisecond, StateTransmitting},
		{0, StateDRXActive},
		{m.InactivityTimer - time.Nanosecond, StateDRXActive},
		{m.InactivityTimer, StateDRXOn},
		{m.InactivityTimer + m.OnDuration, StateDRXSleep},
		{m.InactivityTimer + m.ShortCycle, StateDRXOn}, // second short cycle
		{shortEnd, StateDRXOn},                         // first long cycle
		{shortEnd + m.OnDuration, StateDRXSleep},
		{m.ReleaseAfter - time.Nanosecond, StateDRXSleep},
		{m.ReleaseAfter, StatePSM},
		{time.Hour, StatePSM},
	}
	for _, tc := range cases {
		if got := m.TailStateAt(tc.at); got != tc.want {
			t.Errorf("TailStateAt(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
}

// TestDRXMachineAgreesWithModel drives the live machine through a
// transmission schedule and checks its state at a dense sweep of
// instants against TailStateAt relative to the last transmission end.
func TestDRXMachineAgreesWithModel(t *testing.T) {
	model := LTEDRX()
	dm := NewDRXMachine(model)
	var last Transition
	dm.Subscribe(func(tr Transition) {
		if tr.At < last.At {
			t.Fatalf("transition at %v after one at %v", tr.At, last.At)
		}
		if tr.From == tr.To {
			t.Fatalf("self transition %v at %v", tr.To, tr.At)
		}
		last = tr
	})

	if got := dm.State(0); got != StatePSM {
		t.Fatalf("initial state %v, want PSM", got)
	}
	txs := []struct{ start, txTime time.Duration }{
		{1 * time.Second, 150 * time.Millisecond},
		{2 * time.Second, 80 * time.Millisecond},   // lands inside previous tail
		{20 * time.Second, 120 * time.Millisecond}, // after full release
	}
	txEnd := time.Duration(-1)
	step := 13 * time.Millisecond
	now := time.Duration(0)
	for _, tx := range txs {
		for ; now < tx.start; now += step {
			got := dm.State(now)
			var want State
			if txEnd < 0 {
				want = StatePSM
			} else {
				want = model.TailStateAt(now - txEnd)
			}
			if got != want {
				t.Fatalf("state at %v = %v, want %v (txEnd %v)", now, got, want, txEnd)
			}
			if p, w := dm.Power(now), model.Power(want); p != w {
				t.Fatalf("power at %v = %v, want %v", now, p, w)
			}
		}
		dm.BeginTransmission(tx.start)
		if got := dm.State(tx.start); got != StateTransmitting {
			t.Fatalf("not transmitting at %v: %v", tx.start, got)
		}
		txEnd = tx.start + tx.txTime
		dm.EndTransmission(txEnd)
		now = txEnd
	}
	for ; now < 40*time.Second; now += step {
		if got, want := dm.State(now), model.TailStateAt(now-txEnd); got != want {
			t.Fatalf("state at %v = %v, want %v", now, got, want)
		}
	}
	if dm.Transitions() == 0 {
		t.Fatal("no transitions recorded")
	}
}

func TestDRXMachineNestedTransmissions(t *testing.T) {
	dm := NewDRXMachine(LTEDRX())
	dm.BeginTransmission(time.Second)
	dm.BeginTransmission(2 * time.Second)
	dm.EndTransmission(3 * time.Second)
	if got := dm.State(3 * time.Second); got != StateTransmitting {
		t.Fatalf("left transmitting with one nested begin open: %v", got)
	}
	dm.EndTransmission(4 * time.Second)
	if got := dm.State(4 * time.Second); got != StateDRXActive {
		t.Fatalf("after final end: %v, want ACTIVE", got)
	}
}

func TestAccountEnergyModelMatchesPowerModelPath(t *testing.T) {
	var tl Timeline
	for i := 0; i < 10; i++ {
		if err := tl.Append(Transmission{
			Start: time.Duration(i) * 30 * time.Second, TxTime: time.Second,
			Kind: TxKind(1 + i%2),
		}); err != nil {
			t.Fatal(err)
		}
	}
	m := GalaxyS43G()
	horizon := 10 * time.Minute
	direct := tl.AccountEnergy(m, horizon)
	boxed := tl.AccountEnergyModel(m, horizon)
	if direct != boxed {
		t.Fatalf("AccountEnergy %+v != AccountEnergyModel %+v", direct, boxed)
	}
}

func TestModelByName(t *testing.T) {
	for _, name := range append(ModelNames(), "3g-rrc", "5g-drx") {
		m, err := ModelByName(name)
		if err != nil {
			t.Fatalf("ModelByName(%q): %v", name, err)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("model %q invalid: %v", name, err)
		}
	}
	if _, err := ModelByName("4g"); err == nil || !strings.Contains(err.Error(), "unknown model") {
		t.Errorf("ModelByName(4g) err = %v", err)
	}
}

func TestDRXValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*DRXModel)
		msg  string
	}{
		{"no tx power", func(m *DRXModel) { m.PTx = 0 }, "transmit power"},
		{"ordering", func(m *DRXModel) { m.PSleep = m.PTx * 2 }, "PTx ≥ PCont"},
		{"neg timer", func(m *DRXModel) { m.InactivityTimer = -time.Second }, "inactivity timer"},
		{"neg cycles", func(m *DRXModel) { m.ShortCycles = -1 }, "short-cycle count"},
		{"zero short", func(m *DRXModel) { m.ShortCycle = 0 }, "short cycle"},
		{"zero long", func(m *DRXModel) { m.LongCycle = 0 }, "long cycle"},
		{"zero on", func(m *DRXModel) { m.OnDuration = 0 }, "on-duration"},
		{"wide on", func(m *DRXModel) { m.OnDuration = m.LongCycle * 2 }, "exceeds a cycle"},
		{"short release", func(m *DRXModel) { m.ReleaseAfter = m.InactivityTimer }, "release timer"},
	}
	for _, tc := range cases {
		m := LTEDRX()
		tc.mut(&m)
		err := m.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.msg) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.msg)
		}
	}
}

func TestDRXStateStrings(t *testing.T) {
	for s, want := range map[State]string{
		StateDRXActive: "ACTIVE",
		StateDRXOn:     "DRX(on)",
		StateDRXSleep:  "DRX(sleep)",
		StatePSM:       "PSM",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}

func BenchmarkDRXTailEnergy(b *testing.B) {
	m := LTEDRX()
	gap := 5 * time.Second
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.TailEnergy(gap)
	}
}

func BenchmarkDRXMachine(b *testing.B) {
	model := LTEDRX()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dm := NewDRXMachine(model)
		now := time.Duration(0)
		for tx := 0; tx < 8; tx++ {
			dm.BeginTransmission(now)
			now += 100 * time.Millisecond
			dm.EndTransmission(now)
			now += 15 * time.Second
			_ = dm.State(now)
		}
	}
}
