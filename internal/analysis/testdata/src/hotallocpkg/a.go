// Package hotallocpkg is hot in its entirety: the annotation on the
// package clause puts every function under hotalloc's patrol.
//
//etrain:hotpath
package hotallocpkg

// fold grows an unpreallocated slice without a function-level annotation.
func fold(items []int) []int {
	var out []int
	for _, it := range items {
		out = append(out, it) // want `append grows unpreallocated slice out`
	}
	return out
}
