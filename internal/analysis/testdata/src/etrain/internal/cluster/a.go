// Package cluster stands in for the real control plane: route-table
// pushes and shard beats are control-frame write paths, so the combined
// patrol faces them at once — dropped transport write errors, wall-clock
// reads outside the injected controller clock, direct PRNG use, and
// goroutine hygiene in the fan-out set. The admission and snapshot
// stand-ins below extend the patrol to the overload layer: a token
// bucket refilled off the wall clock and a snapshot write whose error
// vanishes are exactly the defects that made crash-restart recovery
// non-reproducible.
package cluster

import (
	"io"
	"math/rand" // want `import of math/rand outside internal/randx; derive a deterministic stream with randx.New/randx.Derive instead`
	"time"

	"etrain/internal/wire"
)

// pushAll fans a new route table out with fire-and-forget goroutines
// that drop the write error: the push and its failure both vanish, and
// a straggler can outlive the controller's shutdown.
func pushAll(peers []*wire.Writer, t wire.Hello) {
	for _, w := range peers {
		go func() { // want `goroutine has no join or cancellation path`
			w.Write(t) // want `goroutine closure captures loop variable w` `error from .*Writer\.Write is dropped`
		}()
	}
}

// beatAge derives shard liveness from the wall clock instead of the
// controller's injected Clock: two controllers, two sweep verdicts.
func beatAge(lastBeat time.Time) time.Duration {
	return time.Since(lastBeat) // want `time.Since reads the wall clock outside the real-time boundary`
}

// jitterBeat schedules the next beat off the global PRNG: the beat
// schedule stops being a pure function of the config.
func jitterBeat(every time.Duration) time.Duration {
	return every + time.Duration(rand.Int63n(int64(every)))
}

// refillBucket refills an admission token bucket off the wall clock
// instead of the policy's injected Clock: two servers racing the same
// herd would admit different Hellos, and no admission test could ever
// pin a refusal.
func refillBucket(tokens, rate float64, last time.Time) float64 {
	return tokens + time.Now().Sub(last).Seconds()*rate // want `time.Now reads the wall clock outside the real-time boundary`
}

// persistSnapshot drops the snapshot writer's error: a torn or failed
// snapshot write vanishes, and the next controller restart restores a
// membership that was never durably recorded.
func persistSnapshot(w io.Writer, encoded []byte) {
	w.Write(encoded) // want `error from .*Writer\.Write is dropped`
}

// persistDurable is the sanctioned shape: the write error surfaces to
// the boot path, which refuses a torn snapshot instead of restoring
// from it.
func persistDurable(w io.Writer, encoded []byte) error {
	_, err := w.Write(encoded)
	return err
}

// pushJoined is the sanctioned shape: the writer enters the goroutine
// as an argument, every write error is consumed, and the fan-out joins
// before returning.
func pushJoined(peers []*wire.Writer, t wire.Hello) error {
	errs := make(chan error, len(peers))
	for _, w := range peers {
		go func(w *wire.Writer) {
			errs <- w.Write(t)
		}(w)
	}
	var first error
	for range peers {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}
