package android

import (
	"testing"
	"time"

	"etrain/internal/bandwidth"
	"etrain/internal/core"
	"etrain/internal/heartbeat"
	"etrain/internal/profile"
	"etrain/internal/radio"
	"etrain/internal/randx"
)

func newDevice(t *testing.T) *Device {
	t.Helper()
	bw, err := bandwidth.Constant(200e3, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDevice(radio.GalaxyS43G(), bw)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func defaultService(t *testing.T, d *Device, theta float64) *Service {
	t.Helper()
	s, err := StartService(d, ServiceOptions{
		Core: core.Options{Theta: theta, K: core.KInfinite},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBusDeliversInRegistrationOrder(t *testing.T) {
	d := newDevice(t)
	var order []int
	d.Bus.Register("x", func(time.Duration, Intent) { order = append(order, 1) })
	d.Bus.Register("x", func(time.Duration, Intent) { order = append(order, 2) })
	d.Bus.Register("y", func(time.Duration, Intent) { order = append(order, 3) })
	d.Bus.Broadcast(Intent{Action: "x"})
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("delivery order = %v, want [1 2]", order)
	}
	if d.Bus.ReceiverCount("x") != 2 || d.Bus.ReceiverCount("y") != 1 {
		t.Fatal("receiver counts wrong")
	}
}

func TestDeviceRejectsBadConfig(t *testing.T) {
	bw, err := bandwidth.Constant(200e3, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDevice(radio.PowerModel{}, bw); err == nil {
		t.Fatal("invalid power model accepted")
	}
	if _, err := NewDevice(radio.GalaxyS43G(), nil); err == nil {
		t.Fatal("nil bandwidth accepted")
	}
}

func TestTrainServiceSendsHeartbeatsOnSchedule(t *testing.T) {
	d := newDevice(t)
	ts, err := StartTrain(d, heartbeat.WeChat(), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	// WeChat cycle 270 s: beats at 0, 270, ..., 3510 → 14 in an hour.
	if ts.Sent() != 14 {
		t.Fatalf("sent %d heartbeats, want 14", ts.Sent())
	}
	txs := d.Timeline().Transmissions()
	if len(txs) != 14 {
		t.Fatalf("timeline has %d transmissions, want 14", len(txs))
	}
	if txs[1].Start != 270*time.Second {
		t.Fatalf("second beat at %v, want 270s", txs[1].Start)
	}
}

func TestTrainServiceAdaptiveCycle(t *testing.T) {
	d := newDevice(t)
	ts, err := StartTrain(d, heartbeat.NetEase(), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	want := len(heartbeat.NetEase().Schedule(2 * time.Hour))
	if ts.Sent() != want {
		t.Fatalf("NetEase sent %d beats, schedule says %d", ts.Sent(), want)
	}
}

func TestTrainServiceStop(t *testing.T) {
	d := newDevice(t)
	ts, err := StartTrain(d, heartbeat.WeChat(), false)
	if err != nil {
		t.Fatal(err)
	}
	d.Loop.Schedule(300*time.Second, func(time.Duration) { ts.Stop() })
	if err := d.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if ts.Sent() != 2 {
		t.Fatalf("sent %d beats after stop at 300s, want 2 (0s, 270s)", ts.Sent())
	}
}

func TestMessagesDoNotShiftHeartbeats(t *testing.T) {
	// Fig. 3's finding: IM data transmissions have no impact on heartbeat
	// timing. Run WeChat with and without mid-cycle messages and compare
	// its beat instants.
	beatTimes := func(withMessages bool) []time.Duration {
		d := newDevice(t)
		ts, err := StartTrain(d, heartbeat.WeChat(), false)
		if err != nil {
			t.Fatal(err)
		}
		if withMessages {
			// Offsets chosen so no message is in flight on the radio at a
			// beat instant: the claim is about the heartbeat *schedule*
			// (the alarm), not link-level serialization.
			for at := 37 * time.Second; at < time.Hour; at += 217 * time.Second {
				ts.SendMessage(at, 50*1024) // a photo
			}
		}
		if err := d.Run(time.Hour); err != nil {
			t.Fatal(err)
		}
		var beats []time.Duration
		for _, tx := range d.Timeline().Transmissions() {
			if tx.Kind == radio.TxHeartbeat {
				beats = append(beats, tx.Start)
			}
		}
		return beats
	}
	quiet := beatTimes(false)
	busy := beatTimes(true)
	if len(quiet) != len(busy) {
		t.Fatalf("message traffic changed beat count: %d vs %d", len(quiet), len(busy))
	}
	for i := range quiet {
		if quiet[i] != busy[i] {
			t.Fatalf("beat %d shifted: %v vs %v", i, quiet[i], busy[i])
		}
	}
}

func TestHookNotifiesMonitor(t *testing.T) {
	d := newDevice(t)
	svc := defaultService(t, d, 0.2)
	if _, err := StartTrain(d, heartbeat.WeChat(), true); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if svc.BeatsObserved() != 14 {
		t.Fatalf("monitor observed %d beats, want 14", svc.BeatsObserved())
	}
	cycle, ok := svc.Detector().Cycle("wechat")
	if !ok || cycle != 270*time.Second {
		t.Fatalf("detected cycle %v ok=%v, want 270s", cycle, ok)
	}
}

func TestUnhookedTrainInvisibleToMonitor(t *testing.T) {
	d := newDevice(t)
	svc := defaultService(t, d, 0.2)
	if _, err := StartTrain(d, heartbeat.WeChat(), false); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if svc.BeatsObserved() != 0 {
		t.Fatalf("monitor observed %d beats from unhooked train", svc.BeatsObserved())
	}
}

func TestCargoPiggybacksOnHeartbeat(t *testing.T) {
	d := newDevice(t)
	svc := defaultService(t, d, 100) // Θ huge: only trains release cargo
	train := heartbeat.WeChat()
	train.FirstAt = 100 * time.Second
	if _, err := StartTrain(d, train, true); err != nil {
		t.Fatal(err)
	}
	mail := NewCargoApp(d, "mail", profile.Mail(600*time.Second))
	mail.ScheduleSubmit(10*time.Second, 5*1024)
	if err := d.Run(200 * time.Second); err != nil {
		t.Fatal(err)
	}
	delivered := mail.Delivered()
	if len(delivered) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(delivered))
	}
	got := delivered[0]
	// The packet must leave right after the 100 s heartbeat, not at 10 s.
	if got.StartedAt < 100*time.Second || got.StartedAt > 101*time.Second {
		t.Fatalf("packet started at %v, want right after the 100s heartbeat", got.StartedAt)
	}
	if svc.QueuedCount() != 0 {
		t.Fatal("service still holds packets")
	}
	// Verify tail sharing on the timeline: the data transmission begins
	// while the heartbeat's DCH tail is still hot.
	txs := d.Timeline().Transmissions()
	if len(txs) != 2 {
		t.Fatalf("timeline has %d transmissions, want 2", len(txs))
	}
	gap := txs[1].Start - txs[0].End()
	if gap > time.Second {
		t.Fatalf("piggyback gap = %v, want ~0", gap)
	}
}

func TestCargoReleasedByThetaWithoutTrain(t *testing.T) {
	d := newDevice(t)
	svc := defaultService(t, d, 0.3)
	train := heartbeat.QQ()
	train.FirstAt = 3000 * time.Second // far away, but keeps bypass inactive
	if _, err := StartTrain(d, train, true); err != nil {
		t.Fatal(err)
	}
	weibo := NewCargoApp(d, "weibo", profile.Weibo(30*time.Second))
	weibo.ScheduleSubmit(5*time.Second, 2048)
	if err := d.Run(120 * time.Second); err != nil {
		t.Fatal(err)
	}
	delivered := weibo.Delivered()
	if len(delivered) != 1 {
		t.Fatalf("delivered %d, want 1", len(delivered))
	}
	// Cost crosses Θ=0.3 at delay 9 s (0.3 × 30 s).
	delay := delivered[0].StartedAt - delivered[0].ArrivedAt
	if delay < 8*time.Second || delay > 12*time.Second {
		t.Fatalf("Θ-release delay = %v, want ~9-10s", delay)
	}
	_ = svc
}

func TestBypassWhenNoTrains(t *testing.T) {
	d := newDevice(t)
	svc, err := StartService(d, ServiceOptions{
		Core:        core.Options{Theta: 100, K: core.KInfinite},
		BypassAfter: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	mail := NewCargoApp(d, "mail", profile.Mail(600*time.Second))
	mail.ScheduleSubmit(10*time.Second, 5*1024)
	if err := d.Run(300 * time.Second); err != nil {
		t.Fatal(err)
	}
	delivered := mail.Delivered()
	if len(delivered) != 1 {
		t.Fatalf("bypass did not flush: %d delivered, %d queued", len(delivered), svc.QueuedCount())
	}
	if delivered[0].StartedAt > 75*time.Second {
		t.Fatalf("bypass flush at %v, want within ~BypassAfter of start", delivered[0].StartedAt)
	}
}

func TestUnregisteredCargoPassesThrough(t *testing.T) {
	d := newDevice(t)
	svc := defaultService(t, d, 100)
	// Submit a request without going through NewCargoApp registration.
	received := 0
	d.Bus.Register(ActionTransmitDecision, func(_ time.Duration, in Intent) {
		if dec, ok := in.Payload.(TransmitDecision); ok && dec.App == "rogue" {
			received++
		}
	})
	d.Loop.Schedule(5*time.Second, func(time.Duration) {
		d.Bus.Broadcast(Intent{
			Action:  ActionSubmitRequest,
			Payload: TransmissionRequest{App: "rogue", PacketID: 1, Size: 100},
		})
	})
	if err := d.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if received != 1 {
		t.Fatalf("unregistered app got %d decisions, want immediate pass-through", received)
	}
	_ = svc
}

func TestFullStackEnergySavings(t *testing.T) {
	// Integration: the full Android stack (trains + service + cargo apps)
	// saves energy versus the same stack scheduling nothing (Θ=0 bypass
	// equivalent is approximated with immediate pass-through by not
	// registering the service).
	run := func(withETrain bool) (float64, int) {
		d := newDevice(t)
		src := randx.New(42)
		if withETrain {
			if _, err := StartService(d, ServiceOptions{
				Core: core.Options{Theta: 2.0, K: core.KInfinite},
			}); err != nil {
				t.Fatal(err)
			}
		} else {
			// Baseline: echo every submission straight back as a transmit
			// decision (transmit-on-arrival).
			d.Bus.Register(ActionSubmitRequest, func(_ time.Duration, in Intent) {
				if req, ok := in.Payload.(TransmissionRequest); ok {
					d.Bus.Broadcast(Intent{
						Action:  ActionTransmitDecision,
						Payload: TransmitDecision{App: req.App, PacketIDs: []int{req.PacketID}},
					})
				}
			})
		}
		for _, tr := range heartbeat.DefaultTrio() {
			if _, err := StartTrain(d, tr, withETrain); err != nil {
				t.Fatal(err)
			}
		}
		weibo := NewCargoApp(d, "weibo", profile.Weibo(90*time.Second))
		mail := NewCargoApp(d, "mail", profile.Mail(180*time.Second))
		horizon := 2 * time.Hour
		for at := time.Duration(0); at < horizon; at += time.Duration(20+src.Intn(40)) * time.Second {
			weibo.ScheduleSubmit(at, int64(500+src.Intn(4000)))
			if src.Float64() < 0.3 {
				mail.ScheduleSubmit(at, int64(2000+src.Intn(8000)))
			}
		}
		if err := d.Run(horizon); err != nil {
			t.Fatal(err)
		}
		delivered := len(weibo.Delivered()) + len(mail.Delivered())
		return d.Energy(horizon).Total(), delivered
	}

	without, deliveredWithout := run(false)
	with, deliveredWith := run(true)
	if with >= without {
		t.Fatalf("eTrain stack used %.0f J >= %.0f J without", with, without)
	}
	// Without the service every submission passes through instantly.
	if deliveredWithout == 0 {
		t.Fatal("no deliveries without eTrain")
	}
	// With the service, packets may remain queued at the horizon (no
	// forced flush in the live system), but most must be delivered.
	if float64(deliveredWith) < 0.9*float64(deliveredWithout) {
		t.Fatalf("eTrain delivered %d of %d packets", deliveredWith, deliveredWithout)
	}
}

func TestLiveRadioState(t *testing.T) {
	d := newDevice(t)
	var transitions []radio.Transition
	d.OnRadioTransition(func(tr radio.Transition) { transitions = append(transitions, tr) })

	if got := d.RadioState(); got != radio.StateIdle {
		t.Fatalf("initial radio state = %v", got)
	}
	var midTx, afterTx radio.State
	d.Loop.Schedule(10*time.Second, func(time.Duration) {
		if _, err := d.Transmit(200*1024, radio.TxData, "x"); err != nil {
			t.Error(err)
		}
		midTx = d.RadioState()
	})
	// 200 KB at 200 KB/s takes 1 s; at 12 s the radio is in the DCH tail.
	d.Loop.Schedule(12*time.Second, func(time.Duration) { afterTx = d.RadioState() })
	if err := d.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if midTx != radio.StateTransmitting {
		t.Fatalf("state during transmission = %v", midTx)
	}
	if afterTx != radio.StateDCH {
		t.Fatalf("state in tail = %v", afterTx)
	}
	if d.RadioState() != radio.StateIdle {
		t.Fatalf("state at end = %v", d.RadioState())
	}
	// Walk: IDLE->tx->DCH->FACH->IDLE.
	want := []radio.State{radio.StateTransmitting, radio.StateDCH, radio.StateFACH, radio.StateIdle}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v", transitions)
	}
	for i, tr := range transitions {
		if tr.To != want[i] {
			t.Fatalf("transition %d to %v, want %v", i, tr.To, want[i])
		}
	}
}

func TestCargoAppMetadata(t *testing.T) {
	d := newDevice(t)
	defaultService(t, d, 1)
	prof := profile.Weibo(30 * time.Second)
	app := NewCargoApp(d, "weibo", prof)
	if app.Name() != "weibo" || app.Profile() != prof {
		t.Fatal("cargo metadata wrong")
	}
	if app.PendingCount() != 0 {
		t.Fatal("fresh app has pending packets")
	}
}

func TestMultipleCargoAppsIndependentDecisions(t *testing.T) {
	d := newDevice(t)
	defaultService(t, d, 100)
	train := heartbeat.WeChat()
	train.FirstAt = 50 * time.Second
	if _, err := StartTrain(d, train, true); err != nil {
		t.Fatal(err)
	}
	a := NewCargoApp(d, "a", profile.Weibo(300*time.Second))
	b := NewCargoApp(d, "b", profile.Cloud(300*time.Second))
	a.ScheduleSubmit(10*time.Second, 1000)
	b.ScheduleSubmit(20*time.Second, 2000)
	if err := d.Run(100 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(a.Delivered()) != 1 || len(b.Delivered()) != 1 {
		t.Fatalf("deliveries a=%d b=%d, want 1 each", len(a.Delivered()), len(b.Delivered()))
	}
	// Packet IDs are app-local; each app must only have transmitted its own.
	if a.Delivered()[0].PacketID != 0 || b.Delivered()[0].PacketID != 0 {
		t.Fatal("cross-app decision leakage")
	}
}
