package simtime

import "time"

// Alarm is a handle to a (possibly repeating) scheduled callback, in the
// spirit of Android's AlarmManager: train apps use alarms to schedule their
// periodic heartbeats.
type Alarm struct {
	loop     *Loop
	interval time.Duration
	fire     Event
	canceled bool
}

// NewAlarm schedules fire to first run at virtual instant first and then,
// if interval > 0, to repeat every interval until canceled.
func NewAlarm(loop *Loop, first, interval time.Duration, fire Event) *Alarm {
	a := &Alarm{loop: loop, interval: interval, fire: fire}
	loop.Schedule(first, a.run)
	return a
}

func (a *Alarm) run(now time.Duration) {
	if a.canceled {
		return
	}
	a.fire(now)
	if a.canceled || a.interval <= 0 {
		return
	}
	a.loop.Schedule(now+a.interval, a.run)
}

// SetInterval changes the repeat interval applied after the next firing.
// NetEase-style adaptive heartbeats use this to double their cycle.
func (a *Alarm) SetInterval(interval time.Duration) { a.interval = interval }

// Interval returns the current repeat interval.
func (a *Alarm) Interval() time.Duration { return a.interval }

// Cancel stops the alarm; pending firings become no-ops.
func (a *Alarm) Cancel() { a.canceled = true }
