// Package diurnal stands in for the real etrain/internal/diurnal: every
// draw is a pure function of (config, device index, sim time), so the
// workload engine faces the determinism patrol — no wall clock behind
// the diurnal anchor, no global PRNG behind the phase jitter, and
// goroutine hygiene in the per-device sampling fan-out.
package diurnal

import (
	"math/rand" // want `import of math/rand outside internal/randx; derive a deterministic stream with randx.New/randx.Derive instead`
	"time"
)

// anchorToday pins the diurnal clock's Start to the host's wall clock:
// the same fleet config would land on a different curve phase every run.
func anchorToday() time.Duration {
	return time.Duration(time.Now().UnixNano()) % (24 * time.Hour) // want `time.Now reads the wall clock outside the real-time boundary`
}

// jitterPhase draws the per-device phase offset from the global PRNG
// instead of a randx stream derived from (deviceSeed, namespace): the
// offset stops being a pure function of the device index.
func jitterPhase(span time.Duration) time.Duration {
	return time.Duration(rand.Int63n(int64(span)))
}

// settleEnvelope paces NHPP thinning retries with a real sleep, coupling
// synthesis wall time to the curve's peak-to-mean ratio.
func settleEnvelope(gap time.Duration) {
	time.Sleep(gap) // want `time.Sleep reads the wall clock outside the real-time boundary`
}

// sampleAsync fans per-device sampling out with fire-and-forget
// goroutines that capture the loop index: arrivals land in completion
// order instead of device order, and nothing joins the stragglers.
func sampleAsync(samplers []func()) {
	for i := range samplers {
		go func() { // want `goroutine has no join or cancellation path`
			samplers[i]() // want `goroutine closure captures loop variable i`
		}()
	}
}

// sampleOrdered is the sanctioned shape: the sampler enters the
// goroutine as an argument and the fan-out joins before the index-order
// fold reads any result.
func sampleOrdered(samplers []func()) {
	done := make(chan struct{}, len(samplers))
	for _, sample := range samplers {
		go func(sample func()) {
			sample()
			done <- struct{}{}
		}(sample)
	}
	for range samplers {
		<-done
	}
}
