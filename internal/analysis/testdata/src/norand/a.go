// Package norand exercises the norand analyzer: direct stdlib rand imports
// are flagged, drawing through the randx boundary is not.
package norand

import (
	crand "crypto/rand" // want `import of crypto/rand outside internal/randx`
	mrand "math/rand"   // want `import of math/rand outside internal/randx`

	"etrain/internal/randx"
)

func entropy() []byte {
	buf := make([]byte, 8)
	_, _ = crand.Read(buf)
	return buf
}

func draw() int64 {
	_ = mrand.Int()
	return randx.New(42).Int63()
}
