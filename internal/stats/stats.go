// Package stats provides the small summary-statistics toolkit the
// experiments use when aggregating across seeds: mean, standard deviation,
// median, extrema and a normal-approximation 95% confidence interval.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned when a summary of no samples is requested.
var ErrEmpty = errors.New("stats: no samples")

// Summary describes a sample set.
type Summary struct {
	// N is the sample count.
	N int
	// Mean is the arithmetic mean.
	Mean float64
	// StdDev is the sample (n−1) standard deviation; 0 for N < 2.
	StdDev float64
	// Median is the 50th percentile.
	Median float64
	// Min and Max are the extrema.
	Min, Max float64
	// CI95 is the half-width of the normal-approximation 95% confidence
	// interval of the mean.
	CI95 float64
}

// Summarize computes a Summary of the samples.
func Summarize(samples []float64) (Summary, error) {
	if len(samples) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{N: len(samples)}
	sum := 0.0
	s.Min = samples[0]
	s.Max = samples[0]
	for _, v := range samples {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(s.N)

	if s.N > 1 {
		acc := 0.0
		for _, v := range samples {
			d := v - s.Mean
			acc += d * d
		}
		s.StdDev = math.Sqrt(acc / float64(s.N-1))
		s.CI95 = 1.96 * s.StdDev / math.Sqrt(float64(s.N))
	}

	sorted := make([]float64, s.N)
	copy(sorted, samples)
	sort.Float64s(sorted)
	mid := s.N / 2
	if s.N%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s, nil
}

// Percentile returns the p-th percentile (0–100) by nearest-rank on a copy
// of the samples.
func Percentile(samples []float64, p float64) (float64, error) {
	if len(samples) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank], nil
}
