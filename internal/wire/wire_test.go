package wire

import (
	"bytes"
	"encoding/hex"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"

	"etrain/internal/profile"
)

// goldenFrames pins the canonical encoding of every message type. A
// mismatch here is a protocol break: bump Version before changing any
// layout.
var goldenFrames = []struct {
	name string
	msg  Message
	hex  string
}{
	{
		name: "hello",
		msg:  Hello{DeviceID: 1, Seed: 42, Theta: 2.5, K: 3, Slot: time.Second, Horizon: time.Minute},
		hex:  "0000002e01010000000000000001000000000000002a400400000000000000000003000000003b9aca000000000df8475800",
	},
	{
		name: "heartbeat_observed",
		msg:  HeartbeatObserved{At: 1500 * time.Millisecond, App: "mail", Size: 256},
		hex:  "0000001801020000000059682f0000046d61696c0000000000000100",
	},
	{
		name: "cargo_arrival",
		msg:  CargoArrival{ID: 7, At: 2 * time.Second, App: "weibo", Size: 1024, Profile: profile.KindWeibo, Deadline: 30 * time.Second},
		hex:  "0000002a0103000000000000000700000000773594000005776569626f00000000000004000200000006fc23ac00",
	},
	{
		name: "decision",
		msg:  Decision{Slot: 3 * time.Second, Flush: true, Entries: []DecisionEntry{{ID: 7, Start: 3100 * time.Millisecond}}},
		hex:  "0000001d010400000000b2d05e00010001000000000000000700000000b8c63f00",
	},
	{
		name: "ack",
		msg:  Ack{Seq: 9},
		hex:  "0000000a01050000000000000009",
	},
	{
		name: "resume",
		msg:  Resume{DeviceID: 3, Token: 42, Got: 5},
		hex:  "0000001a01070000000000000003000000000000002a0000000000000005",
	},
	{
		name: "resume_ok",
		msg:  ResumeOK{Got: 7},
		hex:  "0000000a01080000000000000007",
	},
	{
		name: "stats_snapshot",
		msg:  StatsSnapshot{DeviceID: 1, EnergyJ: 12.75, AvgDelayS: 0.5, ViolationRatio: 0.125, DataPackets: 10, Heartbeats: 20, ForcedFlush: 2},
		hex:  "0000003a0106000000000000000140298000000000003fe00000000000003fc0000000000000000000000000000a00000000000000140000000000000002",
	},
	{
		name: "shard_hello",
		msg:  ShardHello{ShardID: 2, Addr: "127.0.0.1:4810"},
		hex:  "0000001a01090000000000000002000e3132372e302e302e313a34383130",
	},
	{
		name: "shard_beat",
		msg:  ShardBeat{ShardID: 2, Seq: 17},
		hex:  "00000012010a00000000000000020000000000000011",
	},
	{
		name: "shard_stats",
		msg: ShardStats{ShardID: 2, Accepted: 5, Rejected: 1, Active: 2, Completed: 3,
			Parked: 4, Resumed: 3, ResumeMisses: 1, Discarded: 1, Detached: 1,
			FramesIn: 100, FramesOut: 90, Decisions: 40},
		hex: "0000007a010b0000000000000002000000000000000500000000000000010000000000000002000000000000000300000000000000000000000000000000000000000000000400000000000000030000000000000001000000000000000100000000000000010000000000000064000000000000005a0000000000000028",
	},
	{
		name: "route_table",
		msg:  RouteTable{Epoch: 3, Seed: 42, Vnodes: 64, Shards: []RouteEntry{{ShardID: 1, Addr: "a:1"}, {ShardID: 2, Addr: "b:2"}}},
		hex:  "00000032010c0000000000000003000000000000002a00000040000200000000000000010003613a3100000000000000020003623a32",
	},
	{
		name: "busy",
		msg:  Busy{RetryAfter: 250 * time.Millisecond, Reason: ReasonQueue},
		hex:  "0000000b010d000000000ee6b28002",
	},
	{
		name: "redirect",
		msg:  Redirect{Addr: "127.0.0.1:9300"},
		hex:  "00000012010e000e3132372e302e302e313a39333030",
	},
	{
		name: "shard_overload",
		msg:  ShardOverload{ShardID: 2, Refused: 5, Shed: 3, BusySent: 7},
		hex:  "00000022010f0000000000000002000000000000000500000000000000030000000000000007",
	},
}

func TestGoldenEncoding(t *testing.T) {
	for _, tc := range goldenFrames {
		t.Run(tc.name, func(t *testing.T) {
			b, err := Encode(tc.msg)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			if got := hex.EncodeToString(b); got != tc.hex {
				t.Errorf("encoding drifted:\n got %s\nwant %s", got, tc.hex)
			}
			m, n, err := Decode(b)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if n != len(b) {
				t.Errorf("Decode consumed %d of %d bytes", n, len(b))
			}
			if !reflect.DeepEqual(m, tc.msg) {
				t.Errorf("round trip: got %#v, want %#v", m, tc.msg)
			}
		})
	}
}

// roundTripMessages exercises edge values the goldens do not: empty and
// non-ASCII strings, zero and negative instants, empty and multi-entry
// decisions, extreme floats.
func roundTripMessages() []Message {
	return []Message{
		Hello{},
		Hello{DeviceID: ^uint64(0), Seed: -1, Theta: 1e-300, K: ^uint32(0), Slot: -time.Second, Horizon: 1<<62 - 1},
		HeartbeatObserved{App: ""},
		HeartbeatObserved{At: -5 * time.Minute, App: "wēi博", Size: -9},
		CargoArrival{Profile: profile.Kind(200), App: strings.Repeat("x", 1<<16-1)},
		Decision{},
		Decision{Slot: time.Hour, Flush: false, Entries: []DecisionEntry{{1, 2}, {3, 4}, {5, 6}}},
		Ack{},
		Resume{DeviceID: ^uint64(0), Token: ^uint64(0), Got: 1<<64 - 2},
		ResumeOK{},
		StatsSnapshot{EnergyJ: -0.0, AvgDelayS: 1e300},
		ShardHello{},
		ShardHello{ShardID: ^uint64(0), Addr: "[::1]:4810"},
		ShardBeat{ShardID: 1, Seq: ^uint64(0)},
		ShardStats{},
		ShardStats{ShardID: ^uint64(0), FramesIn: ^uint64(0), Decisions: 1},
		RouteTable{},
		RouteTable{Epoch: ^uint64(0), Seed: -1, Vnodes: ^uint32(0),
			Shards: []RouteEntry{{ShardID: 9, Addr: ""}, {ShardID: 8, Addr: "host.example:1"}}},
		Busy{},
		Busy{RetryAfter: -time.Second, Reason: BusyReason(255)},
		Busy{RetryAfter: 1<<62 - 1, Reason: ReasonLameDuck},
		Redirect{},
		Redirect{Addr: "[::1]:4810"},
		ShardOverload{},
		ShardOverload{ShardID: ^uint64(0), Refused: ^uint64(0), Shed: 1, BusySent: ^uint64(0)},
	}
}

func TestRoundTrip(t *testing.T) {
	for _, msg := range roundTripMessages() {
		b, err := Encode(msg)
		if err != nil {
			t.Fatalf("Encode(%#v): %v", msg, err)
		}
		got, n, err := Decode(b)
		if err != nil {
			t.Fatalf("Decode(%#v frame): %v", msg, err)
		}
		if n != len(b) {
			t.Errorf("%T: consumed %d of %d bytes", msg, n, len(b))
		}
		// Empty Entries may round-trip as nil; normalize before comparing.
		want := msg
		if d, ok := want.(Decision); ok && len(d.Entries) == 0 {
			d.Entries = nil
			want = d
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip: got %#v, want %#v", got, want)
		}
	}
}

func TestAppendExtends(t *testing.T) {
	var buf []byte
	var err error
	for _, tc := range goldenFrames {
		if buf, err = Append(buf, tc.msg); err != nil {
			t.Fatalf("Append(%s): %v", tc.name, err)
		}
	}
	for _, tc := range goldenFrames {
		m, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("Decode(%s): %v", tc.name, err)
		}
		if !reflect.DeepEqual(m, tc.msg) {
			t.Errorf("%s: got %#v, want %#v", tc.name, m, tc.msg)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Errorf("%d bytes left after decoding all frames", len(buf))
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, err := Encode(Decision{Entries: make([]DecisionEntry, maxEntries+1)}); err == nil {
		t.Error("oversized decision: want error")
	}
	if _, err := Encode(HeartbeatObserved{App: strings.Repeat("x", 1<<16)}); err == nil {
		t.Error("overlong string: want error")
	}
}

func TestDecodeErrors(t *testing.T) {
	valid, err := Encode(Ack{Seq: 9})
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mutate func(b []byte) []byte) []byte {
		b := append([]byte(nil), valid...)
		return mutate(b)
	}
	cases := []struct {
		name  string
		frame []byte
	}{
		{"empty", nil},
		{"short header", valid[:5]},
		{"truncated body", valid[:len(valid)-1]},
		{"payload below minimum", corrupt(func(b []byte) []byte { b[3] = 1; return b })},
		{"payload above MaxPayload", corrupt(func(b []byte) []byte { b[0] = 0xff; return b })},
		{"bad version", corrupt(func(b []byte) []byte { b[4] = 0; return b })},
		{"unknown type", corrupt(func(b []byte) []byte { b[5] = 99; return b })},
		{"trailing body bytes", corrupt(func(b []byte) []byte { b[3] += 1; return append(b, 0) })},
		{"body shorter than type needs", corrupt(func(b []byte) []byte { b[3] -= 1; return b[:len(b)-1] })},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := Decode(tc.frame); err == nil {
				t.Error("want error, got nil")
			}
		})
	}

	// A Decision flush byte other than 0/1 is non-canonical.
	dec, err := Encode(Decision{Slot: time.Second, Flush: true})
	if err != nil {
		t.Fatal(err)
	}
	dec[headerSize+8] = 2
	if _, _, err := Decode(dec); err == nil {
		t.Error("non-canonical boolean: want error")
	}

	// A Decision entry count larger than the remaining body must be
	// rejected before allocation.
	dec2, err := Encode(Decision{Slot: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	dec2[headerSize+9] = 0xff
	dec2[headerSize+10] = 0xff
	if _, _, err := Decode(dec2); err == nil {
		t.Error("entry count past body end: want error")
	}
}

func TestReaderWriter(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, tc := range goldenFrames {
		if err := w.Write(tc.msg); err != nil {
			t.Fatalf("Write(%s): %v", tc.name, err)
		}
	}
	r := NewReader(&buf)
	for _, tc := range goldenFrames {
		m, err := r.Next()
		if err != nil {
			t.Fatalf("Next(%s): %v", tc.name, err)
		}
		if !reflect.DeepEqual(m, tc.msg) {
			t.Errorf("%s: got %#v, want %#v", tc.name, m, tc.msg)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("Next at stream end: got %v, want io.EOF", err)
	}
}

// TestReaderPartialFrame holds truncation to its typed contract: every
// strict prefix of every golden frame must surface an error matching both
// ErrTruncated and io.ErrUnexpectedEOF — never a hang, never a misparse —
// while the zero-length prefix is a clean io.EOF boundary.
func TestReaderPartialFrame(t *testing.T) {
	for _, tc := range goldenFrames {
		b, err := Encode(tc.msg)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(b); cut++ {
			r := NewReader(bytes.NewReader(b[:cut]))
			m, err := r.Next()
			if cut == 0 {
				if err != io.EOF {
					t.Errorf("%s cut at 0: got %v, want io.EOF", tc.name, err)
				}
				continue
			}
			if m != nil || err == nil {
				t.Fatalf("%s cut at %d: decoded %#v from a torn frame", tc.name, cut, m)
			}
			if !errors.Is(err, ErrTruncated) {
				t.Errorf("%s cut at %d: %v does not match ErrTruncated", tc.name, cut, err)
			}
			if !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Errorf("%s cut at %d: %v does not match io.ErrUnexpectedEOF", tc.name, cut, err)
			}
		}
	}
}

// oneByteWriter delivers at most one byte per Write call — the worst legal
// chunking a transport can impose — and records everything it accepted.
type oneByteWriter struct {
	bytes.Buffer
}

func (w *oneByteWriter) Write(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	return w.Buffer.Write(p[:1])
}

// TestWriterShortWrites drives the frame writer over a conn that writes
// one byte at a time: the emitted stream must still be the canonical
// golden encoding of every frame, byte for byte.
func TestWriterShortWrites(t *testing.T) {
	var sink oneByteWriter
	w := NewWriter(&sink)
	want := ""
	for _, tc := range goldenFrames {
		if err := w.Write(tc.msg); err != nil {
			t.Fatalf("Write(%s) over 1-byte conn: %v", tc.name, err)
		}
		want += tc.hex
	}
	if got := hex.EncodeToString(sink.Bytes()); got != want {
		t.Errorf("short-write stream drifted from canonical frames:\n got %s\nwant %s", got, want)
	}
}

// stuckWriter reports zero progress without an error, which would
// otherwise spin the writer's retry loop forever.
type stuckWriter struct{}

func (stuckWriter) Write(p []byte) (int, error) { return 0, nil }

func TestWriterZeroProgress(t *testing.T) {
	if err := NewWriter(stuckWriter{}).Write(Ack{Seq: 1}); err != io.ErrShortWrite {
		t.Errorf("zero-progress write: got %v, want io.ErrShortWrite", err)
	}
}

func TestSessionToken(t *testing.T) {
	a := Hello{DeviceID: 1, Seed: 42, Theta: 2.5, K: 3, Horizon: time.Minute}
	if SessionToken(a) != SessionToken(a) {
		t.Error("token is not a pure function of the hello")
	}
	b := a
	b.Seed = 43
	if SessionToken(a) == SessionToken(b) {
		t.Error("token ignores the channel seed")
	}
	c := a
	c.DeviceID = 2
	if SessionToken(a) == SessionToken(c) {
		t.Error("token ignores the device identity")
	}
}

func TestReaderHostileLength(t *testing.T) {
	frame := []byte{0xff, 0xff, 0xff, 0xff, Version, byte(TypeAck)}
	r := NewReader(bytes.NewReader(frame))
	if _, err := r.Next(); err == nil {
		t.Error("hostile length prefix: want error before allocation")
	}
}
