package cluster

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"etrain/internal/wire"
)

func tcpDialer(addr string) func() (net.Conn, error) {
	return func() (net.Conn, error) { return net.Dial("tcp", addr) }
}

// TestAgentRegistersBeatsAndStops: RunAgent registers, beats with
// stats, delivers pushed tables, and unwinds cleanly on cancel.
func TestAgentRegistersBeatsAndStops(t *testing.T) {
	c, addr := startController(t, ControllerConfig{RingSeed: 42})

	var tblMu sync.Mutex
	var lastTable wire.RouteTable
	ctx, cancel := context.WithCancel(context.Background())
	agentDone := make(chan error, 1)
	go func() {
		agentDone <- RunAgent(ctx, AgentConfig{
			ShardID:   5,
			Advertise: "127.0.0.1:9999",
			Dial:      tcpDialer(addr),
			Stats: func() wire.ShardStats {
				return wire.ShardStats{Accepted: 11, Completed: 11}
			},
			BeatEvery: time.Millisecond,
			Sleep:     time.Sleep,
			OnRouteTable: func(tbl wire.RouteTable) {
				tblMu.Lock()
				lastTable = tbl
				tblMu.Unlock()
			},
		})
	}()

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := c.Status()
		if len(st.Shards) == 1 && st.Shards[0].Beats >= 2 && st.Shards[0].Stats != nil {
			if st.Shards[0].Addr != "127.0.0.1:9999" || st.Shards[0].Stats.ShardID != 5 {
				t.Fatalf("registration %+v", st.Shards[0])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("agent never became healthy: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	tblMu.Lock()
	gotTable := lastTable
	tblMu.Unlock()
	if len(gotTable.Shards) != 1 || gotTable.Shards[0].ShardID != 5 {
		t.Fatalf("agent's route table %+v", gotTable)
	}

	cancel()
	select {
	case err := <-agentDone:
		if err != context.Canceled {
			t.Fatalf("RunAgent returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunAgent did not stop on cancel")
	}
}

// TestAgentConfigValidation: the required fields are enforced.
func TestAgentConfigValidation(t *testing.T) {
	base := AgentConfig{
		ShardID:   1,
		Advertise: "a:1",
		Dial:      func() (net.Conn, error) { return nil, nil },
		Sleep:     func(time.Duration) {},
	}
	for name, breakIt := range map[string]func(*AgentConfig){
		"shard id":  func(c *AgentConfig) { c.ShardID = 0 },
		"advertise": func(c *AgentConfig) { c.Advertise = "" },
		"dial":      func(c *AgentConfig) { c.Dial = nil },
		"sleep":     func(c *AgentConfig) { c.Sleep = nil },
	} {
		cfg := base
		breakIt(&cfg)
		if err := RunAgent(context.Background(), cfg); err == nil {
			t.Errorf("missing %s accepted", name)
		}
	}
}

// TestRouterFollowsTable: the router holds the table current across
// membership changes and its per-device dialers report moves.
func TestRouterFollowsTable(t *testing.T) {
	_, addr := startController(t, ControllerConfig{RingSeed: 42})

	// Two fake shards with live session listeners so DialShard connects.
	sessionAddr := func() (net.Listener, string) {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			for {
				conn, err := l.Accept()
				if err != nil {
					return
				}
				conn.Close()
			}
		}()
		t.Cleanup(func() { l.Close() })
		return l, l.Addr().String()
	}
	_, addr1 := sessionAddr()
	_, addr2 := sessionAddr()

	s1 := joinShard(t, addr, 1, addr1)
	defer s1.conn.Close()
	s1.tableWith(1)

	rt, err := NewRouter(RouterConfig{
		DialControl: tcpDialer(addr),
		DialShard:   func(a string) (net.Conn, error) { return net.Dial("tcp", a) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	shard, got, _, err := rt.Lookup(77)
	if err != nil || shard != 1 || got != addr1 {
		t.Fatalf("lookup (%d, %q, %v), want shard 1 at %q", shard, got, err, addr1)
	}

	// A device dialer connects and reports no move while the owner holds.
	dial := rt.Dialer(77)
	conn, moved, err := dial()
	if err != nil || moved {
		t.Fatalf("first dial (moved %v, err %v)", moved, err)
	}
	conn.Close()

	// Membership change: shard 1 dies, shard 2 joins. The device must
	// re-route, and the dialer must flag the move exactly once.
	s2 := joinShard(t, addr, 2, addr2)
	defer s2.conn.Close()
	s2.tableWith(1, 2) // wait until the controller knows both
	s1.conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		tbl := rt.Table()
		if len(tbl.Shards) == 1 && tbl.Shards[0].ShardID == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("router table never converged: %+v", rt.Table())
		}
		time.Sleep(time.Millisecond)
	}
	conn, moved, err = dial()
	if err != nil {
		t.Fatal(err)
	}
	if !moved {
		t.Fatal("dial after failover did not report a move")
	}
	conn.Close()
	conn, moved, err = dial()
	if err != nil {
		t.Fatal(err)
	}
	if moved {
		t.Fatal("steady-state dial reported a move")
	}
	conn.Close()
}

// TestRouterSurvivesControllerBounce: losing the watcher conn redials
// and resubscribes transparently.
func TestRouterSurvivesControllerBounce(t *testing.T) {
	c, addr := startController(t, ControllerConfig{RingSeed: 42})
	s1 := joinShard(t, addr, 1, "a:1")
	defer s1.conn.Close()
	s1.tableWith(1)

	rt, err := NewRouter(RouterConfig{DialControl: tcpDialer(addr)})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	epoch1 := rt.Table().Epoch

	// Kill the watcher conn server-side: the router must resubscribe and
	// keep receiving pushes.
	c.mu.Lock()
	for w := range c.watchers {
		w.conn.Close()
	}
	c.mu.Unlock()

	s2 := joinShard(t, addr, 2, "b:2")
	defer s2.conn.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		tbl := rt.Table()
		if len(tbl.Shards) == 2 && tbl.Epoch > epoch1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("router never recovered past the bounce: %+v", rt.Table())
		}
		time.Sleep(time.Millisecond)
	}
}
