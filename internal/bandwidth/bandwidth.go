// Package bandwidth models the uplink bandwidth of a cellular link as a
// trace of one-second samples, mirroring the paper's real-world trace
// (2 hours of 3G uplink measured once per second while riding a bus through
// downtown Wuhan and walking on a university campus).
//
// Because that trace is proprietary, the package ships a synthetic generator
// (see Synthesize) that produces traces with comparable statistics from a
// regime-switching Gauss–Markov process. Real traces can be loaded through
// internal/tracefile and used interchangeably.
package bandwidth

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// ErrEmptyTrace is returned when constructing a trace with no samples.
var ErrEmptyTrace = errors.New("bandwidth: trace has no samples")

// Trace is a sequence of uplink bandwidth samples in bytes/second, one per
// second of virtual time starting at t = 0.
type Trace struct {
	samples []float64
}

// NewTrace builds a trace from explicit samples (bytes/second). The slice is
// copied. Non-positive samples are clamped to a small positive floor so that
// transmission durations stay finite.
func NewTrace(samples []float64) (*Trace, error) {
	if len(samples) == 0 {
		return nil, ErrEmptyTrace
	}
	const floor = 128 // bytes/s: a stalled but not dead link
	out := make([]float64, len(samples))
	for i, s := range samples {
		if math.IsNaN(s) || s < floor {
			s = floor
		}
		if math.IsInf(s, 1) {
			s = math.MaxFloat64
		}
		out[i] = s
	}
	return &Trace{samples: out}, nil
}

// Len returns the trace length in seconds.
func (t *Trace) Len() int { return len(t.samples) }

// Duration returns the covered virtual time span.
func (t *Trace) Duration() time.Duration {
	return time.Duration(len(t.samples)) * time.Second
}

// At returns the bandwidth (bytes/second) at virtual time at. Times beyond
// the trace wrap around, so a short trace can drive a long simulation.
func (t *Trace) At(at time.Duration) float64 {
	if at < 0 {
		at = 0
	}
	idx := int(at/time.Second) % len(t.samples)
	return t.samples[idx]
}

// Samples returns a copy of the underlying samples.
func (t *Trace) Samples() []float64 {
	out := make([]float64, len(t.samples))
	copy(out, t.samples)
	return out
}

// Mean returns the average bandwidth in bytes/second.
func (t *Trace) Mean() float64 {
	sum := 0.0
	for _, s := range t.samples {
		sum += s
	}
	return sum / float64(len(t.samples))
}

// StdDev returns the standard deviation of the samples.
func (t *Trace) StdDev() float64 {
	mean := t.Mean()
	acc := 0.0
	for _, s := range t.samples {
		d := s - mean
		acc += d * d
	}
	return math.Sqrt(acc / float64(len(t.samples)))
}

// Min returns the smallest sample.
func (t *Trace) Min() float64 {
	m := t.samples[0]
	for _, s := range t.samples[1:] {
		if s < m {
			m = s
		}
	}
	return m
}

// Max returns the largest sample.
func (t *Trace) Max() float64 {
	m := t.samples[0]
	for _, s := range t.samples[1:] {
		if s > m {
			m = s
		}
	}
	return m
}

// TransmitTime returns how long transmitting size bytes takes if started at
// the given virtual time, integrating the piecewise-constant bandwidth
// second by second.
func (t *Trace) TransmitTime(start time.Duration, size int64) time.Duration {
	if size <= 0 {
		return 0
	}
	remaining := float64(size)
	now := start
	for i := 0; i < 1<<22; i++ { // hard cap guards against pathological loops
		b := t.At(now)
		// Time left inside the current one-second sample.
		secBoundary := now.Truncate(time.Second) + time.Second
		window := secBoundary - now
		capacity := b * window.Seconds()
		if capacity >= remaining {
			return now + time.Duration(remaining/b*float64(time.Second)) - start
		}
		remaining -= capacity
		now = secBoundary
	}
	return now - start
}

// Constant returns a trace with a single constant bandwidth, useful in tests
// and analytical experiments.
func Constant(bytesPerSecond float64, duration time.Duration) (*Trace, error) {
	n := int(duration / time.Second)
	if n <= 0 {
		return nil, fmt.Errorf("bandwidth: non-positive duration %v", duration)
	}
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = bytesPerSecond
	}
	return NewTrace(samples)
}
