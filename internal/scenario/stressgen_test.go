package scenario

import (
	"reflect"
	"testing"
)

// TestGenerateDeterministic pins the generator's identity: equal
// configs yield deeply equal scenarios, different seeds diverge.
func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(GenConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(GenConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed diverged:\n%+v\n%+v", a, b)
	}
	c, err := Generate(GenConfig{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	ha, _ := a.ConfigHash()
	hc, _ := c.ConfigHash()
	if ha == hc {
		t.Errorf("seeds 7 and 8 generated identical scenarios")
	}
}

// TestGenerateAlwaysValid sweeps seeds and engines: every generated
// scenario must validate, round-trip through its encoding, and respect
// the engine's action restrictions.
func TestGenerateAlwaysValid(t *testing.T) {
	for _, engine := range []string{EngineDirect, EngineLoopback} {
		for seed := int64(0); seed < 25; seed++ {
			s, err := Generate(GenConfig{Seed: seed, Engine: engine})
			if err != nil {
				t.Fatalf("engine %s seed %d: %v", engine, seed, err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("engine %s seed %d invalid: %v", engine, seed, err)
			}
			restarts := 0
			for _, ev := range s.Timeline {
				switch ev.Action {
				case ActionFaultBurst, ActionServerRestart:
					if engine == EngineDirect {
						t.Fatalf("engine %s seed %d drew loopback action %s", engine, seed, ev.Action)
					}
					if ev.Action == ActionServerRestart {
						restarts++
					}
				case ActionBandwidthRegime:
					if engine == EngineLoopback {
						t.Fatalf("engine %s seed %d drew direct action %s", engine, seed, ev.Action)
					}
				}
			}
			if restarts > 1 {
				t.Fatalf("engine %s seed %d drew %d restarts", engine, seed, restarts)
			}
			encoded, err := s.EncodeJSON()
			if err != nil {
				t.Fatal(err)
			}
			back, err := Parse(encoded)
			if err != nil {
				t.Fatalf("engine %s seed %d: generated scenario does not re-parse: %v", engine, seed, err)
			}
			if !reflect.DeepEqual(s, back) {
				t.Fatalf("engine %s seed %d: encode/parse drifted", engine, seed)
			}
		}
	}
}

func TestGenerateDefaults(t *testing.T) {
	s, err := Generate(GenConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Fleet.Devices != 16 {
		t.Errorf("default devices = %d, want 16", s.Fleet.Devices)
	}
	if len(s.Timeline) != 8 {
		t.Errorf("default events = %d, want 8", len(s.Timeline))
	}
	if s.Engine != EngineLoopback {
		t.Errorf("default engine = %q, want loopback", s.Engine)
	}
	if _, err := Generate(GenConfig{Seed: 1, Engine: "quantum"}); err == nil {
		t.Error("unknown engine accepted")
	}
}
