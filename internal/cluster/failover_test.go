package cluster

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"etrain/internal/client"
	"etrain/internal/fleet"
	"etrain/internal/server"
	"etrain/internal/wire"
	"etrain/internal/workload"
)

// shardProc is one in-process "etraind shard": a session server, its
// listener, and its control-plane agent.
type shardProc struct {
	id        uint64
	srv       *server.Server
	l         net.Listener
	cancel    context.CancelFunc
	agentDone chan struct{}
}

// startShardProc boots a shard and registers it with the controller.
func startShardProc(t *testing.T, ctrlAddr string, id uint64) *shardProc {
	t.Helper()
	return startShardProcWith(t, ctrlAddr, id, server.Config{})
}

// startShardProcWith boots a shard whose session server uses scfg —
// the overload tests inject an Admission policy here.
func startShardProcWith(t *testing.T, ctrlAddr string, id uint64, scfg server.Config) *shardProc {
	t.Helper()
	srv := server.New(scfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	sp := &shardProc{id: id, srv: srv, l: l, cancel: cancel, agentDone: done}
	go func() {
		defer close(done)
		_ = RunAgent(ctx, AgentConfig{
			ShardID:   id,
			Advertise: l.Addr().String(),
			Dial:      tcpDialer(ctrlAddr),
			Stats: func() wire.ShardStats {
				return CountersToShardStats(id, srv.Stats())
			},
			Overload: func() wire.ShardOverload {
				return CountersToShardOverload(id, srv.Stats())
			},
			BeatEvery: time.Millisecond,
			Sleep:     time.Sleep,
		})
	}()
	return sp
}

// kill is the SIGKILL analog: the agent's control conn drops (so the
// controller declares the shard dead) and every session conn plus the
// listener dies abruptly, parked state discarded.
func (sp *shardProc) kill() {
	sp.cancel()
	<-sp.agentDone
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = sp.srv.Shutdown(ctx)
}

// TestClusterFailoverZeroDecisionLoss is the in-process twin of the CI
// cluster job: a 3-shard cluster serves a device fleet, one shard is
// killed mid-run, every client recovers on the new owner (resume-miss →
// Hello replay, or degraded local completion), and both the per-device
// decision streams and the device-order fleet fold are bit-identical to
// a single-process run of the same device set.
func TestClusterFailoverZeroDecisionLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-shard failover run")
	}
	const (
		devices = 18
		theta   = 4.0
		k       = 20
		horizon = 2 * time.Minute
	)
	pop, err := workload.NewPopulation(workload.DefaultMix())
	if err != nil {
		t.Fatal(err)
	}

	// Single-process baseline over loopback.
	sessions := make([]server.Session, devices)
	baseline := make([]*server.DeviceOutcome, devices)
	single := server.New(server.Config{})
	for i := 0; i < devices; i++ {
		dev, err := fleet.SynthesizeDevice(7, pop, i, horizon)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := server.SessionFromDevice(dev, theta, k)
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = sess
		cl, sv := net.Pipe()
		srvErr := make(chan error, 1)
		go func() { srvErr <- single.ServeConn(sv) }()
		out, err := server.Drive(cl, sess)
		if err != nil {
			t.Fatal(err)
		}
		if err := <-srvErr; err != nil {
			t.Fatal(err)
		}
		baseline[i] = out
	}

	// The cluster: controller, three shards, a route-following client side.
	ctrl, ctrlAddr := startController(t, ControllerConfig{RingSeed: 42})
	shards := make(map[uint64]*shardProc)
	for _, id := range []uint64{1, 2, 3} {
		sp := startShardProc(t, ctrlAddr, id)
		shards[id] = sp
		t.Cleanup(func() { sp.kill() })
	}
	rt, err := NewRouter(RouterConfig{
		DialControl: tcpDialer(ctrlAddr),
		DialShard:   func(a string) (net.Conn, error) { return net.Dial("tcp", a) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	deadline := time.Now().Add(10 * time.Second)
	for len(rt.Table().Shards) < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("cluster never formed: %+v", rt.Table())
		}
		time.Sleep(time.Millisecond)
	}

	// Pick the victim: the shard owning the most devices, so the kill
	// strands real in-flight work.
	ring, _ := RingFromTable(rt.Table())
	ownedBy := map[uint64]int{}
	for i := 0; i < devices; i++ {
		owner, _ := ring.Owner(uint64(i))
		ownedBy[owner]++
	}
	victim := uint64(1)
	for id, n := range ownedBy {
		if n > ownedBy[victim] {
			victim = id
		}
	}
	if ownedBy[victim] == 0 {
		t.Fatalf("victim %d owns nothing: %v", victim, ownedBy)
	}

	// The killer strikes as soon as the victim is actually serving: that
	// strands live in-flight sessions, which must then heal on the
	// surviving shards.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		for shards[victim].srv.Stats().Active == 0 {
			time.Sleep(50 * time.Microsecond)
		}
		shards[victim].kill()
	}()

	outcomes := make([]*client.Outcome, devices)
	var wg sync.WaitGroup
	for i := 0; i < devices; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := client.Run(client.Config{
				Route: rt.Dialer(uint64(i)),
				Seed:  1,
				Sleep: func(time.Duration) { time.Sleep(time.Millisecond) },
			}, sessions[i])
			if err != nil {
				t.Errorf("device %d: %v", i, err)
				return
			}
			outcomes[i] = out
		}(i)
	}
	wg.Wait()
	<-killed

	// Zero decision loss: every device's stream matches the baseline
	// frame for frame, bit for bit.
	for i, out := range outcomes {
		if out == nil {
			continue // already reported
		}
		want := baseline[i]
		if len(out.Decisions) != len(want.Decisions) {
			t.Errorf("device %d: %d decisions, baseline %d", i, len(out.Decisions), len(want.Decisions))
			continue
		}
		for j := range out.Decisions {
			g, w := out.Decisions[j], want.Decisions[j]
			if g.Flush != w.Flush || len(g.Entries) != len(w.Entries) {
				t.Errorf("device %d decision %d: (flush %v, %d entries) vs (%v, %d)",
					i, j, g.Flush, len(g.Entries), w.Flush, len(w.Entries))
				break
			}
			for e := range g.Entries {
				if g.Entries[e] != w.Entries[e] {
					t.Errorf("device %d decision %d entry %d: %+v vs %+v", i, j, e, g.Entries[e], w.Entries[e])
					break
				}
			}
		}
		if out.Stats != want.Stats {
			t.Errorf("device %d stats:\n got %+v\nwant %+v", i, out.Stats, want.Stats)
		}
	}

	// Fleet-wide merged stats: the device-order fold over the cluster run
	// renders the same bits as over the single-process run.
	foldFrom := func(stats func(i int) wire.StatsSnapshot) FleetReport {
		fs, err := NewFleetStats(0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < devices; i++ {
			fs.Add(stats(i))
		}
		return fs.Report()
	}
	clusterReport := foldFrom(func(i int) wire.StatsSnapshot {
		if outcomes[i] == nil {
			return wire.StatsSnapshot{}
		}
		return outcomes[i].Stats
	})
	singleReport := foldFrom(func(i int) wire.StatsSnapshot { return baseline[i].Stats })
	if clusterReport != singleReport {
		t.Errorf("fleet reports diverge:\ncluster %+v\nsingle  %+v", clusterReport, singleReport)
	}

	// The kill registered as a death (the controller may still be
	// processing the dropped control conn when the last client finishes).
	deadline = time.Now().Add(10 * time.Second)
	for ctrl.Status().Deaths < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("controller saw no shard death: %+v", ctrl.Status())
		}
		time.Sleep(time.Millisecond)
	}

	// At least one client visibly healed: it reconnected, replayed its
	// Hello on the new owner, or completed its stranded session locally.
	healed := 0
	for _, out := range outcomes {
		if out != nil && (out.Reconnects > 0 || out.Replays > 0 || out.DegradedStints > 0) {
			healed++
		}
	}
	if healed == 0 {
		t.Error("kill stranded no client: the failover path went unexercised")
	}
}
