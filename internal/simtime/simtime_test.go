package simtime

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestRunFiresInTimeOrder(t *testing.T) {
	l := NewLoop()
	var fired []time.Duration
	for _, at := range []time.Duration{5 * time.Second, time.Second, 3 * time.Second} {
		l.Schedule(at, func(now time.Duration) { fired = append(fired, now) })
	}
	if err := l.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{time.Second, 3 * time.Second, 5 * time.Second}
	if len(fired) != len(want) {
		t.Fatalf("fired %d events, want %d", len(fired), len(want))
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("event %d fired at %v, want %v", i, fired[i], want[i])
		}
	}
}

func TestRunSameInstantFIFO(t *testing.T) {
	l := NewLoop()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		l.Schedule(time.Second, func(time.Duration) { order = append(order, i) })
	}
	if err := l.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("same-instant events fired out of order: %v", order)
		}
	}
}

func TestRunStopsAtHorizon(t *testing.T) {
	l := NewLoop()
	fired := 0
	l.Schedule(time.Second, func(time.Duration) { fired++ })
	l.Schedule(5*time.Second, func(time.Duration) { fired++ })
	if err := l.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (event beyond horizon must not fire)", fired)
	}
	if l.Now() != 3*time.Second {
		t.Fatalf("clock = %v, want horizon 3s", l.Now())
	}
	if l.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", l.Pending())
	}
}

func TestEventAtHorizonDoesNotFire(t *testing.T) {
	l := NewLoop()
	fired := false
	l.Schedule(3*time.Second, func(time.Duration) { fired = true })
	if err := l.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("event exactly at horizon fired; horizon is exclusive")
	}
}

func TestScheduleInPastClampsToNow(t *testing.T) {
	l := NewLoop()
	var fireTime time.Duration
	l.Schedule(2*time.Second, func(now time.Duration) {
		l.Schedule(time.Second, func(inner time.Duration) { fireTime = inner })
	})
	if err := l.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if fireTime != 2*time.Second {
		t.Fatalf("past-scheduled event fired at %v, want clamped 2s", fireTime)
	}
}

func TestAfterIsRelative(t *testing.T) {
	l := NewLoop()
	var fireTime time.Duration
	l.Schedule(4*time.Second, func(now time.Duration) {
		l.After(2*time.Second, func(inner time.Duration) { fireTime = inner })
	})
	if err := l.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if fireTime != 6*time.Second {
		t.Fatalf("After fired at %v, want 6s", fireTime)
	}
}

func TestStopReturnsErrStopped(t *testing.T) {
	l := NewLoop()
	fired := 0
	l.Schedule(time.Second, func(time.Duration) {
		fired++
		l.Stop()
	})
	l.Schedule(2*time.Second, func(time.Duration) { fired++ })
	err := l.Run(10 * time.Second)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	l := NewLoop()
	count := 0
	var chain func(now time.Duration)
	chain = func(now time.Duration) {
		count++
		if count < 10 {
			l.After(time.Second, chain)
		}
	}
	l.Schedule(0, chain)
	if err := l.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("chain fired %d times, want 10", count)
	}
}

func TestAlarmRepeats(t *testing.T) {
	l := NewLoop()
	var fires []time.Duration
	NewAlarm(l, 10*time.Second, 30*time.Second, func(now time.Duration) {
		fires = append(fires, now)
	})
	if err := l.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{10 * time.Second, 40 * time.Second, 70 * time.Second, 100 * time.Second}
	if len(fires) != len(want) {
		t.Fatalf("alarm fired %d times (%v), want %d", len(fires), fires, len(want))
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("firing %d at %v, want %v", i, fires[i], want[i])
		}
	}
}

func TestAlarmCancel(t *testing.T) {
	l := NewLoop()
	fires := 0
	var a *Alarm
	a = NewAlarm(l, time.Second, time.Second, func(now time.Duration) {
		fires++
		if fires == 3 {
			a.Cancel()
		}
	})
	if err := l.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if fires != 3 {
		t.Fatalf("alarm fired %d times after cancel, want 3", fires)
	}
}

func TestAlarmSetInterval(t *testing.T) {
	l := NewLoop()
	var fires []time.Duration
	var a *Alarm
	a = NewAlarm(l, 0, 10*time.Second, func(now time.Duration) {
		fires = append(fires, now)
		if len(fires) == 2 {
			a.SetInterval(20 * time.Second)
		}
	})
	if err := l.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{0, 10 * time.Second, 30 * time.Second, 50 * time.Second}
	if len(fires) != len(want) {
		t.Fatalf("fires = %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fires = %v, want %v", fires, want)
		}
	}
}

func TestOneShotAlarm(t *testing.T) {
	l := NewLoop()
	fires := 0
	NewAlarm(l, time.Second, 0, func(time.Duration) { fires++ })
	if err := l.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if fires != 1 {
		t.Fatalf("one-shot alarm fired %d times, want 1", fires)
	}
}

func TestQueueOrderingProperty(t *testing.T) {
	prop := func(offsets []uint16) bool {
		l := NewLoop()
		var fired []time.Duration
		for _, off := range offsets {
			at := time.Duration(off) * time.Millisecond
			l.Schedule(at, func(now time.Duration) { fired = append(fired, now) })
		}
		if err := l.Run(time.Duration(1<<16) * time.Millisecond); err != nil {
			return false
		}
		if len(fired) != len(offsets) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
