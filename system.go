package etrain

import (
	"fmt"
	"time"

	"etrain/internal/android"
	"etrain/internal/bandwidth"
	"etrain/internal/core"
	"etrain/internal/heartbeat"
	"etrain/internal/randx"
)

// SystemConfig configures a live eTrain system (the paper's §V
// implementation on the simulated Android stack).
type SystemConfig struct {
	// Seed drives the synthetic bandwidth trace when Bandwidth is nil.
	Seed int64
	// Theta is the scheduler's cost bound Θ.
	Theta float64
	// K is the heartbeat batch limit; KInfinite if zero.
	K int
	// Power is the radio model; GalaxyS43G() if zero.
	Power PowerModel
	// Bandwidth overrides the synthetic trace when non-nil.
	Bandwidth *BandwidthTrace
	// BandwidthHorizon sizes the synthetic trace; 2 h if zero.
	BandwidthHorizon time.Duration
	// BypassAfter is how long the service tolerates heartbeat silence
	// before passing cargo straight through; 10 min if zero.
	BypassAfter time.Duration
}

// System is a running eTrain installation: device, service, hooked train
// apps and registered cargo apps, all on one deterministic virtual-time
// loop.
type System struct {
	device  *android.Device
	service *android.Service
	trains  []*android.TrainService
	cargos  []*android.CargoApp
}

// Cargo is the handle a cargo application uses to submit data.
type Cargo = android.CargoApp

// NewSystem builds a live system.
func NewSystem(cfg SystemConfig) (*System, error) {
	power := cfg.Power
	if power == (PowerModel{}) {
		power = GalaxyS43G()
	}
	bw := cfg.Bandwidth
	if bw == nil {
		horizon := cfg.BandwidthHorizon
		if horizon == 0 {
			horizon = 2 * time.Hour
		}
		var err error
		bw, err = bandwidth.Synthesize(randx.New(cfg.Seed), horizon, nil)
		if err != nil {
			return nil, err
		}
	}
	device, err := android.NewDevice(power, bw)
	if err != nil {
		return nil, err
	}
	k := cfg.K
	if k == 0 {
		k = KInfinite
	}
	service, err := android.StartService(device, android.ServiceOptions{
		Core:        core.Options{Theta: cfg.Theta, K: k},
		BypassAfter: cfg.BypassAfter,
	})
	if err != nil {
		return nil, err
	}
	return &System{device: device, service: service}, nil
}

// AddTrain installs a hooked heartbeat-sending app.
func (s *System) AddTrain(app TrainApp) error {
	train, err := android.StartTrain(s.device, app, true)
	if err != nil {
		return err
	}
	s.trains = append(s.trains, train)
	return nil
}

// RegisterCargo registers a cargo application with the given delay-cost
// profile and returns its submission handle.
func (s *System) RegisterCargo(name string, prof Profile) (*Cargo, error) {
	if name == "" {
		return nil, fmt.Errorf("etrain: cargo app needs a name")
	}
	if prof == nil {
		return nil, fmt.Errorf("etrain: cargo app %q needs a profile", name)
	}
	cargo := android.NewCargoApp(s.device, name, prof)
	s.cargos = append(s.cargos, cargo)
	return cargo, nil
}

// Run executes the system until the virtual horizon.
func (s *System) Run(horizon time.Duration) error {
	return s.device.Run(horizon)
}

// Now returns the system's current virtual time.
func (s *System) Now() time.Duration { return s.device.Loop.Now() }

// EnergyBreakdown accounts the radio energy consumed up to horizon.
func (s *System) EnergyBreakdown(horizon time.Duration) Energy {
	return s.device.Energy(horizon)
}

// HeartbeatsObserved reports how many heartbeats eTrain's monitor saw.
func (s *System) HeartbeatsObserved() int { return s.service.BeatsObserved() }

// QueuedPackets reports cargo packets still waiting in the scheduler.
func (s *System) QueuedPackets() int { return s.service.QueuedCount() }

// DetectedCycles returns the heartbeat cycles the monitor has established,
// per train app (the Table 1 analysis, online).
func (s *System) DetectedCycles() map[string]time.Duration {
	det := s.service.Detector()
	out := make(map[string]time.Duration)
	for _, app := range det.Apps() {
		if cycle, ok := det.Cycle(app); ok && det.Stable(app) {
			out[app] = cycle
		}
	}
	return out
}

// PredictNextHeartbeat extrapolates the next beat of a train app from the
// monitor's observations, as the paper's t_s(h_{i,0}) + cycle·j predictor.
func (s *System) PredictNextHeartbeat(app string) (time.Duration, bool) {
	return s.service.Detector().PredictNext(app)
}

// Delivered merges every cargo app's delivery log.
func (s *System) Delivered() []DeliveredPacket {
	var out []DeliveredPacket
	for _, c := range s.cargos {
		out = append(out, c.Delivered()...)
	}
	return out
}

// MergedSchedule returns the train departure table for the given apps and
// horizon (the set H of the paper's formulation).
func MergedSchedule(apps []TrainApp, horizon time.Duration) []Beat {
	return heartbeat.Merge(apps, horizon)
}
