// Package wire stands in for the real frame codec: wirecanon holds it to
// explicit big-endian fixed-width primitives and deterministic iteration.
package wire

import (
	"encoding/binary"
	"io"
)

// Message is one protocol message.
type Message interface{ MsgType() byte }

// Hello is the handshake frame.
type Hello struct {
	DeviceID uint64
	Seq      uint32
}

// MsgType implements Message.
func (Hello) MsgType() byte { return 1 }

// Bad carries a platform-sized counter into the frame layout.
type Bad struct {
	Count int // want `platform-sized type int`
}

// MsgType implements Message.
func (Bad) MsgType() byte { return 2 }

// cursor is an unexported decode helper; indexing with int is fine off
// the frame layout.
type cursor struct {
	b   []byte
	off int
}

// Writer frames messages onto a stream.
type Writer struct{ w io.Writer }

// Write encodes m as one canonical frame.
func (fw *Writer) Write(m Message) error {
	var buf [9]byte
	buf[0] = m.MsgType()
	binary.BigEndian.PutUint64(buf[1:], 0)
	_, err := fw.w.Write(buf[:])
	return err
}

// encodeNative reaches for reflection and the wrong byte order.
func encodeNative(w io.Writer, v uint32) {
	err := binary.Write(w, binary.LittleEndian, v) // want `binary.Write encodes through reflection` `binary.LittleEndian is not canonical`
	_ = err
}

// encodeMap would leak map order into the byte stream.
func encodeMap(dst []byte, fields map[string]uint64) []byte {
	for k, v := range fields { // want `map iteration order is nondeterministic`
		dst = append(dst, k...)
		dst = binary.BigEndian.AppendUint64(dst, v)
	}
	return dst
}

// positional rebuilds a frame struct without field names.
func positional(id uint64) Hello {
	return Hello{id, 1} // want `unkeyed Hello literal`
}
