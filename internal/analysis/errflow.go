package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrFlow checks that transport write errors are consumed. The service
// layer's durability story (DESIGN.md §11) depends on the first write
// error of a connection being observed — checked, returned, or latched
// through the session's emit/send journaling path — so the session can
// park instead of silently losing frames. A dropped error from a
// Write-family method on a wire.Writer, net.Conn, or any io.Writer
// (an ExprStmt discarding the result, or an assignment to blank) breaks
// that chain.
var ErrFlow = &Analyzer{
	Name: "errflow",
	Doc: "flag dropped errors from Write-family methods on wire.Writer, " +
		"net.Conn and io.Writer values",
	Run: runErrFlow,
}

// writeFamily are the method names errflow patrols. Close and deadline
// setters are deliberately out of scope: their errors are advisory on the
// teardown path.
var writeFamily = map[string]bool{
	"Write": true, "WriteString": true, "WriteTo": true,
	"ReadFrom": true, "Flush": true,
}

// ioWriterIface is a structural twin of io.Writer, built by hand so the
// check needs no import of the io package under analysis.
var ioWriterIface = types.NewInterfaceType([]*types.Func{
	types.NewFunc(token.NoPos, nil, "Write", types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(token.NoPos, nil, "p", types.NewSlice(types.Typ[types.Byte]))),
		types.NewTuple(
			types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
			types.NewVar(token.NoPos, nil, "err", types.Universe.Lookup("error").Type())),
		false)),
}, nil).Complete()

func runErrFlow(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok {
					checkDroppedWrite(pass, call)
				}
			case *ast.AssignStmt:
				for i, rhs := range stmt.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok {
						continue
					}
					if allBlank(lhsFor(stmt, i, len(stmt.Rhs))) {
						checkDroppedWrite(pass, call)
					}
				}
			case *ast.GoStmt:
				checkDroppedWrite(pass, stmt.Call)
			case *ast.DeferStmt:
				checkDroppedWrite(pass, stmt.Call)
			}
			return true
		})
	}
	return nil
}

// lhsFor returns the assignment's left-hand sides consuming the i-th
// right-hand side: all of them for a single multi-value call, the i-th
// otherwise.
func lhsFor(stmt *ast.AssignStmt, i, nRhs int) []ast.Expr {
	if nRhs == 1 {
		return stmt.Lhs
	}
	if i < len(stmt.Lhs) {
		return stmt.Lhs[i : i+1]
	}
	return nil
}

// allBlank reports whether every expression is the blank identifier.
func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(exprs) > 0
}

// checkDroppedWrite reports call if it is a Write-family method on a
// transport writer whose error result is being discarded.
func checkDroppedWrite(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !writeFamily[sel.Sel.Name] {
		return
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return
	}
	if !returnsError(selection.Obj()) {
		return
	}
	recv := selection.Recv()
	if !isTransportWriter(recv) {
		return
	}
	pass.Reportf(call.Pos(),
		"error from %s.%s is dropped; check it, return it, or latch it via the session's emit/send path",
		types.TypeString(recv, types.RelativeTo(pass.Pkg)), sel.Sel.Name)
}

// returnsError reports whether the method's last result is an error.
func returnsError(obj types.Object) bool {
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// isTransportWriter reports whether t is a transport-facing writer: the
// module's wire.Writer, net.Conn, or anything satisfying io.Writer.
func isTransportWriter(t types.Type) bool {
	elem := t
	if p, ok := elem.(*types.Pointer); ok {
		elem = p.Elem()
	}
	if named, ok := elem.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			path := obj.Pkg().Path()
			if obj.Name() == "Writer" && pathHasSuffix(path, "internal/wire") {
				return true
			}
			if obj.Name() == "Conn" && path == "net" {
				return true
			}
		}
	}
	return types.Implements(t, ioWriterIface) ||
		types.Implements(types.NewPointer(t), ioWriterIface)
}
