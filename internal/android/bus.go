// Package android simulates the slice of the Android platform eTrain runs
// on (paper §V): the Broadcast mechanism used for one-to-many process
// communication, AlarmManager-driven periodic work, the Xposed-style hook
// that observes train apps' heartbeat sends, and the eTrain system service
// itself (Heartbeat Monitor, Scheduler, Broadcast modules).
//
// Everything executes deterministically on a virtual-time event loop
// (internal/simtime); train and cargo apps interact only through the
// broadcast bus, exactly as in the paper's architecture where trains and
// cargoes never talk to each other directly.
package android

import (
	"time"

	"etrain/internal/simtime"
)

// Intent is a broadcast message: an action name plus an opaque payload.
type Intent struct {
	// Action routes the intent to interested receivers.
	Action string
	// Payload carries action-specific data.
	Payload any
}

// Receiver handles broadcast intents, like Android's BroadcastReceiver.
type Receiver func(now time.Duration, intent Intent)

// Bus is the broadcast system: one-to-many, delivery in registration order,
// dispatched synchronously on the event loop for determinism.
type Bus struct {
	loop      *simtime.Loop
	receivers map[string][]Receiver
}

// NewBus returns a bus bound to the loop.
func NewBus(loop *simtime.Loop) *Bus {
	return &Bus{loop: loop, receivers: make(map[string][]Receiver)}
}

// Register subscribes a receiver to an action.
func (b *Bus) Register(action string, r Receiver) {
	b.receivers[action] = append(b.receivers[action], r)
}

// Broadcast delivers the intent to every receiver registered for its
// action, in registration order, at the current virtual time.
func (b *Bus) Broadcast(intent Intent) {
	now := b.loop.Now()
	for _, r := range b.receivers[intent.Action] {
		r(now, intent)
	}
}

// ReceiverCount reports how many receivers an action has (for tests).
func (b *Bus) ReceiverCount(action string) int { return len(b.receivers[action]) }

// Broadcast actions used by the eTrain system.
const (
	// ActionHeartbeatSent is fired by the Xposed-style hook whenever a
	// train app transmits a heartbeat.
	ActionHeartbeatSent = "etrain.HEARTBEAT_SENT"
	// ActionSubmitRequest is fired by cargo apps to hand eTrain a
	// transmission request with its metadata.
	ActionSubmitRequest = "etrain.SUBMIT_REQUEST"
	// ActionTransmitDecision is fired by eTrain's broadcast module to tell
	// a cargo app to transmit specific packets now.
	ActionTransmitDecision = "etrain.TRANSMIT_DECISION"
)
