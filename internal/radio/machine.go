package radio

import "time"

// Transition is one RRC state change observed by a Machine listener.
type Transition struct {
	// At is the instant of the change.
	At time.Duration
	// From and To are the states before and after.
	From, To State
}

// Machine is the live RRC state machine of §II-C: it tracks the radio
// state as transmissions start and end, driving the
// IDLE → DCH(tx) → DCH → FACH → IDLE walk in real (virtual) time. Unlike
// Timeline.StateAt, which derives states after the fact, the Machine is fed
// events as they happen and notifies listeners of every transition — the
// component a live power monitor or a fast-dormancy policy would hook.
type Machine struct {
	model     PowerModel
	state     State
	stateAt   time.Duration
	listeners []func(Transition)
	// transmitting tracks nesting so overlapping notifications (which the
	// serialized link never produces, but defensive) do not corrupt state.
	transmitting int
	transitions  int
}

// NewMachine returns a machine in IDLE at time zero.
func NewMachine(model PowerModel) *Machine {
	return &Machine{model: model, state: StateIdle}
}

// Subscribe registers a listener invoked synchronously on every transition,
// in subscription order.
func (m *Machine) Subscribe(fn func(Transition)) {
	m.listeners = append(m.listeners, fn)
}

// State returns the machine's state at the given instant, accounting for
// tail demotions that elapsed since the last event.
func (m *Machine) State(now time.Duration) State {
	m.advance(now)
	return m.state
}

// Transitions reports how many state changes have occurred.
func (m *Machine) Transitions() int { return m.transitions }

// Power returns the instantaneous extra power at now.
func (m *Machine) Power(now time.Duration) float64 {
	return m.model.Power(m.State(now))
}

// BeginTransmission moves the machine to the transmitting state.
func (m *Machine) BeginTransmission(now time.Duration) {
	m.advance(now)
	m.transmitting++
	if m.state != StateTransmitting {
		m.setState(now, StateTransmitting)
	}
}

// EndTransmission marks a transmission's end; the tail starts now.
func (m *Machine) EndTransmission(now time.Duration) {
	m.advance(now)
	if m.transmitting > 0 {
		m.transmitting--
	}
	if m.transmitting == 0 && m.state == StateTransmitting {
		m.setState(now, StateDCH)
	}
}

// advance applies the tail demotions that elapsed between the last event
// and now, emitting the corresponding transitions at their true instants.
func (m *Machine) advance(now time.Duration) {
	if m.transmitting > 0 || now <= m.stateAt {
		return
	}
	for {
		switch m.state {
		case StateDCH:
			demoteAt := m.stateAt + m.model.DeltaD
			if now < demoteAt {
				return
			}
			m.setState(demoteAt, StateFACH)
		case StateFACH:
			demoteAt := m.stateAt + m.model.DeltaF
			if now < demoteAt {
				return
			}
			m.setState(demoteAt, StateIdle)
		default:
			return
		}
	}
}

func (m *Machine) setState(at time.Duration, to State) {
	tr := Transition{At: at, From: m.state, To: to}
	m.state = to
	m.stateAt = at
	m.transitions++
	for _, fn := range m.listeners {
		fn(tr)
	}
}
