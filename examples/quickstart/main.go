// Quickstart: build a live eTrain system with the paper's three IM train
// apps and a mail cargo app, run one virtual hour, and print how the mail
// rode the heartbeats.
package main

import (
	"fmt"
	"log"
	"time"

	"etrain"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := etrain.NewSystem(etrain.SystemConfig{
		Seed:  1,
		Theta: 2.0, // cost bound: how much delay-cost accrues before eTrain transmits anyway
	})
	if err != nil {
		return err
	}

	// Train apps: the heartbeat senders eTrain piggybacks on.
	for _, train := range etrain.DefaultTrains() {
		if err := sys.AddTrain(train); err != nil {
			return err
		}
	}

	// A cargo app: delay-tolerant mail with a 3-minute deadline.
	mail, err := sys.RegisterCargo("mail", etrain.MailProfile(3*time.Minute))
	if err != nil {
		return err
	}
	for at := 2 * time.Minute; at < time.Hour; at += 7 * time.Minute {
		mail.ScheduleSubmit(at, 5*1024) // a 5 KB e-mail
	}

	if err := sys.Run(time.Hour); err != nil {
		return err
	}

	fmt.Printf("heartbeats observed: %d\n", sys.HeartbeatsObserved())
	fmt.Printf("detected cycles:     %v\n", sys.DetectedCycles())
	energy := sys.EnergyBreakdown(time.Hour)
	fmt.Printf("radio energy:        %.1f J (transmit %.1f J, tail %.1f J)\n",
		energy.Total(), energy.Transmit, energy.Tail)

	for _, d := range sys.Delivered() {
		fmt.Printf("mail #%d submitted %5.0fs  transmitted %5.0fs  (waited %4.0fs for a train)\n",
			d.PacketID, d.ArrivedAt.Seconds(), d.StartedAt.Seconds(),
			(d.StartedAt - d.ArrivedAt).Seconds())
	}
	return nil
}
