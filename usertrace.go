package etrain

import (
	"etrain/internal/randx"
	"etrain/internal/workload"
)

// User behavior traces in the paper's four-element format
// (User ID, Behavior type, Time, Packet Size), and the activeness classes
// of the Fig. 11 experiment.
type (
	// BehaviorRecord is one entry of a user trace.
	BehaviorRecord = workload.BehaviorRecord
	// Behavior is the type of a recorded user action.
	Behavior = workload.Behavior
	// ActivenessClass buckets users by uploads per app use.
	ActivenessClass = workload.ActivenessClass
)

// Behavior types and activeness classes.
const (
	BehaviorUpload   = workload.BehaviorUpload
	BehaviorDownload = workload.BehaviorDownload
	BehaviorBrowse   = workload.BehaviorBrowse

	ClassActive   = workload.ClassActive
	ClassModerate = workload.ClassModerate
	ClassInactive = workload.ClassInactive
)

// SessionLength is the paper's 10-minute app-use window.
const SessionLength = workload.SessionLength

// SynthesizeUserTrace generates a deterministic 10-minute user session of
// the requested activeness class (active >20 uploads, moderate 10–20,
// inactive <10).
func SynthesizeUserTrace(seed int64, userID string, class ActivenessClass) []BehaviorRecord {
	return workload.SynthesizeUser(randx.New(seed), userID, class)
}

// ClassifyUser buckets a trace by its upload-event count.
var ClassifyUser = workload.Classify
