package parallel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Fatalf("Workers(4) = %d", got)
	}
	if got := Workers(0); got < 1 {
		t.Fatalf("Workers(0) = %d, want >= 1", got)
	}
	if got := Workers(-3); got != Workers(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS default %d", got, Workers(0))
	}
}

func TestForEachRunsEveryJobAndSlotsByIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		n := 50
		out := make([]int, n)
		err := ForEach(NewLimit(workers), n, func(i int) error {
			out[i] = i * i
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var active, peak int64
	var mu sync.Mutex
	err := ForEach(NewLimit(workers), 40, func(int) error {
		cur := atomic.AddInt64(&active, 1)
		mu.Lock()
		if cur > peak {
			peak = cur
		}
		mu.Unlock()
		time.Sleep(time.Millisecond) // hold the slot so jobs overlap
		atomic.AddInt64(&active, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > workers {
		t.Fatalf("observed %d concurrent jobs, budget %d", peak, workers)
	}
}

func TestForEachAggregatesErrorsSortedByIndex(t *testing.T) {
	wantBad := map[int]bool{3: true, 7: true, 11: true}
	err := ForEach(NewLimit(4), 12, func(i int) error {
		if wantBad[i] {
			return fmt.Errorf("boom %d", i)
		}
		return nil
	})
	var errs Errors
	if !errors.As(err, &errs) {
		t.Fatalf("error type %T, want Errors", err)
	}
	if len(errs) != len(wantBad) {
		t.Fatalf("got %d errors, want %d: %v", len(errs), len(wantBad), errs)
	}
	prev := -1
	for _, ie := range errs {
		if !wantBad[ie.Index] {
			t.Fatalf("unexpected failed index %d", ie.Index)
		}
		if ie.Index <= prev {
			t.Fatalf("errors not sorted by index: %v", errs)
		}
		prev = ie.Index
	}
}

func TestForEachSequentialInline(t *testing.T) {
	// A 1-slot pool must preserve submission order exactly.
	var order []int
	err := ForEach(NewLimit(1), 10, func(i int) error {
		order = append(order, i) // no mutex: inline execution is the contract
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential pool ran out of order: %v", order)
		}
	}
}

func TestMapPartialFailureKeepsSurvivors(t *testing.T) {
	out, err := Map(NewLimit(4), 6, func(i int) (int, error) {
		if i == 2 {
			return 0, errors.New("nope")
		}
		return i + 1, nil
	})
	if err == nil {
		t.Fatal("want aggregated error")
	}
	for i, v := range out {
		want := i + 1
		if i == 2 {
			want = 0 // failed slot holds the zero value
		}
		if v != want {
			t.Fatalf("slot %d = %d, want %d", i, v, want)
		}
	}
}

func TestForEachZeroJobs(t *testing.T) {
	if err := ForEach(nil, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

// TestForEachStatusSerializedHook checks the ForEachStatus contract: done
// fires exactly once per job with the job's outcome, hook calls never
// overlap, and a hook reading what completed jobs wrote observes those
// writes (the happens-before edge checkpointing relies on).
func TestForEachStatusSerializedHook(t *testing.T) {
	const n = 64
	results := make([]int, n)
	var (
		inHook   atomic.Int32
		calls    = make([]int, n)
		observed atomic.Int32
	)
	err := ForEachStatus(NewLimit(8), n, func(i int) error {
		results[i] = i * i
		if i%5 == 0 {
			return fmt.Errorf("job %d boom", i)
		}
		return nil
	}, func(i int, err error) {
		if inHook.Add(1) != 1 {
			t.Error("done hook overlapped with another")
		}
		defer inHook.Add(-1)
		calls[i]++
		if (i%5 == 0) != (err != nil) {
			t.Errorf("job %d: err = %v", i, err)
		}
		if results[i] != i*i {
			t.Errorf("hook for %d cannot see the job's write", i)
		}
		observed.Add(1)
	})
	if observed.Load() != n {
		t.Fatalf("hook ran %d times, want %d", observed.Load(), n)
	}
	for i, c := range calls {
		if c != 1 {
			t.Fatalf("job %d hook ran %d times", i, c)
		}
	}
	var errs Errors
	if !errors.As(err, &errs) {
		t.Fatalf("err = %v, want Errors", err)
	}
	if len(errs) != (n+4)/5 {
		t.Fatalf("got %d errors, want %d", len(errs), (n+4)/5)
	}
}

// TestForEachStatusSequentialInline covers the inline (no-goroutine) path:
// hooks fire in index order when the budget is one worker.
func TestForEachStatusSequentialInline(t *testing.T) {
	var order []int
	err := ForEachStatus(NewLimit(1), 5, func(i int) error {
		return nil
	}, func(i int, err error) {
		order = append(order, i)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("sequential hook order %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("hook ran %d times, want 5", len(order))
	}
}

// TestForEachStatusNilHook: ForEach is ForEachStatus with a nil hook.
func TestForEachStatusNilHook(t *testing.T) {
	var ran atomic.Int32
	if err := ForEachStatus(NewLimit(4), 16, func(i int) error {
		ran.Add(1)
		return nil
	}, nil); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 16 {
		t.Fatalf("ran %d jobs, want 16", ran.Load())
	}
}
