package battery

import (
	"math"
	"testing"
	"time"
)

func TestCapacityJoules(t *testing.T) {
	b := GalaxyS4()
	// 1.7 Ah × 3600 s × 3.7 V = 22644 J.
	if got := b.CapacityJoules(); math.Abs(got-22644) > 1e-9 {
		t.Fatalf("capacity = %v J, want 22644", got)
	}
}

func TestPaperSixPercentClaim(t *testing.T) {
	// §II-D: >12 heartbeats/hour at ~10.91 J per tail over 10 hours on the
	// 1700 mAh battery is "at least 6% of battery capacity".
	b := GalaxyS4()
	perHour := 12 * 10.91
	loss := b.StandbyLoss(perHour, time.Hour, 10*time.Hour)
	if loss < 0.055 || loss > 0.07 {
		t.Fatalf("one-app heartbeat drain = %.1f%%, paper says ~6%%", loss*100)
	}
}

func TestDrainFraction(t *testing.T) {
	b := GalaxyS4()
	if got := b.DrainFraction(22644); math.Abs(got-1) > 1e-12 {
		t.Fatalf("full capacity drain = %v, want 1", got)
	}
	if got := b.DrainFraction(0); got != 0 {
		t.Fatalf("zero drain = %v", got)
	}
}

func TestStandbyHours(t *testing.T) {
	b := GalaxyS4()
	// At 0.6 W the 22644 J battery lasts ~10.5 h.
	got := b.StandbyHours(0.6)
	if got < 10 || got > 11 {
		t.Fatalf("standby at 0.6 W = %.1f h, want ~10.5", got)
	}
	if b.StandbyHours(0) != 0 {
		t.Fatal("zero power should return 0")
	}
}

func TestStandbyLossZeroMeasured(t *testing.T) {
	if got := GalaxyS4().StandbyLoss(100, 0, time.Hour); got != 0 {
		t.Fatalf("loss with zero measurement = %v", got)
	}
}

func TestValidate(t *testing.T) {
	if err := GalaxyS4().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Battery{}).Validate(); err == nil {
		t.Fatal("zero battery validated")
	}
}
