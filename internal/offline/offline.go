// Package offline implements the paper's offline optimization framework
// (§III): given perfect knowledge of packet arrivals and train departure
// times, find the transmission schedule S = {t_s(u)} minimizing total tail
// energy subject to causality (2), serialization (3), a total delay-cost
// budget (4) and the fixed train timetable (5).
//
// The paper observes the problem generalizes Knapsack and is NP-hard, and
// therefore designs the online strategy of §IV. This package provides the
// counterpart the paper reasons against: an exact branch-and-bound solver
// for small instances, plus a lower bound, used to measure the online
// algorithm's optimality gap.
//
// The solver restricts each packet's candidate transmission instants to
// "event points" — its arrival, each train departure inside its waiting
// window, and its deadline. For the piecewise-linear tail-energy objective
// an optimal schedule can always be shifted so every transmission starts at
// an event point or back-to-back with another transmission (which the
// serialized evaluation produces automatically), so the restriction
// preserves optimality up to the window bound.
package offline

import (
	"fmt"
	"math"
	"sort"
	"time"

	"etrain/internal/heartbeat"
	"etrain/internal/radio"
	"etrain/internal/workload"
)

// Instance is one offline scheduling problem.
type Instance struct {
	// Beats is the train timetable H (sorted by time).
	Beats []heartbeat.Beat
	// Packets are the data packets U with arrivals and profiles.
	Packets []workload.Packet
	// Power is the radio energy model.
	Power radio.PowerModel
	// Horizon bounds the schedule; every transmission must start before it.
	Horizon time.Duration
	// CostBudget is the total delay-cost budget Θ of constraint (4);
	// 0 means unbounded.
	CostBudget float64
	// MaxWait bounds each packet's waiting window (candidate pruning);
	// defaults to 10 minutes.
	MaxWait time.Duration
	// Bandwidth is the constant link rate in bytes/second used for
	// transmission durations; defaults to 200 KB/s.
	Bandwidth float64
	// MaxPackets caps the instance size accepted by Solve; defaults to 12.
	MaxPackets int
}

func (inst *Instance) defaults() {
	if inst.MaxWait <= 0 {
		inst.MaxWait = 10 * time.Minute
	}
	if inst.Bandwidth <= 0 {
		inst.Bandwidth = 200e3
	}
	if inst.MaxPackets <= 0 {
		inst.MaxPackets = 12
	}
}

// Schedule is a feasible solution.
type Schedule struct {
	// Times maps packet ID to its scheduled (requested) start; the
	// serialized start may be later if the link is busy.
	Times map[int]time.Duration
	// EnergyJoules is the total energy of the serialized timeline.
	EnergyJoules float64
	// TotalCost is Σ φ_u(t_s(u) − t_a(u)) over all packets.
	TotalCost float64
}

// Validate reports structural problems with the instance.
func (inst Instance) Validate() error {
	if inst.Horizon <= 0 {
		return fmt.Errorf("offline: non-positive horizon")
	}
	if err := inst.Power.Validate(); err != nil {
		return err
	}
	for i := 1; i < len(inst.Beats); i++ {
		if inst.Beats[i].At < inst.Beats[i-1].At {
			return fmt.Errorf("offline: beats not sorted at %d", i)
		}
	}
	for i, p := range inst.Packets {
		if p.Profile == nil {
			return fmt.Errorf("offline: packet %d has no profile", i)
		}
		if p.ArrivedAt < 0 || p.ArrivedAt >= inst.Horizon {
			return fmt.Errorf("offline: packet %d arrives at %v outside horizon", i, p.ArrivedAt)
		}
	}
	return nil
}

// candidates returns the packet's candidate transmission instants.
func (inst Instance) candidates(p workload.Packet) []time.Duration {
	set := map[time.Duration]bool{p.ArrivedAt: true}
	windowEnd := p.ArrivedAt + inst.MaxWait
	if windowEnd > inst.Horizon {
		windowEnd = inst.Horizon
	}
	for _, b := range inst.Beats {
		if b.At >= p.ArrivedAt && b.At < windowEnd {
			set[b.At] = true
		}
	}
	if dl := p.ArrivedAt + p.Profile.Deadline(); dl < windowEnd {
		set[dl] = true
	}
	out := make([]time.Duration, 0, len(set))
	for at := range set {
		out = append(out, at)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Evaluate computes the serialized energy and total delay cost of an
// assignment of requested start times (by packet index into
// inst.Packets).
func (inst Instance) Evaluate(starts []time.Duration) (energy, cost float64, err error) {
	inst.defaults()
	if len(starts) != len(inst.Packets) {
		return 0, 0, fmt.Errorf("offline: %d starts for %d packets", len(starts), len(inst.Packets))
	}
	type event struct {
		at   time.Duration
		size int64
		kind radio.TxKind
		pkt  int // index into inst.Packets, -1 for beats
	}
	events := make([]event, 0, len(inst.Beats)+len(starts))
	for _, b := range inst.Beats {
		events = append(events, event{at: b.At, size: b.Size, kind: radio.TxHeartbeat, pkt: -1})
	}
	for i, at := range starts {
		events = append(events, event{at: at, size: inst.Packets[i].Size, kind: radio.TxData, pkt: i})
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return events[i].kind == radio.TxHeartbeat && events[j].kind != radio.TxHeartbeat
	})
	var tl radio.Timeline
	busyUntil := time.Duration(0)
	for _, ev := range events {
		start := ev.at
		if busyUntil > start {
			start = busyUntil
		}
		txTime := time.Duration(float64(ev.size) / inst.Bandwidth * float64(time.Second))
		if err := tl.Append(radio.Transmission{
			Start: start, TxTime: txTime, Size: ev.size, Kind: ev.kind,
		}); err != nil {
			return 0, 0, err
		}
		busyUntil = start + txTime
		if ev.pkt >= 0 {
			p := inst.Packets[ev.pkt]
			cost += p.Cost(start)
		}
	}
	energy = tl.AccountEnergy(inst.Power, inst.Horizon+inst.Power.TailTime()).Total()
	return energy, cost, nil
}

// LowerBound returns an energy value no feasible schedule can beat: the
// beats-only energy. Adding data transmissions can only raise the radio's
// instantaneous power pointwise — every instant that is DCH/FACH in the
// beats-only run stays at least as hot once more transmissions (each
// followed by its own full tail) are inserted, and transmission time is
// charged at the DCH rate. Note the bound does NOT add the packets'
// transmit energy on top: a transmission inside an existing tail displaces
// tail time at the same power, so that energy is not additive.
func LowerBound(inst Instance) (float64, error) {
	inst.defaults()
	if err := inst.Validate(); err != nil {
		return 0, err
	}
	var tl radio.Timeline
	busyUntil := time.Duration(0)
	for _, b := range inst.Beats {
		start := b.At
		if busyUntil > start {
			start = busyUntil
		}
		txTime := time.Duration(float64(b.Size) / inst.Bandwidth * float64(time.Second))
		if err := tl.Append(radio.Transmission{
			Start: start, TxTime: txTime, Size: b.Size, Kind: radio.TxHeartbeat,
		}); err != nil {
			return 0, err
		}
		busyUntil = start + txTime
	}
	return tl.AccountEnergy(inst.Power, inst.Horizon+inst.Power.TailTime()).Total(), nil
}

// Solve finds the minimum-energy schedule over the candidate event points
// by depth-first branch and bound. Instances are capped at MaxPackets
// packets (the problem is NP-hard; this is the exact reference the online
// algorithm is measured against, not a production path).
func Solve(inst Instance) (*Schedule, error) {
	inst.defaults()
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if len(inst.Packets) > inst.MaxPackets {
		return nil, fmt.Errorf("offline: %d packets exceed the exact solver's cap of %d",
			len(inst.Packets), inst.MaxPackets)
	}

	candidates := make([][]time.Duration, len(inst.Packets))
	for i, p := range inst.Packets {
		candidates[i] = inst.candidates(p)
	}

	budget := inst.CostBudget
	if budget <= 0 {
		budget = math.Inf(1)
	}

	starts := make([]time.Duration, len(inst.Packets))
	best := &Schedule{EnergyJoules: math.Inf(1)}

	lower, err := LowerBound(inst)
	if err != nil {
		return nil, err
	}

	var dfs func(i int, partialCost float64) error
	dfs = func(i int, partialCost float64) error {
		if i == len(inst.Packets) {
			energy, cost, err := inst.Evaluate(starts)
			if err != nil {
				return err
			}
			if cost <= budget+1e-9 && energy < best.EnergyJoules {
				times := make(map[int]time.Duration, len(starts))
				for j, at := range starts {
					times[inst.Packets[j].ID] = at
				}
				best = &Schedule{Times: times, EnergyJoules: energy, TotalCost: cost}
				// Optimal found if we ever hit the lower bound.
			}
			return nil
		}
		for _, at := range candidates[i] {
			// Requested-time cost is a lower bound on the serialized cost,
			// so pruning on it is safe.
			c := inst.Packets[i].Cost(at)
			if partialCost+c > budget+1e-9 {
				continue
			}
			starts[i] = at
			if err := dfs(i+1, partialCost+c); err != nil {
				return err
			}
			if best.EnergyJoules <= lower+1e-9 {
				return nil // cannot improve further
			}
		}
		return nil
	}
	if err := dfs(0, 0); err != nil {
		return nil, err
	}
	if math.IsInf(best.EnergyJoules, 1) {
		return nil, fmt.Errorf("offline: no feasible schedule within cost budget %.3f", inst.CostBudget)
	}
	return best, nil
}
