package bandwidth

import (
	"testing"
	"time"

	"etrain/internal/randx"
)

// BenchmarkTransmitTime measures the piecewise bandwidth integration for a
// 100 KB payload on a synthetic trace.
func BenchmarkTransmitTime(b *testing.B) {
	tr, err := Synthesize(randx.New(1), 2*time.Hour, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := time.Duration(i%7200) * time.Second
		if tr.TransmitTime(at, 100<<10) <= 0 {
			b.Fatal("zero transmit time")
		}
	}
}

// BenchmarkSynthesize measures generating the paper-scale 2-hour trace.
func BenchmarkSynthesize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Synthesize(randx.New(int64(i)), 2*time.Hour, nil); err != nil {
			b.Fatal(err)
		}
	}
}
