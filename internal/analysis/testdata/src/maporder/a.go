// Package maporder exercises the maporder analyzer: map iteration feeding
// rendered output is flagged unless the keys take a sorted detour.
package maporder

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

func renderDirect(w io.Writer, m map[string]int) {
	for k, v := range m { // want `map iterated in randomized order while writing output`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

func renderCollectedUnsorted(w io.Writer, m map[string]int) {
	var lines []string
	for k := range m { // want `no sort between loop and render`
		lines = append(lines, k)
	}
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
}

func renderSorted(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

func buildString(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want `map iterated in randomized order while writing output`
		b.WriteString(k)
	}
	return b.String()
}

func aggregateOnly(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func sliceRange(w io.Writer, rows []string) {
	for _, r := range rows {
		fmt.Fprintln(w, r)
	}
}
