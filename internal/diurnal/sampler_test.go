package diurnal

import (
	"math"
	"reflect"
	"testing"
	"time"

	"etrain/internal/heartbeat"
	"etrain/internal/randx"
)

func TestPhaseDeterministicAndBounded(t *testing.T) {
	p := Week()
	p.PhaseJitter = 2 * time.Hour
	seen := make(map[time.Duration]bool)
	for seed := int64(1); seed <= 64; seed++ {
		a := p.ForDevice("active", seed)
		b := p.ForDevice("active", seed)
		if a.Phase() != b.Phase() {
			t.Fatalf("seed %d: phase not deterministic: %v vs %v", seed, a.Phase(), b.Phase())
		}
		if a.Phase() < 0 || a.Phase() >= p.PhaseJitter {
			t.Fatalf("seed %d: phase %v outside [0, %v)", seed, a.Phase(), p.PhaseJitter)
		}
		seen[a.Phase()] = true
	}
	if len(seen) < 32 {
		t.Errorf("only %d distinct phases over 64 seeds", len(seen))
	}
	// No jitter → no phase.
	if got := Week().ForDevice("active", 7).Phase(); got != 0 {
		t.Errorf("zero-jitter phase = %v", got)
	}
}

func TestPhaseConsumesNoStreamState(t *testing.T) {
	// Building a sampler must not disturb any stream: two sources with
	// the same seed must stay in lockstep across a ForDevice call.
	src1, src2 := randx.New(99), randx.New(99)
	_ = src1.Float64()
	_ = src2.Float64()
	Week().ForDevice("active", 42)
	if a, b := src1.Float64(), src2.Float64(); a != b {
		t.Fatalf("ForDevice disturbed stream state: %v vs %v", a, b)
	}
}

func TestFlatSamplerIsIdentity(t *testing.T) {
	s := Flat().ForDevice("moderate", 5)
	for _, at := range []time.Duration{0, time.Hour, 37 * time.Hour} {
		if got := s.CargoFactor(at); got != 1 {
			t.Errorf("flat CargoFactor(%v) = %v", at, got)
		}
		if got := s.BeatFactor(at); got != 1 {
			t.Errorf("flat BeatFactor(%v) = %v", at, got)
		}
	}
	if got := s.WindowWeight(3 * time.Hour); math.Abs(got-(3*time.Hour).Seconds()) > 1e-6 {
		t.Errorf("flat WindowWeight(3h) = %v, want %v", got, (3 * time.Hour).Seconds())
	}
	if got := s.MaxCargoFactor(); got != 1 {
		t.Errorf("flat MaxCargoFactor = %v", got)
	}
}

func TestCargoFactorTracksCurveAndEvents(t *testing.T) {
	p := Week()
	p.Start = 34 * time.Hour // Tuesday 10:00
	p.Events = []Event{
		{Name: "storm", At: 36 * time.Hour, Duration: time.Hour, CargoFactor: 3, BeatFactor: 2},
	}
	s := p.ForDevice("moderate", 1)
	// Outside the storm the factor is the raw curve level.
	if got, want := s.CargoFactor(0), p.Default.Level(34*time.Hour); got != want {
		t.Errorf("CargoFactor(0) = %v, want %v", got, want)
	}
	if got := s.BeatFactor(0); got != 1 {
		t.Errorf("BeatFactor(0) = %v, want 1", got)
	}
	// Two sim hours in (scale 1) the storm is active.
	at := 2*time.Hour + time.Minute
	wantCargo := p.Default.Level(34*time.Hour+at) * 3
	if got := s.CargoFactor(at); math.Abs(got-wantCargo) > 1e-12 {
		t.Errorf("CargoFactor in storm = %v, want %v", got, wantCargo)
	}
	if got := s.BeatFactor(at); got != 2 {
		t.Errorf("BeatFactor in storm = %v, want 2", got)
	}
}

func TestEventsIgnorePhase(t *testing.T) {
	// Two devices with very different phases must see a scheduled event
	// at the same sim instant.
	p := Week()
	p.PhaseJitter = 20 * time.Hour
	p.Events = []Event{{Name: "storm", At: 5 * time.Hour, Duration: time.Hour, BeatFactor: 2}}
	a := p.ForDevice("moderate", 3)
	b := p.ForDevice("moderate", 1234567)
	if a.Phase() == b.Phase() {
		t.Skip("seeds drew equal phases; pick different seeds")
	}
	at := 5*time.Hour + 30*time.Minute
	if a.BeatFactor(at) != 2 || b.BeatFactor(at) != 2 {
		t.Errorf("storm not simultaneous: %v vs %v", a.BeatFactor(at), b.BeatFactor(at))
	}
	before := 4 * time.Hour
	if a.BeatFactor(before) != 1 || b.BeatFactor(before) != 1 {
		t.Errorf("storm leaked outside its window")
	}
}

func TestTimeScaleCompressesClock(t *testing.T) {
	p := Week()
	p.TimeScale = 504 // one week in 20 minutes
	s := p.ForDevice("moderate", 1)
	// 10 sim minutes → 84 diurnal hours (middle of Thursday night).
	simAt := 10 * time.Minute
	want := p.Default.Level(84 * time.Hour)
	if got := s.CargoFactor(simAt); got != want {
		t.Errorf("scaled CargoFactor = %v, want %v", got, want)
	}
	// WindowWeight over the full 20-minute window equals the week's
	// integral compressed by the scale.
	weight := s.WindowWeight(20 * time.Minute)
	wantWeight := p.Default.Integral(0, 7*Day) / 504
	if math.Abs(weight-wantWeight) > 1e-6*wantWeight {
		t.Errorf("scaled WindowWeight = %v, want %v", weight, wantWeight)
	}
}

func TestPlaceInWindowMonotoneAndProportional(t *testing.T) {
	p := Week()
	s := p.ForDevice("active", 17)
	window := 36 * time.Hour
	prev := time.Duration(-1)
	for u := 0.0; u < 1; u += 0.001 {
		at := s.PlaceInWindow(u, window)
		if at < 0 || at >= window {
			t.Fatalf("PlaceInWindow(%v) = %v outside [0, %v)", u, at, window)
		}
		if at < prev {
			t.Fatalf("PlaceInWindow not monotone at u=%v: %v < %v", u, at, prev)
		}
		prev = at
	}
	// The u placing mass at the window midpoint splits the activity area
	// in half: Integral[0, mid) / Integral[0, window) ≈ u at midpoint.
	mid := window / 2
	wantU := s.curve.Integral(s.clock(0), s.clock(mid)) / s.curve.Integral(s.clock(0), s.clock(window))
	got := s.PlaceInWindow(wantU, window)
	if d := (got - mid); d < -time.Minute || d > time.Minute {
		t.Errorf("PlaceInWindow(%v) = %v, want ≈ %v", wantU, got, mid)
	}
}

func TestScaleBeatAndSchedule(t *testing.T) {
	// Without beat events Schedule equals heartbeat's own walk exactly.
	s := Week().ForDevice("moderate", 3)
	apps := heartbeat.DefaultTrio()
	horizon := 2 * time.Hour
	if got, want := s.Merge(apps, horizon), heartbeat.Merge(apps, horizon); !reflect.DeepEqual(got, want) {
		t.Fatalf("no-event Merge diverged: %d vs %d beats", len(got), len(want))
	}

	// A factor-2 storm halves intervals that start inside it.
	p := Week()
	p.Events = []Event{{Name: "storm", At: 30 * time.Minute, Duration: 30 * time.Minute, BeatFactor: 2}}
	ss := p.ForDevice("moderate", 3)
	if got := ss.ScaleBeat(40*time.Minute, 300*time.Second); got != 150*time.Second {
		t.Errorf("ScaleBeat in storm = %v, want 150s", got)
	}
	if got := ss.ScaleBeat(10*time.Minute, 300*time.Second); got != 300*time.Second {
		t.Errorf("ScaleBeat outside storm = %v, want 300s", got)
	}
	stormy := ss.Merge(apps, horizon)
	calm := heartbeat.Merge(apps, horizon)
	if len(stormy) <= len(calm) {
		t.Errorf("storm did not densify beats: %d vs %d", len(stormy), len(calm))
	}
	// Clamp: an absurd composed factor cannot stall the walk.
	if got := ss.ScaleBeat(40*time.Minute, time.Millisecond); got < time.Millisecond {
		t.Errorf("ScaleBeat clamp failed: %v", got)
	}
}

// TestArrivalsIntegrateCurveArea is the issue's property test: over any
// window, the expected arrival count of the thinned process equals the
// activity curve's area over that window divided by the mean gap.
func TestArrivalsIntegrateCurveArea(t *testing.T) {
	p := Week()
	p.Start = 30 * time.Hour
	p.Events = []Event{
		{Name: "storm", At: 40 * time.Hour, Duration: 2 * time.Hour, CargoFactor: 2.5},
	}
	s := p.ForDevice("active", 11)
	const (
		trials  = 400
		meanGap = 100 * time.Second
	)
	horizon := 24 * time.Hour
	// Sub-windows, including one straddling the storm (sim hours 10-12).
	windows := []struct{ from, to time.Duration }{
		{0, horizon},
		{2 * time.Hour, 8 * time.Hour},
		{9 * time.Hour, 13 * time.Hour},
	}
	counts := make([]float64, len(windows))
	for trial := 0; trial < trials; trial++ {
		src := randx.New(int64(1000 + trial))
		arr := s.Arrivals(src, meanGap, horizon)
		for wi, w := range windows {
			for _, at := range arr {
				if at >= w.from && at < w.to {
					counts[wi]++
				}
			}
		}
	}
	for wi, w := range windows {
		// Expected count = ∫ CargoFactor dt / meanGap, assembled from the
		// curve integral and the storm's constant multiplier window.
		expect := 0.0
		const step = time.Minute
		for at := w.from; at < w.to; at += step {
			expect += s.CargoFactor(at) * step.Seconds() / meanGap.Seconds()
		}
		got := counts[wi] / trials
		// 4 standard errors of the Poisson mean keeps flake odds ~1e-4.
		tol := 4 * math.Sqrt(expect/trials)
		if math.Abs(got-expect) > tol {
			t.Errorf("window [%v,%v): mean count %.2f, want %.2f ± %.2f", w.from, w.to, got, expect, tol)
		}
	}
}

func TestArrivalsDeterministic(t *testing.T) {
	s := Week().ForDevice("moderate", 5)
	a := s.Arrivals(randx.New(77), 50*time.Second, 6*time.Hour)
	b := s.Arrivals(randx.New(77), 50*time.Second, 6*time.Hour)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Arrivals not deterministic for equal seeds")
	}
	if len(a) == 0 {
		t.Fatal("no arrivals over 6h at 50s mean gap")
	}
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatalf("arrivals not sorted at %d", i)
		}
	}
}

func TestArrivalsEdgeCases(t *testing.T) {
	s := Week().ForDevice("moderate", 5)
	if got := s.Arrivals(randx.New(1), 0, time.Hour); got != nil {
		t.Errorf("zero mean gap → %v arrivals", len(got))
	}
	if got := s.Arrivals(randx.New(1), time.Second, 0); got != nil {
		t.Errorf("zero horizon → %v arrivals", len(got))
	}
}

func BenchmarkCurveLevel(b *testing.B) {
	p := Week()
	c := p.CurveFor("active")
	at := time.Duration(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.Level(at)
		at += 13 * time.Minute
	}
}

func BenchmarkSamplerCargoFactor(b *testing.B) {
	p := Week()
	p.Events = []Event{
		{Name: "storm", At: 40 * time.Hour, Duration: 2 * time.Hour, CargoFactor: 2.5},
		{Name: "maint", At: 3 * time.Hour, Duration: time.Hour, Every: Day, CargoFactor: 0.1},
	}
	s := p.ForDevice("active", 11)
	at := time.Duration(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.CargoFactor(at)
		at += 13 * time.Minute
	}
}

func BenchmarkSamplerPlaceInWindow(b *testing.B) {
	s := Week().ForDevice("active", 11)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.PlaceInWindow(float64(i%1000)/1000, 36*time.Hour)
	}
}

func BenchmarkSamplerArrivals(b *testing.B) {
	s := Week().ForDevice("active", 11)
	src := randx.New(5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Arrivals(src, 100*time.Second, 2*time.Hour)
	}
}
