package server

import (
	"net"
	"sync"
	"testing"

	"etrain/internal/fleet"
	"etrain/internal/wire"
)

// checkCountersConsistent asserts the invariants a single-lock snapshot
// guarantees. With torn per-field reads, a snapshot taken between a
// session's open (Accepted, Active together) or outcome (Active release
// plus one outcome counter) transition would break the ledger.
func checkCountersConsistent(t *testing.T, c Counters) {
	t.Helper()
	if c.Accepted != c.Active+c.Completed+c.Errored+c.Parked+c.Refused {
		t.Errorf("torn snapshot: accepted %d != active %d + completed %d + errored %d + parked %d + refused %d",
			c.Accepted, c.Active, c.Completed, c.Errored, c.Parked, c.Refused)
	}
	if c.Decisions > c.FramesOut {
		t.Errorf("torn snapshot: decisions %d > frames out %d", c.Decisions, c.FramesOut)
	}
	if c.BusySent > c.FramesOut {
		t.Errorf("torn snapshot: busy sent %d > frames out %d", c.BusySent, c.FramesOut)
	}
}

// TestStatsSnapshotConsistent races Stats against heavy session churn —
// completions, protocol errors, and parks all at once — and asserts
// every observed snapshot satisfies the session ledger. Run under -race
// this also proves the counter path itself is data-race free.
func TestStatsSnapshotConsistent(t *testing.T) {
	pop := testPopulation(t)
	srv := New(Config{})

	var sessions []Session
	for i := 0; i < 4; i++ {
		dev, err := fleet.SynthesizeDevice(11, pop, i, testHorizon)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := SessionFromDevice(dev, testTheta, testK)
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, sess)
	}

	done := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			checkCountersConsistent(t, srv.Stats())
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				sess := sessions[(g+i)%len(sessions)]
				client, serverSide := net.Pipe()
				srvErr := make(chan error, 1)
				go func() { srvErr <- srv.ServeConn(serverSide) }()
				switch i % 3 {
				case 0: // full protocol: completed
					if _, err := Drive(client, sess); err != nil {
						t.Errorf("Drive: %v", err)
					}
				case 1: // ack as first frame: protocol error
					w := wire.NewWriter(client)
					if err := w.Write(wire.Ack{Seq: 9}); err != nil {
						t.Errorf("write: %v", err)
					}
					client.Close()
				case 2: // hello then vanish: session parks
					w := wire.NewWriter(client)
					r := wire.NewReader(client)
					if err := w.Write(sess.Hello); err != nil {
						t.Errorf("write hello: %v", err)
					} else if _, err := r.Next(); err != nil {
						t.Errorf("read admission: %v", err)
					}
					client.Close()
				}
				<-srvErr
			}
		}(g)
	}
	wg.Wait()
	close(done)
	snapWG.Wait()

	final := srv.Stats()
	checkCountersConsistent(t, final)
	if final.Active != 0 {
		t.Errorf("final snapshot: %d sessions still active", final.Active)
	}
	if final.Parked != final.Resumed+final.Discarded+final.Detached {
		t.Errorf("park ledger: parked %d != resumed %d + discarded %d + detached %d",
			final.Parked, final.Resumed, final.Discarded, final.Detached)
	}
	wantSessions := uint64(8 * 12)
	if final.Accepted != wantSessions {
		t.Errorf("accepted %d sessions, want %d", final.Accepted, wantSessions)
	}
}

// TestLameDuck verifies the drain hook: a lame-ducking server rejects
// new connections while an in-flight session runs to completion, and
// clearing the flag re-admits.
func TestLameDuck(t *testing.T) {
	pop := testPopulation(t)
	dev, err := fleet.SynthesizeDevice(11, pop, 0, testHorizon)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := SessionFromDevice(dev, testTheta, testK)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{})

	// Open a session, then flip lame duck while it is mid-flight.
	client, serverSide := net.Pipe()
	srvErr := make(chan error, 1)
	go func() { srvErr <- srv.ServeConn(serverSide) }()
	w := wire.NewWriter(client)
	r := wire.NewReader(client)
	if err := w.Write(sess.Hello); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	srv.SetLameDuck(true)
	if !srv.LameDucking() {
		t.Fatal("LameDucking not set")
	}

	// New connections bounce.
	c2, s2 := net.Pipe()
	if err := srv.ServeConn(s2); err != ErrServerClosed {
		t.Fatalf("lame-duck admission: %v, want ErrServerClosed", err)
	}
	c2.Close()

	// The in-flight session still completes over the event stream.
	for i, ev := range sess.Events {
		if err := w.Write(ev); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
	}
	if err := w.Write(wire.Ack{Seq: uint64(len(sess.Events)) + 1}); err != nil {
		t.Fatal(err)
	}
	for {
		m, err := r.Next()
		if err != nil {
			t.Fatalf("reading session stream: %v", err)
		}
		if _, isAck := m.(wire.Ack); isAck {
			break
		}
	}
	if err := <-srvErr; err != nil {
		t.Fatalf("in-flight session under lame duck: %v", err)
	}

	srv.SetLameDuck(false)
	out := driveLoopback(t, srv, sess)
	if out.Stats.DeviceID != uint64(dev.Index) {
		t.Fatalf("re-admitted session served device %d, want %d", out.Stats.DeviceID, dev.Index)
	}
	s := srv.Stats()
	if s.Rejected != 1 || s.Completed != 2 {
		t.Errorf("counters: %+v, want 1 rejected, 2 completed", s)
	}
}
