package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotDirective is the annotation that opts a function (on its doc comment)
// or a whole package (on the package clause's doc) into hotalloc's checks.
const hotDirective = "//etrain:hotpath"

// HotAlloc flags allocation-inducing constructs inside the loops of
// functions annotated //etrain:hotpath — the per-slot, per-device and
// per-frame paths whose allocation behavior the benchmark gate pins:
//
//   - append growing a slice declared in the same function without
//     preallocated capacity;
//   - fmt.Sprint/Sprintf/Sprintln calls and string concatenation;
//   - map and slice composite literals built per iteration;
//   - scalar arguments boxed into interface parameters at call sites;
//   - closures capturing loop state (forcing a heap-allocated closure per
//     iteration).
//
// Statements inside a return are exempt: error construction on the exit
// path leaves the loop and is cold by definition. Intentional allocations
// carry a //lint:ignore hotalloc directive with a justification.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "flag allocation-inducing constructs in the loops of functions " +
		"annotated //etrain:hotpath",
	Run: runHotAlloc,
}

// hasHotDirective reports whether a doc comment carries //etrain:hotpath.
func hasHotDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == hotDirective {
			return true
		}
	}
	return false
}

func runHotAlloc(pass *Pass) error {
	pkgHot := false
	for _, f := range pass.Files {
		if hasHotDirective(f.Doc) {
			pkgHot = true
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !pkgHot && !hasHotDirective(fn.Doc) {
				continue
			}
			w := &hotWalker{pass: pass, unprealloc: unpreallocatedSlices(pass, fn)}
			w.walk(fn.Body, nil, false)
		}
	}
	return nil
}

// unpreallocatedSlices collects the slice variables fn declares without
// capacity: `var x []T`, `x := []T{}`, and `x := make([]T, 0)`. Appending
// to one of these inside a loop regrows it allocation by allocation.
func unpreallocatedSlices(pass *Pass, fn *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	note := func(id *ast.Ident) {
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			if _, ok := obj.Type().Underlying().(*types.Slice); ok {
				out[obj] = true
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.DeclStmt:
			gd, ok := v.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if len(vs.Values) == 0 || isUnpreallocated(pass, vs.Values[i]) {
						note(name)
					}
				}
			}
		case *ast.AssignStmt:
			if v.Tok != token.DEFINE || len(v.Lhs) != len(v.Rhs) {
				return true
			}
			for i, lhs := range v.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || !isUnpreallocated(pass, v.Rhs[i]) {
					continue
				}
				note(id)
			}
		}
		return true
	})
	return out
}

// isUnpreallocated reports whether e builds a slice with no usable
// capacity: an empty slice literal, or make with no capacity argument and
// a constant-zero length.
func isUnpreallocated(pass *Pass, e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.CompositeLit:
		_, isSlice := pass.TypesInfo.Types[v].Type.Underlying().(*types.Slice)
		return isSlice && len(v.Elts) == 0
	case *ast.CallExpr:
		id, ok := v.Fun.(*ast.Ident)
		if !ok || id.Name != "make" || len(v.Args) != 2 {
			return false
		}
		if _, isSlice := pass.TypesInfo.Types[v].Type.Underlying().(*types.Slice); !isSlice {
			return false
		}
		tv := pass.TypesInfo.Types[v.Args[1]]
		return tv.Value != nil && tv.Value.String() == "0"
	}
	return false
}

// hotWalker walks one hot function's body tracking loop context.
type hotWalker struct {
	pass       *Pass
	unprealloc map[types.Object]bool
}

// walk descends n with the enclosing loops' variables and whether n sits
// inside a loop. Return statements reset the loop context: they leave the
// loop, so whatever they build happens at most once per loop lifetime.
func (w *hotWalker) walk(n ast.Node, loopVars []types.Object, inLoop bool) {
	switch stmt := n.(type) {
	case *ast.ForStmt:
		vars := loopVars
		if init, ok := stmt.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
			for _, lhs := range init.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := w.pass.TypesInfo.Defs[id]; obj != nil {
						vars = append(vars, obj)
					}
				}
			}
		}
		w.walk(stmt.Body, vars, true)
		return
	case *ast.RangeStmt:
		vars := loopVars
		for _, e := range []ast.Expr{stmt.Key, stmt.Value} {
			if id, ok := e.(*ast.Ident); ok {
				if obj := w.pass.TypesInfo.Defs[id]; obj != nil {
					vars = append(vars, obj)
				}
			}
		}
		w.walk(stmt.Body, vars, true)
		return
	case *ast.ReturnStmt:
		for _, res := range stmt.Results {
			w.walk(res, nil, false)
		}
		return
	case *ast.FuncLit:
		if inLoop && capturesAny(w.pass, stmt, loopVars) {
			w.pass.Reportf(stmt.Pos(),
				"closure captures loop state and allocates per iteration; hoist it or pass values as arguments")
		}
		// The literal's own body starts a fresh loop context.
		w.walk(stmt.Body, nil, false)
		return
	case *ast.AssignStmt:
		if inLoop {
			w.checkAssign(stmt)
		}
	case *ast.BinaryExpr:
		if inLoop {
			w.checkConcat(stmt)
		}
	case *ast.CompositeLit:
		if inLoop {
			w.checkCompositeLit(stmt)
		}
	case *ast.CallExpr:
		if inLoop {
			w.checkCall(stmt)
		}
	}
	children(n, func(c ast.Node) {
		w.walk(c, loopVars, inLoop)
	})
}

// checkAssign flags `x = append(x, ...)` growing an unpreallocated slice,
// and `s += ...` string concatenation.
func (w *hotWalker) checkAssign(stmt *ast.AssignStmt) {
	if stmt.Tok == token.ADD_ASSIGN && len(stmt.Lhs) == 1 && isStringExpr(w.pass, stmt.Lhs[0]) {
		w.pass.Reportf(stmt.Pos(),
			"string concatenation in a hot loop allocates per iteration; build into a reused []byte instead")
		return
	}
	for i, rhs := range stmt.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltin(w.pass, call.Fun, "append") || i >= len(stmt.Lhs) {
			continue
		}
		dst, ok := stmt.Lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		obj := w.pass.TypesInfo.Uses[dst]
		if obj == nil {
			obj = w.pass.TypesInfo.Defs[dst]
		}
		if obj != nil && w.unprealloc[obj] {
			w.pass.Reportf(call.Pos(),
				"append grows unpreallocated slice %s inside a hot loop; preallocate capacity or reuse a buffer",
				dst.Name)
		}
	}
}

// checkConcat flags non-constant string concatenation in a loop.
func (w *hotWalker) checkConcat(e *ast.BinaryExpr) {
	if e.Op != token.ADD || !isStringExpr(w.pass, e) {
		return
	}
	// Constant folding makes literal + literal free.
	if tv, ok := w.pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		return
	}
	w.pass.Reportf(e.Pos(),
		"string concatenation in a hot loop allocates per iteration; build into a reused []byte instead")
}

// checkCompositeLit flags map and slice literals built per iteration.
// Struct literals are value assignments and stay off the heap.
func (w *hotWalker) checkCompositeLit(lit *ast.CompositeLit) {
	t := w.pass.TypesInfo.Types[lit].Type
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		w.pass.Reportf(lit.Pos(),
			"map literal allocates per iteration of a hot loop; hoist it or reuse one map")
	case *types.Slice:
		w.pass.Reportf(lit.Pos(),
			"slice literal allocates per iteration of a hot loop; hoist it or reuse a buffer")
	}
}

// checkCall flags fmt.Sprint-family calls and scalar arguments boxed into
// interface parameters.
func (w *hotWalker) checkCall(call *ast.CallExpr) {
	if name, ok := fmtSprintCall(w.pass, call); ok {
		w.pass.Reportf(call.Pos(),
			"fmt.%s in a hot loop allocates; format outside the loop or append to a reused buffer", name)
		return
	}
	sig := callSignature(w.pass, call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		param := paramAt(sig, i)
		if param == nil {
			break
		}
		if _, isIface := param.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := w.pass.TypesInfo.Types[arg].Type
		if at == nil {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok &&
			b.Info()&(types.IsNumeric|types.IsBoolean) != 0 {
			w.pass.Reportf(arg.Pos(),
				"scalar argument is boxed into an interface parameter per iteration; keep the parameter concrete or hoist the call")
		}
	}
}

// capturesAny reports whether the literal's body uses any of the loop
// variables.
func capturesAny(pass *Pass, lit *ast.FuncLit, loopVars []types.Object) bool {
	if len(loopVars) == 0 {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		for _, lv := range loopVars {
			if obj == lv {
				found = true
			}
		}
		return !found
	})
	return found
}

// isStringExpr reports whether e's static type is a string.
func isStringExpr(pass *Pass, e ast.Expr) bool {
	t := pass.TypesInfo.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isBuiltin reports whether fun is the named builtin.
func isBuiltin(pass *Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

// fmtSprintCall reports whether call is fmt.Sprint, fmt.Sprintf or
// fmt.Sprintln, returning the function name.
func fmtSprintCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "fmt" {
		return "", false
	}
	switch obj.Name() {
	case "Sprint", "Sprintf", "Sprintln":
		return obj.Name(), true
	}
	return "", false
}

// callSignature returns the call's function signature, or nil for builtins
// and type conversions.
func callSignature(pass *Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.(*types.Signature)
	return sig
}

// paramAt returns the type of the i-th argument's parameter, unrolling the
// variadic tail.
func paramAt(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if params.Len() == 0 {
		return nil
	}
	if sig.Variadic() && i >= params.Len()-1 {
		last := params.At(params.Len() - 1).Type()
		if s, ok := last.(*types.Slice); ok {
			return s.Elem()
		}
		return last
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i).Type()
}
