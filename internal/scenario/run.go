package scenario

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"

	"etrain/internal/baseline"
	"etrain/internal/client"
	"etrain/internal/core"
	"etrain/internal/parallel"
	"etrain/internal/profile"
	"etrain/internal/radio"
	"etrain/internal/sched"
	"etrain/internal/server"
	"etrain/internal/sim"
	"etrain/internal/wire"
)

// degradedRetryEvery is the loopback client's initial degraded-mode
// probe cadence. Scenario sessions are short (tens of events), so the
// cadence must be small enough that a brief outage reconciles instead
// of silently completing locally; it is fixed — part of the engine's
// identity — so reports stay comparable across scenarios.
const degradedRetryEvery = 4

// Options parameterizes an execution without touching the scenario's
// identity: none of these fields can change a report's bytes.
type Options struct {
	// Workers bounds concurrent device runs: n > 0 verbatim, 0
	// sequential, negative one per CPU. The report is byte-identical at
	// every setting.
	Workers int
	// Progress, when non-nil, is invoked after every completed device
	// with (done, total). Calls are serialized.
	Progress func(done, total int)
}

// deviceResult is one device's measured outcome.
type deviceResult struct {
	classIndex int
	withoutJ   float64 // energy without eTrain (transmit on arrival)
	withJ      float64 // energy with eTrain
	delayS     float64 // with-eTrain mean packet delay
	violation  float64 // with-eTrain deadline-violation ratio

	// Loopback transport outcomes; all zero under the direct engine.
	failed       bool
	degraded     bool
	unreconciled bool
	decisionLoss bool
	restarted    bool
	reconnects   int
	resumes      int
	replays      int
	busy         int // wire.Busy frames received (refusals and sheds)
	exhausted    int // busy-retry budget exhaustions
}

// Run validates and executes the scenario, returning its report. The
// report — including its byte-exact text rendering — is a pure function
// of the scenario document; Options only affect speed.
func Run(s *Scenario, opts Options) (*Report, error) {
	c, err := s.compile()
	if err != nil {
		return nil, err
	}
	hash, err := s.ConfigHash()
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	switch {
	case workers == 0:
		workers = 1
	case workers < 0:
		workers = parallel.Workers(0)
	}

	var lb *rig
	if c.loopback {
		if lb, err = newRig(c); err != nil {
			return nil, err
		}
		defer lb.close()
	}

	devices := s.Fleet.Devices
	results := make([]*deviceResult, devices)
	done := 0
	runErr := parallel.ForEachStatus(parallel.NewLimit(workers), devices, func(i int) error {
		out, err := runScenarioDevice(c, lb, i)
		if err != nil {
			return fmt.Errorf("device %d: %w", i, err)
		}
		results[i] = out
		return nil
	}, func(i int, err error) {
		if err != nil {
			return
		}
		done++
		if opts.Progress != nil {
			opts.Progress(done, devices)
		}
	})
	if runErr != nil {
		return nil, runErr
	}

	// The determinism keystone: outcomes fold strictly in device-index
	// order, so the aggregates are invariant under worker count.
	set, err := newOutcomeSet(c.mix)
	if err != nil {
		return nil, err
	}
	for i := range results {
		if results[i] == nil {
			return nil, fmt.Errorf("scenario: device %d has no result", i)
		}
		if err := set.add(results[i]); err != nil {
			return nil, err
		}
	}
	return buildReport(c, hash, set), nil
}

// runScenarioDevice plans, builds and measures one device.
func runScenarioDevice(c *compiled, lb *rig, i int) (*deviceResult, error) {
	plan, err := planDevice(c, i)
	if err != nil {
		return nil, err
	}
	pd, err := plan.build()
	if err != nil {
		return nil, err
	}
	out := &deviceResult{classIndex: pd.dev.ClassIndex}
	without, err := runOne(c, pd, baseline.NewImmediate())
	if err != nil {
		return nil, fmt.Errorf("without eTrain: %w", err)
	}
	out.withoutJ = without.EnergyJ
	if c.loopback {
		err = runLoopbackDevice(c, lb, pd, out)
	} else {
		err = runDirectDevice(c, pd, out)
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// runOne executes one in-process run of the planned device — its
// post-timeline beats, cargo and channel — under the given strategy and
// the scenario's radio generation.
func runOne(c *compiled, pd *plannedDevice, strategy sched.Strategy) (sim.Metrics, error) {
	res, err := sim.Run(sim.Config{
		Horizon:   pd.dev.Horizon,
		Beats:     pd.beats,
		Packets:   pd.packets,
		Bandwidth: pd.trace,
		Power:     radio.GalaxyS43G(),
		Radio:     c.radio,
		Strategy:  strategy,
		Seed:      pd.dev.Seed,
	})
	if err != nil {
		return sim.Metrics{}, err
	}
	return res.Metrics(), nil
}

// runDirectDevice measures the with-eTrain run in-process.
func runDirectDevice(c *compiled, pd *plannedDevice, out *deviceResult) error {
	strategy, err := core.New(core.Options{Theta: c.theta, K: c.k})
	if err != nil {
		return err
	}
	m, err := runOne(c, pd, strategy)
	if err != nil {
		return fmt.Errorf("with eTrain: %w", err)
	}
	out.withJ = m.EnergyJ
	out.delayS = m.AvgDelayS
	out.violation = m.ViolationRatio
	return nil
}

// sessionFor converts the planned device into its wire replay.
func sessionFor(c *compiled, pd *plannedDevice) (server.Session, error) {
	events := make([]wire.Message, 0, len(pd.beats)+len(pd.packets))
	for _, b := range pd.beats {
		events = append(events, wire.HeartbeatObserved{At: b.At, App: b.App, Size: b.Size})
	}
	for _, p := range pd.packets {
		kind, ok := profile.KindOf(p.Profile)
		if !ok {
			return server.Session{}, fmt.Errorf("device %d packet %d: profile %q has no wire kind", pd.dev.Index, p.ID, p.Profile.Name())
		}
		events = append(events, wire.CargoArrival{
			ID:       uint64(p.ID),
			At:       p.ArrivedAt,
			App:      p.App,
			Size:     p.Size,
			Profile:  kind,
			Deadline: p.Profile.Deadline(),
		})
	}
	sort.SliceStable(events, func(i, j int) bool { return eventInstant(events[i]) < eventInstant(events[j]) })
	return server.Session{
		Hello: wire.Hello{
			DeviceID: uint64(pd.dev.Index),
			Seed:     pd.dev.BandwidthSeed,
			Theta:    c.theta,
			K:        uint32(c.k),
			Horizon:  pd.dev.Horizon,
		},
		Events: events,
	}, nil
}

func eventInstant(m wire.Message) int64 {
	switch v := m.(type) {
	case wire.HeartbeatObserved:
		return int64(v.At)
	case wire.CargoArrival:
		return int64(v.At)
	default:
		return 0
	}
}

// expectedOutcome replays the session locally through the same
// server.Replayer the server runs: the decision stream and stats a
// fault-free server would have produced, which the networked outcome
// is held to for the zero-decision-loss metric. It also returns the
// encoded size of that fault-free response stream (admission ack
// included), which calibrates the server_restart cut offset.
func expectedOutcome(sess server.Session) (*server.DeviceOutcome, int, error) {
	out := &server.DeviceOutcome{}
	var buf bytes.Buffer
	bw := wire.NewWriter(&buf)
	if err := bw.Write(wire.Ack{Seq: 0}); err != nil {
		return nil, 0, err
	}
	rep, err := server.NewReplayer(sess.Hello, radio.GalaxyS43G(), func(m wire.Message) error {
		switch v := m.(type) {
		case wire.Decision:
			out.Decisions = append(out.Decisions, v)
		case wire.StatsSnapshot:
			out.Stats = v
		}
		return bw.Write(m)
	})
	if err != nil {
		return nil, 0, err
	}
	for _, ev := range sess.Events {
		if err := rep.Apply(ev); err != nil {
			return nil, 0, err
		}
	}
	if err := rep.Apply(wire.Ack{Seq: uint64(len(sess.Events)) + 1}); err != nil {
		return nil, 0, err
	}
	return out, buf.Len(), nil
}

// runLoopbackDevice replays the device over an etraind session through
// the self-healing client, under the rig's faults, and compares the
// outcome against the fault-free local replay. A client error is not
// fatal to the run: it marks the session failed, which the
// sessions_failed metric (and the default report) surfaces.
func runLoopbackDevice(c *compiled, lb *rig, pd *plannedDevice, out *deviceResult) error {
	sess, err := sessionFor(c, pd)
	if err != nil {
		return err
	}
	expected, responseBytes, err := expectedOutcome(sess)
	if err != nil {
		return fmt.Errorf("local replay: %w", err)
	}
	dial, st := lb.dialerFor(c, pd.dev.Index, responseBytes)
	got, runErr := client.Run(client.Config{
		Dial:       dial,
		Seed:       c.sc.Seed,
		RetryEvery: degradedRetryEvery,
	}, sess)
	st.join()
	out.restarted = st.restarted
	if runErr != nil {
		out.failed = true
		return nil
	}
	out.withJ = got.Stats.EnergyJ
	out.delayS = got.Stats.AvgDelayS
	out.violation = got.Stats.ViolationRatio
	out.degraded = got.Degraded
	out.unreconciled = got.CompletedLocally
	out.reconnects = got.Reconnects
	out.resumes = got.Resumes
	out.replays = got.Replays
	out.busy = got.BusyResponses
	out.exhausted = got.BudgetExhausted
	out.decisionLoss = !reflect.DeepEqual(got.Decisions, expected.Decisions) ||
		got.Stats != expected.Stats
	return nil
}
