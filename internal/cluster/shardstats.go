package cluster

import (
	"etrain/internal/server"
	"etrain/internal/wire"
)

// CountersToShardStats maps a session server's counter snapshot onto the
// ShardStats control frame a shard agent reports. Every etraind shard
// and the in-process test rig use this one mapping, so the controller's
// merged totals mean the same thing regardless of who produced them.
func CountersToShardStats(id uint64, c server.Counters) wire.ShardStats {
	return wire.ShardStats{
		ShardID:      id,
		Accepted:     c.Accepted,
		Rejected:     c.Rejected,
		Active:       c.Active,
		Completed:    c.Completed,
		Errored:      c.Errored,
		Panics:       c.Panics,
		Parked:       c.Parked,
		Resumed:      c.Resumed,
		ResumeMisses: c.ResumeMisses,
		Discarded:    c.Discarded,
		Detached:     c.Detached,
		FramesIn:     c.FramesIn,
		FramesOut:    c.FramesOut,
		Decisions:    c.Decisions,
	}
}

// CountersToShardOverload maps the overload slice of a session server's
// counters onto the ShardOverload control frame — the companion of
// CountersToShardStats for the admission/shedding counters that ride on
// their own frame so pre-overload controllers never see them.
func CountersToShardOverload(id uint64, c server.Counters) wire.ShardOverload {
	return wire.ShardOverload{
		ShardID:  id,
		Refused:  c.Refused,
		Shed:     c.Shed,
		BusySent: c.BusySent,
	}
}
