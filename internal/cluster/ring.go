package cluster

import (
	"sort"

	"etrain/internal/wire"
)

// DefaultVnodes is the default virtual-node count per shard. 64 points
// per member keeps the load spread within a few percent of fair for
// single-digit shard counts while the ring stays small enough to rebuild
// on every membership change.
const DefaultVnodes = 64

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash  uint64
	shard uint64
}

// Ring is a seeded consistent-hash ring mapping devices to shards. It is
// immutable once built, and building is a pure function of
// (seed, vnodes, member set): the member list is deduplicated and sorted
// before hashing, point ties break by shard ID, and the hash is FNV-1a
// over fixed-width big-endian words — no map order, no process identity,
// no wall clock. Two processes holding the same RouteTable therefore
// route every device identically, which is what lets the control plane
// ship ring inputs instead of assignments (DESIGN.md §13).
//
// Consistency: removing a member moves exactly the devices that member
// owned, and adding one only steals devices for the newcomer — in
// expectation 1/N of the keyspace per membership change. The churn tests
// hold the ring to both properties.
type Ring struct {
	seed    int64
	vnodes  int
	members []uint64
	points  []ringPoint
}

// BuildRing constructs the ring for the given member set. vnodes <= 0
// selects DefaultVnodes. An empty member set yields a ring that owns
// nothing.
func BuildRing(seed int64, vnodes int, members []uint64) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	dedup := make([]uint64, 0, len(members))
	seen := make(map[uint64]struct{}, len(members))
	for _, m := range members {
		if _, ok := seen[m]; ok {
			continue
		}
		seen[m] = struct{}{}
		dedup = append(dedup, m)
	}
	sort.Slice(dedup, func(i, j int) bool { return dedup[i] < dedup[j] })

	r := &Ring{
		seed:    seed,
		vnodes:  vnodes,
		members: dedup,
		points:  make([]ringPoint, 0, len(dedup)*vnodes),
	}
	for _, m := range dedup {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(seed, m, uint64(v)), shard: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// RingFromTable builds the ring a RouteTable describes plus the
// shard→address map clients dial through.
func RingFromTable(t wire.RouteTable) (*Ring, map[uint64]string) {
	members := make([]uint64, 0, len(t.Shards))
	addrs := make(map[uint64]string, len(t.Shards))
	for _, e := range t.Shards {
		members = append(members, e.ShardID)
		addrs[e.ShardID] = e.Addr
	}
	return BuildRing(t.Seed, int(t.Vnodes), members), addrs
}

// Owner returns the shard owning deviceID: the first ring point at or
// clockwise of the device's hash. ok is false on an empty ring.
//
//etrain:hotpath
func (r *Ring) Owner(deviceID uint64) (shard uint64, ok bool) {
	if len(r.points) == 0 {
		return 0, false
	}
	h := deviceHash(r.seed, deviceID)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point
	}
	return r.points[i].shard, true
}

// Members returns the ring's member IDs in ascending order. The slice is
// shared; callers must not mutate it.
func (r *Ring) Members() []uint64 { return r.members }

// FNV-1a constants, shared with wire.SessionToken.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvWord folds one 64-bit word into an FNV-1a state big-endian-wise, so
// the hash is the same on every platform.
func fnvWord(h, w uint64) uint64 {
	for shift := 56; shift >= 0; shift -= 8 {
		h ^= (w >> uint(shift)) & 0xff
		h *= fnvPrime64
	}
	return h
}

// mix64 is the standard 64-bit avalanche finalizer (MurmurHash3 fmix64).
// Raw FNV-1a leaves the high bits of the state barely touched by the
// last bytes folded, so consecutive device IDs — which differ only in
// their low bytes — would all land in one narrow arc of the circle and
// a single shard would own the whole fleet. The finalizer spreads every
// input bit across the word.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// pointHash places virtual node v of a shard on the circle.
func pointHash(seed int64, shard, v uint64) uint64 {
	h := fnvWord(uint64(fnvOffset64), uint64(seed))
	h = fnvWord(h, shard)
	return mix64(fnvWord(h, v))
}

// deviceHash places a device on the circle. It hashes a different domain
// tag than pointHash (an extra word) so a device can never land exactly
// on a point by construction sharing.
func deviceHash(seed int64, device uint64) uint64 {
	h := fnvWord(uint64(fnvOffset64), uint64(seed))
	h = fnvWord(h, 0x6465766963650000) // "device" domain tag
	return mix64(fnvWord(h, device))
}
