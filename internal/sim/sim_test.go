package sim

import (
	"testing"
	"testing/quick"
	"time"

	"etrain/internal/bandwidth"
	"etrain/internal/baseline"
	"etrain/internal/core"
	"etrain/internal/heartbeat"
	"etrain/internal/radio"
	"etrain/internal/randx"
	"etrain/internal/sched"
	"etrain/internal/workload"
)

const testHorizon = 7200 * time.Second

// paperConfig builds the paper's default simulation setup (§VI-A) with the
// given strategy slot left unset.
func paperConfig(t *testing.T, seed int64) Config {
	t.Helper()
	src := randx.New(seed)
	bw, err := bandwidth.Synthesize(src.Split(), testHorizon, nil)
	if err != nil {
		t.Fatal(err)
	}
	packets, err := workload.Generate(src.Split(), workload.DefaultSpecs(), testHorizon)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Horizon:   testHorizon,
		Trains:    heartbeat.DefaultTrio(),
		Packets:   packets,
		Bandwidth: bw,
		Power:     radio.GalaxyS43G(),
	}
}

func mustETrain(t *testing.T, theta float64, k int) sched.Strategy {
	t.Helper()
	s, err := core.New(core.Options{Theta: theta, K: k})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func runWith(t *testing.T, cfg Config, s sched.Strategy) *Result {
	t.Helper()
	cfg.Strategy = s
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestValidateCatchesErrors(t *testing.T) {
	good := paperConfig(t, 1)
	good.Strategy = baseline.NewImmediate()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}

	noHorizon := good
	noHorizon.Horizon = 0
	if err := noHorizon.Validate(); err == nil {
		t.Fatal("zero horizon accepted")
	}

	noBW := good
	noBW.Bandwidth = nil
	if err := noBW.Validate(); err == nil {
		t.Fatal("missing bandwidth accepted")
	}

	noStrategy := good
	noStrategy.Strategy = nil
	if err := noStrategy.Validate(); err == nil {
		t.Fatal("missing strategy accepted")
	}

	badPower := good
	badPower.Power = radio.PowerModel{}
	if err := badPower.Validate(); err == nil {
		t.Fatal("invalid power model accepted")
	}

	unsorted := good
	unsorted.Packets = []workload.Packet{
		{ArrivedAt: time.Minute, App: "a", Profile: workload.MailSpec().Profile},
		{ArrivedAt: time.Second, App: "a", Profile: workload.MailSpec().Profile},
	}
	if err := unsorted.Validate(); err == nil {
		t.Fatal("unsorted packets accepted")
	}
}

func TestAllPacketsAccountedFor(t *testing.T) {
	cfg := paperConfig(t, 2)
	for _, s := range []sched.Strategy{
		baseline.NewImmediate(),
		mustETrain(t, 0.2, core.KInfinite),
	} {
		res := runWith(t, cfg, s)
		if len(res.Packets) != len(cfg.Packets) {
			t.Fatalf("%s: %d packet stats for %d packets", s.Name(), len(res.Packets), len(cfg.Packets))
		}
		seen := make(map[int]bool)
		for _, p := range res.Packets {
			if seen[p.ID] {
				t.Fatalf("%s: packet %d transmitted twice", s.Name(), p.ID)
			}
			seen[p.ID] = true
			if p.Delay < 0 {
				t.Fatalf("%s: packet %d has negative delay %v (causality)", s.Name(), p.ID, p.Delay)
			}
		}
	}
}

func TestHeartbeatCountMatchesSchedule(t *testing.T) {
	cfg := paperConfig(t, 3)
	res := runWith(t, cfg, baseline.NewImmediate())
	want := len(heartbeat.Merge(cfg.Trains, cfg.Horizon))
	if res.HeartbeatCount != want {
		t.Fatalf("heartbeats = %d, want %d", res.HeartbeatCount, want)
	}
}

func TestTimelineSerialized(t *testing.T) {
	cfg := paperConfig(t, 4)
	res := runWith(t, cfg, mustETrain(t, 0.2, core.KInfinite))
	txs := res.Timeline.Transmissions()
	for i := 1; i < len(txs); i++ {
		if txs[i].Start < txs[i-1].End() {
			t.Fatalf("transmissions overlap at %d", i)
		}
	}
}

func TestETrainSavesEnergyVersusBaseline(t *testing.T) {
	cfg := paperConfig(t, 5)
	base := runWith(t, cfg, baseline.NewImmediate())
	et := runWith(t, cfg, mustETrain(t, 2.0, core.KInfinite))

	if et.Energy.Total() >= base.Energy.Total() {
		t.Fatalf("eTrain %.0f J >= baseline %.0f J", et.Energy.Total(), base.Energy.Total())
	}
	saving := 1 - et.Energy.Total()/base.Energy.Total()
	if saving < 0.25 {
		t.Fatalf("eTrain saving only %.1f%%, want the paper's substantial cut", saving*100)
	}
	// The price of saving is delay.
	if et.NormalizedDelay() <= base.NormalizedDelay() {
		t.Fatalf("eTrain delay %v not above baseline %v", et.NormalizedDelay(), base.NormalizedDelay())
	}
}

func TestBaselineDelayNearZero(t *testing.T) {
	cfg := paperConfig(t, 6)
	res := runWith(t, cfg, baseline.NewImmediate())
	if res.NormalizedDelay() > 3*time.Second {
		t.Fatalf("baseline delay = %v, want ~0 (immediate transmission)", res.NormalizedDelay())
	}
	if res.DeadlineViolationRatio() > 0.01 {
		t.Fatalf("baseline violates deadlines: %v", res.DeadlineViolationRatio())
	}
}

func TestThetaTradeoffMonotoneEnergy(t *testing.T) {
	cfg := paperConfig(t, 7)
	low := runWith(t, cfg, mustETrain(t, 0.0, 20))
	high := runWith(t, cfg, mustETrain(t, 2.0, 20))
	if high.Energy.Total() >= low.Energy.Total() {
		t.Fatalf("larger Θ did not save energy: %.0f J vs %.0f J", high.Energy.Total(), low.Energy.Total())
	}
	if high.NormalizedDelay() <= low.NormalizedDelay() {
		t.Fatalf("larger Θ did not increase delay: %v vs %v", high.NormalizedDelay(), low.NormalizedDelay())
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := runWith(t, paperConfig(t, 8), mustETrain(t, 0.4, core.KInfinite))
	b := runWith(t, paperConfig(t, 8), mustETrain(t, 0.4, core.KInfinite))
	if a.Energy.Total() != b.Energy.Total() {
		t.Fatalf("energy differs across identical runs: %v vs %v", a.Energy.Total(), b.Energy.Total())
	}
	if a.NormalizedDelay() != b.NormalizedDelay() {
		t.Fatal("delay differs across identical runs")
	}
	if a.Timeline.Len() != b.Timeline.Len() {
		t.Fatal("timeline length differs across identical runs")
	}
}

func TestHeartbeatOnlyRun(t *testing.T) {
	cfg := paperConfig(t, 9)
	cfg.Packets = nil
	res := runWith(t, cfg, mustETrain(t, 0.2, core.KInfinite))
	if len(res.Packets) != 0 {
		t.Fatal("packets appeared from nowhere")
	}
	if res.HeartbeatCount == 0 {
		t.Fatal("no heartbeats in heartbeat-only run")
	}
	// ~86 beats in 2 h (24+26.6+30 per hour, phased): each costs roughly a
	// full tail since cycles >> tail time.
	perBeat := res.Energy.Total() / float64(res.HeartbeatCount)
	if perBeat < 8 || perBeat > 12 {
		t.Fatalf("per-heartbeat energy = %.2f J, want ~10.4 J", perBeat)
	}
}

func TestNoTrainsRun(t *testing.T) {
	cfg := paperConfig(t, 10)
	cfg.Trains = nil
	res := runWith(t, cfg, mustETrain(t, 0.2, core.KInfinite))
	if res.HeartbeatCount != 0 {
		t.Fatal("heartbeats without trains")
	}
	if len(res.Packets) != len(cfg.Packets) {
		t.Fatal("packets lost without trains")
	}
	// Without trains, packets only leave when cost crosses Θ.
	if res.NormalizedDelay() <= 0 {
		t.Fatal("expected nonzero delay without trains")
	}
}

func TestForcedFlushCountsTailPackets(t *testing.T) {
	cfg := paperConfig(t, 11)
	// A packet arriving just before the horizon with a huge deadline will
	// still be queued at the end.
	spec := workload.MailSpec()
	late := workload.Packet{
		ID: 999999, App: "mail", ArrivedAt: cfg.Horizon - time.Second,
		Size: 5120, Profile: spec.Profile,
	}
	cfg.Packets = append(cfg.Packets, late)
	res := runWith(t, cfg, mustETrain(t, 5.0, core.KInfinite))
	if res.ForcedFlushCount == 0 {
		t.Fatal("no forced flush despite late zero-cost packet")
	}
}

// TestEngineInvariantsProperty drives small random workloads through the
// engine under every strategy family and checks the invariants that must
// hold regardless of scheduling decisions.
func TestEngineInvariantsProperty(t *testing.T) {
	prop := func(seed int64, strategyPick uint8) bool {
		horizon := 20 * time.Minute
		src := randx.New(seed)
		bw, err := bandwidth.Synthesize(src.Split(), horizon, nil)
		if err != nil {
			return false
		}
		packets, err := workload.Generate(src.Split(), workload.DefaultSpecs(), horizon)
		if err != nil {
			return false
		}
		var strategy sched.Strategy
		switch strategyPick % 4 {
		case 0:
			strategy = baseline.NewImmediate()
		case 1:
			strategy, err = core.New(core.Options{Theta: 2, K: core.KInfinite})
		case 2:
			strategy, err = baseline.NewPerES(baseline.DefaultPerESOptions(0.5))
		default:
			strategy, err = baseline.NewETime(baseline.ETimeOptions{V: 6})
		}
		if err != nil {
			return false
		}
		cfg := Config{
			Horizon: horizon, Trains: heartbeat.DefaultTrio(),
			Packets: packets, Bandwidth: bw, Power: radio.GalaxyS43G(),
			Strategy:  strategy,
			Estimator: bandwidth.NewEstimator(bw, src.Split(), time.Second, 0.3),
		}
		res, err := Run(cfg)
		if err != nil {
			return false
		}
		// Conservation: every packet transmitted exactly once.
		if len(res.Packets) != len(packets) {
			return false
		}
		seen := make(map[int]bool)
		for _, p := range res.Packets {
			if seen[p.ID] || p.Delay < 0 {
				return false
			}
			seen[p.ID] = true
		}
		// Serialization and ordering.
		txs := res.Timeline.Transmissions()
		for i := 1; i < len(txs); i++ {
			if txs[i].Start < txs[i-1].End() {
				return false
			}
		}
		// Energy sanity: non-negative, and tails bounded by one full tail
		// per transmission.
		maxTail := float64(res.Timeline.Len()) * cfg.Power.FullTailEnergy()
		return res.Energy.Total() >= 0 && res.Energy.Tail <= maxTail+1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestAppStatsBreakdown(t *testing.T) {
	cfg := paperConfig(t, 24)
	res := runWith(t, cfg, mustETrain(t, 2.0, core.KInfinite))
	statsByApp := res.AppStats()
	if len(statsByApp) != 3 {
		t.Fatalf("got stats for %d apps, want 3", len(statsByApp))
	}
	total := 0
	for app, s := range statsByApp {
		if s.Count <= 0 || s.Bytes <= 0 {
			t.Fatalf("%s has empty stats: %+v", app, s)
		}
		total += s.Count
	}
	if total != len(res.Packets) {
		t.Fatalf("per-app counts sum to %d, want %d", total, len(res.Packets))
	}
	// Mail (zero pre-deadline cost) waits for trains; weibo leaves earlier
	// when Θ-triggered drips fire. Both must have sane averages.
	if statsByApp["mail"].AvgDelay <= 0 {
		t.Fatal("mail average delay should be positive")
	}
}

func TestDelayPercentiles(t *testing.T) {
	cfg := paperConfig(t, 23)
	res := runWith(t, cfg, mustETrain(t, 2.0, core.KInfinite))
	p50 := res.DelayPercentile(50)
	p90 := res.DelayPercentile(90)
	p99 := res.DelayPercentile(99)
	if !(p50 <= p90 && p90 <= p99) {
		t.Fatalf("percentiles not ordered: p50=%v p90=%v p99=%v", p50, p90, p99)
	}
	if p50 <= 0 {
		t.Fatal("median delay should be positive under eTrain")
	}
	empty := Result{}
	if empty.DelayPercentile(50) != 0 {
		t.Fatal("empty result percentile should be 0")
	}
}

func TestBeatsOverrideReplacesTrains(t *testing.T) {
	cfg := paperConfig(t, 21)
	cfg.Beats = []heartbeat.Beat{
		{At: 100 * time.Second, App: "solo", Size: 100},
		{At: 200 * time.Second, App: "solo", Size: 100},
	}
	res := runWith(t, cfg, mustETrain(t, 0.2, core.KInfinite))
	if res.HeartbeatCount != 2 {
		t.Fatalf("heartbeats = %d, want the 2 overridden beats", res.HeartbeatCount)
	}
}

func TestBeatsOverrideMustBeSorted(t *testing.T) {
	cfg := paperConfig(t, 22)
	cfg.Beats = []heartbeat.Beat{
		{At: 200 * time.Second, App: "a", Size: 1},
		{At: 100 * time.Second, App: "a", Size: 1},
	}
	cfg.Strategy = baseline.NewImmediate()
	if _, err := Run(cfg); err == nil {
		t.Fatal("unsorted beat override accepted")
	}
}

func TestSweepProducesOnePointPerControl(t *testing.T) {
	cfg := paperConfig(t, 12)
	factory := func(theta float64) (sched.Strategy, error) {
		return core.New(core.Options{Theta: theta, K: 20})
	}
	points, err := Sweep(cfg, factory, []float64{0, 0.5, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points, want 3", len(points))
	}
	if points[2].EnergyJoules >= points[0].EnergyJoules {
		t.Fatalf("sweep not energy-monotone: %v", points)
	}
}

func TestCalibrateDelayHitsTarget(t *testing.T) {
	cfg := paperConfig(t, 13)
	factory := func(theta float64) (sched.Strategy, error) {
		return core.New(core.Options{Theta: theta, K: 20})
	}
	target := 40 * time.Second
	pt, err := CalibrateDelay(cfg, factory, target, 0, 4.0, 8)
	if err != nil {
		t.Fatal(err)
	}
	diff := pt.Delay - target
	if diff < 0 {
		diff = -diff
	}
	if diff > 15*time.Second {
		t.Fatalf("calibrated delay %v too far from target %v", pt.Delay, target)
	}
}

func TestChannelAwareStrategiesRun(t *testing.T) {
	cfg := paperConfig(t, 14)
	cfg.Estimator = bandwidth.NewEstimator(cfg.Bandwidth, randx.New(99), time.Second, 0.3)

	peres, err := baseline.NewPerES(baseline.DefaultPerESOptions(0.5))
	if err != nil {
		t.Fatal(err)
	}
	etime, err := baseline.NewETime(baseline.ETimeOptions{V: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []sched.Strategy{peres, etime} {
		res := runWith(t, cfg, s)
		if len(res.Packets) != len(cfg.Packets) {
			t.Fatalf("%s lost packets: %d of %d", s.Name(), len(res.Packets), len(cfg.Packets))
		}
		if res.Energy.Total() <= 0 {
			t.Fatalf("%s zero energy", s.Name())
		}
	}
}

func TestComparativeOrderingMatchesPaper(t *testing.T) {
	// Fig. 8 shape, following the paper's methodology: calibrate every
	// strategy's control parameter to the same normalized delay, then
	// compare energy. Expected ordering: eTrain < eTime < PerES < baseline,
	// with PerES (deadline-aware) violating fewer deadlines than eTime.
	cfg := paperConfig(t, 15)
	cfg.Estimator = bandwidth.NewEstimator(cfg.Bandwidth, randx.New(7), time.Second, 0.3)

	// 68 s sits inside every strategy's reachable delay range on this
	// seed; the union of the 300/270/240 s train cycles has an inherent
	// mean-wait floor of ~64 s (beat clustering), so eTrain cannot be
	// calibrated much below that.
	target := 68 * time.Second

	etrainPt, err := CalibrateDelay(cfg, func(theta float64) (sched.Strategy, error) {
		return core.New(core.Options{Theta: theta, K: core.KInfinite})
	}, target, 0, 20, 8)
	if err != nil {
		t.Fatal(err)
	}
	etimePt, err := CalibrateDelay(cfg, func(v float64) (sched.Strategy, error) {
		return baseline.NewETime(baseline.ETimeOptions{V: v})
	}, target, 1, 40, 8)
	if err != nil {
		t.Fatal(err)
	}
	peresPt, err := CalibrateDelay(cfg, func(omega float64) (sched.Strategy, error) {
		return baseline.NewPerES(baseline.DefaultPerESOptions(omega))
	}, target, 0, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	base := runWith(t, cfg, baseline.NewImmediate())

	if !(etrainPt.EnergyJoules < etimePt.EnergyJoules &&
		etimePt.EnergyJoules < peresPt.EnergyJoules &&
		peresPt.EnergyJoules < base.Energy.Total()) {
		t.Fatalf("energy ordering at delay %v violated: etrain=%.0f etime=%.0f peres=%.0f baseline=%.0f",
			target, etrainPt.EnergyJoules, etimePt.EnergyJoules, peresPt.EnergyJoules, base.Energy.Total())
	}
	// PerES is deadline-aware; eTime is not (paper §VI-A).
	if peresPt.ViolationRatio > etimePt.ViolationRatio {
		t.Fatalf("PerES violation %.3f above eTime's %.3f despite deadline-awareness",
			peresPt.ViolationRatio, etimePt.ViolationRatio)
	}
}
