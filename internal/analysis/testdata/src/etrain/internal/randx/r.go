// Package randx stands in for the real etrain/internal/randx: the one
// package allowed to wrap the stdlib generators, so its math/rand import
// must produce no norand diagnostics.
package randx

import "math/rand"

// Source wraps the stdlib generator behind an identity-seeded API.
type Source struct{ rng *rand.Rand }

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{rng: rand.New(rand.NewSource(seed))}
}

// Int63 draws the next value from the stream.
func (s *Source) Int63() int64 { return s.rng.Int63() }
