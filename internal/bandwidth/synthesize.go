package bandwidth

import (
	"math"
	"time"

	"etrain/internal/randx"
)

// Regime describes one mobility regime of the synthetic trace generator.
// The paper's trace was collected riding a bus downtown and then walking on
// campus; each environment has a distinct bandwidth mean, volatility and
// temporal correlation.
type Regime struct {
	Name string
	// Mean uplink bandwidth in bytes/second.
	Mean float64
	// StdDev of the stationary distribution in bytes/second.
	StdDev float64
	// Corr is the one-second autocorrelation in (0, 1); larger is smoother.
	Corr float64
	// MeanDwell is how long the process stays in this regime on average.
	MeanDwell time.Duration
}

// DefaultRegimes returns the three regimes used to emulate the paper's
// bus-then-campus collection run over a 3G (TD-SCDMA) uplink.
func DefaultRegimes() []Regime {
	return []Regime{
		{Name: "bus", Mean: 180e3, StdDev: 90e3, Corr: 0.92, MeanDwell: 120 * time.Second},
		{Name: "walk", Mean: 320e3, StdDev: 80e3, Corr: 0.97, MeanDwell: 180 * time.Second},
		{Name: "indoor", Mean: 90e3, StdDev: 50e3, Corr: 0.95, MeanDwell: 60 * time.Second},
	}
}

// Synthesize generates a trace of the given duration from a regime-switching
// Gauss–Markov process. The same seed always yields the same trace.
func Synthesize(src *randx.Source, duration time.Duration, regimes []Regime) (*Trace, error) {
	if len(regimes) == 0 {
		regimes = DefaultRegimes()
	}
	n := int(duration / time.Second)
	if n <= 0 {
		n = 1
	}
	samples := make([]float64, 0, n)

	regimeIdx := src.Intn(len(regimes))
	reg := regimes[regimeIdx]
	dwellLeft := int(src.Exp(reg.MeanDwell.Seconds()))
	value := reg.Mean

	for len(samples) < n {
		if dwellLeft <= 0 {
			// Switch to a different regime, uniformly among the others.
			next := src.Intn(len(regimes) - 1)
			if next >= regimeIdx {
				next++
			}
			regimeIdx = next
			reg = regimes[regimeIdx]
			dwellLeft = int(src.Exp(reg.MeanDwell.Seconds()))
			if dwellLeft < 1 {
				dwellLeft = 1
			}
		}
		// AR(1) step towards the regime mean.
		innovation := reg.StdDev * sqrt1m(reg.Corr) * src.NormFloat64()
		value = reg.Mean + reg.Corr*(value-reg.Mean) + innovation
		if value < 1e3 {
			value = 1e3 // deep fade floor: 1 KB/s
		}
		samples = append(samples, value)
		dwellLeft--
	}
	return NewTrace(samples)
}

// FromSeed generates the trace Synthesize would produce from a fresh
// source seeded with seed. A session's Hello carries only this seed: the
// server rebuilds the exact channel the client's synthesizer drew, so the
// trace itself never crosses the wire.
func FromSeed(seed int64, duration time.Duration, regimes []Regime) (*Trace, error) {
	// Synthesize consumes the source fully, so it can come from the pool.
	src := randx.Acquire(seed)
	defer src.Release()
	return Synthesize(src, duration, regimes)
}

// sqrt1m returns sqrt(1 - c²), the innovation scale that gives an AR(1)
// process the requested stationary standard deviation.
func sqrt1m(c float64) float64 {
	v := 1 - c*c
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Estimator models the imperfect channel knowledge available to strategies
// like PerES and eTime: the estimate of the current bandwidth is the true
// value one observation lag ago, corrupted by multiplicative noise.
// eTrain deliberately never uses an Estimator (paper §IV: channel
// obliviousness is an advantage).
type Estimator struct {
	trace *Trace
	src   *randx.Source
	// Lag is the observation delay; estimates describe t − Lag.
	Lag time.Duration
	// NoiseStdDev is the relative error std-dev (e.g. 0.3 for 30%).
	NoiseStdDev float64
}

// NewEstimator returns an estimator over trace with the given lag and
// relative noise.
func NewEstimator(trace *Trace, src *randx.Source, lag time.Duration, noise float64) *Estimator {
	return &Estimator{trace: trace, src: src, Lag: lag, NoiseStdDev: noise}
}

// Reseeded returns a copy of the estimator drawing its noise from src,
// leaving the receiver untouched. Sweep runners hand every simulation run
// its own reseeded copy so that (a) concurrent runs never race on one
// shared noise stream and (b) a run's estimates depend only on the run's
// identity, never on how many estimates earlier runs consumed.
func (e *Estimator) Reseeded(src *randx.Source) *Estimator {
	return &Estimator{trace: e.trace, src: src, Lag: e.Lag, NoiseStdDev: e.NoiseStdDev}
}

// Estimate returns the strategy-visible bandwidth estimate for time at.
func (e *Estimator) Estimate(at time.Duration) float64 {
	truth := e.trace.At(at - e.Lag)
	noisy := truth * (1 + e.NoiseStdDev*e.src.NormFloat64())
	if noisy < 1e3 {
		noisy = 1e3
	}
	return noisy
}
