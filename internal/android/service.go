package android

import (
	"sort"
	"time"

	"etrain/internal/core"
	"etrain/internal/heartbeat"
	"etrain/internal/profile"
	"etrain/internal/sched"
	"etrain/internal/simtime"
	"etrain/internal/workload"
)

// ActionRegisterCargo is fired by the cargo client library when an app
// registers for eTrain's services, carrying its delay-cost profile.
const ActionRegisterCargo = "etrain.REGISTER_CARGO"

// CargoRegistration is the payload of ActionRegisterCargo.
type CargoRegistration struct {
	// App names the registering cargo app.
	App string
	// Profile is the app's delay-cost profile.
	Profile profile.Profile
}

// ServiceOptions configures the eTrain system service.
type ServiceOptions struct {
	// Core holds the scheduler options (Θ, k, slot) for Algorithm 1.
	Core core.Options
	// BypassAfter is how long the service waits without seeing any
	// heartbeat before it stops scheduling and passes cargo straight
	// through — the paper's "in case when no train app is running, eTrain
	// will stop its scheduler to avoid cargo apps' indefinite waiting".
	// Defaults to 10 minutes (beyond every observed heartbeat cycle).
	BypassAfter time.Duration
}

// Service is the eTrain system: the Heartbeat Monitor, Scheduler and
// Broadcast modules of the paper's Fig. 5, wired to the device bus.
type Service struct {
	device   *Device
	strategy *core.ETrain
	queues   *sched.Queues
	detector *heartbeat.Detector
	profiles map[string]profile.Profile
	opts     ServiceOptions

	slotAlarm *simtime.Alarm
	stopped   bool

	lastBeatAt   time.Duration
	beatSeen     bool
	beatsHandled int
	decisions    int
}

// StartService installs the eTrain service on the device and starts its
// per-slot scheduling alarm.
func StartService(device *Device, opts ServiceOptions) (*Service, error) {
	strategy, err := core.New(opts.Core)
	if err != nil {
		return nil, err
	}
	if opts.BypassAfter <= 0 {
		opts.BypassAfter = 10 * time.Minute
	}
	s := &Service{
		device:   device,
		strategy: strategy,
		queues:   sched.NewQueues(),
		detector: heartbeat.NewDetector(2 * time.Second),
		profiles: make(map[string]profile.Profile),
		opts:     opts,
	}
	device.Bus.Register(ActionRegisterCargo, s.onRegister)
	device.Bus.Register(ActionHeartbeatSent, s.onHeartbeat)
	device.Bus.Register(ActionSubmitRequest, s.onSubmit)
	s.slotAlarm = simtime.NewAlarm(device.Loop, strategy.SlotLength(), strategy.SlotLength(), s.onSlot)
	return s, nil
}

// Stop shuts the service down gracefully: the scheduling alarm is
// cancelled, queued packets are flushed so no cargo is stranded, and
// subsequent submissions pass straight through.
func (s *Service) Stop() {
	if s.stopped {
		return
	}
	s.stopped = true
	s.slotAlarm.Cancel()
	s.flushAll()
}

// Stopped reports whether Stop was called.
func (s *Service) Stopped() bool { return s.stopped }

// Detector exposes the monitor's cycle detector (Table 1 style analysis).
func (s *Service) Detector() *heartbeat.Detector { return s.detector }

// QueuedCount reports packets currently waiting in the service.
func (s *Service) QueuedCount() int { return s.queues.Len() }

// BeatsObserved reports how many heartbeat notifications the monitor
// received.
func (s *Service) BeatsObserved() int { return s.beatsHandled }

// Decisions reports how many transmit decisions the broadcast module sent.
func (s *Service) Decisions() int { return s.decisions }

func (s *Service) onRegister(now time.Duration, intent Intent) {
	reg, ok := intent.Payload.(CargoRegistration)
	if !ok || reg.Profile == nil {
		return
	}
	s.profiles[reg.App] = reg.Profile
}

// onHeartbeat is the Heartbeat Monitor: the hook fired, so the radio is hot
// right now — run the scheduler with the train flag set and piggyback.
func (s *Service) onHeartbeat(now time.Duration, intent Intent) {
	ev, ok := intent.Payload.(HeartbeatEvent)
	if !ok || s.stopped {
		return
	}
	s.detector.Observe(ev.App, now)
	s.lastBeatAt = now
	s.beatSeen = true
	s.beatsHandled++
	s.schedule(now, true)
}

// onSubmit is the request intake of the Broadcast module: cargo apps'
// requests are stored in the corresponding virtual queue.
func (s *Service) onSubmit(now time.Duration, intent Intent) {
	req, ok := intent.Payload.(TransmissionRequest)
	if !ok {
		return
	}
	prof, registered := s.profiles[req.App]
	if !registered || s.stopped {
		// Unregistered apps have no profile to schedule under; a stopped
		// service withholds nothing. Either way the request passes straight
		// through.
		s.dispatch(map[string][]int{req.App: {req.PacketID}})
		return
	}
	s.queues.Add(workload.Packet{
		ID:        req.PacketID,
		App:       req.App,
		ArrivedAt: now,
		Size:      req.Size,
		Profile:   prof,
	})
}

// onSlot is the periodic scheduler tick (slot boundaries without a train).
func (s *Service) onSlot(now time.Duration) {
	// Stalled-train bypass: without heartbeats there is nothing to
	// piggyback on; stop withholding cargo.
	sinceBeat := now
	if s.beatSeen {
		sinceBeat = now - s.lastBeatAt
	}
	if sinceBeat > s.opts.BypassAfter {
		s.flushAll()
		return
	}
	s.schedule(now, false)
}

func (s *Service) schedule(now time.Duration, heartbeatNow bool) {
	if s.queues.Len() == 0 {
		return
	}
	ctx := &sched.SlotContext{
		Now:          now,
		SlotLength:   s.strategy.SlotLength(),
		HeartbeatNow: heartbeatNow,
		Queues:       s.queues,
	}
	selected := s.strategy.Schedule(ctx)
	if len(selected) == 0 {
		return
	}
	byApp := make(map[string][]int)
	for _, p := range selected {
		byApp[p.App] = append(byApp[p.App], p.ID)
	}
	s.dispatch(byApp)
}

func (s *Service) flushAll() {
	byApp := make(map[string][]int)
	for _, app := range s.queues.Apps() {
		for {
			p, ok := s.queues.PopHead(app)
			if !ok {
				break
			}
			byApp[p.App] = append(byApp[p.App], p.ID)
		}
	}
	if len(byApp) > 0 {
		s.dispatch(byApp)
	}
}

// dispatch is the Broadcast module: one TransmitDecision intent per app, in
// deterministic (sorted) app order.
func (s *Service) dispatch(byApp map[string][]int) {
	apps := make([]string, 0, len(byApp))
	for app := range byApp {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	for _, app := range apps {
		s.decisions++
		s.device.Bus.Broadcast(Intent{
			Action:  ActionTransmitDecision,
			Payload: TransmitDecision{App: app, PacketIDs: byApp[app]},
		})
	}
}
