package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// DefaultSketchAlpha is the default relative accuracy of a quantile
// sketch: estimates are within 1% of the exact-sort quantile value.
const DefaultSketchAlpha = 0.01

// sketchZeroThreshold is the magnitude below which a value lands in the
// sketch's zero bucket instead of a logarithmic one. It bounds the lowest
// bucket index the sketch can produce.
const sketchZeroThreshold = 1e-9

// Sketch is a deterministic, mergeable quantile sketch: integer counts on
// a fixed, data-independent logarithmic bucket grid (the DDSketch bucket
// family), mirrored for negative values plus a zero bucket for
// |v| ≤ 1e-9.
//
// Because the grid is fixed and the state is pure integer counts, the
// sketch state is a function of the inserted multiset alone: insertion
// order is invisible, and Merge (count addition) is exactly associative
// and commutative at the bit level — stronger than the shard-index-order
// merge discipline the fleet engine imposes anyway.
//
// Accuracy: buckets partition the value axis order-preservingly, so the
// bucket where the cumulative count reaches rank k provably contains the
// k-th smallest sample. The returned bucket representative is therefore
// within relative error Alpha of the exact nearest-rank quantile (within
// the zero threshold for near-zero values).
//
// Memory is bounded by the number of distinct occupied buckets, which the
// grid caps at a few thousand across float64's practical range —
// independent of how many samples are added.
type Sketch struct {
	alpha    float64
	gamma    float64
	logGamma float64
	count    uint64
	zero     uint64
	pos      map[int]uint64
	neg      map[int]uint64
}

// NewSketch returns an empty sketch with the given relative accuracy
// alpha in (0, 1).
func NewSketch(alpha float64) (*Sketch, error) {
	if !(alpha > 0 && alpha < 1) {
		return nil, fmt.Errorf("stats: sketch alpha %v outside (0, 1)", alpha)
	}
	return newSketch(alpha), nil
}

// newSketch builds the sketch; gamma and logGamma are recomputed from
// alpha with the exact same operations on every construction (including
// checkpoint restore), so equal alphas always yield bit-equal grids.
func newSketch(alpha float64) *Sketch {
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{
		alpha:    alpha,
		gamma:    gamma,
		logGamma: math.Log(gamma),
		pos:      make(map[int]uint64),
		neg:      make(map[int]uint64),
	}
}

// Alpha returns the sketch's relative accuracy.
func (s *Sketch) Alpha() float64 { return s.alpha }

// Count returns how many samples were added.
func (s *Sketch) Count() uint64 { return s.count }

// bucketIndex maps a magnitude v > sketchZeroThreshold to its bucket: i
// such that v ∈ (γ^(i−1), γ^i].
func (s *Sketch) bucketIndex(v float64) int {
	return int(math.Ceil(math.Log(v) / s.logGamma))
}

// representative returns the mid-bucket value 2γ^i/(γ+1), which is within
// relative alpha of every value in bucket i.
func (s *Sketch) representative(i int) float64 {
	return 2 * math.Pow(s.gamma, float64(i)) / (s.gamma + 1)
}

// Add inserts one sample.
func (s *Sketch) Add(v float64) {
	s.count++
	switch {
	case math.Abs(v) <= sketchZeroThreshold:
		s.zero++
	case v > 0:
		s.pos[s.bucketIndex(v)]++
	default:
		s.neg[s.bucketIndex(-v)]++
	}
}

// Merge folds other into s by adding bucket counts. Both sketches must
// share the same alpha (the same grid).
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil || other.count == 0 {
		return nil
	}
	if s.alpha != other.alpha {
		return fmt.Errorf("stats: merging sketches with different alphas %v and %v", s.alpha, other.alpha)
	}
	s.count += other.count
	s.zero += other.zero
	for _, b := range sortedBuckets(other.pos) {
		s.pos[b.index] += b.count
	}
	for _, b := range sortedBuckets(other.neg) {
		s.neg[b.index] += b.count
	}
	return nil
}

// Quantile returns the p-th percentile (0–100) under the same
// nearest-rank rule as Percentile: the estimate's bucket contains the
// sample of rank ⌈p/100·n⌉, so the returned value is within relative
// Alpha of the exact-sort answer.
func (s *Sketch) Quantile(p float64) (float64, error) {
	if s.count == 0 {
		return 0, ErrEmpty
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := uint64(math.Ceil(p / 100 * float64(s.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.count {
		rank = s.count
	}

	// Walk buckets in ascending value order: negatives from largest
	// magnitude down, then zero, then positives up.
	cum := uint64(0)
	negBuckets := sortedBuckets(s.neg)
	for i := len(negBuckets) - 1; i >= 0; i-- {
		cum += negBuckets[i].count
		if cum >= rank {
			return -s.representative(negBuckets[i].index), nil
		}
	}
	cum += s.zero
	if cum >= rank {
		return 0, nil
	}
	for _, b := range sortedBuckets(s.pos) {
		cum += b.count
		if cum >= rank {
			return s.representative(b.index), nil
		}
	}
	// Unreachable: cumulative counts sum to s.count ≥ rank.
	return 0, fmt.Errorf("stats: sketch rank %d beyond %d counted samples", rank, cum)
}

// bucket is one occupied grid cell.
type bucket struct {
	index int
	count uint64
}

// sortedBuckets returns the occupied buckets in ascending index order —
// the canonical traversal for queries, merges and serialization, so no
// map-iteration order ever reaches an output.
func sortedBuckets(m map[int]uint64) []bucket {
	out := make([]bucket, 0, len(m))
	for i, c := range m {
		out = append(out, bucket{index: i, count: c})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].index < out[b].index })
	return out
}

// sketchBucketJSON is one serialized bucket.
type sketchBucketJSON struct {
	Index int    `json:"i"`
	Count uint64 `json:"c"`
}

// sketchJSON is the checkpoint wire form: alpha plus integer counts. The
// grid constants are recomputed from alpha on load, so a restored sketch
// is bit-equal to the one serialized.
type sketchJSON struct {
	Alpha float64            `json:"alpha"`
	Count uint64             `json:"count"`
	Zero  uint64             `json:"zero"`
	Pos   []sketchBucketJSON `json:"pos,omitempty"`
	Neg   []sketchBucketJSON `json:"neg,omitempty"`
}

func bucketsJSON(m map[int]uint64) []sketchBucketJSON {
	bs := sortedBuckets(m)
	out := make([]sketchBucketJSON, len(bs))
	for i, b := range bs {
		out[i] = sketchBucketJSON{Index: b.index, Count: b.count}
	}
	return out
}

// MarshalJSON implements json.Marshaler with buckets in ascending index
// order, so equal sketch states serialize to equal bytes.
func (s *Sketch) MarshalJSON() ([]byte, error) {
	return json.Marshal(sketchJSON{
		Alpha: s.alpha,
		Count: s.count,
		Zero:  s.zero,
		Pos:   bucketsJSON(s.pos),
		Neg:   bucketsJSON(s.neg),
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Sketch) UnmarshalJSON(data []byte) error {
	var w sketchJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("stats: sketch: %w", err)
	}
	if !(w.Alpha > 0 && w.Alpha < 1) {
		return fmt.Errorf("stats: sketch alpha %v outside (0, 1)", w.Alpha)
	}
	restored := newSketch(w.Alpha)
	restored.count = w.Count
	restored.zero = w.Zero
	total := w.Zero
	for _, b := range w.Pos {
		restored.pos[b.Index] += b.Count
		total += b.Count
	}
	for _, b := range w.Neg {
		restored.neg[b.Index] += b.Count
		total += b.Count
	}
	if total != w.Count {
		return fmt.Errorf("stats: sketch bucket counts sum to %d, header says %d", total, w.Count)
	}
	*s = *restored
	return nil
}
