// Package parallel stands in for the real etrain/internal/parallel, the
// fan-out layer ctxloop patrols.
package parallel

import "sync"

func fanOutBad(jobs []int) {
	for _, j := range jobs {
		go func() { // want `goroutine has no join or cancellation path`
			process(j) // want `goroutine closure captures loop variable j`
		}()
	}
}

func fanOutIndexed(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			process(i) // want `goroutine closure captures loop variable i`
		}()
	}
	wg.Wait()
}

func fanOutGood(jobs []int) {
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			process(j)
		}(j)
	}
	wg.Wait()
}

func channelJoined(jobs []int) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, j := range jobs {
			process(j)
		}
	}()
	<-done
}

func process(int) {}
