package workload

import (
	"fmt"
	"time"

	"etrain/internal/profile"
	"etrain/internal/randx"
)

// Behavior is the type of a recorded user action in the Luna Weibo trace
// format: (User ID, Behavior type, Time, Packet Size).
type Behavior int

// Behavior types observed by the paper's deployed client.
const (
	BehaviorUpload Behavior = iota + 1
	BehaviorDownload
	BehaviorBrowse
)

// String returns the behavior name.
func (b Behavior) String() string {
	switch b {
	case BehaviorUpload:
		return "upload"
	case BehaviorDownload:
		return "download"
	case BehaviorBrowse:
		return "browse"
	default:
		return fmt.Sprintf("workload.Behavior(%d)", int(b))
	}
}

// ParseBehavior converts a trace-file token to a Behavior.
func ParseBehavior(s string) (Behavior, error) {
	switch s {
	case "upload":
		return BehaviorUpload, nil
	case "download":
		return BehaviorDownload, nil
	case "browse":
		return BehaviorBrowse, nil
	default:
		return 0, fmt.Errorf("workload: unknown behavior %q", s)
	}
}

// BehaviorRecord is one entry of a user trace.
type BehaviorRecord struct {
	// UserID identifies the user.
	UserID string
	// Behavior is the action type.
	Behavior Behavior
	// At is the action instant relative to the trace start.
	At time.Duration
	// Size is the payload in bytes (zero for pure browse events).
	Size int64
}

// ActivenessClass buckets users by upload events per "app use" (§VI-D4):
// active >20, moderate 10–20, inactive <10.
type ActivenessClass int

// Activeness classes.
const (
	ClassInactive ActivenessClass = iota + 1
	ClassModerate
	ClassActive
)

// String returns the class name.
func (c ActivenessClass) String() string {
	switch c {
	case ClassActive:
		return "active"
	case ClassModerate:
		return "moderate"
	case ClassInactive:
		return "inactive"
	default:
		return fmt.Sprintf("workload.ActivenessClass(%d)", int(c))
	}
}

// SessionLength is the paper's app-use window: traces are truncated or
// padded to 10 minutes.
const SessionLength = 10 * time.Minute

// Classify buckets a user by the number of upload events in the trace
// (one trace = one app use, per the paper's replay methodology).
func Classify(records []BehaviorRecord) ActivenessClass {
	uploads := 0
	for _, r := range records {
		if r.Behavior == BehaviorUpload {
			uploads++
		}
	}
	switch {
	case uploads > 20:
		return ClassActive
	case uploads >= 10:
		return ClassModerate
	default:
		return ClassInactive
	}
}

// uploadsFor returns a representative upload-event count for a class.
func uploadsFor(src *randx.Source, class ActivenessClass) int {
	switch class {
	case ClassActive:
		return 21 + src.Intn(15) // 21–35
	case ClassModerate:
		return 10 + src.Intn(11) // 10–20
	default:
		return 1 + src.Intn(9) // 1–9
	}
}

// SynthesizeUser generates a 10-minute user trace of the requested
// activeness class: upload events uniformly spread through the session with
// weibo-like sizes, interleaved with browse-triggered downloads. It is the
// paper's fixed app-use window; SynthesizeSession generalizes the length.
func SynthesizeUser(src *randx.Source, userID string, class ActivenessClass) []BehaviorRecord {
	return SynthesizeSession(src, userID, class, SessionLength)
}

// PacketsFromTrace converts a user trace into schedulable packets. Browse
// events carry no payload and are skipped. The packets use the given
// profile (the paper replays Weibo traces with the f2 profile and a 30 s
// deadline).
func PacketsFromTrace(records []BehaviorRecord, prof profile.Profile) []Packet {
	var packets []Packet
	for _, r := range records {
		if r.Size <= 0 {
			continue
		}
		packets = append(packets, Packet{
			ID:        len(packets),
			App:       "weibo",
			ArrivedAt: r.At,
			Size:      r.Size,
			Profile:   prof,
		})
	}
	return packets
}

// TruncateToSession clips a trace to the paper's 10-minute app-use window.
func TruncateToSession(records []BehaviorRecord) []BehaviorRecord {
	out := make([]BehaviorRecord, 0, len(records))
	for _, r := range records {
		if r.At < SessionLength {
			out = append(out, r)
		}
	}
	return out
}
