package diurnal

import (
	"math"
	"testing"
	"time"
)

// Probe: find t where the rem>=period guard in cum fires, and compare
// cum against a slow reference.
func TestZZProbeCumGuard(t *testing.T) {
	c, err := NewCurve(Day, []Knot{{0, 0.2}, {6 * time.Hour, 1.5}, {18 * time.Hour, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	ref := func(at time.Duration) float64 {
		n := math.Floor(float64(at) / float64(c.period))
		// exact integer remainder
		rem := at - time.Duration(int64(n))*c.period
		for rem < 0 {
			n--
			rem = at - time.Duration(int64(n))*c.period
		}
		for rem >= c.period {
			n++
			rem = at - time.Duration(int64(n))*c.period
		}
		i := c.segment(rem)
		return n*c.total + c.prefix[i] + c.knots[i].Level*(rem-c.knots[i].Offset).Seconds()
	}
	fired := 0
	worst := 0.0
	var worstT time.Duration
	for k := int64(100); k < 400000; k += 37 {
		base := time.Duration(k) * c.period
		for d := time.Duration(-4); d <= 4; d++ {
			at := base + d
			n := math.Floor(float64(at) / float64(c.period))
			rem := at - time.Duration(n*float64(c.period))
			if rem >= c.period {
				fired++
				got := c.cum(at)
				want := ref(at)
				if diff := math.Abs(got - want); diff > worst {
					worst, worstT = diff, at
				}
			}
		}
	}
	t.Logf("guard fired %d times; worst |cum-ref| = %g at t=%v (total per period = %g)", fired, worst, worstT, c.total)
	if fired > 0 && worst > 1 {
		t.Errorf("cum wrong when guard fires: off by %g (≈%.2f periods of area) at t=%v", worst, worst/c.total, worstT)
	}
}
