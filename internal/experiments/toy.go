package experiments

import (
	"fmt"
	"time"

	"etrain/internal/radio"
)

// Fig2 reproduces the motivating toy example: five scattered 5 KB e-mails
// inside one heartbeat cycle, with and without eTrain. Without eTrain each
// e-mail pays its own tail; with eTrain all five are deferred and
// piggybacked onto the second heartbeat. The paper reports ≈40% of the
// transmission energy saved.
func Fig2(opts Options) (*Table, error) {
	model := radio.GalaxyS43G()
	cycle := 270 * time.Second // one WeChat heartbeat cycle
	horizon := opts.horizonOr(cycle + 30*time.Second)
	const mailTx = 200 * time.Millisecond // 5 KB at a typical 3G uplink

	beat := func(tl *radio.Timeline, at time.Duration) error {
		return tl.Append(radio.Transmission{
			Start: at, TxTime: 100 * time.Millisecond, Size: 74,
			Kind: radio.TxHeartbeat, App: "wechat",
		})
	}
	mail := func(tl *radio.Timeline, at time.Duration) error {
		return tl.Append(radio.Transmission{
			Start: at, TxTime: mailTx, Size: 5 * 1024,
			Kind: radio.TxData, App: "mail",
		})
	}

	// Without eTrain: heartbeats at 0 and 270 s, mails scattered through
	// the cycle.
	var scattered radio.Timeline
	if err := beat(&scattered, 0); err != nil {
		return nil, err
	}
	scatter := []time.Duration{40 * time.Second, 85 * time.Second, 130 * time.Second,
		180 * time.Second, 225 * time.Second}
	for _, at := range scatter {
		if err := mail(&scattered, at); err != nil {
			return nil, err
		}
	}
	if err := beat(&scattered, cycle); err != nil {
		return nil, err
	}

	// With eTrain: the five mails ride the second heartbeat back-to-back.
	var packed radio.Timeline
	if err := beat(&packed, 0); err != nil {
		return nil, err
	}
	if err := beat(&packed, cycle); err != nil {
		return nil, err
	}
	at := cycle + 100*time.Millisecond
	for range scatter {
		if err := mail(&packed, at); err != nil {
			return nil, err
		}
		at += mailTx
	}

	eScattered := scattered.AccountEnergy(model, horizon)
	ePacked := packed.AccountEnergy(model, horizon)
	saving := 1 - ePacked.Total()/eScattered.Total()

	tbl := &Table{
		ID:      "fig2",
		Title:   "Toy example: 5 x 5KB e-mails scattered vs piggybacked on a heartbeat",
		Columns: []string{"schedule", "transmissions", "transmit_J", "tail_J", "total_J"},
	}
	tbl.AddRow("without eTrain", scattered.Len(), eScattered.Transmit, eScattered.Tail, eScattered.Total())
	tbl.AddRow("with eTrain", packed.Len(), ePacked.Transmit, ePacked.Tail, ePacked.Total())
	tbl.AddNote("measured saving %.0f%% of transmission energy (paper: ~40%%)", saving*100)
	return tbl, nil
}

// Fig6 reproduces the three delay-cost profile functions over normalized
// delay 0..3 x deadline.
func Fig6(opts Options) (*Table, error) {
	deadline := 30 * time.Second
	specs := defaultProfileTriple(deadline)
	tbl := &Table{
		ID:      "fig6",
		Title:   "Delay cost profile functions f1 (mail), f2 (weibo), f3 (cloud)",
		Columns: []string{"d/deadline", "f1_mail", "f2_weibo", "f3_cloud"},
	}
	for x := 0.0; x <= 3.001; x += 0.25 {
		d := time.Duration(x * float64(deadline))
		tbl.AddRow(fmt.Sprintf("%.2f", x),
			specs[0].Cost(d), specs[1].Cost(d), specs[2].Cost(d))
	}
	tbl.AddNote("f1 is zero until the deadline then linear; f2 ramps then plateaus at 2; f3 ramps then steepens to 3d/deadline-2")
	return tbl, nil
}
