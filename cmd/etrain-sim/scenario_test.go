package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"etrain/internal/scenario"
)

// testScenario mirrors the measured Θ separation the broken-Θ negative
// leans on: healthy saving ≈ 0.32, Θ=0 saving ≈ 0.14, floor 0.2.
const testScenario = `name: cli-small
seed: 21
horizon: 1h
fleet:
  devices: 6
assert:
  - metric: saving_mean
    min: 0.2
`

func writeScenario(t *testing.T, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "s.yaml")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestScenarioMainUnknownSubcommand(t *testing.T) {
	if err := scenarioMain("explode", nil, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
}

func TestCmdRunPassesAndReportsText(t *testing.T) {
	path := writeScenario(t, testScenario)
	var out bytes.Buffer
	if err := cmdRun([]string{"-workers", "2", path}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "eTrain scenario report: cli-small") {
		t.Errorf("missing report header:\n%s", text)
	}
	if !strings.Contains(text, "\nresult PASS\n") {
		t.Errorf("missing PASS verdict:\n%s", text)
	}
}

// TestCmdRunBrokenThetaExitsNonZero is the CLI face of the negative
// test: -theta 0 breaks the scheduler, the saving_mean floor trips,
// and cmdRun returns errAssertFailed so main exits non-zero — while
// still printing the full report.
func TestCmdRunBrokenThetaExitsNonZero(t *testing.T) {
	path := writeScenario(t, testScenario)
	var out bytes.Buffer
	err := cmdRun([]string{"-theta", "0", path}, &out)
	if err == nil {
		t.Fatalf("theta=0 run exited clean:\n%s", out.String())
	}
	var af errAssertFailed
	if !errors.As(err, &af) {
		t.Fatalf("error %v is not errAssertFailed", err)
	}
	if !strings.Contains(out.String(), "assert FAIL saving_mean") {
		t.Errorf("report does not show the failing assertion:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "\nresult FAIL\n") {
		t.Errorf("missing FAIL verdict:\n%s", out.String())
	}
}

func TestCmdRunJSONOutput(t *testing.T) {
	path := writeScenario(t, testScenario)
	var out bytes.Buffer
	if err := cmdRun([]string{"-json", path}, &out); err != nil {
		t.Fatalf("run -json: %v", err)
	}
	var rep struct {
		Scenario string `json:"scenario"`
		Devices  int    `json:"devices"`
		Pass     bool   `json:"pass"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out.String())
	}
	if rep.Scenario != "cli-small" || rep.Devices != 6 || !rep.Pass {
		t.Errorf("report fields wrong: %+v", rep)
	}
}

// TestCmdRunWorkerInvariance pins the CLI contract that -workers never
// changes the printed bytes.
func TestCmdRunWorkerInvariance(t *testing.T) {
	path := writeScenario(t, testScenario)
	var seq, par bytes.Buffer
	if err := cmdRun([]string{"-workers", "1", path}, &seq); err != nil {
		t.Fatal(err)
	}
	if err := cmdRun([]string{"-workers", "4", path}, &par); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Errorf("report differs between -workers 1 and 4:\n%s\n---\n%s", seq.String(), par.String())
	}
}

func TestCmdValidate(t *testing.T) {
	good := writeScenario(t, testScenario)
	var out bytes.Buffer
	if err := cmdValidate([]string{good}, &out); err != nil {
		t.Fatalf("validate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ok name=cli-small devices=6") {
		t.Errorf("validate output: %s", out.String())
	}

	bad := writeScenario(t, "name: broken\n") // no horizon, no fleet
	out.Reset()
	if err := cmdValidate([]string{good, bad}, &out); err == nil {
		t.Fatalf("invalid file validated:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "INVALID") {
		t.Errorf("validate output misses INVALID: %s", out.String())
	}

	if err := cmdValidate(nil, &out); err == nil {
		t.Error("validate with no files accepted")
	}
}

// TestCmdValidateCorpus keeps the checked-in corpus valid through the
// CLI path CI uses.
func TestCmdValidateCorpus(t *testing.T) {
	matches, err := filepath.Glob("../../scenarios/*.yaml")
	if err != nil || len(matches) == 0 {
		t.Fatalf("no corpus: %v", err)
	}
	var out bytes.Buffer
	if err := cmdValidate(matches, &out); err != nil {
		t.Fatalf("corpus invalid: %v\n%s", err, out.String())
	}
}

func TestCmdGen(t *testing.T) {
	var a, b bytes.Buffer
	if err := cmdGen([]string{"-seed", "5", "-devices", "4", "-events", "3"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := cmdGen([]string{"-seed", "5", "-devices", "4", "-events", "3"}, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("gen output not deterministic")
	}
	s, err := scenario.Parse(a.Bytes())
	if err != nil {
		t.Fatalf("gen output does not parse: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("gen output invalid: %v", err)
	}
	if s.Fleet.Devices != 4 || len(s.Timeline) != 3 {
		t.Errorf("gen ignored flags: %+v", s)
	}
	if err := cmdGen([]string{"-engine", "quantum"}, &a); err == nil {
		t.Error("unknown engine accepted")
	}
	if err := cmdGen([]string{"trailing"}, &a); err == nil {
		t.Error("positional arg accepted")
	}
}
