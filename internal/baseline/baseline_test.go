package baseline

import (
	"testing"
	"time"

	"etrain/internal/profile"
	"etrain/internal/sched"
	"etrain/internal/workload"
)

func pkt(id int, app string, arrived time.Duration) workload.Packet {
	return workload.Packet{
		ID: id, App: app, ArrivedAt: arrived, Size: 1000,
		Profile: profile.Weibo(30 * time.Second),
	}
}

func ctx(now time.Duration, q *sched.Queues) *sched.SlotContext {
	return &sched.SlotContext{Now: now, SlotLength: time.Second, Queues: q}
}

func TestImmediateDrainsEverything(t *testing.T) {
	b := NewImmediate()
	q := sched.NewQueues()
	q.Add(pkt(1, "a", 2*time.Second))
	q.Add(pkt(2, "b", time.Second))
	q.Add(pkt(3, "a", 3*time.Second))
	got := b.Schedule(ctx(5*time.Second, q))
	if len(got) != 3 {
		t.Fatalf("baseline drained %d, want 3", len(got))
	}
	// Arrival order across apps.
	if got[0].ID != 2 || got[1].ID != 1 || got[2].ID != 3 {
		t.Fatalf("drain order = %d,%d,%d, want 2,1,3", got[0].ID, got[1].ID, got[2].ID)
	}
	if q.Len() != 0 {
		t.Fatal("queue not empty")
	}
	if b.Name() != "baseline" || b.SlotLength() != time.Second {
		t.Fatal("metadata wrong")
	}
}

func TestImmediateEmpty(t *testing.T) {
	b := NewImmediate()
	if got := b.Schedule(ctx(0, sched.NewQueues())); got != nil {
		t.Fatalf("drained %v from empty queues", got)
	}
}

func TestPerESRejectsNegativeOmega(t *testing.T) {
	if _, err := NewPerES(PerESOptions{Omega: -1}); err == nil {
		t.Fatal("negative Omega accepted")
	}
}

func TestPerESDefaults(t *testing.T) {
	p, err := NewPerES(PerESOptions{Omega: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.SlotLength() != time.Second {
		t.Fatalf("slot = %v, want 1s", p.SlotLength())
	}
	if p.Name() != "peres" {
		t.Fatalf("name = %q", p.Name())
	}
	if p.V() <= 0 {
		t.Fatal("V not initialized")
	}
}

func TestPerESTransmitsDeadlineViolators(t *testing.T) {
	p, err := NewPerES(DefaultPerESOptions(5))
	if err != nil {
		t.Fatal(err)
	}
	q := sched.NewQueues()
	q.Add(pkt(1, "a", 0)) // deadline 30 s
	c := ctx(31*time.Second, q)
	c.MeanBandwidth = 100e3
	c.EstimateBandwidth = func() float64 { return 1 } // terrible channel
	got := p.Schedule(c)
	if len(got) != 1 {
		t.Fatalf("deadline violator not forced out: %d released", len(got))
	}
}

func TestPerESHoldsFreshPacketsOnBadChannel(t *testing.T) {
	p, err := NewPerES(DefaultPerESOptions(5))
	if err != nil {
		t.Fatal(err)
	}
	q := sched.NewQueues()
	q.Add(pkt(1, "a", 9*time.Second))
	c := ctx(10*time.Second, q)
	c.MeanBandwidth = 100e3
	c.EstimateBandwidth = func() float64 { return 1e3 } // 1% of average
	got := p.Schedule(c)
	if len(got) != 0 {
		t.Fatalf("fresh packet released on terrible channel: %d", len(got))
	}
}

func TestPerESDrainsOnGoodChannelWithBacklog(t *testing.T) {
	p, err := NewPerES(DefaultPerESOptions(5))
	if err != nil {
		t.Fatal(err)
	}
	q := sched.NewQueues()
	for i := 0; i < 10; i++ {
		q.Add(pkt(i, "a", 0))
	}
	c := ctx(20*time.Second, q) // each packet costs 20/30
	c.MeanBandwidth = 100e3
	c.EstimateBandwidth = func() float64 { return 300e3 } // 3× average
	got := p.Schedule(c)
	if len(got) != 10 {
		t.Fatalf("good channel with backlog released %d, want 10", len(got))
	}
}

func TestPerESDynamicVConverges(t *testing.T) {
	p, err := NewPerES(DefaultPerESOptions(0.01)) // tiny Ω: V should shrink
	if err != nil {
		t.Fatal(err)
	}
	q := sched.NewQueues()
	q.Add(pkt(1, "a", 0))
	v0 := p.V()
	c := ctx(20*time.Second, q)
	c.MeanBandwidth = 100e3
	c.EstimateBandwidth = func() float64 { return 100 }
	for i := 0; i < 200; i++ {
		p.Schedule(c)
		if q.Len() == 0 {
			q.Add(pkt(i+100, "a", 0))
		}
	}
	if p.V() >= v0 {
		t.Fatalf("V did not shrink toward performance: %v -> %v", v0, p.V())
	}

	// Large Ω with an empty cost signal: V should grow (save energy).
	p2, err := NewPerES(DefaultPerESOptions(100))
	if err != nil {
		t.Fatal(err)
	}
	v0 = p2.V()
	empty := sched.NewQueues()
	for i := 0; i < 200; i++ {
		p2.Schedule(ctx(time.Duration(i)*time.Second, empty))
	}
	if p2.V() <= v0 {
		t.Fatalf("V did not grow under slack cost bound: %v -> %v", v0, p2.V())
	}
}

func TestETimeRejectsNegativeV(t *testing.T) {
	if _, err := NewETime(ETimeOptions{V: -1}); err == nil {
		t.Fatal("negative V accepted")
	}
}

func TestETimeDefaults(t *testing.T) {
	e, err := NewETime(ETimeOptions{V: 4})
	if err != nil {
		t.Fatal(err)
	}
	if e.SlotLength() != 60*time.Second {
		t.Fatalf("slot = %v, want 60s (paper-suggested)", e.SlotLength())
	}
	if e.Name() != "etime" {
		t.Fatalf("name = %q", e.Name())
	}
}

func TestETimeAllOrNothing(t *testing.T) {
	e, err := NewETime(ETimeOptions{V: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := sched.NewQueues()
	q.Add(pkt(1, "a", 0))
	q.Add(pkt(2, "b", 0))

	hold := &sched.SlotContext{
		Now: 60 * time.Second, SlotLength: 60 * time.Second, Queues: q,
		MeanBandwidth: 100e3, EstimateBandwidth: func() float64 { return 100 },
	}
	if got := e.Schedule(hold); len(got) != 0 {
		t.Fatalf("eTime transmitted %d on terrible channel with small backlog", len(got))
	}

	drain := &sched.SlotContext{
		Now: 120 * time.Second, SlotLength: 60 * time.Second, Queues: q,
		MeanBandwidth: 100e3, EstimateBandwidth: func() float64 { return 300e3 },
	}
	got := e.Schedule(drain)
	if len(got) != 2 {
		t.Fatalf("eTime drained %d, want all 2", len(got))
	}
}

func TestETimeBacklogPressureForcesDrain(t *testing.T) {
	// Even on a bad channel, waiting long enough must force a drain
	// (Lyapunov stability), since pressure grows with waiting time.
	e, err := NewETime(ETimeOptions{V: 10})
	if err != nil {
		t.Fatal(err)
	}
	q := sched.NewQueues()
	q.Add(pkt(1, "a", 0))
	badChannel := func() float64 { return 20e3 } // 20% of average
	drained := false
	for slot := 1; slot <= 60; slot++ {
		c := &sched.SlotContext{
			Now:        time.Duration(slot) * 60 * time.Second,
			SlotLength: 60 * time.Second, Queues: q,
			MeanBandwidth: 100e3, EstimateBandwidth: badChannel,
		}
		if got := e.Schedule(c); len(got) > 0 {
			drained = true
			break
		}
	}
	if !drained {
		t.Fatal("eTime never drained despite growing backlog pressure")
	}
}

func TestETimeEmptyQueues(t *testing.T) {
	e, err := NewETime(ETimeOptions{V: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := &sched.SlotContext{Now: 0, SlotLength: 60 * time.Second, Queues: sched.NewQueues()}
	if got := e.Schedule(c); got != nil {
		t.Fatalf("released %v from empty queues", got)
	}
}

func TestStrategiesWithoutEstimatorFallBack(t *testing.T) {
	// Without a channel estimator both strategies assume neutral quality
	// and still function.
	p, err := NewPerES(DefaultPerESOptions(0.1))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewETime(ETimeOptions{V: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	q1 := sched.NewQueues()
	q2 := sched.NewQueues()
	for i := 0; i < 5; i++ {
		q1.Add(pkt(i, "a", 0))
		q2.Add(pkt(i, "a", 0))
	}
	if got := p.Schedule(ctx(25*time.Second, q1)); len(got) == 0 {
		t.Fatal("PerES inert without estimator")
	}
	c := &sched.SlotContext{Now: 60 * time.Second, SlotLength: 60 * time.Second, Queues: q2}
	if got := e.Schedule(c); len(got) == 0 {
		t.Fatal("eTime inert without estimator")
	}
}
