package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"

	"etrain/internal/wire"
)

// journaled is one emitted session frame retained for resume replay.
type journaled struct {
	seq uint64
	msg wire.Message
}

// session is one device's protocol state: a frame reader feeding a
// bounded event queue, a Replayer turning events into outbound frames,
// and the sequence bookkeeping that lets the session survive its
// connection. A session outlives a broken conn: it parks in the server's
// detached registry and a later Resume handshake adopts it onto a fresh
// connection (DESIGN.md §11).
type session struct {
	srv   *Server
	conn  net.Conn
	w     *wire.Writer
	rep   *Replayer
	hello wire.Hello
	token uint64

	// inSeq counts client session frames consumed by the engine; it is
	// what ResumeOK reports so the client resends only unprocessed events.
	inSeq uint64
	// outSeq numbers emitted session frames; skipTo suppresses emissions
	// the client already holds (it resumed ahead after degraded mode).
	outSeq uint64
	skipTo uint64
	// journal retains exactly the frames with seq in (skipTo, outSeq] for
	// replay; Resume{Got} prunes the prefix the client confirms.
	journal []journaled
	// broken latches the first transport write error on the current conn;
	// emission keeps journaling past it so nothing is lost before parking.
	broken error
}

// inbound is one decoded frame (or the reader's terminal error) queued
// for the session's processor.
type inbound struct {
	msg wire.Message
	err error
}

// runSession speaks the session protocol on conn: a Hello or Resume
// handshake, then events in, decisions out, then the finish exchange.
// The reader goroutine is the only conn reader and the processor the
// only writer; the bounded queue between them is the session's
// backpressure: when the engine falls behind, the reader stops pulling
// frames and the transport blocks the client.
//
// A transport failure mid-session does not discard the engine: the
// session parks for ResumeGrace and runSession returns ErrSessionParked.
func (s *Server) runSession(conn net.Conn) error {
	events := make(chan inbound, s.cfg.QueueDepth)
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		r := wire.NewReader(conn)
		for {
			s.readDeadline(conn)
			m, err := r.Next()
			if err != nil {
				select {
				case events <- inbound{err: err}:
				case <-stop:
				}
				return
			}
			s.countFrameIn()
			select {
			case events <- inbound{msg: m}:
			case <-stop:
				return
			}
		}
	}()
	// Join the reader on every exit path: closing stop releases it from a
	// send onto a full queue, closing conn releases it from a blocked
	// Read, and readerDone confirms it is gone.
	defer func() {
		close(stop)
		conn.Close()
		<-readerDone
	}()

	// Handshake: the first frame opens a fresh session (Hello) or adopts
	// a parked one (Resume).
	first := <-events
	if first.err != nil {
		return fmt.Errorf("server: reading hello: %w", first.err)
	}
	var sess *session
	switch h := first.msg.(type) {
	case wire.Hello:
		if a := s.cfg.Admission; a != nil {
			if ok, ra := a.AdmitHello(h); !ok {
				s.sendBusy(conn, wire.Busy{RetryAfter: ra, Reason: wire.ReasonConns})
				return errHelloRefused
			}
		}
		sess = &session{srv: s, conn: conn, w: wire.NewWriter(conn)}
		rep, err := NewReplayer(h, s.cfg.Power, sess.emit)
		if err != nil {
			return err
		}
		sess.rep = rep
		sess.hello = h
		sess.token = wire.SessionToken(h)
		if err := sess.write(wire.Ack{Seq: 0}); err != nil {
			return err
		}
	case wire.Resume:
		var err error
		sess, err = s.adopt(conn, h)
		if err != nil {
			return err
		}
		if sess.broken != nil {
			// The new conn died during the resume replay; park again.
			return s.reparkOr(sess, fmt.Errorf("server: resume replay: %w", sess.broken))
		}
		if sess.rep.Done() {
			return sess.complete()
		}
	default:
		return fmt.Errorf("server: first frame is %s, want hello", first.msg.MsgType())
	}

	// Event loop: feed the engine until the client's end-of-events Ack.
	for ev := range events {
		if ev.err != nil {
			if transportErr(ev.err) {
				return s.reparkOr(sess, readLossErr(ev.err))
			}
			return fmt.Errorf("server: reading frame: %w", ev.err)
		}
		if a := s.cfg.Admission; a != nil {
			if c, cargo := ev.msg.(wire.CargoArrival); cargo {
				if shed, ra := a.ShedCargo(sess.hello, c, len(events)); shed {
					// Shed defers, it never loses: the event is not
					// consumed (no inSeq advance, no Apply), so the
					// resume handshake's ResumeOK.Got makes the client
					// redeliver it. Busy goes out as a control frame —
					// never numbered, never journaled — then the session
					// parks awaiting that resume.
					s.count(func(ct *Counters) { ct.Shed++ })
					sess.busy(wire.Busy{RetryAfter: ra, Reason: wire.ReasonQueue})
					return s.reparkOr(sess, fmt.Errorf("server: cargo %d shed under queue pressure", c.ID))
				}
			}
		}
		sess.inSeq++
		if err := sess.rep.Apply(ev.msg); err != nil {
			return err
		}
		if sess.broken != nil {
			return s.reparkOr(sess, fmt.Errorf("server: writing frame: %w", sess.broken))
		}
		if sess.rep.Done() {
			return sess.complete()
		}
	}
	return fmt.Errorf("server: event queue closed") // unreachable
}

// adopt moves a parked session onto conn: it validates the Resume
// against the detached registry, prunes the journal to the client's
// confirmed prefix, answers ResumeOK with the server's consumed-event
// count, and replays the retained frames.
func (s *Server) adopt(conn net.Conn, r wire.Resume) (*session, error) {
	sess := s.takeDetached(sessionKey{device: r.DeviceID, token: r.Token})
	if sess == nil {
		s.count(func(c *Counters) { c.ResumeMisses++ })
		return nil, fmt.Errorf("server: resume: no detached session for device %d", r.DeviceID)
	}
	if r.Got < sess.skipTo {
		// The client confirms less than a previous resume did; the frames
		// in between were pruned and cannot be regenerated here. The taken
		// session resolves as discarded, leaving the detached gauge in the
		// same transition.
		s.count(func(c *Counters) {
			c.Discarded++
			c.Detached--
		})
		return nil, fmt.Errorf("server: resume gap: client got %d, journal starts after %d", r.Got, sess.skipTo)
	}
	s.count(func(c *Counters) {
		c.Resumed++
		c.Detached--
	})
	sess.conn = conn
	sess.w = wire.NewWriter(conn)
	sess.broken = nil
	// Drop the confirmed prefix; suppress regeneration of anything the
	// client already holds (it may be ahead after degraded-mode work).
	for len(sess.journal) > 0 && sess.journal[0].seq <= r.Got {
		sess.journal = sess.journal[1:]
	}
	sess.skipTo = r.Got
	sess.send(wire.ResumeOK{Got: sess.inSeq})
	for _, j := range sess.journal {
		sess.send(j.msg)
	}
	return sess, nil
}

// reparkOr parks sess after a transport failure, or returns fallback
// when parking is disabled or refused.
func (s *Server) reparkOr(sess *session, fallback error) error {
	if s.park(sess) {
		return ErrSessionParked
	}
	return fallback
}

// readLossErr renders a transport-level read failure in the session's
// historical error vocabulary.
func readLossErr(err error) error {
	if errors.Is(err, io.EOF) {
		return errors.New("server: connection closed before finish ack")
	}
	return fmt.Errorf("server: reading frame: %w", err)
}

// transportErr reports whether err is a connection-level failure — the
// kind a reconnecting client can heal — rather than a protocol or
// engine error.
func transportErr(err error) bool {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, wire.ErrTruncated) || errors.Is(err, net.ErrClosed) ||
		errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var nerr net.Error
	return errors.As(err, &nerr)
}

// complete finishes a session cleanly, dropping any stale parked twin —
// a session that parked and was then healed by a full Hello replay
// rather than a resume — so it does not linger to expiry.
func (sess *session) complete() error {
	sess.srv.dropDetached(sessionKey{device: sess.hello.DeviceID, token: sess.token})
	return nil
}

// emit is the Replayer's sink: it numbers the frame, suppresses what the
// client already holds, journals the rest for resume, and best-effort
// writes. It never fails — a write error latches sess.broken so the
// engine finishes the event cleanly and the session parks afterwards
// with every frame journaled.
//
//etrain:hotpath
func (sess *session) emit(m wire.Message) error {
	sess.outSeq++
	if sess.outSeq <= sess.skipTo {
		return nil
	}
	sess.journal = append(sess.journal, journaled{seq: sess.outSeq, msg: m})
	sess.send(m)
	return nil
}

// send writes m on the current conn unless it is already broken,
// latching the first error.
//
//etrain:hotpath
func (sess *session) send(m wire.Message) {
	if sess.broken != nil {
		return
	}
	if err := sess.write(m); err != nil {
		sess.broken = err
	}
}

// busy writes one Busy control frame on the session's conn — direct, not
// through emit, so it is never sequence-numbered or journaled. A write
// failure latches broken exactly like any session write.
func (sess *session) busy(b wire.Busy) {
	if sess.broken != nil {
		return
	}
	if err := sess.write(b); err != nil {
		sess.broken = err
		return
	}
	sess.srv.count(func(c *Counters) { c.BusySent++ })
}

// write sends one frame under the configured write deadline.
func (sess *session) write(m wire.Message) error {
	sess.srv.writeDeadline(sess.conn)
	if err := sess.w.Write(m); err != nil {
		return fmt.Errorf("server: writing %s: %w", m.MsgType(), err)
	}
	_, decision := m.(wire.Decision)
	sess.srv.countFrameOut(decision)
	return nil
}

// readDeadline arms the idle timeout, when a clock is injected.
func (s *Server) readDeadline(conn net.Conn) {
	if s.cfg.Clock != nil && s.cfg.IdleTimeout > 0 {
		conn.SetReadDeadline(s.cfg.Clock().Add(s.cfg.IdleTimeout))
	}
}

// writeDeadline arms the write timeout, when a clock is injected.
func (s *Server) writeDeadline(conn net.Conn) {
	if s.cfg.Clock != nil && s.cfg.WriteTimeout > 0 {
		conn.SetWriteDeadline(s.cfg.Clock().Add(s.cfg.WriteTimeout))
	}
}
