package etrain_test

// One benchmark per table and figure of the paper's evaluation. Each bench
// regenerates the experiment through internal/experiments (the same runners
// cmd/etrain-experiments prints) and reports its headline quantity as a
// custom metric, so `go test -bench=.` doubles as the reproduction harness.

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"etrain"
	"etrain/internal/experiments"
)

const benchSeed = 5

// runExperiment executes one registered experiment per iteration and
// returns the final table for metric extraction.
func runExperiment(b *testing.B, id string) *experiments.Table {
	b.Helper()
	entry, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var tbl *experiments.Table
	for i := 0; i < b.N; i++ {
		tbl, err = entry.Run(experiments.Options{Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
	}
	return tbl
}

func cell(b *testing.B, tbl *experiments.Table, row, col int) float64 {
	b.Helper()
	if row < 0 {
		row += len(tbl.Rows)
	}
	v, err := strconv.ParseFloat(strings.TrimSuffix(tbl.Rows[row][col], "%"), 64)
	if err != nil {
		b.Fatalf("cell (%d,%d) = %q: %v", row, col, tbl.Rows[row][col], err)
	}
	return v
}

// BenchmarkFig1aStandbyEnergy regenerates the 4-hour standby measurement:
// total energy and heartbeat share for 0-3 IM apps.
func BenchmarkFig1aStandbyEnergy(b *testing.B) {
	tbl := runExperiment(b, "fig1a")
	b.ReportMetric(cell(b, tbl, -1, 4), "J_total_3apps")
}

// BenchmarkFig1bHeartbeatTimeline regenerates the merged heartbeat stream
// of the three IM apps over one hour.
func BenchmarkFig1bHeartbeatTimeline(b *testing.B) {
	tbl := runExperiment(b, "fig1b")
	b.ReportMetric(float64(len(tbl.Rows)), "beats_per_hour")
}

// BenchmarkTable1CycleDetection regenerates the heartbeat-cycle table via
// the online detector.
func BenchmarkTable1CycleDetection(b *testing.B) {
	tbl := runExperiment(b, "table1")
	b.ReportMetric(float64(len(tbl.Rows)), "apps_detected")
}

// BenchmarkFig2ToyPiggyback regenerates the motivating 5-mail toy example.
func BenchmarkFig2ToyPiggyback(b *testing.B) {
	tbl := runExperiment(b, "fig2")
	saving := 1 - cell(b, tbl, 1, 4)/cell(b, tbl, 0, 4)
	b.ReportMetric(saving*100, "saving_%")
}

// BenchmarkFig3AdaptiveCycles regenerates NetEase's doubling schedule and
// RenRen's constant cycle.
func BenchmarkFig3AdaptiveCycles(b *testing.B) {
	tbl := runExperiment(b, "fig3")
	b.ReportMetric(float64(len(tbl.Rows)), "beats")
}

// BenchmarkFig4PowerStates regenerates the power-state walk of a single
// transmission.
func BenchmarkFig4PowerStates(b *testing.B) {
	tbl := runExperiment(b, "fig4")
	b.ReportMetric(float64(len(tbl.Rows)), "state_transitions")
}

// BenchmarkFig6Profiles regenerates the three delay-cost profiles.
func BenchmarkFig6Profiles(b *testing.B) {
	tbl := runExperiment(b, "fig6")
	b.ReportMetric(float64(len(tbl.Rows)), "sample_points")
}

// BenchmarkFig7aThetaSweep regenerates the Θ sweep (k=20, λ=0.08).
func BenchmarkFig7aThetaSweep(b *testing.B) {
	tbl := runExperiment(b, "fig7a")
	reduction := 1 - cell(b, tbl, -1, 1)/cell(b, tbl, 0, 1)
	b.ReportMetric(reduction*100, "energy_reduction_%")
}

// BenchmarkFig7bKPanel regenerates the E-D panel over k in {2,4,8,16}.
func BenchmarkFig7bKPanel(b *testing.B) {
	tbl := runExperiment(b, "fig7b")
	b.ReportMetric(float64(len(tbl.Rows)), "ed_points")
}

// BenchmarkFig8aEDPanel regenerates the comparative E-D panel at λ=0.08.
func BenchmarkFig8aEDPanel(b *testing.B) {
	tbl := runExperiment(b, "fig8a")
	b.ReportMetric(cell(b, tbl, -1, 2), "J_baseline")
}

// BenchmarkFig8bLambdaSweep regenerates the λ sweep at matched delay.
func BenchmarkFig8bLambdaSweep(b *testing.B) {
	tbl := runExperiment(b, "fig8b")
	// eTrain's saving vs baseline at λ=0.08 (middle row).
	b.ReportMetric(cell(b, tbl, 2, 5), "J_saved_lambda0.08")
}

// BenchmarkFig10aTrainCount regenerates the train-count controlled
// experiment on the Android stack.
func BenchmarkFig10aTrainCount(b *testing.B) {
	tbl := runExperiment(b, "fig10a")
	b.ReportMetric(cell(b, tbl, -1, 3), "J_total_3trains")
}

// BenchmarkFig10bThetaControlled regenerates the controlled Θ sweep.
func BenchmarkFig10bThetaControlled(b *testing.B) {
	tbl := runExperiment(b, "fig10b")
	reduction := 1 - cell(b, tbl, -1, 1)/cell(b, tbl, 0, 1)
	b.ReportMetric(reduction*100, "energy_reduction_%")
}

// BenchmarkFig10cDeadlineSweep regenerates the shared-deadline sweep.
func BenchmarkFig10cDeadlineSweep(b *testing.B) {
	tbl := runExperiment(b, "fig10c")
	reduction := 1 - cell(b, tbl, -1, 1)/cell(b, tbl, 0, 1)
	b.ReportMetric(reduction*100, "energy_reduction_%")
}

// BenchmarkFig11UserActiveness regenerates the user-activeness replay.
func BenchmarkFig11UserActiveness(b *testing.B) {
	tbl := runExperiment(b, "fig11")
	b.ReportMetric(cell(b, tbl, 0, 4), "J_saved_active")
}

// Ablation benches: the design-choice studies DESIGN.md calls out.

// BenchmarkAblOfflineGap regenerates the online-vs-offline optimality gap.
func BenchmarkAblOfflineGap(b *testing.B) {
	tbl := runExperiment(b, "abl-offline-gap")
	b.ReportMetric(float64(len(tbl.Rows)), "instances")
}

// BenchmarkAblFastDormancy regenerates the fast-dormancy tradeoff study.
func BenchmarkAblFastDormancy(b *testing.B) {
	tbl := runExperiment(b, "abl-fast-dormancy")
	b.ReportMetric(cell(b, tbl, 1, 1), "J_fastdormancy")
}

// BenchmarkAblGreedyPolicy regenerates the selection-rule ablation.
func BenchmarkAblGreedyPolicy(b *testing.B) {
	tbl := runExperiment(b, "abl-greedy-policy")
	b.ReportMetric(cell(b, tbl, 0, 1), "J_eq9")
}

// BenchmarkAblChannelOracle regenerates the channel-obliviousness study.
func BenchmarkAblChannelOracle(b *testing.B) {
	tbl := runExperiment(b, "abl-channel-oracle")
	b.ReportMetric(cell(b, tbl, 0, 1), "J_oblivious")
}

// BenchmarkAblPredictiveMonitor regenerates the hook-vs-prediction study.
func BenchmarkAblPredictiveMonitor(b *testing.B) {
	tbl := runExperiment(b, "abl-predictive-monitor")
	b.ReportMetric(cell(b, tbl, -1, 2), "J_predicted_15s_jitter")
}

// BenchmarkAblRadioTech regenerates the radio-technology study.
func BenchmarkAblRadioTech(b *testing.B) {
	tbl := runExperiment(b, "abl-radio-tech")
	b.ReportMetric(cell(b, tbl, 1, 4), "J_saved_lte")
}

// BenchmarkSimulateETrain measures one full 2-hour eTrain simulation — the
// engine's end-to-end throughput.
func BenchmarkSimulateETrain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := etrain.Simulate(etrain.SimConfig{
			Seed:     benchSeed,
			Strategy: etrain.StrategyConfig{Kind: etrain.StrategyETrain, Theta: 2},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Energy.Total(), "J")
	}
}

// BenchmarkSimulateBaseline measures the baseline run for comparison.
func BenchmarkSimulateBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := etrain.Simulate(etrain.SimConfig{
			Seed:     benchSeed,
			Strategy: etrain.StrategyConfig{Kind: etrain.StrategyBaseline},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Energy.Total(), "J")
	}
}

// BenchmarkLiveSystemHour measures one virtual hour of the full Android
// stack (trains + service + cargo).
func BenchmarkLiveSystemHour(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := etrain.NewSystem(etrain.SystemConfig{Seed: benchSeed, Theta: 2})
		if err != nil {
			b.Fatal(err)
		}
		for _, tr := range etrain.DefaultTrains() {
			if err := sys.AddTrain(tr); err != nil {
				b.Fatal(err)
			}
		}
		weibo, err := sys.RegisterCargo("weibo", etrain.WeiboProfile(90*time.Second))
		if err != nil {
			b.Fatal(err)
		}
		for at := time.Duration(0); at < time.Hour; at += 30 * time.Second {
			weibo.ScheduleSubmit(at, 2048)
		}
		if err := sys.Run(time.Hour); err != nil {
			b.Fatal(err)
		}
	}
}
