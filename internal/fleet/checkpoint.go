package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// checkpointVersion names the snapshot schema; it is also folded into the
// config hash so a schema bump invalidates old checkpoints.
const checkpointVersion = 1

// ErrCheckpointMismatch reports a checkpoint written by a different
// configuration (or schema version) than the one trying to resume from it.
// Resuming such a snapshot would silently change results, so it is refused.
var ErrCheckpointMismatch = errors.New("fleet: checkpoint does not match this configuration")

// checkpointFile is the on-disk snapshot: the run identity plus every
// completed shard's aggregate. Aggregates round-trip bit-exactly through
// JSON (shortest-representation float encoding), so a resumed run's report
// is byte-identical to an uninterrupted one's.
type checkpointFile struct {
	Version    int               `json:"version"`
	ConfigHash string            `json:"config_hash"`
	Shards     []*ShardAggregate `json:"shards"`
}

// writeCheckpoint atomically snapshots the completed shards: marshal, write
// to a temp file in the target directory, fsync, rename. A crash mid-write
// leaves the previous snapshot intact.
func writeCheckpoint(path, hash string, aggs []*ShardAggregate, completed []bool) error {
	ck := checkpointFile{Version: checkpointVersion, ConfigHash: hash}
	for s, done := range completed {
		if done && aggs[s] != nil {
			ck.Shards = append(ck.Shards, aggs[s])
		}
	}
	data, err := json.MarshalIndent(&ck, "", "  ")
	if err != nil {
		return fmt.Errorf("fleet: marshal checkpoint: %w", err)
	}
	data = append(data, '\n')

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("fleet: checkpoint temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("fleet: write checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("fleet: sync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("fleet: close checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("fleet: publish checkpoint: %w", err)
	}
	return nil
}

// loadCheckpoint reads a snapshot, verifies it was written by this exact
// configuration, and prefills the completed shards. It returns how many
// shards were restored.
func loadCheckpoint(path, hash string, aggs []*ShardAggregate, completed []bool, cfg *Config) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("fleet: read checkpoint: %w", err)
	}
	var ck checkpointFile
	if err := json.Unmarshal(data, &ck); err != nil {
		return 0, fmt.Errorf("fleet: parse checkpoint %s: %w", path, err)
	}
	if ck.Version != checkpointVersion {
		return 0, fmt.Errorf("%w: snapshot version %d, want %d", ErrCheckpointMismatch, ck.Version, checkpointVersion)
	}
	if ck.ConfigHash != hash {
		return 0, fmt.Errorf("%w: snapshot hash %s, config hash %s", ErrCheckpointMismatch, ck.ConfigHash, hash)
	}
	n := 0
	for _, sh := range ck.Shards {
		if sh == nil {
			return 0, fmt.Errorf("fleet: checkpoint %s holds a null shard entry", path)
		}
		if err := sh.validateShape(cfg); err != nil {
			return 0, err
		}
		if completed[sh.Shard] {
			return 0, fmt.Errorf("fleet: checkpoint %s repeats shard %d", path, sh.Shard)
		}
		aggs[sh.Shard] = sh
		completed[sh.Shard] = true
		n++
	}
	return n, nil
}
