package android

import (
	"time"

	"etrain/internal/profile"
	"etrain/internal/radio"
	"etrain/internal/workload"
)

// TransmissionRequest is the metadata a cargo app submits to eTrain
// (paper §V-4): packet size, arrival, and the app's delay-cost profile from
// its registration.
type TransmissionRequest struct {
	// App names the submitting cargo app.
	App string
	// PacketID is the app-local packet identifier.
	PacketID int
	// Size is the payload in bytes.
	Size int64
}

// TransmitDecision is eTrain's broadcast answer: the packets the named app
// must transmit now.
type TransmitDecision struct {
	// App names the cargo app being instructed.
	App string
	// PacketIDs lists the packets to transmit, in order.
	PacketIDs []int
}

// DeliveredPacket records a cargo transmission as observed by the app.
type DeliveredPacket struct {
	// PacketID identifies the packet.
	PacketID int
	// ArrivedAt is when the app submitted it.
	ArrivedAt time.Duration
	// StartedAt is when its transmission began.
	StartedAt time.Duration
	// Violated reports a missed deadline.
	Violated bool
}

// CargoApp is the client-side library a cargo app links against: it submits
// requests through the broadcast module and transmits when instructed.
// Developers "only need to add some predefined subclasses of
// BroadcastReceiver provided by eTrain" — this type is that subclass.
type CargoApp struct {
	device    *Device
	name      string
	profile   profile.Profile
	pending   map[int]workload.Packet
	delivered []DeliveredPacket
	nextID    int
}

// NewCargoApp registers a cargo app with eTrain's service on the device.
// The profile becomes part of the app's registration (the "cargo app's
// profile, obtained when the cargo app registers for eTrain's services").
func NewCargoApp(device *Device, name string, prof profile.Profile) *CargoApp {
	app := &CargoApp{
		device:  device,
		name:    name,
		profile: prof,
		pending: make(map[int]workload.Packet),
	}
	device.Bus.Register(ActionTransmitDecision, app.onDecision)
	device.Bus.Broadcast(Intent{
		Action:  ActionRegisterCargo,
		Payload: CargoRegistration{App: name, Profile: prof},
	})
	return app
}

// Name returns the app's name.
func (c *CargoApp) Name() string { return c.name }

// Profile returns the app's registered delay-cost profile.
func (c *CargoApp) Profile() profile.Profile { return c.profile }

// Submit hands eTrain a new data packet of the given size at the current
// virtual time and returns its packet ID.
func (c *CargoApp) Submit(size int64) int {
	id := c.nextID
	c.nextID++
	c.pending[id] = workload.Packet{
		ID:        id,
		App:       c.name,
		ArrivedAt: c.device.Loop.Now(),
		Size:      size,
		Profile:   c.profile,
	}
	c.device.Bus.Broadcast(Intent{
		Action:  ActionSubmitRequest,
		Payload: TransmissionRequest{App: c.name, PacketID: id, Size: size},
	})
	return id
}

// ScheduleSubmit arranges for Submit(size) to run at the given virtual
// instant (used to replay traces).
func (c *CargoApp) ScheduleSubmit(at time.Duration, size int64) {
	c.device.Loop.Schedule(at, func(time.Duration) { c.Submit(size) })
}

func (c *CargoApp) onDecision(now time.Duration, intent Intent) {
	decision, ok := intent.Payload.(TransmitDecision)
	if !ok || decision.App != c.name {
		return
	}
	for _, id := range decision.PacketIDs {
		pkt, ok := c.pending[id]
		if !ok {
			continue
		}
		delete(c.pending, id)
		start, err := c.device.Transmit(pkt.Size, radio.TxData, c.name)
		if err != nil {
			continue
		}
		c.delivered = append(c.delivered, DeliveredPacket{
			PacketID:  id,
			ArrivedAt: pkt.ArrivedAt,
			StartedAt: start,
			Violated:  pkt.DeadlineViolated(start),
		})
	}
}

// Delivered returns a copy of the app's delivery log.
func (c *CargoApp) Delivered() []DeliveredPacket {
	out := make([]DeliveredPacket, len(c.delivered))
	copy(out, c.delivered)
	return out
}

// PendingCount reports packets submitted but not yet transmitted.
func (c *CargoApp) PendingCount() int { return len(c.pending) }
