package heartbeat

import (
	"testing"
	"time"

	"etrain/internal/randx"
)

func TestScheduleJitteredZeroJitterIdentity(t *testing.T) {
	app := WeChat()
	plain := app.Schedule(time.Hour)
	jittered := app.ScheduleJittered(randx.New(1), time.Hour, 0)
	if len(plain) != len(jittered) {
		t.Fatalf("lengths differ: %d vs %d", len(plain), len(jittered))
	}
	for i := range plain {
		if plain[i].At != jittered[i].At {
			t.Fatalf("zero jitter changed beat %d", i)
		}
	}
}

func TestScheduleJitteredBounded(t *testing.T) {
	app := QQ()
	jitter := 5 * time.Second
	plain := app.Schedule(2 * time.Hour)
	jittered := app.ScheduleJittered(randx.New(2), 2*time.Hour, jitter)
	if len(plain) != len(jittered) {
		t.Fatalf("jitter changed beat count: %d vs %d", len(plain), len(jittered))
	}
	for i := range plain {
		diff := jittered[i].At - plain[i].At
		if diff < -jitter || diff > jitter {
			t.Fatalf("beat %d jittered by %v, want within ±%v", i, diff, jitter)
		}
	}
}

func TestScheduleJitteredMonotone(t *testing.T) {
	app := NetEase()
	jittered := app.ScheduleJittered(randx.New(3), 2*time.Hour, 20*time.Second)
	for i := 1; i < len(jittered); i++ {
		if jittered[i].At <= jittered[i-1].At {
			t.Fatalf("jittered schedule not strictly increasing at %d", i)
		}
	}
}

func TestScheduleJitteredDeterministic(t *testing.T) {
	app := WhatsApp()
	a := app.ScheduleJittered(randx.New(4), time.Hour, 3*time.Second)
	b := app.ScheduleJittered(randx.New(4), time.Hour, 3*time.Second)
	for i := range a {
		if a[i].At != b[i].At {
			t.Fatalf("jitter not deterministic at beat %d", i)
		}
	}
}

func TestMergeJitteredSorted(t *testing.T) {
	merged := MergeJittered(randx.New(5), DefaultTrio(), time.Hour, 10*time.Second)
	want := len(Merge(DefaultTrio(), time.Hour))
	if len(merged) != want {
		t.Fatalf("merged %d beats, want %d", len(merged), want)
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].At < merged[i-1].At {
			t.Fatalf("merged jittered schedule out of order at %d", i)
		}
	}
}
