package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"etrain/internal/profile"
)

// headerSize is the fixed frame prefix: uint32 length + version + type.
const headerSize = 6

// maxEntries bounds a Decision's entry count; it is implied by MaxPayload
// (each entry is 16 bytes) but checked explicitly before allocating.
const maxEntries = (MaxPayload - 11) / 16

// maxRouteEntries bounds a RouteTable's shard count; each entry is at
// least 10 bytes (uint64 id + empty-string length prefix), so the bound is
// implied by MaxPayload but checked explicitly before allocating.
const maxRouteEntries = (MaxPayload - 16) / 10

// Append encodes m as one frame appended to dst and returns the extended
// slice. Encoding is total on well-formed messages; it fails only on
// overlong strings or entry lists.
//
//etrain:hotpath
func Append(dst []byte, m Message) ([]byte, error) {
	frameFrom := len(dst)
	dst = append(dst, 0, 0, 0, 0, Version, byte(m.MsgType()))
	bodyFrom := len(dst)
	var err error
	switch v := m.(type) {
	case Hello:
		dst = appendU64(dst, v.DeviceID)
		dst = appendI64(dst, v.Seed)
		dst = appendF64(dst, v.Theta)
		dst = binary.BigEndian.AppendUint32(dst, v.K)
		dst = appendDur(dst, v.Slot)
		dst = appendDur(dst, v.Horizon)
	case HeartbeatObserved:
		dst = appendDur(dst, v.At)
		if dst, err = appendString(dst, v.App); err != nil {
			return nil, err
		}
		dst = appendI64(dst, v.Size)
	case CargoArrival:
		dst = appendU64(dst, v.ID)
		dst = appendDur(dst, v.At)
		if dst, err = appendString(dst, v.App); err != nil {
			return nil, err
		}
		dst = appendI64(dst, v.Size)
		dst = append(dst, byte(v.Profile))
		dst = appendDur(dst, v.Deadline)
	case Decision:
		if len(v.Entries) > maxEntries {
			return nil, fmt.Errorf("wire: decision with %d entries exceeds the %d-entry frame bound", len(v.Entries), maxEntries)
		}
		dst = appendDur(dst, v.Slot)
		dst = appendBool(dst, v.Flush)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(v.Entries)))
		for _, e := range v.Entries {
			dst = appendU64(dst, e.ID)
			dst = appendDur(dst, e.Start)
		}
	case Ack:
		dst = appendU64(dst, v.Seq)
	case Resume:
		dst = appendU64(dst, v.DeviceID)
		dst = appendU64(dst, v.Token)
		dst = appendU64(dst, v.Got)
	case ResumeOK:
		dst = appendU64(dst, v.Got)
	case StatsSnapshot:
		dst = appendU64(dst, v.DeviceID)
		dst = appendF64(dst, v.EnergyJ)
		dst = appendF64(dst, v.AvgDelayS)
		dst = appendF64(dst, v.ViolationRatio)
		dst = appendU64(dst, v.DataPackets)
		dst = appendU64(dst, v.Heartbeats)
		dst = appendU64(dst, v.ForcedFlush)
	case ShardHello:
		dst = appendU64(dst, v.ShardID)
		if dst, err = appendString(dst, v.Addr); err != nil {
			return nil, err
		}
	case ShardBeat:
		dst = appendU64(dst, v.ShardID)
		dst = appendU64(dst, v.Seq)
	case ShardStats:
		dst = appendU64(dst, v.ShardID)
		dst = appendU64(dst, v.Accepted)
		dst = appendU64(dst, v.Rejected)
		dst = appendU64(dst, v.Active)
		dst = appendU64(dst, v.Completed)
		dst = appendU64(dst, v.Errored)
		dst = appendU64(dst, v.Panics)
		dst = appendU64(dst, v.Parked)
		dst = appendU64(dst, v.Resumed)
		dst = appendU64(dst, v.ResumeMisses)
		dst = appendU64(dst, v.Discarded)
		dst = appendU64(dst, v.Detached)
		dst = appendU64(dst, v.FramesIn)
		dst = appendU64(dst, v.FramesOut)
		dst = appendU64(dst, v.Decisions)
	case RouteTable:
		if len(v.Shards) > maxRouteEntries {
			return nil, fmt.Errorf("wire: route table with %d shards exceeds the %d-entry frame bound", len(v.Shards), maxRouteEntries)
		}
		dst = appendU64(dst, v.Epoch)
		dst = appendI64(dst, v.Seed)
		dst = binary.BigEndian.AppendUint32(dst, v.Vnodes)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(v.Shards)))
		for _, e := range v.Shards {
			dst = appendU64(dst, e.ShardID)
			if dst, err = appendString(dst, e.Addr); err != nil {
				return nil, err
			}
		}
	case Busy:
		dst = appendDur(dst, v.RetryAfter)
		dst = append(dst, byte(v.Reason))
	case Redirect:
		if dst, err = appendString(dst, v.Addr); err != nil {
			return nil, err
		}
	case ShardOverload:
		dst = appendU64(dst, v.ShardID)
		dst = appendU64(dst, v.Refused)
		dst = appendU64(dst, v.Shed)
		dst = appendU64(dst, v.BusySent)
	default:
		return nil, fmt.Errorf("wire: cannot encode message type %T", m)
	}
	payload := len(dst) - bodyFrom + 2 // version + type bytes
	if payload > MaxPayload {
		return nil, fmt.Errorf("wire: frame payload %d exceeds MaxPayload %d", payload, MaxPayload)
	}
	binary.BigEndian.PutUint32(dst[frameFrom:], uint32(payload))
	return dst, nil
}

// Encode encodes m as one self-contained frame.
func Encode(m Message) ([]byte, error) {
	return Append(nil, m)
}

// Decode decodes the first frame of b, returning the message and the
// number of bytes consumed. It never panics on hostile input: every
// length is checked before use, the declared payload must be entirely
// consumed, and the frame is rejected if it is not the canonical encoding
// of the returned message.
//
//etrain:hotpath
func Decode(b []byte) (Message, int, error) {
	if len(b) < headerSize {
		return nil, 0, fmt.Errorf("wire: short frame header: %d bytes", len(b))
	}
	payload := binary.BigEndian.Uint32(b)
	if payload < 2 {
		return nil, 0, fmt.Errorf("wire: payload length %d below version+type minimum", payload)
	}
	if payload > MaxPayload {
		return nil, 0, fmt.Errorf("wire: payload length %d exceeds MaxPayload %d", payload, MaxPayload)
	}
	total := int(payload) + 4
	if len(b) < total {
		return nil, 0, fmt.Errorf("wire: truncated frame: have %d of %d bytes", len(b), total)
	}
	if b[4] != Version {
		return nil, 0, fmt.Errorf("wire: version %d, want %d", b[4], Version)
	}
	typ := Type(b[5])
	m, err := decodeBody(typ, b[headerSize:total])
	if err != nil {
		return nil, 0, err
	}
	return m, total, nil
}

// decodeBody decodes one message body. The body must be consumed exactly.
func decodeBody(typ Type, body []byte) (Message, error) {
	d := &decoder{b: body}
	var m Message
	switch typ {
	case TypeHello:
		m = Hello{
			DeviceID: d.u64(),
			Seed:     d.i64(),
			Theta:    d.f64(),
			K:        d.u32(),
			Slot:     d.dur(),
			Horizon:  d.dur(),
		}
	case TypeHeartbeatObserved:
		m = HeartbeatObserved{At: d.dur(), App: d.str(), Size: d.i64()}
	case TypeCargoArrival:
		m = CargoArrival{
			ID:       d.u64(),
			At:       d.dur(),
			App:      d.str(),
			Size:     d.i64(),
			Profile:  profile.Kind(d.u8()),
			Deadline: d.dur(),
		}
	case TypeDecision:
		dec := Decision{Slot: d.dur(), Flush: d.bool()}
		n := int(d.u16())
		if d.err == nil && n > 0 {
			if n > maxEntries || len(d.b)-d.off < n*16 {
				return nil, fmt.Errorf("wire: decision entry count %d exceeds remaining body", n)
			}
			dec.Entries = make([]DecisionEntry, n)
			for i := range dec.Entries {
				dec.Entries[i] = DecisionEntry{ID: d.u64(), Start: d.dur()}
			}
		}
		m = dec
	case TypeAck:
		m = Ack{Seq: d.u64()}
	case TypeResume:
		m = Resume{DeviceID: d.u64(), Token: d.u64(), Got: d.u64()}
	case TypeResumeOK:
		m = ResumeOK{Got: d.u64()}
	case TypeStatsSnapshot:
		m = StatsSnapshot{
			DeviceID:       d.u64(),
			EnergyJ:        d.f64(),
			AvgDelayS:      d.f64(),
			ViolationRatio: d.f64(),
			DataPackets:    d.u64(),
			Heartbeats:     d.u64(),
			ForcedFlush:    d.u64(),
		}
	case TypeShardHello:
		m = ShardHello{ShardID: d.u64(), Addr: d.str()}
	case TypeShardBeat:
		m = ShardBeat{ShardID: d.u64(), Seq: d.u64()}
	case TypeShardStats:
		m = ShardStats{
			ShardID:      d.u64(),
			Accepted:     d.u64(),
			Rejected:     d.u64(),
			Active:       d.u64(),
			Completed:    d.u64(),
			Errored:      d.u64(),
			Panics:       d.u64(),
			Parked:       d.u64(),
			Resumed:      d.u64(),
			ResumeMisses: d.u64(),
			Discarded:    d.u64(),
			Detached:     d.u64(),
			FramesIn:     d.u64(),
			FramesOut:    d.u64(),
			Decisions:    d.u64(),
		}
	case TypeRouteTable:
		rt := RouteTable{Epoch: d.u64(), Seed: d.i64(), Vnodes: d.u32()}
		n := int(d.u16())
		if d.err == nil && n > 0 {
			if n > maxRouteEntries || len(d.b)-d.off < n*10 {
				return nil, fmt.Errorf("wire: route table shard count %d exceeds remaining body", n)
			}
			rt.Shards = make([]RouteEntry, n)
			for i := range rt.Shards {
				rt.Shards[i] = RouteEntry{ShardID: d.u64(), Addr: d.str()}
			}
		}
		m = rt
	case TypeBusy:
		m = Busy{RetryAfter: d.dur(), Reason: BusyReason(d.u8())}
	case TypeRedirect:
		m = Redirect{Addr: d.str()}
	case TypeShardOverload:
		m = ShardOverload{
			ShardID:  d.u64(),
			Refused:  d.u64(),
			Shed:     d.u64(),
			BusySent: d.u64(),
		}
	default:
		return nil, fmt.Errorf("wire: unknown message type %d", uint8(typ))
	}
	if d.err != nil {
		return nil, fmt.Errorf("wire: %s: %w", typ, d.err)
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("wire: %s: %d trailing body bytes", typ, len(d.b)-d.off)
	}
	return m, nil
}

// decoder is a bounds-checked cursor over a frame body. The first failed
// read latches err; subsequent reads return zero values, so message
// decoding reads fields unconditionally and checks err once.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.b)-d.off < n {
		d.err = fmt.Errorf("truncated body at offset %d: need %d bytes, have %d", d.off, n, len(d.b)-d.off)
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

func (d *decoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) bool() bool {
	switch d.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		if d.err == nil {
			d.err = fmt.Errorf("non-canonical boolean at offset %d", d.off-1)
		}
		return false
	}
}

func (d *decoder) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *decoder) i64() int64         { return int64(d.u64()) }
func (d *decoder) dur() time.Duration { return time.Duration(d.i64()) }
func (d *decoder) f64() float64       { return math.Float64frombits(d.u64()) }

func (d *decoder) str() string {
	n := int(d.u16())
	b := d.take(n)
	if b == nil {
		return ""
	}
	return intern(b)
}

// internTable holds the canonical spellings of the app names that appear in
// virtually every frame of a session stream (the heartbeat trains of
// internal/heartbeat and the cargo apps of internal/workload). The table is
// fixed at init, never grown from wire input, so hostile streams cannot
// inflate it.
var internTable = map[string]string{
	"qq":       "qq",
	"wechat":   "wechat",
	"whatsapp": "whatsapp",
	"renren":   "renren",
	"netease":  "netease",
	"apns":     "apns",
	"mail":     "mail",
	"weibo":    "weibo",
	"cloud":    "cloud",
}

// intern returns the canonical string for b, avoiding an allocation for the
// well-known app names that dominate decoded frames. Unknown names are
// copied as usual.
func intern(b []byte) string {
	// The map index with a string(b) key does not allocate.
	if s, ok := internTable[string(b)]; ok {
		return s
	}
	return string(b)
}

func appendU64(dst []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(dst, v) }
func appendI64(dst []byte, v int64) []byte  { return appendU64(dst, uint64(v)) }
func appendF64(dst []byte, v float64) []byte {
	return appendU64(dst, math.Float64bits(v))
}
func appendDur(dst []byte, v time.Duration) []byte { return appendI64(dst, int64(v)) }

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendString(dst []byte, s string) ([]byte, error) {
	if len(s) > math.MaxUint16 {
		return nil, fmt.Errorf("wire: string of %d bytes exceeds the uint16 length prefix", len(s))
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...), nil
}

// ErrTruncated reports a frame cut off mid-stream: the connection ended
// (or errored) between a frame's first byte and its last. Errors returned
// by Reader.Next for torn frames match it via errors.Is, and also match
// io.ErrUnexpectedEOF so io.ReadFull-style callers keep working. A
// truncated frame is a transport fault, not a protocol violation — a
// resuming client replays it in full on the next connection.
var ErrTruncated = errors.New("wire: truncated frame")

// truncErr is the concrete truncation error: where in the frame the
// stream ended, matching both ErrTruncated and io.ErrUnexpectedEOF.
type truncErr struct {
	section string // "header" or "body"
	cause   error
}

func (e *truncErr) Error() string {
	return fmt.Sprintf("wire: truncated frame %s: %v", e.section, e.cause)
}

func (e *truncErr) Is(target error) bool {
	return target == ErrTruncated || target == io.ErrUnexpectedEOF
}

func (e *truncErr) Unwrap() error { return e.cause }

// Reader decodes a frame stream from an io.Reader, reusing one body
// buffer across frames.
type Reader struct {
	r      io.Reader
	header [headerSize]byte
	body   []byte
}

// NewReader returns a frame reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r}
}

// Next reads and decodes the next frame. It returns io.EOF only on a
// clean frame boundary; a stream that ends (or errors) mid-frame yields an
// error matching ErrTruncated (and io.ErrUnexpectedEOF) — never a hang and
// never a misparse of the partial bytes.
//
//etrain:hotpath
func (fr *Reader) Next() (Message, error) {
	if n, err := io.ReadFull(fr.r, fr.header[:]); err != nil {
		if n == 0 && err == io.EOF {
			return nil, io.EOF
		}
		return nil, &truncErr{section: "header", cause: err}
	}
	payload := binary.BigEndian.Uint32(fr.header[:])
	if payload < 2 {
		return nil, fmt.Errorf("wire: payload length %d below version+type minimum", payload)
	}
	if payload > MaxPayload {
		return nil, fmt.Errorf("wire: payload length %d exceeds MaxPayload %d", payload, MaxPayload)
	}
	if fr.header[4] != Version {
		return nil, fmt.Errorf("wire: version %d, want %d", fr.header[4], Version)
	}
	bodyLen := int(payload) - 2
	if cap(fr.body) < bodyLen {
		fr.body = make([]byte, bodyLen)
	}
	fr.body = fr.body[:bodyLen]
	if _, err := io.ReadFull(fr.r, fr.body); err != nil {
		return nil, &truncErr{section: "body", cause: err}
	}
	return decodeBody(Type(fr.header[5]), fr.body)
}

// Writer encodes frames onto an io.Writer, reusing one frame buffer, so a
// frame normally costs one Write call and no steady-state allocation.
type Writer struct {
	w   io.Writer
	buf []byte
}

// NewWriter returns a frame writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w}
}

// Write encodes m and writes the frame. Short writes without an error —
// a conn that accepts one byte at a time, a transport that fragments —
// are retried until the frame is fully delivered, so the byte stream
// stays canonical regardless of how the underlying writer chunks; a short
// write with no progress at all is reported as io.ErrShortWrite.
//
//etrain:hotpath
func (fw *Writer) Write(m Message) error {
	b, err := Append(fw.buf[:0], m)
	if err != nil {
		return err
	}
	fw.buf = b
	for len(b) > 0 {
		n, err := fw.w.Write(b)
		if err != nil {
			return err
		}
		if n <= 0 {
			return io.ErrShortWrite
		}
		b = b[n:]
	}
	return nil
}
