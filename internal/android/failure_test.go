package android

import (
	"testing"
	"time"

	"etrain/internal/bandwidth"
	"etrain/internal/core"
	"etrain/internal/heartbeat"
	"etrain/internal/profile"
	"etrain/internal/radio"
)

// Failure-injection tests: the live stack must degrade gracefully when
// trains die, the channel collapses, or apps misbehave.

func TestTrainDiesMidRunBypassEngages(t *testing.T) {
	d := newDevice(t)
	svc, err := StartService(d, ServiceOptions{
		Core:        core.Options{Theta: 100, K: core.KInfinite},
		BypassAfter: 120 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	train := heartbeat.WeChat() // 270 s cycle, first beat at 0
	ts, err := StartTrain(d, train, true)
	if err != nil {
		t.Fatal(err)
	}
	// The train dies right after its first beat.
	d.Loop.Schedule(time.Second, func(time.Duration) { ts.Stop() })

	mail := NewCargoApp(d, "mail", profile.Mail(time.Hour))
	mail.ScheduleSubmit(30*time.Second, 5*1024)

	if err := d.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	delivered := mail.Delivered()
	if len(delivered) != 1 {
		t.Fatalf("delivered %d packets after train death, want bypass flush", len(delivered))
	}
	// Flushed once the bypass window expired (last beat at 0 + 120 s).
	if at := delivered[0].StartedAt; at < 120*time.Second || at > 125*time.Second {
		t.Fatalf("bypass flush at %v, want shortly after 120s", at)
	}
	if svc.QueuedCount() != 0 {
		t.Fatal("packets still queued after bypass")
	}
}

func TestServiceStopFlushesAndPassesThrough(t *testing.T) {
	d := newDevice(t)
	svc := defaultService(t, d, 100) // Θ huge: nothing leaves on its own
	train := heartbeat.QQ()
	train.FirstAt = time.Hour // effectively never
	if _, err := StartTrain(d, train, true); err != nil {
		t.Fatal(err)
	}
	app := NewCargoApp(d, "weibo", profile.Weibo(time.Hour))
	app.ScheduleSubmit(10*time.Second, 1024) // queued, held by Θ
	d.Loop.Schedule(60*time.Second, func(time.Duration) { svc.Stop() })
	app.ScheduleSubmit(90*time.Second, 2048) // submitted after Stop

	if err := d.Run(3 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if !svc.Stopped() {
		t.Fatal("service not stopped")
	}
	delivered := app.Delivered()
	if len(delivered) != 2 {
		t.Fatalf("delivered %d packets, want 2 (flush + pass-through)", len(delivered))
	}
	// First packet flushed at Stop time; second passed through on arrival.
	if at := delivered[0].StartedAt; at < 60*time.Second || at > 61*time.Second {
		t.Fatalf("flushed packet at %v, want ~60s", at)
	}
	if at := delivered[1].StartedAt; at < 90*time.Second || at > 91*time.Second {
		t.Fatalf("post-stop packet at %v, want ~90s (pass-through)", at)
	}
	if svc.QueuedCount() != 0 {
		t.Fatal("packets still queued after Stop")
	}
}

func TestServiceStopIdempotent(t *testing.T) {
	d := newDevice(t)
	svc := defaultService(t, d, 1)
	svc.Stop()
	svc.Stop()
	if !svc.Stopped() {
		t.Fatal("not stopped")
	}
}

func TestDeepFadeStretchesTransmissions(t *testing.T) {
	// A 1 KB/s link: the 378 B QQ heartbeat takes ~0.38 s; a 100 KB cloud
	// packet takes ~100 s, during which everything else queues behind it.
	bw, err := bandwidth.Constant(1024, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDevice(radio.GalaxyS43G(), bw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := StartService(d, ServiceOptions{
		Core: core.Options{Theta: 0, K: core.KInfinite},
	}); err != nil {
		t.Fatal(err)
	}
	train := heartbeat.QQ()
	train.FirstAt = 10 * time.Second
	if _, err := StartTrain(d, train, true); err != nil {
		t.Fatal(err)
	}
	cloud := NewCargoApp(d, "cloud", profile.Cloud(time.Hour))
	cloud.ScheduleSubmit(5*time.Second, 100*1024)
	weibo := NewCargoApp(d, "weibo", profile.Weibo(time.Hour))
	weibo.ScheduleSubmit(20*time.Second, 1024)

	if err := d.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	txs := d.Timeline().Transmissions()
	if len(txs) < 3 {
		t.Fatalf("only %d transmissions", len(txs))
	}
	// No overlap despite long in-flight transmissions.
	for i := 1; i < len(txs); i++ {
		if txs[i].Start < txs[i-1].End() {
			t.Fatalf("overlap under deep fade at %d", i)
		}
	}
	// The cloud packet's transmission really took ~100 s.
	for _, tx := range txs {
		if tx.Size == 100*1024 && tx.TxTime < 90*time.Second {
			t.Fatalf("100 KB at 1 KB/s took only %v", tx.TxTime)
		}
	}
}

func TestDoubleDecisionIsIdempotent(t *testing.T) {
	// A duplicated TransmitDecision (e.g. a replayed broadcast) must not
	// transmit the same packet twice.
	d := newDevice(t)
	defaultService(t, d, 100)
	app := NewCargoApp(d, "weibo", profile.Weibo(time.Minute))
	id := -1
	d.Loop.Schedule(time.Second, func(time.Duration) { id = app.Submit(1024) })
	d.Loop.Schedule(2*time.Second, func(time.Duration) {
		decision := TransmitDecision{App: "weibo", PacketIDs: []int{id}}
		d.Bus.Broadcast(Intent{Action: ActionTransmitDecision, Payload: decision})
		d.Bus.Broadcast(Intent{Action: ActionTransmitDecision, Payload: decision})
	})
	if err := d.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := len(app.Delivered()); got != 1 {
		t.Fatalf("duplicated decision transmitted %d times", got)
	}
}

func TestDecisionForUnknownPacketIgnored(t *testing.T) {
	d := newDevice(t)
	defaultService(t, d, 100)
	app := NewCargoApp(d, "weibo", profile.Weibo(time.Minute))
	d.Loop.Schedule(time.Second, func(time.Duration) {
		d.Bus.Broadcast(Intent{
			Action:  ActionTransmitDecision,
			Payload: TransmitDecision{App: "weibo", PacketIDs: []int{424242}},
		})
	})
	if err := d.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(app.Delivered()) != 0 {
		t.Fatal("phantom packet transmitted")
	}
}

func TestMalformedIntentPayloadsIgnored(t *testing.T) {
	d := newDevice(t)
	svc := defaultService(t, d, 1)
	d.Loop.Schedule(time.Second, func(time.Duration) {
		d.Bus.Broadcast(Intent{Action: ActionHeartbeatSent, Payload: "not a heartbeat"})
		d.Bus.Broadcast(Intent{Action: ActionSubmitRequest, Payload: 42})
		d.Bus.Broadcast(Intent{Action: ActionRegisterCargo, Payload: nil})
	})
	if err := d.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if svc.BeatsObserved() != 0 || svc.QueuedCount() != 0 {
		t.Fatal("malformed payloads were processed")
	}
}
