package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture loads one package from the testdata/src tree with imports
// resolving inside that tree.
func loadFixture(t *testing.T, importPath string) *Package {
	t.Helper()
	srcRoot, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	loader := NewLoader(func(p string) (string, bool) {
		dir := filepath.Join(srcRoot, filepath.FromSlash(p))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
		return "", false
	})
	pkg, err := loader.Load(importPath, filepath.Join(srcRoot, filepath.FromSlash(importPath)))
	if err != nil {
		t.Fatalf("load %s: %v", importPath, err)
	}
	return pkg
}

// TestIgnoreDirectives pins down the //lint:ignore contract end to end: a
// justified directive suppresses the next line's finding, an unjustified
// one suppresses nothing and is itself reported, and a directive naming a
// different analyzer does not apply.
func TestIgnoreDirectives(t *testing.T) {
	pkg := loadFixture(t, "ignores")
	diags := Run([]*Package{pkg}, []*Analyzer{NoTime})

	type finding struct {
		line     int
		analyzer string
	}
	want := []finding{
		{13, "directive"}, // unjustified directive reported as malformed
		{14, "notime"},    // ... and it suppresses nothing
		{19, "notime"},    // directive for another analyzer does not apply
	}
	if len(diags) != len(want) {
		t.Fatalf("got %d diagnostics, want %d: %v", len(diags), len(want), diags)
	}
	for i, w := range want {
		if diags[i].Pos.Line != w.line || diags[i].Analyzer != w.analyzer {
			t.Errorf("diag %d = %s:%d [%s], want line %d [%s]",
				i, filepath.Base(diags[i].Pos.Filename), diags[i].Pos.Line,
				diags[i].Analyzer, w.line, w.analyzer)
		}
	}
	if !strings.Contains(diags[0].Message, "justification") {
		t.Errorf("malformed-directive message %q should ask for a justification", diags[0].Message)
	}
}

// TestModulePackages checks package discovery over the real module: the
// root package, nested internal packages and commands are found; testdata
// fixture trees are not.
func TestModulePackages(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ModulePackages(root, "etrain")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, pd := range pkgs {
		got[pd[0]] = true
	}
	for _, mustHave := range []string{
		"etrain",
		"etrain/internal/analysis",
		"etrain/internal/radio",
		"etrain/cmd/etrain-vet",
	} {
		if !got[mustHave] {
			t.Errorf("ModulePackages missed %s", mustHave)
		}
	}
	for path := range got {
		if strings.Contains(path, "testdata") {
			t.Errorf("ModulePackages descended into testdata: %s", path)
		}
	}
}
