// Command etrain-benchjson converts `go test -bench` text output on stdin
// into a machine-readable JSON map on stdout, keyed "pkg.BenchmarkName":
//
//	go test -run '^$' -bench . -benchmem ./... | go run ./cmd/etrain-benchjson
//
// yields
//
//	{
//	  "etrain/internal/fleet.BenchmarkFleet10k": {
//	    "ns_per_op": 1234567,
//	    "bytes_per_op": 89,
//	    "allocs_per_op": 3
//	  },
//	  ...
//	}
//
// Keys are emitted sorted, so the output is diff-stable across runs of the
// same benchmark set. When a benchmark appears multiple times (e.g.
// -count), the last measurement wins.
//
// With -load FILE the report from an etrain-load -json run is folded in,
// and the output becomes a two-section object:
//
//	{"benchmarks": {"pkg.BenchmarkName": {...}, ...}, "load": {...}}
//
// so BENCH_server.json carries both microbenchmarks and the service-level
// soak (throughput, latency percentiles, reconnect/resume/degraded-mode
// healing counts) in one snapshot. Without -load the flat map is emitted
// unchanged.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// benchResult is one benchmark's parsed measurements.
type benchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func main() {
	loadPath := flag.String("load", "", "etrain-load -json report to fold in alongside the benchmarks")
	flag.Parse()
	results, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "etrain-benchjson:", err)
		os.Exit(1)
	}
	var out any = results
	if *loadPath != "" {
		raw, err := os.ReadFile(*loadPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "etrain-benchjson:", err)
			os.Exit(1)
		}
		var load json.RawMessage
		if err := json.Unmarshal(raw, &load); err != nil {
			fmt.Fprintf(os.Stderr, "etrain-benchjson: %s: %v\n", *loadPath, err)
			os.Exit(1)
		}
		out = struct {
			Benchmarks map[string]benchResult `json:"benchmarks"`
			Load       json.RawMessage        `json:"load"`
		}{Benchmarks: results, Load: load}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "etrain-benchjson:", err)
		os.Exit(1)
	}
	os.Stdout.Write(append(data, '\n'))
}

// parseBench scans go-test benchmark output: "pkg:" header lines set the
// current package, "Benchmark..." lines carry (iterations, value unit)
// measurement pairs.
func parseBench(r io.Reader) (map[string]benchResult, error) {
	out := map[string]benchResult{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// name, iteration count, then (value, unit) pairs.
		if len(fields) < 4 {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue
		}
		var res benchResult
		measured := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
				measured = true
			case "B/op":
				res.BytesPerOp = v
				measured = true
			case "allocs/op":
				res.AllocsPerOp = v
				measured = true
			}
		}
		if !measured {
			continue
		}
		out[benchKey(pkg, fields[0])] = res
	}
	return out, sc.Err()
}

// benchKey joins the package path and the benchmark name, dropping the
// -GOMAXPROCS suffix go test appends to the name.
func benchKey(pkg, name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	if pkg == "" {
		return name
	}
	return pkg + "." + name
}
