// Command etrain-fleet simulates a population of eTrain devices and
// prints per-activeness-class energy-saving and delay statistics.
//
// Usage:
//
//	go run ./cmd/etrain-fleet -devices 100000 -workers 8
//	go run ./cmd/etrain-fleet -devices 100000 -checkpoint fleet.ckpt
//	go run ./cmd/etrain-fleet -devices 100000 -checkpoint fleet.ckpt -resume
//
// The report is byte-identical at every -workers setting, and an
// interrupted run (Ctrl-C writes a shard-boundary checkpoint) resumed with
// -resume reproduces the uninterrupted report exactly. Progress and ETA go
// to stderr; the report goes to stdout.
//
// This command is the wall-clock boundary of the fleet subsystem: rate and
// ETA for the operator are computed here, never inside internal/fleet,
// whose results are pure functions of the configuration.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"etrain/internal/diurnal"
	"etrain/internal/fleet"
	"etrain/internal/radio"
	"etrain/internal/workload"
)

func main() {
	devices := flag.Int("devices", 10000, "population size")
	workers := flag.Int("workers", 1, "concurrent shard workers (negative: one per CPU)")
	seed := flag.Int64("seed", 42, "base seed; every device derives from (seed, index)")
	shardSize := flag.Int("shard-size", 0, "devices per shard (0: default 256)")
	horizon := flag.Duration("horizon", 0, "per-device simulated span (0: the 10-minute session)")
	theta := flag.Float64("theta", 4.0, "eTrain cost bound Θ")
	k := flag.Int("k", fleet.DefaultK, "per-heartbeat batch bound k")
	mixFlag := flag.String("mix", "", `activeness mix as "active=0.2,moderate=0.3,inactive=0.5" (empty: default mix)`)
	alpha := flag.Float64("alpha", 0, "quantile-sketch relative accuracy (0: default 0.01)")
	checkpoint := flag.String("checkpoint", "", "checkpoint file for shard-boundary snapshots")
	every := flag.Int("checkpoint-every", 8, "snapshot after every n completed shards (with -checkpoint)")
	resume := flag.Bool("resume", false, "resume from -checkpoint instead of starting fresh")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	diurnalFlag := flag.String("diurnal", "", "diurnal activity profile: "+strings.Join(diurnal.PresetNames(), ", ")+" (empty: none)")
	timeScale := flag.Float64("time-scale", 0, "diurnal clock compression, e.g. 1008 replays a week in 10 min (0: profile default)")
	phaseJitter := flag.Duration("phase-jitter", -1, "per-device diurnal phase-offset span (negative: profile default)")
	diurnalStart := flag.Duration("diurnal-start", -1, "where on the diurnal clock sim time zero lands (negative: profile default)")
	radioFlag := flag.String("radio", "", "radio generation for energy accounting: "+strings.Join(radio.ModelNames(), ", ")+" (empty: 3G RRC)")
	flag.Parse()

	mix, err := parseMix(*mixFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "etrain-fleet:", err)
		os.Exit(2)
	}
	prof, err := parseDiurnal(*diurnalFlag, *timeScale, *phaseJitter, *diurnalStart)
	if err != nil {
		fmt.Fprintln(os.Stderr, "etrain-fleet:", err)
		os.Exit(2)
	}
	cfg := fleet.Config{
		Devices:         *devices,
		ShardSize:       *shardSize,
		Workers:         *workers,
		Seed:            *seed,
		Horizon:         *horizon,
		Theta:           *theta,
		K:               *k,
		Mix:             mix,
		SketchAlpha:     *alpha,
		CheckpointPath:  *checkpoint,
		CheckpointEvery: *every,
		Resume:          *resume,
		Diurnal:         prof,
		Radio:           *radioFlag,
	}
	if err := run(cfg, *quiet); err != nil {
		if errors.Is(err, fleet.ErrHalted) {
			if cfg.CheckpointPath != "" {
				fmt.Fprintf(os.Stderr, "etrain-fleet: interrupted; checkpoint written to %s — rerun with -resume\n", cfg.CheckpointPath)
			} else {
				fmt.Fprintln(os.Stderr, "etrain-fleet: interrupted; no -checkpoint configured, progress discarded")
			}
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "etrain-fleet:", err)
		os.Exit(1)
	}
}

func run(cfg fleet.Config, quiet bool) error {
	// Ctrl-C / SIGTERM requests a halt at the next shard boundary; the
	// engine then snapshots completed shards and returns ErrHalted.
	var halted atomic.Bool
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		if _, ok := <-sigc; ok {
			halted.Store(true)
		}
	}()
	cfg.Halt = halted.Load

	//lint:ignore notime CLI progress boundary: rate/ETA for the operator; the simulation never reads the wall clock
	start := time.Now()
	restored, first := 0, true
	cfg.Progress = func(done, total int) {
		if first {
			first, restored = false, done
		}
		if quiet {
			return
		}
		//lint:ignore notime CLI progress boundary: rate/ETA for the operator; the simulation never reads the wall clock
		elapsed := time.Since(start)
		eta := "?"
		if done > restored && done < total {
			perShard := elapsed / time.Duration(done-restored)
			eta = (time.Duration(total-done) * perShard).Round(time.Second).String()
		}
		fmt.Fprintf(os.Stderr, "\rshards %d/%d  elapsed %s  eta %s   ",
			done, total, elapsed.Round(time.Second), eta)
	}

	rep, err := fleet.Run(cfg)
	if !quiet {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		return err
	}
	return rep.Fprint(os.Stdout)
}

// parseDiurnal resolves the -diurnal preset and applies the clock
// overrides. The knob flags require -diurnal; negative durations mean
// "keep the profile's default".
func parseDiurnal(name string, timeScale float64, phaseJitter, start time.Duration) (*diurnal.Profile, error) {
	if name == "" {
		if timeScale != 0 || phaseJitter >= 0 || start >= 0 {
			return nil, fmt.Errorf("-time-scale/-phase-jitter/-diurnal-start require -diurnal")
		}
		return nil, nil
	}
	prof, err := diurnal.ByName(name)
	if err != nil {
		return nil, err
	}
	if timeScale != 0 {
		prof.TimeScale = timeScale
	}
	if phaseJitter >= 0 {
		prof.PhaseJitter = phaseJitter
	}
	if start >= 0 {
		prof.Start = start
	}
	return prof, prof.Validate()
}

// parseMix converts the -mix flag ("class=weight,...") to a class mix.
func parseMix(s string) ([]workload.ClassShare, error) {
	if s == "" {
		return nil, nil
	}
	var mix []workload.ClassShare
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("mix entry %q: want class=weight", part)
		}
		class, err := workload.ParseClass(strings.TrimSpace(kv[0]))
		if err != nil {
			return nil, err
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(kv[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("mix entry %q: bad weight: %v", part, err)
		}
		mix = append(mix, workload.ClassShare{Class: class, Weight: w})
	}
	return mix, nil
}
