// Package client is the self-healing counterpart to internal/server: it
// replays one device session against an etraind server and survives a
// hostile transport. A broken connection triggers reconnection with
// capped, deterministically jittered exponential backoff; a reconnect
// resumes the parked server session (wire.Resume) and replays only the
// unacknowledged tail; and when the server stays unreachable the client
// degrades gracefully to local scheduling — the same server.Replayer
// code path the server itself runs — so decisions keep flowing and, by
// determinism, are byte-identical to what the server would have sent
// (DESIGN.md §11).
package client

import (
	"fmt"
	"net"
	"time"

	"etrain/internal/radio"
	"etrain/internal/randx"
	"etrain/internal/server"
	"etrain/internal/wire"
)

// Defaults for the zero Config.
const (
	// DefaultMaxAttempts is how many consecutive no-progress connection
	// attempts are tolerated before degrading to local scheduling.
	DefaultMaxAttempts = 5
	// DefaultBaseBackoff seeds the exponential reconnect backoff.
	DefaultBaseBackoff = 50 * time.Millisecond
	// DefaultMaxBackoff caps the exponential reconnect backoff.
	DefaultMaxBackoff = 5 * time.Second
	// DefaultRetryEvery is how many locally applied events pass between
	// reconnection probes while degraded.
	DefaultRetryEvery = 64
	// DefaultRetryBudget is the per-session busy-retry token budget: how
	// many wire.Busy responses the client absorbs (sleeping the server's
	// hinted backoff each time) before it stops hammering an overloaded
	// server and degrades to local scheduling. Successful exchanges refill
	// the bucket one token at a time, SRE retry-budget style, so a brief
	// overload costs a few tokens while a sustained one drains the budget
	// exactly once.
	DefaultRetryBudget = 8
)

// resumeRetries is how many additional Resume handshakes are attempted
// after a failed one before falling back to a full Hello replay. The
// client notices a dead transport before the server does (its own write
// fails first), so the first Resume can race the server parking the old
// session; one backed-off retry absorbs that window.
const resumeRetries = 1

// Config parameterizes a resilient session run.
type Config struct {
	// Dial opens a connection to the server. It is called for the
	// initial connection, every reconnect, and degraded-mode probes.
	// Exactly one of Dial and Route is required.
	Dial func() (net.Conn, error)
	// Route is the cluster-aware alternative to Dial: each call routes
	// the device under the newest route table (cluster.Router.Dialer
	// returns this shape) and reports moved=true when the endpoint
	// differs from the previous successful dial. A moved connection
	// reaches a shard that never parked this session, so the client
	// skips the Resume handshake there and goes straight to a full
	// Hello replay — which, by determinism, regenerates the exact
	// stream the old shard would have sent.
	Route func() (conn net.Conn, moved bool, err error)
	// Power is the radio model for degraded-mode local scheduling
	// (radio.GalaxyS43G() if unset) — it must match the server's model
	// for local decisions to be identical.
	Power radio.PowerModel
	// MaxAttempts bounds consecutive no-progress attempts before the
	// client degrades to local scheduling (DefaultMaxAttempts if zero).
	MaxAttempts int
	// BaseBackoff and MaxBackoff shape the reconnect backoff
	// (DefaultBaseBackoff / DefaultMaxBackoff if zero).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed roots the deterministic backoff jitter.
	Seed int64
	// Sleep imposes backoff waits; nil disables waiting (tests retry
	// instantly but still draw identical jitter sequences).
	Sleep func(time.Duration)
	// Clock, when non-nil, measures wall time spent in degraded mode.
	Clock func() time.Time
	// RetryEvery is the initial degraded-mode probe cadence, in applied
	// events (DefaultRetryEvery if zero); it doubles with every stint so
	// sustained chaos converges on a probe-free local completion.
	RetryEvery int
	// RetryBudget caps busy-retries per session (DefaultRetryBudget if
	// zero): each wire.Busy from the server spends one token, each
	// exchange that makes progress refills one (never past the cap), and
	// exhaustion sends the session to a degraded stint instead of another
	// retry — the herd damping that keeps a synchronized failover from
	// retry-storming the surviving shards.
	RetryBudget int
}

// Outcome is what one resilient session run produced, plus how hard the
// transport fought it.
type Outcome struct {
	Decisions []wire.Decision
	Stats     wire.StatsSnapshot

	Attempts       int           // dial attempts, including the first and degraded probes
	Reconnects     int           // successful dials after the first
	Resumes        int           // successful Resume handshakes
	Replays        int           // full Hello replays after losing an admitted session
	DegradedStints int           // times the client fell back to local scheduling
	DegradedEvents int           // events first scheduled locally while degraded
	Degraded       bool          // DegradedStints > 0
	DegradedTime   time.Duration // wall time degraded (needs Clock)
	// CompletedLocally reports that the session's final frames were
	// produced by a degraded stint, not a server: the client finished
	// locally and never reconciled with a live connection. Such sessions
	// are correct (determinism makes the local stream authoritative) but
	// a load report that counts only Degraded understates how many
	// sessions ended without the server ever confirming them.
	CompletedLocally bool

	// BusyResponses counts wire.Busy frames received from servers.
	BusyResponses int
	// BudgetExhausted counts the times the busy-retry budget ran dry,
	// each forcing a degraded stint; it is the healing ledger's record
	// that overload — not transport loss — degraded the session.
	BudgetExhausted int
	// BusyWait is the total busy-induced backoff the client was asked to
	// wait (the seed-jittered sum of the servers' RetryAfter hints) — the
	// herd-recovery latency contribution of this session. It accumulates
	// even with a nil Sleep, so deterministic tests see the same ledger a
	// real run would.
	BusyWait time.Duration
}

// state is one run's progress: the outbound journal, the authoritative
// frame stream assembled so far, and the resume bookkeeping.
type state struct {
	cfg     Config
	hello   wire.Hello
	token   uint64
	journal []wire.Message // events then the finish Ack; frame n is journal[n-1]

	// out is the session's authoritative server-frame stream: decisions,
	// then stats, then the final ack — whether frames arrived over a
	// connection or were generated locally while degraded. len(out) is
	// what Resume confirms.
	out  []wire.Message
	done bool

	admitted    bool // a server accepted our Hello at least once
	localFinish bool // a degraded stint produced the final frames
	canResume   bool // the parked session is presumed resumable
	resumeFails int  // consecutive failed Resume handshakes
	// maxApplied is the highest journal frame known applied by the
	// authoritative engine (server's ResumeOK, or local replay).
	maxApplied int

	// probeEvery is the current degraded-mode probe cadence. It starts at
	// cfg.RetryEvery and doubles with every stint: each abandoned stint is
	// evidence the transport is still hostile, so probing backs off until a
	// stint eventually runs probe-free and completes the session locally —
	// guaranteeing termination under sustained chaos while a brief outage
	// still reconciles on the first probe.
	probeEvery int

	// rng draws the deterministic jitter for both reconnect backoff and
	// busy-wait sleeps.
	rng *randx.Source

	// budget is the busy-retry token bucket: spent by noteBusy, refilled
	// (capped at budgetCap) by exchanges that make progress. mustDegrade
	// latches when a Busy lands on an empty bucket; the run loop answers
	// it with an immediate degraded stint.
	budget      int
	budgetCap   int
	mustDegrade bool

	attempts        int
	reconnects      int
	resumes         int
	replays         int
	stints          int
	degradedEvents  int
	degradedTime    time.Duration
	busyResponses   int
	budgetExhausted int
	busyWait        time.Duration
}

// Run replays sess against the server reached through cfg.Dial,
// reconnecting, resuming and degrading as needed, until the session's
// full decision stream and stats snapshot are assembled. It fails only
// on protocol or engine errors — never on transport faults.
func Run(cfg Config, sess server.Session) (*Outcome, error) {
	if cfg.Dial == nil && cfg.Route == nil {
		return nil, fmt.Errorf("client: one of Config.Dial and Config.Route is required")
	}
	if cfg.Dial != nil && cfg.Route != nil {
		return nil, fmt.Errorf("client: Config.Dial and Config.Route are mutually exclusive")
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = DefaultBaseBackoff
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = DefaultMaxBackoff
	}
	if cfg.RetryEvery <= 0 {
		cfg.RetryEvery = DefaultRetryEvery
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = DefaultRetryBudget
	}
	if cfg.Power.Validate() != nil {
		cfg.Power = radio.GalaxyS43G()
	}

	journal := make([]wire.Message, 0, len(sess.Events)+1)
	journal = append(journal, sess.Events...)
	journal = append(journal, wire.Ack{Seq: uint64(len(sess.Events)) + 1})
	st := &state{
		cfg:        cfg,
		hello:      sess.Hello,
		token:      wire.SessionToken(sess.Hello),
		journal:    journal,
		probeEvery: cfg.RetryEvery,
		budget:     cfg.RetryBudget,
		budgetCap:  cfg.RetryBudget,
	}
	st.rng = randx.New(randx.Derive(cfg.Seed, sess.Hello.DeviceID, 0x6261636b6f6666)) // "backoff"

	consecFail := 0
	var conn net.Conn // a live connection handed over by a degraded probe
	for !st.done {
		if conn == nil {
			c, err := st.dial()
			if err != nil {
				consecFail++
				if consecFail >= cfg.MaxAttempts {
					consecFail = 0
					c2, err := st.stint()
					if err != nil {
						return nil, err
					}
					conn = c2
				} else {
					st.backoff(consecFail)
				}
				continue
			}
			if st.attempts > 1 {
				st.reconnects++
			}
			conn = c
		}
		progress, err := st.exchange(conn)
		conn = nil
		if err != nil {
			return nil, err
		}
		if st.done {
			break
		}
		if st.mustDegrade {
			// The busy-retry budget ran dry: stop hammering the overloaded
			// server and schedule locally; a probe reconciles later if the
			// server recovers.
			st.mustDegrade = false
			consecFail = 0
			c2, err := st.stint()
			if err != nil {
				return nil, err
			}
			conn = c2
			continue
		}
		if progress {
			consecFail = 0
			st.refill()
			continue
		}
		consecFail++
		if consecFail >= cfg.MaxAttempts {
			consecFail = 0
			c2, err := st.stint()
			if err != nil {
				return nil, err
			}
			conn = c2
			continue
		}
		st.backoff(consecFail)
	}
	return st.outcome()
}

// dial opens one connection through whichever hook the config carries,
// counting the attempt. A Route dial that reports the device's shard
// moved invalidates the parked session — it lives (if anywhere) on a
// shard this connection does not reach — so the next handshake is a
// full Hello replay rather than a doomed Resume.
func (st *state) dial() (net.Conn, error) {
	st.attempts++
	if st.cfg.Route == nil {
		return st.cfg.Dial()
	}
	conn, moved, err := st.cfg.Route()
	if err != nil {
		return nil, err
	}
	if moved {
		st.canResume = false
		st.resumeFails = 0
	}
	return conn, nil
}

// backoff sleeps the capped exponential delay for the given consecutive
// failure count, with deterministic jitter in [d/2, d].
func (st *state) backoff(consec int) {
	d := st.cfg.BaseBackoff
	for i := 1; i < consec && d < st.cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > st.cfg.MaxBackoff {
		d = st.cfg.MaxBackoff
	}
	half := int64(d / 2)
	jittered := time.Duration(half + st.rng.Int63()%(half+1))
	if st.cfg.Sleep != nil {
		st.cfg.Sleep(jittered)
	}
}

// noteBusy records one wire.Busy from the server: honor RetryAfter with
// seed-jittered damping (a sleep in [RA/2, RA], so a synchronized herd
// of refused clients desynchronizes instead of re-arriving as one wave)
// and spend one retry-budget token. A Busy landing on an empty bucket
// latches mustDegrade instead — the client stops retrying and schedules
// locally.
func (st *state) noteBusy(b wire.Busy) {
	st.busyResponses++
	if b.RetryAfter > 0 {
		half := int64(b.RetryAfter / 2)
		jittered := time.Duration(half + st.rng.Int63()%(half+1))
		st.busyWait += jittered
		if st.cfg.Sleep != nil {
			st.cfg.Sleep(jittered)
		}
	}
	if st.budget > 0 {
		st.budget--
		return
	}
	st.budgetExhausted++
	st.mustDegrade = true
}

// refill returns one busy-retry token after an exchange that made
// progress, never past the configured cap.
func (st *state) refill() {
	if st.budget < st.budgetCap {
		st.budget++
	}
}

// readResult is one connection's collected server frames. Busy frames
// are control frames, not session frames: they are split out so the
// authoritative stream stays decisions/stats/ack only.
type readResult struct {
	frames []wire.Message
	busy   []wire.Busy
	final  bool
	err    error
}

// handshakeAnswer reads the server's answer to a Hello or Resume,
// skipping advisory Redirect hints (the route table stays
// authoritative).
func handshakeAnswer(r *wire.Reader) (wire.Message, error) {
	for {
		m, err := r.Next()
		if err != nil {
			return nil, err
		}
		if _, isRedirect := m.(wire.Redirect); isRedirect {
			continue
		}
		return m, nil
	}
}

// exchange runs one full attempt on conn: handshake (Resume when an
// admitted session is presumed parked, Hello otherwise), stream the
// unacknowledged journal tail, and collect server frames until the
// final ack or a transport failure. It closes conn, reports whether the
// attempt advanced the session, and returns an error only for
// unrecoverable protocol violations.
func (st *state) exchange(conn net.Conn) (progress bool, fatal error) {
	defer conn.Close()
	w := wire.NewWriter(conn)
	r := wire.NewReader(conn)

	var start uint64 // journal frames the server already consumed
	skip := 0        // duplicate regenerated frames to discard (full replay)
	if st.admitted && st.canResume {
		resume := wire.Resume{DeviceID: st.hello.DeviceID, Token: st.token, Got: uint64(len(st.out))}
		if err := w.Write(resume); err != nil {
			return false, nil
		}
		m, err := handshakeAnswer(r)
		if err != nil {
			// Indistinguishable here: the server refused the resume (not
			// parked yet, expired, or disabled) or the transport died.
			// Retry the resume a bounded number of times — the backoff
			// gives a server that has not yet noticed the dead conn time
			// to park — then fall back to a full Hello replay; determinism
			// makes either path safe.
			st.resumeFails++
			if st.resumeFails > resumeRetries {
				st.canResume = false
			}
			return false, nil
		}
		if b, isBusy := m.(wire.Busy); isBusy {
			// The shard is overloaded, not gone: the parked session stays
			// presumed resumable for the post-backoff retry.
			st.noteBusy(b)
			return false, nil
		}
		ok, is := m.(wire.ResumeOK)
		if !is {
			return false, fmt.Errorf("client: resume answer is %s, want resume_ok", m.MsgType())
		}
		if ok.Got > uint64(len(st.journal)) {
			return false, fmt.Errorf("client: server consumed %d frames, session has %d", ok.Got, len(st.journal))
		}
		st.resumes++
		st.resumeFails = 0
		start = ok.Got
		if int(ok.Got) > st.maxApplied {
			st.maxApplied = int(ok.Got)
		}
	} else {
		if err := w.Write(st.hello); err != nil {
			return false, nil
		}
		m, err := handshakeAnswer(r)
		if err != nil {
			return false, nil
		}
		if b, isBusy := m.(wire.Busy); isBusy {
			st.noteBusy(b)
			return false, nil
		}
		a, is := m.(wire.Ack)
		if !is || a.Seq != 0 {
			return false, fmt.Errorf("client: admission frame is %v, want ack{0}", m)
		}
		if st.admitted {
			st.replays++
		}
		st.admitted = true
		st.canResume = true
		st.resumeFails = 0
		start = 0
		skip = len(st.out)
	}

	// The reader goroutine is the conn's only reader from here; it exits
	// on the final ack or the first read error, and the handover below
	// joins it on every path (the conn closes either way, so a blocked
	// read cannot strand it).
	done := make(chan readResult, 1)
	go func() {
		var fs []wire.Message
		var busy []wire.Busy
		toSkip := skip
		for {
			m, err := r.Next()
			if err != nil {
				done <- readResult{frames: fs, busy: busy, err: err}
				return
			}
			switch v := m.(type) {
			case wire.Busy:
				// A mid-stream Busy means the server shed an event and
				// parked the session; the conn is about to close. Control
				// frames never enter the session stream and never count
				// against the skip window.
				busy = append(busy, v)
				continue
			case wire.Redirect:
				continue
			}
			if toSkip > 0 {
				toSkip--
				continue
			}
			fs = append(fs, m)
			if _, isAck := m.(wire.Ack); isAck {
				done <- readResult{frames: fs, busy: busy, final: true}
				return
			}
		}
	}()
	var writeErr error
	for i := start; i < uint64(len(st.journal)); i++ {
		if writeErr = w.Write(st.journal[i]); writeErr != nil {
			break
		}
	}
	if writeErr != nil {
		// The transport died mid-stream; close to unblock the reader.
		conn.Close()
	}
	// With all writes delivered, the reader ends on the server's final
	// ack — or on the server's own failure closing the conn.
	res := <-done

	st.out = append(st.out, res.frames...)
	if res.final {
		st.done = true
	}
	for _, b := range res.busy {
		st.noteBusy(b)
	}
	return len(res.frames) > 0, nil
}

// stint is graceful degradation: with the server unreachable, the
// client schedules locally by replaying its whole journal through the
// same server.Replayer the server runs, suppressing the authoritative
// prefix it already holds. Every probeEvery applied events it probes
// the dialer once; a successful probe hands the live connection back to
// the reconnect loop for resume reconciliation. If no probe ever lands
// (or probing has backed off past the journal length), the stint
// completes the session entirely locally.
func (st *state) stint() (net.Conn, error) {
	st.stints++
	var t0 time.Time
	if st.cfg.Clock != nil {
		t0 = st.cfg.Clock()
	}
	defer func() {
		if st.cfg.Clock != nil {
			st.degradedTime += st.cfg.Clock().Sub(t0)
		}
	}()

	localSkip := len(st.out)
	seq := 0
	rep, err := server.NewReplayer(st.hello, st.cfg.Power, func(m wire.Message) error {
		seq++
		if seq > localSkip {
			st.out = append(st.out, m)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("client: degraded replay: %w", err)
	}
	every := st.probeEvery
	if st.probeEvery < 1<<30 {
		st.probeEvery *= 2
	}
	countdown := every
	for i, frame := range st.journal {
		if err := rep.Apply(frame); err != nil {
			return nil, fmt.Errorf("client: degraded replay: %w", err)
		}
		if i+1 > st.maxApplied {
			st.maxApplied = i + 1
			st.degradedEvents++
		}
		if rep.Done() {
			st.done = true
			st.localFinish = true
			return nil, nil
		}
		countdown--
		if countdown <= 0 {
			countdown = every
			conn, err := st.dial()
			if err == nil {
				st.reconnects++
				return conn, nil
			}
		}
	}
	return nil, fmt.Errorf("client: local replay exhausted events before finishing")
}

// outcome assembles the final Outcome from the authoritative stream.
func (st *state) outcome() (*Outcome, error) {
	o := &Outcome{
		Attempts:       st.attempts,
		Reconnects:     st.reconnects,
		Resumes:        st.resumes,
		Replays:        st.replays,
		DegradedStints: st.stints,
		DegradedEvents: st.degradedEvents,
		Degraded:       st.stints > 0,
		DegradedTime:   st.degradedTime,

		CompletedLocally: st.localFinish,

		BusyResponses:   st.busyResponses,
		BudgetExhausted: st.budgetExhausted,
		BusyWait:        st.busyWait,
	}
	sawStats := false
	for i, m := range st.out {
		switch v := m.(type) {
		case wire.Decision:
			if sawStats {
				return nil, fmt.Errorf("client: decision after stats snapshot")
			}
			o.Decisions = append(o.Decisions, v)
		case wire.StatsSnapshot:
			if v.DeviceID != st.hello.DeviceID {
				return nil, fmt.Errorf("client: stats for device %d, want %d", v.DeviceID, st.hello.DeviceID)
			}
			o.Stats = v
			sawStats = true
		case wire.Ack:
			if !sawStats || i != len(st.out)-1 {
				return nil, fmt.Errorf("client: misplaced ack in session stream")
			}
		default:
			return nil, fmt.Errorf("client: unexpected %s frame in session stream", m.MsgType())
		}
	}
	if !sawStats {
		return nil, fmt.Errorf("client: session stream has no stats snapshot")
	}
	return o, nil
}
