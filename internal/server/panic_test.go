package server

import (
	"net"
	"strings"
	"testing"
	"time"

	"etrain/internal/fleet"
	"etrain/internal/sched"
	"etrain/internal/wire"
	"etrain/internal/workload"
)

// panicStrategy explodes inside Schedule, standing in for a buggy
// scheduling policy hosted by a session.
type panicStrategy struct{}

func (panicStrategy) Name() string                                  { return "panic" }
func (panicStrategy) SlotLength() time.Duration                     { return time.Second }
func (panicStrategy) Schedule(*sched.SlotContext) []workload.Packet { panic("strategy exploded") }

// TestPanicIsolation swaps in a strategy that panics mid-slot and checks
// the blast radius: the panicking session errors out and is counted,
// while a healthy concurrent session on the same server completes.
func TestPanicIsolation(t *testing.T) {
	orig := newStrategy
	newStrategy = func(h wire.Hello) (sched.Strategy, error) {
		if h.DeviceID == 666 {
			return panicStrategy{}, nil
		}
		return orig(h)
	}
	defer func() { newStrategy = orig }()

	srv := New(Config{})

	// The doomed session: its first heartbeat advances the engine into the
	// panicking Schedule call.
	client, serverSide := net.Pipe()
	srvErr := make(chan error, 1)
	go func() { srvErr <- srv.ServeConn(serverSide) }()
	w := wire.NewWriter(client)
	r := wire.NewReader(client)
	if err := w.Write(wire.Hello{DeviceID: 666, Theta: 1, K: 2, Horizon: time.Minute}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(wire.HeartbeatObserved{At: 30 * time.Second, App: "a", Size: 1}); err != nil {
		t.Fatal(err)
	}
	err := <-srvErr
	client.Close()
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("session error %v, want recovered panic", err)
	}
	if s := srv.Stats(); s.Panics != 1 {
		t.Errorf("panics = %d, want 1 (%+v)", s.Panics, s)
	}

	// The server is still healthy: a normal session completes.
	pop := testPopulation(t)
	dev, err := fleet.SynthesizeDevice(7, pop, 0, testHorizon)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := SessionFromDevice(dev, testTheta, testK)
	if err != nil {
		t.Fatal(err)
	}
	out := driveLoopback(t, srv, sess)
	if out.Stats.DeviceID != sess.Hello.DeviceID {
		t.Errorf("survivor session stats for device %d, want %d", out.Stats.DeviceID, sess.Hello.DeviceID)
	}
	if s := srv.Stats(); s.Completed != 1 || s.Panics != 1 {
		t.Errorf("counters after panic + survivor: %+v", s)
	}
}

// panicWriteConn panics on Write, standing in for a hostile transport
// failing under the session's own goroutine (the processor writes; a
// reader-goroutine panic is out of recovery scope, which is why the
// reader does nothing beyond wire.Reader.Next, itself fuzz-proven
// panic-free on arbitrary bytes).
type panicWriteConn struct {
	net.Conn
}

func (c panicWriteConn) Write([]byte) (int, error) { panic("write path exploded") }

// TestWritePanicRecovered pins the processor-side recovery: a panicking
// Write — hit when acking the Hello — is recovered and counted.
func TestWritePanicRecovered(t *testing.T) {
	srv := New(Config{})
	client, serverSide := net.Pipe()
	defer client.Close()
	srvErr := make(chan error, 1)
	go func() { srvErr <- srv.ServeConn(panicWriteConn{Conn: serverSide}) }()
	w := wire.NewWriter(client)
	if err := w.Write(wire.Hello{Theta: 1, K: 2, Horizon: time.Minute}); err != nil {
		t.Fatal(err)
	}
	err := <-srvErr
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("session error %v, want recovered panic", err)
	}
	if s := srv.Stats(); s.Panics != 1 || s.Errored != 1 {
		t.Errorf("counters = %+v, want 1 panic, 1 errored", s)
	}
}
