// cloudsync models the paper's eTrain Cloud app: a Dropbox-style client
// that syncs large files in 100 KB chunks. Deferring each sync to the next
// heartbeat costs seconds of staleness nobody notices and saves the tail
// energy of every sync burst.
package main

import (
	"fmt"
	"log"
	"time"

	"etrain"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const horizon = 2 * time.Hour

	sys, err := etrain.NewSystem(etrain.SystemConfig{Seed: 13, Theta: 3.0})
	if err != nil {
		return err
	}
	for _, train := range etrain.DefaultTrains() {
		if err := sys.AddTrain(train); err != nil {
			return err
		}
	}

	cloud, err := sys.RegisterCargo("cloud", etrain.CloudProfile(5*time.Minute))
	if err != nil {
		return err
	}

	// Files appear every ~12 minutes; each sync submits its chunks at once.
	type file struct {
		at     time.Duration
		name   string
		chunks int
	}
	files := []file{
		{8 * time.Minute, "report.pdf", 3},
		{21 * time.Minute, "photo-001.jpg", 2},
		{33 * time.Minute, "slides.key", 4},
		{52 * time.Minute, "photo-002.jpg", 2},
		{67 * time.Minute, "backup.db", 5},
		{84 * time.Minute, "notes.md", 1},
		{101 * time.Minute, "video-clip.mp4", 6},
	}
	for _, f := range files {
		for c := 0; c < f.chunks; c++ {
			cloud.ScheduleSubmit(f.at, 100*1024)
		}
	}

	if err := sys.Run(horizon); err != nil {
		return err
	}

	energy := sys.EnergyBreakdown(horizon)
	fmt.Printf("synced %d files (%d chunks) over %v\n",
		len(files), len(sys.Delivered()), horizon)
	fmt.Printf("radio energy: %.1f J (tail %.1f J)\n", energy.Total(), energy.Tail)
	fmt.Printf("heartbeats ridden: %d observed\n\n", sys.HeartbeatsObserved())

	fmt.Println("per-chunk staleness (submit -> transmit):")
	var worst time.Duration
	for _, d := range sys.Delivered() {
		wait := d.StartedAt - d.ArrivedAt
		if wait > worst {
			worst = wait
		}
	}
	fmt.Printf("  worst chunk waited %v for its train — invisible for cloud sync,\n", worst)
	fmt.Println("  and every chunk burst shares one tail with a heartbeat instead of")
	fmt.Println("  paying ~10.4 J of tail per sync.")
	return nil
}
