package client

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"etrain/internal/faultnet"
	"etrain/internal/server"
)

// TestChaosSoak is the capstone resilience check: a fleet of devices runs
// full sessions against one shared server through a hostile transport —
// ≥10% drop and reset rates, mid-frame truncation, fragmented writes,
// refused dials — and every device must still assemble exactly the
// decision stream and stats a clean loopback run produces. Reconnect,
// resume, full replay and degraded local scheduling are all allowed
// healing paths; silent frame loss is not.
func TestChaosSoak(t *testing.T) {
	devices := 24
	if testing.Short() {
		devices = 8
	}
	inj, err := faultnet.New(faultnet.Config{
		Seed:        42,
		Drop:        0.10,
		Reset:       0.10,
		Truncate:    0.05,
		ConnectFail: 0.15,
		MaxChunk:    7,
	})
	if err != nil {
		t.Fatal(err)
	}

	goroutines := runtime.NumGoroutine()
	srv := server.New(server.Config{})
	rawDial := func() (net.Conn, error) {
		c, sconn := net.Pipe()
		go srv.ServeConn(sconn)
		return c, nil
	}

	type result struct {
		index int
		out   *Outcome
		err   error
	}
	sessions := make([]server.Session, devices)
	baselines := make([]*server.DeviceOutcome, devices)
	for i := range sessions {
		sessions[i] = testSession(t, i)
		baselines[i] = baseline(t, sessions[i])
	}

	results := make([]result, devices)
	var wg sync.WaitGroup
	for i := 0; i < devices; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := Run(Config{
				Dial:       inj.Dialer(rawDial, uint64(i)),
				Seed:       int64(i),
				RetryEvery: 4,
			}, sessions[i])
			results[i] = result{index: i, out: out, err: err}
		}(i)
	}
	wg.Wait()

	var reconnects, resumes, replays, stints int
	for i := 0; i < devices; i++ {
		r := results[i]
		if r.err != nil {
			t.Errorf("device %d: %v", i, r.err)
			continue
		}
		assertEquivalent(t, r.out, baselines[i])
		reconnects += r.out.Reconnects
		resumes += r.out.Resumes
		replays += r.out.Replays
		stints += r.out.DegradedStints
	}
	fs := inj.Stats()
	t.Logf("chaos: %d devices healed through %d drops, %d resets, %d truncations, %d refused dials: %d reconnects, %d resumes, %d replays, %d degraded stints",
		devices, fs.Drops, fs.Resets, fs.Truncations, fs.DialFails, reconnects, resumes, replays, stints)
	if fs.Drops+fs.Resets+fs.Truncations+fs.DialFails == 0 {
		t.Error("chaos run injected no faults; the soak exercised nothing")
	}
	if reconnects == 0 {
		t.Error("chaos run never reconnected; fault rates too low to exercise healing")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown after soak: %v", err)
	}
	waitFor(t, func() bool { return runtime.NumGoroutine() <= goroutines+2 },
		func() string {
			return fmt.Sprintf("goroutines leaked: %d at start, %d after shutdown", goroutines, runtime.NumGoroutine())
		})

	s := srv.Stats()
	if s.Detached != 0 {
		t.Errorf("detached sessions survived shutdown: %+v", s)
	}
}
