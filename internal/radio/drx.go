package radio

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Model is the radio-generation abstraction: the energy/state interface
// the simulator consumes, satisfied by both the paper's 3G RRC PowerModel
// and the LTE/5G DRXModel. Powers are watts above the generation's idle
// baseline (RRC-IDLE for 3G, RRC-idle/PSM for LTE/NR), energies joules.
type Model interface {
	// Validate reports whether the model's parameters are usable.
	Validate() error
	// TailTime is how long after a transmission the radio keeps drawing
	// extra power before reaching the idle baseline.
	TailTime() time.Duration
	// FullTailEnergy is the energy of one complete, uninterrupted tail.
	FullTailEnergy() float64
	// TailEnergy is the extra energy spent in a gap of the given length
	// between the end of one transmission and the start of the next.
	TailEnergy(gap time.Duration) float64
	// TransmitEnergy is the energy of actively transmitting for txTime.
	TransmitEnergy(txTime time.Duration) float64
	// TailStateAt is the radio state at the given offset after a
	// transmission ends, assuming no other transmission intervenes.
	TailStateAt(sinceTxEnd time.Duration) State
	// Power is the extra power drawn in the given state.
	Power(s State) float64
}

var (
	_ Model = PowerModel{}
	_ Model = DRXModel{}
)

// DRXModel is the LTE/5G connected-mode DRX machine: after a transmission
// the UE holds continuous reception until the inactivity timer expires,
// then duty-cycles through a burst of short DRX cycles, then long DRX
// cycles, until the network releases the RRC connection and the UE drops
// to its idle/PSM baseline (the model's zero).
//
//	power
//	 PTx ┤██ tx
//	PCont┤  ████ inactivity timer (continuous RX)
//	 POn ┤      █  █   █    █    on-durations
//	PSleep┤      ▄▄ ▄▄▄ ▄▄▄▄ ▄▄▄▄ short cycles → long cycles
//	   0 ┤                          ─── RRC release → PSM
type DRXModel struct {
	// PTx is the extra power while transmitting, in watts.
	PTx float64
	// PCont is the extra power of continuous reception while the
	// inactivity timer runs, in watts.
	PCont float64
	// POn is the extra power of a DRX on-duration, in watts.
	POn float64
	// PSleep is the extra power of connected-mode DRX sleep (light
	// sleep: RF off, RRC context live), in watts.
	PSleep float64
	// InactivityTimer is how long continuous reception lasts after the
	// last transmission before DRX cycling starts.
	InactivityTimer time.Duration
	// ShortCycle is the short DRX cycle length; ShortCycles is how many
	// short cycles run before falling back to the long cycle.
	ShortCycle  time.Duration
	ShortCycles int
	// LongCycle is the long DRX cycle length, used until RRC release.
	LongCycle time.Duration
	// OnDuration is the awake span at the start of every DRX cycle.
	OnDuration time.Duration
	// ReleaseAfter is the RRC release timer: the offset after the last
	// transmission at which the connection drops to the idle baseline.
	ReleaseAfter time.Duration
}

// shortSpan returns the total length of the short-cycle burst.
func (m DRXModel) shortSpan() time.Duration {
	return time.Duration(m.ShortCycles) * m.ShortCycle
}

// Validate reports whether the model's parameters are usable. The power
// ordering PTx ≥ PCont ≥ POn ≥ PSleep ≥ 0 is what makes tail energy
// monotone in the inactivity timer (property-tested): lengthening the
// timer replaces duty-cycled time with continuous reception, which can
// only cost more.
func (m DRXModel) Validate() error {
	if m.PTx <= 0 {
		return fmt.Errorf("radio: non-positive DRX transmit power %v", m.PTx)
	}
	if !(m.PTx >= m.PCont && m.PCont >= m.POn && m.POn >= m.PSleep && m.PSleep >= 0) {
		return fmt.Errorf("radio: DRX powers must satisfy PTx ≥ PCont ≥ POn ≥ PSleep ≥ 0 (got %v ≥ %v ≥ %v ≥ %v)",
			m.PTx, m.PCont, m.POn, m.PSleep)
	}
	if m.InactivityTimer < 0 {
		return fmt.Errorf("radio: negative DRX inactivity timer %v", m.InactivityTimer)
	}
	if m.ShortCycles < 0 {
		return fmt.Errorf("radio: negative DRX short-cycle count %d", m.ShortCycles)
	}
	if m.ShortCycles > 0 && m.ShortCycle <= 0 {
		return fmt.Errorf("radio: non-positive DRX short cycle %v with %d short cycles", m.ShortCycle, m.ShortCycles)
	}
	if m.LongCycle <= 0 {
		return fmt.Errorf("radio: non-positive DRX long cycle %v", m.LongCycle)
	}
	if m.OnDuration <= 0 {
		return fmt.Errorf("radio: non-positive DRX on-duration %v", m.OnDuration)
	}
	if m.OnDuration > m.LongCycle || (m.ShortCycles > 0 && m.OnDuration > m.ShortCycle) {
		return fmt.Errorf("radio: DRX on-duration %v exceeds a cycle (short %v, long %v)",
			m.OnDuration, m.ShortCycle, m.LongCycle)
	}
	if m.ReleaseAfter < m.InactivityTimer+m.shortSpan() {
		return fmt.Errorf("radio: DRX release timer %v shorter than inactivity+short span %v",
			m.ReleaseAfter, m.InactivityTimer+m.shortSpan())
	}
	return nil
}

// TailTime returns the RRC release timer: past it the radio sits at the
// idle baseline.
func (m DRXModel) TailTime() time.Duration { return m.ReleaseAfter }

// dutyEnergy integrates the duty-cycled power over a span of cycling with
// the given cycle length, starting at a cycle boundary.
func (m DRXModel) dutyEnergy(span, cycle time.Duration) float64 {
	if span <= 0 || cycle <= 0 {
		return 0
	}
	perCycle := m.POn*m.OnDuration.Seconds() + m.PSleep*(cycle-m.OnDuration).Seconds()
	full := span / cycle
	e := float64(full) * perCycle
	rem := span - full*cycle
	on := rem
	if on > m.OnDuration {
		on = m.OnDuration
	}
	e += m.POn*on.Seconds() + m.PSleep*(rem-on).Seconds()
	return e
}

// TailEnergy returns the extra energy spent in a gap between the end of
// one transmission and the start of the next: continuous reception while
// the inactivity timer runs, then short-cycle DRX, then long-cycle DRX,
// cut off at the RRC release timer.
func (m DRXModel) TailEnergy(gap time.Duration) float64 {
	if gap <= 0 {
		return 0
	}
	if gap > m.ReleaseAfter {
		gap = m.ReleaseAfter
	}
	cont := gap
	if cont > m.InactivityTimer {
		cont = m.InactivityTimer
	}
	e := m.PCont * cont.Seconds()
	if gap <= m.InactivityTimer {
		return e
	}
	short := gap - m.InactivityTimer
	if span := m.shortSpan(); short > span {
		short = span
	}
	e += m.dutyEnergy(short, m.ShortCycle)
	long := gap - m.InactivityTimer - m.shortSpan()
	if long > 0 {
		e += m.dutyEnergy(long, m.LongCycle)
	}
	return e
}

// FullTailEnergy returns the energy of one complete tail, through RRC
// release.
func (m DRXModel) FullTailEnergy() float64 { return m.TailEnergy(m.ReleaseAfter) }

// TransmitEnergy returns the energy of actively transmitting for txTime.
func (m DRXModel) TransmitEnergy(txTime time.Duration) float64 {
	if txTime <= 0 {
		return 0
	}
	return m.PTx * txTime.Seconds()
}

// TailStateAt returns the radio state at the given offset after a
// transmission ends, assuming no other transmission intervenes.
func (m DRXModel) TailStateAt(sinceTxEnd time.Duration) State {
	t := sinceTxEnd
	switch {
	case t < 0:
		return StateTransmitting
	case t < m.InactivityTimer:
		return StateDRXActive
	case t >= m.ReleaseAfter:
		return StatePSM
	}
	shortEnd := m.InactivityTimer + m.shortSpan()
	var inCycle time.Duration
	if t < shortEnd {
		inCycle = (t - m.InactivityTimer) % m.ShortCycle
	} else {
		inCycle = (t - shortEnd) % m.LongCycle
	}
	if inCycle < m.OnDuration {
		return StateDRXOn
	}
	return StateDRXSleep
}

// Power returns the extra power drawn in the given state.
func (m DRXModel) Power(s State) float64 {
	switch s {
	case StateTransmitting:
		return m.PTx
	case StateDRXActive:
		return m.PCont
	case StateDRXOn:
		return m.POn
	case StateDRXSleep:
		return m.PSleep
	default:
		return 0
	}
}

// LTEDRX returns an LTE cDRX model assembled from the MobiSys'12 LTE
// power measurements (≈1.2 W transmit, ≈1.06 W continuous reception,
// ≈1 W on-duration, ≈0.4 W light sleep) with 3GPP-typical timers: 200 ms
// inactivity, 16 short cycles of 80 ms (20 ms on), 320 ms long cycles,
// RRC release ≈11.5 s after the last transmission. One full tail costs
// ≈5.3 J — about half the Galaxy S4's 3G tail, which is the
// cross-generation comparison fig-diurnal quantifies.
func LTEDRX() DRXModel {
	return DRXModel{
		PTx:             FromMilliwatts(1210),
		PCont:           FromMilliwatts(1060),
		POn:             FromMilliwatts(1000),
		PSleep:          FromMilliwatts(400),
		InactivityTimer: 200 * time.Millisecond,
		ShortCycle:      80 * time.Millisecond,
		ShortCycles:     16,
		LongCycle:       320 * time.Millisecond,
		OnDuration:      20 * time.Millisecond,
		ReleaseAfter:    11480 * time.Millisecond,
	}
}

// NR5GDRX returns a 5G NR cDRX model: hotter peaks than LTE but much
// deeper sleep and a shorter release timer, so one full tail costs ≈2 J.
func NR5GDRX() DRXModel {
	return DRXModel{
		PTx:             FromMilliwatts(1350),
		PCont:           FromMilliwatts(1200),
		POn:             FromMilliwatts(1100),
		PSleep:          FromMilliwatts(250),
		InactivityTimer: 100 * time.Millisecond,
		ShortCycle:      40 * time.Millisecond,
		ShortCycles:     8,
		LongCycle:       160 * time.Millisecond,
		OnDuration:      8 * time.Millisecond,
		ReleaseAfter:    6420 * time.Millisecond,
	}
}

// modelsByName maps radio-generation names (as used by -radio flags and
// scenario documents) to model constructors; aliases share an entry.
var modelsByName = []struct {
	name    string
	aliases []string
	build   func() Model
}{
	{"3g", []string{"3g-rrc"}, func() Model { return GalaxyS43G() }},
	{"lte", nil, func() Model { return LTE() }},
	{"lte-drx", nil, func() Model { return LTEDRX() }},
	{"nr-drx", []string{"5g-drx"}, func() Model { return NR5GDRX() }},
	{"wifi", nil, func() Model { return WiFi() }},
}

// ModelByName resolves a radio-generation name ("3g", "lte", "lte-drx",
// "nr-drx", "wifi", plus aliases "3g-rrc" and "5g-drx") to its model.
func ModelByName(name string) (Model, error) {
	for _, e := range modelsByName {
		if e.name == name {
			return e.build(), nil
		}
		for _, a := range e.aliases {
			if a == name {
				return e.build(), nil
			}
		}
	}
	return nil, fmt.Errorf("radio: unknown model %q (want %s)", name, strings.Join(ModelNames(), ", "))
}

// ModelNames lists the canonical radio-model names in sorted order.
func ModelNames() []string {
	names := make([]string, len(modelsByName))
	for i, e := range modelsByName {
		names[i] = e.name
	}
	sort.Strings(names)
	return names
}
