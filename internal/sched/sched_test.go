package sched

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"etrain/internal/profile"
	"etrain/internal/workload"
)

func pkt(id int, app string, arrived time.Duration) workload.Packet {
	return workload.Packet{
		ID:        id,
		App:       app,
		ArrivedAt: arrived,
		Size:      1000,
		Profile:   profile.Weibo(30 * time.Second),
	}
}

func TestAddAndLen(t *testing.T) {
	q := NewQueues()
	q.Add(pkt(1, "a", 0))
	q.Add(pkt(2, "b", time.Second))
	q.Add(pkt(3, "a", 2*time.Second))
	if q.Len() != 3 {
		t.Fatalf("Len = %d, want 3", q.Len())
	}
	if q.AppLen("a") != 2 || q.AppLen("b") != 1 {
		t.Fatalf("AppLen a=%d b=%d", q.AppLen("a"), q.AppLen("b"))
	}
}

func TestAppsRegistrationOrder(t *testing.T) {
	q := NewQueues()
	q.Add(pkt(1, "zeta", 0))
	q.Add(pkt(2, "alpha", 0))
	q.Add(pkt(3, "zeta", 0))
	apps := q.Apps()
	if len(apps) != 2 || apps[0] != "zeta" || apps[1] != "alpha" {
		t.Fatalf("Apps = %v, want [zeta alpha] (registration order)", apps)
	}
}

func TestEachDeterministicOrder(t *testing.T) {
	q := NewQueues()
	q.Add(pkt(1, "b", 0))
	q.Add(pkt(2, "a", 0))
	q.Add(pkt(3, "b", time.Second))
	var ids []int
	q.Each(func(p workload.Packet) { ids = append(ids, p.ID) })
	want := []int{1, 3, 2}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("Each order = %v, want %v", ids, want)
		}
	}
}

func TestPopByID(t *testing.T) {
	q := NewQueues()
	q.Add(pkt(1, "a", 0))
	q.Add(pkt(2, "a", time.Second))
	q.Add(pkt(3, "a", 2*time.Second))
	p, ok := q.PopByID("a", 2)
	if !ok || p.ID != 2 {
		t.Fatalf("PopByID = %+v ok=%v", p, ok)
	}
	if q.AppLen("a") != 2 {
		t.Fatalf("AppLen after pop = %d", q.AppLen("a"))
	}
	if _, ok := q.PopByID("a", 2); ok {
		t.Fatal("popped packet 2 twice")
	}
	if _, ok := q.PopByID("missing", 1); ok {
		t.Fatal("popped from unknown app")
	}
	// Remaining order preserved.
	pkts := q.Packets("a")
	if pkts[0].ID != 1 || pkts[1].ID != 3 {
		t.Fatalf("remaining order = %v, %v", pkts[0].ID, pkts[1].ID)
	}
}

func TestPopHead(t *testing.T) {
	q := NewQueues()
	if _, ok := q.PopHead("a"); ok {
		t.Fatal("popped from empty queue")
	}
	q.Add(pkt(1, "a", 0))
	q.Add(pkt(2, "a", time.Second))
	p, ok := q.PopHead("a")
	if !ok || p.ID != 1 {
		t.Fatalf("PopHead = %+v", p)
	}
}

func TestPacketsReturnsCopy(t *testing.T) {
	q := NewQueues()
	q.Add(pkt(1, "a", 0))
	pkts := q.Packets("a")
	pkts[0].ID = 999
	if q.Packets("a")[0].ID == 999 {
		t.Fatal("Packets leaked internal state")
	}
}

func TestCostAt(t *testing.T) {
	q := NewQueues()
	// Weibo profile: cost = d/30s up to 1.
	q.Add(pkt(1, "a", 0))
	q.Add(pkt(2, "b", 0))
	got := q.CostAt(15 * time.Second)
	if math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("CostAt = %v, want 1.0 (2 × 0.5)", got)
	}
	if got := q.AppCostAt("a", 15*time.Second); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("AppCostAt = %v, want 0.5", got)
	}
}

func TestSpeculativeCost(t *testing.T) {
	q := NewQueues()
	q.Add(pkt(1, "a", 0))
	spec := q.SpeculativeAppCostAt("a", 16*time.Second)
	now := q.AppCostAt("a", 15*time.Second)
	if spec <= now {
		t.Fatalf("speculative cost %v should exceed current %v", spec, now)
	}
}

func TestOldest(t *testing.T) {
	q := NewQueues()
	if _, ok := q.Oldest(); ok {
		t.Fatal("Oldest on empty queues")
	}
	q.Add(pkt(1, "a", 5*time.Second))
	q.Add(pkt(2, "b", 2*time.Second))
	q.Add(pkt(3, "a", 9*time.Second))
	p, ok := q.Oldest()
	if !ok || p.ID != 2 {
		t.Fatalf("Oldest = %+v", p)
	}
}

func TestValidateSelection(t *testing.T) {
	good := []workload.Packet{pkt(1, "a", 0), pkt(2, "a", 0)}
	if err := ValidateSelection(good); err != nil {
		t.Fatal(err)
	}
	dup := []workload.Packet{pkt(1, "a", 0), pkt(1, "a", 0)}
	if err := ValidateSelection(dup); err == nil {
		t.Fatal("duplicate selection validated")
	}
}

// Property: packets added then popped one by one conserve the population.
func TestConservationProperty(t *testing.T) {
	prop := func(ids []uint8) bool {
		q := NewQueues()
		seen := make(map[int]bool)
		added := 0
		for _, raw := range ids {
			id := int(raw)
			if seen[id] {
				continue
			}
			seen[id] = true
			q.Add(pkt(id, "app", time.Duration(id)*time.Second))
			added++
		}
		popped := 0
		for {
			if _, ok := q.PopHead("app"); !ok {
				break
			}
			popped++
		}
		return popped == added && q.Len() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
