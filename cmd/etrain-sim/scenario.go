package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"etrain/internal/scenario"
)

// scenarioMain dispatches the scenario subcommands:
//
//	etrain-sim run <file>       execute a scenario and print its report
//	etrain-sim validate <file>  parse + validate scenario files
//	etrain-sim gen              synthesize a stress scenario
func scenarioMain(cmd string, args []string, stdout io.Writer) error {
	switch cmd {
	case "run":
		return cmdRun(args, stdout)
	case "validate":
		return cmdValidate(args, stdout)
	case "gen":
		return cmdGen(args, stdout)
	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

// errAssertFailed marks a run whose assertions failed: the report still
// printed, but the process must exit non-zero.
type errAssertFailed struct{ name string }

func (e errAssertFailed) Error() string {
	return fmt.Sprintf("scenario %s: assertions failed", e.name)
}

func cmdRun(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	workers := fs.Int("workers", -1, "device workers (-1 = one per CPU, 0/1 = sequential); never changes the report")
	jsonOut := fs.Bool("json", false, "emit the report as JSON instead of text")
	theta := fs.Float64("theta", -1, "override the scenario's Θ (≥ 0; negative = use the scenario's)")
	timeScale := fs.Float64("time-scale", 0, "override every diurnal_profile's time scale (0 = use the scenario's)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: etrain-sim run [flags] <scenario-file>")
	}
	path := fs.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	s, err := scenario.Parse(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if *theta >= 0 {
		t := *theta
		s.Theta = &t
	}
	if *timeScale != 0 {
		overridden := false
		for i := range s.Timeline {
			if s.Timeline[i].Action == scenario.ActionDiurnalProfile {
				s.Timeline[i].TimeScale = *timeScale
				overridden = true
			}
		}
		if !overridden {
			return fmt.Errorf("%s: -time-scale set but the scenario declares no diurnal_profile", path)
		}
	}
	rep, err := scenario.Run(s, scenario.Options{Workers: *workers})
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if *jsonOut {
		b, err := rep.EncodeJSON()
		if err != nil {
			return err
		}
		if _, err := stdout.Write(b); err != nil {
			return err
		}
	} else if err := rep.Fprint(stdout); err != nil {
		return err
	}
	if !rep.Pass {
		return errAssertFailed{name: rep.Scenario}
	}
	return nil
}

func cmdValidate(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("validate", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: etrain-sim validate <scenario-file>...")
	}
	failed := 0
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err == nil {
			var s *scenario.Scenario
			if s, err = scenario.Parse(data); err == nil {
				err = s.Validate()
				if err == nil {
					var hash string
					if hash, err = s.ConfigHash(); err == nil {
						fmt.Fprintf(stdout, "%s: ok name=%s devices=%d events=%d hash=%s\n",
							path, s.Name, s.Fleet.Devices, len(s.Timeline), hash)
						continue
					}
				}
			}
		}
		failed++
		fmt.Fprintf(stdout, "%s: INVALID: %v\n", path, err)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d scenario files invalid", failed, len(fs.Args()))
	}
	return nil
}

func cmdGen(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "generator seed")
	devices := fs.Int("devices", 16, "fleet size")
	events := fs.Int("events", 8, "timeline length")
	engine := fs.String("engine", "loopback", "direct | loopback")
	doRun := fs.Bool("run", false, "execute the generated scenario instead of printing it")
	workers := fs.Int("workers", -1, "device workers for -run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("usage: etrain-sim gen [flags]")
	}
	s, err := scenario.Generate(scenario.GenConfig{
		Seed: *seed, Devices: *devices, Events: *events, Engine: *engine,
	})
	if err != nil {
		return err
	}
	if !*doRun {
		b, err := s.EncodeJSON()
		if err != nil {
			return err
		}
		_, err = stdout.Write(b)
		return err
	}
	rep, err := scenario.Run(s, scenario.Options{Workers: *workers})
	if err != nil {
		return err
	}
	if err := rep.Fprint(stdout); err != nil {
		return err
	}
	if !rep.Pass {
		return errAssertFailed{name: rep.Scenario}
	}
	return nil
}
