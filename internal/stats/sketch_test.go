package stats

import (
	"encoding/json"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"etrain/internal/randx"
)

func newTestSketch(t *testing.T, alpha float64) *Sketch {
	t.Helper()
	s, err := NewSketch(alpha)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sketchOf(samples []float64) *Sketch {
	s := newSketch(DefaultSketchAlpha)
	for _, v := range samples {
		s.Add(v)
	}
	return s
}

// sketchBytes serializes a sketch canonically; two sketches are
// state-equal iff their bytes are equal (buckets serialize in sorted
// index order).
func sketchBytes(t *testing.T, s *Sketch) string {
	t.Helper()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestNewSketchValidatesAlpha(t *testing.T) {
	for _, alpha := range []float64{0, 1, -0.1, 1.5} {
		if _, err := NewSketch(alpha); err == nil {
			t.Errorf("alpha %v accepted", alpha)
		}
	}
}

func TestSketchEmptyQuantile(t *testing.T) {
	s := newTestSketch(t, DefaultSketchAlpha)
	if _, err := s.Quantile(50); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

// TestSketchMergeAssociativeAndCommutative is the satellite's
// associativity property, and it holds bit-exactly: the sketch state is
// integer counts on a fixed grid, so (A⊕B)⊕C, A⊕(B⊕C) and any
// permutation all land in the same state.
func TestSketchMergeAssociativeAndCommutative(t *testing.T) {
	prop := func(seedA, seedB, seedC int64, nA, nB, nC uint8) bool {
		a1 := sketchOf(sampleSet(seedA, int(nA)))
		b1 := sketchOf(sampleSet(seedB, int(nB)))
		c1 := sketchOf(sampleSet(seedC, int(nC)))
		a2 := sketchOf(sampleSet(seedA, int(nA)))
		b2 := sketchOf(sampleSet(seedB, int(nB)))
		c2 := sketchOf(sampleSet(seedC, int(nC)))

		// left = (A⊕B)⊕C
		if err := a1.Merge(b1); err != nil {
			return false
		}
		if err := a1.Merge(c1); err != nil {
			return false
		}
		// right = A⊕(B⊕C), merged into C in reverse order to cover
		// commutativity too.
		if err := c2.Merge(b2); err != nil {
			return false
		}
		if err := c2.Merge(a2); err != nil {
			return false
		}
		return sketchBytes(t, a1) == sketchBytes(t, c2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSketchInsertionOrderInvariant: the state is a pure function of the
// inserted multiset — reversing the insertion order changes nothing.
func TestSketchInsertionOrderInvariant(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		samples := sampleSet(seed, int(n))
		forward := sketchOf(samples)
		backward := newSketch(DefaultSketchAlpha)
		for i := len(samples) - 1; i >= 0; i-- {
			backward.Add(samples[i])
		}
		return sketchBytes(t, forward) == sketchBytes(t, backward)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSketchQuantileWithinRankErrorBound verifies the accuracy contract
// against an exact sort on small inputs: the estimate's bucket contains
// the exact nearest-rank sample, so the estimate is within relative Alpha
// of it (plus the zero-bucket threshold for near-zero values).
func TestSketchQuantileWithinRankErrorBound(t *testing.T) {
	percentiles := []float64{0, 1, 10, 25, 50, 75, 90, 99, 100}
	prop := func(seed int64, n uint8) bool {
		samples := sampleSet(seed, int(n)+1)
		s := sketchOf(samples)
		for _, p := range percentiles {
			got, err := s.Quantile(p)
			if err != nil {
				return false
			}
			exact, err := Percentile(samples, p)
			if err != nil {
				return false
			}
			tol := s.Alpha()*math.Abs(exact) + sketchZeroThreshold
			if math.Abs(got-exact) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSketchShardedMergeMatchesSingleSketch: splitting the samples into
// consecutive shards, sketching each and merging in shard-index order is
// state-identical to one sketch over everything — the fleet engine's
// memory-bounded path loses nothing.
func TestSketchShardedMergeMatchesSingleSketch(t *testing.T) {
	prop := func(seed int64, n uint8, shardSeed int64) bool {
		samples := sampleSet(seed, int(n)+1)
		whole := sketchOf(samples)
		shards := shardBoundaries(shardSeed, len(samples))
		merged := newSketch(DefaultSketchAlpha)
		for s := 0; s+1 < len(shards); s++ {
			if err := merged.Merge(sketchOf(samples[shards[s]:shards[s+1]])); err != nil {
				return false
			}
		}
		return sketchBytes(t, whole) == sketchBytes(t, merged)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSketchMergeRejectsAlphaMismatch(t *testing.T) {
	a := newTestSketch(t, 0.01)
	b := newTestSketch(t, 0.02)
	b.Add(1)
	if err := a.Merge(b); err == nil {
		t.Fatal("alpha mismatch accepted")
	}
}

func TestSketchJSONRoundTrip(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		s := sketchOf(sampleSet(seed, int(n)))
		data, err := json.Marshal(s)
		if err != nil {
			return false
		}
		var back Sketch
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		again, err := json.Marshal(&back)
		if err != nil {
			return false
		}
		return string(data) == string(again)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSketchUnmarshalRejectsInconsistentCounts(t *testing.T) {
	var s Sketch
	bad := `{"alpha":0.01,"count":5,"zero":1,"pos":[{"i":3,"c":2}]}`
	if err := json.Unmarshal([]byte(bad), &s); err == nil {
		t.Fatal("inconsistent bucket sum accepted")
	}
}

func TestSketchRandomizedAgainstExactMedian(t *testing.T) {
	src := randx.New(11)
	samples := make([]float64, 5000)
	for i := range samples {
		samples[i] = src.Normal(100, 25)
	}
	s := sketchOf(samples)
	got, err := s.Quantile(50)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Percentile(samples, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-exact) > s.Alpha()*math.Abs(exact)+sketchZeroThreshold {
		t.Fatalf("median %v vs exact %v beyond alpha bound", got, exact)
	}
}
