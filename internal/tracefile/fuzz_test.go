package tracefile

import (
	"strings"
	"testing"
)

// The fuzz targets assert parser robustness: arbitrary input must either
// parse into structurally valid records or fail with an error — never
// panic, never yield inconsistent data. `go test` runs the seed corpus;
// `go test -fuzz=Fuzz...` explores further.

// FuzzParseTrace drives every tracefile parser with the same input: none
// may panic, and whichever ones accept the bytes must uphold their
// structural invariants (ordered timelines, positive bandwidth floor,
// named behaviors). Beyond the f.Add seeds below, a corpus of
// format-confusing inputs — each valid for one parser, garbage for the
// others — is checked in under testdata/fuzz/FuzzParseTrace.
func FuzzParseTrace(f *testing.F) {
	f.Add("user_id,behavior,time_s,size_bytes\nu1,upload,1.5,2048\n")
	f.Add("start_s,duration_s,size_bytes,kind,app\n1.0,0.1,74,heartbeat,wechat\n")
	f.Add("1000\n2000\n3000\n")
	f.Add("")
	f.Add("\xff\xfe\x00")
	f.Add("1e309\n")         // overflows float64
	f.Add("Inf\n-Inf\nNaN\n") // parse as floats, must be rejected as samples
	f.Fuzz(func(t *testing.T, input string) {
		if records, err := ReadUserTrace(strings.NewReader(input)); err == nil {
			for i, r := range records {
				if r.Behavior.String() == "" {
					t.Fatalf("user trace record %d has empty behavior", i)
				}
			}
		}
		if tl, err := ReadTransmissionLog(strings.NewReader(input)); err == nil {
			txs := tl.Transmissions()
			for i := 1; i < len(txs); i++ {
				if txs[i].Start < txs[i-1].End() {
					t.Fatalf("transmission log overlaps at %d", i)
				}
			}
		}
		if trace, err := ReadBandwidthTrace(strings.NewReader(input)); err == nil {
			if trace.Min() <= 0 {
				t.Fatalf("bandwidth trace has non-positive minimum %v", trace.Min())
			}
		}
	})
}

func FuzzReadUserTrace(f *testing.F) {
	f.Add("user_id,behavior,time_s,size_bytes\nu1,upload,1.5,2048\n")
	f.Add("user_id,behavior,time_s,size_bytes\nu1,browse,0.0,0\nu2,download,9.25,512\n")
	f.Add("")
	f.Add("garbage")
	f.Add("user_id,behavior,time_s,size_bytes\nu1,teleport,1.0,10\n")
	f.Add("user_id,behavior,time_s,size_bytes\nu1,upload,NaN,10\n")
	f.Fuzz(func(t *testing.T, input string) {
		records, err := ReadUserTrace(strings.NewReader(input))
		if err != nil {
			return
		}
		for i, r := range records {
			if r.Behavior.String() == "" {
				t.Fatalf("record %d has empty behavior", i)
			}
		}
	})
}

func FuzzReadTransmissionLog(f *testing.F) {
	f.Add("start_s,duration_s,size_bytes,kind,app\n1.0,0.1,74,heartbeat,wechat\n")
	f.Add("start_s,duration_s,size_bytes,kind,app\n1.0,0.1,74,heartbeat,wechat\n0.5,0.1,74,data,x\n")
	f.Add("")
	f.Add("start_s,duration_s,size_bytes,kind,app\n-1,-1,-1,data,x\n")
	f.Fuzz(func(t *testing.T, input string) {
		tl, err := ReadTransmissionLog(strings.NewReader(input))
		if err != nil {
			return
		}
		// A successfully parsed timeline must be serialized and ordered.
		txs := tl.Transmissions()
		for i := 1; i < len(txs); i++ {
			if txs[i].Start < txs[i-1].End() {
				t.Fatalf("parsed timeline overlaps at %d", i)
			}
		}
	})
}

func FuzzReadBandwidthTrace(f *testing.F) {
	f.Add("1000\n2000\n3000\n")
	f.Add("")
	f.Add("abc\n")
	f.Add("-500\n")
	f.Fuzz(func(t *testing.T, input string) {
		trace, err := ReadBandwidthTrace(strings.NewReader(input))
		if err != nil {
			return
		}
		// Parsed traces must have strictly positive samples (the floor).
		if trace.Min() <= 0 {
			t.Fatalf("parsed trace has non-positive minimum %v", trace.Min())
		}
	})
}
