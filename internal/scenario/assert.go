package scenario

import (
	"fmt"

	"etrain/internal/stats"
	"etrain/internal/workload"
)

// Metric names an assertion can observe. Per-class metrics accept a
// class scope; transport metrics are fleet-wide (class "all" only) and
// read 0 under the direct engine, where no transport exists to fail.
var (
	classMetrics = []string{
		"devices",
		"saving_mean", "saving_p10", "saving_p50", "saving_p90",
		"saved_j_mean", "saved_j_p50",
		"energy_with_mean", "energy_without_mean",
		"delay_mean", "delay_p50", "delay_p90", "delay_p99",
		"violation_mean",
	}
	fleetMetrics = []string{
		"sessions_failed", "degraded_sessions", "degraded_rate",
		"unreconciled_sessions", "unreconciled_rate",
		"decision_loss", "reconnects", "resumes", "replays", "restarts",
		"busy_responses", "retry_budget_exhausted",
	}
)

// validateAssertion checks one predicate's metric, scope and bounds.
func validateAssertion(a Assertion, mix []workload.ClassShare) error {
	isClass := contains(classMetrics, a.Metric)
	isFleet := contains(fleetMetrics, a.Metric)
	if !isClass && !isFleet {
		return fmt.Errorf("unknown metric %q", a.Metric)
	}
	switch {
	case a.Class == "" || a.Class == "all":
	case isFleet:
		return fmt.Errorf("metric %s is fleet-wide; class %q not allowed", a.Metric, a.Class)
	default:
		class, err := workload.ParseClass(a.Class)
		if err != nil {
			return err
		}
		found := false
		for _, s := range mix {
			if s.Class == class {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("class %q is not in the fleet mix", a.Class)
		}
	}
	if a.Min == nil && a.Max == nil {
		return fmt.Errorf("metric %s: at least one of min/max is required", a.Metric)
	}
	if bad(a.Min) || bad(a.Max) {
		return fmt.Errorf("metric %s: min/max must be finite", a.Metric)
	}
	if a.Min != nil && a.Max != nil && *a.Min > *a.Max {
		return fmt.Errorf("metric %s: min %g exceeds max %g", a.Metric, *a.Min, *a.Max)
	}
	return nil
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

func bad(v *float64) bool {
	if v == nil {
		return false
	}
	return *v != *v || *v > 1e308 || *v < -1e308
}

// classAgg folds per-device outcomes of one class (or the whole fleet)
// into mergeable moments and quantile sketches.
type classAgg struct {
	devices  int
	withoutJ stats.Moments
	withJ    stats.Moments
	savedJ   stats.Moments
	saving   stats.Moments
	delay    stats.Moments
	violate  stats.Moments

	savingSketch *stats.Sketch
	savedSketch  *stats.Sketch
	delaySketch  *stats.Sketch
}

func newClassAgg() (*classAgg, error) {
	a := &classAgg{}
	var err error
	if a.savingSketch, err = stats.NewSketch(stats.DefaultSketchAlpha); err != nil {
		return nil, err
	}
	if a.savedSketch, err = stats.NewSketch(stats.DefaultSketchAlpha); err != nil {
		return nil, err
	}
	if a.delaySketch, err = stats.NewSketch(stats.DefaultSketchAlpha); err != nil {
		return nil, err
	}
	return a, nil
}

// add folds one device outcome.
func (a *classAgg) add(o *deviceResult) {
	a.devices++
	a.withoutJ.Add(o.withoutJ)
	a.withJ.Add(o.withJ)
	saved := o.withoutJ - o.withJ
	a.savedJ.Add(saved)
	saving := 0.0
	if o.withoutJ > 0 {
		saving = saved / o.withoutJ
	}
	a.saving.Add(saving)
	a.delay.Add(o.delayS)
	a.violate.Add(o.violation)
	a.savingSketch.Add(saving)
	a.savedSketch.Add(saved)
	a.delaySketch.Add(o.delayS)
}

// transportTally counts the loopback engine's healing outcomes. Under
// the direct engine it stays zero.
type transportTally struct {
	failed       int // sessions that died on a protocol/engine error
	degraded     int // sessions that fell back to local scheduling
	unreconciled int // degraded sessions that finished locally, never reconciling
	decisionLoss int // sessions whose stream diverged from the local replay
	reconnects   int
	resumes      int
	replays      int
	restarts     int // devices whose connection the server_restart cut killed
	busy         int // wire.Busy frames received (hello refusals and cargo sheds)
	exhausted    int // busy-retry budget exhaustions across the fleet
}

// outcomeSet is everything assertions (and the report) observe:
// per-class and fleet-wide aggregates plus the transport tally.
type outcomeSet struct {
	labels  []string // mix-order class labels
	byClass []*classAgg
	total   *classAgg
	tally   transportTally
	devices int
}

func newOutcomeSet(mix []workload.ClassShare) (*outcomeSet, error) {
	set := &outcomeSet{}
	var err error
	if set.total, err = newClassAgg(); err != nil {
		return nil, err
	}
	for _, s := range mix {
		set.labels = append(set.labels, s.Class.String())
		agg, err := newClassAgg()
		if err != nil {
			return nil, err
		}
		set.byClass = append(set.byClass, agg)
	}
	return set, nil
}

// add folds one device outcome in index order.
func (set *outcomeSet) add(o *deviceResult) error {
	set.devices++
	if o.failed {
		set.tally.failed++
		return nil
	}
	if o.classIndex < 0 || o.classIndex >= len(set.byClass) {
		return fmt.Errorf("scenario: device class index %d outside mix", o.classIndex)
	}
	set.byClass[o.classIndex].add(o)
	set.total.add(o)
	if o.degraded {
		set.tally.degraded++
	}
	if o.unreconciled {
		set.tally.unreconciled++
	}
	if o.decisionLoss {
		set.tally.decisionLoss++
	}
	set.tally.reconnects += o.reconnects
	set.tally.resumes += o.resumes
	set.tally.replays += o.replays
	set.tally.busy += o.busy
	set.tally.exhausted += o.exhausted
	if o.restarted {
		set.tally.restarts++
	}
	return nil
}

// agg resolves an assertion's class scope.
func (set *outcomeSet) agg(class string) (*classAgg, error) {
	if class == "" || class == "all" {
		return set.total, nil
	}
	for i, label := range set.labels {
		if label == class {
			return set.byClass[i], nil
		}
	}
	return nil, fmt.Errorf("class %q is not in the fleet mix", class)
}

// metric evaluates one named observation.
func (set *outcomeSet) metric(name, class string) (float64, error) {
	if contains(fleetMetrics, name) {
		t := set.tally
		switch name {
		case "sessions_failed":
			return float64(t.failed), nil
		case "degraded_sessions":
			return float64(t.degraded), nil
		case "degraded_rate":
			return rate(t.degraded, set.devices), nil
		case "unreconciled_sessions":
			return float64(t.unreconciled), nil
		case "unreconciled_rate":
			return rate(t.unreconciled, set.devices), nil
		case "decision_loss":
			return float64(t.decisionLoss), nil
		case "reconnects":
			return float64(t.reconnects), nil
		case "resumes":
			return float64(t.resumes), nil
		case "replays":
			return float64(t.replays), nil
		case "restarts":
			return float64(t.restarts), nil
		case "busy_responses":
			return float64(t.busy), nil
		case "retry_budget_exhausted":
			return float64(t.exhausted), nil
		}
	}
	a, err := set.agg(class)
	if err != nil {
		return 0, err
	}
	switch name {
	case "devices":
		return float64(a.devices), nil
	case "saving_mean":
		return mean(a.saving)
	case "saving_p10":
		return a.savingSketch.Quantile(10)
	case "saving_p50":
		return a.savingSketch.Quantile(50)
	case "saving_p90":
		return a.savingSketch.Quantile(90)
	case "saved_j_mean":
		return mean(a.savedJ)
	case "saved_j_p50":
		return a.savedSketch.Quantile(50)
	case "energy_with_mean":
		return mean(a.withJ)
	case "energy_without_mean":
		return mean(a.withoutJ)
	case "delay_mean":
		return mean(a.delay)
	case "delay_p50":
		return a.delaySketch.Quantile(50)
	case "delay_p90":
		return a.delaySketch.Quantile(90)
	case "delay_p99":
		return a.delaySketch.Quantile(99)
	case "violation_mean":
		return mean(a.violate)
	default:
		return 0, fmt.Errorf("unknown metric %q", name)
	}
}

func mean(m stats.Moments) (float64, error) {
	if m.N() == 0 {
		return 0, fmt.Errorf("no observations")
	}
	return m.Mean(), nil
}

func rate(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(n) / float64(total)
}

// evaluate runs every assertion against the outcome set.
func (set *outcomeSet) evaluate(asserts []Assertion) []AssertionResult {
	results := make([]AssertionResult, 0, len(asserts))
	for _, a := range asserts {
		r := AssertionResult{Metric: a.Metric, Class: classLabel(a.Class), Min: a.Min, Max: a.Max}
		v, err := set.metric(a.Metric, a.Class)
		if err != nil {
			r.Error = err.Error()
		} else {
			r.Observed = v
			r.Pass = (a.Min == nil || v >= *a.Min) && (a.Max == nil || v <= *a.Max)
		}
		results = append(results, r)
	}
	return results
}

func classLabel(class string) string {
	if class == "" {
		return "all"
	}
	return class
}
