// Package core implements the paper's primary contribution: the eTrain
// online transmission strategy (Algorithm 1).
//
// eTrain maintains one waiting queue per cargo app. Each slot t it computes
// the instantaneous total delay cost P(t) (Eq. 6). Packets are released only
// when a heartbeat departs this slot (piggybacking: the tail is paid anyway)
// or when P(t) has accumulated past the user's cost bound Θ. The number of
// released packets is capped by K(t): k at heartbeat slots (k may be ∞) and
// 1 otherwise. Which packets to release is decided greedily by the
// subgradient rule of Eq. 9, which maximizes the negative Lyapunov drift
//
//	Σ_i [ P̄_i(t)·Σ_{u∈Q*_i} φ_u(t) − (Σ_{u∈Q*_i} φ_u(t))²/2 ]
//
// one packet at a time: each iteration adds the packet u of app i whose
// marginal gain (P̄_i(t) − Σ_{q∈Q*_i} φ_q(t))·φ_u(t) − φ_u(t)²/2 is largest.
//
// eTrain is deliberately channel-oblivious: it never inspects the bandwidth
// estimate in its slot context (§IV argues channel prediction is expensive
// and inaccurate in practice).
package core

import (
	"fmt"
	"math"
	"time"

	"etrain/internal/sched"
	"etrain/internal/workload"
)

// KInfinite requests an unbounded per-heartbeat batch (k ← ∞), the setting
// the paper uses for its comparative simulations.
const KInfinite = math.MaxInt32

// DefaultSlot is the paper's slot length for eTrain (and PerES): 1 second.
const DefaultSlot = time.Second

// SelectionPolicy chooses how the per-slot packet selection is made. The
// paper's Algorithm 1 uses the Eq. 9 subgradient rule; the alternatives
// exist for the ablation study in internal/experiments.
type SelectionPolicy int

// Selection policies.
const (
	// SelectEq9 is the paper's greedy subgradient rule (largest marginal
	// Lyapunov-drift gain first).
	SelectEq9 SelectionPolicy = iota + 1
	// SelectFIFO releases packets in arrival order.
	SelectFIFO
	// SelectCheapest releases the smallest-cost packet first (the
	// anti-greedy strawman).
	SelectCheapest
)

// Options parameterizes the eTrain strategy.
type Options struct {
	// Theta is the cost bound Θ: below it (and away from heartbeats)
	// nothing is transmitted.
	Theta float64
	// K is the per-heartbeat batch limit k (> 1); use KInfinite for ∞.
	K int
	// Slot is the decision period; DefaultSlot if zero.
	Slot time.Duration
	// Selection overrides the packet-selection rule; SelectEq9 if zero.
	Selection SelectionPolicy
	// ChannelGated enables the future-work variant of §IV: Θ-triggered
	// (non-heartbeat) transmissions additionally wait for the estimated
	// channel to be at least average. The paper argues the estimate is too
	// unreliable to help; the ablation quantifies that.
	ChannelGated bool
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if o.Theta < 0 {
		return fmt.Errorf("core: negative Theta %v", o.Theta)
	}
	if o.K < 1 {
		return fmt.Errorf("core: K = %d, want >= 1", o.K)
	}
	if o.Slot < 0 {
		return fmt.Errorf("core: negative slot %v", o.Slot)
	}
	switch o.Selection {
	case 0, SelectEq9, SelectFIFO, SelectCheapest:
	default:
		return fmt.Errorf("core: unknown selection policy %d", int(o.Selection))
	}
	return nil
}

// ETrain is the online transmission strategy of the paper.
type ETrain struct {
	opts Options
}

var _ sched.Strategy = (*ETrain)(nil)

// New returns an eTrain strategy with the given options.
func New(opts Options) (*ETrain, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.Slot == 0 {
		opts.Slot = DefaultSlot
	}
	if opts.Selection == 0 {
		opts.Selection = SelectEq9
	}
	return &ETrain{opts: opts}, nil
}

// Name implements sched.Strategy.
func (e *ETrain) Name() string { return "etrain" }

// SlotLength implements sched.Strategy.
func (e *ETrain) SlotLength() time.Duration { return e.opts.Slot }

// Theta returns the configured cost bound.
func (e *ETrain) Theta() float64 { return e.opts.Theta }

// K returns the configured batch limit.
func (e *ETrain) K() int { return e.opts.K }

// Schedule implements Algorithm 1 for one slot.
func (e *ETrain) Schedule(ctx *sched.SlotContext) []workload.Packet {
	q := ctx.Queues
	if q.Len() == 0 {
		return nil
	}

	// Line 1: P(t) from Eq. 6.
	cost := q.CostAt(ctx.Now)

	// Line 3: transmit only past the cost bound or on a train departure.
	// The P(t) > 0 refinement keeps Θ=0 from flushing zero-cost
	// (pre-deadline mail) packets every slot; see DESIGN.md §5.
	if !ctx.HeartbeatNow && (cost < e.opts.Theta || cost <= 0) {
		return nil
	}

	// Future-work channel gate (ablation): hold Θ-triggered drips for an
	// at-least-average channel estimate.
	if e.opts.ChannelGated && !ctx.HeartbeatNow &&
		ctx.EstimateBandwidth != nil && ctx.MeanBandwidth > 0 {
		if ctx.EstimateBandwidth() < ctx.MeanBandwidth {
			return nil
		}
	}

	// Lines 4–8: K(t) modulation.
	limit := 1
	if ctx.HeartbeatNow {
		limit = e.opts.K
	}

	switch e.opts.Selection {
	case SelectFIFO:
		return fifoSelect(q, limit)
	case SelectCheapest:
		return cheapestSelect(q, ctx.Now+ctx.SlotLength, limit)
	default:
		return greedySelect(q, ctx.Now+ctx.SlotLength, limit)
	}
}

// fifoSelect releases up to limit packets in global arrival order.
func fifoSelect(q *sched.Queues, limit int) []workload.Packet {
	var selected []workload.Packet
	for len(selected) < limit {
		oldest, ok := q.Oldest()
		if !ok {
			break
		}
		p, ok := q.PopByID(oldest.App, oldest.ID)
		if !ok {
			break
		}
		selected = append(selected, p)
	}
	return selected
}

// cheapestSelect releases up to limit packets, smallest speculative cost
// first — the inverse of Eq. 9's preference.
func cheapestSelect(q *sched.Queues, nextSlot time.Duration, limit int) []workload.Packet {
	var selected []workload.Packet
	for len(selected) < limit && q.Len() > 0 {
		bestPhi := math.Inf(1)
		bestApp := ""
		bestID := 0
		for _, app := range q.AppsView() {
			for _, p := range q.View(app) {
				if phi := p.Cost(nextSlot); phi < bestPhi {
					bestPhi = phi
					bestApp = app
					bestID = p.ID
				}
			}
		}
		if bestApp == "" {
			break
		}
		p, ok := q.PopByID(bestApp, bestID)
		if !ok {
			break
		}
		selected = append(selected, p)
	}
	return selected
}

// greedySelect runs the subgradient heuristic of Eq. 9: up to limit
// iterations, each removing from the queues the packet with the largest
// marginal drift gain. nextSlot is t+1, the instant at which speculative
// costs φ_u(t) are evaluated.
func greedySelect(q *sched.Queues, nextSlot time.Duration, limit int) []workload.Packet {
	apps := q.AppsView()

	// P̄_i(t): speculative cost of the full queue, fixed for the slot.
	pbar := make(map[string]float64, len(apps))
	for _, app := range apps {
		pbar[app] = q.SpeculativeAppCostAt(app, nextSlot)
	}
	// Σ_{q ∈ Q*_i} φ_q(t): speculative cost already claimed per app.
	claimed := make(map[string]float64, len(apps))

	var selected []workload.Packet
	for len(selected) < limit && q.Len() > 0 {
		bestGain := math.Inf(-1)
		bestApp := ""
		bestID := 0
		bestPhi := 0.0
		for _, app := range apps {
			// View is allocation-free; the queue is not mutated until the
			// scan over every app completes below.
			for _, p := range q.View(app) {
				phi := p.Cost(nextSlot)
				gain := (pbar[app]-claimed[app])*phi - phi*phi/2
				if gain > bestGain {
					bestGain = gain
					bestApp = app
					bestID = p.ID
					bestPhi = phi
				}
			}
		}
		if bestApp == "" {
			break
		}
		p, ok := q.PopByID(bestApp, bestID)
		if !ok {
			break
		}
		claimed[bestApp] += bestPhi
		selected = append(selected, p)
	}
	return selected
}
