package scenario

import (
	"strings"
	"testing"
	"time"
)

// smallDirect is a fast direct-engine scenario used by the run tests.
func smallDirect() *Scenario {
	return &Scenario{
		Name:    "small",
		Seed:    21,
		Horizon: Duration(time.Hour),
		Fleet:   Fleet{Devices: 6},
		// The healthy run saves ~32% of transmit energy; a broken Θ=0
		// scheduler drips instead of batching and saves only ~14%, so a
		// 0.2 floor cleanly separates them.
		Assert: []Assertion{
			{Metric: "devices", Min: f64(6), Max: f64(6)},
			{Metric: "saving_mean", Min: f64(0.2)},
		},
	}
}

// TestRunBrokenThetaFailsAssertions is the negative test the corpus
// assertions exist for: with Θ forced to 0 the scheduler may never
// wait, savings collapse, and the saving_mean predicate must flip the
// report to FAIL. The same scenario with the default Θ passes.
func TestRunBrokenThetaFailsAssertions(t *testing.T) {
	s := smallDirect()
	rep, err := Run(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("healthy scenario failed its assertions: %+v", rep.Assertions)
	}

	broken := smallDirect()
	broken.Theta = f64(0)
	rep, err = Run(broken, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatalf("theta=0 run passed; assertions are not catching a broken scheduler: %+v", rep.Assertions)
	}
	caught := false
	for _, a := range rep.Assertions {
		if a.Metric == "saving_mean" && !a.Pass {
			caught = true
			if a.Observed >= 0.2 {
				t.Errorf("theta=0 saving %g not below the floor", a.Observed)
			}
		}
	}
	if !caught {
		t.Errorf("saving_mean assertion did not fail: %+v", rep.Assertions)
	}
}

func TestRunProgress(t *testing.T) {
	s := smallDirect()
	var calls int
	last := 0
	_, err := Run(s, Options{Progress: func(done, total int) {
		calls++
		if total != s.Fleet.Devices {
			t.Errorf("total = %d, want %d", total, s.Fleet.Devices)
		}
		if done != last+1 {
			t.Errorf("done jumped from %d to %d", last, done)
		}
		last = done
	}})
	if err != nil {
		t.Fatal(err)
	}
	if calls != s.Fleet.Devices {
		t.Errorf("progress called %d times, want %d", calls, s.Fleet.Devices)
	}
}

// TestRunRejectsInvalid ensures Run validates before executing.
func TestRunRejectsInvalid(t *testing.T) {
	s := smallDirect()
	s.Fleet.Devices = 0
	if _, err := Run(s, Options{}); err == nil || !strings.Contains(err.Error(), "devices") {
		t.Errorf("invalid scenario ran: %v", err)
	}
}

// TestTimelineEventsChangeOutcome checks each timeline action actually
// reaches the simulation: adding the event must move the fleet's energy
// aggregates relative to the event-free baseline.
func TestTimelineEventsChangeOutcome(t *testing.T) {
	base := smallDirect()
	base.Assert = nil
	baseRep, err := Run(base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	events := map[string]Event{
		"heartbeat_schedule": {At: Duration(10 * time.Minute), Action: ActionHeartbeatSchedule, Factor: 2},
		"app_install":        {At: Duration(10 * time.Minute), Action: ActionAppInstall, App: "whatsapp"},
		"app_uninstall":      {At: Duration(10 * time.Minute), Action: ActionAppUninstall, App: "qq"},
		"reboot":             {At: Duration(10 * time.Minute), Action: ActionReboot, Duration: Duration(10 * time.Minute)},
		"bandwidth_regime":   {At: Duration(10 * time.Minute), Action: ActionBandwidthRegime, Regime: "indoor"},
	}
	for name, ev := range events {
		t.Run(name, func(t *testing.T) {
			s := smallDirect()
			s.Assert = nil
			s.Timeline = []Event{ev}
			rep, err := Run(s, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Total.WithJMean == baseRep.Total.WithJMean &&
				rep.Total.WithoutJMean == baseRep.Total.WithoutJMean &&
				rep.Total.DelayMeanS == baseRep.Total.DelayMeanS {
				t.Errorf("%s left the report unchanged (withJ=%g withoutJ=%g delay=%g)",
					name, rep.Total.WithJMean, rep.Total.WithoutJMean, rep.Total.DelayMeanS)
			}
			if rep.Events != 1 {
				t.Errorf("report counts %d events, want 1", rep.Events)
			}
		})
	}
}

// TestFaultFreeLoopbackIsClean runs the loopback engine with no faults:
// every session must heal-free — zero reconnects, zero degradation,
// zero decision loss — and the transport summary must say so.
func TestFaultFreeLoopbackIsClean(t *testing.T) {
	s := &Scenario{
		Name:    "clean-loopback",
		Seed:    22,
		Horizon: Duration(time.Hour),
		Engine:  EngineLoopback,
		Fleet:   Fleet{Devices: 4},
	}
	rep, err := Run(s, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	tr := rep.Transport
	if tr == nil {
		t.Fatal("loopback report has no transport summary")
	}
	if tr.SessionsOK != 4 || tr.Failed != 0 || tr.Degraded != 0 || tr.Unreconciled != 0 ||
		tr.DecisionLoss != 0 || tr.Reconnects != 0 || tr.Resumes != 0 || tr.Replays != 0 || tr.Restarts != 0 {
		t.Errorf("fault-free loopback not clean: %+v", tr)
	}
	if !rep.Pass {
		t.Errorf("report with no assertions should pass")
	}
}
