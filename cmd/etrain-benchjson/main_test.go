package main

import (
	"os"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: etrain/internal/fleet
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkDevicePair 	      20	   1402296 ns/op	  250296 B/op	    2963 allocs/op
BenchmarkFleet10k-8 	       1	28000000000 ns/op
PASS
ok  	etrain/internal/fleet	0.034s
pkg: etrain/internal/stats
BenchmarkSketchAdd-8   	12345678	        95.31 ns/op	       0 B/op	       0 allocs/op
testing: some unrelated chatter
Benchmark
ok  	etrain/internal/stats	1.2s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d entries, want 3: %v", len(got), got)
	}
	pair := got["etrain/internal/fleet.BenchmarkDevicePair"]
	if pair.NsPerOp != 1402296 || pair.BytesPerOp != 250296 || pair.AllocsPerOp != 2963 {
		t.Errorf("DevicePair = %+v", pair)
	}
	fleet := got["etrain/internal/fleet.BenchmarkFleet10k"]
	if fleet.NsPerOp != 28000000000 {
		t.Errorf("Fleet10k = %+v (GOMAXPROCS suffix not stripped?)", fleet)
	}
	sketch := got["etrain/internal/stats.BenchmarkSketchAdd"]
	if sketch.NsPerOp != 95.31 {
		t.Errorf("SketchAdd = %+v", sketch)
	}
}

func TestParseMixedGarbage(t *testing.T) {
	got, err := parseBench(strings.NewReader("no benchmarks here\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("parsed %v from garbage", got)
	}
}

func TestBenchKey(t *testing.T) {
	if k := benchKey("", "BenchmarkX-16"); k != "BenchmarkX" {
		t.Errorf("benchKey = %q", k)
	}
	if k := benchKey("p", "BenchmarkSub/case-a-8"); k != "p.BenchmarkSub/case-a" {
		t.Errorf("benchKey = %q", k)
	}
}

func TestGatePassesWithinTolerance(t *testing.T) {
	baseline := map[string]benchResult{
		"p.BenchmarkA": {NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 10},
	}
	fresh := map[string]benchResult{
		// 10% worse on both gated axes: exactly at the default tolerance.
		"p.BenchmarkA": {NsPerOp: 500, BytesPerOp: 1100, AllocsPerOp: 11},
	}
	var out strings.Builder
	if !gate(&out, baseline, fresh, 0.10) {
		t.Fatalf("gate failed within tolerance:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "ok   p.BenchmarkA") {
		t.Errorf("verdict line missing:\n%s", out.String())
	}
}

func TestGateFailsOnAllocRegression(t *testing.T) {
	baseline := map[string]benchResult{
		"p.BenchmarkA": {NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 10},
		"p.BenchmarkB": {NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 10},
	}
	fresh := map[string]benchResult{
		"p.BenchmarkA": {NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 12}, // 20% more allocs
		"p.BenchmarkB": {NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 10},
	}
	var out strings.Builder
	if gate(&out, baseline, fresh, 0.10) {
		t.Fatalf("gate passed a 20%% alloc regression:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL p.BenchmarkA") {
		t.Errorf("regressed benchmark not named:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "ok   p.BenchmarkB") {
		t.Errorf("healthy benchmark not passed:\n%s", out.String())
	}
}

func TestGateFailsOnBytesRegression(t *testing.T) {
	baseline := map[string]benchResult{"p.BenchmarkA": {BytesPerOp: 1000, AllocsPerOp: 10}}
	fresh := map[string]benchResult{"p.BenchmarkA": {BytesPerOp: 2000, AllocsPerOp: 10}}
	var out strings.Builder
	if gate(&out, baseline, fresh, 0.10) {
		t.Fatalf("gate passed a 2x bytes regression:\n%s", out.String())
	}
}

func TestGateIgnoresNsPerOp(t *testing.T) {
	baseline := map[string]benchResult{"p.BenchmarkA": {NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 10}}
	fresh := map[string]benchResult{"p.BenchmarkA": {NsPerOp: 10000, BytesPerOp: 1000, AllocsPerOp: 10}}
	var out strings.Builder
	if !gate(&out, baseline, fresh, 0.10) {
		t.Fatalf("gate failed on wall-clock noise:\n%s", out.String())
	}
}

func TestGateHandlesDisjointSets(t *testing.T) {
	baseline := map[string]benchResult{"p.BenchmarkOld": {AllocsPerOp: 10}}
	fresh := map[string]benchResult{"p.BenchmarkNew": {AllocsPerOp: 10}}
	var out strings.Builder
	if gate(&out, baseline, fresh, 0.10) {
		t.Fatal("gate passed with zero matched benchmarks")
	}
	if !strings.Contains(out.String(), "SKIP p.BenchmarkOld") ||
		!strings.Contains(out.String(), "NEW  p.BenchmarkNew") {
		t.Errorf("disjoint sets not reported:\n%s", out.String())
	}
}

func TestReadBaselineShapes(t *testing.T) {
	dir := t.TempDir()
	flat := dir + "/flat.json"
	if err := os.WriteFile(flat, []byte(`{"p.BenchmarkA": {"allocs_per_op": 5}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	sectioned := dir + "/sectioned.json"
	if err := os.WriteFile(sectioned,
		[]byte(`{"benchmarks": {"p.BenchmarkA": {"allocs_per_op": 5}}, "load": {"x": 1}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{flat, sectioned} {
		got, err := readBaseline(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if got["p.BenchmarkA"].AllocsPerOp != 5 {
			t.Errorf("%s: %+v", path, got)
		}
	}
}
