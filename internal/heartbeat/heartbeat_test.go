package heartbeat

import (
	"testing"
	"testing/quick"
	"time"
)

func TestFixedCycleSchedule(t *testing.T) {
	app := TrainApp{Name: "x", PacketSize: 100, Policy: FixedCycle(300 * time.Second)}
	beats := app.Schedule(20 * time.Minute)
	if len(beats) != 4 {
		t.Fatalf("got %d beats in 20min at 300s cycle, want 4", len(beats))
	}
	for i, b := range beats {
		want := time.Duration(i) * 300 * time.Second
		if b.At != want {
			t.Fatalf("beat %d at %v, want %v", i, b.At, want)
		}
		if b.App != "x" || b.Size != 100 {
			t.Fatalf("beat metadata wrong: %+v", b)
		}
	}
}

func TestSchedulePhase(t *testing.T) {
	app := TrainApp{Name: "x", PacketSize: 1, Policy: FixedCycle(time.Minute), FirstAt: 10 * time.Second}
	beats := app.Schedule(2 * time.Minute)
	if len(beats) != 2 {
		t.Fatalf("got %d beats, want 2", len(beats))
	}
	if beats[0].At != 10*time.Second || beats[1].At != 70*time.Second {
		t.Fatalf("phased beats = %v, %v", beats[0].At, beats[1].At)
	}
}

func TestAdaptiveCycleNetEasePattern(t *testing.T) {
	// NetEase: 60 s initial, doubles after every 6 beats, caps at 480 s.
	p := NetEase().Policy
	wants := []struct {
		beatIndex int
		interval  time.Duration
	}{
		{0, 60 * time.Second},
		{5, 60 * time.Second},
		{6, 120 * time.Second},
		{11, 120 * time.Second},
		{12, 240 * time.Second},
		{18, 480 * time.Second},
		{24, 480 * time.Second}, // capped
		{100, 480 * time.Second},
	}
	for _, w := range wants {
		if got := p.IntervalAfter(w.beatIndex); got != w.interval {
			t.Fatalf("IntervalAfter(%d) = %v, want %v", w.beatIndex, got, w.interval)
		}
	}
}

func TestAdaptiveCycleNegativeIndex(t *testing.T) {
	p := NetEase().Policy
	if got := p.IntervalAfter(-5); got != 60*time.Second {
		t.Fatalf("IntervalAfter(-5) = %v, want initial 60s", got)
	}
}

func TestAdaptiveScheduleMonotone(t *testing.T) {
	beats := NetEase().Schedule(2 * time.Hour)
	if len(beats) < 10 {
		t.Fatalf("only %d NetEase beats in 2h", len(beats))
	}
	for i := 1; i < len(beats); i++ {
		gap := beats[i].At - beats[i-1].At
		prevGap := time.Duration(0)
		if i > 1 {
			prevGap = beats[i-1].At - beats[i-2].At
		}
		if gap < prevGap {
			t.Fatalf("NetEase gap shrank: %v after %v", gap, prevGap)
		}
		if gap > 480*time.Second {
			t.Fatalf("NetEase gap %v exceeds 480s cap", gap)
		}
	}
}

func TestBrokenPolicyDoesNotLoopForever(t *testing.T) {
	app := TrainApp{Name: "broken", PacketSize: 1, Policy: FixedCycle(0)}
	beats := app.Schedule(time.Hour)
	if len(beats) != 1 {
		t.Fatalf("broken policy yielded %d beats, want 1", len(beats))
	}
}

func TestPaperCycles(t *testing.T) {
	tests := []struct {
		app   TrainApp
		cycle time.Duration
		size  int64
	}{
		{QQ(), 300 * time.Second, 378},
		{WeChat(), 270 * time.Second, 74},
		{WhatsApp(), 240 * time.Second, 66},
		{RenRen(), 300 * time.Second, 200},
		{APNS(), 1800 * time.Second, 120},
	}
	for _, tt := range tests {
		if got := tt.app.Policy.IntervalAfter(0); got != tt.cycle {
			t.Fatalf("%s cycle = %v, want %v", tt.app.Name, got, tt.cycle)
		}
		if tt.app.PacketSize != tt.size {
			t.Fatalf("%s size = %d, want %d", tt.app.Name, tt.app.PacketSize, tt.size)
		}
		if err := tt.app.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", tt.app.Name, err)
		}
	}
}

func TestMergeSortedAndComplete(t *testing.T) {
	apps := DefaultTrio()
	horizon := time.Hour
	merged := Merge(apps, horizon)
	wantLen := 0
	for _, a := range apps {
		wantLen += len(a.Schedule(horizon))
	}
	if len(merged) != wantLen {
		t.Fatalf("merged %d beats, want %d", len(merged), wantLen)
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].At < merged[i-1].At {
			t.Fatalf("merged schedule out of order at %d", i)
		}
	}
}

func TestMergeEmpty(t *testing.T) {
	if got := Merge(nil, time.Hour); got != nil {
		t.Fatalf("Merge(nil) = %v, want nil", got)
	}
}

func TestValidateRejectsBadApps(t *testing.T) {
	bad := []TrainApp{
		{Name: "", PacketSize: 1, Policy: FixedCycle(time.Second)},
		{Name: "a", PacketSize: 0, Policy: FixedCycle(time.Second)},
		{Name: "a", PacketSize: 1},
		{Name: "a", PacketSize: 1, Policy: FixedCycle(0)},
	}
	for i, app := range bad {
		if err := app.Validate(); err == nil {
			t.Fatalf("bad app %d validated", i)
		}
	}
}

func TestDetectorRecoverFixedCycles(t *testing.T) {
	d := NewDetector(2 * time.Second)
	for _, app := range DefaultTrio() {
		for _, b := range app.Schedule(time.Hour) {
			d.Observe(b.App, b.At)
		}
	}
	tests := []struct {
		app   string
		cycle time.Duration
	}{
		{"qq", 300 * time.Second},
		{"wechat", 270 * time.Second},
		{"whatsapp", 240 * time.Second},
	}
	for _, tt := range tests {
		cycle, ok := d.Cycle(tt.app)
		if !ok {
			t.Fatalf("no cycle estimate for %s", tt.app)
		}
		if cycle != tt.cycle {
			t.Fatalf("%s cycle = %v, want %v", tt.app, cycle, tt.cycle)
		}
		if !d.Stable(tt.app) {
			t.Fatalf("%s should be detected as stable", tt.app)
		}
	}
}

func TestDetectorNetEaseUnstableRange(t *testing.T) {
	d := NewDetector(2 * time.Second)
	for _, b := range NetEase().Schedule(2 * time.Hour) {
		d.Observe(b.App, b.At)
	}
	if d.Stable("netease") {
		t.Fatal("NetEase's doubling cycle detected as stable")
	}
	min, max, ok := d.CycleRange("netease")
	if !ok {
		t.Fatal("no cycle range for netease")
	}
	if min != 60*time.Second || max != 480*time.Second {
		t.Fatalf("NetEase range = [%v, %v], want [60s, 480s]", min, max)
	}
}

func TestDetectorNeedsThreeBeats(t *testing.T) {
	d := NewDetector(time.Second)
	d.Observe("x", 0)
	d.Observe("x", time.Minute)
	if _, ok := d.Cycle("x"); ok {
		t.Fatal("cycle estimated from only two beats")
	}
	if _, ok := d.PredictNext("x"); ok {
		t.Fatal("prediction from only two beats")
	}
	d.Observe("x", 2*time.Minute)
	if _, ok := d.Cycle("x"); !ok {
		t.Fatal("no cycle after three beats")
	}
}

func TestDetectorPredictNext(t *testing.T) {
	d := NewDetector(time.Second)
	for i := 0; i < 5; i++ {
		d.Observe("qq", time.Duration(i)*300*time.Second)
	}
	next, ok := d.PredictNext("qq")
	if !ok {
		t.Fatal("no prediction")
	}
	if next != 5*300*time.Second {
		t.Fatalf("PredictNext = %v, want 1500s", next)
	}
}

func TestDetectorPredictSeries(t *testing.T) {
	d := NewDetector(time.Second)
	for i := 0; i < 4; i++ {
		d.Observe("wa", time.Duration(i)*240*time.Second)
	}
	series, ok := d.PredictSeries("wa", 3)
	if !ok {
		t.Fatal("no series")
	}
	want := []time.Duration{4 * 240 * time.Second, 5 * 240 * time.Second, 6 * 240 * time.Second}
	for i := range want {
		if series[i] != want[i] {
			t.Fatalf("series[%d] = %v, want %v", i, series[i], want[i])
		}
	}
	if _, ok := d.PredictSeries("wa", 0); ok {
		t.Fatal("series with n=0 should fail")
	}
}

func TestDetectorToleratesJitter(t *testing.T) {
	d := NewDetector(2 * time.Second)
	jitters := []time.Duration{0, 300 * time.Millisecond, -500 * time.Millisecond, time.Second, 0}
	at := time.Duration(0)
	for i := 0; i < len(jitters); i++ {
		d.Observe("j", at+jitters[i])
		at += 300 * time.Second
	}
	if !d.Stable("j") {
		t.Fatal("small jitter should still be stable")
	}
	cycle, _ := d.Cycle("j")
	if cycle < 298*time.Second || cycle > 302*time.Second {
		t.Fatalf("jittered cycle = %v, want ~300s", cycle)
	}
}

func TestDetectorApps(t *testing.T) {
	d := NewDetector(time.Second)
	d.Observe("b", 0)
	d.Observe("a", 0)
	apps := d.Apps()
	if len(apps) != 2 || apps[0] != "a" || apps[1] != "b" {
		t.Fatalf("Apps() = %v, want [a b]", apps)
	}
	if d.Count("a") != 1 {
		t.Fatalf("Count(a) = %d, want 1", d.Count("a"))
	}
}

// Property: every schedule is strictly increasing and respects the horizon.
func TestScheduleProperty(t *testing.T) {
	prop := func(cycleSecs uint16, horizonMins uint8) bool {
		cycle := time.Duration(cycleSecs%1000+1) * time.Second
		horizon := time.Duration(horizonMins%120+1) * time.Minute
		app := TrainApp{Name: "p", PacketSize: 1, Policy: FixedCycle(cycle)}
		beats := app.Schedule(horizon)
		for i, b := range beats {
			if b.At >= horizon {
				return false
			}
			if i > 0 && b.At <= beats[i-1].At {
				return false
			}
		}
		return len(beats) == int(horizon/cycle)+boolToInt(horizon%cycle != 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
