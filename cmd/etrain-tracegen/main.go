// Command etrain-tracegen generates synthetic traces in the repository's
// file formats: 3G uplink bandwidth traces and Luna-Weibo-style user
// behavior traces.
//
// Usage:
//
//	etrain-tracegen -kind bandwidth -duration 2h -out bw.txt
//	etrain-tracegen -kind user -class active -users 5 -out users.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"etrain/internal/bandwidth"
	"etrain/internal/randx"
	"etrain/internal/tracefile"
	"etrain/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "etrain-tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		kind     = flag.String("kind", "bandwidth", "bandwidth | user")
		duration = flag.Duration("duration", 2*time.Hour, "bandwidth trace length")
		class    = flag.String("class", "moderate", "user class: active | moderate | inactive")
		users    = flag.Int("users", 1, "number of users to synthesize")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("out", "-", "output path, or - for stdout")
	)
	flag.Parse()

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	src := randx.New(*seed)
	switch *kind {
	case "bandwidth":
		trace, err := bandwidth.Synthesize(src, *duration, nil)
		if err != nil {
			return err
		}
		return tracefile.WriteBandwidthTrace(w, trace)
	case "user":
		var cls workload.ActivenessClass
		switch *class {
		case "active":
			cls = workload.ClassActive
		case "moderate":
			cls = workload.ClassModerate
		case "inactive":
			cls = workload.ClassInactive
		default:
			return fmt.Errorf("unknown class %q", *class)
		}
		var records []workload.BehaviorRecord
		for u := 0; u < *users; u++ {
			userID := fmt.Sprintf("user-%03d", u)
			records = append(records, workload.SynthesizeUser(src.Split(), userID, cls)...)
		}
		return tracefile.WriteUserTrace(w, records)
	default:
		return fmt.Errorf("unknown trace kind %q", *kind)
	}
}
