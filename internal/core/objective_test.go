package core

import (
	"math"
	"testing"
	"time"

	"etrain/internal/profile"
	"etrain/internal/randx"
	"etrain/internal/sched"
	"etrain/internal/workload"
)

// driftObjective computes the paper's Eq. 7 objective for a selection:
// Σ_i [ P̄_i·x_i − x_i²/2 ] with x_i = Σ_{u ∈ Q*_i} φ_u(t).
func driftObjective(pbar map[string]float64, selected []workload.Packet, nextSlot time.Duration) float64 {
	x := make(map[string]float64)
	for _, p := range selected {
		x[p.App] += p.Cost(nextSlot)
	}
	total := 0.0
	for app, xi := range x {
		total += pbar[app]*xi - xi*xi/2
	}
	return total
}

// bruteForceBest enumerates every subset of the queued packets with
// |Q*| ≤ limit and returns the maximum drift objective.
func bruteForceBest(q *sched.Queues, nextSlot time.Duration, limit int) float64 {
	var all []workload.Packet
	q.Each(func(p workload.Packet) { all = append(all, p) })
	pbar := make(map[string]float64)
	for _, app := range q.Apps() {
		pbar[app] = q.SpeculativeAppCostAt(app, nextSlot)
	}
	best := 0.0
	n := len(all)
	for mask := 0; mask < 1<<n; mask++ {
		var sel []workload.Packet
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sel = append(sel, all[i])
			}
		}
		if len(sel) > limit {
			continue
		}
		if obj := driftObjective(pbar, sel, nextSlot); obj > best {
			best = obj
		}
	}
	return best
}

// TestGreedyNearOptimalDrift verifies the Eq. 9 greedy against exhaustive
// search on random small queues: the paper calls it a "near-optimal"
// heuristic; on these instances it should reach at least 90% of the
// exhaustive optimum (and usually 100%).
func TestGreedyNearOptimalDrift(t *testing.T) {
	src := randx.New(77)
	profiles := []profile.Profile{
		profile.Mail(60 * time.Second),
		profile.Weibo(30 * time.Second),
		profile.Cloud(120 * time.Second),
	}
	apps := []string{"mail", "weibo", "cloud"}
	now := 90 * time.Second
	nextSlot := now + time.Second

	for trial := 0; trial < 50; trial++ {
		q := sched.NewQueues()
		qCopy := sched.NewQueues()
		n := 3 + src.Intn(6)
		for i := 0; i < n; i++ {
			which := src.Intn(len(apps))
			p := workload.Packet{
				ID:        i,
				App:       apps[which],
				ArrivedAt: time.Duration(src.Intn(int(now.Seconds()))) * time.Second,
				Size:      1000,
				Profile:   profiles[which],
			}
			q.Add(p)
			qCopy.Add(p)
		}
		limit := 1 + src.Intn(3)

		pbar := make(map[string]float64)
		for _, app := range q.Apps() {
			pbar[app] = q.SpeculativeAppCostAt(app, nextSlot)
		}
		optimum := bruteForceBest(q, nextSlot, limit)

		selected := greedySelect(qCopy, nextSlot, limit)
		got := driftObjective(pbar, selected, nextSlot)

		if optimum <= 1e-12 {
			// All costs zero; greedy may select zero-gain packets freely.
			continue
		}
		if got < 0.90*optimum-1e-9 {
			t.Fatalf("trial %d: greedy objective %.6f below 90%% of optimum %.6f (limit %d, n %d)",
				trial, got, optimum, limit, n)
		}
		if got > optimum+1e-9 {
			t.Fatalf("trial %d: greedy %.6f exceeds exhaustive optimum %.6f — objective bug",
				trial, got, optimum)
		}
	}
}

// TestGreedyMatchesBruteForceSingleSelection checks the K(t)=1 case exactly:
// with one pick, greedy must equal the exhaustive optimum.
func TestGreedyMatchesBruteForceSingleSelection(t *testing.T) {
	src := randx.New(101)
	now := 45 * time.Second
	nextSlot := now + time.Second
	for trial := 0; trial < 30; trial++ {
		q := sched.NewQueues()
		qCopy := sched.NewQueues()
		n := 2 + src.Intn(5)
		for i := 0; i < n; i++ {
			p := workload.Packet{
				ID:        i,
				App:       "weibo",
				ArrivedAt: time.Duration(src.Intn(44)) * time.Second,
				Size:      1000,
				Profile:   profile.Weibo(30 * time.Second),
			}
			q.Add(p)
			qCopy.Add(p)
		}
		pbar := map[string]float64{"weibo": q.SpeculativeAppCostAt("weibo", nextSlot)}
		optimum := bruteForceBest(q, nextSlot, 1)
		selected := greedySelect(qCopy, nextSlot, 1)
		got := driftObjective(pbar, selected, nextSlot)
		if math.Abs(got-optimum) > 1e-9 {
			t.Fatalf("trial %d: K=1 greedy %.6f != optimum %.6f", trial, got, optimum)
		}
	}
}
