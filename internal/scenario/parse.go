package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Parse decodes a scenario from its JSON or YAML-subset source. A
// document whose first significant byte is '{' parses as strict JSON;
// anything else goes through the YAML-subset parser. Both paths reject
// unknown fields, so a typo in a scenario file is an error, not a
// silently ignored knob. Parse does not validate semantics — call
// Validate (or Run, which validates) on the result.
func Parse(data []byte) (*Scenario, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("scenario: empty document")
	}
	if trimmed[0] == '{' {
		return decodeStrict(trimmed)
	}
	tree, err := parseYAML(data)
	if err != nil {
		return nil, err
	}
	b, err := json.Marshal(tree)
	if err != nil {
		return nil, fmt.Errorf("scenario: internal re-encode: %w", err)
	}
	return decodeStrict(b)
}

// decodeStrict unmarshals JSON into a Scenario, rejecting unknown
// fields and trailing content.
func decodeStrict(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	var trailing any
	if err := dec.Decode(&trailing); err != io.EOF {
		return nil, fmt.Errorf("scenario: trailing content after document")
	}
	return &s, nil
}
