// offlinegap compares eTrain's online decisions against the paper's §III
// offline optimum on a small, fully-known instance: three e-mails and two
// posts arriving around two QQ heartbeats. The offline solver (exact branch
// and bound) shows what perfect future knowledge would buy; the online run
// shows how close Algorithm 1 gets without it.
package main

import (
	"fmt"
	"log"
	"time"

	"etrain"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	horizon := 700 * time.Second
	qq := etrain.QQ() // 300 s cycle
	qq.FirstAt = 150 * time.Second
	beats := etrain.MergedSchedule([]etrain.TrainApp{qq}, horizon)

	mailProfile := etrain.MailProfile(5 * time.Minute)
	weiboProfile := etrain.WeiboProfile(2 * time.Minute)
	packets := []etrain.Packet{
		{ID: 0, App: "mail", ArrivedAt: 20 * time.Second, Size: 5 << 10, Profile: mailProfile},
		{ID: 1, App: "weibo", ArrivedAt: 60 * time.Second, Size: 2 << 10, Profile: weiboProfile},
		{ID: 2, App: "mail", ArrivedAt: 200 * time.Second, Size: 5 << 10, Profile: mailProfile},
		{ID: 3, App: "weibo", ArrivedAt: 260 * time.Second, Size: 2 << 10, Profile: weiboProfile},
		{ID: 4, App: "mail", ArrivedAt: 400 * time.Second, Size: 5 << 10, Profile: mailProfile},
	}

	inst := etrain.OfflineInstance{
		Beats:   beats,
		Packets: packets,
		Power:   etrain.GalaxyS43G(),
		Horizon: horizon,
	}

	lower, err := etrain.OfflineLowerBound(inst)
	if err != nil {
		return err
	}
	optimal, err := etrain.OfflineSolve(inst)
	if err != nil {
		return err
	}

	fmt.Printf("train departures: ")
	for _, b := range beats {
		fmt.Printf("%v  ", b.At)
	}
	fmt.Println()
	fmt.Printf("lower bound (beats only):   %.2f J\n", lower)
	fmt.Printf("offline optimum:            %.2f J (total delay cost %.2f)\n",
		optimal.EnergyJoules, optimal.TotalCost)
	fmt.Println("optimal departure per packet:")
	for id := 0; id < len(packets); id++ {
		fmt.Printf("  packet %d (arrived %4v) -> t_s = %v\n",
			id, packets[id].ArrivedAt, optimal.Times[id])
	}
	fmt.Println()
	fmt.Println("The optimum defers every packet to the next QQ heartbeat: with the")
	fmt.Println("tail paid by the train, cargo rides free — exactly the structure")
	fmt.Println("eTrain's online algorithm exploits without seeing the future.")
	return nil
}
