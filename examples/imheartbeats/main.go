// imheartbeats reproduces the paper's §II measurement methodology as a
// library consumer would: run several real-world heartbeat apps (including
// NetEase's adaptive backoff and iOS's shared APNS channel), observe their
// traffic through eTrain's monitor, and report each detected cycle — the
// analysis behind Table 1 and Fig. 3.
package main

import (
	"fmt"
	"log"
	"time"

	"etrain"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := etrain.NewSystem(etrain.SystemConfig{Seed: 2, Theta: 1})
	if err != nil {
		return err
	}
	apps := []etrain.TrainApp{
		etrain.WeChat(), etrain.WhatsApp(), etrain.QQ(),
		etrain.RenRen(), etrain.NetEase(),
	}
	for _, app := range apps {
		if err := sys.AddTrain(app); err != nil {
			return err
		}
	}
	if err := sys.Run(4 * time.Hour); err != nil {
		return err
	}

	fmt.Println("Detected heartbeat cycles after 4h of observation:")
	cycles := sys.DetectedCycles()
	for _, app := range apps {
		if cycle, ok := cycles[app.Name]; ok {
			fmt.Printf("  %-10s stable cycle %v\n", app.Name, cycle)
		} else {
			fmt.Printf("  %-10s adaptive cycle (no stable period)\n", app.Name)
		}
	}

	fmt.Println("\nNext-heartbeat predictions (the scheduler's train timetable):")
	for _, app := range apps {
		if next, ok := sys.PredictNextHeartbeat(app.Name); ok {
			fmt.Printf("  %-10s next beat predicted at %v\n", app.Name, next)
		}
	}

	// iOS for contrast: one shared APNS connection for every app.
	fmt.Println("\nFor comparison, the merged train timetable of the Android trio over 10 minutes:")
	for _, b := range etrain.MergedSchedule(etrain.DefaultTrains(), 10*time.Minute) {
		fmt.Printf("  t=%4.0fs  %-9s %d bytes\n", b.At.Seconds(), b.App, b.Size)
	}
	apnsBeats := etrain.MergedSchedule([]etrain.TrainApp{etrain.APNS()}, time.Hour)
	fmt.Printf("\niOS (APNS) sends only %d heartbeats per hour: one shared 1800s cycle.\n", len(apnsBeats))
	return nil
}
