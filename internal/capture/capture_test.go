package capture

import (
	"testing"
	"time"

	"etrain/internal/heartbeat"
	"etrain/internal/radio"
	"etrain/internal/randx"
)

// mixedCapture builds an unlabeled capture of the default trio's
// heartbeats plus random-size data traffic, as a Wireshark session over a
// busy phone would record.
func mixedCapture(t *testing.T, horizon time.Duration, withNetEase bool) []Packet {
	t.Helper()
	apps := heartbeat.DefaultTrio()
	if withNetEase {
		apps = append(apps, heartbeat.NetEase())
	}
	var packets []Packet
	for _, b := range heartbeat.Merge(apps, horizon) {
		packets = append(packets, Packet{At: b.At, Size: b.Size})
	}
	src := randx.New(9)
	for at := time.Duration(0); at < horizon; at += time.Duration(20+src.Intn(60)) * time.Second {
		packets = append(packets, Packet{
			At:   at,
			Size: int64(1000 + src.Intn(100000)), // data: random sizes
		})
	}
	return packets
}

func TestClassifyRecoversTrioCycles(t *testing.T) {
	packets := mixedCapture(t, 4*time.Hour, false)
	flows := Heartbeats(Classify(packets, Options{}))
	want := map[int64]time.Duration{
		378: 300 * time.Second, // QQ
		74:  270 * time.Second, // WeChat
		66:  240 * time.Second, // WhatsApp
	}
	found := 0
	for _, f := range flows {
		cycle, ok := want[f.Size]
		if !ok {
			continue
		}
		found++
		if f.Kind != FlowHeartbeat {
			t.Fatalf("size %d classified %v, want fixed heartbeat", f.Size, f.Kind)
		}
		if f.Cycle != cycle {
			t.Fatalf("size %d cycle %v, want %v", f.Size, f.Cycle, cycle)
		}
	}
	if found != len(want) {
		t.Fatalf("recovered %d of %d heartbeat flows from unlabeled capture", found, len(want))
	}
}

func TestClassifyIdentifiesNetEaseAsAdaptive(t *testing.T) {
	packets := mixedCapture(t, 4*time.Hour, true)
	flows := Heartbeats(Classify(packets, Options{}))
	for _, f := range flows {
		if f.Size == 150 { // NetEase's payload
			if f.Kind != FlowAdaptiveHeartbeat {
				t.Fatalf("NetEase classified %v, want adaptive", f.Kind)
			}
			if f.CycleMin != 60*time.Second || f.CycleMax != 480*time.Second {
				t.Fatalf("NetEase range %v-%v, want 60s-480s", f.CycleMin, f.CycleMax)
			}
			return
		}
	}
	t.Fatal("NetEase flow not found")
}

func TestClassifyDataStaysData(t *testing.T) {
	packets := mixedCapture(t, 2*time.Hour, false)
	for _, f := range Classify(packets, Options{}) {
		if f.Kind != FlowData {
			continue
		}
		// Data groups are random sizes: almost always singletons.
		if f.Count >= 4 && (f.Size == 378 || f.Size == 74 || f.Size == 66) {
			t.Fatalf("heartbeat size %d misclassified as data", f.Size)
		}
	}
}

func TestClassifyNoFalseHeartbeatsFromSparseData(t *testing.T) {
	src := randx.New(3)
	var packets []Packet
	// Pure random data: random sizes at random times.
	for i := 0; i < 200; i++ {
		packets = append(packets, Packet{
			At:   time.Duration(src.Intn(7200)) * time.Second,
			Size: int64(500 + src.Intn(200000)),
		})
	}
	flows := Heartbeats(Classify(packets, Options{}))
	if len(flows) != 0 {
		t.Fatalf("random data produced %d phantom heartbeat flows: %+v", len(flows), flows)
	}
}

func TestClassifyToleratesJitter(t *testing.T) {
	src := randx.New(4)
	app := heartbeat.WeChat()
	var packets []Packet
	for _, b := range app.ScheduleJittered(src, 4*time.Hour, 2*time.Second) {
		packets = append(packets, Packet{At: b.At, Size: b.Size})
	}
	flows := Heartbeats(Classify(packets, Options{}))
	if len(flows) != 1 {
		t.Fatalf("jittered WeChat not recovered: %+v", flows)
	}
	if diff := flows[0].Cycle - 270*time.Second; diff < -3*time.Second || diff > 3*time.Second {
		t.Fatalf("jittered cycle %v, want ~270s", flows[0].Cycle)
	}
}

func TestFromTimeline(t *testing.T) {
	tl := &radio.Timeline{}
	if err := tl.Append(radio.Transmission{
		Start: 5 * time.Second, TxTime: 100 * time.Millisecond,
		Size: 74, Kind: radio.TxHeartbeat, App: "wechat",
	}); err != nil {
		t.Fatal(err)
	}
	packets := FromTimeline(tl)
	if len(packets) != 1 || packets[0].Size != 74 || packets[0].At != 5*time.Second {
		t.Fatalf("FromTimeline = %+v", packets)
	}
}

func TestFlowKindString(t *testing.T) {
	tests := []struct {
		k    FlowKind
		want string
	}{
		{FlowHeartbeat, "heartbeat"},
		{FlowAdaptiveHeartbeat, "adaptive-heartbeat"},
		{FlowData, "data"},
		{FlowKind(9), "capture.FlowKind(9)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Fatalf("%d -> %q, want %q", int(tt.k), got, tt.want)
		}
	}
}

func TestClassifyEmptyCapture(t *testing.T) {
	if flows := Classify(nil, Options{}); len(flows) != 0 {
		t.Fatalf("empty capture produced flows: %v", flows)
	}
}
