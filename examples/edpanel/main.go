// edpanel sweeps the energy–delay tradeoff of every scheduling strategy on
// the paper's default workload (λ = 0.08, three IM trains, 2 hours) and
// prints the E–D panel of Fig. 8a: eTrain against PerES, eTime and the
// transmit-on-arrival baseline.
package main

import (
	"fmt"
	"log"

	"etrain"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const seed = 5

	show := func(label string, control float64, cfg etrain.StrategyConfig) error {
		res, err := etrain.Simulate(etrain.SimConfig{Seed: seed, Strategy: cfg})
		if err != nil {
			return err
		}
		fmt.Printf("%-9s %-8.2f %8.0f J %8.1f s %9.1f%%\n",
			label, control, res.Energy.Total(), res.NormalizedDelay.Seconds(),
			res.DeadlineViolationRatio*100)
		return nil
	}

	fmt.Printf("%-9s %-8s %10s %10s %10s\n", "strategy", "control", "energy", "delay", "violations")

	for _, theta := range []float64{0, 1, 2, 4, 8, 14} {
		cfg := etrain.StrategyConfig{Kind: etrain.StrategyETrain, Theta: theta}
		if err := show("etrain", theta, cfg); err != nil {
			return err
		}
	}
	for _, omega := range []float64{0.2, 0.6, 1.0, 1.5} {
		cfg := etrain.StrategyConfig{Kind: etrain.StrategyPerES, Omega: omega}
		if err := show("peres", omega, cfg); err != nil {
			return err
		}
	}
	for _, v := range []float64{4, 8, 12, 16, 24} {
		cfg := etrain.StrategyConfig{Kind: etrain.StrategyETime, V: v}
		if err := show("etime", v, cfg); err != nil {
			return err
		}
	}
	if err := show("baseline", 0, etrain.StrategyConfig{Kind: etrain.StrategyBaseline}); err != nil {
		return err
	}

	fmt.Println("\nReading the panel: at equal delay, eTrain's points sit below the others —")
	fmt.Println("its cargo rides heartbeat tails that every strategy pays for anyway.")
	return nil
}
