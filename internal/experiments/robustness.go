package experiments

import (
	"fmt"

	"etrain/internal/baseline"
	"etrain/internal/core"
	"etrain/internal/parallel"
	"etrain/internal/sched"
	"etrain/internal/sim"
	"etrain/internal/stats"
)

// SeedRobustness re-runs the headline comparison across several seeds and
// reports mean ± stddev of each strategy's energy at fixed control
// parameters, plus how often the paper's ordering (eTrain < eTime < PerES <
// baseline) held. It is the reproduction's answer to "is this one lucky
// seed?".
func SeedRobustness(opts Options) (*Table, error) {
	const seeds = 5
	tbl := &Table{
		ID:      "abl-seed-robustness",
		Title:   fmt.Sprintf("Headline comparison across %d seeds (λ=0.08)", seeds),
		Columns: []string{"strategy", "control", "mean_J", "stddev_J", "min_J", "max_J"},
	}
	type config struct {
		name    string
		control string
		build   func() (sched.Strategy, error)
	}
	configs := []config{
		{"etrain", "Θ=10", func() (sched.Strategy, error) {
			return core.New(core.Options{Theta: 10, K: core.KInfinite})
		}},
		{"etime", "V=10", func() (sched.Strategy, error) {
			return baseline.NewETime(baseline.ETimeOptions{V: 10})
		}},
		{"peres", "Ω=1", func() (sched.Strategy, error) {
			return baseline.NewPerES(baseline.DefaultPerESOptions(1))
		}},
		{"baseline", "-", func() (sched.Strategy, error) {
			return baseline.NewImmediate(), nil
		}},
	}

	// One job per (seed, strategy) pair; results are slotted by index so
	// the aggregation below is order-independent of the scheduling.
	perRun, err := parallel.Map(opts.limit(), seeds*len(configs), func(i int) (float64, error) {
		s, c := i/len(configs), configs[i%len(configs)]
		cfg, err := buildSimConfig(Options{Seed: opts.Seed + int64(s), Horizon: opts.Horizon}, 0.08)
		if err != nil {
			return 0, err
		}
		strategy, err := c.build()
		if err != nil {
			return 0, err
		}
		cfg.Strategy = strategy
		res, err := sim.Run(cfg)
		if err != nil {
			return 0, err
		}
		return res.Energy.Total(), nil
	})
	if err != nil {
		return nil, fmt.Errorf("seed robustness: %w", err)
	}
	energies := make(map[string][]float64, len(configs))
	for i, e := range perRun {
		energies[configs[i%len(configs)].name] = append(energies[configs[i%len(configs)].name], e)
	}

	for _, c := range configs {
		summary, err := stats.Summarize(energies[c.name])
		if err != nil {
			return nil, err
		}
		tbl.AddRow(c.name, c.control, summary.Mean, summary.StdDev, summary.Min, summary.Max)
	}

	ordered := 0
	for s := 0; s < seeds; s++ {
		if energies["etrain"][s] < energies["etime"][s] &&
			energies["etime"][s] < energies["peres"][s] &&
			energies["peres"][s] < energies["baseline"][s] {
			ordered++
		}
	}
	tbl.AddNote("paper ordering eTrain < eTime < PerES < baseline held in %d of %d seeds", ordered, seeds)
	return tbl, nil
}
