package randx

import "time"

// PoissonProcess generates arrival instants of a homogeneous Poisson process
// over virtual time.
type PoissonProcess struct {
	src  *Source
	mean time.Duration
	next time.Duration
}

// NewPoissonProcess returns a process with the given mean inter-arrival time.
// The first arrival is drawn immediately so Peek is valid from the start.
func NewPoissonProcess(src *Source, meanInterArrival time.Duration) *PoissonProcess {
	p := &PoissonProcess{src: src, mean: meanInterArrival}
	p.next = p.draw(0)
	return p
}

func (p *PoissonProcess) draw(from time.Duration) time.Duration {
	gap := p.src.Exp(p.mean.Seconds())
	return from + time.Duration(gap*float64(time.Second))
}

// Peek returns the time of the next arrival without consuming it.
func (p *PoissonProcess) Peek() time.Duration { return p.next }

// Next consumes and returns the next arrival instant.
func (p *PoissonProcess) Next() time.Duration {
	t := p.next
	p.next = p.draw(t)
	return t
}

// ArrivalsUntil returns every remaining arrival instant strictly before
// horizon, consuming them from the process.
func (p *PoissonProcess) ArrivalsUntil(horizon time.Duration) []time.Duration {
	var out []time.Duration
	for p.next < horizon {
		out = append(out, p.Next())
	}
	return out
}
