// Package server is the network-facing eTrain scheduling service: each
// accepted connection hosts one device session that feeds decoded wire
// frames into an incremental sim.Engine running the core strategy, and
// streams the resulting Decision frames back (DESIGN.md §10).
//
// The package is transport-agnostic — sessions run over any net.Conn, and
// the test suite drives them over in-process net.Pipe loopback — and it
// never reads the wall clock itself: deadlines exist only when the caller
// injects a Clock, so the decision/metrics stream stays a pure function
// of the inbound frame stream.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"etrain/internal/radio"
	"etrain/internal/wire"
)

// Defaults for the zero Config.
const (
	// DefaultMaxConns bounds concurrently served connections.
	DefaultMaxConns = 4096
	// DefaultQueueDepth is the per-session event queue bound: when a
	// session's engine falls behind, its reader stops pulling frames after
	// this many are queued and the transport exerts backpressure.
	DefaultQueueDepth = 64
	// DefaultResumeGrace is how long a session disconnected mid-protocol
	// stays parked awaiting resume (expiry needs a Clock).
	DefaultResumeGrace = 2 * time.Minute
	// DefaultRetainSessions caps the detached-session registry; beyond it
	// the oldest parked session is discarded.
	DefaultRetainSessions = 1024
)

// ErrServerClosed reports that Serve stopped because Shutdown began.
var ErrServerClosed = errors.New("server: closed")

// ErrSessionParked reports that a session lost its transport mid-protocol
// and parked its engine state for resume instead of failing. It is how
// ServeConn distinguishes a recoverable disconnect from a protocol error.
var ErrSessionParked = errors.New("server: session parked awaiting resume")

// errHelloRefused reports that the admission policy refused a Hello: the
// client was answered with Busy and the connection closed without a
// session. It resolves the outcome as Refused, not Errored.
var errHelloRefused = errors.New("server: hello refused by admission policy")

// Config parameterizes a Server. The zero value serves with defaults, no
// deadlines and the Galaxy S4 power model.
type Config struct {
	// MaxConns caps concurrently served connections (DefaultMaxConns if
	// zero); connections beyond the cap are closed immediately.
	MaxConns int
	// QueueDepth bounds each session's inbound event queue
	// (DefaultQueueDepth if zero).
	QueueDepth int
	// IdleTimeout bounds the wait for the next inbound frame; it needs a
	// Clock to take effect.
	IdleTimeout time.Duration
	// WriteTimeout bounds each outbound frame write; it needs a Clock.
	WriteTimeout time.Duration
	// ResumeGrace is how long a session that lost its transport stays
	// parked awaiting a Resume (DefaultResumeGrace if zero; negative
	// disables parking entirely, restoring fail-on-disconnect). Grace
	// expiry needs a Clock; without one parked sessions are bounded only
	// by RetainSessions.
	ResumeGrace time.Duration
	// RetainSessions caps the detached-session registry
	// (DefaultRetainSessions if zero); the oldest parked session is
	// discarded when the cap is exceeded.
	RetainSessions int
	// DrainTimeout, with a Clock, bounds how long Shutdown waits for live
	// sessions: the drain arms this deadline on every open connection, so
	// sessions whose peers never read or write are forced to unwind even
	// when Shutdown's context has no deadline of its own.
	DrainTimeout time.Duration
	// Admission, when non-nil, turns on explicit overload signaling: the
	// policy gates new Hellos and sheds cargo under queue pressure, and
	// every refusal — including connection-limit, draining and lame-duck
	// refusals — is answered with a wire.Busy frame instead of a silent
	// close. Nil (the default) preserves the legacy byte stream exactly.
	Admission Admission
	// Power is the radio energy model sessions account under
	// (radio.GalaxyS43G() if unset).
	Power radio.PowerModel
	// Clock supplies the wall clock for connection deadlines. Leaving it
	// nil disables deadlines and keeps the server fully deterministic;
	// cmd/etraind injects time.Now at the process boundary.
	Clock func() time.Time
	// Logf, when non-nil, receives per-connection error reports.
	Logf func(format string, args ...any)
}

// Counters is a snapshot of the server's monotonic event counts (Active
// and Detached excepted, which are instantaneous gauges).
//
// A snapshot is internally consistent, not merely individually fresh:
// every multi-counter state change — a session opening, an outcome
// resolving, a frame going out with its Decision classification — is one
// locked transition, and Stats copies the whole set under the same lock.
// In particular Accepted == Active + Completed + Errored + Parked + Refused
// and Decisions <= FramesOut hold in every snapshot, which is what lets a
// cluster shard stream these counters as ShardStats frames without ever
// publishing a torn value.
type Counters struct {
	Accepted     uint64 // connections admitted into sessions
	Rejected     uint64 // connections refused (limit reached or draining)
	Active       uint64 // sessions currently running
	Completed    uint64 // sessions that ran the full protocol
	Errored      uint64 // sessions ended by a protocol or transport error
	Panics       uint64 // sessions ended by a recovered panic
	Parked       uint64 // sessions parked after losing their transport
	Resumed      uint64 // parked sessions adopted by a Resume handshake
	ResumeMisses uint64 // Resume frames naming no parked session
	Discarded    uint64 // parked sessions dropped without resume
	Detached     uint64 // parked sessions currently awaiting resume
	FramesIn     uint64 // frames decoded from clients
	FramesOut    uint64 // frames written to clients
	Decisions    uint64 // Decision frames among FramesOut
	Refused      uint64 // Hellos refused by the admission policy
	Shed         uint64 // cargo frames shed under queue pressure (deferred to resume)
	BusySent     uint64 // wire.Busy frames written to clients
}

// Server hosts device sessions over accepted connections.
type Server struct {
	cfg Config

	// cmu guards ctrs alone. It is ordered after mu (park and the
	// registry sweeps count while holding mu); nothing acquires mu while
	// holding cmu.
	cmu  sync.Mutex
	ctrs Counters

	lameDuck atomic.Bool

	mu        sync.Mutex
	closed    bool
	conns     map[net.Conn]struct{}
	listeners map[net.Listener]struct{}
	detached  map[sessionKey]*parkedEntry
	parkOrder []*parkedEntry
	wg        sync.WaitGroup
}

// count applies one counter transition atomically with respect to Stats:
// all increments inside f land in the same snapshot or none do.
func (s *Server) count(f func(*Counters)) {
	s.cmu.Lock()
	f(&s.ctrs)
	s.cmu.Unlock()
}

// countFrameIn counts one decoded inbound frame (hot path: no closure).
func (s *Server) countFrameIn() {
	s.cmu.Lock()
	s.ctrs.FramesIn++
	s.cmu.Unlock()
}

// countFrameOut counts one written outbound frame and, in the same
// transition, its Decision classification — so Decisions can never lead
// FramesOut in a snapshot (hot path: no closure).
func (s *Server) countFrameOut(decision bool) {
	s.cmu.Lock()
	s.ctrs.FramesOut++
	if decision {
		s.ctrs.Decisions++
	}
	s.cmu.Unlock()
}

// New returns a server with normalized configuration.
func New(cfg Config) *Server {
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = DefaultMaxConns
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.ResumeGrace == 0 {
		cfg.ResumeGrace = DefaultResumeGrace
	}
	if cfg.RetainSessions <= 0 {
		cfg.RetainSessions = DefaultRetainSessions
	}
	if cfg.Power.Validate() != nil {
		cfg.Power = radio.GalaxyS43G()
	}
	return &Server{
		cfg:       cfg,
		conns:     make(map[net.Conn]struct{}),
		listeners: make(map[net.Listener]struct{}),
		detached:  make(map[sessionKey]*parkedEntry),
	}
}

// Serve accepts connections from l and serves a session on each until
// Shutdown closes the listener, then returns ErrServerClosed. Accept
// errors other than the shutdown close are returned as-is.
func (s *Server) Serve(l net.Listener) error {
	if !s.addListener(l) {
		l.Close()
		return ErrServerClosed
	}
	defer s.removeListener(l)
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.draining() {
				return ErrServerClosed
			}
			return err
		}
		if ok, reason := s.register(conn); !ok {
			s.refuse(conn, reason)
			continue
		}
		s.wg.Add(1)
		go func(conn net.Conn) {
			defer s.wg.Done()
			s.serveSession(conn)
		}(conn)
	}
}

// ServeConn serves one session on conn synchronously, returning the
// session's error (nil for a cleanly completed protocol). It respects the
// connection limit and the drain state exactly like Serve.
func (s *Server) ServeConn(conn net.Conn) error {
	if ok, reason := s.register(conn); !ok {
		s.refuse(conn, reason)
		return ErrServerClosed
	}
	s.wg.Add(1)
	defer s.wg.Done()
	return s.serveSession(conn)
}

// serveSession runs one registered session with panic isolation: a panic
// in the session (or the strategy it hosts) is recovered, counted, and
// confined to its connection. Outcomes count three ways: completed,
// parked (recoverable disconnect, engine retained), or errored.
//
// Opening is one counter transition (Accepted and Active together) and the
// outcome another (Active release plus exactly one outcome counter), so
// Accepted == Active + Completed + Errored + Parked + Refused holds in
// every Stats snapshot — the invariant the torn-counter regression test
// races.
func (s *Server) serveSession(conn net.Conn) (err error) {
	s.count(func(c *Counters) {
		c.Accepted++
		c.Active++
	})
	defer func() {
		panicked := false
		if r := recover(); r != nil {
			panicked = true
			err = fmt.Errorf("server: session panic: %v", r)
		}
		s.unregister(conn)
		conn.Close()
		s.count(func(c *Counters) {
			c.Active--
			if panicked {
				c.Panics++
			}
			switch {
			case err == nil:
				c.Completed++
			case errors.Is(err, ErrSessionParked):
				c.Parked++
			case errors.Is(err, errHelloRefused):
				c.Refused++
			default:
				c.Errored++
			}
		})
		if err != nil && !errors.Is(err, ErrSessionParked) && !errors.Is(err, errHelloRefused) {
			s.logf("session %v: %v", conn.RemoteAddr(), err)
		}
	}()
	return s.runSession(conn)
}

// Shutdown drains the server: it stops accepting, rejects new sessions,
// discards parked sessions, and waits for running sessions to finish.
// With a Clock and a DrainTimeout, that wait is bounded without help
// from ctx: the drain deadline is armed on every open connection, so a
// session stuck on a peer that never reads or writes is forced off its
// blocked I/O and unwinds. If ctx expires first, the remaining
// connections are force-closed and Shutdown waits for their sessions to
// unwind before returning ctx's error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	for l := range s.listeners {
		l.Close()
	}
	s.discardDetachedLocked()
	if s.cfg.Clock != nil && s.cfg.DrainTimeout > 0 {
		deadline := s.cfg.Clock().Add(s.cfg.DrainTimeout)
		for conn := range s.conns {
			conn.SetDeadline(deadline)
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		defer close(done)
		s.wg.Wait()
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// Stats snapshots the server's counters: one lock, one struct copy, so
// the returned set is a state the server actually passed through (see
// the Counters invariants).
func (s *Server) Stats() Counters {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	return s.ctrs
}

// SetLameDuck flips lame-duck mode: while set, new connections are
// rejected (and counted Rejected) but in-flight sessions run to
// completion. A cluster shard flips this when a pushed route table no
// longer lists it — drained or superseded — so it finishes what it owns
// while new work routes elsewhere.
func (s *Server) SetLameDuck(on bool) {
	s.lameDuck.Store(on)
}

// LameDucking reports whether lame-duck mode is set.
func (s *Server) LameDucking() bool { return s.lameDuck.Load() }

func (s *Server) addListener(l net.Listener) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.listeners[l] = struct{}{}
	return true
}

func (s *Server) removeListener(l net.Listener) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.listeners, l)
}

// register admits conn into the session set unless the server is
// draining, lame-ducking, or at its connection limit; on refusal it
// reports which pressure refused so the caller can signal it.
func (s *Server) register(conn net.Conn) (bool, wire.BusyReason) {
	if s.lameDuck.Load() {
		return false, wire.ReasonLameDuck
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, wire.ReasonDraining
	}
	if len(s.conns) >= s.cfg.MaxConns {
		return false, wire.ReasonConns
	}
	s.conns[conn] = struct{}{}
	return true, 0
}

// refuse closes a connection register would not admit. Every refusal is
// counted Rejected — including the legacy silent-close path, so
// pre-upgrade clients' rejections stay observable in Counters and
// /metrics — and with an admission policy configured the close is
// preceded by an explicit wire.Busy so the client can tell "busy" from a
// network reset. The Busy write runs off the caller's path: a refused
// peer that never reads must not stall the accept loop. The write is
// bounded by the write deadline when a Clock is configured; without one
// it ends when the peer reads or closes.
func (s *Server) refuse(conn net.Conn, reason wire.BusyReason) {
	s.count(func(c *Counters) { c.Rejected++ })
	a := s.cfg.Admission
	if a == nil {
		conn.Close()
		return
	}
	b := wire.Busy{RetryAfter: a.RetryAfter(), Reason: reason}
	//lint:ignore ctxloop refusal boundary: the Busy write must not stall the accept loop, and it self-terminates — the write deadline bounds it under a Clock, the conn.Close ends it otherwise
	go func() {
		s.sendBusy(conn, b)
		conn.Close()
	}()
}

// sendBusy writes one Busy control frame outside any session's emit path,
// so it is never sequence-numbered or journaled. FramesOut and BusySent
// move in one transition; a failed write counts nothing.
func (s *Server) sendBusy(conn net.Conn, b wire.Busy) {
	s.writeDeadline(conn)
	if wire.NewWriter(conn).Write(b) == nil {
		s.cmu.Lock()
		s.ctrs.BusySent++
		s.ctrs.FramesOut++
		s.cmu.Unlock()
	}
}

func (s *Server) unregister(conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, conn)
}

func (s *Server) draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}
