# Local targets mirror .github/workflows/ci.yml one to one, so what passes
# here passes there. staticcheck/govulncheck are optional locally (skipped
# with a notice when not installed); CI always runs them.

GO ?= go

.PHONY: all build test race fuzz lint vet determinism clean

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz:
	$(GO) test ./internal/tracefile -run Fuzz

vet:
	$(GO) vet ./...

# lint = go vet + the project analyzer suite (notime, norand, maporder,
# units, ctxloop), plus staticcheck/govulncheck when available.
lint: vet
	$(GO) run ./cmd/etrain-vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (CI runs it)"; \
	fi

# End-to-end determinism check: full registry, sequential vs 8 workers,
# byte-compared — same as the CI determinism job.
determinism:
	$(GO) build -o /tmp/etrain-experiments ./cmd/etrain-experiments
	/tmp/etrain-experiments -parallel 1 -ablations > /tmp/etrain-seq.txt
	/tmp/etrain-experiments -parallel 8 -ablations > /tmp/etrain-par.txt
	diff -u /tmp/etrain-seq.txt /tmp/etrain-par.txt

clean:
	$(GO) clean ./...
	rm -f /tmp/etrain-experiments /tmp/etrain-seq.txt /tmp/etrain-par.txt
