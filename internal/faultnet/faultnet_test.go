package faultnet

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// chatter pushes total bytes through a wrapped pipe, returning how many
// arrived and the first error each side saw. The reader drains from its
// own goroutine so synchronous transports cannot deadlock.
func chatter(w net.Conn, r net.Conn, total int) (arrived int, writeErr, readErr error) {
	done := make(chan struct{})
	var got int
	var rerr error
	go func() {
		defer close(done)
		buf := make([]byte, 256)
		for {
			n, err := r.Read(buf)
			got += n
			if err != nil {
				rerr = err
				return
			}
			if got >= total {
				return
			}
		}
	}()
	payload := bytes.Repeat([]byte{0xAB}, total)
	_, writeErr = w.Write(payload)
	w.Close()
	<-done
	return got, writeErr, rerr
}

// faultTrace records the observable outcome of one scripted exchange so
// runs can be compared for determinism.
func faultTrace(t *testing.T, seed int64, cfg Config) string {
	t.Helper()
	cfg.Seed = seed
	in, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for connID := uint64(0); connID < 8; connID++ {
		a, b := net.Pipe()
		wa := in.Wrap(a, connID)
		wb := in.Wrap(b, connID, 99)
		n, werr, rerr := chatter(wa, wb, 1024)
		out = append(out, fmt.Sprintf("conn%d: n=%d write=%v read=%v", connID, n, werr, rerr))
		wa.Close()
		wb.Close()
	}
	s := in.Stats()
	out = append(out, fmt.Sprintf("stats: drops=%d resets=%d truncations=%d", s.Drops, s.Resets, s.Truncations))
	return fmt.Sprint(out)
}

// TestDeterministicSchedule verifies the full fault schedule is a pure
// function of the seed: same seed, same trace; different seed, a
// different one.
func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{Drop: 0.05, Reset: 0.05, Truncate: 0.05, MaxChunk: 7}
	a := faultTrace(t, 1, cfg)
	b := faultTrace(t, 1, cfg)
	if a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	c := faultTrace(t, 2, cfg)
	if a == c {
		t.Fatalf("different seeds produced identical fault traces:\n%s", a)
	}
}

// TestNoFaultsPassThrough verifies a zero-rate injector neither wraps
// nor corrupts.
func TestNoFaultsPassThrough(t *testing.T) {
	in, err := New(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	a, b := net.Pipe()
	if in.Wrap(a, 1) != a {
		t.Error("zero-rate Wrap returned a new conn, want pass-through")
	}
	n, werr, rerr := chatter(in.Wrap(a, 1), in.Wrap(b, 2), 512)
	if n != 512 || werr != nil {
		t.Errorf("clean transfer: n=%d write=%v read=%v", n, werr, rerr)
	}
	if s := in.Stats(); s.Wrapped != 0 {
		t.Errorf("wrapped = %d, want 0", s.Wrapped)
	}
}

// TestChunkingPreservesBytes verifies MaxChunk fragments traffic without
// loss or reordering.
func TestChunkingPreservesBytes(t *testing.T) {
	in, err := New(Config{Seed: 3, MaxChunk: 3})
	if err != nil {
		t.Fatal(err)
	}
	a, b := net.Pipe()
	wa, wb := in.Wrap(a, 0), in.Wrap(b, 1)
	payload := make([]byte, 1000)
	for i := range payload {
		payload[i] = byte(i)
	}
	got := make(chan []byte, 1)
	go func() {
		data, _ := io.ReadAll(wb)
		got <- data
	}()
	if _, err := wa.Write(payload); err != nil {
		t.Fatal(err)
	}
	wa.Close()
	if data := <-got; !bytes.Equal(data, payload) {
		t.Fatalf("chunked transfer corrupted: %d bytes, want %d intact", len(data), len(payload))
	}
}

// TestResetIsNetError verifies injected resets surface as a non-timeout
// net.Error and kill the conn for the peer too.
func TestResetIsNetError(t *testing.T) {
	in, err := New(Config{Seed: 5, Reset: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, b := net.Pipe()
	defer b.Close()
	wa := in.Wrap(a, 0)
	_, werr := wa.Write([]byte("x"))
	if !errors.Is(werr, ErrReset) {
		t.Fatalf("write error %v, want ErrReset", werr)
	}
	var nerr net.Error
	if !errors.As(werr, &nerr) || nerr.Timeout() {
		t.Fatalf("reset %v is not a non-timeout net.Error", werr)
	}
	// The kill closed the underlying conn: the peer's read fails.
	if _, err := b.Read(make([]byte, 1)); err == nil {
		t.Error("peer read succeeded after reset, want closed")
	}
}

// TestTruncateDeliversPrefix verifies a truncation delivers a strict,
// nonempty prefix before the reset — a torn frame, not a clean cut.
func TestTruncateDeliversPrefix(t *testing.T) {
	in, err := New(Config{Seed: 11, Truncate: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, b := net.Pipe()
	wa := in.Wrap(a, 0)
	got := make(chan []byte, 1)
	go func() {
		data, _ := io.ReadAll(b)
		got <- data
	}()
	payload := bytes.Repeat([]byte{0xCD}, 64)
	n, werr := wa.Write(payload)
	if !errors.Is(werr, ErrReset) {
		t.Fatalf("write error %v, want ErrReset", werr)
	}
	if n <= 0 || n >= len(payload) {
		t.Fatalf("truncation wrote %d of %d bytes, want strict nonempty prefix", n, len(payload))
	}
	data := <-got
	if !bytes.Equal(data, payload[:len(data)]) {
		t.Fatal("delivered bytes are not a prefix of the payload")
	}
	if s := in.Stats(); s.Truncations != 1 {
		t.Errorf("truncations = %d, want 1", s.Truncations)
	}
}

// TestDialerConnectFail verifies dial failures follow the configured
// rate deterministically and successful dials produce wrapped conns.
func TestDialerConnectFail(t *testing.T) {
	in, err := New(Config{Seed: 13, ConnectFail: 0.5, MaxChunk: 4})
	if err != nil {
		t.Fatal(err)
	}
	var conns []net.Conn
	dial := in.Dialer(func() (net.Conn, error) {
		a, b := net.Pipe()
		conns = append(conns, a, b)
		return a, nil
	}, 42)
	fails := 0
	for i := 0; i < 40; i++ {
		conn, err := dial()
		if err != nil {
			if !errors.Is(err, ErrReset) {
				t.Fatalf("dial failure %v does not wrap ErrReset", err)
			}
			fails++
			continue
		}
		if conn == conns[len(conns)-2] {
			t.Fatal("successful dial returned the raw conn, want fault-wrapped")
		}
	}
	if fails == 0 || fails == 40 {
		t.Fatalf("connect-fail rate 0.5 produced %d/40 failures", fails)
	}
	if s := in.Stats(); s.DialFails != uint64(fails) {
		t.Errorf("DialFails = %d, want %d", s.DialFails, fails)
	}
	for _, c := range conns {
		c.Close()
	}
}

// TestListenerWrapsAccepts verifies accepted conns carry the fault
// model.
func TestListenerWrapsAccepts(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	in, err := New(Config{Seed: 17, Reset: 1})
	if err != nil {
		t.Fatal(err)
	}
	fl := in.Listen(l)
	defer fl.Close()
	accepted := make(chan error, 1)
	go func() {
		conn, err := fl.Accept()
		if err != nil {
			accepted <- err
			return
		}
		defer conn.Close()
		_, err = conn.Read(make([]byte, 1))
		accepted <- err
	}()
	client, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.Write([]byte("x"))
	if err := <-accepted; !errors.Is(err, ErrReset) {
		t.Fatalf("accepted conn read error %v, want injected ErrReset", err)
	}
	if s := in.Stats(); s.Wrapped != 1 {
		t.Errorf("wrapped = %d, want 1", s.Wrapped)
	}
}

// TestConfigValidation rejects out-of-range rates.
func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Drop: -0.1},
		{Reset: 1.5},
		{Truncate: 2},
		{ConnectFail: -1},
		{MaxChunk: -1},
		{Latency: -time.Second},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted invalid config", cfg)
		}
	}
}

// TestLatencyDraws verifies latency is imposed through the injected
// Sleep and only when one is provided.
func TestLatencyDraws(t *testing.T) {
	var mu sync.Mutex
	var slept []time.Duration
	sleep := func(d time.Duration) {
		mu.Lock()
		slept = append(slept, d)
		mu.Unlock()
	}
	in, err := New(Config{Seed: 19, Latency: time.Millisecond, Sleep: sleep, MaxChunk: 8})
	if err != nil {
		t.Fatal(err)
	}
	a, b := net.Pipe()
	wa, wb := in.Wrap(a, 0), in.Wrap(b, 1)
	if n, werr, rerr := chatter(wa, wb, 64); n != 64 {
		t.Fatalf("transfer n=%d write=%v read=%v", n, werr, rerr)
	}
	if len(slept) == 0 {
		t.Fatal("latency configured but Sleep never called")
	}
	for _, d := range slept {
		if d < 0 {
			t.Fatalf("negative sleep %v", d)
		}
	}
}
