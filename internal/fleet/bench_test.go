package fleet

import (
	"testing"
	"time"
)

// BenchmarkDevicePair measures one device's with/without-eTrain run pair —
// the fleet engine's unit of work.
func BenchmarkDevicePair(b *testing.B) {
	cfg := Config{Devices: 1, Seed: 1, Theta: 4.0, K: 20}
	norm, pop, err := cfg.normalize()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := runDevice(&norm, pop, i); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleet10k runs a 10k-device population end to end (one CPU per
// worker, 2-minute sessions) — the guardrail number for population-scale
// throughput and aggregate memory.
func BenchmarkFleet10k(b *testing.B) {
	cfg := Config{
		Devices: 10000,
		Workers: -1,
		Seed:    42,
		Horizon: 2 * time.Minute,
		Theta:   4.0,
		K:       20,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
