package main

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"etrain/internal/client"
)

// TestAbsorbCountsUnreconciledSessions guards the healing fold: a
// degraded session that finished locally and never reconciled must be
// counted separately from one that degraded and then reconciled —
// the report used to conflate the two.
func TestAbsorbCountsUnreconciledSessions(t *testing.T) {
	var r report
	r.absorb(&client.Outcome{
		Degraded: true, CompletedLocally: true,
		Reconnects: 3, Resumes: 2, Replays: 1,
		DegradedEvents: 40, DegradedTime: 2 * time.Millisecond,
	})
	r.absorb(&client.Outcome{Degraded: true, Reconnects: 1, Resumes: 1})
	r.absorb(&client.Outcome{})

	if r.DegradedSessions != 2 {
		t.Errorf("DegradedSessions = %d, want 2", r.DegradedSessions)
	}
	if r.DegradedUnreconciled != 1 {
		t.Errorf("DegradedUnreconciled = %d, want 1", r.DegradedUnreconciled)
	}
	if r.Reconnects != 4 || r.Resumes != 3 || r.Replays != 1 {
		t.Errorf("healing counters = %d/%d/%d, want 4/3/1", r.Reconnects, r.Resumes, r.Replays)
	}
	if r.DegradedEvents != 40 || r.DegradedMs != 2 {
		t.Errorf("degraded events/ms = %d/%.0f, want 40/2", r.DegradedEvents, r.DegradedMs)
	}
}

// TestReportJSONCarriesUnreconciled pins the field name the benchmark
// fold reads.
func TestReportJSONCarriesUnreconciled(t *testing.T) {
	b, err := json.Marshal(report{DegradedUnreconciled: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"degraded_unreconciled":7`) {
		t.Errorf("report JSON missing degraded_unreconciled: %s", b)
	}
}
