// Command etrain-capture classifies a transmission-log capture into flows,
// identifying heartbeat cycles the way the paper's §II-B Wireshark analysis
// does — from packet sizes and timestamps alone.
//
// Usage:
//
//	etrain-capture -in transmissions.csv
//	etrain-capture -demo            # classify a synthetic mixed capture
//
// The input is the CSV format written by cmd/etrain-powertrace's sim
// scenario or internal/tracefile's WriteTransmissionLog
// (start_s,duration_s,size_bytes,kind,app); the kind/app columns are
// ignored — classification is blind.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"etrain/internal/capture"
	"etrain/internal/heartbeat"
	"etrain/internal/randx"
	"etrain/internal/tracefile"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "etrain-capture:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in        = flag.String("in", "", "transmission log CSV to classify")
		demo      = flag.Bool("demo", false, "classify a synthetic mixed capture instead")
		tolerance = flag.Duration("tolerance", 3*time.Second, "cycle jitter tolerance")
	)
	flag.Parse()

	var packets []capture.Packet
	switch {
	case *demo:
		packets = demoCapture()
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		tl, err := tracefile.ReadTransmissionLog(f)
		if err != nil {
			return err
		}
		packets = capture.FromTimeline(tl)
	default:
		return fmt.Errorf("need -in <file> or -demo")
	}

	flows := capture.Classify(packets, capture.Options{Tolerance: *tolerance})
	fmt.Printf("%-8s %-10s %-22s %s\n", "size_B", "packets", "kind", "cycle")
	for _, f := range flows {
		cycle := "-"
		switch f.Kind {
		case capture.FlowHeartbeat:
			cycle = fmt.Sprintf("%.0fs", f.Cycle.Seconds())
		case capture.FlowAdaptiveHeartbeat:
			cycle = fmt.Sprintf("%.0f-%.0fs", f.CycleMin.Seconds(), f.CycleMax.Seconds())
		}
		fmt.Printf("%-8d %-10d %-22s %s\n", f.Size, f.Count, f.Kind, cycle)
	}
	hb := capture.Heartbeats(flows)
	fmt.Printf("\n%d of %d flows identified as heartbeats\n", len(hb), len(flows))
	return nil
}

// demoCapture mixes the five measured apps' heartbeats with random data.
func demoCapture() []capture.Packet {
	apps := append(heartbeat.DefaultTrio(), heartbeat.RenRen(), heartbeat.NetEase())
	horizon := 4 * time.Hour
	var packets []capture.Packet
	for _, b := range heartbeat.Merge(apps, horizon) {
		packets = append(packets, capture.Packet{At: b.At, Size: b.Size})
	}
	src := randx.New(1)
	for at := time.Duration(0); at < horizon; at += time.Duration(40+src.Intn(80)) * time.Second {
		packets = append(packets, capture.Packet{At: at, Size: int64(1000 + src.Intn(80000))})
	}
	return packets
}
