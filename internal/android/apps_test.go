package android

import (
	"testing"
	"time"

	"etrain/internal/heartbeat"
	"etrain/internal/randx"
	"etrain/internal/workload"
)

func TestMailAppGeneratesTraffic(t *testing.T) {
	d := newDevice(t)
	defaultService(t, d, 0)
	horizon := 2 * time.Hour
	app := NewMailApp(d, randx.New(1), 3*time.Minute, 5*time.Minute, horizon)
	for _, tr := range heartbeat.DefaultTrio() {
		if _, err := StartTrain(d, tr, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Run(horizon); err != nil {
		t.Fatal(err)
	}
	delivered := len(app.Cargo().Delivered()) + app.Cargo().PendingCount()
	// Poisson(5min over 2h) ≈ 24 composes plus sync batches.
	if delivered < 12 {
		t.Fatalf("mail app produced only %d packets", delivered)
	}
}

func TestMailAppDeterministic(t *testing.T) {
	run := func() int {
		d := newDevice(t)
		defaultService(t, d, 0)
		app := NewMailApp(d, randx.New(2), 3*time.Minute, 5*time.Minute, time.Hour)
		if _, err := StartTrain(d, heartbeat.WeChat(), true); err != nil {
			t.Fatal(err)
		}
		if err := d.Run(time.Hour); err != nil {
			t.Fatal(err)
		}
		return len(app.Cargo().Delivered())
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("mail app not deterministic: %d vs %d", a, b)
	}
}

func TestWeiboAppReplaysTrace(t *testing.T) {
	d := newDevice(t)
	defaultService(t, d, 0)
	trace := workload.SynthesizeUser(randx.New(3), "u", workload.ClassModerate)
	app := NewWeiboApp(d, 30*time.Second, trace)
	if _, err := StartTrain(d, heartbeat.WeChat(), true); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(workload.SessionLength); err != nil {
		t.Fatal(err)
	}
	withPayload := 0
	for _, r := range trace {
		if r.Size > 0 {
			withPayload++
		}
	}
	total := len(app.Cargo().Delivered()) + app.Cargo().PendingCount()
	if total != withPayload {
		t.Fatalf("weibo app holds %d packets, trace has %d with payload", total, withPayload)
	}
}

func TestCloudAppSubmitsChunkBatches(t *testing.T) {
	d := newDevice(t)
	defaultService(t, d, 0)
	app := NewCloudApp(d, randx.New(4), 5*time.Minute, 10*time.Minute, 2*time.Hour)
	if _, err := StartTrain(d, heartbeat.QQ(), true); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	total := len(app.Cargo().Delivered()) + app.Cargo().PendingCount()
	if total < 5 {
		t.Fatalf("cloud app produced only %d chunks", total)
	}
	// Chunks are large.
	for _, dp := range app.Cargo().Delivered() {
		_ = dp
	}
}

func TestThreeAppsTogetherOnStack(t *testing.T) {
	d := newDevice(t)
	svc := defaultService(t, d, 2.0)
	src := randx.New(5)
	horizon := time.Hour
	mail := NewMailApp(d, src.Split(), 3*time.Minute, 5*time.Minute, horizon)
	weibo := NewWeiboApp(d, 90*time.Second, workload.SynthesizeUser(src.Split(), "u", workload.ClassActive))
	cloud := NewCloudApp(d, src.Split(), 5*time.Minute, 15*time.Minute, horizon)
	for _, tr := range heartbeat.DefaultTrio() {
		if _, err := StartTrain(d, tr, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Run(horizon); err != nil {
		t.Fatal(err)
	}
	if svc.BeatsObserved() == 0 {
		t.Fatal("no heartbeats observed")
	}
	delivered := len(mail.Cargo().Delivered()) + len(weibo.Cargo().Delivered()) + len(cloud.Cargo().Delivered())
	if delivered == 0 {
		t.Fatal("no cargo delivered")
	}
	if d.Energy(horizon).Total() <= 0 {
		t.Fatal("no energy accounted")
	}
}
