package client

import (
	"fmt"
	"net"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"etrain/internal/fleet"
	"etrain/internal/server"
	"etrain/internal/workload"
)

const (
	testTheta   = 4.0
	testK       = 20
	testHorizon = 2 * time.Minute
)

// testSession synthesizes one device's wire replay.
func testSession(t *testing.T, index int) server.Session {
	t.Helper()
	pop, err := workload.NewPopulation(workload.DefaultMix())
	if err != nil {
		t.Fatal(err)
	}
	dev, err := fleet.SynthesizeDevice(7, pop, index, testHorizon)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := server.SessionFromDevice(dev, testTheta, testK)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

// baseline runs the session over a clean loopback with the reference
// Drive client.
func baseline(t *testing.T, sess server.Session) *server.DeviceOutcome {
	t.Helper()
	srv := server.New(server.Config{})
	c, sconn := net.Pipe()
	srvErr := make(chan error, 1)
	go func() { srvErr <- srv.ServeConn(sconn) }()
	out, err := server.Drive(c, sess)
	if err != nil {
		t.Fatalf("baseline Drive: %v", err)
	}
	if err := <-srvErr; err != nil {
		t.Fatalf("baseline ServeConn: %v", err)
	}
	return out
}

// loopbackDialer dials srv over in-process pipes, wrapping each client
// side through wrap (nil for pass-through).
func loopbackDialer(srv *server.Server, wrap func(attempt int, c net.Conn) net.Conn) func() (net.Conn, error) {
	attempt := new(atomic.Int64)
	return func() (net.Conn, error) {
		c, sconn := net.Pipe()
		go srv.ServeConn(sconn)
		if wrap != nil {
			return wrap(int(attempt.Add(1)), c), nil
		}
		attempt.Add(1)
		return c, nil
	}
}

// assertEquivalent fails unless the resilient outcome matches the clean
// baseline frame for frame.
func assertEquivalent(t *testing.T, got *Outcome, want *server.DeviceOutcome) {
	t.Helper()
	if len(got.Decisions) != len(want.Decisions) {
		t.Fatalf("decisions: %d, baseline %d", len(got.Decisions), len(want.Decisions))
	}
	for i := range got.Decisions {
		if !reflect.DeepEqual(got.Decisions[i], want.Decisions[i]) {
			t.Fatalf("decision %d:\n got %+v\nwant %+v", i, got.Decisions[i], want.Decisions[i])
		}
	}
	if got.Stats != want.Stats {
		t.Fatalf("stats:\n got %+v\nwant %+v", got.Stats, want.Stats)
	}
}

// waitFor polls cond briefly: server-side counters settle a moment
// after the client observes its final ack.
func waitFor(t *testing.T, cond func() bool, msg func() string) {
	t.Helper()
	for i := 0; i < 500; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Error(msg())
}

// limitConn kills the connection (both directions, underlying close)
// after a fixed number of writes, simulating a transport that dies
// mid-stream.
type limitConn struct {
	net.Conn
	writes int32
}

func (c *limitConn) Write(p []byte) (int, error) {
	if atomic.AddInt32(&c.writes, -1) < 0 {
		c.Conn.Close()
		return 0, net.ErrClosed
	}
	return c.Conn.Write(p)
}

// TestCleanRunMatchesDrive verifies the resilient client over a healthy
// transport is indistinguishable from the reference Drive client.
func TestCleanRunMatchesDrive(t *testing.T) {
	for i := 0; i < 3; i++ {
		sess := testSession(t, i)
		want := baseline(t, sess)
		srv := server.New(server.Config{})
		out, err := Run(Config{Dial: loopbackDialer(srv, nil)}, sess)
		if err != nil {
			t.Fatalf("device %d: %v", i, err)
		}
		assertEquivalent(t, out, want)
		if out.Attempts != 1 || out.Reconnects != 0 || out.Resumes != 0 || out.Degraded {
			t.Errorf("device %d clean run stats: %+v", i, out)
		}
	}
}

// TestCutSessionResumes kills the first connection a few frames in and
// verifies the client resumes the parked server session with zero
// decision loss.
func TestCutSessionResumes(t *testing.T) {
	sess := testSession(t, 0)
	want := baseline(t, sess)
	// The device-0 session takes 6 client writes (Hello + 4 events +
	// finish ack); every budget below that cuts mid-stream.
	for _, budget := range []int32{2, 3, 5} {
		t.Run(fmt.Sprintf("writes_%d", budget), func(t *testing.T) {
			srv := server.New(server.Config{})
			dial := loopbackDialer(srv, func(attempt int, c net.Conn) net.Conn {
				if attempt == 1 {
					return &limitConn{Conn: c, writes: budget}
				}
				return c
			})
			// A real Sleep matters here: the client sees the cut (its own
			// write fails) before the server does, so the first Resume can
			// race the park; the backed-off retry needs actual wall time.
			out, err := Run(Config{
				Dial:        dial,
				BaseBackoff: 5 * time.Millisecond,
				MaxBackoff:  20 * time.Millisecond,
				Sleep:       time.Sleep,
			}, sess)
			if err != nil {
				t.Fatal(err)
			}
			assertEquivalent(t, out, want)
			if out.Reconnects < 1 || out.Resumes < 1 {
				t.Errorf("cut run never resumed: %+v", out)
			}
			waitFor(t, func() bool {
				s := srv.Stats()
				return s.Parked >= 1 && s.Resumed >= 1 && s.Completed == 1
			}, func() string { return fmt.Sprintf("server counters never settled: %+v", srv.Stats()) })
		})
	}
}

// TestResumeRefusedFallsBackToReplay runs against a server with parking
// disabled: the resume handshake dies, and the client must heal with a
// full Hello replay, discarding regenerated duplicates.
func TestResumeRefusedFallsBackToReplay(t *testing.T) {
	sess := testSession(t, 1)
	want := baseline(t, sess)
	srv := server.New(server.Config{ResumeGrace: -1})
	dial := loopbackDialer(srv, func(attempt int, c net.Conn) net.Conn {
		if attempt == 1 {
			return &limitConn{Conn: c, writes: 6}
		}
		return c
	})
	out, err := Run(Config{Dial: dial}, sess)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, out, want)
	if out.Replays < 1 {
		t.Errorf("refused resume never fell back to full replay: %+v", out)
	}
	if out.Resumes != 0 {
		t.Errorf("resumes = %d against a no-resume server", out.Resumes)
	}
}

// TestUnreachableServerDegrades verifies a client that can never dial
// completes the session entirely through local scheduling, with
// decisions identical to the server's.
func TestUnreachableServerDegrades(t *testing.T) {
	sess := testSession(t, 2)
	want := baseline(t, sess)
	dials := 0
	out, err := Run(Config{
		Dial:        func() (net.Conn, error) { dials++; return nil, net.ErrClosed },
		MaxAttempts: 2,
		RetryEvery:  50,
	}, sess)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, out, want)
	if !out.Degraded || out.DegradedStints < 1 || out.DegradedEvents == 0 {
		t.Errorf("unreachable run not marked degraded: %+v", out)
	}
	if dials != out.Attempts {
		t.Errorf("attempts = %d, dial calls = %d", out.Attempts, dials)
	}
}

// TestDegradeThenReconcile is the full healing arc: admitted, cut,
// unreachable long enough to degrade, then the server comes back and a
// mid-stint probe reconciles via Resume — with the client ahead of the
// parked server session, exercising the server's suppression of frames
// the client already generated locally.
func TestDegradeThenReconcile(t *testing.T) {
	sess := testSession(t, 0)
	want := baseline(t, sess)
	srv := server.New(server.Config{})
	attempt := new(atomic.Int64)
	dial := func() (net.Conn, error) {
		switch n := attempt.Add(1); {
		case n == 1:
			// Admitted, then cut after the Hello and two events.
			c, sconn := net.Pipe()
			go srv.ServeConn(sconn)
			return &limitConn{Conn: c, writes: 3}, nil
		case n == 2:
			return nil, net.ErrClosed
		default:
			c, sconn := net.Pipe()
			go srv.ServeConn(sconn)
			return c, nil
		}
	}
	out, err := Run(Config{
		Dial:        dial,
		MaxAttempts: 2,
		RetryEvery:  2,
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
		Sleep:       time.Sleep,
	}, sess)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, out, want)
	if !out.Degraded {
		t.Errorf("run never degraded: %+v", out)
	}
	if out.Resumes < 1 {
		t.Errorf("reconciliation never resumed: %+v", out)
	}
	waitFor(t, func() bool { return srv.Stats().Resumed >= 1 },
		func() string { return fmt.Sprintf("server never counted the resume: %+v", srv.Stats()) })
}

// TestBackoffDeterministic verifies the reconnect backoff schedule is a
// pure function of the seed, exponential, jittered and capped.
func TestBackoffDeterministic(t *testing.T) {
	sess := testSession(t, 1)
	schedule := func(seed int64) []time.Duration {
		var slept []time.Duration
		attempt := 0
		srv := server.New(server.Config{})
		dial := func() (net.Conn, error) {
			attempt++
			if attempt <= 6 {
				return nil, net.ErrClosed
			}
			c, sconn := net.Pipe()
			go srv.ServeConn(sconn)
			return c, nil
		}
		out, err := Run(Config{
			Dial:        dial,
			Seed:        seed,
			MaxAttempts: 10,
			BaseBackoff: 10 * time.Millisecond,
			MaxBackoff:  40 * time.Millisecond,
			Sleep:       func(d time.Duration) { slept = append(slept, d) },
		}, sess)
		if err != nil {
			t.Fatal(err)
		}
		if out.Degraded {
			t.Fatalf("run degraded before exhausting backoff: %+v", out)
		}
		return slept
	}
	a := schedule(3)
	b := schedule(3)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different backoff schedules:\n%v\n%v", a, b)
	}
	c := schedule(4)
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds, identical backoff schedules: %v", a)
	}
	if len(a) != 6 {
		t.Fatalf("6 failed dials slept %d times", len(a))
	}
	for i, d := range a {
		base := 10 * time.Millisecond << uint(i)
		if base > 40*time.Millisecond {
			base = 40 * time.Millisecond
		}
		if d < base/2 || d > base {
			t.Errorf("backoff %d = %v outside [%v, %v]", i, d, base/2, base)
		}
	}
}
