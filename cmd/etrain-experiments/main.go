// Command etrain-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	etrain-experiments            # run everything
//	etrain-experiments -run fig7a # run one experiment
//	etrain-experiments -list      # list experiment IDs and claims
package main

import (
	"flag"
	"fmt"
	"os"

	"etrain/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "etrain-experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id        = flag.String("run", "all", "experiment ID to run, or 'all'")
		seed      = flag.Int64("seed", 5, "random seed")
		list      = flag.Bool("list", false, "list available experiments and exit")
		ablations = flag.Bool("ablations", false, "include the design-choice ablation studies")
		format    = flag.String("format", "text", "output format: text | markdown")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-22s %s\n", e.ID, e.Claim)
		}
		for _, e := range experiments.Ablations() {
			fmt.Printf("%-22s %s\n", e.ID, e.Claim)
		}
		return nil
	}

	opts := experiments.Options{Seed: *seed}
	var entries []experiments.Entry
	if *id == "all" {
		entries = experiments.All()
		if *ablations {
			entries = append(entries, experiments.Ablations()...)
		}
	} else {
		entry, err := experiments.ByID(*id)
		if err != nil {
			return err
		}
		entries = []experiments.Entry{entry}
	}
	for _, e := range entries {
		tbl, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		switch *format {
		case "markdown":
			fmt.Printf("**Paper claim:** %s\n\n", e.Claim)
			if err := tbl.Markdown(os.Stdout); err != nil {
				return err
			}
		case "text":
			fmt.Printf("paper claim: %s\n", e.Claim)
			if err := tbl.Fprint(os.Stdout); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
	}
	return nil
}
