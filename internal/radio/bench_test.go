package radio

import (
	"testing"
	"time"
)

func buildTimeline(b *testing.B, n int) *Timeline {
	b.Helper()
	tl := &Timeline{}
	for i := 0; i < n; i++ {
		err := tl.Append(Transmission{
			Start:  time.Duration(i) * 12 * time.Second,
			TxTime: 200 * time.Millisecond,
			Size:   2048,
			Kind:   TxData,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return tl
}

// BenchmarkAccountEnergy measures the tail-energy fold over a 2-hour-scale
// timeline (~600 transmissions).
func BenchmarkAccountEnergy(b *testing.B) {
	model := GalaxyS43G()
	tl := buildTimeline(b, 600)
	horizon := 2 * time.Hour
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := tl.AccountEnergy(model, horizon)
		if e.Total() <= 0 {
			b.Fatal("no energy")
		}
	}
}

// BenchmarkPowerTrace measures rendering a 0.1 s-sampled power trace of a
// 10-minute window.
func BenchmarkPowerTrace(b *testing.B) {
	model := GalaxyS43G()
	tl := buildTimeline(b, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		samples := tl.PowerTrace(model, 10*time.Minute, 100*time.Millisecond)
		if len(samples) == 0 {
			b.Fatal("no samples")
		}
	}
}

// BenchmarkStateAt measures the binary-searched state query.
func BenchmarkStateAt(b *testing.B) {
	model := GalaxyS43G()
	tl := buildTimeline(b, 600)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl.StateAt(model, time.Duration(i%7200)*time.Second)
	}
}
