package radio

import "time"

// DRXMachine is the live LTE/5G connected-mode DRX machine, the Machine
// counterpart for DRXModel: fed transmission starts and ends, it walks
// PSM → tx → ACTIVE → short cDRX → long cDRX → PSM in virtual time,
// notifying listeners of every transition at its true instant. Its
// state at any instant agrees with DRXModel.TailStateAt relative to the
// last transmission end (property-tested).
type DRXMachine struct {
	model   DRXModel
	state   State
	stateAt time.Duration
	// txEnd anchors the tail: every demotion boundary is an offset from
	// the end of the last transmission.
	txEnd     time.Duration
	listeners []func(Transition)
	// transmitting tracks nesting so overlapping notifications (which the
	// serialized link never produces, but defensive) do not corrupt state.
	transmitting int
	transitions  int
}

// NewDRXMachine returns a machine at the idle baseline (PSM) at time zero.
func NewDRXMachine(model DRXModel) *DRXMachine {
	return &DRXMachine{model: model, state: StatePSM}
}

// Subscribe registers a listener invoked synchronously on every
// transition, in subscription order.
func (m *DRXMachine) Subscribe(fn func(Transition)) {
	m.listeners = append(m.listeners, fn)
}

// State returns the machine's state at the given instant, accounting for
// DRX demotions that elapsed since the last event.
func (m *DRXMachine) State(now time.Duration) State {
	m.advance(now)
	return m.state
}

// Transitions reports how many state changes have occurred.
func (m *DRXMachine) Transitions() int { return m.transitions }

// Power returns the instantaneous extra power at now.
func (m *DRXMachine) Power(now time.Duration) float64 {
	return m.model.Power(m.State(now))
}

// BeginTransmission moves the machine to the transmitting state.
func (m *DRXMachine) BeginTransmission(now time.Duration) {
	m.advance(now)
	m.transmitting++
	if m.state != StateTransmitting {
		m.setState(now, StateTransmitting)
	}
}

// EndTransmission marks a transmission's end; the tail (inactivity
// timer, then DRX cycling) starts now.
func (m *DRXMachine) EndTransmission(now time.Duration) {
	m.advance(now)
	if m.transmitting > 0 {
		m.transmitting--
	}
	if m.transmitting == 0 && m.state == StateTransmitting {
		m.txEnd = now
		m.setState(now, m.model.TailStateAt(0))
	}
}

// nextTailBoundary returns the next offset after off at which the tail
// state can change, or a negative value once the tail is exhausted.
func (dm DRXModel) nextTailBoundary(off time.Duration) time.Duration {
	if off >= dm.ReleaseAfter {
		return -1
	}
	if off < dm.InactivityTimer {
		return minDuration(dm.InactivityTimer, dm.ReleaseAfter)
	}
	shortEnd := dm.InactivityTimer + dm.shortSpan()
	var cycleStart, cycle time.Duration
	if off < shortEnd {
		cycle = dm.ShortCycle
		cycleStart = dm.InactivityTimer + (off-dm.InactivityTimer)/cycle*cycle
	} else {
		cycle = dm.LongCycle
		cycleStart = shortEnd + (off-shortEnd)/cycle*cycle
	}
	next := cycleStart + cycle
	if edge := cycleStart + dm.OnDuration; off < edge {
		next = edge
	}
	return minDuration(next, dm.ReleaseAfter)
}

func minDuration(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

// advance applies the DRX demotions that elapsed between the last event
// and now, emitting the corresponding transitions at their true
// instants. Boundaries that do not change the state (e.g. the seam
// between two on-durations) advance the cursor silently.
func (m *DRXMachine) advance(now time.Duration) {
	if m.transmitting > 0 || now <= m.stateAt {
		return
	}
	if m.state == StatePSM || m.state == StateTransmitting {
		return
	}
	off := m.stateAt - m.txEnd
	for {
		next := m.model.nextTailBoundary(off)
		if next < 0 || next <= off {
			return
		}
		at := m.txEnd + next
		if now < at {
			return
		}
		st := m.model.TailStateAt(next)
		if st != m.state {
			m.setState(at, st)
		} else {
			m.stateAt = at
		}
		if st == StatePSM {
			return
		}
		off = next
	}
}

func (m *DRXMachine) setState(at time.Duration, to State) {
	tr := Transition{At: at, From: m.state, To: to}
	m.state = to
	m.stateAt = at
	m.transitions++
	for _, fn := range m.listeners {
		fn(tr)
	}
}
