package diurnal

import (
	"strings"
	"testing"
	"time"
)

func TestPresetsValidate(t *testing.T) {
	for _, name := range PresetNames() {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
		if p.Name != name {
			t.Errorf("preset %q reports name %q", name, p.Name)
		}
	}
	if _, err := ByName("nosuch"); err == nil || !strings.Contains(err.Error(), "unknown profile") {
		t.Errorf("ByName(nosuch) err = %v", err)
	}
}

func TestPresetMeansNearOne(t *testing.T) {
	// Presets reshape workloads without changing their volume much: the
	// period-mean of every curve (default and per class) stays near 1.
	for _, name := range PresetNames() {
		p, _ := ByName(name)
		curves := []*Curve{p.Default}
		for _, cc := range p.Classes {
			curves = append(curves, cc.Curve)
		}
		for i, c := range curves {
			if m := c.Mean(); m < 0.8 || m > 1.2 {
				t.Errorf("preset %q curve %d mean %v outside [0.8, 1.2]", name, i, m)
			}
		}
	}
}

func TestCurveFor(t *testing.T) {
	p := Week()
	if p.CurveFor("active") == p.Default {
		t.Error("active class should have its own curve")
	}
	if p.CurveFor("moderate") != p.Default {
		t.Error("moderate class should fall through to default")
	}
	if p.CurveFor("nosuch") != p.Default {
		t.Error("unknown class should fall through to default")
	}
	// Active users swing harder: deeper troughs, higher peaks.
	act := p.CurveFor("active")
	if act.Max() <= p.Default.Max() {
		t.Errorf("active max %v ≤ default max %v", act.Max(), p.Default.Max())
	}
	inact := p.CurveFor("inactive")
	if inact.Max() >= p.Default.Max() {
		t.Errorf("inactive max %v ≥ default max %v", inact.Max(), p.Default.Max())
	}
}

func TestProfileHash(t *testing.T) {
	a, b := Week(), Week()
	if a.Hash() != b.Hash() {
		t.Errorf("equal profiles hash differently: %s vs %s", a.Hash(), b.Hash())
	}
	if len(a.Hash()) != 16 {
		t.Errorf("hash %q not 16 hex digits", a.Hash())
	}
	mutations := []func(*Profile){
		func(p *Profile) { p.TimeScale = 2 },
		func(p *Profile) { p.PhaseJitter = time.Hour },
		func(p *Profile) { p.Start = 34 * time.Hour },
		func(p *Profile) { p.Name = "other" },
		func(p *Profile) {
			p.Events = []Event{{Name: "storm", At: time.Hour, Duration: time.Hour, CargoFactor: 3}}
		},
	}
	for i, mut := range mutations {
		m := Week()
		mut(m)
		if m.Hash() == a.Hash() {
			t.Errorf("mutation %d did not change the hash", i)
		}
	}
}

func TestWithEventsDoesNotMutate(t *testing.T) {
	p := Week()
	q := p.WithEvents(Event{Name: "storm", At: time.Hour, Duration: time.Hour, CargoFactor: 3})
	if len(p.Events) != 0 {
		t.Errorf("WithEvents mutated receiver: %d events", len(p.Events))
	}
	if len(q.Events) != 1 {
		t.Errorf("WithEvents result has %d events, want 1", len(q.Events))
	}
	if p.Hash() == q.Hash() {
		t.Error("event did not change the hash")
	}
}

func TestEventActive(t *testing.T) {
	oneShot := Event{At: 10 * time.Hour, Duration: 2 * time.Hour, CargoFactor: 3}
	recurring := Event{At: 3 * time.Hour, Duration: time.Hour, Every: Day, CargoFactor: 0.1}
	cases := []struct {
		e    Event
		d    time.Duration
		want bool
	}{
		{oneShot, 10*time.Hour - time.Nanosecond, false},
		{oneShot, 10 * time.Hour, true},
		{oneShot, 12*time.Hour - time.Nanosecond, true},
		{oneShot, 12 * time.Hour, false},
		{oneShot, 34 * time.Hour, false}, // one-shot does not recur
		{recurring, 3 * time.Hour, true},
		{recurring, 4 * time.Hour, false},
		{recurring, Day + 3*time.Hour + 30*time.Minute, true}, // next day
		{recurring, 6*Day + 3*time.Hour, true},                // any day
		{recurring, 0, false},                                 // before first window, wraps to prior day's tail
	}
	for _, tc := range cases {
		if got := tc.e.active(tc.d); got != tc.want {
			t.Errorf("active(%v) = %v, want %v (event %+v)", tc.d, got, tc.want, tc.e)
		}
	}
}

func TestProfileValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Profile)
		msg  string
	}{
		{"no name", func(p *Profile) { p.Name = "" }, "no name"},
		{"scale", func(p *Profile) { p.TimeScale = MaxTimeScale + 1 }, "time scale"},
		{"neg scale", func(p *Profile) { p.TimeScale = -1 }, "time scale"},
		{"jitter", func(p *Profile) { p.PhaseJitter = MaxPhaseJitter + 1 }, "phase jitter"},
		{"start", func(p *Profile) { p.Start = -time.Hour }, "start"},
		{"no default", func(p *Profile) { p.Default = nil }, "no default curve"},
		{"dup class", func(p *Profile) {
			p.Classes = append(p.Classes, ClassCurve{Class: "active", Curve: p.Default})
		}, "duplicate class"},
		{"unnamed class", func(p *Profile) {
			p.Classes = append(p.Classes, ClassCurve{Curve: p.Default})
		}, "no class name"},
		{"nil class curve", func(p *Profile) {
			p.Classes = append(p.Classes, ClassCurve{Class: "moderate"})
		}, "no curve"},
		{"event at", func(p *Profile) {
			p.Events = []Event{{At: -time.Hour, Duration: time.Hour, CargoFactor: 2}}
		}, "outside"},
		{"event duration", func(p *Profile) {
			p.Events = []Event{{At: time.Hour, CargoFactor: 2}}
		}, "duration"},
		{"event factor", func(p *Profile) {
			p.Events = []Event{{At: 0, Duration: time.Hour, CargoFactor: MaxEventFactor + 1}}
		}, "factor"},
		{"event idle", func(p *Profile) {
			p.Events = []Event{{At: 0, Duration: time.Hour}}
		}, "modulates nothing"},
		{"event every", func(p *Profile) {
			p.Events = []Event{{At: 0, Duration: 2 * time.Hour, Every: time.Hour, CargoFactor: 2}}
		}, "repeat period"},
	}
	for _, tc := range cases {
		p := Week()
		tc.mut(p)
		err := p.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.msg) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.msg)
		}
	}
	var nilProfile *Profile
	if err := nilProfile.Validate(); err == nil {
		t.Error("nil profile validated")
	}
}
