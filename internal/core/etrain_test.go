package core

import (
	"testing"
	"testing/quick"
	"time"

	"etrain/internal/profile"
	"etrain/internal/sched"
	"etrain/internal/workload"
)

func newETrain(t *testing.T, theta float64, k int) *ETrain {
	t.Helper()
	e, err := New(Options{Theta: theta, K: k})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func weiboPkt(id int, arrived time.Duration) workload.Packet {
	return workload.Packet{
		ID: id, App: "weibo", ArrivedAt: arrived, Size: 2048,
		Profile: profile.Weibo(30 * time.Second),
	}
}

func mailPkt(id int, arrived time.Duration) workload.Packet {
	return workload.Packet{
		ID: id, App: "mail", ArrivedAt: arrived, Size: 5120,
		Profile: profile.Mail(60 * time.Second),
	}
}

func ctxAt(now time.Duration, hb bool, q *sched.Queues) *sched.SlotContext {
	return &sched.SlotContext{
		Now: now, SlotLength: time.Second, HeartbeatNow: hb, Queues: q,
	}
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{Theta: -1, K: 1},
		{Theta: 0, K: 0},
		{Theta: 0, K: 1, Slot: -time.Second},
	}
	for i, o := range bad {
		if _, err := New(o); err == nil {
			t.Fatalf("options %d accepted: %+v", i, o)
		}
	}
	e, err := New(Options{Theta: 0.5, K: KInfinite})
	if err != nil {
		t.Fatal(err)
	}
	if e.SlotLength() != time.Second {
		t.Fatalf("default slot = %v, want 1s", e.SlotLength())
	}
	if e.Name() != "etrain" {
		t.Fatalf("Name = %q", e.Name())
	}
	if e.Theta() != 0.5 || e.K() != KInfinite {
		t.Fatal("accessors wrong")
	}
}

func TestEmptyQueuesSelectNothing(t *testing.T) {
	e := newETrain(t, 0.2, 20)
	got := e.Schedule(ctxAt(0, true, sched.NewQueues()))
	if got != nil {
		t.Fatalf("selected %v from empty queues", got)
	}
}

func TestBelowThetaNoHeartbeatHolds(t *testing.T) {
	e := newETrain(t, 10.0, 20) // enormous Θ
	q := sched.NewQueues()
	q.Add(weiboPkt(1, 0))
	got := e.Schedule(ctxAt(10*time.Second, false, q))
	if len(got) != 0 {
		t.Fatalf("released %d packets below Θ without heartbeat", len(got))
	}
	if q.Len() != 1 {
		t.Fatal("packet vanished")
	}
}

func TestHeartbeatReleasesUpToK(t *testing.T) {
	e := newETrain(t, 10.0, 3)
	q := sched.NewQueues()
	for i := 0; i < 5; i++ {
		q.Add(weiboPkt(i, 0))
	}
	got := e.Schedule(ctxAt(10*time.Second, true, q))
	if len(got) != 3 {
		t.Fatalf("heartbeat released %d packets, want K=3", len(got))
	}
	if q.Len() != 2 {
		t.Fatalf("queue has %d left, want 2", q.Len())
	}
	if err := sched.ValidateSelection(got); err != nil {
		t.Fatal(err)
	}
}

func TestHeartbeatWithKInfiniteFlushesAll(t *testing.T) {
	e := newETrain(t, 10.0, KInfinite)
	q := sched.NewQueues()
	for i := 0; i < 50; i++ {
		q.Add(weiboPkt(i, time.Duration(i)*time.Second))
	}
	got := e.Schedule(ctxAt(time.Minute, true, q))
	if len(got) != 50 {
		t.Fatalf("k=∞ heartbeat released %d, want all 50", len(got))
	}
	if q.Len() != 0 {
		t.Fatal("queue not drained")
	}
}

func TestCostAboveThetaReleasesOne(t *testing.T) {
	e := newETrain(t, 0.4, 20)
	q := sched.NewQueues()
	q.Add(weiboPkt(1, 0))
	// At t=20s the weibo cost is 20/30 ≈ 0.67 ≥ 0.4.
	got := e.Schedule(ctxAt(20*time.Second, false, q))
	if len(got) != 1 {
		t.Fatalf("released %d packets above Θ, want K(t)=1", len(got))
	}
}

func TestNonHeartbeatSlotCapsAtOne(t *testing.T) {
	e := newETrain(t, 0.1, 20)
	q := sched.NewQueues()
	for i := 0; i < 4; i++ {
		q.Add(weiboPkt(i, 0))
	}
	got := e.Schedule(ctxAt(20*time.Second, false, q))
	if len(got) != 1 {
		t.Fatalf("non-heartbeat slot released %d, want 1", len(got))
	}
}

func TestZeroCostQueueHeldAtThetaZero(t *testing.T) {
	// Fresh mail packets cost zero before their deadline; with Θ=0 they
	// must still wait for a train (the P(t) > 0 refinement).
	e := newETrain(t, 0, KInfinite)
	q := sched.NewQueues()
	q.Add(mailPkt(1, 0))
	got := e.Schedule(ctxAt(10*time.Second, false, q))
	if len(got) != 0 {
		t.Fatal("zero-cost mail released without a heartbeat at Θ=0")
	}
	got = e.Schedule(ctxAt(10*time.Second, true, q))
	if len(got) != 1 {
		t.Fatal("mail not piggybacked on heartbeat")
	}
}

func TestMailReleasedAfterDeadlineCrossing(t *testing.T) {
	e := newETrain(t, 0, KInfinite)
	q := sched.NewQueues()
	q.Add(mailPkt(1, 0))
	// Past the 60 s deadline the f1 cost turns positive.
	got := e.Schedule(ctxAt(65*time.Second, false, q))
	if len(got) != 1 {
		t.Fatal("late mail packet still held")
	}
}

func TestGreedyPrefersCostlierPacket(t *testing.T) {
	e := newETrain(t, 0, KInfinite)
	q := sched.NewQueues()
	fresh := weiboPkt(1, 25*time.Second) // 5 s old at t=30
	old := weiboPkt(2, 0)                // 30 s old at t=30
	q.Add(fresh)
	q.Add(old)
	got := e.Schedule(ctxAt(30*time.Second, false, q))
	if len(got) != 1 {
		t.Fatalf("released %d, want 1", len(got))
	}
	if got[0].ID != 2 {
		t.Fatalf("greedy released packet %d, want the older/costlier 2", got[0].ID)
	}
}

func TestGreedyDrainsInGainOrder(t *testing.T) {
	e := newETrain(t, 0, KInfinite)
	q := sched.NewQueues()
	q.Add(weiboPkt(1, 20*time.Second))
	q.Add(weiboPkt(2, 0))
	q.Add(weiboPkt(3, 10*time.Second))
	got := e.Schedule(ctxAt(30*time.Second, true, q))
	if len(got) != 3 {
		t.Fatalf("released %d, want 3", len(got))
	}
	// First pick must be the costliest packet (oldest); later picks see a
	// shrinking marginal gain but still drain everything.
	if got[0].ID != 2 {
		t.Fatalf("first release = %d, want 2", got[0].ID)
	}
}

func TestScheduleConservation(t *testing.T) {
	prop := func(arrivals []uint8, hb bool) bool {
		e, err := New(Options{Theta: 0.2, K: 5})
		if err != nil {
			return false
		}
		q := sched.NewQueues()
		for i, a := range arrivals {
			q.Add(weiboPkt(i, time.Duration(a)*time.Second))
		}
		before := q.Len()
		got := e.Schedule(ctxAt(300*time.Second, hb, q))
		if sched.ValidateSelection(got) != nil {
			return false
		}
		limit := 1
		if hb {
			limit = 5
		}
		if len(got) > limit {
			return false
		}
		return q.Len()+len(got) == before
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiAppSelection(t *testing.T) {
	e := newETrain(t, 0, KInfinite)
	q := sched.NewQueues()
	q.Add(mailPkt(1, 0))
	q.Add(weiboPkt(2, 0))
	q.Add(workload.Packet{
		ID: 3, App: "cloud", ArrivedAt: 0, Size: 100 << 10,
		Profile: profile.Cloud(120 * time.Second),
	})
	got := e.Schedule(ctxAt(30*time.Second, true, q))
	if len(got) != 3 {
		t.Fatalf("heartbeat flush released %d of 3 apps' packets", len(got))
	}
}
