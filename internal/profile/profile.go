// Package profile implements the delay-cost profile functions of eTrain
// (paper §VI-A, Fig. 6). A profile maps the delay d a packet has experienced
// to a scalar cost φ_u(d); the eTrain scheduler minimizes tail energy subject
// to a budget on the accumulated cost.
//
// The three concrete profiles mirror the paper's tested cargo apps:
//
//	Mail  (f1): zero before the deadline, then grows linearly:
//	            f1(d) = d/deadline − 1 for d ≥ deadline.
//	Weibo (f2): proportional before the deadline, then a constant plateau:
//	            f2(d) = d/deadline for d ≤ deadline, 2 afterwards.
//	Cloud (f3): proportional before the deadline, then three times steeper:
//	            f3(d) = d/deadline for d ≤ deadline, 3·d/deadline − 2 after.
package profile

import (
	"fmt"
	"time"
)

// Kind identifies one of the paper's profile families.
type Kind uint8

// Profile families. The iota starts at one so the zero Kind is invalid and
// cannot be confused with Mail.
const (
	KindMail Kind = iota + 1
	KindWeibo
	KindCloud
)

// String returns the family name.
func (k Kind) String() string {
	switch k {
	case KindMail:
		return "mail"
	case KindWeibo:
		return "weibo"
	case KindCloud:
		return "cloud"
	default:
		return fmt.Sprintf("profile.Kind(%d)", int(k))
	}
}

// Profile maps experienced delay to cost. Implementations must be
// non-negative and non-decreasing in d.
type Profile interface {
	// Cost returns φ(d) for delay d. Negative delays cost zero.
	Cost(d time.Duration) float64
	// Deadline returns the delay at which the packet is considered late.
	Deadline() time.Duration
	// Name identifies the profile for logs and traces.
	Name() string
}

// funcProfile implements Profile with an explicit cost function.
type funcProfile struct {
	name     string
	deadline time.Duration
	cost     func(dNorm float64) float64
}

var _ Profile = (*funcProfile)(nil)

func (p *funcProfile) Name() string            { return p.name }
func (p *funcProfile) Deadline() time.Duration { return p.deadline }

func (p *funcProfile) Cost(d time.Duration) float64 {
	if d <= 0 || p.deadline <= 0 {
		return 0
	}
	return p.cost(d.Seconds() / p.deadline.Seconds())
}

// Mail returns the f1 profile: zero cost before the deadline, then
// d/deadline − 1.
func Mail(deadline time.Duration) Profile {
	return &funcProfile{
		name:     "mail/f1",
		deadline: deadline,
		cost: func(x float64) float64 {
			if x <= 1 {
				return 0
			}
			return x - 1
		},
	}
}

// Weibo returns the f2 profile: d/deadline before the deadline, then the
// constant 2.
func Weibo(deadline time.Duration) Profile {
	return &funcProfile{
		name:     "weibo/f2",
		deadline: deadline,
		cost: func(x float64) float64 {
			if x <= 1 {
				return x
			}
			return 2
		},
	}
}

// Cloud returns the f3 profile: d/deadline before the deadline, then
// 3·d/deadline − 2.
func Cloud(deadline time.Duration) Profile {
	return &funcProfile{
		name:     "cloud/f3",
		deadline: deadline,
		cost: func(x float64) float64 {
			if x <= 1 {
				return x
			}
			return 3*x - 2
		},
	}
}

// New returns the profile of the given family with the given deadline.
func New(kind Kind, deadline time.Duration) (Profile, error) {
	switch kind {
	case KindMail:
		return Mail(deadline), nil
	case KindWeibo:
		return Weibo(deadline), nil
	case KindCloud:
		return Cloud(deadline), nil
	default:
		return nil, fmt.Errorf("profile: unknown kind %d", int(kind))
	}
}

// KindOf returns the family a profile belongs to. Custom profiles have no
// family and report ok = false; they cannot travel over the wire protocol.
func KindOf(p Profile) (Kind, bool) {
	if p == nil {
		return 0, false
	}
	switch p.Name() {
	case "mail/f1":
		return KindMail, true
	case "weibo/f2":
		return KindWeibo, true
	case "cloud/f3":
		return KindCloud, true
	default:
		return 0, false
	}
}

// Custom returns a profile with an arbitrary cost function of normalized
// delay x = d/deadline. The function must be non-negative and non-decreasing
// for the scheduler's analysis to hold; this is the caller's responsibility.
func Custom(name string, deadline time.Duration, cost func(dNorm float64) float64) Profile {
	return &funcProfile{name: name, deadline: deadline, cost: cost}
}
