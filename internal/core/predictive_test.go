package core

import (
	"testing"
	"time"

	"etrain/internal/heartbeat"
	"etrain/internal/sched"
)

func predictiveCtx(now time.Duration, beats []heartbeat.Beat, q *sched.Queues) *sched.SlotContext {
	return &sched.SlotContext{
		Now: now, SlotLength: time.Second,
		HeartbeatNow: len(beats) > 0, Beats: beats,
		Queues: q,
	}
}

func beat(app string, at time.Duration) heartbeat.Beat {
	return heartbeat.Beat{App: app, At: at, Size: 100}
}

func TestNewPredictiveValidates(t *testing.T) {
	if _, err := NewPredictive(Options{Theta: -1, K: 1}, 5); err == nil {
		t.Fatal("invalid inner options accepted")
	}
	p, err := NewPredictive(Options{Theta: 1, K: KInfinite}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "etrain-predictive" {
		t.Fatalf("name = %q", p.Name())
	}
	if p.SlotLength() != time.Second {
		t.Fatalf("slot = %v", p.SlotLength())
	}
}

func TestPredictiveLearnsCycle(t *testing.T) {
	p, err := NewPredictive(Options{Theta: 100, K: KInfinite}, 3)
	if err != nil {
		t.Fatal(err)
	}
	q := sched.NewQueues()
	// Feed three warmup beats of a 100 s cycle.
	for i := 0; i < 3; i++ {
		at := time.Duration(i) * 100 * time.Second
		p.Schedule(predictiveCtx(at, []heartbeat.Beat{beat("qq", at)}, q))
	}
	cycles := p.LearnedCycles()
	if cycles["qq"] != 100*time.Second {
		t.Fatalf("learned cycles = %v, want qq:100s", cycles)
	}
}

func TestPredictiveFiresOnPredictedSlot(t *testing.T) {
	p, err := NewPredictive(Options{Theta: 100, K: KInfinite}, 3)
	if err != nil {
		t.Fatal(err)
	}
	q := sched.NewQueues()
	for i := 0; i < 3; i++ {
		at := time.Duration(i) * 100 * time.Second
		p.Schedule(predictiveCtx(at, []heartbeat.Beat{beat("qq", at)}, q))
	}
	// A packet waits; Θ is huge, so only a (predicted) train releases it.
	q.Add(weiboPkt(1, 210*time.Second))
	if got := p.Schedule(predictiveCtx(250*time.Second, nil, q)); len(got) != 0 {
		t.Fatalf("released %d packets on a non-predicted slot", len(got))
	}
	// Next predicted beat: anchor 200 s + 100 s = 300 s (no live beat fed).
	got := p.Schedule(predictiveCtx(300*time.Second, nil, q))
	if len(got) != 1 {
		t.Fatal("predicted train slot did not release the packet")
	}
}

func TestPredictiveUsesRealBeatsDuringWarmup(t *testing.T) {
	p, err := NewPredictive(Options{Theta: 100, K: KInfinite}, 5)
	if err != nil {
		t.Fatal(err)
	}
	q := sched.NewQueues()
	q.Add(weiboPkt(1, 0))
	got := p.Schedule(predictiveCtx(50*time.Second, []heartbeat.Beat{beat("qq", 50*time.Second)}, q))
	if len(got) != 1 {
		t.Fatal("warmup beat did not release the packet")
	}
}

func TestSelectionPolicies(t *testing.T) {
	mk := func(sel SelectionPolicy) *ETrain {
		e, err := New(Options{Theta: 0, K: KInfinite, Selection: sel})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	fill := func() *sched.Queues {
		q := sched.NewQueues()
		q.Add(weiboPkt(1, 20*time.Second)) // newer, cheaper
		q.Add(weiboPkt(2, 0))              // older, costlier
		return q
	}
	// Non-heartbeat slot, K(t)=1: each policy picks its characteristic
	// packet.
	now := 30 * time.Second
	if got := mk(SelectEq9).Schedule(ctxAt(now, false, fill())); got[0].ID != 2 {
		t.Fatalf("eq9 picked %d, want costliest 2", got[0].ID)
	}
	if got := mk(SelectFIFO).Schedule(ctxAt(now, false, fill())); got[0].ID != 2 {
		t.Fatalf("fifo picked %d, want oldest 2", got[0].ID)
	}
	if got := mk(SelectCheapest).Schedule(ctxAt(now, false, fill())); got[0].ID != 1 {
		t.Fatalf("cheapest picked %d, want freshest 1", got[0].ID)
	}
}

func TestSelectionPoliciesDrainOnHeartbeat(t *testing.T) {
	for _, sel := range []SelectionPolicy{SelectEq9, SelectFIFO, SelectCheapest} {
		e, err := New(Options{Theta: 0, K: KInfinite, Selection: sel})
		if err != nil {
			t.Fatal(err)
		}
		q := sched.NewQueues()
		for i := 0; i < 5; i++ {
			q.Add(weiboPkt(i, time.Duration(i)*time.Second))
		}
		got := e.Schedule(ctxAt(time.Minute, true, q))
		if len(got) != 5 {
			t.Fatalf("policy %d flushed %d of 5", int(sel), len(got))
		}
		if err := sched.ValidateSelection(got); err != nil {
			t.Fatal(err)
		}
	}
}

func TestUnknownSelectionRejected(t *testing.T) {
	if _, err := New(Options{Theta: 0, K: 1, Selection: SelectionPolicy(9)}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestChannelGateHoldsDripsOnBadChannel(t *testing.T) {
	e, err := New(Options{Theta: 0.1, K: KInfinite, ChannelGated: true})
	if err != nil {
		t.Fatal(err)
	}
	q := sched.NewQueues()
	q.Add(weiboPkt(1, 0))
	ctx := ctxAt(30*time.Second, false, q)
	ctx.MeanBandwidth = 100e3
	ctx.EstimateBandwidth = func() float64 { return 10e3 } // bad channel
	if got := e.Schedule(ctx); len(got) != 0 {
		t.Fatal("gated drip released on bad channel")
	}
	ctx.EstimateBandwidth = func() float64 { return 200e3 } // good channel
	if got := e.Schedule(ctx); len(got) != 1 {
		t.Fatal("gated drip held on good channel")
	}
}

func TestChannelGateNeverBlocksHeartbeats(t *testing.T) {
	e, err := New(Options{Theta: 0.1, K: KInfinite, ChannelGated: true})
	if err != nil {
		t.Fatal(err)
	}
	q := sched.NewQueues()
	q.Add(weiboPkt(1, 0))
	ctx := ctxAt(30*time.Second, true, q)
	ctx.MeanBandwidth = 100e3
	ctx.EstimateBandwidth = func() float64 { return 1 }
	if got := e.Schedule(ctx); len(got) != 1 {
		t.Fatal("heartbeat piggyback blocked by channel gate")
	}
}
